// Contract-macro semantics (common/contracts.h) and regression tests for
// the release-reachable bugs the PR-5 assert migration surfaced: every bare
// assert() that could fire on malformed input in a release build now has a
// defined behavior (abort with a message, or clamp with a documented
// fallback), and each such site is pinned here.
#include "common/contracts.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <vector>

#include "cache/ttl_cache.h"
#include "harness/parallel_runner.h"
#include "common/rng.h"
#include "common/sim_time.h"
#include "des/simulator.h"
#include "fault/fault_injector.h"
#include "fault/fault_plan.h"
#include "fusion/reliability.h"
#include "naming/name.h"
#include "net/network.h"
#include "net/topology.h"
#include "sched/multichannel.h"
#include "sched/task.h"
#include "world/grid_map.h"
#include "world/scalar.h"
#include "workflow/mining.h"
#include "workflow/workflow.h"

namespace dde {
namespace {

using contracts::clamp_notes_emitted;

// --- DDE_CHECK ------------------------------------------------------------

TEST(ContractsDeathTest, CheckAbortsWithFileLineAndMessage) {
  // Always-on: must abort in every build type, NDEBUG included.
  EXPECT_DEATH(DDE_CHECK(1 + 1 == 3, "arithmetic broke"),
               "test_contracts\\.cpp.*contract failed.*1 \\+ 1 == 3.*"
               "arithmetic broke");
}

TEST(Contracts, CheckPassesSilently) {
  const long before = clamp_notes_emitted();
  DDE_CHECK(true, "never printed");
  EXPECT_EQ(clamp_notes_emitted(), before);
}

// --- DDE_CLAMP_OR ---------------------------------------------------------

TEST(Contracts, ClampTakesFallbackOnEveryViolationButLogsOnce) {
  int fallbacks = 0;
  const long before = clamp_notes_emitted();
  for (int i = 0; i < 5; ++i) {
    DDE_CLAMP_OR(i < 0, ++fallbacks, "loop clamp fires five times");
  }
  EXPECT_EQ(fallbacks, 5);                        // fallback every time
  EXPECT_EQ(clamp_notes_emitted(), before + 1);   // notice once per site
}

TEST(Contracts, ClampLogsOncePerSiteUnderConcurrentHammering) {
  // Regression for the shared-state migration: the per-site once flag is a
  // function-local std::atomic<bool> (it used to be a mutex-guarded
  // (file,line) set). Hammer one site from four workers; the fallback must
  // run every time but exactly one worker may win the exchange and emit
  // the notice. Runs under the CI TSan job, which would flag the old
  // plain-bool formulation as a data race.
  const long before = clamp_notes_emitted();
  std::atomic<long> fallbacks{0};
  const auto results = harness::run_indexed(
      64,
      [&fallbacks](std::size_t) -> int {
        for (int i = 0; i < 100; ++i) {
          DDE_CLAMP_OR(i < 0, fallbacks.fetch_add(1, std::memory_order_relaxed),
                       "concurrent clamp hammer");
        }
        return 0;
      },
      /*jobs=*/4);
  EXPECT_EQ(results.size(), 64u);
  EXPECT_EQ(fallbacks.load(), 64 * 100);          // fallback on every hit
  EXPECT_EQ(clamp_notes_emitted(), before + 1);   // notice once for the site
}

TEST(Contracts, ClampDoesNothingWhenConditionHolds) {
  int fallbacks = 0;
  const long before = clamp_notes_emitted();
  DDE_CLAMP_OR(2 < 3, ++fallbacks, "never fires");
  EXPECT_EQ(fallbacks, 0);
  EXPECT_EQ(clamp_notes_emitted(), before);
}

TEST(Contracts, ClampSupportsReturnFallback) {
  const auto guarded = [](int x) -> int {
    DDE_CLAMP_OR(x >= 0, return -1, "negative input rejected");
    return x * 2;
  };
  EXPECT_EQ(guarded(4), 8);
  EXPECT_EQ(guarded(-7), -1);
}

// --- DDE_ASSERT -----------------------------------------------------------

TEST(ContractsDeathTest, AssertActiveExactlyWhenDebug) {
#ifdef NDEBUG
  DDE_ASSERT(false);  // compiled out: must be a no-op
  SUCCEED();
#else
  EXPECT_DEATH(DDE_ASSERT(false), "contract failed.*debug assertion");
#endif
}

TEST(Contracts, AssertDoesNotEvaluateArgumentUnderNdebug) {
  int evaluations = 0;
  DDE_ASSERT(++evaluations > 0);
#ifdef NDEBUG
  EXPECT_EQ(evaluations, 0);
#else
  EXPECT_EQ(evaluations, 1);
#endif
}

// --- DDE_INVARIANT --------------------------------------------------------

TEST(ContractsDeathTest, InvariantActiveExactlyWhenOptedIn) {
#ifdef DDE_INVARIANTS
  EXPECT_DEATH(DDE_INVARIANT(false, "sweep failed"), "sweep failed");
#else
  DDE_INVARIANT(false, "compiled out");
  SUCCEED();
#endif
}

// --- Regression: TtlCache::get with fresh_until in the past ---------------
// Before the clamp, a caller passing a stale decision time could be handed
// an entry that had already expired at `now`.

TEST(ContractRegressions, TtlCacheGetClampsPastFreshUntil) {
  cache::TtlCache<int, int> c(4);
  const SimTime t0 = SimTime::seconds(0);
  const SimTime t5 = SimTime::seconds(5);
  c.put(1, 10, /*expires_at=*/SimTime::seconds(3), t0);
  // At t=5 the entry is expired; a fresh_until of t=2 (in the past) must
  // not resurrect it.
  EXPECT_EQ(c.get(1, t5, SimTime::seconds(2)), nullptr);
}

// --- Regression: kRandom scheduling with a null RNG -----------------------
// Previously an unconditional rng->shuffle — a segfault in release builds.

TEST(ContractRegressions, MultichannelRandomOrderNullRngFallsBack) {
  std::vector<sched::DecisionTask> tasks(2);
  tasks[0].id = QueryId{1};
  tasks[0].relative_deadline = SimTime::seconds(10);
  tasks[0].objects = {{ObjectId{1}, SimTime::seconds(1), SimTime::seconds(8)}};
  tasks[1].id = QueryId{2};
  tasks[1].relative_deadline = SimTime::seconds(10);
  tasks[1].objects = {{ObjectId{2}, SimTime::seconds(1), SimTime::seconds(8)}};
  const auto out = sched::schedule_multichannel(
      tasks, /*channels=*/2, sched::TaskOrder::kRandom,
      sched::ObjectOrder::kRandom, /*rng=*/nullptr);
  EXPECT_EQ(out.tasks.size(), 2u);  // degraded to deterministic order
}

TEST(ContractRegressions, MultichannelZeroChannelsClampsToOne) {
  std::vector<sched::DecisionTask> tasks(1);
  tasks[0].id = QueryId{1};
  tasks[0].relative_deadline = SimTime::seconds(5);
  tasks[0].objects = {{ObjectId{1}, SimTime::seconds(1), SimTime::seconds(5)}};
  const auto out = sched::schedule_multichannel(
      tasks, /*channels=*/0, sched::TaskOrder::kDeclared,
      sched::ObjectOrder::kDeclared, nullptr);
  EXPECT_EQ(out.channels, 1u);
  EXPECT_EQ(out.tasks.size(), 1u);
}

// --- Regression: GridMap::random_route_choices with huge min_distance -----
// An unsatisfiable distance demand used to spin forever in the rejection
// loop (the assert guarding it was debug-only).

TEST(ContractRegressions, GridMapUnsatisfiableMinDistanceTerminates) {
  world::GridMap map(4, 4);
  Rng rng(7);
  const auto routes =
      map.random_route_choices(/*k=*/3, /*min_distance=*/1000, rng);
  EXPECT_LE(routes.size(), 3u);  // terminated; clamped to the diameter
  for (const auto& r : routes) EXPECT_FALSE(r.segments.empty());
}

// --- Regression: ScalarProcess::value_at with negative time ---------------
// A negative SimTime used to index the sample track with a huge unsigned
// value; now clamps to the t=0 sample.

TEST(ContractRegressions, ScalarValueAtNegativeTimeClampsToStart) {
  world::ScalarProcess p({{.mean = 1.0, .initial = 5.0}}, Rng(3));
  const double at_zero = p.value_at(0, SimTime::seconds(0));
  EXPECT_EQ(p.value_at(0, SimTime::seconds(-10)), at_zero);
}

// --- Regression: Name with empty components -------------------------------
// Empty components used to survive construction and break the
// to_string/parse round-trip ("a//b" parses as {a, b}).

TEST(ContractRegressions, NameDropsEmptyComponents) {
  const naming::Name a{"city", "", "grid"};
  EXPECT_EQ(a.size(), 2u);
  EXPECT_EQ(a.to_string(), "/city/grid");
  const naming::Name b(std::vector<std::string>{"", "x", "", "y"});
  EXPECT_EQ(b.size(), 2u);
  EXPECT_EQ(naming::Name::parse(b.to_string()), b);  // round-trip holds
}

// --- Regression: Rng guards fire in release builds ------------------------

TEST(ContractRegressionsDeathTest, RngBelowZeroAborts) {
  Rng rng(1);
  // below(0) was a release-build divide-by-zero (UB); now a hard contract.
  EXPECT_DEATH((void)rng.below(0), "contract failed");
}

// --- Regression: fault plan naming an unknown link ------------------------
// Out-of-range subjects used to index past the admin-state vectors in
// release builds; now the event is ignored with a clamp notice.

TEST(ContractRegressions, FaultPlanUnknownSubjectIsIgnored) {
  des::Simulator sim;
  net::Topology topo;
  const NodeId n0 = topo.add_node();
  const NodeId n1 = topo.add_node();
  topo.add_link(n0, n1, 1e6, SimTime::millis(1));
  topo.compute_routes();
  net::Network net(sim, topo);
  fault::FaultPlan plan;
  plan.events.push_back({fault::FaultEvent::Kind::kLinkDown,
                         SimTime::seconds(1), /*subject=*/12345});
  fault::FaultInjector inj(sim, topo, net, plan, /*seed=*/5);
  sim.run_until(SimTime::seconds(2));
  EXPECT_EQ(inj.stats().link_downs, 0u);  // nothing was applied
}

// --- Regression: miner sessions naming unknown decision points ------------

TEST(ContractRegressions, MinerSkipsUnknownPoints) {
  std::vector<workflow::DecisionPoint> pts(2);
  pts[0].name = "a";
  pts[1].name = "b";
  pts[0].id = workflow::PointId{0};
  pts[1].id = workflow::PointId{1};
  workflow::SequenceMiner miner(pts);
  miner.record_session({{workflow::PointId{0}, 0},
                        {workflow::PointId{7}, 0},  // unknown: skipped
                        {workflow::PointId{1}, 0}});
  EXPECT_EQ(miner.sessions(), 1u);
}

// --- Regression: reliability trust outside [0, 1] clamps ------------------

TEST(ContractRegressions, ReliabilityTrustOutOfRangeClamps) {
  fusion::ReliabilityProfile prof;
  prof.record(SourceId{1}, true, /*annotator_trust=*/7.5);   // clamps to 1
  prof.record(SourceId{1}, true, /*annotator_trust=*/-2.0);  // clamps to 0
  const double m = prof.reliability(SourceId{1});
  EXPECT_GE(m, 0.0);
  EXPECT_LE(m, 1.0);
}

}  // namespace
}  // namespace dde
