#include "athena/directory.h"

#include <gtest/gtest.h>

#include <vector>

namespace dde::athena {
namespace {

using world::SensorInfo;

/// Fixture: a 4-node line network; sensors with hand-picked coverage.
/// Sensor 0 at node 1 covers segments {0, 1}; sensor 1 at node 3 covers
/// {1, 2}; sensor 2 at node 3 covers {3}.
struct Fixture {
  world::GridMap map{4, 4};
  world::ViabilityProcess truth;
  world::SensorField field;
  net::Topology topo;
  std::vector<NodeId> nodes;

  static std::vector<SensorInfo> sensors() {
    SensorInfo s0;
    s0.id = SourceId{0};
    s0.name = naming::Name::parse("/t/cam0");
    s0.covers = {SegmentId{0}, SegmentId{1}};
    s0.object_bytes = 1000;
    s0.validity = SimTime::seconds(100);
    SensorInfo s1;
    s1.id = SourceId{1};
    s1.name = naming::Name::parse("/t/cam1");
    s1.covers = {SegmentId{1}, SegmentId{2}};
    s1.object_bytes = 500;
    s1.validity = SimTime::seconds(50);
    SensorInfo s2;
    s2.id = SourceId{2};
    s2.name = naming::Name::parse("/t/cam2");
    s2.covers = {SegmentId{3}};
    s2.object_bytes = 2000;
    s2.validity = SimTime::seconds(10);
    return {s0, s1, s2};
  }

  Fixture()
      : truth(std::vector<world::SegmentDynamics>(
                  map.segment_count(),
                  world::SegmentDynamics{0.8, SimTime::seconds(600)}),
              Rng(1)),
        field(map, truth, sensors()) {
    for (int i = 0; i < 4; ++i) nodes.push_back(topo.add_node());
    for (int i = 0; i + 1 < 4; ++i) topo.add_link(nodes[i], nodes[i + 1]);
    topo.compute_routes();
  }

  Directory make_directory() {
    return Directory(topo, field,
                     {nodes[1], nodes[3], nodes[3]},
                     {{LabelId{0}, 0.8}, {LabelId{1}, 0.8}, {LabelId{2}, 0.8},
                      {LabelId{3}, 0.8}});
  }
};

TEST(Directory, SourcesForLabel) {
  Fixture f;
  const auto dir = f.make_directory();
  EXPECT_EQ(dir.sources_for(LabelId{0}), std::vector<SourceId>{SourceId{0}});
  const auto both = dir.sources_for(LabelId{1});
  EXPECT_EQ(both.size(), 2u);
  EXPECT_TRUE(dir.sources_for(LabelId{99}).empty());
}

TEST(Directory, HostMapping) {
  Fixture f;
  const auto dir = f.make_directory();
  EXPECT_EQ(dir.host(SourceId{0}), f.nodes[1]);
  EXPECT_EQ(dir.host(SourceId{1}), f.nodes[3]);
  EXPECT_THROW((void)dir.host(SourceId{9}), std::out_of_range);
}

TEST(Directory, LabelsOfSource) {
  Fixture f;
  const auto dir = f.make_directory();
  const auto labels = dir.labels_of(SourceId{0});
  ASSERT_EQ(labels.size(), 2u);
  EXPECT_EQ(labels[0], LabelId{0});
  EXPECT_EQ(labels[1], LabelId{1});
}

TEST(Directory, RetrievalCostScalesWithBytesAndHops) {
  Fixture f;
  const auto dir = f.make_directory();
  // From node 0: sensor 0 is 1 hop (1000 B), sensor 1 is 3 hops (500 B).
  EXPECT_DOUBLE_EQ(dir.retrieval_cost(SourceId{0}, f.nodes[0]), 1000.0);
  EXPECT_DOUBLE_EQ(dir.retrieval_cost(SourceId{1}, f.nodes[0]), 1500.0);
  // From its own host the cost is bytes × 1 (local floor).
  EXPECT_DOUBLE_EQ(dir.retrieval_cost(SourceId{0}, f.nodes[1]), 1000.0);
}

TEST(Directory, MetaReflectsSourceAndLabel) {
  Fixture f;
  const auto dir = f.make_directory();
  const auto m = dir.meta(LabelId{1}, SourceId{1}, f.nodes[0]);
  EXPECT_DOUBLE_EQ(m.cost, 1500.0);
  EXPECT_EQ(m.validity, SimTime::seconds(50));
  EXPECT_DOUBLE_EQ(m.p_true, 0.8);
  EXPECT_GT(m.latency, SimTime::zero());
  // Unknown label defaults p to 0.5.
  const auto m2 = dir.meta(LabelId{77}, SourceId{1}, f.nodes[0]);
  EXPECT_DOUBLE_EQ(m2.p_true, 0.5);
}

TEST(Directory, SelectMinimizedCoversAllLabels) {
  Fixture f;
  const auto dir = f.make_directory();
  const std::vector<LabelId> labels{LabelId{0}, LabelId{1}, LabelId{2}};
  const auto sel = dir.select_sources(labels, f.nodes[0], /*minimize=*/true);
  EXPECT_TRUE(sel.uncovered.empty());
  for (LabelId l : labels) {
    ASSERT_TRUE(sel.designated.contains(l)) << l;
  }
  // Every designated source actually covers its label.
  // lint: ordered-fold — independent per-entry expectations.
  for (const auto& [label, source] : sel.designated) {
    const auto& srcs = dir.sources_for(label);
    EXPECT_NE(std::find(srcs.begin(), srcs.end(), source), srcs.end());
  }
}

TEST(Directory, SelectMinimizedPicksCoverNotEverything) {
  Fixture f;
  const auto dir = f.make_directory();
  // Labels {0,1,2}: sensors 0 and 1 suffice; a minimized selection from
  // node 0 must not include sensor 2.
  const auto sel = dir.select_sources({LabelId{0}, LabelId{1}, LabelId{2}},
                                      f.nodes[0], true);
  EXPECT_EQ(sel.requests.size(), 2u);
}

TEST(Directory, SelectComprehensiveListsAllCoveringSources) {
  Fixture f;
  const auto dir = f.make_directory();
  const auto sel =
      dir.select_sources({LabelId{1}}, f.nodes[0], /*minimize=*/false);
  // Both sensors covering label 1 are in the request list.
  EXPECT_EQ(sel.requests.size(), 2u);
  // The designated source is the cheaper one from node 0 (sensor 0:
  // 1000×1 hop = 1000 vs sensor 1: 500×3 = 1500).
  EXPECT_EQ(sel.designated.at(LabelId{1}), SourceId{0});
}

TEST(Directory, SelectReportsUncoveredLabels) {
  Fixture f;
  const auto dir = f.make_directory();
  const auto sel = dir.select_sources({LabelId{0}, LabelId{42}}, f.nodes[0],
                                      true);
  ASSERT_EQ(sel.uncovered.size(), 1u);
  EXPECT_EQ(sel.uncovered[0], LabelId{42});
  EXPECT_TRUE(sel.designated.contains(LabelId{0}));
  EXPECT_FALSE(sel.designated.contains(LabelId{42}));
}

TEST(Directory, SelectEmptyLabels) {
  Fixture f;
  const auto dir = f.make_directory();
  const auto sel = dir.select_sources({}, f.nodes[0], true);
  EXPECT_TRUE(sel.designated.empty());
  EXPECT_TRUE(sel.requests.empty());
  EXPECT_TRUE(sel.uncovered.empty());
}

TEST(Directory, RequestsContainOnlyNeededLabels) {
  Fixture f;
  const auto dir = f.make_directory();
  const auto sel = dir.select_sources({LabelId{1}}, f.nodes[0], false);
  for (const auto& [source, labels] : sel.requests) {
    EXPECT_EQ(labels, std::vector<LabelId>{LabelId{1}})
        << "only the needed label is requested even if the source covers more";
  }
}

}  // namespace
}  // namespace dde::athena
