#include "des/simulator.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "common/contracts.h"
#include "common/rng.h"
#include "des/periodic.h"

namespace dde::des {
namespace {

TEST(Simulator, StartsAtZero) {
  Simulator sim;
  EXPECT_EQ(sim.now(), SimTime::zero());
  EXPECT_EQ(sim.executed_events(), 0u);
  EXPECT_EQ(sim.pending_events(), 0u);
}

TEST(Simulator, ExecutesInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule_at(SimTime::millis(30), [&] { order.push_back(3); });
  sim.schedule_at(SimTime::millis(10), [&] { order.push_back(1); });
  sim.schedule_at(SimTime::millis(20), [&] { order.push_back(2); });
  sim.run_until();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Simulator, SameTimeIsFifo) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    sim.schedule_at(SimTime::millis(5), [&order, i] { order.push_back(i); });
  }
  sim.run_until();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(Simulator, ClockAdvancesToEventTime) {
  Simulator sim;
  SimTime seen;
  sim.schedule_at(SimTime::seconds(2), [&] { seen = sim.now(); });
  sim.run_until();
  EXPECT_EQ(seen, SimTime::seconds(2));
  EXPECT_EQ(sim.now(), SimTime::seconds(2));
}

TEST(Simulator, ScheduleAfterIsRelative) {
  Simulator sim;
  std::vector<SimTime> times;
  sim.schedule_at(SimTime::seconds(1), [&] {
    sim.schedule_after(SimTime::seconds(3), [&] { times.push_back(sim.now()); });
  });
  sim.run_until();
  ASSERT_EQ(times.size(), 1u);
  EXPECT_EQ(times[0], SimTime::seconds(4));
}

TEST(Simulator, EventsCanScheduleEvents) {
  Simulator sim;
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 5) sim.schedule_after(SimTime::millis(1), recurse);
  };
  sim.schedule_at(SimTime::zero(), recurse);
  sim.run_until();
  EXPECT_EQ(depth, 5);
  EXPECT_EQ(sim.executed_events(), 5u);
}

TEST(Simulator, RunUntilStopsAtBoundary) {
  Simulator sim;
  int ran = 0;
  sim.schedule_at(SimTime::seconds(1), [&] { ++ran; });
  sim.schedule_at(SimTime::seconds(2), [&] { ++ran; });
  sim.schedule_at(SimTime::seconds(3), [&] { ++ran; });
  const auto n = sim.run_until(SimTime::seconds(2));
  EXPECT_EQ(n, 2u);
  EXPECT_EQ(ran, 2);
  EXPECT_EQ(sim.pending_events(), 1u);
  sim.run_until();
  EXPECT_EQ(ran, 3);
}

TEST(Simulator, RunUntilAdvancesClockWhenQueueDrains) {
  Simulator sim;
  sim.schedule_at(SimTime::seconds(1), [] {});
  sim.run_until(SimTime::seconds(10));
  EXPECT_EQ(sim.now(), SimTime::seconds(10));
}

TEST(Simulator, CancelPreventsExecution) {
  Simulator sim;
  int ran = 0;
  auto h = sim.schedule_at(SimTime::seconds(1), [&] { ++ran; });
  EXPECT_TRUE(sim.cancel(h));
  sim.run_until();
  EXPECT_EQ(ran, 0);
  EXPECT_EQ(sim.executed_events(), 0u);
}

TEST(Simulator, CancelTwiceReturnsFalse) {
  Simulator sim;
  auto h = sim.schedule_at(SimTime::seconds(1), [] {});
  EXPECT_TRUE(sim.cancel(h));
  EXPECT_FALSE(sim.cancel(h));
}

TEST(Simulator, CancelAfterRunReturnsFalse) {
  Simulator sim;
  auto h = sim.schedule_at(SimTime::seconds(1), [] {});
  sim.run_until();
  EXPECT_FALSE(sim.cancel(h));
}

TEST(Simulator, CancelInvalidHandleReturnsFalse) {
  Simulator sim;
  EXPECT_FALSE(sim.cancel(EventHandle{}));
}

TEST(Simulator, StepExecutesOne) {
  Simulator sim;
  int ran = 0;
  sim.schedule_at(SimTime::seconds(1), [&] { ++ran; });
  sim.schedule_at(SimTime::seconds(2), [&] { ++ran; });
  EXPECT_TRUE(sim.step());
  EXPECT_EQ(ran, 1);
  EXPECT_TRUE(sim.step());
  EXPECT_EQ(ran, 2);
  EXPECT_FALSE(sim.step());
}

TEST(Simulator, PendingEventsExcludesCancelled) {
  Simulator sim;
  auto h = sim.schedule_at(SimTime::seconds(1), [] {});
  sim.schedule_at(SimTime::seconds(2), [] {});
  EXPECT_EQ(sim.pending_events(), 2u);
  sim.cancel(h);
  EXPECT_EQ(sim.pending_events(), 1u);
}

TEST(Simulator, RunUntilAdvancesPastCancelledOnlyQueue) {
  // Regression: a queue holding only cancelled residue past the horizon
  // used to leave now_ stuck before `until` (the queue was non-empty, so
  // the idle-advance branch never fired).
  Simulator sim;
  auto h = sim.schedule_at(SimTime::seconds(20), [] {});
  sim.cancel(h);
  sim.run_until(SimTime::seconds(10));
  EXPECT_EQ(sim.now(), SimTime::seconds(10));
  EXPECT_EQ(sim.pending_events(), 0u);
}

TEST(Simulator, RunUntilAdvancesWhenAllEventsCancelled) {
  Simulator sim;
  std::vector<EventHandle> handles;
  for (int i = 1; i <= 5; ++i) {
    handles.push_back(sim.schedule_at(SimTime::seconds(i), [] {}));
  }
  for (auto h : handles) sim.cancel(h);
  const auto n = sim.run_until(SimTime::seconds(100));
  EXPECT_EQ(n, 0u);
  EXPECT_EQ(sim.now(), SimTime::seconds(100));
}

TEST(Simulator, CancelScheduleCyclesStayBounded) {
  // Regression: cancelled events were only discarded when popped, so a
  // cancel/re-schedule loop (timer resets, watchdog re-arms) grew the
  // internal queue without bound. The compaction pass keeps raw occupancy
  // within a constant factor of the live count.
  Simulator sim;
  EventHandle h = sim.schedule_at(SimTime::seconds(1), [] {});
  for (int i = 0; i < 10000; ++i) {
    sim.cancel(h);
    h = sim.schedule_at(SimTime::seconds(1) + SimTime::micros(i), [] {});
  }
  EXPECT_EQ(sim.pending_events(), 1u);
  EXPECT_LE(sim.queued_events(), 256u);
  sim.run_until();
  EXPECT_EQ(sim.executed_events(), 1u);
}

TEST(Simulator, CancelFromWithinCallback) {
  Simulator sim;
  int ran = 0;
  EventHandle later;
  sim.schedule_at(SimTime::seconds(1), [&] { sim.cancel(later); });
  later = sim.schedule_at(SimTime::seconds(2), [&] { ++ran; });
  sim.run_until();
  EXPECT_EQ(ran, 0);
}

TEST(Simulator, RescheduleFromWithinCallback) {
  Simulator sim;
  std::vector<SimTime> fired;
  sim.schedule_at(SimTime::seconds(1), [&] {
    fired.push_back(sim.now());
    sim.schedule_at(sim.now() + SimTime::seconds(1),
                    [&] { fired.push_back(sim.now()); });
  });
  sim.run_until();
  ASSERT_EQ(fired.size(), 2u);
  EXPECT_EQ(fired[1], SimTime::seconds(2));
}

TEST(Simulator, PastTimeScheduleClampsToNow) {
  // Regression: schedule_at with a timestamp before now() was guarded only
  // by an assert, so release builds rewound the clock and broke event-order
  // monotonicity. Past-time schedules now clamp to now().
  Simulator sim;
  std::vector<SimTime> fired;
  sim.schedule_at(SimTime::seconds(5), [&] {
    sim.schedule_at(SimTime::seconds(1), [&] { fired.push_back(sim.now()); });
  });
  sim.run_until();
  ASSERT_EQ(fired.size(), 1u);
  EXPECT_EQ(fired[0], SimTime::seconds(5));
  EXPECT_EQ(sim.now(), SimTime::seconds(5));
}

TEST(Simulator, ClampedEventsRunFifoAfterCurrent) {
  // Several past-time schedules all clamp to now() and keep their submission
  // order, interleaving FIFO with genuine now() schedules.
  Simulator sim;
  std::vector<int> order;
  sim.schedule_at(SimTime::seconds(5), [&] {
    sim.schedule_at(SimTime::seconds(3), [&] { order.push_back(1); });
    sim.schedule_at(SimTime::zero(), [&] { order.push_back(2); });
    sim.schedule_at(sim.now(), [&] { order.push_back(3); });
  });
  sim.run_until();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Simulator, NegativeDelayClampsToNowWithNotice) {
  // Regression: schedule_after documented `delay >= 0` but never enforced
  // it — a negative delay silently landed in the past and schedule_at's
  // clamp hid the caller's arithmetic bug without a trace. It now clamps
  // to zero through DDE_CLAMP_OR, logging once for the site.
  Simulator sim;
  std::vector<int> order;
  const long before = contracts::clamp_notes_emitted();
  sim.schedule_at(SimTime::seconds(1), [&] {
    sim.schedule_after(SimTime::seconds(-5), [&] { order.push_back(1); });
    sim.schedule_after(SimTime::zero(), [&] { order.push_back(2); });
    sim.schedule_after(SimTime::seconds(-1), [&] { order.push_back(3); });
  });
  sim.run_until();
  // All three run at t=1s in submission order (FIFO among same-time).
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now(), SimTime::seconds(1));
  // Two violations, one notice: the log is once per site.
  EXPECT_EQ(contracts::clamp_notes_emitted(), before + 1);
}

TEST(Simulator, ManyEventsKeepOrder) {
  Simulator sim;
  dde::Rng rng(5);
  std::vector<SimTime> fired;
  for (int i = 0; i < 5000; ++i) {
    const SimTime t = SimTime::micros(static_cast<SimTime::rep>(rng.below(100000)));
    sim.schedule_at(t, [&fired, &sim] { fired.push_back(sim.now()); });
  }
  sim.run_until();
  EXPECT_EQ(fired.size(), 5000u);
  EXPECT_TRUE(std::is_sorted(fired.begin(), fired.end()));
}

TEST(PeriodicTask, TicksAtPeriod) {
  Simulator sim;
  std::vector<SimTime> ticks;
  PeriodicTask task(sim, SimTime::seconds(1),
                    [&](std::uint64_t) { ticks.push_back(sim.now()); });
  task.start();
  sim.run_until(SimTime::seconds(3.5));
  ASSERT_EQ(ticks.size(), 4u);  // t = 0, 1, 2, 3
  EXPECT_EQ(ticks[0], SimTime::zero());
  EXPECT_EQ(ticks[3], SimTime::seconds(3));
}

TEST(PeriodicTask, InitialDelay) {
  Simulator sim;
  std::vector<SimTime> ticks;
  PeriodicTask task(sim, SimTime::seconds(1),
                    [&](std::uint64_t) { ticks.push_back(sim.now()); });
  task.start(SimTime::seconds(0.5));
  sim.run_until(SimTime::seconds(2.75));
  ASSERT_EQ(ticks.size(), 3u);  // 0.5, 1.5, 2.5
  EXPECT_EQ(ticks[0], SimTime::seconds(0.5));
}

TEST(PeriodicTask, TickIndexIncrements) {
  Simulator sim;
  std::vector<std::uint64_t> indexes;
  PeriodicTask task(sim, SimTime::millis(10),
                    [&](std::uint64_t i) { indexes.push_back(i); });
  task.start();
  sim.run_until(SimTime::millis(45));
  EXPECT_EQ(indexes, (std::vector<std::uint64_t>{0, 1, 2, 3, 4}));
}

TEST(PeriodicTask, StopHalts) {
  Simulator sim;
  int count = 0;
  PeriodicTask task(sim, SimTime::seconds(1), [&](std::uint64_t) { ++count; });
  task.start();
  sim.schedule_at(SimTime::seconds(2.5), [&] { task.stop(); });
  sim.run_until(SimTime::seconds(10));
  EXPECT_EQ(count, 3);  // t = 0, 1, 2
  EXPECT_FALSE(task.running());
}

TEST(PeriodicTask, StopFromWithinCallback) {
  Simulator sim;
  int count = 0;
  PeriodicTask task(sim, SimTime::seconds(1), [&](std::uint64_t i) {
    ++count;
    if (i == 1) task.stop();
  });
  task.start();
  sim.run_until(SimTime::seconds(10));
  EXPECT_EQ(count, 2);
}

TEST(PeriodicTask, RestartAfterStop) {
  Simulator sim;
  int count = 0;
  PeriodicTask task(sim, SimTime::seconds(1), [&](std::uint64_t) { ++count; });
  task.start();
  sim.schedule_at(SimTime::seconds(1.5), [&] { task.stop(); });
  sim.schedule_at(SimTime::seconds(5), [&] { task.start(); });
  sim.run_until(SimTime::seconds(7.5));
  // t=0,1 then restart at t=5,6,7.
  EXPECT_EQ(count, 5);
}

}  // namespace
}  // namespace dde::des
