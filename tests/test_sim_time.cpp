#include "common/sim_time.h"

#include <gtest/gtest.h>

#include <sstream>

namespace dde {
namespace {

TEST(SimTime, DefaultIsZero) {
  EXPECT_EQ(SimTime{}.count(), 0);
  EXPECT_EQ(SimTime{}, SimTime::zero());
}

TEST(SimTime, Factories) {
  EXPECT_EQ(SimTime::micros(5).count(), 5);
  EXPECT_EQ(SimTime::millis(5).count(), 5000);
  EXPECT_EQ(SimTime::seconds(5).count(), 5000000);
  EXPECT_EQ(SimTime::seconds(0.5).count(), 500000);
}

TEST(SimTime, Conversions) {
  EXPECT_DOUBLE_EQ(SimTime::seconds(2.5).to_seconds(), 2.5);
  EXPECT_DOUBLE_EQ(SimTime::millis(1500).to_millis(), 1500.0);
  EXPECT_DOUBLE_EQ(SimTime::micros(1).to_seconds(), 1e-6);
}

TEST(SimTime, Arithmetic) {
  const SimTime a = SimTime::seconds(1);
  const SimTime b = SimTime::millis(500);
  EXPECT_EQ((a + b).count(), 1500000);
  EXPECT_EQ((a - b).count(), 500000);
  EXPECT_EQ((b * 4).count(), 2000000);
  EXPECT_EQ((4 * b).count(), 2000000);
  SimTime c = a;
  c += b;
  EXPECT_EQ(c.count(), 1500000);
  c -= a;
  EXPECT_EQ(c, b);
}

TEST(SimTime, Comparison) {
  EXPECT_LT(SimTime::millis(1), SimTime::millis(2));
  EXPECT_LE(SimTime::millis(2), SimTime::millis(2));
  EXPECT_GT(SimTime::seconds(1), SimTime::millis(999));
  EXPECT_EQ(SimTime::seconds(1), SimTime::millis(1000));
}

TEST(SimTime, MaxIsLargerThanAnyPracticalTime) {
  EXPECT_GT(SimTime::max(), SimTime::seconds(1e12));
}

TEST(SimTime, NegativeDurationsBehave) {
  const SimTime neg = SimTime::zero() - SimTime::seconds(1);
  EXPECT_LT(neg, SimTime::zero());
  EXPECT_EQ(neg + SimTime::seconds(2), SimTime::seconds(1));
}

TEST(SimTime, StreamOutput) {
  std::ostringstream oss;
  oss << SimTime::seconds(1.5);
  EXPECT_EQ(oss.str(), "1.5s");
}

}  // namespace
}  // namespace dde
