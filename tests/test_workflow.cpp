#include <gtest/gtest.h>

#include <vector>

#include "common/rng.h"
#include "workflow/mining.h"
#include "workflow/workflow.h"

namespace dde::workflow {
namespace {

std::vector<LabelId> labels(std::initializer_list<std::uint64_t> ids) {
  std::vector<LabelId> out;
  for (auto i : ids) out.push_back(LabelId{i});
  return out;
}

/// A small mission workflow:
///   assess (0) —outcome 0→ evacuate (1)
///              —outcome 1→ shelter (2)
///   evacuate —any→ report (3); shelter —any→ report (3).
WorkflowGraph mission() {
  WorkflowGraph g;
  const PointId assess = g.add_point("assess", labels({0, 1}));
  const PointId evacuate = g.add_point("evacuate", labels({2, 3}));
  const PointId shelter = g.add_point("shelter", labels({3, 4}));
  const PointId report = g.add_point("report", labels({5}));
  g.add_transition(assess, 0, evacuate);
  g.add_transition(assess, 1, shelter);
  g.add_transition(evacuate, 0, report);
  g.add_transition(shelter, 0, report);
  return g;
}

TEST(WorkflowGraph, PointsAreDense) {
  const auto g = mission();
  EXPECT_EQ(g.point_count(), 4u);
  EXPECT_EQ(g.point(PointId{0}).name, "assess");
  EXPECT_EQ(g.point(PointId{3}).name, "report");
  EXPECT_THROW((void)g.point(PointId{9}), std::out_of_range);
}

TEST(WorkflowGraph, SuccessorsConditionedOnOutcome) {
  const auto g = mission();
  const auto s0 = g.successors(PointId{0}, 0);
  ASSERT_EQ(s0.size(), 1u);
  EXPECT_EQ(s0[0].point, PointId{1});
  EXPECT_DOUBLE_EQ(s0[0].probability, 1.0);
  const auto s1 = g.successors(PointId{0}, 1);
  ASSERT_EQ(s1.size(), 1u);
  EXPECT_EQ(s1[0].point, PointId{2});
}

TEST(WorkflowGraph, TerminalPointHasNoSuccessors) {
  const auto g = mission();
  EXPECT_TRUE(g.successors(PointId{3}, 0).empty());
  EXPECT_TRUE(g.successors(PointId{0}, kNoViableAction).empty());
}

TEST(WorkflowGraph, WeightsNormalize) {
  WorkflowGraph g;
  const PointId a = g.add_point("a", {});
  const PointId b = g.add_point("b", {});
  const PointId c = g.add_point("c", {});
  g.add_transition(a, 0, b, 3.0);
  g.add_transition(a, 0, c, 1.0);
  const auto s = g.successors(a, 0);
  ASSERT_EQ(s.size(), 2u);
  EXPECT_EQ(s[0].point, b);
  EXPECT_DOUBLE_EQ(s[0].probability, 0.75);
  EXPECT_DOUBLE_EQ(s[1].probability, 0.25);
}

TEST(WorkflowGraph, RepeatedTransitionAccumulates) {
  WorkflowGraph g;
  const PointId a = g.add_point("a", {});
  const PointId b = g.add_point("b", {});
  const PointId c = g.add_point("c", {});
  g.add_transition(a, 0, b);
  g.add_transition(a, 0, b);
  g.add_transition(a, 0, c);
  const auto s = g.successors(a, 0);
  EXPECT_NEAR(s[0].probability, 2.0 / 3.0, 1e-12);
}

TEST(WorkflowGraph, AnticipatedLabelsWeightedByReach) {
  WorkflowGraph g;
  const PointId a = g.add_point("a", {});
  const PointId b = g.add_point("b", labels({10, 11}));
  const PointId c = g.add_point("c", labels({11, 12}));
  g.add_transition(a, 0, b, 0.7);
  g.add_transition(a, 0, c, 0.3);
  const auto ant = g.anticipated_labels(a, 0);
  ASSERT_EQ(ant.size(), 3u);
  // Label 11 is needed on both branches: probability 1.0, ranked first.
  EXPECT_EQ(ant[0].first, LabelId{11});
  EXPECT_NEAR(ant[0].second, 1.0, 1e-12);
  EXPECT_EQ(ant[1].first, LabelId{10});
  EXPECT_NEAR(ant[1].second, 0.7, 1e-12);
  EXPECT_EQ(ant[2].first, LabelId{12});
  EXPECT_NEAR(ant[2].second, 0.3, 1e-12);
}

TEST(WorkflowGraph, AnticipatedLabelsThreshold) {
  WorkflowGraph g;
  const PointId a = g.add_point("a", {});
  const PointId b = g.add_point("b", labels({10}));
  const PointId c = g.add_point("c", labels({12}));
  g.add_transition(a, 0, b, 0.9);
  g.add_transition(a, 0, c, 0.1);
  const auto ant = g.anticipated_labels(a, 0, /*min_probability=*/0.5);
  ASSERT_EQ(ant.size(), 1u);
  EXPECT_EQ(ant[0].first, LabelId{10});
}

std::vector<DecisionPoint> mission_points() {
  std::vector<DecisionPoint> pts;
  pts.push_back({PointId{0}, "assess", labels({0, 1})});
  pts.push_back({PointId{1}, "evacuate", labels({2, 3})});
  pts.push_back({PointId{2}, "shelter", labels({3, 4})});
  pts.push_back({PointId{3}, "report", labels({5})});
  return pts;
}

TEST(SequenceMiner, LearnsDeterministicWorkflow) {
  SequenceMiner miner(mission_points());
  for (int i = 0; i < 10; ++i) {
    miner.record_session({{PointId{0}, 0}, {PointId{1}, 0}, {PointId{3}, 0}});
    miner.record_session({{PointId{0}, 1}, {PointId{2}, 0}, {PointId{3}, 0}});
  }
  EXPECT_EQ(miner.sessions(), 20u);
  EXPECT_DOUBLE_EQ(miner.transition_probability(PointId{0}, 0, PointId{1}),
                   1.0);
  EXPECT_DOUBLE_EQ(miner.transition_probability(PointId{0}, 1, PointId{2}),
                   1.0);
  EXPECT_DOUBLE_EQ(miner.transition_probability(PointId{0}, 0, PointId{2}),
                   0.0);
  const auto g = miner.learned_graph();
  const auto s = g.successors(PointId{0}, 0);
  ASSERT_EQ(s.size(), 1u);
  EXPECT_EQ(s[0].point, PointId{1});
}

TEST(SequenceMiner, EmptyAndSingletonSessionsAreHarmless) {
  SequenceMiner miner(mission_points());
  miner.record_session({});
  miner.record_session({{PointId{0}, 0}});
  EXPECT_EQ(miner.sessions(), 2u);
  EXPECT_DOUBLE_EQ(miner.transition_count(PointId{0}, 0), 0.0);
}

TEST(SequenceMiner, ConvergesToTrueTransitionProbabilities) {
  Rng rng(11);
  SequenceMiner miner(mission_points());
  // Ground truth: after (assess, 0), evacuate w.p. 0.8 else shelter.
  for (int s = 0; s < 5000; ++s) {
    const PointId next = rng.chance(0.8) ? PointId{1} : PointId{2};
    miner.record_session({{PointId{0}, 0}, {next, 0}, {PointId{3}, 0}});
  }
  EXPECT_NEAR(miner.transition_probability(PointId{0}, 0, PointId{1}), 0.8,
              0.02);
  EXPECT_NEAR(miner.transition_probability(PointId{0}, 0, PointId{2}), 0.2,
              0.02);
}

TEST(SequenceMiner, SmoothingKeepsRareSuccessorsAlive) {
  SequenceMiner miner(mission_points());
  miner.record_session({{PointId{0}, 0}, {PointId{1}, 0}});
  const auto strict = miner.learned_graph(0.0);
  EXPECT_EQ(strict.successors(PointId{0}, 0).size(), 1u);
  const auto smoothed = miner.learned_graph(0.5);
  const auto s = smoothed.successors(PointId{0}, 0);
  EXPECT_EQ(s.size(), 4u);  // every point possible
  EXPECT_EQ(s[0].point, PointId{1});  // observed one still most likely
  for (const auto& succ : s) EXPECT_GT(succ.probability, 0.0);
}

TEST(SequenceMiner, UnobservedContextYieldsNothing) {
  SequenceMiner miner(mission_points());
  miner.record_session({{PointId{0}, 0}, {PointId{1}, 0}});
  const auto g = miner.learned_graph(0.5);
  EXPECT_TRUE(g.successors(PointId{2}, 0).empty())
      << "smoothing must not invent transitions for unseen contexts";
}

TEST(SequenceMiner, MinedGraphSupportsAnticipation) {
  Rng rng(13);
  SequenceMiner miner(mission_points());
  for (int s = 0; s < 1000; ++s) {
    const bool evac = rng.chance(0.7);
    miner.record_session({{PointId{0}, evac ? 0 : 1},
                          {evac ? PointId{1} : PointId{2}, 0},
                          {PointId{3}, 0}});
  }
  const auto g = miner.learned_graph();
  // After assess→outcome 0, labels {2,3} (evacuate) should be anticipated.
  const auto ant = g.anticipated_labels(PointId{0}, 0, 0.5);
  ASSERT_EQ(ant.size(), 2u);
  EXPECT_EQ(ant[0].second, 1.0);
}

}  // namespace
}  // namespace dde::workflow
