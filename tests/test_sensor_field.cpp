#include "world/sensor_field.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>

namespace dde::world {
namespace {

struct Fixture {
  GridMap map{6, 6};
  ViabilityProcess truth;
  Rng rng{11};

  explicit Fixture(double p = 0.7)
      : truth(std::vector<SegmentDynamics>(map.segment_count(),
                                           SegmentDynamics{p, SimTime::seconds(600)}),
              Rng(99)) {}
};

SensorFieldConfig small_config() {
  SensorFieldConfig c;
  c.sensor_count = 12;
  c.coverage_radius = 1.0;
  c.fast_ratio = 0.5;
  return c;
}

TEST(SensorField, DeploysRequestedCount) {
  Fixture f;
  SensorField field(f.map, f.truth, small_config(), f.rng);
  EXPECT_EQ(field.sensors().size(), 12u);
}

TEST(SensorField, EverySensorCoversSomething) {
  Fixture f;
  SensorField field(f.map, f.truth, small_config(), f.rng);
  for (const auto& s : field.sensors()) {
    EXPECT_FALSE(s.covers.empty());
    // Footprint geometry: covered segments near the sensor position.
    for (SegmentId seg : s.covers) {
      const auto& segment = f.map.segment(seg);
      EXPECT_LE(std::abs(segment.mid_x() - s.x), 1.0 + 1e-9);
      EXPECT_LE(std::abs(segment.mid_y() - s.y), 1.0 + 1e-9);
    }
  }
}

TEST(SensorField, ObjectSizesWithinRange) {
  Fixture f;
  auto cfg = small_config();
  cfg.min_object_bytes = 1000;
  cfg.max_object_bytes = 2000;
  SensorField field(f.map, f.truth, cfg, f.rng);
  for (const auto& s : field.sensors()) {
    EXPECT_GE(s.object_bytes, 1000u);
    EXPECT_LE(s.object_bytes, 2000u);
  }
}

TEST(SensorField, FastRatioRespected) {
  Fixture f;
  auto cfg = small_config();
  cfg.fast_ratio = 0.25;
  cfg.sensor_count = 20;
  SensorField field(f.map, f.truth, cfg, f.rng);
  const auto fast = std::count_if(
      field.sensors().begin(), field.sensors().end(),
      [](const SensorInfo& s) { return s.rate == ChangeRate::kFast; });
  EXPECT_EQ(fast, 5);
}

TEST(SensorField, ValidityMatchesCategory) {
  Fixture f;
  auto cfg = small_config();
  cfg.slow_validity = SimTime::seconds(500);
  cfg.fast_validity = SimTime::seconds(20);
  SensorField field(f.map, f.truth, cfg, f.rng);
  for (const auto& s : field.sensors()) {
    EXPECT_EQ(s.validity, s.rate == ChangeRate::kFast ? SimTime::seconds(20)
                                                      : SimTime::seconds(500));
  }
}

TEST(SensorField, SensorsCoveringInvertsCoverage) {
  Fixture f;
  SensorField field(f.map, f.truth, small_config(), f.rng);
  for (const auto& s : field.sensors()) {
    for (SegmentId seg : s.covers) {
      const auto covering = field.sensors_covering(seg);
      EXPECT_NE(std::find(covering.begin(), covering.end(), s.id),
                covering.end());
    }
  }
}

TEST(SensorField, CoveredSegmentsIsSortedUnion) {
  Fixture f;
  SensorField field(f.map, f.truth, small_config(), f.rng);
  const auto covered = field.covered_segments();
  EXPECT_TRUE(std::is_sorted(covered.begin(), covered.end()));
  EXPECT_EQ(std::adjacent_find(covered.begin(), covered.end()), covered.end());
  for (SegmentId seg : covered) {
    EXPECT_FALSE(field.sensors_covering(seg).empty());
  }
}

TEST(SensorField, SampleMatchesGroundTruth) {
  Fixture f;
  SensorField field(f.map, f.truth, small_config(), f.rng);
  const SimTime t = SimTime::seconds(123);
  for (const auto& s : field.sensors()) {
    const EvidenceObject obj = field.sample(s.id, t);
    EXPECT_EQ(obj.source, s.id);
    EXPECT_EQ(obj.captured_at, t);
    EXPECT_EQ(obj.validity, s.validity);
    EXPECT_EQ(obj.bytes, s.object_bytes);
    EXPECT_EQ(obj.readings.size(), s.covers.size());
    for (SegmentId seg : s.covers) {
      ASSERT_TRUE(obj.readings.contains(seg));
      EXPECT_EQ(obj.readings.at(seg), f.truth.viable_at(seg, t));
    }
  }
}

TEST(SensorField, SampleIdsAreUniqueAndCounted) {
  Fixture f;
  SensorField field(f.map, f.truth, small_config(), f.rng);
  const auto a = field.sample(SourceId{0}, SimTime::seconds(1));
  const auto b = field.sample(SourceId{0}, SimTime::seconds(2));
  const auto c = field.sample(SourceId{1}, SimTime::seconds(2));
  EXPECT_NE(a.id, b.id);
  EXPECT_NE(b.id, c.id);
  EXPECT_EQ(field.total_samples(), 3u);
}

TEST(SensorField, FreshnessWindow) {
  Fixture f;
  auto cfg = small_config();
  cfg.fast_ratio = 0.0;
  cfg.slow_validity = SimTime::seconds(100);
  SensorField field(f.map, f.truth, cfg, f.rng);
  const auto obj = field.sample(SourceId{0}, SimTime::seconds(50));
  EXPECT_TRUE(obj.fresh_at(SimTime::seconds(50)));
  EXPECT_TRUE(obj.fresh_at(SimTime::seconds(149)));
  EXPECT_FALSE(obj.fresh_at(SimTime::seconds(150)));
  EXPECT_EQ(obj.expires_at(), SimTime::seconds(150));
}

TEST(SensorField, ThrowsOnUnknownSensor) {
  Fixture f;
  SensorField field(f.map, f.truth, small_config(), f.rng);
  EXPECT_THROW((void)field.sensor(SourceId{999}), std::out_of_range);
  EXPECT_THROW((void)field.sample(SourceId{999}, SimTime::zero()),
               std::out_of_range);
}

TEST(SensorField, NamesAreUniqueHierarchical) {
  Fixture f;
  SensorField field(f.map, f.truth, small_config(), f.rng);
  std::set<std::string> names;
  for (const auto& s : field.sensors()) {
    EXPECT_GE(s.name.size(), 3u);
    EXPECT_TRUE(names.insert(s.name.to_string()).second);
  }
}

}  // namespace
}  // namespace dde::world
