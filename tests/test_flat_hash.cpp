// Flat hash map/set and arena adapters: determinism and churn coverage.
//
// The athena hot-path tranche (docs/PERFORMANCE.md) moved per-node
// protocol tables onto FlatU64Map/FlatU64Set and per-query state onto
// Pool/SmallVec/SmallMap/SmallSet. These containers carry a determinism
// contract — slot layout and iteration order are pure functions of the
// operation history — that the simulation's byte-identical trajectories
// lean on. This suite pins that contract under tombstone-heavy churn and
// capacity growth, plus the basic semantics of every adapter.

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "common/arena.h"
#include "common/flat_hash.h"

namespace dde {
namespace {

// ---------------------------------------------------------------------------
// FlatU64Map
// ---------------------------------------------------------------------------

TEST(FlatU64Map, InsertFindErase) {
  FlatU64Map<int> m;
  EXPECT_TRUE(m.empty());
  m.insert(7, 70);
  m.insert(8, 80);
  ASSERT_NE(m.find(7), nullptr);
  EXPECT_EQ(*m.find(7), 70);
  EXPECT_EQ(m.find(9), nullptr);
  EXPECT_TRUE(m.erase(7));
  EXPECT_FALSE(m.erase(7));
  EXPECT_EQ(m.find(7), nullptr);
  EXPECT_EQ(m.size(), 1u);
}

TEST(FlatU64Map, InsertIfAbsentAndFindOrInsert) {
  FlatU64Map<int> m;
  EXPECT_TRUE(m.insert_if_absent(1, 10));
  EXPECT_FALSE(m.insert_if_absent(1, 99));
  EXPECT_EQ(*m.find(1), 10);
  m.find_or_insert(2) = 20;
  EXPECT_EQ(*m.find(2), 20);
  m.find_or_insert(2) += 5;
  EXPECT_EQ(*m.find(2), 25);
  EXPECT_EQ(m.size(), 2u);
}

TEST(FlatU64Map, ClearKeepsWorking) {
  FlatU64Map<int> m;
  for (std::uint64_t k = 0; k < 100; ++k) m.insert(k, static_cast<int>(k));
  m.clear();
  EXPECT_TRUE(m.empty());
  EXPECT_EQ(m.find(42), nullptr);
  m.insert(42, 1);
  EXPECT_EQ(m.size(), 1u);
  EXPECT_EQ(*m.find(42), 1);
}

// Tombstone-heavy churn: a bounded working set cycled far past the table
// capacity must stay correct and must not grow the table without bound
// (rebuilds reclaim tombstones in place).
TEST(FlatU64Map, TombstoneChurnStaysCorrect) {
  FlatU64Map<std::uint64_t> m(8);
  constexpr std::uint64_t kWindow = 32;
  for (std::uint64_t k = 0; k < 20000; ++k) {
    m.insert(k, k * 3);
    if (k >= kWindow) {
      ASSERT_TRUE(m.erase(k - kWindow));
    }
  }
  EXPECT_EQ(m.size(), kWindow);
  for (std::uint64_t k = 20000 - kWindow; k < 20000; ++k) {
    ASSERT_NE(m.find(k), nullptr);
    EXPECT_EQ(*m.find(k), k * 3);
  }
  EXPECT_EQ(m.find(20000 - kWindow - 1), nullptr);
}

// Same operation history => same slot layout, observed through for_each
// visit order. Two independently grown tables must agree element-for-
// element, and sorted_keys() must be ascending regardless of layout.
TEST(FlatU64Map, GrowthDeterminism) {
  auto build = [] {
    FlatU64Map<std::uint64_t> m;
    for (std::uint64_t k = 0; k < 3000; ++k) m.insert(k * 2654435761u, k);
    for (std::uint64_t k = 0; k < 3000; k += 3) m.erase(k * 2654435761u);
    return m;
  };
  const auto a = build();
  const auto b = build();
  std::vector<std::uint64_t> order_a;
  std::vector<std::uint64_t> order_b;
  a.for_each([&](std::uint64_t k, const std::uint64_t&) { order_a.push_back(k); });
  b.for_each([&](std::uint64_t k, const std::uint64_t&) { order_b.push_back(k); });
  EXPECT_EQ(order_a, order_b);

  const auto sorted = a.sorted_keys();
  ASSERT_EQ(sorted.size(), a.size());
  for (std::size_t i = 1; i < sorted.size(); ++i) {
    EXPECT_LT(sorted[i - 1], sorted[i]);
  }
}

TEST(FlatU64Map, EraseIfSlotOrder) {
  FlatU64Map<int> m;
  for (std::uint64_t k = 0; k < 50; ++k) m.insert(k, static_cast<int>(k));
  const std::size_t erased =
      m.erase_if([](std::uint64_t, int v) { return v % 2 == 0; });
  EXPECT_EQ(erased, 25u);
  EXPECT_EQ(m.size(), 25u);
  m.for_each([](std::uint64_t, int v) { EXPECT_EQ(v % 2, 1); });
  // Tombstones left by erase_if must not break lookups or reinsertion.
  for (std::uint64_t k = 0; k < 50; k += 2) {
    EXPECT_EQ(m.find(k), nullptr);
    m.insert(k, static_cast<int>(k));
  }
  EXPECT_EQ(m.size(), 50u);
}

TEST(FlatU64Map, NonTrivialValueType) {
  FlatU64Map<std::string> m;
  m.insert(1, "one");
  m.find_or_insert(2) = "two";
  EXPECT_EQ(*m.find(1), "one");
  m.erase(1);
  EXPECT_EQ(m.find(1), nullptr);
  EXPECT_EQ(*m.find(2), "two");
}

// ---------------------------------------------------------------------------
// FlatU64Set
// ---------------------------------------------------------------------------

TEST(FlatU64Set, InsertContainsErase) {
  FlatU64Set s;
  EXPECT_TRUE(s.insert(5));
  EXPECT_FALSE(s.insert(5));
  EXPECT_TRUE(s.contains(5));
  EXPECT_FALSE(s.contains(6));
  EXPECT_TRUE(s.erase(5));
  EXPECT_FALSE(s.erase(5));
  EXPECT_TRUE(s.empty());
}

TEST(FlatU64Set, TombstoneChurnStaysCorrect) {
  FlatU64Set s(8);
  constexpr std::uint64_t kWindow = 16;
  for (std::uint64_t k = 0; k < 10000; ++k) {
    ASSERT_TRUE(s.insert(k));
    if (k >= kWindow) ASSERT_TRUE(s.erase(k - kWindow));
  }
  EXPECT_EQ(s.size(), kWindow);
  for (std::uint64_t k = 10000 - kWindow; k < 10000; ++k) {
    EXPECT_TRUE(s.contains(k));
  }
  EXPECT_FALSE(s.contains(10000 - kWindow - 1));
}

TEST(FlatU64Set, SortedKeysAndForEachAgree) {
  FlatU64Set s;
  std::uint64_t expect_sum = 0;
  for (std::uint64_t k = 0; k < 200; ++k) {
    s.insert(k * 7919);
    expect_sum += k * 7919;
  }
  std::uint64_t sum = 0;
  s.for_each([&](std::uint64_t k) { sum += k; });
  EXPECT_EQ(sum, expect_sum);
  const auto sorted = s.sorted_keys();
  ASSERT_EQ(sorted.size(), 200u);
  for (std::size_t i = 1; i < sorted.size(); ++i) {
    EXPECT_LT(sorted[i - 1], sorted[i]);
  }
  s.clear();
  EXPECT_TRUE(s.empty());
  EXPECT_FALSE(s.contains(0));
}

// ---------------------------------------------------------------------------
// Pool
// ---------------------------------------------------------------------------

struct Tracked {
  static int live;
  int value = 0;
  Tracked() { ++live; }
  explicit Tracked(int v) : value(v) { ++live; }
  Tracked(const Tracked& o) : value(o.value) { ++live; }
  Tracked(Tracked&& o) noexcept : value(o.value) { ++live; }
  ~Tracked() { --live; }
  Tracked& operator=(const Tracked&) = default;
  Tracked& operator=(Tracked&&) = default;
};
int Tracked::live = 0;

TEST(Pool, CreateDestroyReusesSlotsLifo) {
  Pool<int, 4> pool;
  const auto a = pool.create(1);
  const auto b = pool.create(2);
  EXPECT_EQ(pool.at(a), 1);
  EXPECT_EQ(pool.at(b), 2);
  pool.destroy(a);
  EXPECT_FALSE(pool.is_live(a));
  const auto c = pool.create(3);
  EXPECT_EQ(c, a);  // LIFO freelist: most recently freed slot first
  EXPECT_EQ(pool.at(c), 3);
  EXPECT_EQ(pool.live(), 2u);
}

TEST(Pool, PointerStabilityAcrossGrowth) {
  Pool<int, 4> pool;
  const auto first = pool.create(123);
  int* p = &pool.at(first);
  std::vector<Pool<int, 4>::Slot> slots;
  for (int i = 0; i < 100; ++i) slots.push_back(pool.create(i));
  EXPECT_EQ(p, &pool.at(first));  // chunks never move
  EXPECT_EQ(*p, 123);
  for (std::size_t i = 0; i < slots.size(); ++i) {
    EXPECT_EQ(pool.at(slots[i]), static_cast<int>(i));
  }
  EXPECT_GE(pool.capacity(), 101u);
}

TEST(Pool, DestructorsRunEagerlyAndOnClear) {
  Tracked::live = 0;
  {
    Pool<Tracked, 8> pool;
    const auto a = pool.create(1);
    const auto b = pool.create(2);
    (void)b;
    EXPECT_EQ(Tracked::live, 2);
    pool.destroy(a);
    EXPECT_EQ(Tracked::live, 1);
    pool.clear();
    EXPECT_EQ(Tracked::live, 0);
    const auto c = pool.create(3);
    EXPECT_EQ(pool.at(c).value, 3);
    EXPECT_EQ(Tracked::live, 1);
  }
  EXPECT_EQ(Tracked::live, 0);  // pool destructor cleans up live objects
}

// ---------------------------------------------------------------------------
// SmallVec / SmallMap / SmallSet
// ---------------------------------------------------------------------------

TEST(SmallVec, SpillPreservesContentsAndOrder) {
  SmallVec<int, 2> v;
  for (int i = 0; i < 10; ++i) v.push_back(i);
  ASSERT_EQ(v.size(), 10u);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(v[static_cast<std::size_t>(i)], i);
  int expect = 0;
  for (const int x : v) EXPECT_EQ(x, expect++);  // contiguous after spill
  EXPECT_EQ(v.back(), 9);
  v.pop_back();
  EXPECT_EQ(v.back(), 8);
}

TEST(SmallVec, RemoveIfAndEraseAtPreserveOrder) {
  SmallVec<int, 4> v;
  for (int i = 0; i < 8; ++i) v.push_back(i);
  EXPECT_EQ(v.remove_if([](int x) { return x % 2 == 0; }), 4u);
  ASSERT_EQ(v.size(), 4u);
  EXPECT_EQ(v[0], 1);
  EXPECT_EQ(v[3], 7);
  v.erase_at(1);  // removes 3
  ASSERT_EQ(v.size(), 3u);
  EXPECT_EQ(v[0], 1);
  EXPECT_EQ(v[1], 5);
  EXPECT_EQ(v[2], 7);
  v.clear();
  EXPECT_TRUE(v.empty());
  v.push_back(42);  // usable after clear, back in inline mode
  EXPECT_EQ(v[0], 42);
}

TEST(SmallMap, RefSetFindErase) {
  SmallMap<int, int, 2> m;
  m.ref(1) = 10;
  m.set(2, 20);
  m.set(2, 21);  // overwrite, not duplicate
  EXPECT_EQ(m.size(), 2u);
  ASSERT_NE(m.find(2), nullptr);
  EXPECT_EQ(*m.find(2), 21);
  EXPECT_TRUE(m.contains(1));
  EXPECT_FALSE(m.contains(3));
  m.ref(3) = 30;  // spills past inline capacity
  EXPECT_EQ(m.size(), 3u);
  EXPECT_TRUE(m.erase(2));
  EXPECT_FALSE(m.erase(2));
  // Iteration is insertion order with erased entries closed up.
  std::vector<int> keys;
  for (const auto& item : m) keys.push_back(item.key);
  EXPECT_EQ(keys, (std::vector<int>{1, 3}));
}

TEST(SmallSet, InsertDedupAndOrder) {
  SmallSet<int, 2> s;
  EXPECT_TRUE(s.insert(3));
  EXPECT_TRUE(s.insert(1));
  EXPECT_FALSE(s.insert(3));
  EXPECT_TRUE(s.insert(2));  // spills
  EXPECT_EQ(s.size(), 3u);
  std::vector<int> order(s.begin(), s.end());
  EXPECT_EQ(order, (std::vector<int>{3, 1, 2}));  // insertion order
  EXPECT_TRUE(s.erase(1));
  EXPECT_FALSE(s.contains(1));
  order.assign(s.begin(), s.end());
  EXPECT_EQ(order, (std::vector<int>{3, 2}));
}

}  // namespace
}  // namespace dde
