#include "net/network.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "des/simulator.h"

namespace dde::net {
namespace {

struct Harness {
  des::Simulator sim;
  Topology topo;
  std::vector<NodeId> nodes;

  explicit Harness(std::size_t n, double bw = 1e6,
                   SimTime latency = SimTime::millis(1)) {
    for (std::size_t i = 0; i < n; ++i) nodes.push_back(topo.add_node());
    for (std::size_t i = 0; i + 1 < n; ++i) {
      topo.add_link(nodes[i], nodes[i + 1], bw, latency);
    }
    topo.compute_routes();
  }
};

Packet packet(std::uint64_t bytes, std::string tag = "") {
  Packet p;
  p.bytes = bytes;
  p.payload = std::move(tag);
  return p;
}

TEST(Network, DeliversOneHop) {
  Harness h(2);
  Network net(h.sim, h.topo);
  std::vector<std::string> received;
  net.set_handler(h.nodes[1], [&](NodeId self, const Packet& p) {
    EXPECT_EQ(self, h.nodes[1]);
    received.push_back(std::any_cast<std::string>(p.payload));
  });
  net.send(h.nodes[0], h.nodes[1], packet(1000, "hello"));
  h.sim.run_until();
  ASSERT_EQ(received.size(), 1u);
  EXPECT_EQ(received[0], "hello");
}

TEST(Network, ArrivalTimeIsSerializationPlusLatency) {
  Harness h(2, 1e6, SimTime::millis(10));
  Network net(h.sim, h.topo);
  SimTime arrival;
  net.set_handler(h.nodes[1], [&](NodeId, const Packet&) {
    arrival = h.sim.now();
  });
  // 125000 bytes at 1 Mbps = 1 s serialization + 10 ms propagation.
  net.send(h.nodes[0], h.nodes[1], packet(125000));
  h.sim.run_until();
  EXPECT_EQ(arrival, SimTime::seconds(1) + SimTime::millis(10));
}

TEST(Network, LinkIsFifoAndSequential) {
  Harness h(2);
  Network net(h.sim, h.topo);
  std::vector<std::pair<std::string, SimTime>> rx;
  net.set_handler(h.nodes[1], [&](NodeId, const Packet& p) {
    rx.emplace_back(std::any_cast<std::string>(p.payload), h.sim.now());
  });
  // Two 125 KB packets sent back to back: the second waits for the first.
  net.send(h.nodes[0], h.nodes[1], packet(125000, "a"));
  net.send(h.nodes[0], h.nodes[1], packet(125000, "b"));
  h.sim.run_until();
  ASSERT_EQ(rx.size(), 2u);
  EXPECT_EQ(rx[0].first, "a");
  EXPECT_EQ(rx[0].second, SimTime::seconds(1) + SimTime::millis(1));
  EXPECT_EQ(rx[1].first, "b");
  EXPECT_EQ(rx[1].second, SimTime::seconds(2) + SimTime::millis(1));
}

TEST(Network, OppositeDirectionsDoNotContend) {
  Harness h(2);
  Network net(h.sim, h.topo);
  SimTime t01;
  SimTime t10;
  net.set_handler(h.nodes[1], [&](NodeId, const Packet&) { t01 = h.sim.now(); });
  net.set_handler(h.nodes[0], [&](NodeId, const Packet&) { t10 = h.sim.now(); });
  net.send(h.nodes[0], h.nodes[1], packet(125000));
  net.send(h.nodes[1], h.nodes[0], packet(125000));
  h.sim.run_until();
  // Full duplex: both arrive at 1s + 1ms.
  EXPECT_EQ(t01, t10);
}

TEST(Network, SendToNonNeighborFails) {
  Harness h(3);
  Network net(h.sim, h.topo);
  bool got = false;
  net.set_handler(h.nodes[2], [&](NodeId, const Packet&) { got = true; });
  EXPECT_FALSE(net.send(h.nodes[0], h.nodes[2], packet(100)));
  h.sim.run_until();
  EXPECT_FALSE(got);
  EXPECT_EQ(net.stats().packets, 0u);
}

TEST(Network, StatsCountPerHopBytes) {
  Harness h(3);
  Network net(h.sim, h.topo);
  // Relay: node 1 forwards to node 2.
  net.set_handler(h.nodes[1], [&](NodeId, const Packet& p) {
    Packet copy;
    copy.bytes = p.bytes;
    copy.payload = p.payload;
    net.send(h.nodes[1], h.nodes[2], std::move(copy));
  });
  int delivered = 0;
  net.set_handler(h.nodes[2], [&](NodeId, const Packet&) { ++delivered; });
  net.send(h.nodes[0], h.nodes[1], packet(1000));
  h.sim.run_until();
  EXPECT_EQ(delivered, 1);
  EXPECT_EQ(net.stats().packets, 2u);
  EXPECT_EQ(net.stats().bytes, 2000u);  // counted on both hops
}

TEST(Network, PerLinkBytes) {
  Harness h(2);
  Network net(h.sim, h.topo);
  net.set_handler(h.nodes[1], [](NodeId, const Packet&) {});
  net.send(h.nodes[0], h.nodes[1], packet(500));
  net.send(h.nodes[0], h.nodes[1], packet(700));
  h.sim.run_until();
  const auto link = h.topo.link_between(h.nodes[0], h.nodes[1]);
  ASSERT_TRUE(link.has_value());
  EXPECT_EQ(net.link_bytes(*link), 1200u);
  const auto back = h.topo.link_between(h.nodes[1], h.nodes[0]);
  EXPECT_EQ(net.link_bytes(*back), 0u);
}

TEST(Network, MessageIdsAssigned) {
  Harness h(2);
  Network net(h.sim, h.topo);
  std::vector<MessageId> ids;
  net.set_handler(h.nodes[1], [&](NodeId, const Packet& p) {
    ids.push_back(p.id);
  });
  net.send(h.nodes[0], h.nodes[1], packet(1));
  net.send(h.nodes[0], h.nodes[1], packet(1));
  h.sim.run_until();
  ASSERT_EQ(ids.size(), 2u);
  EXPECT_TRUE(ids[0].valid());
  EXPECT_NE(ids[0], ids[1]);
}

TEST(Network, NoHandlerDropsSilently) {
  Harness h(2);
  Network net(h.sim, h.topo);
  EXPECT_TRUE(net.send(h.nodes[0], h.nodes[1], packet(100)));
  h.sim.run_until();  // must not crash
  EXPECT_EQ(net.stats().packets, 1u);
}

TEST(Network, NextHopDelegatesToTopology) {
  Harness h(4);
  Network net(h.sim, h.topo);
  EXPECT_EQ(net.next_hop(h.nodes[0], h.nodes[3]), h.nodes[1]);
}

TEST(Network, ZeroByteControlPacketArrivesAfterLatencyOnly) {
  Harness h(2, 1e6, SimTime::millis(7));
  Network net(h.sim, h.topo);
  SimTime arrival;
  net.set_handler(h.nodes[1], [&](NodeId, const Packet&) {
    arrival = h.sim.now();
  });
  net.send(h.nodes[0], h.nodes[1], packet(0));
  h.sim.run_until();
  EXPECT_EQ(arrival, SimTime::millis(7));
}

TEST(Network, HandlerCanSendFurther) {
  // Chain forwarding across 4 nodes, accumulating hops in the payload.
  Harness h(4);
  Network net(h.sim, h.topo);
  int hops_seen = 0;
  for (std::size_t i = 1; i < 4; ++i) {
    net.set_handler(h.nodes[i], [&, i](NodeId, const Packet& p) {
      ++hops_seen;
      if (i < 3) {
        Packet copy;
        copy.bytes = p.bytes;
        net.send(h.nodes[i], h.nodes[i + 1], std::move(copy));
      }
    });
  }
  net.send(h.nodes[0], h.nodes[1], packet(100));
  h.sim.run_until();
  EXPECT_EQ(hops_seen, 3);
}

TEST(Network, TracerSeesSendsAndDeliveries) {
  Harness h(3);
  Network net(h.sim, h.topo);
  std::vector<TraceEvent> events;
  std::vector<std::string> traced_payloads;
  net.set_tracer([&](const TraceEvent& ev) {
    events.push_back(ev);
    // The payload pointer is only valid for the duration of the callback
    // (it points into the packet, which dies with the delivery event), so
    // protocol-aware tracers must inspect it here, not afterwards.
    if (ev.payload != nullptr) {
      if (const auto* s = std::any_cast<std::string>(ev.payload)) {
        traced_payloads.push_back(*s);
      }
    }
  });
  net.set_handler(h.nodes[1], [](NodeId, const Packet&) {});
  net.send(h.nodes[0], h.nodes[1], packet(1000, "x"));
  h.sim.run_until();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].kind, TraceEvent::Kind::kSend);
  EXPECT_EQ(events[1].kind, TraceEvent::Kind::kDeliver);
  EXPECT_EQ(events[0].from, h.nodes[0]);
  EXPECT_EQ(events[0].to, h.nodes[1]);
  EXPECT_EQ(events[0].bytes, 1000u);
  EXPECT_LT(events[0].at, events[1].at);
  EXPECT_EQ(events[0].message, events[1].message);
  // Payload was accessible to the tracer on both send and delivery.
  EXPECT_EQ(traced_payloads, (std::vector<std::string>{"x", "x"}));
}

TEST(Network, TracerRemovable) {
  Harness h(2);
  Network net(h.sim, h.topo);
  int count = 0;
  net.set_tracer([&](const TraceEvent&) { ++count; });
  net.send(h.nodes[0], h.nodes[1], packet(1));
  net.set_tracer(nullptr);
  net.send(h.nodes[0], h.nodes[1], packet(1));
  h.sim.run_until();
  // First packet: send traced; its delivery happens after the tracer was
  // removed, so only the send event is counted.
  EXPECT_EQ(count, 1);
}

TEST(Network, PriorityPreemptsQueueNotTransmission) {
  Harness h(2);
  Network net(h.sim, h.topo);
  std::vector<std::string> order;
  net.set_handler(h.nodes[1], [&](NodeId, const Packet& p) {
    order.push_back(std::any_cast<std::string>(p.payload));
  });
  auto priority_packet = [](std::uint64_t bytes, std::string tag, int prio) {
    Packet p;
    p.bytes = bytes;
    p.priority = prio;
    p.payload = std::move(tag);
    return p;
  };
  // Three best-effort packets, then a critical one: the critical packet
  // jumps the queue but cannot preempt the transfer already in progress.
  net.send(h.nodes[0], h.nodes[1], priority_packet(125000, "a", 0));
  net.send(h.nodes[0], h.nodes[1], priority_packet(125000, "b", 0));
  net.send(h.nodes[0], h.nodes[1], priority_packet(125000, "c", 0));
  net.send(h.nodes[0], h.nodes[1], priority_packet(125000, "CRIT", 1));
  h.sim.run_until();
  ASSERT_EQ(order.size(), 4u);
  EXPECT_EQ(order[0], "a");
  EXPECT_EQ(order[1], "CRIT");
  EXPECT_EQ(order[2], "b");
  EXPECT_EQ(order[3], "c");
}

TEST(Network, BackgroundYieldsToEverything) {
  Harness h(2);
  Network net(h.sim, h.topo);
  std::vector<std::string> order;
  net.set_handler(h.nodes[1], [&](NodeId, const Packet& p) {
    order.push_back(std::any_cast<std::string>(p.payload));
  });
  Packet bg;
  bg.bytes = 125000;
  bg.priority = -1;
  bg.payload = std::string("bg1");
  net.send(h.nodes[0], h.nodes[1], std::move(bg));
  Packet bg2;
  bg2.bytes = 125000;
  bg2.priority = -1;
  bg2.payload = std::string("bg2");
  net.send(h.nodes[0], h.nodes[1], std::move(bg2));
  Packet fg;
  fg.bytes = 125000;
  fg.payload = std::string("fg");
  net.send(h.nodes[0], h.nodes[1], std::move(fg));
  h.sim.run_until();
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order[0], "bg1");  // already transmitting
  EXPECT_EQ(order[1], "fg");   // overtakes the queued background packet
  EXPECT_EQ(order[2], "bg2");
}

TEST(Network, FifoWithinPriorityClass) {
  Harness h(2);
  Network net(h.sim, h.topo);
  std::vector<std::string> order;
  net.set_handler(h.nodes[1], [&](NodeId, const Packet& p) {
    order.push_back(std::any_cast<std::string>(p.payload));
  });
  for (const char* tag : {"1", "2", "3", "4"}) {
    Packet p;
    p.bytes = 1000;
    p.priority = 5;
    p.payload = std::string(tag);
    net.send(h.nodes[0], h.nodes[1], std::move(p));
  }
  h.sim.run_until();
  EXPECT_EQ(order, (std::vector<std::string>{"1", "2", "3", "4"}));
}

TEST(Network, QueueLengthObservable) {
  Harness h(2);
  Network net(h.sim, h.topo);
  net.set_handler(h.nodes[1], [](NodeId, const Packet&) {});
  const auto link = *h.topo.link_between(h.nodes[0], h.nodes[1]);
  EXPECT_EQ(net.queue_length(link), 0u);
  net.send(h.nodes[0], h.nodes[1], packet(125000));  // starts transmitting
  net.send(h.nodes[0], h.nodes[1], packet(125000));  // queued
  net.send(h.nodes[0], h.nodes[1], packet(125000));  // queued
  EXPECT_EQ(net.queue_length(link), 2u);
  h.sim.run_until();
  EXPECT_EQ(net.queue_length(link), 0u);
}

TEST(Network, LossDropsApproximatelyAtRate) {
  Harness h(2);
  Network net(h.sim, h.topo);
  net.set_loss_rate(0.3, 42);
  int delivered = 0;
  net.set_handler(h.nodes[1], [&](NodeId, const Packet&) { ++delivered; });
  const int sent = 2000;
  for (int i = 0; i < sent; ++i) {
    net.send(h.nodes[0], h.nodes[1], packet(10));
  }
  h.sim.run_until();
  EXPECT_EQ(net.stats().dropped + static_cast<std::uint64_t>(delivered),
            static_cast<std::uint64_t>(sent));
  EXPECT_NEAR(static_cast<double>(net.stats().dropped) / sent, 0.3, 0.04);
}

TEST(Network, LossDeterministicPerSeed) {
  auto run = [](std::uint64_t seed) {
    Harness h(2);
    Network net(h.sim, h.topo);
    net.set_loss_rate(0.5, seed);
    net.set_handler(h.nodes[1], [](NodeId, const Packet&) {});
    for (int i = 0; i < 500; ++i) {
      net.send(h.nodes[0], h.nodes[1], packet(10));
    }
    h.sim.run_until();
    return net.stats().dropped;
  };
  EXPECT_EQ(run(7), run(7));
  EXPECT_NE(run(7), run(8));  // overwhelmingly likely
}

TEST(Network, DroppedCountedExactlyOncePerLostPacket) {
  // Mixed loss sources in one run: queued + in-flight drops from a link
  // going down, then independent loss on the healed link. Every lost packet
  // must appear in `dropped` exactly once, and every sent byte stays
  // charged whether or not the packet arrived.
  Harness h(2);
  Network net(h.sim, h.topo);
  int delivered = 0;
  net.set_handler(h.nodes[1], [&](NodeId, const Packet&) { ++delivered; });
  const auto link = *h.topo.link_between(h.nodes[0], h.nodes[1]);

  // Phase 1: one transmitting + two queued when the link dies at 0.5 s.
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(net.send(h.nodes[0], h.nodes[1], packet(125000)));
  }
  h.sim.schedule_at(SimTime::millis(500), [&] { net.set_link_up(link, false); });
  // Phase 2: heal, then push 200 small packets through 30% loss.
  h.sim.schedule_at(SimTime::seconds(2), [&] {
    net.set_link_up(link, true);
    net.set_loss_rate(0.3, 42);
    for (int i = 0; i < 200; ++i) {
      ASSERT_TRUE(net.send(h.nodes[0], h.nodes[1], packet(100)));
    }
  });
  h.sim.run_until();

  EXPECT_EQ(net.stats().packets, 203u);
  EXPECT_EQ(net.stats().dropped + static_cast<std::uint64_t>(delivered), 203u)
      << "each packet is either delivered or dropped, never both/neither";
  EXPECT_EQ(net.stats().link_down_drops, 3u);
  EXPECT_GT(net.stats().dropped, net.stats().link_down_drops)
      << "independent loss must have claimed some of the 200";
  EXPECT_EQ(net.stats().bytes, 3u * 125000u + 200u * 100u)
      << "bytes are charged at send time, drops do not refund them";
}

TEST(Network, DownLinkRejectsSendsAndHealsCleanly) {
  Harness h(2);
  Network net(h.sim, h.topo);
  int delivered = 0;
  net.set_handler(h.nodes[1], [&](NodeId, const Packet&) { ++delivered; });
  const auto link = *h.topo.link_between(h.nodes[0], h.nodes[1]);
  EXPECT_TRUE(net.link_up(link));
  net.set_link_up(link, false);
  EXPECT_FALSE(net.link_up(link));
  EXPECT_FALSE(net.send(h.nodes[0], h.nodes[1], packet(100)));
  // Reverse direction is a distinct link and stays usable.
  const auto back = *h.topo.link_between(h.nodes[1], h.nodes[0]);
  EXPECT_TRUE(net.link_up(back));
  net.set_link_up(link, true);
  EXPECT_TRUE(net.send(h.nodes[0], h.nodes[1], packet(100)));
  h.sim.run_until();
  EXPECT_EQ(delivered, 1);
  EXPECT_EQ(net.stats().dropped, 0u);
}

TEST(Network, DownNodeRejectsSendsAndDropsDeliveries) {
  Harness h(2);
  Network net(h.sim, h.topo);
  int delivered = 0;
  net.set_handler(h.nodes[1], [&](NodeId, const Packet&) { ++delivered; });
  net.send(h.nodes[0], h.nodes[1], packet(125000));  // arrives ~1.001 s
  h.sim.schedule_at(SimTime::millis(500), [&] {
    net.set_node_up(h.nodes[1], false);
  });
  h.sim.run_until();
  EXPECT_EQ(delivered, 0);
  EXPECT_EQ(net.stats().dropped, 1u);
  EXPECT_EQ(net.stats().link_down_drops, 1u);
  EXPECT_FALSE(net.send(h.nodes[1], h.nodes[0], packet(100)))
      << "a downed node cannot originate traffic";
  net.set_node_up(h.nodes[1], true);
  net.send(h.nodes[0], h.nodes[1], packet(100));
  h.sim.run_until();
  EXPECT_EQ(delivered, 1);
}

TEST(Network, LossModelHookDecidesPerPacket) {
  Harness h(2);
  Network net(h.sim, h.topo);
  int delivered = 0;
  net.set_handler(h.nodes[1], [&](NodeId, const Packet&) { ++delivered; });
  // Deterministic model: drop every other packet on this link.
  int seen = 0;
  net.set_loss_model([&](LinkId) { return (seen++ % 2) == 0; });
  for (int i = 0; i < 10; ++i) {
    net.send(h.nodes[0], h.nodes[1], packet(10));
  }
  h.sim.run_until();
  EXPECT_EQ(delivered, 5);
  EXPECT_EQ(net.stats().dropped, 5u);
  // Removing the model restores lossless delivery.
  net.set_loss_model(nullptr);
  net.send(h.nodes[0], h.nodes[1], packet(10));
  h.sim.run_until();
  EXPECT_EQ(delivered, 6);
}

TEST(Network, QueueCapNeverEvictsTransmittingPacket) {
  Harness h(2);
  Network net(h.sim, h.topo);
  net.set_queue_limits(QueueLimits{.max_packets = 1});
  std::vector<std::string> order;
  net.set_handler(h.nodes[1], [&](NodeId, const Packet& p) {
    order.push_back(std::any_cast<std::string>(p.payload));
  });
  net.send(h.nodes[0], h.nodes[1], packet(125000, "t"));  // transmitting
  net.send(h.nodes[0], h.nodes[1], packet(125000, "x"));  // waiting, fits
  net.send(h.nodes[0], h.nodes[1], packet(125000, "y"));  // overflows
  h.sim.run_until();
  // The in-flight packet is untouchable; the overflow evicts the newest
  // same-priority packet, which is the arrival itself.
  EXPECT_EQ(order, (std::vector<std::string>{"t", "x"}));
  EXPECT_EQ(net.stats().queue_drops, 1u);
  EXPECT_EQ(net.stats().dropped, 1u);
}

TEST(Network, QueueCapEvictsLowestPriorityNewestFirst) {
  Harness h(2);
  Network net(h.sim, h.topo);
  net.set_queue_limits(QueueLimits{.max_packets = 2});
  std::vector<std::string> order;
  net.set_handler(h.nodes[1], [&](NodeId, const Packet& p) {
    order.push_back(std::any_cast<std::string>(p.payload));
  });
  auto priority_packet = [](std::uint64_t bytes, std::string tag, int prio) {
    Packet p;
    p.bytes = bytes;
    p.priority = prio;
    p.payload = std::move(tag);
    return p;
  };
  net.send(h.nodes[0], h.nodes[1], priority_packet(125000, "t", 0));
  net.send(h.nodes[0], h.nodes[1], priority_packet(125000, "hi", 1));
  net.send(h.nodes[0], h.nodes[1], priority_packet(125000, "lo", 0));
  // A higher-priority arrival displaces the queued low-priority packet
  // rather than being rejected itself.
  net.send(h.nodes[0], h.nodes[1], priority_packet(125000, "crit", 2));
  h.sim.run_until();
  EXPECT_EQ(order, (std::vector<std::string>{"t", "crit", "hi"}));
  EXPECT_EQ(net.stats().queue_drops, 1u);
  const auto link = *h.topo.link_between(h.nodes[0], h.nodes[1]);
  EXPECT_EQ(net.link_queue_drops(link), 1u);
}

TEST(Network, QueueByteCapRefundsEvictedBytes) {
  Harness h(2);
  Network net(h.sim, h.topo);
  net.set_queue_limits(QueueLimits{.max_bytes = 1500});
  int delivered = 0;
  net.set_handler(h.nodes[1], [&](NodeId, const Packet&) { ++delivered; });
  const auto link = *h.topo.link_between(h.nodes[0], h.nodes[1]);
  net.send(h.nodes[0], h.nodes[1], packet(125000));  // transmitting, uncapped
  net.send(h.nodes[0], h.nodes[1], packet(1000));    // waiting: 1000 B
  EXPECT_EQ(net.queue_bytes(link), 1000u);
  net.send(h.nodes[0], h.nodes[1], packet(1000));    // 2000 B > cap: evict
  EXPECT_EQ(net.queue_bytes(link), 1000u);
  h.sim.run_until();
  EXPECT_EQ(delivered, 2);
  EXPECT_EQ(net.queue_bytes(link), 0u);
  // Evicted packets never crossed the link, so their bytes are refunded —
  // the tally matches exactly what was transmitted.
  EXPECT_EQ(net.stats().bytes, 126000u);
  EXPECT_EQ(net.link_bytes(link), 126000u);
  EXPECT_EQ(net.stats().queue_drops, 1u);
}

TEST(Network, PermissiveQueueCapsMatchUnbounded) {
  auto run = [](bool capped) {
    Harness h(2);
    Network net(h.sim, h.topo);
    if (capped) {
      net.set_queue_limits(
          QueueLimits{.max_packets = 1000, .max_bytes = 1 << 30});
    }
    std::vector<std::pair<std::string, SimTime>> rx;
    net.set_handler(h.nodes[1], [&](NodeId, const Packet& p) {
      rx.emplace_back(std::any_cast<std::string>(p.payload), h.sim.now());
    });
    for (const char* tag : {"1", "2", "3", "4", "5"}) {
      net.send(h.nodes[0], h.nodes[1], packet(50000, tag));
    }
    h.sim.run_until();
    EXPECT_EQ(net.stats().queue_drops, 0u);
    return rx;
  };
  EXPECT_EQ(run(false), run(true));
}

TEST(Network, ZeroLossDeliversEverything) {
  Harness h(2);
  Network net(h.sim, h.topo);
  int delivered = 0;
  net.set_handler(h.nodes[1], [&](NodeId, const Packet&) { ++delivered; });
  for (int i = 0; i < 100; ++i) {
    net.send(h.nodes[0], h.nodes[1], packet(10));
  }
  h.sim.run_until();
  EXPECT_EQ(delivered, 100);
  EXPECT_EQ(net.stats().dropped, 0u);
}

TEST(NetworkDeathTest, NodeAndLinkAccessorsRejectUnknownIds) {
  // Regression: set_node_up/node_up/link_up indexed their vectors without
  // bounds checks while the queue accessors used .at() — an out-of-range id
  // was silent UB in release builds. All four now DDE_CHECK.
  Harness h(2);
  Network net(h.sim, h.topo);
  const NodeId bogus_node{h.nodes.size() + 5};
  const LinkId bogus_link{h.topo.link_count() + 5};
  EXPECT_DEATH(net.set_node_up(bogus_node, false), "set_node_up");
  EXPECT_DEATH((void)net.node_up(bogus_node), "node_up");
  EXPECT_DEATH((void)net.link_up(bogus_link), "link_up");
  EXPECT_DEATH(net.set_link_up(bogus_link, false), "set_link_up");
  EXPECT_DEATH((void)net.node_up(NodeId{}), "node_up");
  // In-range ids keep working.
  net.set_node_up(h.nodes[0], false);
  EXPECT_FALSE(net.node_up(h.nodes[0]));
  net.set_node_up(h.nodes[0], true);
  EXPECT_TRUE(net.node_up(h.nodes[0]));
}

TEST(Network, EvictionVictimIsLowestPriorityNewest) {
  // The flat per-link heap must pick the same eviction victim the old
  // ordered map did: lowest priority first, newest within that class.
  Harness h(2);
  Network net(h.sim, h.topo);
  net.set_queue_limits(QueueLimits{3, 0});
  std::vector<std::string> delivered;
  net.set_handler(h.nodes[1], [&](NodeId, const Packet& p) {
    delivered.push_back(std::any_cast<std::string>(p.payload));
  });
  // First packet transmits immediately; the rest contend for 3 wait slots.
  auto prioritized = [&](int prio, std::string tag) {
    Packet p = packet(1000, std::move(tag));
    p.priority = prio;
    net.send(h.nodes[0], h.nodes[1], std::move(p));
  };
  prioritized(0, "head");
  prioritized(1, "hi-old");
  prioritized(0, "lo-old");
  prioritized(0, "lo-new");   // newest of the lowest class...
  prioritized(2, "hi-top");   // ...evicted when this arrives
  h.sim.run_until();
  EXPECT_EQ(delivered, (std::vector<std::string>{"head", "hi-top", "hi-old",
                                                 "lo-old"}));
  EXPECT_EQ(net.stats().queue_drops, 1u);
}

}  // namespace
}  // namespace dde::net
