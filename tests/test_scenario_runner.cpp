// The scenario plugin framework (src/scenario/runner.h): registry
// determinism, declarative spec round-trips, typo'd-knob rejection, and —
// the load-bearing property of the PR that introduced it — bit-for-bit
// equality between a registry-driven run and the legacy typed-config entry
// points it wraps.
#include "scenario/runner.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/contracts.h"
#include "scenario/route_scenario.h"
#include "scenario/spec.h"
#include "scenario/teleop_scenario.h"
#include "scenario/trigger_scenario.h"

namespace dde::scenario {
namespace {

TEST(ScenarioRegistry, ListsBuiltinsSorted) {
  const std::vector<std::string> names = scenario_names();
  ASSERT_EQ(names.size(), 3u);
  EXPECT_EQ(names[0], "route");
  EXPECT_EQ(names[1], "teleop");
  EXPECT_EQ(names[2], "trigger");
  // Deterministic across calls.
  EXPECT_EQ(scenario_names(), names);
}

TEST(ScenarioRegistry, FindUnknownReturnsNull) {
  EXPECT_EQ(find_scenario("no_such_scenario"), nullptr);
}

TEST(ScenarioRegistry, FindYieldsFreshInstances) {
  auto a = find_scenario("route");
  auto b = find_scenario("route");
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  EXPECT_NE(a.get(), b.get());
  EXPECT_EQ(a->metadata().name, "route");
  EXPECT_FALSE(a->metadata().description.empty());
}

TEST(ScenarioRegistryDeathTest, DuplicateNameDies) {
  // Force builtin registration before the death-test fork (gtest runs
  // *DeathTest suites first, ahead of the tests that would otherwise have
  // touched the registry).
  ASSERT_FALSE(scenario_names().empty());
  const auto factory = +[]() -> std::unique_ptr<ScenarioRunner> {
    return find_scenario("route");
  };
  EXPECT_DEATH(register_scenario("route", factory),
               "duplicate scenario name");
}

TEST(ScenarioSpec, RoundTripsForEveryBuiltin) {
  for (const std::string& name : scenario_names()) {
    const auto runner = find_scenario(name);
    const ScenarioSpec spec = runner->spec();
    EXPECT_FALSE(spec.empty()) << name;
    EXPECT_EQ(ScenarioSpec::parse(spec.dump()), spec) << name;
    // Feeding a scenario its own full spec back is always legal and
    // changes nothing.
    auto other = find_scenario(name);
    other->configure(spec);
    EXPECT_EQ(other->spec(), spec) << name;
  }
}

TEST(ScenarioSpecDeathTest, UnknownKeyDies) {
  for (const std::string& name : scenario_names()) {
    const auto runner = find_scenario(name);
    ScenarioSpec typo;
    typo.set("definitely_not_a_knob", 1);
    EXPECT_DEATH(runner->configure(typo), "unknown key") << name;
  }
}

// --- registry runs pin bit-for-bit to the legacy entry points ------------

TEST(ScenarioRegistry, RouteMatchesLegacyBitForBit) {
  ScenarioSpec spec;
  spec.set("grid_width", 6);
  spec.set("grid_height", 6);
  spec.set("node_count", 16);
  spec.set("queries_per_node", 2);
  spec.set("fast_ratio", 0.3);
  spec.set("horizon_s", 300);
  spec.set("scheme", "lvfl");

  ScenarioConfig cfg = route_config_from_spec(spec);
  cfg.seed = 11;
  const ScenarioResult legacy = run_route_scenario(cfg);

  auto runner = find_scenario("route");
  runner->configure(spec);
  const ScenarioOutcome out = runner->run(11);

  EXPECT_EQ(out.at("queries"), static_cast<double>(legacy.queries));
  EXPECT_EQ(out.at("queries_resolved"),
            static_cast<double>(legacy.metrics.queries_resolved));
  EXPECT_EQ(out.at("events"), static_cast<double>(legacy.events));
  EXPECT_EQ(out.at("resolution_ratio"), legacy.resolution_ratio());
  EXPECT_EQ(out.at("mean_latency_s"), legacy.metrics.mean_latency_s());
  EXPECT_EQ(out.at("total_megabytes"), legacy.total_megabytes());
}

TEST(ScenarioRegistry, TriggerMatchesLegacyBitForBit) {
  TriggerScenarioConfig cfg;
  cfg.horizon = SimTime::seconds(1200);
  cfg.seed = 5;
  const TriggerScenarioResult legacy = run_trigger_scenario(cfg);

  ScenarioSpec spec;
  spec.set("horizon_s", 1200);
  auto runner = find_scenario("trigger");
  runner->configure(spec);
  const ScenarioOutcome out = runner->run(5);

  EXPECT_EQ(out.at("events"), static_cast<double>(legacy.events));
  EXPECT_EQ(out.at("queries_issued"),
            static_cast<double>(legacy.queries_issued));
  EXPECT_EQ(out.at("queries_resolved"),
            static_cast<double>(legacy.metrics.queries_resolved));
  EXPECT_EQ(out.at("resolution_ratio"), legacy.resolution_ratio());
  EXPECT_EQ(out.at("reactions"),
            static_cast<double>(legacy.reaction_s.size()));
}

TEST(ScenarioRegistry, TeleopMatchesLegacyBitForBit) {
  TeleopScenarioConfig cfg;
  cfg.horizon = SimTime::seconds(120);
  cfg.seed = 3;
  const TeleopScenarioResult legacy = run_teleop_scenario(cfg);

  ScenarioSpec spec;
  spec.set("horizon_s", 120);
  auto runner = find_scenario("teleop");
  runner->configure(spec);
  const ScenarioOutcome out = runner->run(3);

  EXPECT_EQ(out.at("queries"), static_cast<double>(legacy.queries_issued));
  EXPECT_EQ(out.at("deadline_hits"),
            static_cast<double>(legacy.deadline_hits));
  EXPECT_EQ(out.at("deadline_hit_rate"), legacy.deadline_hit_rate());
  EXPECT_EQ(out.at("events"), static_cast<double>(legacy.events));
  EXPECT_EQ(out.at("replica_copies"),
            static_cast<double>(legacy.replica_copies));
}

// --- lifecycle ------------------------------------------------------------

TEST(ScenarioRunner, ResetAllowsReconfigureAndRerun) {
  auto runner = find_scenario("teleop");
  ScenarioSpec spec;
  spec.set("horizon_s", 120);
  runner->configure(spec);
  const ScenarioOutcome a = runner->run(2);
  runner->reset();
  const ScenarioOutcome b = runner->run(2);
  EXPECT_EQ(a.metrics, b.metrics);  // setup() after reset() is a clean redo
}

// --- the teleop plugin's headline property --------------------------------

TEST(TeleopScenario, RedundancyLiftsDeadlineHitRateUnderBurstyLoss) {
  double hit[2] = {0.0, 0.0};
  for (std::uint64_t seed : {1, 2}) {
    for (std::size_t k : {std::size_t{1}, std::size_t{3}}) {
      TeleopScenarioConfig cfg;
      cfg.multipath_redundancy = k;
      cfg.horizon = SimTime::seconds(300);
      cfg.seed = seed;
      const auto r = run_teleop_scenario(cfg);
      hit[k == 3] += r.deadline_hit_rate() / 2.0;
      if (k == 1) {
        EXPECT_EQ(r.replica_copies, 0u);
        EXPECT_EQ(r.replica_duplicates, 0u);
      } else {
        EXPECT_GT(r.replica_copies, 0u);
      }
    }
  }
  EXPECT_GT(hit[1], hit[0] + 0.15);
}

// --- knob validation regressions (PR 6): silently-ignored knobs now clamp -

TEST(TriggerScenario, NonPositiveEventRateClampsToDefault) {
  const long before = contracts::clamp_notes_emitted();
  TriggerScenarioConfig bad;
  bad.event_rate_per_hour = 0.0;
  bad.horizon = SimTime::seconds(600);
  const auto clamped = run_trigger_scenario(bad);

  TriggerScenarioConfig good;  // default event_rate_per_hour = 12
  good.horizon = SimTime::seconds(600);
  const auto reference = run_trigger_scenario(good);

  EXPECT_EQ(clamped.events, reference.events);
  EXPECT_EQ(clamped.metrics.queries_resolved,
            reference.metrics.queries_resolved);
  EXPECT_GT(contracts::clamp_notes_emitted(), before);
}

TEST(TriggerScenario, NonPositiveWatchPeriodClampsToDefault) {
  TriggerScenarioConfig bad;
  bad.watch_period = SimTime::zero();
  bad.horizon = SimTime::seconds(600);
  const auto clamped = run_trigger_scenario(bad);

  TriggerScenarioConfig good;  // default watch_period = 5 s
  good.horizon = SimTime::seconds(600);
  const auto reference = run_trigger_scenario(good);

  EXPECT_EQ(clamped.events, reference.events);
  EXPECT_EQ(clamped.queries_issued, reference.queries_issued);
}

TEST(RouteScenarioDeathTest, ZeroNodesAbortsBeforeTheHeraldClamp) {
  // The empty-network herald clamp in the disruption handler is
  // defense-in-depth: the public entry rejects a world with no sensors
  // (and thus no nodes) long before a disruption could fire.
  ScenarioConfig cfg;
  cfg.node_count = 0;
  cfg.queries_per_node = 0;
  cfg.disruption_at = SimTime::seconds(10);
  cfg.broadcast_invalidation = true;
  EXPECT_DEATH((void)run_route_scenario(cfg), "at least one sensor");
}

TEST(TeleopScenario, ZeroRedundancyClampsToSinglePath) {
  TeleopScenarioConfig bad;
  bad.multipath_redundancy = 0;
  bad.horizon = SimTime::seconds(120);
  const auto clamped = run_teleop_scenario(bad);

  TeleopScenarioConfig good;
  good.multipath_redundancy = 1;
  good.horizon = SimTime::seconds(120);
  const auto reference = run_teleop_scenario(good);

  EXPECT_EQ(clamped.events, reference.events);
  EXPECT_EQ(clamped.bytes_sent, reference.bytes_sent);
  EXPECT_EQ(clamped.replica_copies, 0u);
}

}  // namespace
}  // namespace dde::scenario
