#include "athena/node.h"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "athena/directory.h"
#include "des/simulator.h"

namespace dde::athena {
namespace {

using world::SensorInfo;

decision::DnfExpr single_label(std::uint64_t l) {
  decision::DnfExpr e;
  e.add_disjunct(decision::Conjunction{{decision::Term{LabelId{l}, false}}});
  return e;
}

/// Line network A(0) — B(1) — C(2).
///   sensor 0 @ C covers segments {0 (viable), 1 (blocked)}, 1000 B, 100 s.
///   sensor 1 @ A covers segment {2 (viable)}, 800 B, 100 s.
///   sensor 2 @ C covers segment {3 (viable)}, 1000 B, 10 ms (stale-on-arrival).
struct Fixture {
  world::GridMap map{4, 4};
  world::ViabilityProcess truth;
  world::SensorField field;
  net::Topology topo;
  std::vector<NodeId> nodes;
  des::Simulator sim;
  net::Network net;
  Directory dir;
  AthenaMetrics metrics;
  std::vector<std::unique_ptr<AthenaNode>> athena;

  static std::vector<world::SegmentDynamics> dynamics(std::size_t n) {
    std::vector<world::SegmentDynamics> d(
        n, world::SegmentDynamics{1.0, SimTime::seconds(1e7)});
    d[1].p_viable = 0.0;  // segment 1 is blocked
    return d;
  }

  static std::vector<SensorInfo> sensors() {
    SensorInfo s0;
    s0.id = SourceId{0};
    s0.name = naming::Name::parse("/t/c");
    s0.covers = {SegmentId{0}, SegmentId{1}};
    s0.object_bytes = 1000;
    s0.validity = SimTime::seconds(100);
    SensorInfo s1;
    s1.id = SourceId{1};
    s1.name = naming::Name::parse("/t/a");
    s1.covers = {SegmentId{2}};
    s1.object_bytes = 800;
    s1.validity = SimTime::seconds(100);
    SensorInfo s2;
    s2.id = SourceId{2};
    s2.name = naming::Name::parse("/t/c2");
    s2.covers = {SegmentId{3}};
    s2.object_bytes = 1000;
    s2.validity = SimTime::millis(10);
    s2.rate = world::ChangeRate::kFast;
    return {s0, s1, s2};
  }

  explicit Fixture(const AthenaConfig& cfg = config_for(Scheme::kLvfl))
      : truth(dynamics(map.segment_count()), Rng(1)),
        field(map, truth, sensors()),
        topo(),
        nodes(),
        sim(),
        net(make_net()),
        dir(topo, field, {NodeId{2}, NodeId{0}, NodeId{2}},
            {{LabelId{0}, 0.9},
             {LabelId{1}, 0.1},
             {LabelId{2}, 0.9},
             {LabelId{3}, 0.9}}) {
    for (std::size_t i = 0; i < 3; ++i) {
      athena.push_back(std::make_unique<AthenaNode>(NodeId{i}, net, dir, field,
                                                    cfg, metrics));
    }
  }

  net::Network make_net() {
    for (int i = 0; i < 3; ++i) nodes.push_back(topo.add_node());
    topo.add_link(nodes[0], nodes[1], 1e6, SimTime::millis(1));
    topo.add_link(nodes[1], nodes[2], 1e6, SimTime::millis(1));
    topo.compute_routes();
    return net::Network(sim, topo);
  }

  const QueryRecord& last_record(std::size_t node) const {
    return athena[node]->records().back();
  }
};

TEST(AthenaNode, LocalSensorResolvesWithoutObjectTraffic) {
  Fixture f;
  f.athena[2]->query_init(single_label(0), SimTime::seconds(30));
  f.sim.run_until(SimTime::seconds(1));
  EXPECT_EQ(f.metrics.queries_resolved, 1u);
  EXPECT_TRUE(f.last_record(2).success);
  EXPECT_EQ(f.metrics.object_bytes, 0u);
  EXPECT_EQ(f.metrics.object_requests, 0u);
  EXPECT_GE(f.metrics.sensor_samples, 1u);
}

TEST(AthenaNode, ResolutionIsImmediateForLocalEvidence) {
  Fixture f;
  f.athena[2]->query_init(single_label(0), SimTime::seconds(30));
  // Resolution happens synchronously at init; no simulation needed.
  EXPECT_TRUE(f.last_record(2).success);
  EXPECT_EQ(f.last_record(2).finished_at, SimTime::zero());
}

TEST(AthenaNode, RemoteFetchResolvesQuery) {
  Fixture f;
  f.athena[0]->query_init(single_label(0), SimTime::seconds(30));
  f.sim.run_until(SimTime::seconds(5));
  EXPECT_EQ(f.metrics.queries_resolved, 1u);
  EXPECT_TRUE(f.last_record(0).success);
  // One request (2 hops) and the object back (2 hops).
  EXPECT_EQ(f.metrics.object_requests, 1u);
  EXPECT_EQ(f.metrics.object_bytes, 2000u);
  EXPECT_GT(f.last_record(0).finished_at, SimTime::zero());
}

TEST(AthenaNode, BlockedSegmentResolvesToNoViableAction) {
  Fixture f;
  f.athena[0]->query_init(single_label(1), SimTime::seconds(30));
  f.sim.run_until(SimTime::seconds(5));
  // Decision reached (route known blocked): still a resolved query.
  EXPECT_EQ(f.metrics.queries_resolved, 1u);
  EXPECT_TRUE(f.last_record(0).success);
  EXPECT_FALSE(f.last_record(0).chosen_action.has_value());
}

TEST(AthenaNode, ChosenActionIdentifiesViableRoute) {
  Fixture f;
  decision::DnfExpr e;
  // Route 0 = blocked segment 1; route 1 = viable segment 0.
  e.add_disjunct(decision::Conjunction{{decision::Term{LabelId{1}, false}}});
  e.add_disjunct(decision::Conjunction{{decision::Term{LabelId{0}, false}}});
  f.athena[0]->query_init(std::move(e), SimTime::seconds(30));
  f.sim.run_until(SimTime::seconds(5));
  ASSERT_TRUE(f.last_record(0).success);
  EXPECT_EQ(f.last_record(0).chosen_action, std::size_t{1});
}

TEST(AthenaNode, OneObjectSettlesMultipleLabels) {
  Fixture f;
  decision::DnfExpr e;
  // Both labels come from sensor 0's single object.
  e.add_disjunct(decision::Conjunction{{decision::Term{LabelId{0}, false},
                                        decision::Term{LabelId{1}, true}}});
  f.athena[0]->query_init(std::move(e), SimTime::seconds(30));
  f.sim.run_until(SimTime::seconds(5));
  EXPECT_EQ(f.metrics.queries_resolved, 1u);
  EXPECT_EQ(f.metrics.object_requests, 1u) << "one object covers both labels";
}

TEST(AthenaNode, IntermediateCacheServesSecondQuery) {
  // lvf: no label sharing, so the object cache (not a label cache) serves.
  Fixture f(config_for(Scheme::kLvf));
  f.athena[0]->query_init(single_label(0), SimTime::seconds(30));
  f.sim.run_until(SimTime::seconds(2));
  const auto bytes_after_first = f.metrics.object_bytes;
  // B relayed the object and cached it; B's own query is served from cache.
  f.athena[1]->query_init(single_label(0), SimTime::seconds(30));
  f.sim.run_until(SimTime::seconds(4));
  EXPECT_EQ(f.metrics.queries_resolved, 2u);
  EXPECT_GE(f.metrics.object_cache_hits, 1u);
  EXPECT_EQ(f.metrics.object_bytes, bytes_after_first)
      << "cache hit at B costs no further object transfer";
}

TEST(AthenaNode, InterestAggregationAvoidsDuplicateUpstream) {
  // Disable prefetch so the only traffic is the two fetches.
  auto cfg = config_for(Scheme::kLvf);
  cfg.prefetch = false;
  Fixture f(cfg);
  // A and B request the same remote object at the same instant.
  f.athena[0]->query_init(single_label(0), SimTime::seconds(30));
  f.athena[1]->query_init(single_label(0), SimTime::seconds(30));
  f.sim.run_until(SimTime::seconds(5));
  EXPECT_EQ(f.metrics.queries_resolved, 2u);
  EXPECT_GE(f.metrics.interest_aggregations, 1u)
      << "B must fold A's request into its own pending interest";
  // Object crosses C→B once and B→A once: 2000 bytes, not 3000.
  EXPECT_EQ(f.metrics.object_bytes, 2000u);
}

TEST(AthenaNode, StaleObjectCountedAndRefetched) {
  Fixture f;
  // Label 3's sensor has a 10 ms validity; the 2-hop round trip takes ~20 ms,
  // so every arrival is stale.
  f.athena[0]->query_init(single_label(3), SimTime::seconds(2));
  f.sim.run_until(SimTime::seconds(10));
  EXPECT_EQ(f.metrics.queries_resolved, 0u);
  EXPECT_EQ(f.metrics.queries_failed, 1u);
  EXPECT_GE(f.metrics.stale_arrivals, 1u);
  EXPECT_GE(f.metrics.refetches, 1u);
  EXPECT_FALSE(f.last_record(0).success);
}

TEST(AthenaNode, FastLocalQueryIgnoresTransitStaleness) {
  Fixture f;
  // The same volatile sensor resolved at its host: no transit, no staleness.
  f.athena[2]->query_init(single_label(3), SimTime::seconds(2));
  f.sim.run_until(SimTime::seconds(1));
  EXPECT_EQ(f.metrics.queries_resolved, 1u);
}

TEST(AthenaNode, UncoveredLabelFailsAtDeadline) {
  Fixture f;
  f.athena[0]->query_init(single_label(50), SimTime::seconds(3));
  f.sim.run_until(SimTime::seconds(10));
  EXPECT_EQ(f.metrics.queries_failed, 1u);
  EXPECT_EQ(f.metrics.object_requests, 0u);
  EXPECT_EQ(f.last_record(0).finished_at, SimTime::seconds(3));
}

TEST(AthenaNode, ShortCircuitSkipsSecondRoute) {
  Fixture f;
  decision::DnfExpr e;
  // Route 0: label 2 (hosted locally at A, viable). Route 1: label 0 (remote).
  e.add_disjunct(decision::Conjunction{{decision::Term{LabelId{2}, false}}});
  e.add_disjunct(decision::Conjunction{{decision::Term{LabelId{0}, false}}});
  f.athena[0]->query_init(std::move(e), SimTime::seconds(30));
  f.sim.run_until(SimTime::seconds(5));
  EXPECT_EQ(f.metrics.queries_resolved, 1u);
  EXPECT_EQ(f.metrics.object_requests, 0u)
      << "local evidence short-circuits the whole decision";
  EXPECT_EQ(f.metrics.object_bytes, 0u);
}

TEST(AthenaNode, LabelSharingServesSecondOriginCheaply) {
  Fixture f;  // lvfl
  f.athena[0]->query_init(single_label(0), SimTime::seconds(30));
  f.sim.run_until(SimTime::seconds(3));
  const auto object_bytes_before = f.metrics.object_bytes;
  ASSERT_EQ(f.metrics.queries_resolved, 1u);
  // A evaluated label 0 and shared it toward C; B's cache now holds it.
  f.athena[1]->query_init(single_label(0), SimTime::seconds(30));
  f.sim.run_until(SimTime::seconds(6));
  EXPECT_EQ(f.metrics.queries_resolved, 2u);
  EXPECT_EQ(f.metrics.object_bytes, object_bytes_before)
      << "second origin is served by labels (or cache), not a new object";
}

TEST(AthenaNode, NoLabelSharingInLvfScheme) {
  Fixture f(config_for(Scheme::kLvf));
  f.athena[0]->query_init(single_label(0), SimTime::seconds(30));
  f.sim.run_until(SimTime::seconds(3));
  EXPECT_EQ(f.metrics.label_bytes, 0u);
  EXPECT_EQ(f.metrics.label_cache_hits, 0u);
}

TEST(AthenaNode, PrefetchPushHappensForAnnouncedQueries) {
  Fixture f;
  // Origin B announces; host C's sensor 0 covers announced label 0 and
  // pushes. B's own fetch may win the race — the push must still occur.
  decision::DnfExpr e;
  e.add_disjunct(decision::Conjunction{{decision::Term{LabelId{2}, false}}});
  e.add_disjunct(decision::Conjunction{{decision::Term{LabelId{0}, false}}});
  f.athena[1]->query_init(std::move(e), SimTime::seconds(30));
  f.sim.run_until(SimTime::seconds(5));
  EXPECT_EQ(f.metrics.queries_resolved, 1u);
  EXPECT_GE(f.metrics.prefetch_pushes, 1u);
  EXPECT_GT(f.metrics.push_bytes, 0u);
}

TEST(AthenaNode, NoPrefetchWhenDisabled) {
  auto cfg = config_for(Scheme::kLvfl);
  cfg.prefetch = false;
  Fixture f(cfg);
  f.athena[0]->query_init(single_label(0), SimTime::seconds(30));
  f.sim.run_until(SimTime::seconds(5));
  EXPECT_EQ(f.metrics.prefetch_pushes, 0u);
  EXPECT_EQ(f.metrics.push_bytes, 0u);
  EXPECT_EQ(f.metrics.announce_bytes, 0u);
}

TEST(AthenaNode, QueryIdsAreGloballyUnique) {
  Fixture f;
  const QueryId a = f.athena[0]->query_init(single_label(2), SimTime::seconds(30));
  const QueryId b = f.athena[1]->query_init(single_label(2), SimTime::seconds(30));
  const QueryId c = f.athena[0]->query_init(single_label(2), SimTime::seconds(30));
  EXPECT_NE(a, b);
  EXPECT_NE(a, c);
  EXPECT_NE(b, c);
}

TEST(AthenaNode, MetricsCountIssuedQueries) {
  Fixture f;
  f.athena[0]->query_init(single_label(2), SimTime::seconds(30));
  f.athena[1]->query_init(single_label(0), SimTime::seconds(30));
  f.sim.run_until(SimTime::seconds(10));
  EXPECT_EQ(f.metrics.queries_issued, 2u);
  EXPECT_EQ(f.metrics.queries_resolved + f.metrics.queries_failed, 2u);
}

TEST(AthenaNode, NegatedTermOnBlockedSegmentIsViable) {
  Fixture f;
  decision::DnfExpr e;
  // "take the detour if segment 1 is NOT viable" — segment 1 is blocked.
  e.add_disjunct(decision::Conjunction{{decision::Term{LabelId{1}, true}}});
  f.athena[0]->query_init(std::move(e), SimTime::seconds(30));
  f.sim.run_until(SimTime::seconds(5));
  ASSERT_EQ(f.metrics.queries_resolved, 1u);
  EXPECT_EQ(f.last_record(0).chosen_action, std::size_t{0});
}

TEST(AthenaNode, ActiveQueriesDrainsToZero) {
  Fixture f;
  f.athena[0]->query_init(single_label(0), SimTime::seconds(30));
  f.athena[0]->query_init(single_label(2), SimTime::seconds(30));
  EXPECT_GT(f.athena[0]->active_queries(), 0u);
  f.sim.run_until(SimTime::seconds(10));
  EXPECT_EQ(f.athena[0]->active_queries(), 0u);
}

TEST(AthenaNode, RequestsSentRecorded) {
  Fixture f;
  f.athena[0]->query_init(single_label(0), SimTime::seconds(30));
  f.sim.run_until(SimTime::seconds(5));
  EXPECT_EQ(f.last_record(0).requests_sent, 1u);
}

TEST(AthenaNode, TrustedAnnotatorSetAcceptsOnlyListed) {
  // Label sharing on, but object caches off so B cannot self-annotate from
  // the relayed copy — the only cheap path is A's shared label.
  auto cfg = config_for(Scheme::kLvfl);
  cfg.object_cache_capacity = 0;
  cfg.prefetch = false;  // keep prefetch pushes from racing the fetch
  Fixture f(cfg);
  // B trusts only annotator 99 (nobody real) — shared labels are rejected
  // and B must fetch the object itself.
  f.athena[1]->set_trusted_annotators({AnnotatorId{99}});
  f.athena[0]->query_init(single_label(0), SimTime::seconds(30));
  f.sim.run_until(SimTime::seconds(3));
  const auto object_bytes_before = f.metrics.object_bytes;
  f.athena[1]->query_init(single_label(0), SimTime::seconds(30));
  f.sim.run_until(SimTime::seconds(8));
  EXPECT_EQ(f.metrics.queries_resolved, 2u);
  EXPECT_GT(f.metrics.object_bytes, object_bytes_before)
      << "distrusting the shared label forces an object fetch";
}

TEST(AthenaNode, TrustedAnnotatorSetAcceptsListed) {
  auto cfg = config_for(Scheme::kLvfl);
  cfg.object_cache_capacity = 0;
  cfg.prefetch = false;
  Fixture f(cfg);
  // B explicitly trusts A's annotator id — shared labels are accepted.
  f.athena[1]->set_trusted_annotators({AnnotatorId{0}});
  f.athena[0]->query_init(single_label(0), SimTime::seconds(30));
  f.sim.run_until(SimTime::seconds(3));
  const auto object_bytes_before = f.metrics.object_bytes;
  f.athena[1]->query_init(single_label(0), SimTime::seconds(30));
  f.sim.run_until(SimTime::seconds(8));
  EXPECT_EQ(f.metrics.queries_resolved, 2u);
  EXPECT_EQ(f.metrics.object_bytes, object_bytes_before);
}

TEST(AthenaNode, TrustsOwnAnnotationsAlways) {
  Fixture f(config_for(Scheme::kLvf));  // sharing off
  EXPECT_TRUE(f.athena[0]->trusts(AnnotatorId{0}));
  EXPECT_FALSE(f.athena[0]->trusts(AnnotatorId{1}));
}

TEST(AthenaNode, EquivalentObjectSubstitutionServesRequest) {
  // Sensor 0 (at C) covers segments {0,1}. A fourth sensor at B covering
  // segment 0 would be the substitution candidate; here we instead verify
  // via the cache: B holds sensor 0's object, and a request directed at a
  // hypothetical different source covering label 0 can be served by it.
  auto cfg = config_for(Scheme::kLvf);
  cfg.substitute_equivalent_objects = true;
  Fixture f(cfg);
  // Warm B's cache with sensor 0's object.
  f.athena[1]->query_init(single_label(0), SimTime::seconds(30));
  f.sim.run_until(SimTime::seconds(3));
  ASSERT_EQ(f.metrics.queries_resolved, 1u);
  // A asks for label 1 — designated source is sensor 0 again, so the cache
  // at B serves directly (normal cache hit). Substitution engages when the
  // designated source differs; with a single covering sensor per label in
  // this fixture, assert the flag at least leaves behaviour correct.
  f.athena[0]->query_init(single_label(1), SimTime::seconds(30));
  f.sim.run_until(SimTime::seconds(8));
  EXPECT_EQ(f.metrics.queries_resolved, 2u);
}

TEST(AthenaNode, InvalidationPurgesAndRefetches) {
  Fixture f;  // lvfl
  // Resolve once: label 0 now cached at A (labels + object along the path).
  f.athena[0]->query_init(single_label(0), SimTime::seconds(30));
  f.sim.run_until(SimTime::seconds(3));
  ASSERT_EQ(f.metrics.queries_resolved, 1u);
  const auto bytes_before = f.metrics.object_bytes;

  // An invalidation voids label 0 everywhere. A new query must refetch.
  f.athena[2]->broadcast_invalidation({LabelId{0}});
  f.sim.run_until(SimTime::seconds(4));
  f.athena[0]->query_init(single_label(0), SimTime::seconds(30));
  f.sim.run_until(SimTime::seconds(8));
  EXPECT_EQ(f.metrics.queries_resolved, 2u);
  EXPECT_GT(f.metrics.object_bytes, bytes_before)
      << "the voided caches must not serve; the object travels again";
}

TEST(AthenaNode, InvalidationIgnoredWhenDisabled) {
  auto cfg = config_for(Scheme::kLvfl);
  cfg.honor_invalidations = false;
  Fixture f(cfg);
  f.athena[0]->query_init(single_label(0), SimTime::seconds(30));
  f.sim.run_until(SimTime::seconds(3));
  const auto bytes_before = f.metrics.object_bytes;
  f.athena[2]->broadcast_invalidation({LabelId{0}});
  f.sim.run_until(SimTime::seconds(4));
  f.athena[0]->query_init(single_label(0), SimTime::seconds(30));
  f.sim.run_until(SimTime::seconds(8));
  EXPECT_EQ(f.metrics.queries_resolved, 2u);
  // Note: broadcast_invalidation always purges the *broadcasting* node;
  // A and B ignore the notice, so A's caches still answer.
  EXPECT_EQ(f.metrics.object_bytes, bytes_before);
}

TEST(AthenaNode, InvalidationReopensActiveQuery) {
  Fixture f;
  // A two-label query; label 0 resolves fast, label 2 is local to A.
  decision::DnfExpr e;
  e.add_disjunct(decision::Conjunction{{decision::Term{LabelId{0}, false},
                                        decision::Term{LabelId{2}, false}}});
  f.athena[0]->query_init(std::move(e), SimTime::seconds(30));
  f.sim.run_until(SimTime::seconds(3));
  ASSERT_EQ(f.metrics.queries_resolved, 1u);
  // Re-issue, invalidate mid-flight: the query must still converge by
  // refetching the voided label.
  f.athena[0]->query_init(single_label(0), SimTime::seconds(30));
  f.athena[2]->broadcast_invalidation({LabelId{0}});
  f.sim.run_until(SimTime::seconds(10));
  EXPECT_EQ(f.metrics.queries_resolved, 2u);
}

// Every scheme must handle the same basic flows; parameterize the core
// lifecycle over all five presets.
class AllSchemes : public ::testing::TestWithParam<Scheme> {};

TEST_P(AllSchemes, RemoteQueryResolves) {
  Fixture f(config_for(GetParam()));
  f.athena[0]->query_init(single_label(0), SimTime::seconds(30));
  f.sim.run_until(SimTime::seconds(20));
  EXPECT_EQ(f.metrics.queries_resolved, 1u) << to_string(GetParam());
}

TEST_P(AllSchemes, LocalQueryCostsNoObjectTraffic) {
  Fixture f(config_for(GetParam()));
  f.athena[2]->query_init(single_label(0), SimTime::seconds(30));
  f.sim.run_until(SimTime::seconds(5));
  EXPECT_EQ(f.metrics.queries_resolved, 1u);
  EXPECT_EQ(f.metrics.object_bytes, 0u);
}

TEST_P(AllSchemes, UncoveredLabelFailsCleanly) {
  Fixture f(config_for(GetParam()));
  f.athena[0]->query_init(single_label(50), SimTime::seconds(2));
  f.sim.run_until(SimTime::seconds(5));
  EXPECT_EQ(f.metrics.queries_failed, 1u);
}

TEST_P(AllSchemes, TwoRouteDecisionPicksViable) {
  Fixture f(config_for(GetParam()));
  decision::DnfExpr e;
  e.add_disjunct(decision::Conjunction{{decision::Term{LabelId{1}, false}}});
  e.add_disjunct(decision::Conjunction{{decision::Term{LabelId{0}, false}}});
  f.athena[0]->query_init(std::move(e), SimTime::seconds(30));
  f.sim.run_until(SimTime::seconds(20));
  ASSERT_EQ(f.metrics.queries_resolved, 1u);
  EXPECT_EQ(f.last_record(0).chosen_action, std::size_t{1});
}

TEST_P(AllSchemes, AccountingIsConsistent) {
  Fixture f(config_for(GetParam()));
  f.athena[0]->query_init(single_label(0), SimTime::seconds(30));
  f.athena[1]->query_init(single_label(2), SimTime::seconds(30));
  f.sim.run_until(SimTime::seconds(20));
  EXPECT_EQ(f.net.stats().bytes, f.metrics.total_bytes());
}

INSTANTIATE_TEST_SUITE_P(Schemes, AllSchemes,
                         ::testing::Values(Scheme::kCmp, Scheme::kSlt,
                                           Scheme::kLcf, Scheme::kLvf,
                                           Scheme::kLvfl),
                         [](const auto& param_info) {
                           return std::string(to_string(param_info.param));
                         });

TEST(AthenaNode, RecoverFromLostReply) {
  auto cfg = config_for(Scheme::kLvf);
  cfg.prefetch = false;
  cfg.request_timeout = SimTime::seconds(2);
  Fixture f(cfg);
  // Drop roughly half of all packets; the timeout watchdog re-issues until
  // a request/reply pair survives. With a generous deadline the query must
  // still resolve.
  f.net.set_loss_rate(0.5, 1234);
  f.athena[0]->query_init(single_label(0), SimTime::seconds(120));
  f.sim.run_until(SimTime::seconds(130));
  EXPECT_EQ(f.metrics.queries_resolved, 1u);
  EXPECT_GE(f.net.stats().dropped, 1u);
  EXPECT_GE(f.metrics.refetches, 1u);
}

TEST(AthenaNode, RecoverWhenBothRequestAndReplyAreLost) {
  auto cfg = config_for(Scheme::kLvf);
  cfg.prefetch = false;
  cfg.request_timeout = SimTime::seconds(2);
  Fixture f(cfg);
  // Deterministic loss: exactly the first packet on A→B (the first request)
  // and the first packet on C→B (the first reply) vanish. The watchdog must
  // re-issue through both losses and the query still resolves.
  const auto request_leg = *f.topo.link_between(f.nodes[0], f.nodes[1]);
  const auto reply_leg = *f.topo.link_between(f.nodes[2], f.nodes[1]);
  int req_seen = 0;
  int rep_seen = 0;
  f.net.set_loss_model([&](LinkId link) {
    if (link == request_leg) return req_seen++ == 0;
    if (link == reply_leg) return rep_seen++ == 0;
    return false;
  });
  f.athena[0]->query_init(single_label(0), SimTime::seconds(60));
  f.sim.run_until(SimTime::seconds(60));
  EXPECT_EQ(f.metrics.queries_resolved, 1u);
  EXPECT_TRUE(f.last_record(0).success);
  EXPECT_EQ(f.net.stats().dropped, 2u);
  EXPECT_GE(f.metrics.retries, 2u) << "one timeout per lost packet";
  EXPECT_GE(f.metrics.refetches, 1u);
}

TEST(AthenaNode, FailoverSwitchesToAlternateSourceWhenHostUnreachable) {
  // Two sources cover segment 0: the cheap one at C (designated first) and a
  // fallback at B. Severing B↔C silences C; after max_source_attempts
  // unanswered requests the query must fail over to B's source and resolve.
  struct TwoSourceFixture {
    world::GridMap map{4, 4};
    world::ViabilityProcess truth;
    world::SensorField field;
    net::Topology topo;
    std::vector<NodeId> nodes;
    des::Simulator sim;
    net::Network net;
    Directory dir;
    AthenaMetrics metrics;
    std::vector<std::unique_ptr<AthenaNode>> athena;

    static std::vector<SensorInfo> sensors() {
      SensorInfo cheap;
      cheap.id = SourceId{0};
      cheap.name = naming::Name::parse("/f/c");
      cheap.covers = {SegmentId{0}};
      cheap.object_bytes = 300;  // 300 B × 2 hops = 600: designated
      cheap.validity = SimTime::seconds(100);
      SensorInfo fallback;
      fallback.id = SourceId{1};
      fallback.name = naming::Name::parse("/f/b");
      fallback.covers = {SegmentId{0}};
      fallback.object_bytes = 800;  // 800 B × 1 hop = 800: runner-up
      fallback.validity = SimTime::seconds(100);
      return {cheap, fallback};
    }

    explicit TwoSourceFixture(const AthenaConfig& cfg)
        : truth(std::vector<world::SegmentDynamics>(
                    map.segment_count(),
                    world::SegmentDynamics{1.0, SimTime::seconds(1e7)}),
                Rng(1)),
          field(map, truth, sensors()),
          topo(),
          nodes(),
          sim(),
          net(make_net()),
          dir(topo, field, {NodeId{2}, NodeId{1}}, {{LabelId{0}, 0.9}}) {
      for (std::size_t i = 0; i < 3; ++i) {
        athena.push_back(std::make_unique<AthenaNode>(NodeId{i}, net, dir,
                                                      field, cfg, metrics));
      }
    }

    net::Network make_net() {
      for (int i = 0; i < 3; ++i) nodes.push_back(topo.add_node());
      topo.add_link(nodes[0], nodes[1], 1e6, SimTime::millis(1));
      topo.add_link(nodes[1], nodes[2], 1e6, SimTime::millis(1));
      topo.compute_routes();
      return net::Network(sim, topo);
    }
  };

  auto cfg = config_for(Scheme::kLvf);
  cfg.prefetch = false;
  cfg.request_timeout = SimTime::seconds(1);
  cfg.retry_backoff = 2.0;
  cfg.max_source_attempts = 2;
  TwoSourceFixture f(cfg);
  f.net.set_link_up(*f.topo.link_between(f.nodes[1], f.nodes[2]), false);
  f.net.set_link_up(*f.topo.link_between(f.nodes[2], f.nodes[1]), false);
  f.athena[0]->query_init(single_label(0), SimTime::seconds(60));
  f.sim.run_until(SimTime::seconds(60));
  EXPECT_EQ(f.metrics.queries_resolved, 1u);
  EXPECT_TRUE(f.athena[0]->records().back().success);
  EXPECT_GE(f.metrics.retries, 2u);
  EXPECT_GE(f.metrics.failovers, 1u)
      << "label 0 must be re-designated to the reachable source";
}

/// Fixture variant with a noisy world: three sensors at C all covering
/// segment 0 (viable); reliability 0.75 each.
struct NoisyFixture {
  world::GridMap map{4, 4};
  world::ViabilityProcess truth;
  world::SensorField field;
  net::Topology topo;
  std::vector<NodeId> nodes;
  des::Simulator sim;
  net::Network net;
  Directory dir;
  AthenaMetrics metrics;
  std::vector<std::unique_ptr<AthenaNode>> athena;

  static std::vector<SensorInfo> sensors() {
    std::vector<SensorInfo> out;
    for (std::uint64_t i = 0; i < 3; ++i) {
      SensorInfo s;
      s.id = SourceId{i};
      s.name = naming::Name::parse("/n/cam" + std::to_string(i));
      s.covers = {SegmentId{0}};
      s.object_bytes = 1000;
      s.validity = SimTime::seconds(100);
      s.reliability = 0.75;
      out.push_back(std::move(s));
    }
    return out;
  }

  explicit NoisyFixture(const AthenaConfig& cfg)
      : truth(std::vector<world::SegmentDynamics>(
                  map.segment_count(),
                  world::SegmentDynamics{1.0, SimTime::seconds(1e7)}),
              Rng(1)),
        field(map, truth, sensors()),
        topo(),
        nodes(),
        sim(),
        net(make_net()),
        dir(topo, field, {NodeId{2}, NodeId{2}, NodeId{2}},
            {{LabelId{0}, 0.9}}) {
    for (std::size_t i = 0; i < 2; ++i) {
      athena.push_back(std::make_unique<AthenaNode>(NodeId{i}, net, dir, field,
                                                    cfg, metrics));
    }
    athena.push_back(std::make_unique<AthenaNode>(NodeId{2}, net, dir, field,
                                                  cfg, metrics));
  }

  net::Network make_net() {
    for (int i = 0; i < 3; ++i) nodes.push_back(topo.add_node());
    topo.add_link(nodes[0], nodes[1], 1e6, SimTime::millis(1));
    topo.add_link(nodes[1], nodes[2], 1e6, SimTime::millis(1));
    topo.compute_routes();
    return net::Network(sim, topo);
  }
};

TEST(AthenaNodeNoisy, CorroborationRequestsMultipleSources) {
  auto cfg = config_for(Scheme::kLvfl);
  cfg.corroboration_confidence = 0.9;
  cfg.prefetch = false;
  NoisyFixture f(cfg);
  f.athena[0]->query_init(single_label(0), SimTime::seconds(60));
  f.sim.run_until(SimTime::seconds(60));
  // One 0.75-reliable observation gives confidence 0.75 < 0.9, so at least
  // a second (distinct) source must be consulted.
  EXPECT_GE(f.metrics.object_requests, 2u);
}

TEST(AthenaNodeNoisy, WithoutCorroborationOneObservationDecides) {
  auto cfg = config_for(Scheme::kLvfl);
  cfg.corroboration_confidence = 0.0;
  cfg.prefetch = false;
  NoisyFixture f(cfg);
  f.athena[0]->query_init(single_label(0), SimTime::seconds(60));
  f.sim.run_until(SimTime::seconds(60));
  EXPECT_EQ(f.metrics.object_requests, 1u);
  EXPECT_EQ(f.metrics.queries_resolved, 1u);
}

TEST(AthenaNodeNoisy, CorroborationEventuallyResolves) {
  auto cfg = config_for(Scheme::kLvfl);
  cfg.corroboration_confidence = 0.9;
  cfg.prefetch = false;
  NoisyFixture f(cfg);
  // Three 0.75 sources agreeing give odds 27:1 → 0.964 > 0.9. Even with
  // occasional misreads, repeated windows within the 300 s deadline leave
  // ample room to converge.
  f.athena[0]->query_init(single_label(0), SimTime::seconds(300));
  f.sim.run_until(SimTime::seconds(350));
  EXPECT_EQ(f.metrics.queries_resolved, 1u);
}

TEST(AthenaNodeNoisy, LocalCorroborationResolvesWithoutNetwork) {
  auto cfg = config_for(Scheme::kLvfl);
  cfg.corroboration_confidence = 0.9;
  cfg.prefetch = false;
  NoisyFixture f(cfg);
  // Query at the host itself: all three sensors are sampled locally across
  // validity windows until the belief clears 0.9 — no object traffic ever.
  f.athena[2]->query_init(single_label(0), SimTime::seconds(300));
  f.sim.run_until(SimTime::seconds(350));
  EXPECT_EQ(f.metrics.queries_resolved, 1u);
  EXPECT_EQ(f.metrics.object_bytes, 0u);
  EXPECT_GE(f.metrics.sensor_samples, 2u);
}

// Regression (ISSUE 9): the prefetch push-dedup set used to be wiped
// wholesale at its size bound, forgetting every in-flight (origin, source)
// key at once and re-pushing all of them. The bound now evicts oldest-
// first, so keys younger than the overflow survive.
TEST(AthenaNode, PrefetchDedupOverflowEvictsOldestFirst) {
  auto cfg = config_for(Scheme::kLvfl);
  cfg.prefetch_dedup_capacity = 2;
  cfg.announce_ttl = 2;  // announces from A must cross B to reach host C
  Fixture f(cfg);
  // C hosts sensors 0 (label 0) and 2 (label 3); announces from origins A
  // and B mark distinct (origin, source) keys at C, one per query:
  //   1. A asks label 0 → key (A, s0) marked, push #1.
  f.athena[0]->query_init(single_label(0), SimTime::seconds(120));
  f.sim.run_until(SimTime::seconds(2));
  //   2. B asks label 0 → key (B, s0) marked, push #2.
  f.athena[1]->query_init(single_label(0), SimTime::seconds(120));
  f.sim.run_until(SimTime::seconds(4));
  //   3. A asks label 3 → key (A, s2) overflows the bound of 2. Oldest-
  //      first eviction drops (A, s0) only; (B, s0) survives. Push #3.
  f.athena[0]->query_init(single_label(3), SimTime::seconds(120));
  f.sim.run_until(SimTime::seconds(6));
  //   4. B asks label 0 again (fresh query id): (B, s0) is still in the
  //      dedup set, so no fourth push. The wholesale clear() this replaces
  //      forgot it in step 3 and pushed again here.
  f.athena[1]->query_init(single_label(0), SimTime::seconds(120));
  f.sim.run_until(SimTime::seconds(10));
  EXPECT_EQ(f.metrics.prefetch_pushes, 3u);
}

// Regression (ISSUE 9): the GC dedup-expiry boundary. Announce-dedup
// entries expire with the query deadline under the `expires_at <= now`
// convention: a sweep strictly before the deadline must keep the entry,
// and the first sweep at/after it must collect it — one sweep seeing both
// a dead and a live entry must split them exactly.
TEST(AthenaNode, GcCollectsDedupEntriesOnlyPastDeadline) {
  auto cfg = config_for(Scheme::kLvfl);
  cfg.state_gc_interval = SimTime::seconds(20);
  cfg.announce_ttl = 2;  // flood both announces to every node in the line
  Fixture f(cfg);
  // Two announced queries: Q1's dedup entry dies at t=12, Q2's at t=100.
  f.athena[0]->query_init(single_label(0), SimTime::seconds(12));
  f.athena[0]->query_init(single_label(3), SimTime::seconds(100));
  f.sim.run_until(SimTime::millis(50));
  // Every node saw both announces (origin included).
  for (const auto& node : f.athena) {
    EXPECT_EQ(node->dedup_entries(), 2u);
  }
  // t=15: Q1's deadline passed, but the next sweep is at ~t=20 — the
  // entry is collected by the sweep, not by the deadline itself.
  f.sim.run_until(SimTime::seconds(15));
  for (const auto& node : f.athena) {
    EXPECT_EQ(node->dedup_entries(), 2u);
  }
  // t=25: the sweep ran once with now ≈ 20: Q1 (12 <= 20) collected,
  // Q2 (100 > 20) kept.
  f.sim.run_until(SimTime::seconds(25));
  for (const auto& node : f.athena) {
    EXPECT_EQ(node->dedup_entries(), 1u);
  }
  // Past Q2's deadline the table drains to empty.
  f.sim.run_until(SimTime::seconds(130));
  for (const auto& node : f.athena) {
    EXPECT_EQ(node->dedup_entries(), 0u);
  }
}

}  // namespace
}  // namespace dde::athena
