#include "cache/ttl_cache.h"

#include <gtest/gtest.h>

#include <string>

namespace dde::cache {
namespace {

SimTime s(double x) { return SimTime::seconds(x); }

TEST(TtlCache, PutAndGet) {
  TtlCache<int, std::string> c(4);
  c.put(1, "one", s(10), s(0));
  const auto* v = c.get(1, s(1), s(1));
  ASSERT_NE(v, nullptr);
  EXPECT_EQ(*v, "one");
  EXPECT_EQ(c.size(), 1u);
}

TEST(TtlCache, MissOnAbsentKey) {
  TtlCache<int, int> c(4);
  EXPECT_EQ(c.get(7, s(0), s(0)), nullptr);
  EXPECT_EQ(c.stats().misses, 1u);
}

TEST(TtlCache, ExpiredEntryIsMiss) {
  TtlCache<int, int> c(4);
  c.put(1, 11, s(10), s(0));
  EXPECT_NE(c.get(1, s(9), s(9)), nullptr);
  EXPECT_EQ(c.get(1, s(10), s(10)), nullptr);
  EXPECT_EQ(c.get(1, s(11), s(11)), nullptr);
}

TEST(TtlCache, FutureFreshnessRequirement) {
  TtlCache<int, int> c(4);
  c.put(1, 11, s(10), s(0));
  // Fresh now, but the caller needs it to survive until t=15 → reject.
  EXPECT_EQ(c.get(1, s(5), s(15)), nullptr);
  EXPECT_EQ(c.stats().stale_rejects, 1u);
  // Entry is still there for callers with laxer needs.
  EXPECT_NE(c.get(1, s(5), s(6)), nullptr);
}

TEST(TtlCache, PutOverwrites) {
  TtlCache<int, int> c(4);
  c.put(1, 11, s(10), s(0));
  c.put(1, 22, s(20), s(0));
  const auto* v = c.get(1, s(15), s(15));
  ASSERT_NE(v, nullptr);
  EXPECT_EQ(*v, 22);
  EXPECT_EQ(c.size(), 1u);
}

TEST(TtlCache, CapacityEvictsLru) {
  TtlCache<int, int> c(2);
  c.put(1, 1, s(100), s(0));
  c.put(2, 2, s(100), s(0));
  // Touch 1 so 2 becomes LRU.
  EXPECT_NE(c.get(1, s(1), s(1)), nullptr);
  c.put(3, 3, s(100), s(1));
  EXPECT_EQ(c.size(), 2u);
  EXPECT_NE(c.peek(1, s(1)), nullptr);
  EXPECT_EQ(c.peek(2, s(1)), nullptr);  // evicted
  EXPECT_NE(c.peek(3, s(1)), nullptr);
  EXPECT_EQ(c.stats().evictions, 1u);
}

TEST(TtlCache, EvictionPrefersExpired) {
  TtlCache<int, int> c(2);
  c.put(1, 1, s(5), s(0));    // expires early
  c.put(2, 2, s(100), s(0));
  // Touch 1 so it would be MRU — but it is expired at insert time t=10.
  (void)c.get(1, s(1), s(1));
  c.put(3, 3, s(100), s(10));
  EXPECT_EQ(c.peek(1, s(10)), nullptr);  // expired entry went first
  EXPECT_NE(c.peek(2, s(10)), nullptr);
}

TEST(TtlCache, ZeroCapacityDisables) {
  TtlCache<int, int> c(0);
  c.put(1, 1, s(100), s(0));
  EXPECT_EQ(c.size(), 0u);
  EXPECT_EQ(c.get(1, s(0), s(0)), nullptr);
}

TEST(TtlCache, PeekDoesNotTouchStats) {
  TtlCache<int, int> c(4);
  c.put(1, 1, s(100), s(0));
  (void)c.peek(1, s(1));
  (void)c.peek(9, s(1));
  EXPECT_EQ(c.stats().hits, 0u);
  EXPECT_EQ(c.stats().misses, 0u);
}

TEST(TtlCache, EraseKey) {
  TtlCache<int, int> c(4);
  c.put(1, 1, s(100), s(0));
  EXPECT_TRUE(c.erase_key(1));
  EXPECT_FALSE(c.erase_key(1));
  EXPECT_EQ(c.size(), 0u);
}

TEST(TtlCache, PruneDropsExpired) {
  TtlCache<int, int> c(8);
  c.put(1, 1, s(5), s(0));
  c.put(2, 2, s(10), s(0));
  c.put(3, 3, s(15), s(0));
  c.prune(s(10));
  EXPECT_EQ(c.size(), 1u);
  EXPECT_NE(c.peek(3, s(10)), nullptr);
}

TEST(TtlCache, ExpiredGetRemovesEntry) {
  TtlCache<int, int> c(4);
  c.put(1, 1, s(5), s(0));
  EXPECT_EQ(c.get(1, s(6), s(6)), nullptr);
  EXPECT_EQ(c.size(), 0u);
  EXPECT_EQ(c.stats().misses, 1u);
}

TEST(TtlCache, HitRatio) {
  TtlCache<int, int> c(4);
  c.put(1, 1, s(100), s(0));
  (void)c.get(1, s(1), s(1));  // hit
  (void)c.get(2, s(1), s(1));  // miss
  EXPECT_DOUBLE_EQ(c.stats().hit_ratio(), 0.5);
}

TEST(TtlCache, ClearEmpties) {
  TtlCache<int, int> c(4);
  c.put(1, 1, s(100), s(0));
  c.put(2, 2, s(100), s(0));
  c.clear();
  EXPECT_EQ(c.size(), 0u);
  EXPECT_EQ(c.peek(1, s(0)), nullptr);
}

TEST(TtlCache, EraseIfByKeyAndValue) {
  TtlCache<int, int> c(8);
  for (int i = 0; i < 6; ++i) c.put(i, i * 10, s(100), s(0));
  c.erase_if([](int key, int value) { return key % 2 == 0 || value > 40; });
  EXPECT_EQ(c.size(), 2u);  // keys 1, 3 survive
  EXPECT_NE(c.peek(1, s(1)), nullptr);
  EXPECT_NE(c.peek(3, s(1)), nullptr);
  EXPECT_EQ(c.peek(0, s(1)), nullptr);
  EXPECT_EQ(c.peek(5, s(1)), nullptr);
}

TEST(TtlCache, EraseIfKeepsLruConsistent) {
  TtlCache<int, int> c(3);
  c.put(1, 1, s(100), s(0));
  c.put(2, 2, s(100), s(0));
  c.put(3, 3, s(100), s(0));
  c.erase_if([](int key, int) { return key == 2; });
  // Capacity again has room; inserting must not corrupt the list.
  c.put(4, 4, s(100), s(1));
  c.put(5, 5, s(100), s(1));  // evicts LRU (key 1)
  EXPECT_EQ(c.size(), 3u);
  EXPECT_EQ(c.peek(1, s(1)), nullptr);
  EXPECT_NE(c.peek(3, s(1)), nullptr);
}

TEST(TtlCache, RefreshDoesNotInflateInsertions) {
  // Regression: overwriting a live key used to count as a second insertion,
  // making insertions − evictions useless as a residency measure.
  TtlCache<int, int> c(4);
  c.put(1, 11, s(10), s(0));
  c.put(1, 22, s(20), s(1));
  EXPECT_EQ(c.stats().insertions, 1u);
  EXPECT_EQ(c.stats().refreshes, 1u);
}

TEST(TtlCache, ExpiryIsNotAnEviction) {
  // Regression: TTL expiry (prune, expired get) used to count in
  // `evictions`, conflating capacity pressure with data aging.
  TtlCache<int, int> c(8);
  c.put(1, 1, s(5), s(0));
  c.put(2, 2, s(100), s(0));
  c.prune(s(10));                       // drops key 1 by TTL
  EXPECT_EQ(c.get(2, s(101), s(101)), nullptr);  // expired on access
  EXPECT_EQ(c.stats().expired_drops, 2u);
  EXPECT_EQ(c.stats().evictions, 0u);
}

TEST(TtlCache, CapacityEvictionIsNotAnExpiry) {
  TtlCache<int, int> c(2);
  c.put(1, 1, s(100), s(0));
  c.put(2, 2, s(100), s(0));
  c.put(3, 3, s(100), s(0));  // all live: LRU (key 1) evicted for room
  EXPECT_EQ(c.stats().evictions, 1u);
  EXPECT_EQ(c.stats().expired_drops, 0u);
  EXPECT_EQ(c.peek(1, s(1)), nullptr);
}

TEST(TtlCache, ClearCountsFlushed) {
  TtlCache<int, int> c(4);
  c.put(1, 1, s(100), s(0));
  c.put(2, 2, s(100), s(0));
  c.clear();
  EXPECT_EQ(c.stats().flushed, 2u);
  EXPECT_EQ(c.stats().evictions, 0u);
  EXPECT_EQ(c.stats().expired_drops, 0u);
}

TEST(TtlCache, RemovalCausesAreDisjoint) {
  // One entry per removal path; each lands in exactly one counter.
  TtlCache<int, int> c(2);
  c.put(1, 1, s(5), s(0));
  EXPECT_EQ(c.get(1, s(6), s(6)), nullptr);  // expired_drops: 1
  c.put(2, 2, s(100), s(6));
  c.put(3, 3, s(100), s(6));
  c.put(4, 4, s(100), s(6));  // evictions: 1 (key 2, all live)
  c.clear();                  // flushed: 2
  EXPECT_EQ(c.stats().expired_drops, 1u);
  EXPECT_EQ(c.stats().evictions, 1u);
  EXPECT_EQ(c.stats().flushed, 2u);
  EXPECT_EQ(c.stats().insertions, 4u);
}

TEST(TtlCache, EraseCountsInvalidated) {
  // Regression: erase_key/erase_if used to remove entries without landing
  // in any CacheStats bucket, so insertions − (live + removals) leaked.
  TtlCache<int, int> c(8);
  c.put(1, 1, s(100), s(0));
  c.put(2, 2, s(100), s(0));
  c.put(3, 3, s(100), s(0));
  EXPECT_TRUE(c.erase_key(1));
  EXPECT_FALSE(c.erase_key(1));  // a miss is not an invalidation
  c.erase_if([](int key, int) { return key == 3; });
  EXPECT_EQ(c.stats().invalidated, 2u);
  EXPECT_EQ(c.stats().evictions, 0u);
  EXPECT_EQ(c.stats().expired_drops, 0u);
  EXPECT_EQ(c.stats().flushed, 0u);
}

// Conservation identity: every inserted entry is either still resident or
// accounted to exactly one removal bucket.
//   insertions == size + evictions + expired_drops + flushed + invalidated
TEST(TtlCache, RemovalBucketsConserveInsertions) {
  TtlCache<int, int> c(4);
  const auto conserved = [&c] {
    const CacheStats& st = c.stats();
    return st.insertions == c.size() + st.evictions + st.expired_drops +
                                st.flushed + st.invalidated;
  };
  for (int i = 0; i < 10; ++i) {
    c.put(i, i, s(5.0 + i), s(static_cast<double>(i) * 0.1));
    EXPECT_TRUE(conserved());
  }
  (void)c.get(6, s(20), s(20));   // expired on access
  c.put(6, 66, s(40), s(20));     // re-insert after expiry
  c.put(6, 67, s(50), s(21));     // refresh: no new insertion
  EXPECT_TRUE(conserved());
  c.erase_if([](int key, int) { return key % 2 == 1; });
  EXPECT_TRUE(conserved());
  (void)c.erase_key(6);
  EXPECT_TRUE(conserved());
  c.prune(s(30));
  EXPECT_TRUE(conserved());
  c.clear();
  EXPECT_TRUE(conserved());
  EXPECT_EQ(c.stats().insertions,
            c.stats().evictions + c.stats().expired_drops + c.stats().flushed +
                c.stats().invalidated);
}

TEST(TtlCache, ManyInsertionsStayWithinCapacity) {
  TtlCache<int, int> c(16);
  for (int i = 0; i < 1000; ++i) {
    c.put(i, i, s(2000), s(static_cast<double>(i)));
    EXPECT_LE(c.size(), 16u);
  }
  // The 16 most recent survive.
  for (int i = 984; i < 1000; ++i) {
    EXPECT_NE(c.peek(i, s(1000.5)), nullptr);
  }
}

}  // namespace
}  // namespace dde::cache
