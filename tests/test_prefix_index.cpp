#include "naming/prefix_index.h"

#include <gtest/gtest.h>

#include <string>

#include "common/rng.h"

namespace dde::naming {
namespace {

TEST(PrefixIndex, InsertAndFind) {
  PrefixIndex<int> idx;
  EXPECT_TRUE(idx.insert(Name::parse("/a/b"), 1));
  EXPECT_TRUE(idx.insert(Name::parse("/a/c"), 2));
  ASSERT_NE(idx.find(Name::parse("/a/b")), nullptr);
  EXPECT_EQ(*idx.find(Name::parse("/a/b")), 1);
  EXPECT_EQ(*idx.find(Name::parse("/a/c")), 2);
  EXPECT_EQ(idx.find(Name::parse("/a")), nullptr);
  EXPECT_EQ(idx.find(Name::parse("/a/b/c")), nullptr);
  EXPECT_EQ(idx.size(), 2u);
}

TEST(PrefixIndex, InsertOverwrites) {
  PrefixIndex<int> idx;
  EXPECT_TRUE(idx.insert(Name::parse("/a"), 1));
  EXPECT_FALSE(idx.insert(Name::parse("/a"), 2));
  EXPECT_EQ(*idx.find(Name::parse("/a")), 2);
  EXPECT_EQ(idx.size(), 1u);
}

TEST(PrefixIndex, RootValue) {
  PrefixIndex<int> idx;
  idx.insert(Name{}, 42);
  ASSERT_NE(idx.find(Name{}), nullptr);
  EXPECT_EQ(*idx.find(Name{}), 42);
}

TEST(PrefixIndex, Erase) {
  PrefixIndex<int> idx;
  idx.insert(Name::parse("/a/b"), 1);
  idx.insert(Name::parse("/a/b/c"), 2);
  EXPECT_TRUE(idx.erase(Name::parse("/a/b")));
  EXPECT_EQ(idx.find(Name::parse("/a/b")), nullptr);
  EXPECT_NE(idx.find(Name::parse("/a/b/c")), nullptr);
  EXPECT_FALSE(idx.erase(Name::parse("/a/b")));
  EXPECT_FALSE(idx.erase(Name::parse("/zzz")));
  EXPECT_EQ(idx.size(), 1u);
}

TEST(PrefixIndex, LongestPrefixMatch) {
  PrefixIndex<int> idx;
  idx.insert(Name::parse("/a"), 1);
  idx.insert(Name::parse("/a/b/c"), 3);
  const auto m = idx.longest_prefix(Name::parse("/a/b/c/d/e"));
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(m->prefix, Name::parse("/a/b/c"));
  EXPECT_EQ(*m->value, 3);

  const auto m2 = idx.longest_prefix(Name::parse("/a/x"));
  ASSERT_TRUE(m2.has_value());
  EXPECT_EQ(m2->prefix, Name::parse("/a"));
  EXPECT_EQ(*m2->value, 1);

  EXPECT_FALSE(idx.longest_prefix(Name::parse("/z")).has_value());
}

TEST(PrefixIndex, LongestPrefixUsesRootFallback) {
  PrefixIndex<int> idx;
  idx.insert(Name{}, 0);
  const auto m = idx.longest_prefix(Name::parse("/anything"));
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(m->prefix, Name{});
}

TEST(PrefixIndex, SubtreeEnumeration) {
  PrefixIndex<int> idx;
  idx.insert(Name::parse("/a/b"), 1);
  idx.insert(Name::parse("/a/b/c"), 2);
  idx.insert(Name::parse("/a/d"), 3);
  idx.insert(Name::parse("/z"), 4);
  const auto sub = idx.subtree(Name::parse("/a"));
  ASSERT_EQ(sub.size(), 3u);
  // Lexicographic order.
  EXPECT_EQ(sub[0].first, Name::parse("/a/b"));
  EXPECT_EQ(sub[1].first, Name::parse("/a/b/c"));
  EXPECT_EQ(sub[2].first, Name::parse("/a/d"));
  EXPECT_TRUE(idx.subtree(Name::parse("/q")).empty());
  EXPECT_EQ(idx.entries().size(), 4u);
}

TEST(PrefixIndex, NearestPrefersDeepestSharedPrefix) {
  PrefixIndex<int> idx;
  idx.insert(Name::parse("/city/market/cam1"), 1);
  idx.insert(Name::parse("/city/market/cam2"), 2);
  idx.insert(Name::parse("/city/park/cam9"), 9);
  // The paper's substitution example: camera1 unavailable → camera2.
  const auto n = idx.nearest(Name::parse("/city/market/cam1"));
  ASSERT_TRUE(n.has_value());
  EXPECT_EQ(n->first, Name::parse("/city/market/cam2"));
}

TEST(PrefixIndex, NearestExactWhenAllowed) {
  PrefixIndex<int> idx;
  idx.insert(Name::parse("/a/b"), 1);
  const auto n = idx.nearest(Name::parse("/a/b"), 0, /*exclude_exact=*/false);
  ASSERT_TRUE(n.has_value());
  EXPECT_EQ(n->first, Name::parse("/a/b"));
}

TEST(PrefixIndex, NearestRespectsMinShared) {
  PrefixIndex<int> idx;
  idx.insert(Name::parse("/x/y"), 1);
  // Only entry shares 0 components with the query; demand at least 1.
  EXPECT_FALSE(idx.nearest(Name::parse("/a/b"), /*min_shared=*/1).has_value());
  EXPECT_TRUE(idx.nearest(Name::parse("/a/b"), /*min_shared=*/0).has_value());
}

TEST(PrefixIndex, NearestOnEmptyIndex) {
  PrefixIndex<int> idx;
  EXPECT_FALSE(idx.nearest(Name::parse("/a")).has_value());
}

TEST(PrefixIndex, NearestExcludesExactByDefault) {
  PrefixIndex<int> idx;
  idx.insert(Name::parse("/a/b"), 1);
  EXPECT_FALSE(idx.nearest(Name::parse("/a/b"), 1).has_value());
}

TEST(PrefixIndex, Clear) {
  PrefixIndex<int> idx;
  idx.insert(Name::parse("/a"), 1);
  idx.clear();
  EXPECT_TRUE(idx.empty());
  EXPECT_EQ(idx.find(Name::parse("/a")), nullptr);
}

// Property: for random inserts, find() agrees with a reference map.
TEST(PrefixIndex, MatchesReferenceMapOnRandomOps) {
  Rng rng(31);
  PrefixIndex<int> idx;
  std::map<Name, int> ref;
  for (int op = 0; op < 2000; ++op) {
    Name n;
    for (std::uint64_t d = rng.below(4); d-- > 0;) {
      n = n.child(std::string("c") + std::to_string(rng.below(3)));
    }
    if (rng.chance(0.7)) {
      const int v = static_cast<int>(rng.below(1000));
      idx.insert(n, v);
      ref[n] = v;
    } else {
      const bool erased = idx.erase(n);
      EXPECT_EQ(erased, ref.erase(n) > 0);
    }
  }
  EXPECT_EQ(idx.size(), ref.size());
  for (const auto& [name, value] : ref) {
    const int* found = idx.find(name);
    ASSERT_NE(found, nullptr) << name;
    EXPECT_EQ(*found, value);
  }
  // entries() returns exactly the reference contents in order.
  const auto entries = idx.entries();
  ASSERT_EQ(entries.size(), ref.size());
  auto it = ref.begin();
  for (const auto& [name, value] : entries) {
    EXPECT_EQ(name, it->first);
    EXPECT_EQ(*value, it->second);
    ++it;
  }
}

}  // namespace
}  // namespace dde::naming
