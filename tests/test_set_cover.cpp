#include "coverage/set_cover.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

#include "common/rng.h"

namespace dde::coverage {
namespace {

bool is_cover(const CoverInstance& inst, const CoverResult& r) {
  std::set<std::uint32_t> covered;
  for (std::size_t i : r.chosen) {
    for (auto e : inst.sets[i].elements) covered.insert(e);
  }
  return std::all_of(inst.universe.begin(), inst.universe.end(),
                     [&](std::uint32_t e) { return covered.contains(e); });
}

double chosen_cost(const CoverInstance& inst, const CoverResult& r) {
  double c = 0;
  for (std::size_t i : r.chosen) c += inst.sets[i].cost;
  return c;
}

TEST(GreedyCover, CoversSimpleInstance) {
  CoverInstance inst;
  inst.universe = {1, 2, 3};
  inst.sets = {{1.0, {1}}, {1.0, {2}}, {1.0, {3}}, {2.5, {1, 2, 3}}};
  const auto r = greedy_cover(inst);
  EXPECT_TRUE(r.covered);
  EXPECT_TRUE(is_cover(inst, r));
  EXPECT_DOUBLE_EQ(r.cost, chosen_cost(inst, r));
}

TEST(GreedyCover, PrefersCheapBigSets) {
  CoverInstance inst;
  inst.universe = {1, 2, 3, 4};
  inst.sets = {{1.0, {1, 2, 3, 4}}, {1.0, {1}}, {1.0, {2}}};
  const auto r = greedy_cover(inst);
  ASSERT_EQ(r.chosen.size(), 1u);
  EXPECT_EQ(r.chosen[0], 0u);
}

TEST(GreedyCover, PartialWhenUncoverable) {
  CoverInstance inst;
  inst.universe = {1, 2, 99};
  inst.sets = {{1.0, {1}}, {1.0, {2}}};
  const auto r = greedy_cover(inst);
  EXPECT_FALSE(r.covered);
  EXPECT_EQ(r.chosen.size(), 2u);  // still covers what it can
}

TEST(GreedyCover, EmptyUniverseIsTriviallyCovered) {
  CoverInstance inst;
  inst.sets = {{1.0, {1}}};
  const auto r = greedy_cover(inst);
  EXPECT_TRUE(r.covered);
  EXPECT_TRUE(r.chosen.empty());
  EXPECT_DOUBLE_EQ(r.cost, 0.0);
}

TEST(GreedyCover, NoSets) {
  CoverInstance inst;
  inst.universe = {1};
  const auto r = greedy_cover(inst);
  EXPECT_FALSE(r.covered);
}

TEST(GreedyCover, IgnoresElementsOutsideUniverse) {
  CoverInstance inst;
  inst.universe = {1};
  inst.sets = {{1.0, {1, 500, 900}}};
  const auto r = greedy_cover(inst);
  EXPECT_TRUE(r.covered);
  EXPECT_EQ(r.chosen.size(), 1u);
}

TEST(ExactCover, FindsOptimum) {
  CoverInstance inst;
  inst.universe = {1, 2, 3};
  // Greedy takes the big 2.0-cost set first (ratio 1.5 vs 1.0 each), then
  // must add {3}: total 3.0. Optimal is {1,2} + {3} = ... same. Make a case
  // where greedy is provably suboptimal:
  //   universe {1,2,3,4}; sets: {1,2} cost 1, {3,4} cost 1, {2,3} cost 0.9.
  //   Greedy picks {2,3} (ratio 2.22), then needs both others → 2.9.
  //   Optimal: {1,2} + {3,4} = 2.0.
  inst.universe = {1, 2, 3, 4};
  inst.sets = {{1.0, {1, 2}}, {1.0, {3, 4}}, {0.9, {2, 3}}};
  const auto greedy = greedy_cover(inst);
  const auto exact = exact_cover(inst);
  EXPECT_TRUE(exact.covered);
  EXPECT_TRUE(is_cover(inst, exact));
  EXPECT_DOUBLE_EQ(exact.cost, 2.0);
  EXPECT_GT(greedy.cost, exact.cost);
}

TEST(ExactCover, UncoverableFallsBackToPartial) {
  CoverInstance inst;
  inst.universe = {1, 7};
  inst.sets = {{1.0, {1}}};
  const auto r = exact_cover(inst);
  EXPECT_FALSE(r.covered);
}

TEST(ExactCover, EmptyUniverse) {
  CoverInstance inst;
  const auto r = exact_cover(inst);
  EXPECT_TRUE(r.covered);
  EXPECT_DOUBLE_EQ(r.cost, 0.0);
}

// Property tests on random instances.
TEST(SetCover, GreedyAlwaysCoversWhenPossibleAndExactIsNeverWorse) {
  Rng rng(321);
  int coverable = 0;
  double ratio_sum = 0;
  for (int trial = 0; trial < 200; ++trial) {
    const std::uint32_t n_elems = 3 + static_cast<std::uint32_t>(rng.below(8));
    const std::size_t n_sets = 2 + rng.below(10);
    CoverInstance inst;
    for (std::uint32_t e = 0; e < n_elems; ++e) inst.universe.push_back(e);
    for (std::size_t s = 0; s < n_sets; ++s) {
      CoverSet set;
      set.cost = rng.uniform(0.5, 5.0);
      for (std::uint32_t e = 0; e < n_elems; ++e) {
        if (rng.chance(0.35)) set.elements.push_back(e);
      }
      inst.sets.push_back(std::move(set));
    }
    const auto greedy = greedy_cover(inst);
    const auto exact = exact_cover(inst);
    EXPECT_EQ(greedy.covered, exact.covered);
    if (greedy.covered) {
      ++coverable;
      EXPECT_TRUE(is_cover(inst, greedy));
      EXPECT_TRUE(is_cover(inst, exact));
      EXPECT_LE(exact.cost, greedy.cost + 1e-9);
      // Classical guarantee: greedy ≤ H_n × OPT.
      double hn = 0;
      for (std::uint32_t k = 1; k <= n_elems; ++k) hn += 1.0 / k;
      EXPECT_LE(greedy.cost, hn * exact.cost + 1e-9);
      ratio_sum += greedy.cost / exact.cost;
    }
  }
  EXPECT_GT(coverable, 100);
  // Greedy is usually close to optimal in practice.
  EXPECT_LT(ratio_sum / coverable, 1.3);
}

TEST(SetCover, CostsAreConsistent) {
  Rng rng(11);
  for (int trial = 0; trial < 50; ++trial) {
    CoverInstance inst;
    for (std::uint32_t e = 0; e < 5; ++e) inst.universe.push_back(e);
    for (std::size_t s = 0; s < 6; ++s) {
      CoverSet set;
      set.cost = rng.uniform(0.5, 3.0);
      for (std::uint32_t e = 0; e < 5; ++e) {
        if (rng.chance(0.5)) set.elements.push_back(e);
      }
      inst.sets.push_back(std::move(set));
    }
    for (const auto& r : {greedy_cover(inst), exact_cover(inst)}) {
      EXPECT_NEAR(r.cost, chosen_cost(inst, r), 1e-9);
      // chosen indexes are sorted and unique
      EXPECT_TRUE(std::is_sorted(r.chosen.begin(), r.chosen.end()));
      EXPECT_EQ(std::adjacent_find(r.chosen.begin(), r.chosen.end()),
                r.chosen.end());
    }
  }
}

}  // namespace
}  // namespace dde::coverage
