// The umbrella header must compile standalone and expose the whole API.
#include "dde.h"

#include <gtest/gtest.h>

namespace {

TEST(Umbrella, ExposesEveryNamespace) {
  // Touch one symbol per namespace; compilation is the real assertion.
  dde::Rng rng(1);
  (void)rng.uniform();
  dde::des::Simulator sim;
  EXPECT_EQ(sim.now(), dde::SimTime::zero());
  dde::naming::Name name = dde::naming::Name::parse("/a/b");
  EXPECT_EQ(name.size(), 2u);
  dde::decision::DnfExpr expr;
  EXPECT_TRUE(expr.empty());
  dde::coverage::CoverInstance cover;
  EXPECT_TRUE(dde::coverage::greedy_cover(cover).covered);
  dde::fusion::LabelBelief belief;
  EXPECT_NEAR(belief.p_true(), 0.5, 1e-12);
  dde::workflow::WorkflowGraph graph;
  EXPECT_EQ(graph.point_count(), 0u);
  dde::pubsub::Item item;
  EXPECT_DOUBLE_EQ(dde::pubsub::marginal_utility(item, {}), 1.0);
  dde::sched::DecisionTask task;
  EXPECT_TRUE(dde::sched::single_task_feasible(task));
  dde::cache::TtlCache<int, int> cache(4);
  EXPECT_EQ(cache.size(), 0u);
  dde::scenario::ScenarioConfig cfg;
  EXPECT_EQ(cfg.grid_width, 8);
  dde::athena::AthenaConfig ac = dde::athena::config_for(
      dde::athena::Scheme::kLvfl);
  EXPECT_TRUE(ac.label_sharing);
  dde::world::ThresholdPredicate pred{1.0, true};
  EXPECT_TRUE(pred.evaluate(2.0));
}

}  // namespace
