// Crash-faithful restarts, the chaos harness, and the recovery protocol:
// plan-builder clamps, seeded chaos realization, quiesce-point invariants,
// the injector's transition-edge node hook, and the scenario-level pins —
// ghost churn stays byte-identical to the legacy restart path while cold
// churn drops in-flight queries and the recovery protocol wins them back.
#include "fault/chaos.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "des/simulator.h"
#include "fault/fault_injector.h"
#include "fault/fault_plan.h"
#include "fault/restart_policy.h"
#include "net/network.h"
#include "net/topology.h"
#include "scenario/route_scenario.h"
#include "scenario/teleop_scenario.h"

namespace dde::fault {
namespace {

/// Line topology 0 - 1 - ... - (n-1) at 1 Mbps / 1 ms.
struct Harness {
  des::Simulator sim;
  net::Topology topo;
  std::vector<NodeId> nodes;

  explicit Harness(std::size_t n) {
    for (std::size_t i = 0; i < n; ++i) nodes.push_back(topo.add_node());
    for (std::size_t i = 0; i + 1 < n; ++i) {
      topo.add_link(nodes[i], nodes[i + 1], 1e6, SimTime::millis(1));
    }
    topo.compute_routes();
  }
};

// --- FaultPlan / FaultSpec clamps ----------------------------------------

TEST(FaultPlanClamp, InvertedOutageIsDroppedNotScheduled) {
  // up_at <= down_at would run the repair first and leave the subject down
  // forever; both builders must clamp such an outage to a no-op.
  FaultPlan plan;
  plan.add_link_outage(LinkId{1}, SimTime::seconds(10), SimTime::seconds(10));
  plan.add_link_outage(LinkId{1}, SimTime::seconds(10), SimTime::seconds(5));
  plan.add_node_crash(NodeId{2}, SimTime::seconds(10), SimTime::seconds(10));
  plan.add_node_crash(NodeId{2}, SimTime::seconds(10), SimTime::seconds(3));
  EXPECT_TRUE(plan.empty()) << "inverted outages must schedule nothing";
  // The boundary just above the clamp still works.
  plan.add_node_crash(NodeId{2}, SimTime::seconds(10),
                      SimTime::seconds(10) + SimTime::micros(1));
  EXPECT_EQ(plan.events.size(), 2u);
}

TEST(FaultSpecClamp, OutOfRangeFractionsClampIntoUnitRange) {
  Harness h(6);
  FaultSpec spec;
  spec.link_outage_fraction = 1.7;  // clamps to 1.0: every pair downed
  spec.node_crash_fraction = -0.3;  // clamps to 0.0: nobody crashes
  spec.outage_at = SimTime::seconds(5);
  spec.crash_at = SimTime::seconds(5);
  Rng rng(3);
  const FaultPlan plan = spec.realize(h.topo, rng);
  std::size_t downs = 0;
  for (const auto& ev : plan.events) {
    EXPECT_EQ(ev.kind, FaultEvent::Kind::kLinkDown);
    ++downs;
  }
  EXPECT_EQ(downs, h.topo.link_count());
}

// --- RestartPolicy --------------------------------------------------------

TEST(RestartPolicyNames, RoundTripAndRejectUnknown) {
  for (RestartPolicy p :
       {RestartPolicy::kGhost, RestartPolicy::kCold, RestartPolicy::kWarm}) {
    RestartPolicy out = RestartPolicy::kGhost;
    ASSERT_TRUE(parse_restart_policy(to_string(p), &out));
    EXPECT_EQ(out, p);
  }
  RestartPolicy out = RestartPolicy::kCold;
  EXPECT_FALSE(parse_restart_policy("lukewarm", &out));
  EXPECT_EQ(out, RestartPolicy::kCold) << "failed parse leaves *out alone";
}

// --- ChaosSpec realization ------------------------------------------------

ChaosSpec churn_spec() {
  ChaosSpec spec;
  spec.window_start = SimTime::seconds(20);
  spec.window_end = SimTime::seconds(200);
  spec.crashes_per_node_min = 1.0;
  spec.flaps_per_link_min = 0.5;
  spec.restart_policy = RestartPolicy::kCold;
  return spec;
}

TEST(Chaos, EmptySpecRealizesEmptyPlanCarryingPolicy) {
  Harness h(4);
  ChaosSpec spec;
  spec.restart_policy = RestartPolicy::kWarm;
  EXPECT_TRUE(spec.empty());
  Rng rng(1);
  const FaultPlan plan = realize_chaos(spec, h.topo, rng);
  EXPECT_TRUE(plan.empty());
  EXPECT_EQ(plan.restart_policy, RestartPolicy::kWarm);
}

TEST(Chaos, RealizeIsDeterministicPerRngState) {
  Harness h(8);
  const ChaosSpec spec = churn_spec();
  auto schedule = [&](std::uint64_t seed) {
    Rng rng(seed);
    std::vector<std::tuple<int, std::uint64_t, std::uint64_t>> out;
    for (const auto& ev : realize_chaos(spec, h.topo, rng).events) {
      out.emplace_back(static_cast<int>(ev.kind), ev.at.count(), ev.subject);
    }
    return out;
  };
  const auto a = schedule(9);
  EXPECT_FALSE(a.empty());
  EXPECT_EQ(a, schedule(9));
  EXPECT_NE(a, schedule(10));  // overwhelmingly likely
}

TEST(Chaos, CrashesStayInWindowRespectDowntimeAndSpareNode0) {
  Harness h(8);
  const ChaosSpec spec = churn_spec();
  Rng rng(4);
  const FaultPlan plan = realize_chaos(spec, h.topo, rng);
  EXPECT_EQ(plan.restart_policy, RestartPolicy::kCold);
  // Every down has a matching later up; pair them per subject in order.
  std::vector<std::pair<std::uint64_t, SimTime>> open;  // (subject, down_at)
  std::size_t crashes = 0;
  for (const auto& ev : plan.events) {
    if (ev.kind == FaultEvent::Kind::kNodeDown) {
      EXPECT_NE(ev.subject, 0u) << "spare_node0 must hold";
      EXPECT_GE(ev.at, spec.window_start);
      EXPECT_LT(ev.at, spec.window_end);
      open.emplace_back(ev.subject, ev.at);
      ++crashes;
    } else if (ev.kind == FaultEvent::Kind::kNodeUp) {
      ASSERT_FALSE(open.empty());
      // Chaos emits each crash's up right after its down, same subject.
      EXPECT_EQ(ev.subject, open.back().first);
      const SimTime down = open.back().second;
      open.pop_back();
      EXPECT_GE(ev.at - down, spec.min_downtime);
      EXPECT_LE(ev.at - down, spec.max_downtime);
    }
  }
  EXPECT_TRUE(open.empty()) << "every chaos crash must schedule a restart";
  EXPECT_GT(crashes, 0u);
}

TEST(Chaos, FlapsDownBothDirectionsOfAPairTogether) {
  Harness h(5);
  ChaosSpec spec;
  spec.window_start = SimTime::seconds(10);
  spec.window_end = SimTime::seconds(100);
  spec.flaps_per_link_min = 1.0;
  Rng rng(6);
  const FaultPlan plan = realize_chaos(spec, h.topo, rng);
  // Each flap emits two whole outages — (down, up) for the forward link
  // then the same instants for the reverse link.
  ASSERT_EQ(plan.events.size() % 4, 0u);
  std::size_t flaps = 0;
  for (std::size_t i = 0; i < plan.events.size(); i += 4) {
    const auto& fwd_down = plan.events[i];
    const auto& fwd_up = plan.events[i + 1];
    const auto& rev_down = plan.events[i + 2];
    const auto& rev_up = plan.events[i + 3];
    EXPECT_EQ(fwd_down.kind, FaultEvent::Kind::kLinkDown);
    EXPECT_EQ(fwd_up.kind, FaultEvent::Kind::kLinkUp);
    EXPECT_EQ(rev_down.kind, FaultEvent::Kind::kLinkDown);
    EXPECT_EQ(rev_up.kind, FaultEvent::Kind::kLinkUp);
    EXPECT_EQ(fwd_down.at, rev_down.at);
    EXPECT_EQ(fwd_up.at, rev_up.at);
    EXPECT_EQ(fwd_down.subject, fwd_up.subject);
    EXPECT_EQ(rev_down.subject, rev_up.subject);
    EXPECT_NE(fwd_down.subject, rev_down.subject);
    ++flaps;
  }
  EXPECT_GT(flaps, 0u);
}

// --- quiesce-point invariants --------------------------------------------

TEST(ChaosInvariants, CleanProbesPass) {
  std::vector<NodeStateProbe> probes(3);
  for (std::size_t i = 0; i < probes.size(); ++i) probes[i].node = i;
  EXPECT_TRUE(check_quiesce_invariants(probes).ok());
  EXPECT_TRUE(check_quiesce_invariants({}).ok());
}

TEST(ChaosInvariants, ResidualStateIsFlaggedPerField) {
  // Known-bad fixture: node 7 leaks one entry of every kind.
  NodeStateProbe bad;
  bad.node = 7;
  bad.active_queries = 1;
  bad.interest_entries = 2;
  bad.forwarded_entries = 3;
  bad.dedup_entries = 4;
  const auto report = check_quiesce_invariants({NodeStateProbe{}, bad});
  EXPECT_FALSE(report.ok());
  EXPECT_EQ(report.violations.size(), 4u);
  for (const std::string& v : report.violations) {
    EXPECT_NE(v.find("node 7"), std::string::npos) << v;
  }
}

TEST(ReplayDigest, OrderSensitiveAndSeedsDistinct) {
  ReplayDigest ab;
  ab.fold(std::uint64_t{1});
  ab.fold(std::uint64_t{2});
  ReplayDigest ba;
  ba.fold(std::uint64_t{2});
  ba.fold(std::uint64_t{1});
  EXPECT_NE(ab.value(), ba.value());
  ReplayDigest ab2;
  ab2.fold(std::uint64_t{1});
  ab2.fold(std::uint64_t{2});
  EXPECT_EQ(ab.value(), ab2.value());
  // Doubles fold by exact bit pattern.
  ReplayDigest d1;
  d1.fold(0.1);
  ReplayDigest d2;
  d2.fold(0.1 + 1e-18);  // same double after rounding
  EXPECT_EQ(d1.value(), d2.value());
}

// --- injector node hook ---------------------------------------------------

TEST(FaultInjector, NodeHookFiresOncePerActualTransition) {
  // Double-crash and double-restart events are idempotent no-ops: the hook
  // (and the stats) must see exactly one down and one up edge.
  Harness h(3);
  net::Network net(h.sim, h.topo);
  FaultPlan plan;
  plan.events.push_back(
      {FaultEvent::Kind::kNodeDown, SimTime::seconds(1), 1});
  plan.events.push_back(
      {FaultEvent::Kind::kNodeDown, SimTime::seconds(2), 1});  // redundant
  plan.events.push_back({FaultEvent::Kind::kNodeUp, SimTime::seconds(5), 1});
  plan.events.push_back(
      {FaultEvent::Kind::kNodeUp, SimTime::seconds(6), 1});  // redundant
  FaultInjector inj(h.sim, h.topo, net, std::move(plan), 99);
  std::vector<std::pair<std::uint64_t, bool>> calls;
  inj.set_node_hook([&](NodeId node, bool up) {
    calls.emplace_back(node.value(), up);
  });
  h.sim.run_until();
  ASSERT_EQ(calls.size(), 2u);
  EXPECT_EQ(calls[0], (std::pair<std::uint64_t, bool>{1, false}));
  EXPECT_EQ(calls[1], (std::pair<std::uint64_t, bool>{1, true}));
  EXPECT_EQ(inj.stats().node_downs, 1u);
  EXPECT_EQ(inj.stats().node_ups, 1u);
}

}  // namespace
}  // namespace dde::fault

// --- scenario-level pins --------------------------------------------------

namespace dde::scenario {
namespace {

/// Small cold-churn workload: Poisson arrivals across the churn window with
/// deadlines short enough that a crash mid-retrieval drops real work.
ScenarioConfig churn_config(fault::RestartPolicy policy,
                            std::uint64_t seed = 7) {
  ScenarioConfig cfg;
  cfg.grid_width = 6;
  cfg.grid_height = 6;
  cfg.node_count = 16;
  cfg.queries_per_node = 2;
  cfg.arrival = ScenarioConfig::Arrival::kPoisson;
  cfg.mean_interarrival = SimTime::seconds(40);
  cfg.query_deadline = SimTime::seconds(60);
  cfg.horizon = SimTime::seconds(300);
  cfg.seed = seed;
  cfg.chaos.window_start = SimTime::seconds(20);
  cfg.chaos.window_end = SimTime::seconds(260);
  cfg.chaos.crashes_per_node_min = 1.0;
  cfg.chaos.restart_policy = policy;
  return cfg;
}

/// Order-sensitive digest of a run's observable outcome.
std::uint64_t digest(const ScenarioResult& r) {
  fault::ReplayDigest d;
  d.fold(r.metrics.queries_issued);
  d.fold(r.metrics.queries_resolved);
  d.fold(r.metrics.queries_failed);
  d.fold(r.metrics.queries_failed_crash);
  d.fold(r.metrics.node_restarts);
  d.fold(r.metrics.recovery_hellos);
  d.fold(r.metrics.recovery_marker_purges);
  d.fold(r.metrics.recovery_reissues);
  d.fold(r.metrics.total_bytes());
  d.fold(r.traffic.bytes);
  d.fold(r.events);
  for (const auto& out : r.outcomes) {
    d.fold(static_cast<std::uint64_t>(out.success ? 1 : 0));
    d.fold(static_cast<std::uint64_t>(out.crashed ? 1 : 0));
    d.fold(out.latency_s);
    d.fold(out.finished_s);
  }
  return d.value();
}

TEST(ScenarioChaos, GhostChurnIsInertAndIgnoresRecoveryKnob) {
  // Under the default ghost policy the whole crash/recovery machinery must
  // vanish: no crashed queries, no restarts, no hellos — and flipping
  // fault_crash_recovery must not change a single byte of the run.
  auto on = churn_config(fault::RestartPolicy::kGhost);
  auto off = on;
  off.fault_crash_recovery = false;
  const auto a = run_route_scenario(on);
  const auto b = run_route_scenario(off);
  EXPECT_GT(a.faults.node_downs, 0u) << "the churn itself must be real";
  EXPECT_EQ(a.metrics.queries_failed_crash, 0u);
  EXPECT_EQ(a.metrics.node_restarts, 0u);
  EXPECT_EQ(a.metrics.recovery_hellos, 0u);
  EXPECT_EQ(a.metrics.control_bytes, 0u);
  EXPECT_EQ(digest(a), digest(b));
}

TEST(ScenarioChaos, ColdChurnDropsInFlightWorkAndRecovers) {
  const auto r = run_route_scenario(churn_config(fault::RestartPolicy::kCold));
  EXPECT_GT(r.metrics.node_restarts, 0u);
  EXPECT_GT(r.metrics.queries_failed_crash, 0u);
  EXPECT_GT(r.metrics.recovery_hellos, 0u);
  EXPECT_GT(r.metrics.control_bytes, 0u);
  // Crash-failed queries are their own terminal bucket, mirrored into the
  // per-query outcome flags.
  std::uint64_t crashed_outcomes = 0;
  for (const auto& out : r.outcomes) crashed_outcomes += out.crashed ? 1 : 0;
  EXPECT_EQ(crashed_outcomes, r.metrics.queries_failed_crash);
  // And the run differs from the ghost twin (state loss is observable).
  const auto g = run_route_scenario(churn_config(fault::RestartPolicy::kGhost));
  EXPECT_NE(digest(r), digest(g));
}

TEST(ScenarioChaos, ColdChurnReplaysBitForBit) {
  const auto cfg = churn_config(fault::RestartPolicy::kCold, 11);
  EXPECT_EQ(digest(run_route_scenario(cfg)), digest(run_route_scenario(cfg)));
}

TEST(ScenarioChaos, QuiescenceDrainsEveryResidualTable) {
  auto cfg = churn_config(fault::RestartPolicy::kCold, 5);
  cfg.chaos.flaps_per_link_min = 0.1;
  cfg.run_to_quiescence = true;
  const auto r = run_route_scenario(cfg);
  ASSERT_EQ(r.probes.size(), 16u);
  const auto report = fault::check_quiesce_invariants(r.probes);
  EXPECT_TRUE(report.ok()) << (report.violations.empty()
                                   ? ""
                                   : report.violations.front());
}

TEST(ScenarioChaos, TeleopColdChurnRestartsAndStaysDeterministic) {
  TeleopScenarioConfig cfg;
  cfg.horizon = SimTime::seconds(300);
  cfg.seed = 3;
  cfg.chaos.window_start = SimTime::seconds(20);
  cfg.chaos.window_end = SimTime::seconds(260);
  cfg.chaos.crashes_per_node_min = 1.0;
  cfg.chaos.restart_policy = fault::RestartPolicy::kCold;
  const auto a = run_teleop_scenario(cfg);
  const auto b = run_teleop_scenario(cfg);
  EXPECT_GT(a.faults.node_downs, 0u);
  EXPECT_GT(a.metrics.node_restarts, 0u);
  EXPECT_EQ(a.metrics.node_restarts, b.metrics.node_restarts);
  EXPECT_EQ(a.metrics.recovery_hellos, b.metrics.recovery_hellos);
  EXPECT_EQ(a.bytes_sent, b.bytes_sent);
  EXPECT_EQ(a.events, b.events);
}

}  // namespace
}  // namespace dde::scenario
