#include "decision/planner.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "common/rng.h"
#include "decision/estimator.h"
#include "decision/ordering.h"

namespace dde::decision {
namespace {

Term term(std::uint64_t l) { return Term{LabelId{l}, false}; }

LabelValue val(std::uint64_t label, Tristate v) {
  LabelValue lv;
  lv.label = LabelId{label};
  lv.value = v;
  lv.evaluated_at = SimTime::zero();
  lv.validity = SimTime::seconds(1000);
  lv.annotator = AnnotatorId{0};
  return lv;
}

DnfExpr route_example() {
  DnfExpr e;
  e.add_disjunct(Conjunction{{term(0), term(1), term(2)}});
  e.add_disjunct(Conjunction{{term(3), term(4), term(5)}});
  return e;
}

MetaTable uniform_meta(std::size_t n) {
  MetaTable t;
  for (std::size_t i = 0; i < n; ++i) {
    t.set(LabelId{i}, LabelMeta{1.0, SimTime::seconds(1), 0.5,
                                SimTime::seconds(100)});
  }
  return t;
}

class AllPolicies : public ::testing::TestWithParam<OrderPolicy> {};

TEST_P(AllPolicies, PlanIsPermutationOfRelevantLabels) {
  const DnfExpr e = route_example();
  const MetaTable meta = uniform_meta(6);
  Assignment a;
  a.set(val(0, Tristate::kFalse));  // route 1 dead; labels 1, 2 irrelevant
  const auto order = plan_retrieval_order(e, a, SimTime::zero(), meta.fn(),
                                          GetParam());
  const auto relevant = e.relevant_labels(a, SimTime::zero());
  EXPECT_TRUE(std::is_permutation(order.begin(), order.end(),
                                  relevant.begin(), relevant.end()));
}

TEST_P(AllPolicies, EmptyWhenResolved) {
  const DnfExpr e = route_example();
  const MetaTable meta = uniform_meta(6);
  Assignment a;
  a.set(val(0, Tristate::kTrue));
  a.set(val(1, Tristate::kTrue));
  a.set(val(2, Tristate::kTrue));
  EXPECT_TRUE(plan_retrieval_order(e, a, SimTime::zero(), meta.fn(),
                                   GetParam())
                  .empty());
  EXPECT_FALSE(next_label(e, a, SimTime::zero(), meta.fn(), GetParam())
                   .has_value());
}

TEST_P(AllPolicies, NextLabelIsFirstOfPlan) {
  const DnfExpr e = route_example();
  const MetaTable meta = uniform_meta(6);
  Assignment a;
  const auto order =
      plan_retrieval_order(e, a, SimTime::zero(), meta.fn(), GetParam());
  const auto next = next_label(e, a, SimTime::zero(), meta.fn(), GetParam());
  ASSERT_TRUE(next.has_value());
  EXPECT_EQ(*next, order.front());
}

INSTANTIATE_TEST_SUITE_P(
    Policies, AllPolicies,
    ::testing::Values(OrderPolicy::kDeclared, OrderPolicy::kCheapestFirst,
                      OrderPolicy::kShortCircuit,
                      OrderPolicy::kLongestValidityFirst,
                      OrderPolicy::kVariationalLvf));

TEST(Planner, DeclaredKeepsDeclarationOrder) {
  const DnfExpr e = route_example();
  const MetaTable meta = uniform_meta(6);
  Assignment a;
  const auto order = plan_retrieval_order(e, a, SimTime::zero(), meta.fn(),
                                          OrderPolicy::kDeclared);
  for (std::size_t i = 0; i < order.size(); ++i) {
    EXPECT_EQ(order[i], LabelId{i});
  }
}

TEST(Planner, CheapestFirstSortsByCost) {
  const DnfExpr e = route_example();
  MetaTable meta;
  for (std::size_t i = 0; i < 6; ++i) {
    meta.set(LabelId{i}, LabelMeta{static_cast<double>(10 - i),
                                   SimTime::seconds(1), 0.5,
                                   SimTime::seconds(100)});
  }
  Assignment a;
  const auto order = plan_retrieval_order(e, a, SimTime::zero(), meta.fn(),
                                          OrderPolicy::kCheapestFirst);
  for (std::size_t i = 1; i < order.size(); ++i) {
    EXPECT_LE(meta.get(order[i - 1]).cost, meta.get(order[i]).cost);
  }
  EXPECT_EQ(order.front(), LabelId{5});
}

TEST(Planner, LvfSortsByValidityDescending) {
  const DnfExpr e = route_example();
  MetaTable meta;
  for (std::size_t i = 0; i < 6; ++i) {
    meta.set(LabelId{i}, LabelMeta{1.0, SimTime::seconds(1), 0.5,
                                   SimTime::seconds(10.0 * (i + 1))});
  }
  Assignment a;
  const auto order = plan_retrieval_order(e, a, SimTime::zero(), meta.fn(),
                                          OrderPolicy::kLongestValidityFirst);
  for (std::size_t i = 1; i < order.size(); ++i) {
    EXPECT_GE(meta.get(order[i - 1]).validity, meta.get(order[i]).validity);
  }
}

TEST(Planner, ShortCircuitPrefersCheapLikelyFalseWithinBestDisjunct) {
  DnfExpr e;
  e.add_disjunct(Conjunction{{term(0), term(1)}});
  MetaTable meta;
  meta.set(LabelId{0}, LabelMeta{4.0, SimTime::seconds(1), 0.6,
                                 SimTime::seconds(100)});
  meta.set(LabelId{1}, LabelMeta{5.0, SimTime::seconds(1), 0.2,
                                 SimTime::seconds(100)});
  Assignment a;
  const auto next = next_label(e, a, SimTime::zero(), meta.fn(),
                               OrderPolicy::kShortCircuit);
  ASSERT_TRUE(next.has_value());
  EXPECT_EQ(*next, LabelId{1});
}

TEST(Planner, ShortCircuitTriesLikelyCheapDisjunctFirst) {
  DnfExpr e;
  e.add_disjunct(Conjunction{{term(0)}});  // expensive unlikely
  e.add_disjunct(Conjunction{{term(1)}});  // cheap likely
  MetaTable meta;
  meta.set(LabelId{0}, LabelMeta{10.0, SimTime::seconds(1), 0.1,
                                 SimTime::seconds(100)});
  meta.set(LabelId{1}, LabelMeta{1.0, SimTime::seconds(1), 0.9,
                                 SimTime::seconds(100)});
  Assignment a;
  const auto next = next_label(e, a, SimTime::zero(), meta.fn(),
                               OrderPolicy::kShortCircuit);
  ASSERT_TRUE(next.has_value());
  EXPECT_EQ(*next, LabelId{1});
}

// Simulated adaptive execution: repeatedly evaluate next_label against a
// ground-truth world until resolution; every policy must terminate and
// agree with the classical truth value.
TEST(Planner, AdaptiveExecutionTerminatesAndIsCorrect) {
  Rng rng(42);
  const std::vector<OrderPolicy> policies{
      OrderPolicy::kDeclared, OrderPolicy::kCheapestFirst,
      OrderPolicy::kShortCircuit, OrderPolicy::kLongestValidityFirst,
      OrderPolicy::kVariationalLvf};
  for (int trial = 0; trial < 100; ++trial) {
    const std::size_t n = 1 + rng.below(8);
    DnfExpr e;
    const std::size_t n_disj = 1 + rng.below(4);
    for (std::size_t d = 0; d < n_disj; ++d) {
      Conjunction c;
      for (std::size_t t = 0, k = 1 + rng.below(4); t < k; ++t) {
        c.terms.push_back(Term{LabelId{rng.below(n)}, rng.chance(0.25)});
      }
      e.add_disjunct(std::move(c));
    }
    MetaTable meta;
    std::vector<bool> world(n);
    for (std::size_t i = 0; i < n; ++i) {
      world[i] = rng.chance(0.5);
      meta.set(LabelId{i},
               LabelMeta{rng.uniform(0.5, 5.0), SimTime::seconds(1),
                         rng.uniform(0.1, 0.9),
                         SimTime::seconds(rng.uniform(50, 500))});
    }
    // Classical truth.
    Assignment full;
    for (std::size_t i = 0; i < n; ++i) {
      full.set(val(i, world[i] ? Tristate::kTrue : Tristate::kFalse));
    }
    const Tristate truth = e.evaluate(full, SimTime::zero());

    for (OrderPolicy policy : policies) {
      Assignment a;
      int fetches = 0;
      while (auto next = next_label(e, a, SimTime::zero(), meta.fn(), policy,
                                    SimTime::seconds(1000))) {
        a.set(val(next->value(),
                  world[next->value()] ? Tristate::kTrue : Tristate::kFalse));
        ASSERT_LE(++fetches, static_cast<int>(n)) << "must terminate";
      }
      EXPECT_EQ(e.evaluate(a, SimTime::zero()), truth);
    }
  }
}

// The adaptive short-circuit policy should on average fetch no more than
// the declared-order policy over random worlds.
TEST(Planner, ShortCircuitFetchesNoMoreThanDeclaredOnAverage) {
  Rng rng(7);
  double sc_total = 0;
  double dec_total = 0;
  for (int trial = 0; trial < 300; ++trial) {
    const std::size_t n = 6;
    DnfExpr e;
    for (std::size_t d = 0; d < 2; ++d) {
      Conjunction c;
      for (std::size_t t = 0; t < 3; ++t) c.terms.push_back(term(d * 3 + t));
      e.add_disjunct(std::move(c));
    }
    MetaTable meta;
    std::vector<bool> world(n);
    std::vector<double> p(n);
    for (std::size_t i = 0; i < n; ++i) {
      p[i] = rng.uniform(0.1, 0.9);
      world[i] = rng.chance(p[i]);
      meta.set(LabelId{i}, LabelMeta{rng.uniform(0.5, 5.0), SimTime::seconds(1),
                                     p[i], SimTime::seconds(100)});
    }
    auto run = [&](OrderPolicy policy) {
      Assignment a;
      double cost = 0;
      while (auto next = next_label(e, a, SimTime::zero(), meta.fn(), policy)) {
        cost += meta.get(*next).cost;
        a.set(val(next->value(),
                  world[next->value()] ? Tristate::kTrue : Tristate::kFalse));
      }
      return cost;
    };
    sc_total += run(OrderPolicy::kShortCircuit);
    dec_total += run(OrderPolicy::kDeclared);
  }
  EXPECT_LT(sc_total, dec_total);
}

TEST(PriorEstimator, UninformativeStart) {
  PriorEstimator e;
  EXPECT_DOUBLE_EQ(e.p_true(LabelId{0}), 0.5);
  EXPECT_EQ(e.tracked_labels(), 0u);
}

TEST(PriorEstimator, MovesWithObservations) {
  PriorEstimator e;
  e.observe(LabelId{1}, true);
  EXPECT_GT(e.p_true(LabelId{1}), 0.5);
  e.observe(LabelId{2}, false);
  EXPECT_LT(e.p_true(LabelId{2}), 0.5);
  EXPECT_DOUBLE_EQ(e.observations(LabelId{1}), 1.0);
}

TEST(PriorEstimator, ConvergesToTruth) {
  Rng rng(3);
  PriorEstimator e;
  for (int i = 0; i < 5000; ++i) e.observe(LabelId{0}, rng.chance(0.73));
  EXPECT_NEAR(e.p_true(LabelId{0}), 0.73, 0.03);
}

TEST(PriorEstimator, PriorStrengthSlowsMovement) {
  PriorEstimator weak(0.5);
  PriorEstimator strong(50.0);
  for (int i = 0; i < 10; ++i) {
    weak.observe(LabelId{0}, true);
    strong.observe(LabelId{0}, true);
  }
  EXPECT_GT(weak.p_true(LabelId{0}), strong.p_true(LabelId{0}));
}

TEST(PriorEstimator, OverlayReplacesOnlyPTrue) {
  MetaTable base;
  base.set(LabelId{0}, LabelMeta{7.0, SimTime::seconds(3), 0.9,
                                 SimTime::seconds(42)});
  PriorEstimator e;
  for (int i = 0; i < 20; ++i) e.observe(LabelId{0}, false);
  const auto fn = e.overlay(base.fn());
  const LabelMeta m = fn(LabelId{0});
  EXPECT_DOUBLE_EQ(m.cost, 7.0);
  EXPECT_EQ(m.validity, SimTime::seconds(42));
  EXPECT_LT(m.p_true, 0.1);
}

// The planner with learned priors should beat the uninformed planner on
// average once enough observations accumulate.
TEST(PriorEstimator, LearnedPriorsReduceAdaptiveCost) {
  Rng rng(9);
  DnfExpr e;
  std::vector<double> p(6);
  MetaTable flat;
  MetaTable truth;
  for (std::size_t d = 0; d < 2; ++d) {
    Conjunction c;
    for (std::size_t t = 0; t < 3; ++t) {
      const std::uint64_t l = d * 3 + t;
      p[l] = rng.uniform(0.1, 0.9);
      c.terms.push_back(Term{LabelId{l}, false});
      const double cost = rng.uniform(0.5, 5.0);
      flat.set(LabelId{l}, LabelMeta{cost, SimTime::seconds(1), 0.5,
                                     SimTime::seconds(100)});
      truth.set(LabelId{l}, LabelMeta{cost, SimTime::seconds(1), p[l],
                                      SimTime::seconds(100)});
    }
    e.add_disjunct(std::move(c));
  }
  PriorEstimator est;
  auto run = [&](const MetaFn& meta, Rng& wrng, bool learn) {
    Assignment a;
    double cost = 0;
    while (auto next = next_label(e, a, SimTime::zero(), meta,
                                  OrderPolicy::kShortCircuit)) {
      cost += truth.get(*next).cost;
      const bool v = wrng.chance(p[next->value()]);
      LabelValue lv;
      lv.label = *next;
      lv.value = to_tristate(v);
      lv.evaluated_at = SimTime::zero();
      lv.validity = SimTime::seconds(1e6);
      lv.annotator = AnnotatorId{0};
      a.set(lv);
      if (learn) est.observe(*next, v);
    }
    return cost;
  };
  // Warm-up: learn from 500 queries.
  const auto learned_fn = est.overlay(flat.fn());
  for (int i = 0; i < 500; ++i) {
    Rng w(static_cast<std::uint64_t>(i));
    (void)run(learned_fn, w, true);
  }
  // Evaluate both planners on fresh identical worlds.
  double learned_cost = 0;
  double flat_cost = 0;
  for (int i = 0; i < 500; ++i) {
    Rng w1(static_cast<std::uint64_t>(10000 + i));
    Rng w2 = w1;
    learned_cost += run(learned_fn, w1, false);
    flat_cost += run(flat.fn(), w2, false);
  }
  EXPECT_LT(learned_cost, flat_cost);
}

}  // namespace
}  // namespace dde::decision
