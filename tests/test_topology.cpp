#include "net/topology.h"

#include <gtest/gtest.h>

#include <vector>

namespace dde::net {
namespace {

/// Line topology: 0 - 1 - 2 - 3.
Topology line(std::size_t n) {
  Topology t;
  std::vector<NodeId> nodes;
  for (std::size_t i = 0; i < n; ++i) nodes.push_back(t.add_node());
  for (std::size_t i = 0; i + 1 < n; ++i) t.add_link(nodes[i], nodes[i + 1]);
  t.compute_routes();
  return t;
}

TEST(Link, TransmissionTime) {
  Link l;
  l.bandwidth_bps = 1e6;
  EXPECT_EQ(l.transmission_time(125000), SimTime::seconds(1));  // 1 Mb at 1 Mbps
  EXPECT_EQ(l.transmission_time(0), SimTime::zero());
}

TEST(Topology, AddNodesAndLinks) {
  Topology t;
  const NodeId a = t.add_node();
  const NodeId b = t.add_node();
  EXPECT_EQ(t.node_count(), 2u);
  const auto [ab, ba] = t.add_link(a, b, 2e6, SimTime::millis(5));
  EXPECT_EQ(t.link_count(), 2u);
  EXPECT_EQ(t.link(ab).from, a);
  EXPECT_EQ(t.link(ab).to, b);
  EXPECT_EQ(t.link(ba).from, b);
  EXPECT_DOUBLE_EQ(t.link(ab).bandwidth_bps, 2e6);
  EXPECT_EQ(t.link(ab).latency, SimTime::millis(5));
}

TEST(Topology, LinkBetween) {
  const Topology t = line(3);
  EXPECT_TRUE(t.link_between(NodeId{0}, NodeId{1}).has_value());
  EXPECT_TRUE(t.link_between(NodeId{1}, NodeId{0}).has_value());
  EXPECT_FALSE(t.link_between(NodeId{0}, NodeId{2}).has_value());
}

TEST(Topology, Neighbors) {
  const Topology t = line(4);
  EXPECT_EQ(t.neighbors(NodeId{0}).size(), 1u);
  EXPECT_EQ(t.neighbors(NodeId{1}).size(), 2u);
  const auto n1 = t.neighbors(NodeId{1});
  EXPECT_NE(std::find(n1.begin(), n1.end(), NodeId{0}), n1.end());
  EXPECT_NE(std::find(n1.begin(), n1.end(), NodeId{2}), n1.end());
}

TEST(Topology, NextHopAlongLine) {
  const Topology t = line(4);
  EXPECT_EQ(t.next_hop(NodeId{0}, NodeId{3}), NodeId{1});
  EXPECT_EQ(t.next_hop(NodeId{1}, NodeId{3}), NodeId{2});
  EXPECT_EQ(t.next_hop(NodeId{3}, NodeId{0}), NodeId{2});
  EXPECT_EQ(t.next_hop(NodeId{2}, NodeId{2}), NodeId{2});
}

TEST(Topology, HopDistance) {
  const Topology t = line(5);
  EXPECT_EQ(t.hop_distance(NodeId{0}, NodeId{4}), 4u);
  EXPECT_EQ(t.hop_distance(NodeId{2}, NodeId{2}), 0u);
  EXPECT_EQ(t.hop_distance(NodeId{4}, NodeId{1}), 3u);
}

TEST(Topology, UnreachableNodes) {
  Topology t;
  const NodeId a = t.add_node();
  const NodeId b = t.add_node();
  (void)a;
  (void)b;
  t.compute_routes();
  EXPECT_FALSE(t.next_hop(NodeId{0}, NodeId{1}).has_value());
  EXPECT_FALSE(t.hop_distance(NodeId{0}, NodeId{1}).has_value());
}

TEST(Topology, RoutesNotComputedReturnsNullopt) {
  Topology t;
  t.add_node();
  t.add_node();
  EXPECT_FALSE(t.next_hop(NodeId{0}, NodeId{1}).has_value());
}

TEST(Topology, PrefersFastPath) {
  // Triangle with a slow direct link and a fast two-hop path:
  //   0 —slow— 2,  0 —fast— 1 —fast— 2
  Topology t;
  const NodeId n0 = t.add_node();
  const NodeId n1 = t.add_node();
  const NodeId n2 = t.add_node();
  t.add_link(n0, n2, 1e6, SimTime::seconds(10));  // slow (huge latency)
  t.add_link(n0, n1, 1e6, SimTime::millis(1));
  t.add_link(n1, n2, 1e6, SimTime::millis(1));
  t.compute_routes();
  EXPECT_EQ(t.next_hop(n0, n2), n1);
}

TEST(Topology, PrefersDirectWhenEqualBandwidth) {
  // Triangle with equal links: direct is cheaper than two hops.
  Topology t;
  const NodeId n0 = t.add_node();
  const NodeId n1 = t.add_node();
  const NodeId n2 = t.add_node();
  t.add_link(n0, n2);
  t.add_link(n0, n1);
  t.add_link(n1, n2);
  t.compute_routes();
  EXPECT_EQ(t.next_hop(n0, n2), n2);
  EXPECT_EQ(t.hop_distance(n0, n2), 1u);
}

TEST(Topology, FollowNextHopsReachesEveryDestination) {
  // Grid-ish topology: 3×3 mesh.
  Topology t;
  std::vector<NodeId> nodes;
  for (int i = 0; i < 9; ++i) nodes.push_back(t.add_node());
  for (int y = 0; y < 3; ++y) {
    for (int x = 0; x < 3; ++x) {
      if (x + 1 < 3) t.add_link(nodes[y * 3 + x], nodes[y * 3 + x + 1]);
      if (y + 1 < 3) t.add_link(nodes[y * 3 + x], nodes[(y + 1) * 3 + x]);
    }
  }
  t.compute_routes();
  for (std::size_t from = 0; from < 9; ++from) {
    for (std::size_t to = 0; to < 9; ++to) {
      NodeId cur{from};
      int steps = 0;
      while (cur != NodeId{to}) {
        const auto next = t.next_hop(cur, NodeId{to});
        ASSERT_TRUE(next.has_value());
        ASSERT_TRUE(t.link_between(cur, *next).has_value())
            << "next hop must be adjacent";
        cur = *next;
        ASSERT_LE(++steps, 8) << "route must not loop";
      }
      EXPECT_EQ(static_cast<std::size_t>(steps),
                *t.hop_distance(NodeId{from}, NodeId{to}));
    }
  }
}

TEST(Topology, ComputeRoutesWithDisabledLinksRoutesAround) {
  // Diamond: 0 - 1 - 2 and 0 - 3 - 2.
  Topology t;
  std::vector<NodeId> n;
  for (int i = 0; i < 4; ++i) n.push_back(t.add_node());
  const auto [l01, l10] = t.add_link(n[0], n[1]);
  t.add_link(n[1], n[2]);
  t.add_link(n[0], n[3]);
  t.add_link(n[3], n[2]);
  t.compute_routes();
  EXPECT_EQ(t.hop_distance(n[0], n[2]), 2u);

  // Disable the 0–1 pair: everything must route via 3.
  std::vector<char> enabled(t.link_count(), 1);
  enabled[l01.value()] = 0;
  enabled[l10.value()] = 0;
  t.compute_routes(enabled);
  EXPECT_EQ(t.next_hop(n[0], n[2]), n[3]);
  EXPECT_EQ(t.next_hop(n[0], n[1]), n[3]) << "even 0→1 detours the long way";
  EXPECT_EQ(t.hop_distance(n[0], n[1]), 3u);

  // Disabling both sides of the diamond cuts 0 off entirely.
  const auto l03 = *t.link_between(n[0], n[3]);
  const auto l30 = *t.link_between(n[3], n[0]);
  enabled[l03.value()] = 0;
  enabled[l30.value()] = 0;
  t.compute_routes(enabled);
  EXPECT_FALSE(t.next_hop(n[0], n[2]).has_value());
  EXPECT_EQ(t.next_hop(n[1], n[2]), n[2]) << "the rest of the mesh survives";

  // An empty mask means "all enabled" and matches a plain recompute.
  t.compute_routes(std::vector<char>());
  EXPECT_EQ(t.hop_distance(n[0], n[2]), 2u);
}

TEST(Topology, LinkThrowsOnBadId) {
  const Topology t = line(2);
  EXPECT_THROW((void)t.link(LinkId{999}), std::out_of_range);
}

}  // namespace
}  // namespace dde::net
