// Overload protection at the protocol layer: deadline-infeasibility
// shedding, admission control, congestion-adaptive prefetch throttling,
// state garbage collection, and seed reproduction with the knobs at their
// defaults.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "athena/directory.h"
#include "athena/node.h"
#include "des/simulator.h"
#include "scenario/route_scenario.h"

namespace dde::athena {
namespace {

using world::SensorInfo;

decision::DnfExpr single_label(std::uint64_t l) {
  decision::DnfExpr e;
  e.add_disjunct(decision::Conjunction{{decision::Term{LabelId{l}, false}}});
  return e;
}

/// Line network A(0) — B(1) — C(2), mirroring the test_athena_node fixture:
///   sensor 0 @ C covers segments {0 (viable), 1 (blocked)}, 1000 B, 100 s.
///   sensor 1 @ A covers segment {2 (viable)}, 800 B, 100 s.
///   sensor 2 @ C covers segment {3 (viable)}, 1000 B, 10 ms.
struct Fixture {
  world::GridMap map{4, 4};
  world::ViabilityProcess truth;
  world::SensorField field;
  net::Topology topo;
  std::vector<NodeId> nodes;
  des::Simulator sim;
  net::Network net;
  Directory dir;
  AthenaMetrics metrics;
  std::vector<std::unique_ptr<AthenaNode>> athena;

  static std::vector<world::SegmentDynamics> dynamics(std::size_t n) {
    std::vector<world::SegmentDynamics> d(
        n, world::SegmentDynamics{1.0, SimTime::seconds(1e7)});
    d[1].p_viable = 0.0;
    return d;
  }

  static std::vector<SensorInfo> sensors() {
    SensorInfo s0;
    s0.id = SourceId{0};
    s0.name = naming::Name::parse("/t/c");
    s0.covers = {SegmentId{0}, SegmentId{1}};
    s0.object_bytes = 1000;
    s0.validity = SimTime::seconds(100);
    SensorInfo s1;
    s1.id = SourceId{1};
    s1.name = naming::Name::parse("/t/a");
    s1.covers = {SegmentId{2}};
    s1.object_bytes = 800;
    s1.validity = SimTime::seconds(100);
    SensorInfo s2;
    s2.id = SourceId{2};
    s2.name = naming::Name::parse("/t/c2");
    s2.covers = {SegmentId{3}};
    s2.object_bytes = 1000;
    s2.validity = SimTime::millis(10);
    s2.rate = world::ChangeRate::kFast;
    return {s0, s1, s2};
  }

  explicit Fixture(const AthenaConfig& cfg = config_for(Scheme::kLvfl))
      : truth(dynamics(map.segment_count()), Rng(1)),
        field(map, truth, sensors()),
        topo(),
        nodes(),
        sim(),
        net(make_net()),
        dir(topo, field, {NodeId{2}, NodeId{0}, NodeId{2}},
            {{LabelId{0}, 0.9},
             {LabelId{1}, 0.1},
             {LabelId{2}, 0.9},
             {LabelId{3}, 0.9}}) {
    for (std::size_t i = 0; i < 3; ++i) {
      athena.push_back(std::make_unique<AthenaNode>(NodeId{i}, net, dir, field,
                                                    cfg, metrics));
    }
  }

  net::Network make_net() {
    for (int i = 0; i < 3; ++i) nodes.push_back(topo.add_node());
    topo.add_link(nodes[0], nodes[1], 1e6, SimTime::millis(1));
    topo.add_link(nodes[1], nodes[2], 1e6, SimTime::millis(1));
    topo.compute_routes();
    return net::Network(sim, topo);
  }

  const QueryRecord& last_record(std::size_t node) const {
    return athena[node]->records().back();
  }

  /// Occupy a link with protocol-opaque traffic (ignored by on_packet).
  void jam(std::size_t from, std::size_t to, int packets) {
    for (int i = 0; i < packets; ++i) {
      net::Packet p;
      p.bytes = 125000;  // 1 s of link time each
      p.payload = std::string("jam");
      net.send(nodes[from], nodes[to], std::move(p));
    }
  }
};

TEST(Overload, InfeasibleDeadlineShedNotFailed) {
  auto cfg = config_for(Scheme::kLvfl);
  cfg.shed_infeasible = true;
  Fixture f(cfg);
  // Label 0 lives two hops away; even the lower-bound retrieval estimate
  // exceeds a 1 ms deadline, so the query is shed synchronously at init.
  f.athena[0]->query_init(single_label(0), SimTime::millis(1));
  EXPECT_EQ(f.metrics.queries_issued, 1u);
  EXPECT_EQ(f.metrics.queries_shed, 1u);
  EXPECT_EQ(f.metrics.queries_failed, 0u);
  EXPECT_TRUE(f.last_record(0).shed);
  EXPECT_FALSE(f.last_record(0).success);
  f.sim.run_until(SimTime::seconds(5));
  // No object traffic was spent on the doomed query.
  EXPECT_EQ(f.metrics.object_requests, 0u);
  EXPECT_EQ(f.metrics.queries_shed, 1u);
  EXPECT_EQ(f.metrics.queries_failed, 0u);
}

TEST(Overload, WithoutShedKnobSameQueryFailsAtDeadline) {
  Fixture f;  // shed_infeasible off (default)
  f.athena[0]->query_init(single_label(0), SimTime::millis(1));
  f.sim.run_until(SimTime::seconds(5));
  EXPECT_EQ(f.metrics.queries_shed, 0u);
  EXPECT_EQ(f.metrics.queries_failed, 1u);
  EXPECT_FALSE(f.last_record(0).shed);
}

TEST(Overload, LocallyHostedEvidenceIsNeverShed) {
  auto cfg = config_for(Scheme::kLvfl);
  cfg.shed_infeasible = true;
  Fixture f(cfg);
  // Label 2's sensor is hosted at the querying node: always feasible, and
  // in fact resolved synchronously from the local sample.
  f.athena[0]->query_init(single_label(2), SimTime::millis(1));
  EXPECT_EQ(f.metrics.queries_shed, 0u);
  EXPECT_EQ(f.metrics.queries_resolved, 1u);
  EXPECT_TRUE(f.last_record(0).success);
}

TEST(Overload, AdmissionRejectsOnlyLowPriorityBeyondCap) {
  auto cfg = config_for(Scheme::kLvfl);
  cfg.admission_max_active = 2;
  Fixture f(cfg);
  // Two remote low-priority queries fill the admission budget...
  f.athena[0]->query_init(single_label(0), SimTime::seconds(30));
  f.athena[0]->query_init(single_label(3), SimTime::seconds(30));
  EXPECT_EQ(f.athena[0]->active_queries(), 2u);
  // ...the third low-priority query bounces at issue...
  f.athena[0]->query_init(single_label(0), SimTime::seconds(30));
  EXPECT_EQ(f.metrics.queries_rejected, 1u);
  EXPECT_TRUE(f.last_record(0).shed);
  EXPECT_EQ(f.athena[0]->active_queries(), 2u);
  // ...but a critical query is admitted above the cap.
  f.athena[0]->query_init(single_label(0), SimTime::seconds(30),
                          /*priority=*/1);
  EXPECT_EQ(f.metrics.queries_rejected, 1u);
  EXPECT_FALSE(f.last_record(0).shed);
  EXPECT_EQ(f.athena[0]->active_queries(), 3u);
  EXPECT_EQ(f.metrics.queries_issued, 4u);
  f.sim.run_until(SimTime::seconds(40));
  // Rejected queries never join the resolved/failed tallies.
  EXPECT_EQ(f.metrics.queries_resolved + f.metrics.queries_failed +
                f.metrics.queries_rejected,
            4u);
}

TEST(Overload, PrefetchThrottleEngagesAndRecovers) {
  auto cfg = config_for(Scheme::kLvfl);
  ASSERT_TRUE(cfg.prefetch);
  cfg.prefetch_watermark = 1;
  cfg.prefetch_throttle_interval = SimTime::millis(100);
  Fixture f(cfg);
  // Jam C→B with 3 s of opaque traffic: C's prefetch push toward the
  // origin sees a queue above the watermark and defers. The query comes
  // from B — announces travel announce_ttl=1 hop, so the hosting node C
  // only hears (and pushes for) queries of a direct neighbor.
  f.jam(2, 1, 3);
  f.athena[1]->query_init(single_label(0), SimTime::seconds(20));
  f.sim.run_until(SimTime::seconds(30));
  EXPECT_GE(f.metrics.prefetch_throttled, 1u);
  // Once the jam drained, the deferred push went out after all — the
  // throttle delays background work, it never cancels it.
  EXPECT_GT(f.metrics.prefetch_pushes, 0u);
  EXPECT_EQ(f.metrics.queries_resolved, 1u);
}

TEST(Overload, UnthrottledPrefetchPushesImmediately) {
  auto cfg = config_for(Scheme::kLvfl);
  ASSERT_TRUE(cfg.prefetch);
  cfg.prefetch_watermark = 1;
  cfg.prefetch_throttle_interval = SimTime::millis(100);
  Fixture f(cfg);
  // Same query with idle links: the watermark never trips.
  f.athena[1]->query_init(single_label(0), SimTime::seconds(20));
  f.sim.run_until(SimTime::seconds(30));
  EXPECT_EQ(f.metrics.prefetch_throttled, 0u);
  EXPECT_GT(f.metrics.push_bytes, 0u);
}

TEST(Overload, GcDrainsInterestForwardingAndDedupState) {
  auto cfg = config_for(Scheme::kLvfl);
  cfg.state_gc_interval = SimTime::seconds(1);
  cfg.dedup_ttl = SimTime::seconds(2);
  Fixture f(cfg);
  f.athena[0]->query_init(single_label(0), SimTime::seconds(2));
  f.athena[0]->broadcast_invalidation({LabelId{0}});
  // Protocol state exists while the flood and fetch are live.
  f.sim.run_until(SimTime::millis(50));
  std::size_t held = 0;
  for (const auto& node : f.athena) held += node->dedup_entries();
  EXPECT_GT(held, 0u);
  // Well past every deadline and TTL, the background sweep has returned
  // the node to an empty steady state — nothing grows without bound.
  f.sim.run_until(SimTime::seconds(30));
  for (const auto& node : f.athena) {
    EXPECT_EQ(node->interest_entries(), 0u);
    EXPECT_EQ(node->forwarded_entries(), 0u);
    EXPECT_EQ(node->dedup_entries(), 0u);
  }
}

// The guarantee the whole PR rests on: with every overload knob at its
// default, runs are bit-for-bit the seed behaviour; and with the knobs
// *enabled* but set permissively enough never to bind, they still are.
TEST(Overload, PermissiveKnobsReproduceDefaultRunBitForBit) {
  scenario::ScenarioConfig base;
  base.queries_per_node = 2;
  base.horizon = SimTime::seconds(120);
  base.seed = 7;

  auto run = [&](bool knobs) {
    scenario::ScenarioConfig cfg = base;
    if (knobs) {
      cfg.link_queue_max_packets = 1'000'000;
      cfg.link_queue_max_bytes = std::uint64_t{1} << 40;
      auto ac = config_for(cfg.scheme);
      ac.shed_infeasible = true;  // 240 s deadlines are always feasible
      ac.admission_max_active = 1'000'000;
      ac.prefetch_watermark = 1'000'000;
      cfg.config_override = ac;
    }
    return scenario::run_route_scenario(cfg);
  };

  const auto a = run(false);
  const auto b = run(true);
  EXPECT_EQ(a.events, b.events);
  EXPECT_EQ(a.traffic.packets, b.traffic.packets);
  EXPECT_EQ(a.traffic.bytes, b.traffic.bytes);
  EXPECT_EQ(a.traffic.queue_drops, 0u);
  EXPECT_EQ(b.traffic.queue_drops, 0u);
  EXPECT_EQ(a.metrics.queries_resolved, b.metrics.queries_resolved);
  EXPECT_EQ(a.metrics.queries_failed, b.metrics.queries_failed);
  EXPECT_EQ(b.metrics.queries_shed, 0u);
  EXPECT_EQ(b.metrics.queries_rejected, 0u);
  EXPECT_EQ(b.metrics.prefetch_throttled, 0u);
  EXPECT_EQ(a.metrics.total_bytes(), b.metrics.total_bytes());
  EXPECT_EQ(a.metrics.object_bytes, b.metrics.object_bytes);
  EXPECT_EQ(a.metrics.push_bytes, b.metrics.push_bytes);
  EXPECT_EQ(a.metrics.label_bytes, b.metrics.label_bytes);
  EXPECT_EQ(a.metrics.total_resolution_latency_s,
            b.metrics.total_resolution_latency_s);
  ASSERT_EQ(a.outcomes.size(), b.outcomes.size());
  for (std::size_t i = 0; i < a.outcomes.size(); ++i) {
    EXPECT_EQ(a.outcomes[i].success, b.outcomes[i].success);
    EXPECT_EQ(a.outcomes[i].latency_s, b.outcomes[i].latency_s);
  }
}

}  // namespace
}  // namespace dde::athena
