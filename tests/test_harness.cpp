#include "harness/parallel_runner.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "bench_util.h"
#include "scenario/route_scenario.h"

namespace dde::harness {
namespace {

/// Scoped DDE_BENCH_JOBS override; restores the previous value on exit.
class ScopedEnvJobs {
 public:
  explicit ScopedEnvJobs(const char* value) {
    const char* old = std::getenv("DDE_BENCH_JOBS");
    if (old != nullptr) saved_ = old;
    had_ = old != nullptr;
    if (value == nullptr) {
      ::unsetenv("DDE_BENCH_JOBS");
    } else {
      ::setenv("DDE_BENCH_JOBS", value, 1);
    }
  }
  ~ScopedEnvJobs() {
    if (had_) {
      ::setenv("DDE_BENCH_JOBS", saved_.c_str(), 1);
    } else {
      ::unsetenv("DDE_BENCH_JOBS");
    }
  }

 private:
  std::string saved_;
  bool had_ = false;
};

TEST(JobCount, ExplicitRequestWinsOverEnv) {
  const ScopedEnvJobs env("7");
  EXPECT_EQ(job_count(3), 3u);
  EXPECT_EQ(job_count(1), 1u);
}

TEST(JobCount, EnvVariableParsed) {
  const ScopedEnvJobs env("4");
  EXPECT_EQ(env_jobs(), 4u);
  EXPECT_EQ(job_count(), 4u);
}

TEST(JobCount, InvalidEnvFallsBackToHardware) {
  for (const char* bad : {"abc", "0", "-3", "", "2x"}) {
    const ScopedEnvJobs env(bad);
    EXPECT_EQ(env_jobs(), 0u) << "DDE_BENCH_JOBS=" << bad;
    EXPECT_EQ(job_count(), hardware_jobs());
  }
}

TEST(JobCount, UnsetEnvFallsBackToHardware) {
  const ScopedEnvJobs env(nullptr);
  EXPECT_EQ(env_jobs(), 0u);
  EXPECT_EQ(job_count(), hardware_jobs());
  EXPECT_GE(job_count(), 1u);
}

TEST(RunIndexed, ReturnsResultsInIndexOrder) {
  const auto out = run_indexed(
      100, [](std::size_t i) { return i * i; }, 4);
  ASSERT_EQ(out.size(), 100u);
  for (std::size_t i = 0; i < out.size(); ++i) EXPECT_EQ(out[i], i * i);
}

TEST(RunIndexed, SerialAndParallelAgree) {
  auto fn = [](std::size_t i) { return 3 * i + 1; };
  EXPECT_EQ(run_indexed(37, fn, 1), run_indexed(37, fn, 4));
}

TEST(RunIndexed, HandlesZeroAndOneTask) {
  auto fn = [](std::size_t i) { return i; };
  EXPECT_TRUE(run_indexed(0, fn, 4).empty());
  const auto one = run_indexed(1, fn, 4);
  ASSERT_EQ(one.size(), 1u);
  EXPECT_EQ(one[0], 0u);
}

TEST(RunIndexed, MoveOnlyResults) {
  const auto out = run_indexed(
      8, [](std::size_t i) { return std::make_unique<std::size_t>(i); }, 4);
  ASSERT_EQ(out.size(), 8u);
  for (std::size_t i = 0; i < out.size(); ++i) EXPECT_EQ(*out[i], i);
}

TEST(RunIndexed, PropagatesExceptionFromWorker) {
  auto boom = [](std::size_t i) -> int {
    if (i == 5) throw std::runtime_error("task 5 failed");
    return static_cast<int>(i);
  };
  EXPECT_THROW((void)run_indexed(16, boom, 4), std::runtime_error);
  EXPECT_THROW((void)run_indexed(16, boom, 1), std::runtime_error);
}

TEST(ThreadPool, RunsEverySubmittedTask) {
  std::atomic<int> done{0};
  ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 4u);
  for (int i = 0; i < 100; ++i) {
    pool.submit([&done] { done.fetch_add(1); });
  }
  pool.wait_idle();
  EXPECT_EQ(done.load(), 100);
}

TEST(ThreadPool, WaitIdleIsReusable) {
  std::atomic<int> done{0};
  ThreadPool pool(2);
  pool.submit([&done] { done.fetch_add(1); });
  pool.wait_idle();
  EXPECT_EQ(done.load(), 1);
  pool.submit([&done] { done.fetch_add(1); });
  pool.wait_idle();
  EXPECT_EQ(done.load(), 2);
}

TEST(ThreadPool, DestructorDrainsQueue) {
  std::atomic<int> done{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 50; ++i) {
      pool.submit([&done] { done.fetch_add(1); });
    }
  }
  EXPECT_EQ(done.load(), 50);
}

/// A quick scenario configuration: small grid, few nodes, short horizon.
scenario::ScenarioConfig small_config() {
  scenario::ScenarioConfig cfg;
  cfg.grid_width = 5;
  cfg.grid_height = 5;
  cfg.node_count = 10;
  cfg.queries_per_node = 1;
  cfg.horizon = SimTime::seconds(120);
  return cfg;
}

void expect_stats_identical(const RunningStats& a, const RunningStats& b) {
  EXPECT_EQ(a.count(), b.count());
  EXPECT_EQ(a.mean(), b.mean());
  EXPECT_EQ(a.variance(), b.variance());
  EXPECT_EQ(a.sum(), b.sum());
  EXPECT_EQ(a.min(), b.min());
  EXPECT_EQ(a.max(), b.max());
}

void expect_histograms_identical(const obs::Histogram& a,
                                 const obs::Histogram& b) {
  EXPECT_EQ(a.counts(), b.counts());
  EXPECT_EQ(a.count(), b.count());
  EXPECT_EQ(a.sum(), b.sum());
}

// The determinism contract of the whole harness: every aggregate the bench
// binaries publish is bit-identical at any worker count, because folding
// happens on the calling thread in seed order.
TEST(Determinism, RunCellBitIdenticalAcrossJobCounts) {
  const auto cfg = small_config();
  bench::Cell serial;
  {
    const ScopedEnvJobs env("1");
    serial = bench::run_cell(cfg, 4);
  }
  bench::Cell parallel;
  {
    const ScopedEnvJobs env("4");
    parallel = bench::run_cell(cfg, 4);
  }
  expect_stats_identical(serial.ratio, parallel.ratio);
  expect_stats_identical(serial.megabytes, parallel.megabytes);
  expect_stats_identical(serial.latency_s, parallel.latency_s);
  expect_stats_identical(serial.object_mb, parallel.object_mb);
  expect_stats_identical(serial.push_mb, parallel.push_mb);
  expect_stats_identical(serial.label_mb, parallel.label_mb);
  expect_stats_identical(serial.refetches, parallel.refetches);
  expect_stats_identical(serial.stale, parallel.stale);
  expect_histograms_identical(serial.telem.age_upon_decision_s,
                              parallel.telem.age_upon_decision_s);
  expect_histograms_identical(serial.telem.slack_at_decision_s,
                              parallel.telem.slack_at_decision_s);
  expect_histograms_identical(serial.telem.bytes_per_decision,
                              parallel.telem.bytes_per_decision);
}

// Repeated parallel runs are also stable against each other (no dependence
// on scheduling order).
TEST(Determinism, RepeatedParallelRunsIdentical) {
  const auto cfg = small_config();
  const ScopedEnvJobs env("3");
  const auto a = bench::run_cell(cfg, 3);
  const auto b = bench::run_cell(cfg, 3);
  expect_stats_identical(a.ratio, b.ratio);
  expect_stats_identical(a.megabytes, b.megabytes);
  expect_histograms_identical(a.telem.bytes_per_decision,
                              b.telem.bytes_per_decision);
}

}  // namespace
}  // namespace dde::harness
