#include "pubsub/utility.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/rng.h"

namespace dde::pubsub {
namespace {

using naming::Name;

Item item(std::string_view path, std::uint64_t bytes, double utility,
          bool critical = false) {
  return Item{Name::parse(path), bytes, utility, critical};
}

TEST(MarginalUtility, FullWhenNothingDelivered) {
  const Item a = item("/a/b", 100, 2.0);
  EXPECT_DOUBLE_EQ(marginal_utility(a, {}), 2.0);
}

TEST(MarginalUtility, ZeroForExactDuplicate) {
  const Item a = item("/a/b", 100, 2.0);
  const std::vector<Name> delivered{Name::parse("/a/b")};
  EXPECT_DOUBLE_EQ(marginal_utility(a, delivered), 0.0);
}

TEST(MarginalUtility, DiscountGrowsWithSharedPrefix) {
  const Item a = item("/x/y/z", 100, 1.0);
  const std::vector<Name> far{Name::parse("/q/r/s")};
  const std::vector<Name> mid{Name::parse("/x/r/s")};
  const std::vector<Name> near{Name::parse("/x/y/s")};
  EXPECT_GT(marginal_utility(a, far), marginal_utility(a, mid));
  EXPECT_GT(marginal_utility(a, mid), marginal_utility(a, near));
  EXPECT_GT(marginal_utility(a, near), 0.0);
}

TEST(MarginalUtility, UsesMaxSimilarity) {
  const Item a = item("/x/y/z", 100, 1.0);
  const std::vector<Name> mixed{Name::parse("/q/q/q"), Name::parse("/x/y/w")};
  // The near twin dominates: discount 2/3.
  EXPECT_NEAR(marginal_utility(a, mixed), 1.0 / 3.0, 1e-12);
}

TEST(MarginalUtility, CriticalIgnoresRedundancy) {
  const Item a = item("/a/b", 100, 2.0, /*critical=*/true);
  const std::vector<Name> delivered{Name::parse("/a/b")};
  EXPECT_DOUBLE_EQ(marginal_utility(a, delivered), 2.0);
}

TEST(DeliveredUtility, SubAdditive) {
  // The paper's bridge example: 10 identical pictures ≠ 10× information.
  std::vector<Item> bridge;
  for (int i = 0; i < 10; ++i) bridge.push_back(item("/city/bridge/pic", 1, 1.0));
  EXPECT_DOUBLE_EQ(delivered_utility(bridge), 1.0);

  std::vector<Item> diverse;
  for (int i = 0; i < 10; ++i) {
    diverse.push_back(item("/site" + std::to_string(i) + "/pic", 1, 1.0));
  }
  EXPECT_DOUBLE_EQ(delivered_utility(diverse), 10.0);
}

TEST(DeliveredUtility, OrderMatters) {
  const std::vector<Item> ab{item("/a/x", 1, 5.0), item("/a/y", 1, 1.0)};
  // /a/x then /a/y: 5 + 1·(1−1/2) = 5.5; same both ways here, so use
  // different base utilities against a shared prefix:
  const std::vector<Item> ba{item("/a/y", 1, 1.0), item("/a/x", 1, 5.0)};
  EXPECT_DOUBLE_EQ(delivered_utility(ab), 5.0 + 0.5);
  EXPECT_DOUBLE_EQ(delivered_utility(ba), 1.0 + 2.5);
}

TEST(Triage, FifoTakesPrefixThatFits) {
  const std::vector<Item> items{item("/a", 60, 1.0), item("/b", 60, 9.0),
                                item("/c", 30, 5.0)};
  const auto sel = fifo_triage(items, 100);
  ASSERT_EQ(sel.order.size(), 2u);
  EXPECT_EQ(sel.order[0], 0u);
  EXPECT_EQ(sel.order[1], 2u);  // /b does not fit after /a
  EXPECT_EQ(sel.bytes, 90u);
}

TEST(Triage, PrioritySortsByBaseUtility) {
  const std::vector<Item> items{item("/a", 50, 1.0), item("/b", 50, 9.0),
                                item("/c", 50, 5.0)};
  const auto sel = priority_triage(items, 100);
  ASSERT_EQ(sel.order.size(), 2u);
  EXPECT_EQ(sel.order[0], 1u);
  EXPECT_EQ(sel.order[1], 2u);
}

TEST(Triage, InfomaxSkipsRedundant) {
  // Two near-duplicates and one distinct item; budget fits two.
  const std::vector<Item> items{item("/cam/1/noon", 50, 1.0),
                                item("/cam/1/noon2", 50, 1.0),
                                item("/other/site", 50, 0.8)};
  const auto sel = infomax_triage(items, 100);
  ASSERT_EQ(sel.order.size(), 2u);
  // It should take one of the twins and the distinct item, not both twins.
  EXPECT_EQ(sel.order[0], 0u);
  EXPECT_EQ(sel.order[1], 2u);
}

TEST(Triage, InfomaxRespectsBudget) {
  const std::vector<Item> items{item("/a", 70, 1.0), item("/b", 70, 1.0)};
  const auto sel = infomax_triage(items, 100);
  EXPECT_EQ(sel.order.size(), 1u);
  EXPECT_LE(sel.bytes, 100u);
}

TEST(Triage, CriticalGoesFirstEvenIfRedundant) {
  const std::vector<Item> items{
      item("/x/data", 50, 10.0),
      item("/x/data", 50, 0.1, /*critical=*/true),
  };
  const auto sel = infomax_triage(items, 50);
  ASSERT_EQ(sel.order.size(), 1u);
  EXPECT_EQ(sel.order[0], 1u) << "critical item wins the bottleneck";
}

TEST(Triage, PriorityTreatsCriticalFirst) {
  const std::vector<Item> items{
      item("/a", 50, 10.0),
      item("/b", 50, 0.1, /*critical=*/true),
  };
  const auto sel = priority_triage(items, 50);
  ASSERT_EQ(sel.order.size(), 1u);
  EXPECT_EQ(sel.order[0], 1u);
}

TEST(Triage, EmptyInput) {
  for (const auto& sel :
       {infomax_triage({}, 100), fifo_triage({}, 100), priority_triage({}, 100)}) {
    EXPECT_TRUE(sel.order.empty());
    EXPECT_EQ(sel.bytes, 0u);
    EXPECT_DOUBLE_EQ(sel.utility, 0.0);
  }
}

TEST(Triage, ZeroBudgetSelectsNothing) {
  const std::vector<Item> items{item("/a", 1, 1.0)};
  EXPECT_TRUE(infomax_triage(items, 0).order.empty());
}

TEST(Triage, SelectionUtilityMatchesReplay) {
  Rng rng(8);
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<Item> items;
    for (int i = 0; i < 12; ++i) {
      items.push_back(item("/g" + std::to_string(rng.below(3)) + "/i" +
                               std::to_string(i),
                           10 + rng.below(50), rng.uniform(0.1, 3.0)));
    }
    const auto sel = infomax_triage(items, 200);
    // Replaying the selection in order must give the same utility.
    std::vector<Item> replay;
    for (std::size_t i : sel.order) replay.push_back(items[i]);
    EXPECT_NEAR(delivered_utility(replay), sel.utility, 1e-9);
  }
}

// Property: infomax never delivers less utility than FIFO or priority on
// random overloaded workloads (greedy submodular maximization dominance is
// not guaranteed in theory for arbitrary knapsacks, but holds overwhelmingly
// here; we assert aggregate dominance).
TEST(Triage, InfomaxDominatesBaselinesInAggregate) {
  Rng rng(123);
  double infomax_sum = 0;
  double fifo_sum = 0;
  double prio_sum = 0;
  for (int trial = 0; trial < 100; ++trial) {
    std::vector<Item> items;
    for (int i = 0; i < 20; ++i) {
      // Clustered names: heavy redundancy within clusters.
      const auto cluster = std::to_string(rng.below(4));
      items.push_back(item("/region" + cluster + "/sensor" + std::to_string(i),
                           20 + rng.below(80), rng.uniform(0.1, 2.0)));
    }
    const std::uint64_t budget = 300;  // heavy overload
    infomax_sum += infomax_triage(items, budget).utility;
    fifo_sum += fifo_triage(items, budget).utility;
    prio_sum += priority_triage(items, budget).utility;
  }
  EXPECT_GT(infomax_sum, fifo_sum * 1.2);
  EXPECT_GT(infomax_sum, prio_sum * 1.05);
}

}  // namespace
}  // namespace dde::pubsub
