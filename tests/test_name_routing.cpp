#include "net/name_routing.h"

#include <gtest/gtest.h>

#include <vector>

#include "common/rng.h"

namespace dde::net {
namespace {

using naming::Name;

/// Line topology 0 - 1 - 2 - 3 with routes computed.
Topology line(std::size_t n) {
  Topology t;
  std::vector<NodeId> nodes;
  for (std::size_t i = 0; i < n; ++i) nodes.push_back(t.add_node());
  for (std::size_t i = 0; i + 1 < n; ++i) t.add_link(nodes[i], nodes[i + 1]);
  t.compute_routes();
  return t;
}

TEST(NameRouting, RoutesTowardAdvertisingHost) {
  const Topology topo = line(4);
  const auto fibs = build_fibs(
      topo, {{Name::parse("/city/market"), NodeId{3}}});
  const auto path =
      route_by_name(fibs, topo, NodeId{0}, Name::parse("/city/market/cam1"));
  ASSERT_TRUE(path.has_value());
  EXPECT_EQ(*path, (std::vector<NodeId>{NodeId{0}, NodeId{1}, NodeId{2},
                                        NodeId{3}}));
}

TEST(NameRouting, LocalDeliveryAtHost) {
  const Topology topo = line(3);
  const auto fibs = build_fibs(topo, {{Name::parse("/a"), NodeId{1}}});
  const auto path = route_by_name(fibs, topo, NodeId{1}, Name::parse("/a/x"));
  ASSERT_TRUE(path.has_value());
  EXPECT_EQ(path->size(), 1u);
  EXPECT_EQ(path->front(), NodeId{1});
}

TEST(NameRouting, UnroutableNameFails) {
  const Topology topo = line(3);
  const auto fibs = build_fibs(topo, {{Name::parse("/a"), NodeId{2}}});
  EXPECT_FALSE(
      route_by_name(fibs, topo, NodeId{0}, Name::parse("/zzz")).has_value());
}

TEST(NameRouting, LongestPrefixWins) {
  // /city is served at node 0, the more specific /city/market at node 3.
  const Topology topo = line(4);
  const auto fibs = build_fibs(topo, {{Name::parse("/city"), NodeId{0}},
                                      {Name::parse("/city/market"), NodeId{3}}});
  const auto path = route_by_name(fibs, topo, NodeId{1},
                                  Name::parse("/city/market/cam1"));
  ASSERT_TRUE(path.has_value());
  EXPECT_EQ(path->back(), NodeId{3});
  const auto generic =
      route_by_name(fibs, topo, NodeId{1}, Name::parse("/city/park"));
  ASSERT_TRUE(generic.has_value());
  EXPECT_EQ(generic->back(), NodeId{0});
}

TEST(NameRouting, NearestOfMultipleHostsWins) {
  const Topology topo = line(5);
  const auto fibs = build_fibs(topo, {{Name::parse("/a"), NodeId{0}},
                                      {Name::parse("/a"), NodeId{4}}});
  const auto from1 = route_by_name(fibs, topo, NodeId{1}, Name::parse("/a/x"));
  ASSERT_TRUE(from1.has_value());
  EXPECT_EQ(from1->back(), NodeId{0});
  const auto from3 = route_by_name(fibs, topo, NodeId{3}, Name::parse("/a/x"));
  ASSERT_TRUE(from3.has_value());
  EXPECT_EQ(from3->back(), NodeId{4});
}

TEST(NameRouting, PrefixAggregationShrinksFibs) {
  const Topology topo = line(4);
  // Ten specific names vs one aggregated prefix, same host.
  std::vector<Advertisement> specific;
  for (int i = 0; i < 10; ++i) {
    specific.push_back(
        {Name::parse("/city/market/cam" + std::to_string(i)), NodeId{3}});
  }
  const auto fibs_specific = build_fibs(topo, specific);
  const auto fibs_aggregated =
      build_fibs(topo, {{Name::parse("/city/market"), NodeId{3}}});
  EXPECT_EQ(fibs_specific[0].size(), 10u);
  EXPECT_EQ(fibs_aggregated[0].size(), 1u);
  // Both route the same interests.
  for (int i = 0; i < 10; ++i) {
    const auto name = Name::parse("/city/market/cam" + std::to_string(i));
    EXPECT_EQ(route_by_name(fibs_specific, topo, NodeId{0}, name)->back(),
              NodeId{3});
    EXPECT_EQ(route_by_name(fibs_aggregated, topo, NodeId{0}, name)->back(),
              NodeId{3});
  }
}

TEST(NameRouting, ApproximateForwarding) {
  const Topology topo = line(3);
  const auto fibs = build_fibs(
      topo, {{Name::parse("/city/market/cam2"), NodeId{2}}});
  // cam1 is not advertised; with approximate matching, an interest for it
  // is steered toward the sibling cam2.
  const auto approx = fibs[0].approximate_next_hop(
      Name::parse("/city/market/cam1"), /*min_shared=*/2);
  ASSERT_TRUE(approx.has_value());
  EXPECT_EQ(approx->first, Name::parse("/city/market/cam2"));
  EXPECT_EQ(approx->second, NodeId{1});
  // But a completely foreign name is refused at min_shared=1.
  EXPECT_FALSE(fibs[0]
                   .approximate_next_hop(Name::parse("/county/dam"), 1)
                   .has_value());
}

TEST(NameRouting, ApproximateExactPassThrough) {
  const Topology topo = line(2);
  const auto fibs = build_fibs(topo, {{Name::parse("/a/b"), NodeId{1}}});
  const auto hit = fibs[0].approximate_next_hop(Name::parse("/a/b/c"), 1);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->first, Name::parse("/a/b/c"));  // exact LPM path
}

TEST(NameRouting, UnreachableHostProducesNoRoute) {
  Topology topo;
  topo.add_node();
  topo.add_node();  // disconnected
  topo.compute_routes();
  const auto fibs = build_fibs(topo, {{Name::parse("/a"), NodeId{1}}});
  EXPECT_EQ(fibs[0].size(), 0u);
  EXPECT_EQ(fibs[1].size(), 1u);  // the host itself
}

// Property: on random connected topologies, name routing always reaches an
// advertising host with stretch 1 (it follows shortest-path next hops).
TEST(NameRouting, StretchOneOnRandomTopologies) {
  Rng rng(33);
  for (int trial = 0; trial < 40; ++trial) {
    Topology topo;
    const std::size_t n = 5 + rng.below(10);
    std::vector<NodeId> nodes;
    for (std::size_t i = 0; i < n; ++i) nodes.push_back(topo.add_node());
    // Random spanning tree + extra links.
    for (std::size_t i = 1; i < n; ++i) {
      topo.add_link(nodes[i], nodes[rng.below(i)]);
    }
    for (std::size_t e = 0; e < n / 2; ++e) {
      const auto a = rng.below(n);
      const auto b = rng.below(n);
      if (a != b && !topo.link_between(nodes[a], nodes[b])) {
        topo.add_link(nodes[a], nodes[b]);
      }
    }
    topo.compute_routes();

    std::vector<Advertisement> ads;
    const std::size_t n_prefixes = 1 + rng.below(5);
    for (std::size_t p = 0; p < n_prefixes; ++p) {
      ads.push_back({Name::parse("/p" + std::to_string(p)),
                     nodes[rng.below(n)]});
    }
    const auto fibs = build_fibs(topo, ads);
    for (const auto& ad : ads) {
      for (std::size_t from = 0; from < n; ++from) {
        const auto path = route_by_name(fibs, topo, nodes[from],
                                        ad.prefix.child("leaf"));
        ASSERT_TRUE(path.has_value());
        // Stretch 1: path length equals the hop distance to the nearest
        // host of this prefix.
        std::size_t nearest = topo.node_count() + 1;
        for (const auto& other : ads) {
          if (other.prefix != ad.prefix) continue;
          const auto h = topo.hop_distance(nodes[from], other.host);
          if (h) nearest = std::min(nearest, *h);
        }
        EXPECT_EQ(path->size() - 1, nearest);
      }
    }
  }
}

}  // namespace
}  // namespace dde::net
