#include "world/scalar.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/stats.h"

namespace dde::world {
namespace {

ScalarDynamics dyn(double mean, double reversion, double sigma,
                   double initial) {
  return ScalarDynamics{mean, reversion, sigma, initial};
}

TEST(Rng, NormalMomentsAreStandard) {
  Rng rng(1);
  RunningStats s;
  for (int i = 0; i < 200000; ++i) s.add(rng.normal());
  EXPECT_NEAR(s.mean(), 0.0, 0.01);
  EXPECT_NEAR(s.stddev(), 1.0, 0.01);
}

TEST(Rng, NormalScaled) {
  Rng rng(2);
  RunningStats s;
  for (int i = 0; i < 100000; ++i) s.add(rng.normal(5.0, 2.0));
  EXPECT_NEAR(s.mean(), 5.0, 0.05);
  EXPECT_NEAR(s.stddev(), 2.0, 0.05);
}

TEST(ScalarProcess, StartsAtInitial) {
  ScalarProcess p({dyn(10, 0.1, 1, 3.5)}, Rng(1));
  EXPECT_DOUBLE_EQ(p.value_at(0, SimTime::zero()), 3.5);
}

TEST(ScalarProcess, ConsistentQueries) {
  ScalarProcess p({dyn(0, 0.05, 2, 0)}, Rng(2));
  const double late = p.value_at(0, SimTime::seconds(500));
  const double mid = p.value_at(0, SimTime::seconds(250));
  EXPECT_DOUBLE_EQ(p.value_at(0, SimTime::seconds(500)), late);
  EXPECT_DOUBLE_EQ(p.value_at(0, SimTime::seconds(250)), mid);
}

TEST(ScalarProcess, RevertsTowardMean) {
  // Strong reversion, low noise: far-from-mean start converges.
  ScalarProcess p({dyn(100, 0.5, 0.1, 0)}, Rng(3));
  EXPECT_LT(std::abs(p.value_at(0, SimTime::seconds(60)) - 100), 5.0);
}

TEST(ScalarProcess, StationaryVarianceMatchesTheory) {
  // OU stationary stddev = sigma / sqrt(2*theta).
  const double theta = 0.2;
  const double sigma = 1.5;
  ScalarProcess p({dyn(0, theta, sigma, 0)}, Rng(4));
  RunningStats s;
  for (int t = 200; t < 4000; t += 7) {
    s.add(p.value_at(0, SimTime::seconds(t)));
  }
  EXPECT_NEAR(s.mean(), 0.0, 0.5);
  EXPECT_NEAR(s.stddev(), sigma / std::sqrt(2 * theta), 0.5);
}

TEST(ScalarProcess, SitesAreIndependent) {
  ScalarProcess p({dyn(0, 0.1, 1, 0), dyn(0, 0.1, 1, 0)}, Rng(5));
  int same = 0;
  for (int t = 1; t <= 50; ++t) {
    if (p.value_at(0, SimTime::seconds(t)) ==
        p.value_at(1, SimTime::seconds(t))) {
      ++same;
    }
  }
  EXPECT_EQ(same, 0);
}

TEST(ScalarProcess, ThrowsOnUnknownSite) {
  ScalarProcess p({dyn(0, 0.1, 1, 0)}, Rng(6));
  EXPECT_THROW((void)p.value_at(3, SimTime::zero()), std::out_of_range);
  EXPECT_THROW((void)p.params(3), std::out_of_range);
}

TEST(ThresholdPredicate, AboveAndBelow) {
  const ThresholdPredicate above{5.0, true};
  EXPECT_TRUE(above.evaluate(5.0));
  EXPECT_TRUE(above.evaluate(9.0));
  EXPECT_FALSE(above.evaluate(4.9));
  // The paper's Dim example: lights on when the optical reading drops
  // below a threshold.
  const ThresholdPredicate dim{5.0, false};
  EXPECT_TRUE(dim.evaluate(4.9));
  EXPECT_FALSE(dim.evaluate(5.0));
}

TEST(EstimateValidity, FarFromThresholdLastsLonger) {
  ScalarProcess p({dyn(0, 0.05, 0.5, 0.0),    // near threshold 1
                   dyn(0, 0.05, 0.5, 0.0)},   // same dynamics
                  Rng(7));
  const auto near_v = estimate_validity(p, 0, SimTime::zero(),
                                        ThresholdPredicate{0.5, true}, 0.9,
                                        200, Rng(8), SimTime::seconds(600));
  const auto far_v = estimate_validity(p, 1, SimTime::zero(),
                                       ThresholdPredicate{5.0, true}, 0.9,
                                       200, Rng(8), SimTime::seconds(600));
  EXPECT_GT(far_v, near_v);
}

TEST(EstimateValidity, HigherConfidenceShortensValidity) {
  ScalarProcess p({dyn(0, 0.05, 1.0, 0.0)}, Rng(9));
  const ThresholdPredicate pred{2.0, true};
  const auto lax = estimate_validity(p, 0, SimTime::zero(), pred, 0.6, 200,
                                     Rng(10), SimTime::seconds(600));
  const auto strict = estimate_validity(p, 0, SimTime::zero(), pred, 0.95,
                                        200, Rng(10), SimTime::seconds(600));
  EXPECT_LE(strict, lax);
}

TEST(EstimateValidity, CapAtMaxHorizon) {
  // Essentially frozen process: never crosses, so the cap binds.
  ScalarProcess p({dyn(0, 0.5, 1e-6, 0.0)}, Rng(11));
  const auto v = estimate_validity(p, 0, SimTime::zero(),
                                   ThresholdPredicate{10.0, true}, 0.9, 50,
                                   Rng(12), SimTime::seconds(120));
  EXPECT_EQ(v, SimTime::seconds(120));
}

TEST(EstimateValidity, PredictsEmpiricalStability) {
  // The label should actually stay unchanged for roughly the suggested
  // interval with the requested confidence, across fresh worlds.
  const ScalarDynamics d = dyn(0, 0.1, 0.8, 0.0);
  const ThresholdPredicate pred{2.0, true};
  int held = 0;
  const int worlds = 200;
  // One shared estimate (dynamics are homogeneous across worlds).
  ScalarProcess probe({d}, Rng(100));
  const auto validity =
      estimate_validity(probe, 0, SimTime::zero(), pred, 0.9, 400, Rng(101),
                        SimTime::seconds(600));
  ASSERT_GT(validity, SimTime::zero());
  for (int w = 0; w < worlds; ++w) {
    ScalarProcess world({d}, Rng(static_cast<std::uint64_t>(200 + w)));
    const bool initial = pred.evaluate(world.value_at(0, SimTime::zero()));
    bool stable = true;
    for (SimTime t = SimTime::seconds(1); t <= validity;
         t += SimTime::seconds(1)) {
      if (pred.evaluate(world.value_at(0, t)) != initial) {
        stable = false;
        break;
      }
    }
    held += stable ? 1 : 0;
  }
  // Allow slack: the estimator is Monte-Carlo and the label definition is
  // symmetric; we demand the right ballpark, not exactness.
  EXPECT_GE(static_cast<double>(held) / worlds, 0.8);
}

}  // namespace
}  // namespace dde::world
