#include "scenario/route_scenario.h"
#include "scenario/trigger_scenario.h"

#include <gtest/gtest.h>

namespace dde::scenario {
namespace {

ScenarioConfig small_config(athena::Scheme scheme, std::uint64_t seed = 7) {
  ScenarioConfig cfg;
  cfg.grid_width = 6;
  cfg.grid_height = 6;
  cfg.node_count = 16;
  cfg.queries_per_node = 2;
  cfg.scheme = scheme;
  cfg.seed = seed;
  cfg.horizon = SimTime::seconds(300);
  return cfg;
}

TEST(Scenario, RunsToCompletion) {
  const auto r = run_route_scenario(small_config(athena::Scheme::kLvfl));
  EXPECT_EQ(r.queries, 32u);
  EXPECT_EQ(r.metrics.queries_issued, 32u);
  EXPECT_EQ(r.metrics.queries_resolved + r.metrics.queries_failed, 32u);
  EXPECT_GT(r.events, 0u);
  EXPECT_GT(r.traffic.bytes, 0u);
}

TEST(Scenario, DeterministicForSameSeed) {
  const auto a = run_route_scenario(small_config(athena::Scheme::kLvf, 3));
  const auto b = run_route_scenario(small_config(athena::Scheme::kLvf, 3));
  EXPECT_EQ(a.metrics.queries_resolved, b.metrics.queries_resolved);
  EXPECT_EQ(a.traffic.bytes, b.traffic.bytes);
  EXPECT_EQ(a.events, b.events);
  EXPECT_EQ(a.metrics.object_requests, b.metrics.object_requests);
  EXPECT_EQ(a.metrics.sensor_samples, b.metrics.sensor_samples);
}

TEST(Scenario, DifferentSeedsDiffer) {
  const auto a = run_route_scenario(small_config(athena::Scheme::kLvf, 1));
  const auto b = run_route_scenario(small_config(athena::Scheme::kLvf, 2));
  // Different worlds — event counts virtually never coincide.
  EXPECT_NE(a.events, b.events);
}

TEST(Scenario, DecisionDrivenResolvesMostQueries) {
  auto cfg = small_config(athena::Scheme::kLvfl);
  cfg.fast_ratio = 0.4;
  const auto r = run_route_scenario(cfg);
  EXPECT_GE(r.resolution_ratio(), 0.85);
}

TEST(Scenario, ComprehensiveUsesMoreBandwidthThanDecisionDriven) {
  double cmp_mb = 0;
  double lvfl_mb = 0;
  for (std::uint64_t seed : {1, 2, 3}) {
    cmp_mb +=
        run_route_scenario(small_config(athena::Scheme::kCmp, seed))
            .total_megabytes();
    lvfl_mb +=
        run_route_scenario(small_config(athena::Scheme::kLvfl, seed))
            .total_megabytes();
  }
  EXPECT_GT(cmp_mb, 1.5 * lvfl_mb);
}

TEST(Scenario, SourceSelectionReducesRequests) {
  const auto cmp = run_route_scenario(small_config(athena::Scheme::kCmp));
  const auto slt = run_route_scenario(small_config(athena::Scheme::kSlt));
  EXPECT_GT(cmp.metrics.object_requests, slt.metrics.object_requests);
}

TEST(Scenario, HighDynamicsHurtsBaselineMoreThanLvf) {
  double cmp_ratio = 0;
  double lvf_ratio = 0;
  for (std::uint64_t seed : {1, 2, 3, 4}) {
    auto c = small_config(athena::Scheme::kCmp, seed);
    c.fast_ratio = 1.0;
    cmp_ratio += run_route_scenario(c).resolution_ratio() / 4;
    auto l = small_config(athena::Scheme::kLvf, seed);
    l.fast_ratio = 1.0;
    lvf_ratio += run_route_scenario(l).resolution_ratio() / 4;
  }
  EXPECT_GE(lvf_ratio, cmp_ratio);
}

TEST(Scenario, ZeroDynamicsResolvesNearlyEverything) {
  for (athena::Scheme s : {athena::Scheme::kCmp, athena::Scheme::kLvfl}) {
    auto cfg = small_config(s);
    cfg.fast_ratio = 0.0;
    const auto r = run_route_scenario(cfg);
    EXPECT_GE(r.resolution_ratio(), 0.9) << to_string(s);
  }
}

TEST(Scenario, ConfigOverrideDisablesPrefetch) {
  auto cfg = small_config(athena::Scheme::kLvfl);
  auto ac = athena::config_for(athena::Scheme::kLvfl);
  ac.prefetch = false;
  cfg.config_override = ac;
  const auto r = run_route_scenario(cfg);
  EXPECT_EQ(r.metrics.prefetch_pushes, 0u);
  EXPECT_EQ(r.metrics.announce_bytes, 0u);
}

TEST(Scenario, LabelSharingProducesLabelTraffic) {
  const auto lvfl = run_route_scenario(small_config(athena::Scheme::kLvfl));
  const auto lvf = run_route_scenario(small_config(athena::Scheme::kLvf));
  EXPECT_GT(lvfl.metrics.label_bytes, 0u);
  EXPECT_EQ(lvf.metrics.label_bytes, 0u);
}

TEST(Scenario, TrafficMatchesMetricBreakdown) {
  const auto r = run_route_scenario(small_config(athena::Scheme::kLvfl));
  EXPECT_EQ(r.traffic.bytes, r.metrics.total_bytes())
      << "network accounting must agree with protocol-level accounting";
}

TEST(Scenario, LatencyOnlyForResolvedQueries) {
  const auto r = run_route_scenario(small_config(athena::Scheme::kLvfl));
  if (r.metrics.queries_resolved > 0) {
    EXPECT_GE(r.metrics.mean_latency_s(), 0.0);
    EXPECT_LT(r.metrics.mean_latency_s(),
              small_config(athena::Scheme::kLvfl).query_deadline.to_seconds());
  }
}

TEST(Scenario, AuditCoversChosenRoutes) {
  const auto r = run_route_scenario(small_config(athena::Scheme::kLvfl));
  // Some queries choose a route; the audit must cover them and accuracy is
  // a valid ratio.
  EXPECT_GT(r.decisions_audited, 0u);
  EXPECT_LE(r.decisions_correct, r.decisions_audited);
  EXPECT_GE(r.decision_accuracy(), 0.0);
  EXPECT_LE(r.decision_accuracy(), 1.0);
}

TEST(Scenario, PerfectSensorsShortValidityIsAccurate) {
  auto cfg = small_config(athena::Scheme::kLvfl);
  cfg.fast_ratio = 0.0;
  cfg.slow_validity = SimTime::seconds(120);
  cfg.mean_holding = SimTime::seconds(7200);
  const auto r = run_route_scenario(cfg);
  EXPECT_GE(r.decision_accuracy(), 0.9);
}

TEST(Scenario, NoiseDegradesAccuracyAndCorroborationRecoversIt) {
  auto base = small_config(athena::Scheme::kLvfl);
  base.fast_ratio = 0.0;
  base.slow_validity = SimTime::seconds(120);
  base.mean_holding = SimTime::seconds(7200);

  double noisy_acc = 0;
  double corro_acc = 0;
  for (std::uint64_t seed : {1, 2, 3}) {
    auto noisy = base;
    noisy.seed = seed;
    noisy.sensor_reliability = 0.75;
    noisy_acc += run_route_scenario(noisy).decision_accuracy() / 3;
    auto corro = noisy;
    corro.corroboration_confidence = 0.85;
    corro_acc += run_route_scenario(corro).decision_accuracy() / 3;
  }
  EXPECT_LT(noisy_acc, 0.85) << "noise must hurt accuracy";
  EXPECT_GT(corro_acc, noisy_acc + 0.05)
      << "corroboration must recover accuracy";
}

TEST(Scenario, PoissonArrivalsSpreadIssueTimes) {
  auto cfg = small_config(athena::Scheme::kLvfl);
  cfg.arrival = ScenarioConfig::Arrival::kPoisson;
  cfg.mean_interarrival = SimTime::seconds(60);
  cfg.horizon = SimTime::seconds(700);
  const auto r = run_route_scenario(cfg);
  EXPECT_EQ(r.metrics.queries_issued, r.queries);
  EXPECT_EQ(r.metrics.queries_resolved + r.metrics.queries_failed, r.queries);
}

TEST(Scenario, PeriodicArrivalsDeterministic) {
  auto cfg = small_config(athena::Scheme::kLvf);
  cfg.arrival = ScenarioConfig::Arrival::kPeriodic;
  cfg.mean_interarrival = SimTime::seconds(60);
  cfg.horizon = SimTime::seconds(700);
  const auto a = run_route_scenario(cfg);
  const auto b = run_route_scenario(cfg);
  EXPECT_EQ(a.events, b.events);
  EXPECT_EQ(a.traffic.bytes, b.traffic.bytes);
}

TEST(Scenario, StaggeringReducesLatency) {
  double concurrent = 0;
  double staggered = 0;
  for (std::uint64_t seed : {1, 2, 3}) {
    auto c = small_config(athena::Scheme::kLvfl, seed);
    concurrent += run_route_scenario(c).metrics.mean_latency_s() / 3;
    auto p = small_config(athena::Scheme::kLvfl, seed);
    p.arrival = ScenarioConfig::Arrival::kPoisson;
    p.mean_interarrival = SimTime::seconds(60);
    p.horizon = SimTime::seconds(700);
    staggered += run_route_scenario(p).metrics.mean_latency_s() / 3;
  }
  EXPECT_LT(staggered, concurrent);
}

// Invariants every scheme must uphold on the full scenario.
class AllSchemesScenario : public ::testing::TestWithParam<athena::Scheme> {};

TEST_P(AllSchemesScenario, Deterministic) {
  const auto a = run_route_scenario(small_config(GetParam(), 11));
  const auto b = run_route_scenario(small_config(GetParam(), 11));
  EXPECT_EQ(a.events, b.events);
  EXPECT_EQ(a.traffic.bytes, b.traffic.bytes);
  EXPECT_EQ(a.metrics.queries_resolved, b.metrics.queries_resolved);
}

TEST_P(AllSchemesScenario, EveryQueryAccountedFor) {
  const auto r = run_route_scenario(small_config(GetParam()));
  EXPECT_EQ(r.metrics.queries_resolved + r.metrics.queries_failed, r.queries);
  EXPECT_EQ(r.traffic.bytes, r.metrics.total_bytes());
}

TEST_P(AllSchemesScenario, ResolvesMajorityAtModerateDynamics) {
  auto cfg = small_config(GetParam());
  cfg.fast_ratio = 0.2;
  const auto r = run_route_scenario(cfg);
  EXPECT_GE(r.resolution_ratio(), 0.75) << to_string(GetParam());
}

INSTANTIATE_TEST_SUITE_P(Schemes, AllSchemesScenario,
                         ::testing::Values(athena::Scheme::kCmp,
                                           athena::Scheme::kSlt,
                                           athena::Scheme::kLcf,
                                           athena::Scheme::kLvf,
                                           athena::Scheme::kLvfl),
                         [](const auto& param_info) {
                           return std::string(to_string(param_info.param));
                         });

TEST(Scenario, CriticalFractionMarksOutcomes) {
  auto cfg = small_config(athena::Scheme::kLvfl);
  cfg.critical_fraction = 0.5;
  const auto r = run_route_scenario(cfg);
  int critical = 0;
  for (const auto& o : r.outcomes) critical += o.priority > 0 ? 1 : 0;
  EXPECT_GT(critical, 0);
  EXPECT_LT(critical, static_cast<int>(r.outcomes.size()));
}

TEST(Scenario, PacketLossStillAccountsQueries) {
  auto cfg = small_config(athena::Scheme::kLvf);
  cfg.packet_loss = 0.05;
  const auto r = run_route_scenario(cfg);
  EXPECT_EQ(r.metrics.queries_resolved + r.metrics.queries_failed, r.queries);
  EXPECT_GT(r.traffic.dropped, 0u);
}

TEST(Scenario, DisruptionWithInvalidationKeepsAccuracy) {
  auto base = small_config(athena::Scheme::kLvfl);
  base.fast_ratio = 0.0;
  base.slow_validity = SimTime::seconds(600);
  base.mean_holding = SimTime::seconds(36000);
  base.arrival = ScenarioConfig::Arrival::kPoisson;
  base.mean_interarrival = SimTime::seconds(40);
  base.horizon = SimTime::seconds(500);
  base.disruption_at = SimTime::seconds(60);

  auto post_accuracy = [&](bool invalidate) {
    double correct = 0;
    double total = 0;
    for (std::uint64_t seed : {1, 2, 3}) {
      auto cfg = base;
      cfg.seed = seed;
      cfg.broadcast_invalidation = invalidate;
      for (const auto& o : run_route_scenario(cfg).outcomes) {
        if (!o.audited || o.finished_s < 60.0) continue;
        ++total;
        correct += o.correct;
      }
    }
    return total > 0 ? correct / total : 1.0;
  };
  const double with = post_accuracy(true);
  const double without = post_accuracy(false);
  EXPECT_GT(with, without + 0.15)
      << "invalidation must restore post-event decision accuracy";
}

TEST(TriggerScenario, EventsTriggerQueries) {
  TriggerScenarioConfig cfg;
  cfg.seed = 3;
  const auto r = run_trigger_scenario(cfg);
  EXPECT_GT(r.events, 0u);
  EXPECT_EQ(r.queries_issued, r.events);
  EXPECT_EQ(r.detection_s.size(), r.events);
}

TEST(TriggerScenario, DetectionBoundedBySamplingPeriod) {
  TriggerScenarioConfig cfg;
  cfg.seed = 4;
  cfg.watch_period = SimTime::seconds(5);
  const auto r = run_trigger_scenario(cfg);
  for (double d : r.detection_s) {
    EXPECT_GE(d, 0.0);
    EXPECT_LE(d, 5.0 + 1e-9);
  }
}

TEST(TriggerScenario, MostIdentificationsResolve) {
  TriggerScenarioConfig cfg;
  cfg.seed = 5;
  const auto r = run_trigger_scenario(cfg);
  ASSERT_GT(r.queries_issued, 0u);
  EXPECT_GE(r.resolution_ratio(), 0.7);
  // Reaction = detection + retrieval; it must exceed detection and stay
  // within the decision deadline.
  for (double reaction : r.reaction_s) {
    EXPECT_GT(reaction, 0.0);
    EXPECT_LE(reaction, cfg.watch_period.to_seconds() +
                            cfg.query_deadline.to_seconds() + 1e-9);
  }
}

TEST(TriggerScenario, EventRateScalesWithConfig) {
  TriggerScenarioConfig slow;
  slow.seed = 6;
  slow.event_rate_per_hour = 4.0;
  TriggerScenarioConfig fast = slow;
  fast.event_rate_per_hour = 30.0;
  std::uint64_t slow_events = 0;
  std::uint64_t fast_events = 0;
  for (std::uint64_t seed : {6, 7, 8}) {
    slow.seed = seed;
    fast.seed = seed;
    slow_events += run_trigger_scenario(slow).events;
    fast_events += run_trigger_scenario(fast).events;
  }
  EXPECT_GT(fast_events, 2 * slow_events);
}

TEST(TriggerScenario, Deterministic) {
  TriggerScenarioConfig cfg;
  cfg.seed = 9;
  const auto a = run_trigger_scenario(cfg);
  const auto b = run_trigger_scenario(cfg);
  EXPECT_EQ(a.events, b.events);
  EXPECT_EQ(a.metrics.queries_resolved, b.metrics.queries_resolved);
  EXPECT_EQ(a.reaction_s, b.reaction_s);
}

}  // namespace
}  // namespace dde::scenario
