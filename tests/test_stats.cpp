#include "common/stats.h"

#include <gtest/gtest.h>

#include <vector>

#include "common/rng.h"

namespace dde {
namespace {

TEST(RunningStats, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.ci95(), 0.0);
}

TEST(RunningStats, SingleValue) {
  RunningStats s;
  s.add(5.0);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.min(), 5.0);
  EXPECT_DOUBLE_EQ(s.max(), 5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(RunningStats, KnownSample) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
  // Sample variance of this classic data set is 32/7.
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(RunningStats, MatchesDirectComputationOnRandomData) {
  Rng rng(99);
  std::vector<double> xs;
  RunningStats s;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.uniform(-10, 10);
    xs.push_back(x);
    s.add(x);
  }
  double mean = 0;
  for (double x : xs) mean += x;
  mean /= static_cast<double>(xs.size());
  double var = 0;
  for (double x : xs) var += (x - mean) * (x - mean);
  var /= static_cast<double>(xs.size() - 1);
  EXPECT_NEAR(s.mean(), mean, 1e-9);
  EXPECT_NEAR(s.variance(), var, 1e-9);
}

TEST(RunningStats, Ci95ShrinksWithSamples) {
  Rng rng(5);
  RunningStats small;
  RunningStats large;
  for (int i = 0; i < 10; ++i) small.add(rng.uniform());
  for (int i = 0; i < 1000; ++i) large.add(rng.uniform());
  EXPECT_GT(small.ci95(), large.ci95());
}

TEST(Percentile, Basics) {
  std::vector<double> xs{5, 1, 4, 2, 3};
  EXPECT_DOUBLE_EQ(percentile(xs, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 0.5), 3.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 1.0), 5.0);
}

TEST(Percentile, SingleElement) {
  EXPECT_DOUBLE_EQ(percentile({7.0}, 0.0), 7.0);
  EXPECT_DOUBLE_EQ(percentile({7.0}, 0.99), 7.0);
}

TEST(Percentile, DoesNotMutateCaller) {
  const std::vector<double> xs{3, 1, 2};
  auto copy = xs;
  (void)percentile(copy, 0.5);
  // percentile takes by value; caller's vector is intact by construction.
  EXPECT_EQ(copy, xs);
}

}  // namespace
}  // namespace dde
