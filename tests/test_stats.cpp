#include "common/stats.h"

#include <gtest/gtest.h>

#include <vector>

#include "common/rng.h"

namespace dde {
namespace {

TEST(RunningStats, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.ci95(), 0.0);
}

TEST(RunningStats, SingleValue) {
  RunningStats s;
  s.add(5.0);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.min(), 5.0);
  EXPECT_DOUBLE_EQ(s.max(), 5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(RunningStats, KnownSample) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
  // Sample variance of this classic data set is 32/7.
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(RunningStats, MatchesDirectComputationOnRandomData) {
  Rng rng(99);
  std::vector<double> xs;
  RunningStats s;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.uniform(-10, 10);
    xs.push_back(x);
    s.add(x);
  }
  double mean = 0;
  for (double x : xs) mean += x;
  mean /= static_cast<double>(xs.size());
  double var = 0;
  for (double x : xs) var += (x - mean) * (x - mean);
  var /= static_cast<double>(xs.size() - 1);
  EXPECT_NEAR(s.mean(), mean, 1e-9);
  EXPECT_NEAR(s.variance(), var, 1e-9);
}

TEST(RunningStats, Ci95ShrinksWithSamples) {
  Rng rng(5);
  RunningStats small;
  RunningStats large;
  for (int i = 0; i < 10; ++i) small.add(rng.uniform());
  for (int i = 0; i < 1000; ++i) large.add(rng.uniform());
  EXPECT_GT(small.ci95(), large.ci95());
}

TEST(RunningStats, MergeWithEmptyIsIdentity) {
  RunningStats s;
  s.add(1.0);
  s.add(3.0);
  RunningStats empty;
  s.merge(empty);
  EXPECT_EQ(s.count(), 2u);
  EXPECT_DOUBLE_EQ(s.mean(), 2.0);
  RunningStats t;
  t.merge(s);
  EXPECT_EQ(t.count(), 2u);
  EXPECT_DOUBLE_EQ(t.mean(), s.mean());
  EXPECT_DOUBLE_EQ(t.variance(), s.variance());
}

TEST(RunningStats, MergeOfSingletonsIsBitIdenticalToAdd) {
  // merge() special-cases a one-sample right-hand side as add(), so folding
  // per-seed singleton stats reproduces the sequential accumulation exactly
  // — the property the bench runner's deterministic merge relies on.
  Rng rng(7);
  RunningStats seq;
  RunningStats folded;
  for (int i = 0; i < 200; ++i) {
    const double x = rng.uniform(-5, 5);
    seq.add(x);
    RunningStats one;
    one.add(x);
    folded.merge(one);
  }
  EXPECT_EQ(seq.count(), folded.count());
  EXPECT_EQ(seq.mean(), folded.mean());
  EXPECT_EQ(seq.variance(), folded.variance());
  EXPECT_EQ(seq.sum(), folded.sum());
  EXPECT_EQ(seq.min(), folded.min());
  EXPECT_EQ(seq.max(), folded.max());
}

TEST(RunningStats, MergeMatchesSequentialAddOnChunks) {
  // Chan et al. pairwise combination: merging chunk stats must agree with
  // one sequential pass up to floating-point noise.
  Rng rng(13);
  std::vector<double> xs;
  for (int i = 0; i < 1000; ++i) xs.push_back(rng.uniform(-100, 100));
  RunningStats seq;
  for (double x : xs) seq.add(x);
  RunningStats merged;
  for (std::size_t chunk = 0; chunk < 4; ++chunk) {
    RunningStats part;
    for (std::size_t i = chunk * 250; i < (chunk + 1) * 250; ++i) {
      part.add(xs[i]);
    }
    merged.merge(part);
  }
  EXPECT_EQ(merged.count(), seq.count());
  EXPECT_NEAR(merged.mean(), seq.mean(), 1e-12);
  EXPECT_NEAR(merged.variance(), seq.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(merged.min(), seq.min());
  EXPECT_DOUBLE_EQ(merged.max(), seq.max());
  EXPECT_NEAR(merged.sum(), seq.sum(), 1e-9);
}

TEST(Percentile, Basics) {
  std::vector<double> xs{5, 1, 4, 2, 3};
  EXPECT_DOUBLE_EQ(percentile(xs, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 0.5), 3.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 1.0), 5.0);
}

TEST(Percentile, SingleElement) {
  EXPECT_DOUBLE_EQ(percentile({7.0}, 0.0), 7.0);
  EXPECT_DOUBLE_EQ(percentile({7.0}, 0.99), 7.0);
}

TEST(Percentile, EmptyReturnsZero) {
  // Regression: the empty case was guarded only by an assert, so release
  // builds indexed past the end. The documented convention is now 0.0.
  EXPECT_DOUBLE_EQ(percentile(std::vector<double>{}, 0.5), 0.0);
  EXPECT_DOUBLE_EQ(percentile(std::vector<double>{}, 0.0), 0.0);
}

TEST(Percentile, NearestRankOnFourElements) {
  // Nearest-rank (R-1): k = ceil(q*n), 1-based.
  const std::vector<double> xs{10, 20, 30, 40};
  EXPECT_DOUBLE_EQ(percentile(xs, 0.25), 10.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 0.5), 20.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 0.75), 30.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 0.9), 40.0);  // ceil(3.6) = 4
  EXPECT_DOUBLE_EQ(percentile(xs, 1.0), 40.0);
}

TEST(Percentile, ClampsQuantileOutOfRange) {
  const std::vector<double> xs{1, 2, 3};
  EXPECT_DOUBLE_EQ(percentile(xs, -0.5), 1.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 1.5), 3.0);
}

TEST(Percentile, DoesNotMutateCaller) {
  const std::vector<double> xs{3, 1, 2};
  auto copy = xs;
  (void)percentile(copy, 0.5);
  // percentile takes by value; caller's vector is intact by construction.
  EXPECT_EQ(copy, xs);
}

}  // namespace
}  // namespace dde
