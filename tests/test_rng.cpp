#include "common/rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <numeric>
#include <vector>

namespace dde {
namespace {

TEST(Rng, DeterministicForSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a() == b()) ++same;
  }
  EXPECT_LT(same, 5);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-3.0, 5.0);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(Rng, UniformMeanIsHalf) {
  Rng rng(11);
  double sum = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, BelowStaysInRange) {
  Rng rng(5);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.below(7), 7u);
  }
}

TEST(Rng, BelowOneIsAlwaysZero) {
  Rng rng(5);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.below(1), 0u);
}

TEST(Rng, BelowCoversAllValues) {
  Rng rng(5);
  std::map<std::uint64_t, int> counts;
  for (int i = 0; i < 7000; ++i) ++counts[rng.below(7)];
  EXPECT_EQ(counts.size(), 7u);
  for (const auto& [v, c] : counts) {
    EXPECT_GT(c, 700);  // roughly uniform (expected 1000)
    EXPECT_LT(c, 1300);
  }
}

TEST(Rng, BetweenInclusive) {
  Rng rng(9);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 10000; ++i) {
    const auto v = rng.between(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    saw_lo |= v == -2;
    saw_hi |= v == 2;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, ChanceExtremes) {
  Rng rng(3);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

TEST(Rng, ChanceMatchesProbability) {
  Rng rng(3);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += rng.chance(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, ExponentialMean) {
  Rng rng(13);
  double sum = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(5.0);
  EXPECT_NEAR(sum / n, 5.0, 0.15);
}

TEST(Rng, ExponentialIsPositive) {
  Rng rng(13);
  for (int i = 0; i < 1000; ++i) EXPECT_GT(rng.exponential(1.0), 0.0);
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(17);
  std::vector<int> v(50);
  std::iota(v.begin(), v.end(), 0);
  auto shuffled = v;
  rng.shuffle(shuffled);
  EXPECT_TRUE(std::is_permutation(v.begin(), v.end(), shuffled.begin()));
  EXPECT_NE(v, shuffled);  // overwhelmingly likely for 50 elements
}

TEST(Rng, PickReturnsElement) {
  Rng rng(19);
  const std::vector<int> v{10, 20, 30};
  for (int i = 0; i < 100; ++i) {
    const int p = rng.pick(v);
    EXPECT_TRUE(p == 10 || p == 20 || p == 30);
  }
}

TEST(Rng, ForkIsIndependent) {
  Rng parent(21);
  Rng child = parent.fork();
  // The child stream differs from the parent's subsequent stream.
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (parent() == child()) ++same;
  }
  EXPECT_LT(same, 5);
}

TEST(Rng, ReseedRestartsStream) {
  Rng rng(42);
  std::vector<std::uint64_t> first;
  for (int i = 0; i < 10; ++i) first.push_back(rng());
  rng.reseed(42);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng(), first[static_cast<size_t>(i)]);
}

}  // namespace
}  // namespace dde
