#include "common/tristate.h"

#include <gtest/gtest.h>

#include <tuple>
#include <vector>

namespace dde {
namespace {

constexpr Tristate F = Tristate::kFalse;
constexpr Tristate T = Tristate::kTrue;
constexpr Tristate U = Tristate::kUnknown;

TEST(Tristate, FromBool) {
  EXPECT_EQ(to_tristate(true), T);
  EXPECT_EQ(to_tristate(false), F);
}

TEST(Tristate, IsKnown) {
  EXPECT_TRUE(is_known(T));
  EXPECT_TRUE(is_known(F));
  EXPECT_FALSE(is_known(U));
}

TEST(Tristate, Negation) {
  EXPECT_EQ(!T, F);
  EXPECT_EQ(!F, T);
  EXPECT_EQ(!U, U);
}

TEST(Tristate, ToString) {
  EXPECT_EQ(to_string(T), "true");
  EXPECT_EQ(to_string(F), "false");
  EXPECT_EQ(to_string(U), "unknown");
}

// Full Kleene truth tables, parameterized.
struct KleeneCase {
  Tristate a;
  Tristate b;
  Tristate expect_and;
  Tristate expect_or;
};

class KleeneTruthTable : public ::testing::TestWithParam<KleeneCase> {};

TEST_P(KleeneTruthTable, AndMatches) {
  const auto& c = GetParam();
  EXPECT_EQ(c.a && c.b, c.expect_and);
}

TEST_P(KleeneTruthTable, OrMatches) {
  const auto& c = GetParam();
  EXPECT_EQ(c.a || c.b, c.expect_or);
}

TEST_P(KleeneTruthTable, AndCommutes) {
  const auto& c = GetParam();
  EXPECT_EQ(c.a && c.b, c.b && c.a);
}

TEST_P(KleeneTruthTable, OrCommutes) {
  const auto& c = GetParam();
  EXPECT_EQ(c.a || c.b, c.b || c.a);
}

TEST_P(KleeneTruthTable, DeMorgan) {
  const auto& c = GetParam();
  EXPECT_EQ(!(c.a && c.b), (!c.a) || (!c.b));
  EXPECT_EQ(!(c.a || c.b), (!c.a) && (!c.b));
}

INSTANTIATE_TEST_SUITE_P(
    AllPairs, KleeneTruthTable,
    ::testing::Values(
        KleeneCase{F, F, F, F}, KleeneCase{F, T, F, T},
        KleeneCase{F, U, F, U}, KleeneCase{T, F, F, T},
        KleeneCase{T, T, T, T}, KleeneCase{T, U, U, T},
        KleeneCase{U, F, F, U}, KleeneCase{U, T, U, T},
        KleeneCase{U, U, U, U}));

TEST(Tristate, AssociativityExhaustive) {
  const std::vector<Tristate> all{F, T, U};
  for (Tristate a : all) {
    for (Tristate b : all) {
      for (Tristate c : all) {
        EXPECT_EQ((a && b) && c, a && (b && c));
        EXPECT_EQ((a || b) || c, a || (b || c));
      }
    }
  }
}

TEST(Tristate, DistributivityExhaustive) {
  const std::vector<Tristate> all{F, T, U};
  for (Tristate a : all) {
    for (Tristate b : all) {
      for (Tristate c : all) {
        EXPECT_EQ(a && (b || c), (a && b) || (a && c));
        EXPECT_EQ(a || (b && c), (a || b) && (a || c));
      }
    }
  }
}

}  // namespace
}  // namespace dde
