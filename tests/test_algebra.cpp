#include "decision/algebra.h"

#include <gtest/gtest.h>

#include <vector>

#include "common/rng.h"

namespace dde::decision {
namespace {

Term t(std::uint64_t l, bool neg = false) { return Term{LabelId{l}, neg}; }

DnfExpr expr(std::vector<Conjunction> cs) { return DnfExpr{std::move(cs)}; }

LabelValue val(std::uint64_t label, bool v) {
  LabelValue lv;
  lv.label = LabelId{label};
  lv.value = to_tristate(v);
  lv.evaluated_at = SimTime::zero();
  lv.validity = SimTime::seconds(1000);
  lv.annotator = AnnotatorId{0};
  return lv;
}

/// Classical evaluation of `e` in a world given by bits of `w`.
bool eval_in_world(const DnfExpr& e, std::uint64_t w, std::size_t n_labels) {
  Assignment a;
  for (std::size_t i = 0; i < n_labels; ++i) a.set(val(i, (w >> i) & 1));
  return e.evaluate(a, SimTime::zero()) == Tristate::kTrue;
}

/// Truth-table equivalence of two expressions over labels 0..n-1.
bool equivalent(const DnfExpr& a, const DnfExpr& b, std::size_t n_labels) {
  for (std::uint64_t w = 0; w < (std::uint64_t{1} << n_labels); ++w) {
    if (eval_in_world(a, w, n_labels) != eval_in_world(b, w, n_labels)) {
      return false;
    }
  }
  return true;
}

DnfExpr random_expr(Rng& rng, std::size_t n_labels) {
  DnfExpr e;
  const std::size_t n_disj = rng.below(3);  // may be empty (false)
  for (std::size_t d = 0; d < n_disj; ++d) {
    Conjunction c;
    for (std::size_t k = 0, n = 1 + rng.below(3); k < n; ++k) {
      c.terms.push_back(t(rng.below(n_labels), rng.chance(0.3)));
    }
    e.add_disjunct(std::move(c));
  }
  return e;
}

TEST(Algebra, SimplifyRemovesDuplicateTerms) {
  const auto s = simplify(expr({Conjunction{{t(0), t(0), t(1)}}}));
  ASSERT_EQ(s.disjunct_count(), 1u);
  EXPECT_EQ(s.disjuncts()[0].terms.size(), 2u);
}

TEST(Algebra, SimplifyDropsContradictions) {
  const auto s = simplify(expr({Conjunction{{t(0), t(0, true)}},
                                Conjunction{{t(1)}}}));
  ASSERT_EQ(s.disjunct_count(), 1u);
  EXPECT_EQ(s.disjuncts()[0].terms[0].label, LabelId{1});
}

TEST(Algebra, SimplifyAllContradictionsIsFalse) {
  const auto s = simplify(expr({Conjunction{{t(0), t(0, true)}}}));
  EXPECT_TRUE(s.empty());
}

TEST(Algebra, SimplifyDeduplicatesConjunctions) {
  const auto s = simplify(expr({Conjunction{{t(1), t(0)}},
                                Conjunction{{t(0), t(1)}}}));
  EXPECT_EQ(s.disjunct_count(), 1u);
}

TEST(Algebra, SimplifyAbsorption) {
  // A ∨ (A ∧ B) ≡ A.
  const auto s = simplify(expr({Conjunction{{t(0)}},
                                Conjunction{{t(0), t(1)}}}));
  ASSERT_EQ(s.disjunct_count(), 1u);
  EXPECT_EQ(s.disjuncts()[0].terms.size(), 1u);
}

TEST(Algebra, SimplifyTrueAbsorbsEverything) {
  const auto s = simplify(expr({Conjunction{}, Conjunction{{t(0), t(1)}}}));
  ASSERT_EQ(s.disjunct_count(), 1u);
  EXPECT_TRUE(s.disjuncts()[0].terms.empty());
}

TEST(Algebra, SimplifyPreservesSemantics) {
  Rng rng(1);
  for (int trial = 0; trial < 300; ++trial) {
    const auto e = random_expr(rng, 4);
    EXPECT_TRUE(equivalent(e, simplify(e), 4));
  }
}

TEST(Algebra, OrSemantics) {
  Rng rng(2);
  for (int trial = 0; trial < 200; ++trial) {
    const auto a = random_expr(rng, 4);
    const auto b = random_expr(rng, 4);
    const auto o = dnf_or(a, b);
    for (std::uint64_t w = 0; w < 16; ++w) {
      EXPECT_EQ(eval_in_world(o, w, 4),
                eval_in_world(a, w, 4) || eval_in_world(b, w, 4));
    }
  }
}

TEST(Algebra, AndSemantics) {
  Rng rng(3);
  for (int trial = 0; trial < 200; ++trial) {
    const auto a = random_expr(rng, 4);
    const auto b = random_expr(rng, 4);
    const auto o = dnf_and(a, b);
    for (std::uint64_t w = 0; w < 16; ++w) {
      EXPECT_EQ(eval_in_world(o, w, 4),
                eval_in_world(a, w, 4) && eval_in_world(b, w, 4));
    }
  }
}

TEST(Algebra, NotSemantics) {
  Rng rng(4);
  for (int trial = 0; trial < 200; ++trial) {
    const auto a = random_expr(rng, 4);
    const auto n = dnf_not(a);
    for (std::uint64_t w = 0; w < 16; ++w) {
      EXPECT_EQ(eval_in_world(n, w, 4), !eval_in_world(a, w, 4));
    }
  }
}

TEST(Algebra, DoubleNegationIsIdentity) {
  Rng rng(5);
  for (int trial = 0; trial < 100; ++trial) {
    const auto a = random_expr(rng, 4);
    EXPECT_TRUE(equivalent(a, dnf_not(dnf_not(a)), 4));
  }
}

TEST(Algebra, NotOfFalseIsTrue) {
  const DnfExpr f;  // empty = false
  const auto n = dnf_not(f);
  ASSERT_EQ(n.disjunct_count(), 1u);
  EXPECT_TRUE(n.disjuncts()[0].terms.empty());
}

TEST(Algebra, NotOfTrueIsFalse) {
  DnfExpr tru;
  tru.add_disjunct(Conjunction{});
  EXPECT_TRUE(dnf_not(tru).empty());
}

TEST(Algebra, GuardRestrictsActions) {
  // Actions: route A (l0) or route B (l1); guard: daylight (l2).
  DnfExpr actions = expr({Conjunction{{t(0)}}, Conjunction{{t(1)}}});
  DnfExpr guard = expr({Conjunction{{t(2)}}});
  const auto guarded = with_guard(actions, guard);
  for (std::uint64_t w = 0; w < 8; ++w) {
    EXPECT_EQ(eval_in_world(guarded, w, 3),
              eval_in_world(actions, w, 3) && eval_in_world(guard, w, 3));
  }
  // The guard label is now relevant to every course of action.
  for (const auto& c : guarded.disjuncts()) {
    EXPECT_NE(std::find(c.terms.begin(), c.terms.end(), t(2)), c.terms.end());
  }
}

TEST(Algebra, GuardedContradictionEliminatesAction) {
  // Route A requires NOT l2; the guard requires l2 → route A impossible.
  DnfExpr actions = expr({Conjunction{{t(0), t(2, true)}},
                          Conjunction{{t(1)}}});
  DnfExpr guard = expr({Conjunction{{t(2)}}});
  const auto guarded = with_guard(actions, guard);
  EXPECT_EQ(guarded.disjunct_count(), 1u);
}

TEST(Algebra, StructurallyEqual) {
  const auto a = expr({Conjunction{{t(0), t(1)}}, Conjunction{{t(2)}}});
  const auto b = expr({Conjunction{{t(2)}}, Conjunction{{t(1), t(0)}},
                       Conjunction{{t(2), t(3)}}});  // absorbed
  EXPECT_TRUE(structurally_equal(a, b));
  const auto c = expr({Conjunction{{t(0)}}});
  EXPECT_FALSE(structurally_equal(a, c));
}

TEST(Algebra, DeMorganAcrossOperations) {
  Rng rng(6);
  for (int trial = 0; trial < 100; ++trial) {
    const auto a = random_expr(rng, 3);
    const auto b = random_expr(rng, 3);
    // ¬(a ∨ b) ≡ ¬a ∧ ¬b
    EXPECT_TRUE(equivalent(dnf_not(dnf_or(a, b)),
                           dnf_and(dnf_not(a), dnf_not(b)), 3));
    // ¬(a ∧ b) ≡ ¬a ∨ ¬b
    EXPECT_TRUE(equivalent(dnf_not(dnf_and(a, b)),
                           dnf_or(dnf_not(a), dnf_not(b)), 3));
  }
}

}  // namespace
}  // namespace dde::decision
