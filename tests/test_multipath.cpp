// Multipath transmission primitives (src/net/multipath.h): alternate
// next-hop ranking over the routing topology and the bounded first-copy
// dedup table that makes K-fold replication idempotent at the receiver.
#include "net/multipath.h"

#include <gtest/gtest.h>

#include "common/sim_time.h"
#include "net/topology.h"

namespace dde::net {
namespace {

/// Star: center 0 joined to leaves 1..4; leaves only reach each other
/// through the center.
Topology star() {
  Topology t;
  const NodeId c = t.add_node();
  for (int i = 0; i < 4; ++i) {
    t.add_link(c, t.add_node());
  }
  t.compute_routes();
  return t;
}

/// Diamond: 0 — {1, 2, 3} — 4. Three equal-length disjoint paths.
Topology diamond() {
  Topology t;
  const NodeId a = t.add_node();
  const NodeId m1 = t.add_node();
  const NodeId m2 = t.add_node();
  const NodeId m3 = t.add_node();
  const NodeId b = t.add_node();
  for (NodeId m : {m1, m2, m3}) {
    t.add_link(a, m);
    t.add_link(m, b);
  }
  t.compute_routes();
  return t;
}

TEST(Multipath, DownhillNeighborsOnDiamond) {
  const Topology t = diamond();
  // From 0 toward 4 every middle node is one hop closer, in id order.
  const auto down = downhill_neighbors(t, NodeId{0}, NodeId{4});
  ASSERT_EQ(down.size(), 3u);
  EXPECT_EQ(down[0], NodeId{1});
  EXPECT_EQ(down[1], NodeId{2});
  EXPECT_EQ(down[2], NodeId{3});
  // From a middle node toward 4 only the destination itself is downhill
  // (node 0 is uphill, sibling middles are equal-distance).
  const auto mid = downhill_neighbors(t, NodeId{1}, NodeId{4});
  ASSERT_EQ(mid.size(), 1u);
  EXPECT_EQ(mid[0], NodeId{4});
}

TEST(Multipath, DownhillNeighborsExcludeUphillOnStar) {
  const Topology t = star();
  // Leaf 1 toward leaf 2: the center is the only way down.
  const auto down = downhill_neighbors(t, NodeId{1}, NodeId{2});
  ASSERT_EQ(down.size(), 1u);
  EXPECT_EQ(down[0], NodeId{0});
  // The center toward a leaf: just that leaf.
  const auto from_center = downhill_neighbors(t, NodeId{0}, NodeId{3});
  ASSERT_EQ(from_center.size(), 1u);
  EXPECT_EQ(from_center[0], NodeId{3});
}

TEST(Multipath, AlternateNextHopsSkipUsedAndCap) {
  const Topology t = diamond();
  // Primary path already uses node 1; two alternates remain, best-first.
  const auto alts =
      alternate_next_hops(t, NodeId{0}, NodeId{4}, 2, {NodeId{1}});
  ASSERT_EQ(alts.size(), 2u);
  EXPECT_EQ(alts[0], NodeId{2});
  EXPECT_EQ(alts[1], NodeId{3});
  // Asking for more than exist returns what exists.
  const auto all =
      alternate_next_hops(t, NodeId{0}, NodeId{4}, 10, {NodeId{1}});
  EXPECT_EQ(all.size(), 2u);
  // k = 0: none.
  EXPECT_TRUE(alternate_next_hops(t, NodeId{0}, NodeId{4}, 0, {}).empty());
}

TEST(Multipath, AlternatesDeterministicAcrossCalls) {
  const Topology t = diamond();
  const auto a = alternate_next_hops(t, NodeId{0}, NodeId{4}, 3, {});
  const auto b = alternate_next_hops(t, NodeId{0}, NodeId{4}, 3, {});
  EXPECT_EQ(a, b);
}

// --- DedupTable -----------------------------------------------------------

TEST(DedupTable, FirstCopyWins) {
  DedupTable table(8, SimTime::seconds(10));
  EXPECT_TRUE(table.accept(42, SimTime::seconds(1)));
  EXPECT_FALSE(table.accept(42, SimTime::seconds(2)));
  EXPECT_FALSE(table.accept(42, SimTime::seconds(3)));
  EXPECT_TRUE(table.accept(7, SimTime::seconds(3)));
  EXPECT_EQ(table.stats().accepted, 2u);
  EXPECT_EQ(table.stats().duplicates, 2u);
}

TEST(DedupTable, ExpiredKeysReadmit) {
  DedupTable table(8, SimTime::seconds(10));
  EXPECT_TRUE(table.accept(1, SimTime::seconds(0)));
  // Still remembered just before the ttl elapses...
  EXPECT_FALSE(table.accept(1, SimTime::seconds(9)));
  // ...forgotten at/after expiry.
  EXPECT_TRUE(table.accept(1, SimTime::seconds(20)));
  EXPECT_EQ(table.stats().expired, 1u);
}

TEST(DedupTable, CapacityEvictsEarliestExpiry) {
  DedupTable table(2, SimTime::seconds(100));
  EXPECT_TRUE(table.accept(1, SimTime::seconds(1)));  // expires first
  EXPECT_TRUE(table.accept(2, SimTime::seconds(2)));
  EXPECT_TRUE(table.accept(3, SimTime::seconds(3)));  // evicts key 1
  EXPECT_EQ(table.size(), 2u);
  EXPECT_EQ(table.stats().evicted, 1u);
  // Key 1 was displaced, so a late duplicate of it is (wrongly but
  // boundedly) re-accepted; keys 2 and 3 are still suppressed.
  EXPECT_FALSE(table.accept(2, SimTime::seconds(4)));
  EXPECT_FALSE(table.accept(3, SimTime::seconds(4)));
}

TEST(DedupTable, SizeTracksLiveEntries) {
  DedupTable table(16, SimTime::seconds(5));
  EXPECT_TRUE(table.accept(1, SimTime::seconds(0)));
  EXPECT_TRUE(table.accept(2, SimTime::seconds(1)));
  EXPECT_EQ(table.size(), 2u);
  // A probe far in the future purges both.
  EXPECT_TRUE(table.accept(3, SimTime::seconds(60)));
  EXPECT_EQ(table.size(), 1u);
  EXPECT_EQ(table.stats().expired, 2u);
}

// Audit of the purge-then-evict order at the capacity boundary (ISSUE 8
// satellite): purge() runs first and only claims entries with
// expiry <= now, so a full table of UNexpired entries must take the
// capacity-eviction path — stats count `evicted`, never `expired` — while
// an entry expiring exactly at `now` is an expiry, never an eviction.
TEST(DedupTable, FullTableOfUnexpiredEntriesEvictsNotExpires) {
  DedupTable table(1, SimTime::seconds(100));
  EXPECT_TRUE(table.accept(1, SimTime::seconds(1)));
  // Capacity == size, entry 1 nowhere near expiring: admitting key 2 must
  // evict-then-admit, and the accounting must say so.
  EXPECT_TRUE(table.accept(2, SimTime::seconds(2)));
  EXPECT_EQ(table.size(), 1u);
  EXPECT_EQ(table.stats().evicted, 1u);
  EXPECT_EQ(table.stats().expired, 0u);
  EXPECT_EQ(table.stats().accepted, 2u);
}

TEST(DedupTable, EntryExpiringExactlyAtNowCountsExpiredNotEvicted) {
  DedupTable table(1, SimTime::seconds(10));
  EXPECT_TRUE(table.accept(1, SimTime::seconds(0)));  // expires at t=10
  // Probe lands exactly on the expiry instant: purge claims it (<= now),
  // leaving room — no eviction happens.
  EXPECT_TRUE(table.accept(2, SimTime::seconds(10)));
  EXPECT_EQ(table.stats().expired, 1u);
  EXPECT_EQ(table.stats().evicted, 0u);
}

TEST(DedupTable, PurgeRunsBeforeEvictionWhenBothApply) {
  DedupTable table(2, SimTime::seconds(10));
  EXPECT_TRUE(table.accept(1, SimTime::seconds(0)));   // expires at 10
  EXPECT_TRUE(table.accept(2, SimTime::seconds(5)));   // expires at 15
  // At t=12 key 1 is expired; purging it makes room, so key 3 admits with
  // no eviction even though the table was at capacity.
  EXPECT_TRUE(table.accept(3, SimTime::seconds(12)));
  EXPECT_EQ(table.stats().expired, 1u);
  EXPECT_EQ(table.stats().evicted, 0u);
  EXPECT_EQ(table.size(), 2u);
}

TEST(DedupTable, EvictionVictimIsEarliestExpiryThenSmallestKey) {
  // The flat heap must displace exactly the entry the old ordered set
  // picked: earliest expiry, ties broken by smallest key.
  DedupTable table(3, SimTime::seconds(100));
  EXPECT_TRUE(table.accept(7, SimTime::seconds(1)));
  EXPECT_TRUE(table.accept(5, SimTime::seconds(1)));  // same expiry as 7
  EXPECT_TRUE(table.accept(9, SimTime::seconds(2)));
  EXPECT_TRUE(table.accept(4, SimTime::seconds(3)));  // displaces key 5
  EXPECT_EQ(table.stats().evicted, 1u);
  // Key 5 was displaced (smallest key among the earliest expiry pair):
  // it re-admits; keys 7 and 9 are still suppressed.
  EXPECT_FALSE(table.accept(7, SimTime::seconds(3)));
  EXPECT_FALSE(table.accept(9, SimTime::seconds(3)));
  EXPECT_TRUE(table.accept(5, SimTime::seconds(3)));
  EXPECT_EQ(table.stats().evicted, 2u);  // re-admitting 5 displaced 7
}

TEST(DedupTable, HighChurnStaysBoundedAndConsistent) {
  // Flat-table stress: far more distinct keys than capacity, interleaved
  // duplicates — size never exceeds capacity and every accept/duplicate/
  // expired/evicted lands in exactly one bucket.
  DedupTable table(32, SimTime::millis(50));
  std::uint64_t accepted = 0;
  std::uint64_t duplicates = 0;
  for (std::uint64_t i = 0; i < 5000; ++i) {
    const SimTime now = SimTime::millis(static_cast<SimTime::rep>(i / 4));
    const std::uint64_t key = (i * 7) % 1000;
    if (table.accept(key, now)) {
      ++accepted;
    } else {
      ++duplicates;
    }
    ASSERT_LE(table.size(), 32u);
  }
  EXPECT_EQ(table.stats().accepted, accepted);
  EXPECT_EQ(table.stats().duplicates, duplicates);
  EXPECT_EQ(accepted + duplicates, 5000u);
  // Every admitted entry either still lives or left through exactly one of
  // the two exits.
  EXPECT_EQ(table.stats().accepted,
            table.size() + table.stats().expired + table.stats().evicted);
}

}  // namespace
}  // namespace dde::net
