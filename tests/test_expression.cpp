#include "decision/expression.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "common/rng.h"

namespace dde::decision {
namespace {

LabelValue val(std::uint64_t label, Tristate v,
               SimTime at = SimTime::zero(),
               SimTime validity = SimTime::seconds(100)) {
  LabelValue lv;
  lv.label = LabelId{label};
  lv.value = v;
  lv.evaluated_at = at;
  lv.validity = validity;
  lv.annotator = AnnotatorId{0};
  return lv;
}

DnfExpr route_example() {
  // (A ∧ B ∧ C) ∨ (D ∧ E ∧ F) — the paper's Sec. II example.
  DnfExpr e;
  e.add_disjunct(Conjunction{{{LabelId{0}}, {LabelId{1}}, {LabelId{2}}}});
  e.add_disjunct(Conjunction{{{LabelId{3}}, {LabelId{4}}, {LabelId{5}}}});
  return e;
}

TEST(Assignment, UnknownByDefault) {
  Assignment a;
  EXPECT_EQ(a.value_at(LabelId{0}, SimTime::zero()), Tristate::kUnknown);
  EXPECT_EQ(a.record(LabelId{0}), nullptr);
}

TEST(Assignment, SetAndRead) {
  Assignment a;
  a.set(val(1, Tristate::kTrue));
  EXPECT_EQ(a.value_at(LabelId{1}, SimTime::seconds(1)), Tristate::kTrue);
  ASSERT_NE(a.record(LabelId{1}), nullptr);
}

TEST(Assignment, ExpiredValueReadsUnknown) {
  Assignment a;
  a.set(val(1, Tristate::kTrue, SimTime::zero(), SimTime::seconds(10)));
  EXPECT_EQ(a.value_at(LabelId{1}, SimTime::seconds(9)), Tristate::kTrue);
  EXPECT_EQ(a.value_at(LabelId{1}, SimTime::seconds(10)), Tristate::kUnknown);
  EXPECT_EQ(a.value_at(LabelId{1}, SimTime::seconds(11)), Tristate::kUnknown);
  // The record itself survives (provenance), only freshness is gone.
  EXPECT_NE(a.record(LabelId{1}), nullptr);
}

TEST(Assignment, EarliestExpiry) {
  Assignment a;
  EXPECT_EQ(a.earliest_expiry(SimTime::zero()), SimTime::max());
  a.set(val(1, Tristate::kTrue, SimTime::zero(), SimTime::seconds(50)));
  a.set(val(2, Tristate::kFalse, SimTime::zero(), SimTime::seconds(20)));
  EXPECT_EQ(a.earliest_expiry(SimTime::zero()), SimTime::seconds(20));
  // After label 2 expires, only label 1 counts.
  EXPECT_EQ(a.earliest_expiry(SimTime::seconds(30)), SimTime::seconds(50));
}

TEST(Assignment, InvalidateReopens) {
  Assignment a;
  a.set(val(1, Tristate::kTrue));
  EXPECT_EQ(a.value_at(LabelId{1}, SimTime::zero()), Tristate::kTrue);
  a.invalidate(LabelId{1});
  EXPECT_EQ(a.value_at(LabelId{1}, SimTime::zero()), Tristate::kUnknown);
  EXPECT_EQ(a.record(LabelId{1}), nullptr);
  a.invalidate(LabelId{9});  // unknown labels are a no-op
}

TEST(DnfExpr, EmptyIsFalse) {
  DnfExpr e;
  Assignment a;
  EXPECT_EQ(e.evaluate(a, SimTime::zero()), Tristate::kFalse);
  EXPECT_TRUE(e.resolved(a, SimTime::zero()));
}

TEST(DnfExpr, UnknownWithoutEvidence) {
  const DnfExpr e = route_example();
  Assignment a;
  EXPECT_EQ(e.evaluate(a, SimTime::zero()), Tristate::kUnknown);
  EXPECT_FALSE(e.resolved(a, SimTime::zero()));
}

TEST(DnfExpr, OneViableRouteResolvesTrue) {
  const DnfExpr e = route_example();
  Assignment a;
  a.set(val(0, Tristate::kTrue));
  a.set(val(1, Tristate::kTrue));
  a.set(val(2, Tristate::kTrue));
  EXPECT_EQ(e.evaluate(a, SimTime::zero()), Tristate::kTrue);
  EXPECT_TRUE(e.resolved(a, SimTime::zero()));
  EXPECT_EQ(e.chosen_action(a, SimTime::zero()), std::size_t{0});
}

TEST(DnfExpr, OneFalseSegmentKillsDisjunctOnly) {
  const DnfExpr e = route_example();
  Assignment a;
  a.set(val(0, Tristate::kFalse));  // route 1 dead
  EXPECT_EQ(e.eval_disjunct(0, a, SimTime::zero()), Tristate::kFalse);
  EXPECT_EQ(e.evaluate(a, SimTime::zero()), Tristate::kUnknown);
}

TEST(DnfExpr, AllRoutesFalseResolvesFalse) {
  const DnfExpr e = route_example();
  Assignment a;
  a.set(val(1, Tristate::kFalse));
  a.set(val(4, Tristate::kFalse));
  EXPECT_EQ(e.evaluate(a, SimTime::zero()), Tristate::kFalse);
  EXPECT_TRUE(e.resolved(a, SimTime::zero()));
  EXPECT_FALSE(e.chosen_action(a, SimTime::zero()).has_value());
}

TEST(DnfExpr, NegatedTerm) {
  DnfExpr e;
  e.add_disjunct(Conjunction{{{LabelId{0}, /*negated=*/true}}});
  Assignment a;
  a.set(val(0, Tristate::kFalse));
  EXPECT_EQ(e.evaluate(a, SimTime::zero()), Tristate::kTrue);
  a.set(val(0, Tristate::kTrue));
  EXPECT_EQ(e.evaluate(a, SimTime::zero()), Tristate::kFalse);
}

TEST(DnfExpr, ExpiryReopensDecision) {
  const DnfExpr e = route_example();
  Assignment a;
  a.set(val(0, Tristate::kTrue, SimTime::zero(), SimTime::seconds(10)));
  a.set(val(1, Tristate::kTrue, SimTime::zero(), SimTime::seconds(10)));
  a.set(val(2, Tristate::kTrue, SimTime::zero(), SimTime::seconds(10)));
  EXPECT_TRUE(e.resolved(a, SimTime::seconds(5)));
  EXPECT_FALSE(e.resolved(a, SimTime::seconds(15)));
}

TEST(DnfExpr, RelevantLabelsInitiallyAll) {
  const DnfExpr e = route_example();
  Assignment a;
  const auto labels = e.relevant_labels(a, SimTime::zero());
  EXPECT_EQ(labels.size(), 6u);
}

TEST(DnfExpr, RelevantLabelsShrinkWithShortCircuit) {
  const DnfExpr e = route_example();
  Assignment a;
  a.set(val(0, Tristate::kFalse));  // kills route 1: B, C irrelevant
  const auto labels = e.relevant_labels(a, SimTime::zero());
  EXPECT_EQ(labels.size(), 3u);
  EXPECT_EQ(labels[0], LabelId{3});
  EXPECT_EQ(labels[1], LabelId{4});
  EXPECT_EQ(labels[2], LabelId{5});
}

TEST(DnfExpr, RelevantLabelsEmptyWhenResolved) {
  const DnfExpr e = route_example();
  Assignment a;
  a.set(val(3, Tristate::kTrue));
  a.set(val(4, Tristate::kTrue));
  a.set(val(5, Tristate::kTrue));
  EXPECT_TRUE(e.relevant_labels(a, SimTime::zero()).empty());
}

TEST(DnfExpr, RelevantLabelsDeduplicated) {
  DnfExpr e;
  e.add_disjunct(Conjunction{{{LabelId{7}}, {LabelId{8}}}});
  e.add_disjunct(Conjunction{{{LabelId{7}}, {LabelId{9}}}});
  Assignment a;
  const auto labels = e.relevant_labels(a, SimTime::zero());
  EXPECT_EQ(labels.size(), 3u);
  EXPECT_EQ(std::count(labels.begin(), labels.end(), LabelId{7}), 1);
}

TEST(DnfExpr, AllLabels) {
  const DnfExpr e = route_example();
  EXPECT_EQ(e.all_labels().size(), 6u);
  DnfExpr shared;
  shared.add_disjunct(Conjunction{{{LabelId{1}}, {LabelId{2}}}});
  shared.add_disjunct(Conjunction{{{LabelId{2}}, {LabelId{3}}}});
  EXPECT_EQ(shared.all_labels().size(), 3u);
}

// Property test: Kleene evaluation agrees with classical Boolean evaluation
// on fully-known random assignments, and is never wrong on partial ones
// (if Kleene says true/false, every completion agrees).
TEST(DnfExpr, KleeneSoundOnRandomExpressions) {
  Rng rng(77);
  for (int trial = 0; trial < 200; ++trial) {
    const std::size_t n_labels = 1 + rng.below(6);
    DnfExpr e;
    const std::size_t n_disj = 1 + rng.below(3);
    for (std::size_t d = 0; d < n_disj; ++d) {
      Conjunction c;
      const std::size_t n_terms = 1 + rng.below(4);
      for (std::size_t t = 0; t < n_terms; ++t) {
        c.terms.push_back(Term{LabelId{rng.below(n_labels)}, rng.chance(0.3)});
      }
      e.add_disjunct(std::move(c));
    }
    // Random partial assignment.
    Assignment partial;
    std::vector<int> state(n_labels);  // 0 unknown, 1 true, 2 false
    for (std::size_t l = 0; l < n_labels; ++l) {
      state[l] = static_cast<int>(rng.below(3));
      if (state[l] == 1) partial.set(val(l, Tristate::kTrue));
      if (state[l] == 2) partial.set(val(l, Tristate::kFalse));
    }
    const Tristate partial_val = e.evaluate(partial, SimTime::zero());

    // Enumerate completions.
    std::vector<std::size_t> unknown;
    for (std::size_t l = 0; l < n_labels; ++l) {
      if (state[l] == 0) unknown.push_back(l);
    }
    bool all_true = true;
    bool all_false = true;
    for (std::uint64_t w = 0; w < (std::uint64_t{1} << unknown.size()); ++w) {
      Assignment full = partial;
      for (std::size_t i = 0; i < unknown.size(); ++i) {
        full.set(val(unknown[i], ((w >> i) & 1) ? Tristate::kTrue
                                                : Tristate::kFalse));
      }
      const Tristate v = e.evaluate(full, SimTime::zero());
      ASSERT_TRUE(is_known(v));  // fully known ⇒ classical value
      all_true &= v == Tristate::kTrue;
      all_false &= v == Tristate::kFalse;
    }
    if (partial_val == Tristate::kTrue) {
      EXPECT_TRUE(all_true);
    }
    if (partial_val == Tristate::kFalse) {
      EXPECT_TRUE(all_false);
    }
    // (Kleene may be unknown when the value is actually determined — that
    // is allowed; it is sound, not complete.)
  }
}

}  // namespace
}  // namespace dde::decision
