#include <gtest/gtest.h>

#include <vector>

#include "common/rng.h"
#include "fusion/belief.h"
#include "fusion/corroboration.h"
#include "fusion/reliability.h"

namespace dde::fusion {
namespace {

TEST(LabelBelief, NeutralPriorStart) {
  LabelBelief b;
  EXPECT_NEAR(b.p_true(), 0.5, 1e-12);
  EXPECT_NEAR(b.confidence(), 0.5, 1e-12);
  EXPECT_EQ(b.decided(0.9), Tristate::kUnknown);
}

TEST(LabelBelief, SingleObservationMatchesBayes) {
  // Prior 0.5, one "true" reading from a 0.8-reliable source:
  // posterior = 0.8.
  LabelBelief b;
  b.observe(true, 0.8);
  EXPECT_NEAR(b.p_true(), 0.8, 1e-12);
  b = LabelBelief{};
  b.observe(false, 0.8);
  EXPECT_NEAR(b.p_true(), 0.2, 1e-12);
}

TEST(LabelBelief, NonNeutralPriorMatchesBayes) {
  // Prior 0.3, reading true with reliability 0.9:
  // posterior = 0.3*0.9 / (0.3*0.9 + 0.7*0.1) = 0.27/0.34.
  LabelBelief b(0.3);
  b.observe(true, 0.9);
  EXPECT_NEAR(b.p_true(), 0.27 / 0.34, 1e-12);
}

TEST(LabelBelief, ConflictingObservationsCancel) {
  LabelBelief b;
  b.observe(true, 0.8);
  b.observe(false, 0.8);
  EXPECT_NEAR(b.p_true(), 0.5, 1e-12);
  EXPECT_EQ(b.observations(), 2);
}

TEST(LabelBelief, UninformativeSourceIsNoOp) {
  LabelBelief b;
  b.observe(true, 0.5);
  EXPECT_NEAR(b.p_true(), 0.5, 1e-12);
}

TEST(LabelBelief, AgreementCompounds) {
  LabelBelief b;
  b.observe(true, 0.8);
  const double after_one = b.p_true();
  b.observe(true, 0.8);
  EXPECT_GT(b.p_true(), after_one);
  // Two agreeing 0.8 observations: odds 16:1 → 16/17.
  EXPECT_NEAR(b.p_true(), 16.0 / 17.0, 1e-9);
}

TEST(LabelBelief, DecidedRespectsThreshold) {
  LabelBelief b;
  b.observe(false, 0.9);
  EXPECT_EQ(b.decided(0.85), Tristate::kFalse);
  EXPECT_EQ(b.decided(0.95), Tristate::kUnknown);
}

TEST(LabelBelief, OrderIrrelevant) {
  Rng rng(1);
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<std::pair<bool, double>> obs;
    for (int i = 0; i < 6; ++i) {
      obs.emplace_back(rng.chance(0.5), rng.uniform(0.55, 0.95));
    }
    LabelBelief forward;
    for (const auto& [r, rel] : obs) forward.observe(r, rel);
    LabelBelief backward;
    for (auto it = obs.rbegin(); it != obs.rend(); ++it) {
      backward.observe(it->first, it->second);
    }
    EXPECT_NEAR(forward.p_true(), backward.p_true(), 1e-9);
  }
}

TEST(MinCorroboration, KnownCounts) {
  // One 0.8 observation gives confidence 0.8; two give 16/17 ≈ 0.94.
  EXPECT_EQ(min_corroborating_observations(0.8, 0.8), 1);
  EXPECT_EQ(min_corroborating_observations(0.8, 0.9), 2);
  EXPECT_EQ(min_corroborating_observations(0.8, 0.94), 2);
  EXPECT_EQ(min_corroborating_observations(0.8, 0.95), 3);
  EXPECT_EQ(min_corroborating_observations(0.99, 0.95), 1);
}

TEST(MinCorroboration, ZeroWhenPriorAlreadyConfident) {
  EXPECT_EQ(min_corroborating_observations(0.8, 0.9, 0.95), 0);
  EXPECT_EQ(min_corroborating_observations(0.8, 0.9, 0.05), 0);
}

TEST(MinCorroboration, CountAchievesThreshold) {
  Rng rng(2);
  for (int trial = 0; trial < 200; ++trial) {
    const double r = rng.uniform(0.55, 0.95);
    const double th = rng.uniform(0.6, 0.99);
    const int k = min_corroborating_observations(r, th);
    LabelBelief exact;
    for (int i = 0; i < k; ++i) exact.observe(true, r);
    EXPECT_GE(exact.confidence() + 1e-9, th);
    if (k > 0) {
      LabelBelief fewer;
      for (int i = 0; i < k - 1; ++i) fewer.observe(true, r);
      EXPECT_LT(fewer.confidence(), th);
    }
  }
}

NoisySource src(std::uint64_t id, double rel, double cost, int max_obs) {
  return NoisySource{SourceId{id}, rel, cost, max_obs};
}

TEST(Corroboration, GreedyAchievesThreshold) {
  const std::vector<NoisySource> sources{src(0, 0.7, 1.0, 3),
                                         src(1, 0.9, 5.0, 2)};
  const auto plan = greedy_corroboration(sources, 0.95);
  EXPECT_TRUE(plan.achievable);
  EXPECT_GE(plan.log_odds, required_log_odds(0.95) - 1e-9);
}

TEST(Corroboration, UnachievableReported) {
  const std::vector<NoisySource> sources{src(0, 0.6, 1.0, 1)};
  const auto plan = greedy_corroboration(sources, 0.99);
  EXPECT_FALSE(plan.achievable);
  const auto exact = exact_corroboration(sources, 0.99);
  EXPECT_FALSE(exact.achievable);
}

TEST(Corroboration, ExactNeverCostsMoreThanGreedy) {
  Rng rng(3);
  int achievable = 0;
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<NoisySource> sources;
    for (std::uint64_t i = 0, n = 1 + rng.below(4); i < n; ++i) {
      sources.push_back(src(i, rng.uniform(0.55, 0.95), rng.uniform(0.5, 5.0),
                            1 + static_cast<int>(rng.below(3))));
    }
    const double th = rng.uniform(0.7, 0.98);
    const auto greedy = greedy_corroboration(sources, th);
    const auto exact = exact_corroboration(sources, th);
    EXPECT_EQ(greedy.achievable, exact.achievable);
    if (exact.achievable) {
      ++achievable;
      EXPECT_LE(exact.cost, greedy.cost + 1e-9);
      EXPECT_GE(exact.log_odds, required_log_odds(th) - 1e-9);
    }
  }
  EXPECT_GT(achievable, 100);
}

TEST(Corroboration, PlanCostsAreConsistent) {
  const std::vector<NoisySource> sources{src(0, 0.8, 2.0, 3),
                                         src(1, 0.7, 1.0, 3)};
  for (const auto& plan : {greedy_corroboration(sources, 0.9),
                           exact_corroboration(sources, 0.9)}) {
    double cost = 0;
    double info = 0;
    for (std::size_t i = 0; i < sources.size(); ++i) {
      cost += plan.counts[i] * sources[i].cost;
      info += plan.counts[i] * log_odds(sources[i].reliability);
    }
    EXPECT_NEAR(plan.cost, cost, 1e-9);
    EXPECT_NEAR(plan.log_odds, info, 1e-9);
  }
}

TEST(Corroboration, RequiredLogOddsAdversePrior) {
  // A prior leaning the wrong way increases the requirement.
  EXPECT_GT(required_log_odds(0.9, 0.2), required_log_odds(0.9, 0.5));
  EXPECT_NEAR(required_log_odds(0.9, 0.5), log_odds(0.9), 1e-12);
}

TEST(ReliabilityProfile, PriorForUnseenSource) {
  ReliabilityProfile profile;
  EXPECT_NEAR(profile.reliability(SourceId{7}), 0.5, 1e-12);
  EXPECT_EQ(profile.tracked_sources(), 0u);
}

TEST(ReliabilityProfile, FeedbackMovesEstimate) {
  ReliabilityProfile profile;
  profile.record(SourceId{1}, true);
  EXPECT_GT(profile.reliability(SourceId{1}), 0.5);
  profile.record(SourceId{2}, false);
  EXPECT_LT(profile.reliability(SourceId{2}), 0.5);
}

TEST(ReliabilityProfile, ConvergesToTrueReliability) {
  Rng rng(4);
  for (double truth : {0.6, 0.8, 0.95}) {
    ReliabilityProfile profile;
    for (int i = 0; i < 2000; ++i) {
      profile.record(SourceId{0}, rng.chance(truth));
    }
    EXPECT_NEAR(profile.reliability(SourceId{0}), truth, 0.03);
    EXPECT_LT(profile.estimate(SourceId{0}).variance(), 1e-3);
  }
}

TEST(ReliabilityProfile, BadAnnotatorInfluenceBounded) {
  Rng rng(5);
  // A good source; a lying annotator with low trust calls everything
  // useless. The estimate must stay near the truthful one.
  ReliabilityProfile trusted_only;
  ReliabilityProfile with_liar;
  for (int i = 0; i < 500; ++i) {
    const bool useful = rng.chance(0.9);
    trusted_only.record(SourceId{0}, useful, 1.0);
    with_liar.record(SourceId{0}, useful, 1.0);
    with_liar.record(SourceId{0}, false, 0.05);  // the liar, barely trusted
  }
  EXPECT_NEAR(with_liar.reliability(SourceId{0}),
              trusted_only.reliability(SourceId{0}), 0.05);
}

TEST(ReliabilityProfile, FullyTrustedLiarDoesDamage) {
  Rng rng(6);
  ReliabilityProfile profile;
  for (int i = 0; i < 500; ++i) {
    profile.record(SourceId{0}, rng.chance(0.9), 1.0);
    profile.record(SourceId{0}, false, 1.0);  // trusted liar
  }
  EXPECT_LT(profile.reliability(SourceId{0}), 0.6);
}

TEST(ReliabilityProfile, UnreliableSourceListing) {
  Rng rng(7);
  ReliabilityProfile profile;
  for (int i = 0; i < 100; ++i) {
    profile.record(SourceId{0}, rng.chance(0.9));
    profile.record(SourceId{1}, rng.chance(0.2));
  }
  profile.record(SourceId{2}, false);  // too few observations to judge
  const auto bad = profile.unreliable_sources(0.5, 3.0);
  ASSERT_EQ(bad.size(), 1u);
  EXPECT_EQ(bad[0], SourceId{1});
}

TEST(ReliabilityProfile, SeparateProfilesDiverge) {
  // Two originators trusting different annotators develop different views
  // of the same source — the paper's pairwise-trust property.
  ReliabilityProfile alice;  // trusts annotator X (accurate)
  ReliabilityProfile bob;    // trusts annotator Y (inverted)
  Rng rng(8);
  for (int i = 0; i < 200; ++i) {
    const bool useful = rng.chance(0.85);
    alice.record(SourceId{0}, useful, 1.0);
    bob.record(SourceId{0}, !useful, 1.0);
  }
  EXPECT_GT(alice.reliability(SourceId{0}), 0.7);
  EXPECT_LT(bob.reliability(SourceId{0}), 0.3);
}

// End-to-end: plan a corroboration, simulate noisy readings, check the
// decision accuracy meets the planned confidence.
TEST(Fusion, PlannedCorroborationMeetsEmpiricalAccuracy) {
  Rng rng(9);
  const std::vector<NoisySource> sources{src(0, 0.8, 1.0, 5),
                                         src(1, 0.7, 0.5, 5)};
  const double threshold = 0.9;
  const auto plan = exact_corroboration(sources, threshold);
  ASSERT_TRUE(plan.achievable);

  int correct = 0;
  int decided = 0;
  const int trials = 4000;
  for (int t = 0; t < trials; ++t) {
    const bool truth = rng.chance(0.5);
    LabelBelief belief;
    for (std::size_t i = 0; i < sources.size(); ++i) {
      for (int k = 0; k < plan.counts[i]; ++k) {
        const bool reading =
            rng.chance(sources[i].reliability) ? truth : !truth;
        belief.observe(reading, sources[i].reliability);
      }
    }
    // Decide MAP regardless of threshold; count accuracy among confident.
    if (belief.decided(threshold) != Tristate::kUnknown) {
      ++decided;
      correct += (belief.decided(threshold) == Tristate::kTrue) == truth;
    }
  }
  ASSERT_GT(decided, trials / 4);
  EXPECT_GE(static_cast<double>(correct) / decided, threshold - 0.02);
}

}  // namespace
}  // namespace dde::fusion
