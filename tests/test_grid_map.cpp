#include "world/grid_map.h"

#include <gtest/gtest.h>

#include <set>

namespace dde::world {
namespace {

TEST(GridMap, SegmentCount) {
  // width*(height+1) horizontal + height*(width+1) vertical edges.
  const GridMap m(8, 8);
  EXPECT_EQ(m.segment_count(), 8u * 9u + 8u * 9u);
  const GridMap m2(3, 2);
  EXPECT_EQ(m2.segment_count(), 3u * 3u + 2u * 4u);
}

TEST(GridMap, SegmentIdsAreDense) {
  const GridMap m(4, 4);
  for (std::size_t i = 0; i < m.segment_count(); ++i) {
    EXPECT_EQ(m.segment(SegmentId{i}).id, SegmentId{i});
  }
}

TEST(GridMap, SegmentThrowsOnBadId) {
  const GridMap m(2, 2);
  EXPECT_THROW((void)m.segment(SegmentId{9999}), std::out_of_range);
  EXPECT_THROW((void)m.segment(SegmentId{}), std::out_of_range);
}

TEST(GridMap, SegmentBetweenAdjacent) {
  const GridMap m(3, 3);
  const auto h = m.segment_between({0, 0}, {1, 0});
  ASSERT_TRUE(h.has_value());
  EXPECT_TRUE(m.segment(*h).horizontal);
  const auto v = m.segment_between({2, 1}, {2, 2});
  ASSERT_TRUE(v.has_value());
  EXPECT_FALSE(m.segment(*v).horizontal);
  // Symmetric.
  EXPECT_EQ(m.segment_between({1, 0}, {0, 0}), h);
}

TEST(GridMap, SegmentBetweenNonAdjacent) {
  const GridMap m(3, 3);
  EXPECT_FALSE(m.segment_between({0, 0}, {2, 0}).has_value());
  EXPECT_FALSE(m.segment_between({0, 0}, {1, 1}).has_value());
  EXPECT_FALSE(m.segment_between({0, 0}, {0, 0}).has_value());
  EXPECT_FALSE(m.segment_between({0, 0}, {0, 9}).has_value());
}

TEST(GridMap, SegmentsNearCoversFootprint) {
  const GridMap m(4, 4);
  const auto near = m.segments_near(2.0, 2.0, 0.6);
  EXPECT_FALSE(near.empty());
  for (SegmentId id : near) {
    const auto& s = m.segment(id);
    EXPECT_LE(std::abs(s.mid_x() - 2.0), 0.6);
    EXPECT_LE(std::abs(s.mid_y() - 2.0), 0.6);
  }
}

TEST(GridMap, SegmentsNearLargeRadiusIsEverything) {
  const GridMap m(3, 3);
  EXPECT_EQ(m.segments_near(1.5, 1.5, 100.0).size(), m.segment_count());
}

TEST(GridMap, RandomIntersectionInRange) {
  const GridMap m(5, 3);
  Rng rng(1);
  for (int i = 0; i < 200; ++i) {
    const auto p = m.random_intersection(rng);
    EXPECT_GE(p.x, 0);
    EXPECT_LE(p.x, 5);
    EXPECT_GE(p.y, 0);
    EXPECT_LE(p.y, 3);
  }
}

TEST(GridMap, MonotoneRouteConnectsEndpoints) {
  const GridMap m(6, 6);
  Rng rng(2);
  for (int i = 0; i < 100; ++i) {
    const auto from = m.random_intersection(rng);
    const auto to = m.random_intersection(rng);
    const Route r = m.random_monotone_route(from, to, rng);
    EXPECT_EQ(r.origin, from);
    EXPECT_EQ(r.destination, to);
    // Length = L1 distance; segments pairwise adjacent along the walk.
    EXPECT_EQ(r.segments.size(), static_cast<std::size_t>(
                                     std::abs(from.x - to.x) +
                                     std::abs(from.y - to.y)));
    Intersection cur = from;
    for (SegmentId id : r.segments) {
      const auto& seg = m.segment(id);
      // The segment must touch the current intersection; step to the other end.
      const bool touches_a = seg.a == cur;
      const bool touches_b = seg.b == cur;
      ASSERT_TRUE(touches_a || touches_b);
      cur = touches_a ? seg.b : seg.a;
    }
    EXPECT_EQ(cur, to);
  }
}

TEST(GridMap, MonotoneRouteSameEndpointsIsEmpty) {
  const GridMap m(3, 3);
  Rng rng(3);
  const Route r = m.random_monotone_route({1, 1}, {1, 1}, rng);
  EXPECT_TRUE(r.segments.empty());
}

TEST(GridMap, RouteChoicesAreDistinctAndFarEnough) {
  const GridMap m(8, 8);
  Rng rng(4);
  for (int trial = 0; trial < 20; ++trial) {
    const auto routes = m.random_route_choices(5, 4, rng);
    ASSERT_FALSE(routes.empty());
    std::set<std::vector<SegmentId>> seen;
    for (const auto& r : routes) {
      EXPECT_TRUE(seen.insert(r.segments).second) << "duplicate route";
      EXPECT_GE(static_cast<int>(r.segments.size()), 4);
      EXPECT_EQ(r.origin, routes[0].origin);
      EXPECT_EQ(r.destination, routes[0].destination);
    }
  }
}

TEST(GridMap, RouteChoicesStraightLineYieldsOne) {
  const GridMap m(8, 1);
  Rng rng(5);
  // With height 1 and min distance 8, origins/destinations can still differ
  // in y by at most 1, so route diversity is limited — the call must not
  // hang or return duplicates.
  const auto routes = m.random_route_choices(5, 8, rng);
  ASSERT_FALSE(routes.empty());
  std::set<std::vector<SegmentId>> seen;
  for (const auto& r : routes) EXPECT_TRUE(seen.insert(r.segments).second);
}

}  // namespace
}  // namespace dde::world
