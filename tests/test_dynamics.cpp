#include "world/dynamics.h"

#include <gtest/gtest.h>

#include <vector>

namespace dde::world {
namespace {

std::vector<SegmentDynamics> uniform_params(std::size_t n, double p,
                                            SimTime holding) {
  return std::vector<SegmentDynamics>(n, SegmentDynamics{p, holding});
}

TEST(ViabilityProcess, ConsistentAnswers) {
  ViabilityProcess vp(uniform_params(4, 0.6, SimTime::seconds(100)), Rng(1));
  for (std::size_t s = 0; s < 4; ++s) {
    for (int t = 0; t < 50; ++t) {
      const SimTime at = SimTime::seconds(t * 37.0);
      const bool first = vp.viable_at(SegmentId{s}, at);
      EXPECT_EQ(vp.viable_at(SegmentId{s}, at), first);
    }
  }
}

TEST(ViabilityProcess, ConsistentAfterOutOfOrderQueries) {
  ViabilityProcess vp(uniform_params(1, 0.5, SimTime::seconds(60)), Rng(2));
  // Query far future first, then re-query earlier times; answers must agree
  // with a replay on an identically-seeded process queried in order.
  ViabilityProcess ordered(uniform_params(1, 0.5, SimTime::seconds(60)), Rng(2));
  const bool late = vp.viable_at(SegmentId{0}, SimTime::seconds(10000));
  std::vector<bool> early;
  for (int t = 0; t <= 100; t += 10) {
    early.push_back(vp.viable_at(SegmentId{0}, SimTime::seconds(t)));
  }
  std::size_t i = 0;
  for (int t = 0; t <= 100; t += 10) {
    EXPECT_EQ(ordered.viable_at(SegmentId{0}, SimTime::seconds(t)), early[i++]);
  }
  EXPECT_EQ(ordered.viable_at(SegmentId{0}, SimTime::seconds(10000)), late);
}

TEST(ViabilityProcess, StationaryProbabilityApproximatelyP) {
  const double p = 0.7;
  ViabilityProcess vp(uniform_params(60, p, SimTime::seconds(50)), Rng(3));
  // Sample each segment at widely spaced times; fraction viable ≈ p.
  int viable = 0;
  int total = 0;
  for (std::size_t s = 0; s < 60; ++s) {
    for (int k = 1; k <= 30; ++k) {
      viable += vp.viable_at(SegmentId{s}, SimTime::seconds(k * 500.0)) ? 1 : 0;
      ++total;
    }
  }
  EXPECT_NEAR(static_cast<double>(viable) / total, p, 0.05);
}

TEST(ViabilityProcess, HoldingTimeScalesWithParameter) {
  // Count state changes over a window: faster holding → more changes.
  auto count_changes = [](SimTime holding) {
    ViabilityProcess vp(uniform_params(30, 0.5, holding), Rng(4));
    int changes = 0;
    for (std::size_t s = 0; s < 30; ++s) {
      bool prev = vp.viable_at(SegmentId{s}, SimTime::zero());
      for (int t = 1; t <= 2000; ++t) {
        const bool cur = vp.viable_at(SegmentId{s}, SimTime::seconds(t));
        if (cur != prev) ++changes;
        prev = cur;
      }
    }
    return changes;
  };
  EXPECT_GT(count_changes(SimTime::seconds(20)),
            2 * count_changes(SimTime::seconds(200)));
}

TEST(ViabilityProcess, NextChangeAfterIsFutureAndFlips) {
  ViabilityProcess vp(uniform_params(5, 0.5, SimTime::seconds(30)), Rng(5));
  for (std::size_t s = 0; s < 5; ++s) {
    SimTime t = SimTime::seconds(10);
    for (int i = 0; i < 20; ++i) {
      const SimTime change = vp.next_change_after(SegmentId{s}, t);
      EXPECT_GT(change, t);
      const bool before = vp.viable_at(SegmentId{s}, t);
      const bool after = vp.viable_at(SegmentId{s}, change);
      EXPECT_NE(before, after) << "state must flip at the change point";
      t = change;
    }
  }
}

TEST(ViabilityProcess, ThrowsOnUnknownSegment) {
  ViabilityProcess vp(uniform_params(2, 0.5, SimTime::seconds(10)), Rng(6));
  EXPECT_THROW((void)vp.viable_at(SegmentId{5}, SimTime::zero()),
               std::out_of_range);
  EXPECT_THROW((void)vp.params(SegmentId{}), std::out_of_range);
}

TEST(ViabilityProcess, ParamsAccessor) {
  std::vector<SegmentDynamics> params{
      SegmentDynamics{0.9, SimTime::seconds(10)},
      SegmentDynamics{0.1, SimTime::seconds(99)}};
  ViabilityProcess vp(params, Rng(7));
  EXPECT_DOUBLE_EQ(vp.params(SegmentId{0}).p_viable, 0.9);
  EXPECT_EQ(vp.params(SegmentId{1}).mean_holding, SimTime::seconds(99));
  EXPECT_EQ(vp.segment_count(), 2u);
}

TEST(ViabilityProcess, ExtremeProbabilities) {
  ViabilityProcess vp(
      {SegmentDynamics{0.999, SimTime::seconds(1000)},
       SegmentDynamics{0.001, SimTime::seconds(1000)}},
      Rng(8));
  int viable0 = 0;
  int viable1 = 0;
  for (int k = 0; k < 50; ++k) {
    viable0 += vp.viable_at(SegmentId{0}, SimTime::seconds(k * 100.0)) ? 1 : 0;
    viable1 += vp.viable_at(SegmentId{1}, SimTime::seconds(k * 100.0)) ? 1 : 0;
  }
  EXPECT_GT(viable0, 40);
  EXPECT_LT(viable1, 10);
}

}  // namespace
}  // namespace dde::world
