#include "sched/lvf.h"

#include <gtest/gtest.h>

#include <vector>

#include "common/rng.h"

namespace dde::sched {
namespace {

RetrievalObject obj(std::uint64_t id, double tx_s, double validity_s) {
  return RetrievalObject{ObjectId{id}, SimTime::seconds(tx_s),
                         SimTime::seconds(validity_s)};
}

DecisionTask task(std::uint64_t id, double arrival_s, double deadline_s,
                  std::vector<RetrievalObject> objects) {
  return DecisionTask{QueryId{id}, SimTime::seconds(arrival_s),
                      SimTime::seconds(deadline_s), std::move(objects)};
}

TEST(ScheduleTask, BackToBackTiming) {
  const auto t = task(0, 0, 100, {obj(0, 3, 100), obj(1, 5, 100)});
  const auto s = schedule_task(t, t.objects, SimTime::zero());
  ASSERT_EQ(s.retrievals.size(), 2u);
  EXPECT_EQ(s.retrievals[0].start, SimTime::zero());
  EXPECT_EQ(s.retrievals[0].finish, SimTime::seconds(3));
  EXPECT_EQ(s.retrievals[1].start, SimTime::seconds(3));
  EXPECT_EQ(s.retrievals[1].finish, SimTime::seconds(8));
  EXPECT_EQ(s.decision_time, SimTime::seconds(8));
  EXPECT_TRUE(s.feasible());
}

TEST(ScheduleTask, StartsNoEarlierThanArrivalOrChannel) {
  const auto t = task(0, 10, 100, {obj(0, 1, 100)});
  const auto s1 = schedule_task(t, t.objects, SimTime::zero());
  EXPECT_EQ(s1.retrievals[0].start, SimTime::seconds(10));
  const auto s2 = schedule_task(t, t.objects, SimTime::seconds(20));
  EXPECT_EQ(s2.retrievals[0].start, SimTime::seconds(20));
}

TEST(ScheduleTask, DeadlineViolationDetected) {
  const auto t = task(0, 0, 7, {obj(0, 3, 100), obj(1, 5, 100)});
  const auto s = schedule_task(t, t.objects, SimTime::zero());
  EXPECT_FALSE(s.deadline_met);
  EXPECT_TRUE(s.all_fresh);
  EXPECT_FALSE(s.feasible());
}

TEST(ScheduleTask, FreshnessViolationDetected) {
  // Object 0 sampled at t=0 with 4s validity; decision at t=8 → stale.
  const auto t = task(0, 0, 100, {obj(0, 3, 4), obj(1, 5, 100)});
  const auto s = schedule_task(t, t.objects, SimTime::zero());
  EXPECT_TRUE(s.deadline_met);
  EXPECT_FALSE(s.all_fresh);
}

TEST(ScheduleTask, EmptyTaskIsTriviallyFeasible) {
  const auto t = task(0, 0, 10, {});
  const auto s = schedule_task(t, t.objects, SimTime::zero());
  EXPECT_TRUE(s.feasible());
  EXPECT_EQ(s.decision_time, SimTime::zero());
}

TEST(OrderObjects, LvfSortsByValidityDescending) {
  const auto t = task(0, 0, 100,
                      {obj(0, 1, 10), obj(1, 1, 30), obj(2, 1, 20)});
  const auto order = order_objects(t, ObjectOrder::kLvf);
  EXPECT_EQ(order[0].id, ObjectId{1});
  EXPECT_EQ(order[1].id, ObjectId{2});
  EXPECT_EQ(order[2].id, ObjectId{0});
}

TEST(OrderObjects, SvfIsReverseOfLvf) {
  const auto t = task(0, 0, 100,
                      {obj(0, 1, 10), obj(1, 1, 30), obj(2, 1, 20)});
  const auto lvf = order_objects(t, ObjectOrder::kLvf);
  const auto svf = order_objects(t, ObjectOrder::kSvf);
  EXPECT_EQ(svf.front().id, lvf.back().id);
  EXPECT_EQ(svf.back().id, lvf.front().id);
}

TEST(OrderObjects, ShortestFirst) {
  const auto t = task(0, 0, 100, {obj(0, 5, 10), obj(1, 1, 10), obj(2, 3, 10)});
  const auto order = order_objects(t, ObjectOrder::kShortestFirst);
  EXPECT_EQ(order[0].id, ObjectId{1});
  EXPECT_EQ(order[2].id, ObjectId{0});
}

TEST(OrderObjects, RandomIsPermutation) {
  const auto t = task(0, 0, 100,
                      {obj(0, 1, 1), obj(1, 1, 2), obj(2, 1, 3), obj(3, 1, 4)});
  Rng rng(1);
  const auto order = order_objects(t, ObjectOrder::kRandom, &rng);
  EXPECT_EQ(order.size(), 4u);
  std::vector<bool> seen(4, false);
  for (const auto& o : order) seen[o.id.value()] = true;
  EXPECT_TRUE(std::all_of(seen.begin(), seen.end(), [](bool b) { return b; }));
}

// Paper Sec. IV-A: LVF feasibility check — an example where only LVF works.
TEST(Lvf, VolatileLastIsTheOnlyFeasibleOrder) {
  // Object 0: tx 2s, validity 3s. Object 1: tx 2s, validity 100s.
  // LVF order (1 then 0): decision at 4s; object 0 sampled at 2s, fresh
  // until 5s ≥ 4s ✓. Reverse order: object 0 sampled at 0s, stale at 4s ✗.
  const auto t = task(0, 0, 10, {obj(0, 2, 3), obj(1, 2, 100)});
  EXPECT_TRUE(single_task_feasible(t));
  const auto bad = schedule_task(
      t, std::vector<RetrievalObject>{obj(0, 2, 3), obj(1, 2, 100)},
      SimTime::zero());
  EXPECT_FALSE(bad.feasible());
}

// The central theorem of [1]: LVF is optimal — if any order is feasible,
// the LVF order is. Verified against brute force on random instances.
TEST(Lvf, OptimalityOnRandomInstances) {
  Rng rng(2024);
  int feasible_count = 0;
  for (int trial = 0; trial < 400; ++trial) {
    const std::size_t n = 1 + rng.below(6);
    std::vector<RetrievalObject> objs;
    for (std::size_t i = 0; i < n; ++i) {
      objs.push_back(obj(i, rng.uniform(0.5, 4.0), rng.uniform(1.0, 20.0)));
    }
    const auto t = task(0, 0, rng.uniform(2.0, 15.0), std::move(objs));
    const bool brute = single_task_feasible_bruteforce(t);
    EXPECT_EQ(single_task_feasible(t), brute);
    feasible_count += brute ? 1 : 0;
  }
  // The generator must produce a healthy mix of feasible and infeasible.
  EXPECT_GT(feasible_count, 50);
  EXPECT_LT(feasible_count, 350);
}

// Cost optimality (Eq. 1): a feasible LVF schedule retrieves each object
// exactly once, so its cost equals the sum of transmission times.
TEST(Lvf, FeasibleScheduleCostsExactlyCostOpt) {
  Rng rng(31);
  for (int trial = 0; trial < 100; ++trial) {
    const std::size_t n = 1 + rng.below(5);
    std::vector<RetrievalObject> objs;
    SimTime cost_opt = SimTime::zero();
    for (std::size_t i = 0; i < n; ++i) {
      objs.push_back(obj(i, rng.uniform(0.5, 3.0), rng.uniform(5.0, 30.0)));
      cost_opt += objs.back().transmission;
    }
    const auto t = task(0, 0, 50.0, std::move(objs));
    if (!single_task_feasible(t)) continue;
    const auto order = order_objects(t, ObjectOrder::kLvf);
    const auto s = schedule_task(t, order, SimTime::zero());
    ChannelSchedule cs;
    cs.tasks.push_back(s);
    EXPECT_EQ(cs.total_cost(), cost_opt);
  }
}

std::vector<DecisionTask> random_task_set(Rng& rng) {
  const std::size_t n_tasks = 2 + rng.below(3);
  std::vector<DecisionTask> tasks;
  for (std::size_t q = 0; q < n_tasks; ++q) {
    std::vector<RetrievalObject> objs;
    for (std::size_t i = 0, n = 1 + rng.below(3); i < n; ++i) {
      objs.push_back(
          obj(q * 10 + i, rng.uniform(0.5, 2.0), rng.uniform(2.0, 15.0)));
    }
    tasks.push_back(task(q, 0, rng.uniform(3.0, 20.0), std::move(objs)));
  }
  return tasks;
}

// Hierarchical band scheduling under activate-on-arrival: the paper's
// min(min validity expiry, deadline) priority is EDF on the effective
// deadline, hence optimal — verified against brute force.
TEST(Bands, MinSlackBandMatchesBruteForceOnArrivalModel) {
  Rng rng(77);
  const auto model = ActivationModel::kActivateOnArrival;
  int feasible_count = 0;
  for (int trial = 0; trial < 300; ++trial) {
    const auto tasks = random_task_set(rng);
    const bool brute = bands_feasible_bruteforce(tasks, model);
    const auto sched = schedule_bands(tasks, TaskOrder::kMinSlackBand,
                                      ObjectOrder::kLvf, nullptr, model);
    EXPECT_EQ(sched.feasible(), brute)
        << "hierarchical min-slack banding must be optimal";
    feasible_count += brute ? 1 : 0;
  }
  EXPECT_GT(feasible_count, 30);
  EXPECT_LT(feasible_count, 270);
}

// Under lazy activation, within-band freshness is start-independent, so
// plain EDF banding is optimal (Jackson's rule) — verified against brute
// force.
TEST(Bands, EdfMatchesBruteForceOnLazyModel) {
  Rng rng(78);
  const auto model = ActivationModel::kLazyActivation;
  for (int trial = 0; trial < 300; ++trial) {
    const auto tasks = random_task_set(rng);
    const bool brute = bands_feasible_bruteforce(tasks, model);
    const auto sched = schedule_bands(tasks, TaskOrder::kEdf,
                                      ObjectOrder::kLvf, nullptr, model);
    EXPECT_EQ(sched.feasible(), brute) << "EDF banding must be optimal";
  }
}

// Baselines are dominated under activate-on-arrival: whenever raw-deadline
// EDF / SJF / declared order find a feasible band schedule, min-slack does
// too (the converse can fail).
TEST(Bands, MinSlackDominatesBaselinesOnArrivalModel) {
  Rng rng(99);
  const auto model = ActivationModel::kActivateOnArrival;
  int minslack_only_wins = 0;
  for (int trial = 0; trial < 400; ++trial) {
    const auto tasks = random_task_set(rng);
    const bool ms = schedule_bands(tasks, TaskOrder::kMinSlackBand,
                                   ObjectOrder::kLvf, nullptr, model)
                        .feasible();
    for (TaskOrder base :
         {TaskOrder::kEdf, TaskOrder::kShortestFirst, TaskOrder::kDeclared}) {
      const bool b = schedule_bands(tasks, base, ObjectOrder::kLvf, nullptr,
                                    model)
                         .feasible();
      EXPECT_TRUE(!b || ms) << "baseline feasible but min-slack not";
      if (ms && !b) ++minslack_only_wins;
    }
  }
  EXPECT_GT(minslack_only_wins, 0) << "expected cases where only min-slack wins";
}

// Under activate-on-arrival, a single task is feasible iff its total
// transmission fits within min(min validity, deadline): retrieval order is
// irrelevant. Cross-check the closed form against the scheduler.
TEST(Bands, ArrivalModelSingleTaskClosedForm) {
  Rng rng(101);
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<RetrievalObject> objs;
    SimTime total = SimTime::zero();
    SimTime min_validity = SimTime::max();
    for (std::size_t i = 0, n = 1 + rng.below(5); i < n; ++i) {
      objs.push_back(obj(i, rng.uniform(0.5, 3.0), rng.uniform(1.0, 15.0)));
      total += objs.back().transmission;
      min_validity = std::min(min_validity, objs.back().validity);
    }
    const auto t = task(0, 0, rng.uniform(2.0, 12.0), std::move(objs));
    const bool expected =
        total <= std::min(min_validity, t.relative_deadline);
    EXPECT_EQ(single_task_feasible(t, ActivationModel::kActivateOnArrival),
              expected);
  }
}

TEST(Bands, TasksScheduledInNonOverlappingBands) {
  std::vector<DecisionTask> tasks{
      task(0, 0, 100, {obj(0, 2, 50), obj(1, 2, 50)}),
      task(1, 0, 100, {obj(10, 3, 50)}),
  };
  const auto s =
      schedule_bands(tasks, TaskOrder::kDeclared, ObjectOrder::kLvf);
  ASSERT_EQ(s.tasks.size(), 2u);
  // Second task's first retrieval starts when the first task finished.
  EXPECT_EQ(s.tasks[1].retrievals[0].start, s.tasks[0].decision_time);
}

TEST(Bands, RespectsArrivalTimes) {
  std::vector<DecisionTask> tasks{
      task(0, 0, 100, {obj(0, 1, 50)}),
      task(1, 10, 100, {obj(10, 1, 50)}),
  };
  const auto s =
      schedule_bands(tasks, TaskOrder::kDeclared, ObjectOrder::kLvf);
  EXPECT_EQ(s.tasks[1].retrievals[0].start, SimTime::seconds(10));
}

TEST(ChannelSchedule, TotalCostSumsTransmissions) {
  std::vector<DecisionTask> tasks{
      task(0, 0, 100, {obj(0, 2, 50), obj(1, 3, 50)}),
      task(1, 0, 100, {obj(10, 4, 50)}),
  };
  const auto s =
      schedule_bands(tasks, TaskOrder::kDeclared, ObjectOrder::kLvf);
  EXPECT_EQ(s.total_cost(), SimTime::seconds(9));
}

#ifdef NDEBUG
// Regression: kRandom with a null rng dereferenced the pointer. Release
// builds now fall back to the declared order; debug builds still assert,
// so these run only where NDEBUG is set.
TEST(OrderObjects, RandomWithNullRngFallsBackToDeclared) {
  const auto t =
      task(0, 0, 100, {obj(0, 1, 10), obj(1, 1, 30), obj(2, 1, 20)});
  const auto order = order_objects(t, ObjectOrder::kRandom, nullptr);
  ASSERT_EQ(order.size(), 3u);
  for (std::size_t i = 0; i < order.size(); ++i) {
    EXPECT_EQ(order[i].id, t.objects[i].id);
  }
}

TEST(Bands, RandomWithNullRngFallsBackToDeclared) {
  std::vector<DecisionTask> tasks{
      task(0, 0, 100, {obj(0, 2, 50)}),
      task(1, 0, 100, {obj(10, 4, 50)}),
  };
  const auto random =
      schedule_bands(tasks, TaskOrder::kRandom, ObjectOrder::kLvf, nullptr);
  const auto declared =
      schedule_bands(tasks, TaskOrder::kDeclared, ObjectOrder::kLvf);
  ASSERT_EQ(random.tasks.size(), declared.tasks.size());
  for (std::size_t i = 0; i < random.tasks.size(); ++i) {
    EXPECT_EQ(random.tasks[i].query, declared.tasks[i].query);
    EXPECT_EQ(random.tasks[i].decision_time, declared.tasks[i].decision_time);
  }
}
#endif  // NDEBUG

}  // namespace
}  // namespace dde::sched
