#include "fault/fault_injector.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "common/rng.h"
#include "des/simulator.h"
#include "fault/fault_plan.h"
#include "fault/gilbert_elliott.h"
#include "net/network.h"
#include "net/topology.h"

namespace dde::fault {
namespace {

net::Packet packet(std::uint64_t bytes) {
  net::Packet p;
  p.bytes = bytes;
  return p;
}

/// Line topology 0 - 1 - ... - (n-1) at 1 Mbps / 1 ms.
struct Harness {
  des::Simulator sim;
  net::Topology topo;
  std::vector<NodeId> nodes;

  explicit Harness(std::size_t n) {
    for (std::size_t i = 0; i < n; ++i) nodes.push_back(topo.add_node());
    for (std::size_t i = 0; i + 1 < n; ++i) {
      topo.add_link(nodes[i], nodes[i + 1], 1e6, SimTime::millis(1));
    }
    topo.compute_routes();
  }

  /// Both directed links of the (a, b) pair.
  std::pair<LinkId, LinkId> pair(std::size_t a, std::size_t b) const {
    return {*topo.link_between(nodes[a], nodes[b]),
            *topo.link_between(nodes[b], nodes[a])};
  }
};

// --- Gilbert–Elliott ------------------------------------------------------

TEST(GilbertElliott, DefaultsAreDisabledIdentityChannel) {
  GilbertElliottParams p;
  EXPECT_FALSE(p.enabled());
  EXPECT_DOUBLE_EQ(p.stationary_loss(), 0.0);
  GilbertElliott ch(p);
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) EXPECT_FALSE(ch.step(rng));
  EXPECT_FALSE(ch.in_burst());
}

TEST(GilbertElliott, ForAverageLossHitsTargetAndBurstLength) {
  const auto p = GilbertElliottParams::for_average_loss(0.05, 8.0);
  EXPECT_TRUE(p.enabled());
  EXPECT_DOUBLE_EQ(p.p_exit_burst, 1.0 / 8.0);
  EXPECT_NEAR(p.stationary_loss(), 0.05, 1e-12);
  // Degenerate ends of the sweep.
  EXPECT_DOUBLE_EQ(
      GilbertElliottParams::for_average_loss(0.0, 8.0).stationary_loss(), 0.0);
  EXPECT_DOUBLE_EQ(
      GilbertElliottParams::for_average_loss(1.0, 8.0).stationary_loss(), 1.0);
}

TEST(GilbertElliott, EmpiricalLossRateAndBurstsMatchParameters) {
  GilbertElliott ch(GilbertElliottParams::for_average_loss(0.2, 8.0));
  Rng rng(42);
  const int steps = 200000;
  int losses = 0;
  int runs = 0;
  int run_len = 0;
  long long run_total = 0;
  for (int i = 0; i < steps; ++i) {
    if (ch.step(rng)) {
      ++losses;
      ++run_len;
    } else if (run_len > 0) {
      ++runs;
      run_total += run_len;
      run_len = 0;
    }
  }
  EXPECT_NEAR(static_cast<double>(losses) / steps, 0.2, 0.02);
  ASSERT_GT(runs, 0);
  // With loss_bad = 1, a loss run is exactly a stay in the bad state:
  // geometric with mean 1 / p_exit = 8.
  EXPECT_NEAR(static_cast<double>(run_total) / runs, 8.0, 1.0);
}

TEST(GilbertElliott, DeterministicPerSeed) {
  auto trace = [](std::uint64_t seed) {
    GilbertElliott ch(GilbertElliottParams::for_average_loss(0.3, 4.0));
    Rng rng(seed);
    std::vector<bool> out;
    for (int i = 0; i < 500; ++i) out.push_back(ch.step(rng));
    return out;
  };
  EXPECT_EQ(trace(7), trace(7));
  EXPECT_NE(trace(7), trace(8));
}

// --- FaultPlan / FaultSpec ------------------------------------------------

TEST(FaultPlan, OutageHelpersEmitDownAndUpEvents) {
  FaultPlan plan;
  EXPECT_TRUE(plan.empty());
  plan.add_link_outage(LinkId{3}, SimTime::seconds(10), SimTime::seconds(20));
  plan.add_link_outage(LinkId{4}, SimTime::seconds(10));  // permanent
  plan.add_node_crash(NodeId{2}, SimTime::seconds(5), SimTime::seconds(6));
  EXPECT_FALSE(plan.empty());
  ASSERT_EQ(plan.events.size(), 5u);
  EXPECT_EQ(plan.events[0].kind, FaultEvent::Kind::kLinkDown);
  EXPECT_EQ(plan.events[0].at, SimTime::seconds(10));
  EXPECT_EQ(plan.events[1].kind, FaultEvent::Kind::kLinkUp);
  EXPECT_EQ(plan.events[1].at, SimTime::seconds(20));
  EXPECT_EQ(plan.events[2].kind, FaultEvent::Kind::kLinkDown);
  EXPECT_EQ(plan.events[3].kind, FaultEvent::Kind::kNodeDown);
  EXPECT_EQ(plan.events[4].kind, FaultEvent::Kind::kNodeUp);
}

TEST(FaultSpec, RealizeDownsWholeBidirectionalPairs) {
  Harness h(6);  // line: 5 pairs, 10 directed links
  FaultSpec spec;
  spec.link_outage_fraction = 1.0;
  spec.outage_at = SimTime::seconds(5);
  spec.outage_duration = SimTime::seconds(3);
  Rng rng(11);
  const FaultPlan plan = spec.realize(h.topo, rng);
  // Every pair downed and healed: 2 directed downs + 2 ups per pair.
  std::size_t downs = 0;
  std::size_t ups = 0;
  for (const auto& ev : plan.events) {
    if (ev.kind == FaultEvent::Kind::kLinkDown) {
      EXPECT_EQ(ev.at, SimTime::seconds(5));
      ++downs;
    } else if (ev.kind == FaultEvent::Kind::kLinkUp) {
      EXPECT_EQ(ev.at, SimTime::seconds(8));
      ++ups;
    }
  }
  EXPECT_EQ(downs, h.topo.link_count());
  EXPECT_EQ(ups, h.topo.link_count());
}

TEST(FaultSpec, RealizeIsDeterministicPerRngState) {
  Harness h(8);
  FaultSpec spec;
  spec.link_outage_fraction = 0.5;
  spec.outage_at = SimTime::seconds(1);
  auto subjects = [&](std::uint64_t seed) {
    Rng rng(seed);
    std::vector<std::uint64_t> out;
    for (const auto& ev : spec.realize(h.topo, rng).events) {
      out.push_back(ev.subject);
    }
    return out;
  };
  EXPECT_EQ(subjects(3), subjects(3));
}

TEST(FaultSpec, RealizeNeverCrashesNodeZero) {
  Harness h(5);
  FaultSpec spec;
  spec.node_crash_fraction = 1.0;
  spec.crash_at = SimTime::seconds(1);
  Rng rng(2);
  const FaultPlan plan = spec.realize(h.topo, rng);
  std::size_t crashes = 0;
  for (const auto& ev : plan.events) {
    ASSERT_EQ(ev.kind, FaultEvent::Kind::kNodeDown);
    EXPECT_NE(ev.subject, 0u) << "the herald must stay alive";
    ++crashes;
  }
  EXPECT_EQ(crashes, 4u);
}

TEST(FaultSpec, EmptySpecRealizesEmptyPlan) {
  Harness h(3);
  FaultSpec spec;
  EXPECT_TRUE(spec.empty());
  Rng rng(1);
  EXPECT_TRUE(spec.realize(h.topo, rng).empty());
}

// --- FaultInjector --------------------------------------------------------

TEST(FaultInjector, EmptyPlanIsANoOp) {
  Harness h(2);
  net::Network net(h.sim, h.topo);
  FaultInjector inj(h.sim, h.topo, net, FaultPlan{}, 99);
  int delivered = 0;
  net.set_handler(h.nodes[1], [&](NodeId, const net::Packet&) { ++delivered; });
  net.send(h.nodes[0], h.nodes[1], packet(1000));
  h.sim.run_until();
  EXPECT_EQ(delivered, 1);
  EXPECT_EQ(net.stats().dropped, 0u);
  EXPECT_EQ(inj.stats().link_downs, 0u);
  EXPECT_EQ(inj.stats().reroutes, 0u);
  EXPECT_EQ(inj.stats().burst_drops, 0u);
}

TEST(FaultInjector, LinkDownDropsQueuedAndInFlightPackets) {
  Harness h(2);
  net::Network net(h.sim, h.topo);
  FaultPlan plan;
  const auto [fwd, rev] = h.pair(0, 1);
  plan.add_link_outage(fwd, SimTime::millis(500));
  plan.add_link_outage(rev, SimTime::millis(500));
  FaultInjector inj(h.sim, h.topo, net, std::move(plan), 99);
  int delivered = 0;
  net.set_handler(h.nodes[1], [&](NodeId, const net::Packet&) { ++delivered; });
  // 125 KB at 1 Mbps = 1 s each: one on the wire, two queued when the link
  // goes down at 0.5 s.
  for (int i = 0; i < 3; ++i) {
    EXPECT_TRUE(net.send(h.nodes[0], h.nodes[1], packet(125000)));
  }
  h.sim.run_until();
  EXPECT_EQ(delivered, 0);
  EXPECT_EQ(net.stats().dropped, 3u);
  EXPECT_EQ(net.stats().link_down_drops, 3u);
  EXPECT_EQ(net.stats().bytes, 3u * 125000u) << "lost bytes stay charged";
  EXPECT_EQ(inj.stats().link_downs, 2u);
  EXPECT_GE(inj.stats().reroutes, 1u);
  EXPECT_FALSE(net.link_up(fwd));
}

TEST(FaultInjector, HealedLinkCarriesTrafficAgain) {
  Harness h(2);
  net::Network net(h.sim, h.topo);
  FaultPlan plan;
  const auto [fwd, rev] = h.pair(0, 1);
  plan.add_link_outage(fwd, SimTime::millis(500), SimTime::seconds(2));
  plan.add_link_outage(rev, SimTime::millis(500), SimTime::seconds(2));
  FaultInjector inj(h.sim, h.topo, net, std::move(plan), 99);
  int delivered = 0;
  net.set_handler(h.nodes[1], [&](NodeId, const net::Packet&) { ++delivered; });
  net.send(h.nodes[0], h.nodes[1], packet(125000));  // severed mid-wire
  bool resent = false;
  h.sim.schedule_at(SimTime::seconds(3), [&] {
    resent = net.send(h.nodes[0], h.nodes[1], packet(125000));
  });
  h.sim.run_until();
  EXPECT_TRUE(resent);
  EXPECT_EQ(delivered, 1);
  EXPECT_EQ(net.stats().dropped, 1u);
  EXPECT_EQ(inj.stats().link_downs, 2u);
  EXPECT_EQ(inj.stats().link_ups, 2u);
  EXPECT_TRUE(net.link_up(fwd));
}

TEST(FaultInjector, ReroutesAroundADownedLink) {
  // Diamond: 0 - 1 - 2 and 0 - 3 - 2. Downing the pair the current route
  // uses must flip next_hop(0, 2) to the other side, transparently.
  des::Simulator sim;
  net::Topology topo;
  std::vector<NodeId> n;
  for (int i = 0; i < 4; ++i) n.push_back(topo.add_node());
  topo.add_link(n[0], n[1], 1e6, SimTime::millis(1));
  topo.add_link(n[1], n[2], 1e6, SimTime::millis(1));
  topo.add_link(n[0], n[3], 1e6, SimTime::millis(1));
  topo.add_link(n[3], n[2], 1e6, SimTime::millis(1));
  topo.compute_routes();
  net::Network net(sim, topo);
  const NodeId via = *topo.next_hop(n[0], n[2]);
  const NodeId other = via == n[1] ? n[3] : n[1];

  FaultPlan plan;
  plan.add_link_outage(*topo.link_between(n[0], via), SimTime::seconds(1));
  plan.add_link_outage(*topo.link_between(via, n[0]), SimTime::seconds(1));
  FaultInjector inj(sim, topo, net, std::move(plan), 99);

  int delivered = 0;
  net.set_handler(n[2], [&](NodeId, const net::Packet&) { ++delivered; });
  sim.schedule_at(SimTime::seconds(2), [&] {
    const NodeId hop = *net.next_hop(n[0], n[2]);
    EXPECT_EQ(hop, other);
    EXPECT_TRUE(net.send(n[0], hop, packet(1000)));
  });
  sim.run_until();
  EXPECT_EQ(delivered, 0) << "first hop only; the relay is app-level";
  EXPECT_EQ(inj.stats().reroutes, 1u);
  EXPECT_EQ(*topo.hop_distance(n[0], n[2]), 2u) << "other side still 2 hops";
}

TEST(FaultInjector, SimultaneousEventsCoalesceIntoOneReroute) {
  Harness h(4);
  net::Network net(h.sim, h.topo);
  FaultPlan plan;
  const auto [a, ar] = h.pair(0, 1);
  const auto [b, br] = h.pair(2, 3);
  for (LinkId l : {a, ar, b, br}) {
    plan.add_link_outage(l, SimTime::seconds(1));
  }
  FaultInjector inj(h.sim, h.topo, net, std::move(plan), 99);
  h.sim.run_until();
  EXPECT_EQ(inj.stats().link_downs, 4u);
  EXPECT_EQ(inj.stats().reroutes, 1u)
      << "four same-instant downs recompute routes once";
}

TEST(FaultInjector, CrashedNodeHearsNothingAndSendsNothing) {
  Harness h(2);
  net::Network net(h.sim, h.topo);
  FaultPlan plan;
  plan.add_node_crash(h.nodes[1], SimTime::millis(100), SimTime::seconds(5));
  FaultInjector inj(h.sim, h.topo, net, std::move(plan), 99);
  int delivered = 0;
  net.set_handler(h.nodes[1], [&](NodeId, const net::Packet&) { ++delivered; });
  // Arrives at ~1.001 s, well after the crash: dropped at delivery.
  net.send(h.nodes[0], h.nodes[1], packet(125000));
  bool crashed_send = true;
  bool healed_send = false;
  h.sim.schedule_at(SimTime::seconds(2), [&] {
    crashed_send = net.send(h.nodes[1], h.nodes[0], packet(100));
  });
  h.sim.schedule_at(SimTime::seconds(6), [&] {
    healed_send = net.send(h.nodes[1], h.nodes[0], packet(100));
  });
  h.sim.run_until();
  EXPECT_EQ(delivered, 0);
  EXPECT_EQ(net.stats().dropped, 1u);
  EXPECT_EQ(net.stats().link_down_drops, 1u);
  EXPECT_FALSE(crashed_send) << "a crashed node cannot transmit";
  EXPECT_TRUE(healed_send);
  EXPECT_EQ(inj.stats().node_downs, 1u);
  EXPECT_EQ(inj.stats().node_ups, 1u);
}

TEST(FaultInjector, BurstLossDropsAndAccountsPackets) {
  Harness h(2);
  net::Network net(h.sim, h.topo);
  FaultPlan plan;
  plan.burst = GilbertElliottParams::for_average_loss(0.5, 4.0);
  FaultInjector inj(h.sim, h.topo, net, std::move(plan), 99);
  int delivered = 0;
  net.set_handler(h.nodes[1], [&](NodeId, const net::Packet&) { ++delivered; });
  const int sent = 500;
  for (int i = 0; i < sent; ++i) {
    net.send(h.nodes[0], h.nodes[1], packet(10));
  }
  h.sim.run_until();
  EXPECT_EQ(net.stats().dropped + static_cast<std::uint64_t>(delivered),
            static_cast<std::uint64_t>(sent));
  EXPECT_EQ(net.stats().dropped, inj.stats().burst_drops);
  EXPECT_GT(inj.stats().burst_drops, 0u);
  EXPECT_GT(delivered, 0);
  EXPECT_NEAR(static_cast<double>(inj.stats().burst_drops) / sent, 0.5, 0.1);
}

TEST(FaultInjector, BurstLossDeterministicPerSeed) {
  auto run = [](std::uint64_t seed) {
    Harness h(2);
    net::Network net(h.sim, h.topo);
    FaultPlan plan;
    plan.burst = GilbertElliottParams::for_average_loss(0.3, 4.0);
    FaultInjector inj(h.sim, h.topo, net, std::move(plan), seed);
    net.set_handler(h.nodes[1], [](NodeId, const net::Packet&) {});
    for (int i = 0; i < 400; ++i) {
      net.send(h.nodes[0], h.nodes[1], packet(10));
    }
    h.sim.run_until();
    return inj.stats().burst_drops;
  };
  EXPECT_EQ(run(5), run(5));
  EXPECT_NE(run(5), run(6));  // overwhelmingly likely
}

}  // namespace
}  // namespace dde::fault
