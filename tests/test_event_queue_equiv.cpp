// Trajectory equivalence: the ladder-queue kernel (des::Simulator) must
// execute the byte-identical (when, id) sequence the frozen
// std::priority_queue kernel (des::ReferenceSimulator) produces, on stress
// patterns covering cancellation, compaction, same-time ties, past-time
// clamps, staged horizons, and far-future rung rebuilds.
//
// Both kernels are driven through the same deterministic script (all
// decisions come from a shared-seed Rng and script-local state, never from
// kernel internals), so any divergence is an ordering bug in the new
// engine, not script noise.
#include <gtest/gtest.h>

#include <cstdint>
#include <functional>
#include <vector>

#include "common/rng.h"
#include "des/reference_kernel.h"
#include "des/simulator.h"

namespace dde::des {
namespace {

struct Fired {
  std::int64_t when_us;
  int id;
  bool operator==(const Fired&) const = default;
};

/// One executed-event trace: every callback records (now, script id) in
/// execution order.
using Trace = std::vector<Fired>;

/// Randomized schedule/cancel script, identical for any kernel with the
/// schedule_at/schedule_after/cancel/run_until interface.
template <typename Sim>
Trace run_mixed_script(std::uint64_t seed) {
  Sim sim;
  Trace trace;
  Rng rng(seed);
  std::vector<decltype(sim.schedule_at(SimTime{}, nullptr))> handles;
  int next_id = 0;

  const auto record = [&](int id) {
    trace.push_back(Fired{sim.now().count(), id});
  };

  for (int round = 0; round < 40; ++round) {
    // Burst of schedules with heavy time ties (10 distinct times/round).
    for (int i = 0; i < 200; ++i) {
      const SimTime when =
          sim.now() + SimTime::micros(static_cast<SimTime::rep>(
                          rng.below(10) * 1000));
      const int id = next_id++;
      handles.push_back(sim.schedule_at(when, [&record, id] { record(id); }));
    }
    // Cancel a random half of the still-tracked handles (some already ran:
    // both kernels must agree those cancels return false).
    for (std::size_t i = 0; i < handles.size(); ++i) {
      if (rng.chance(0.5)) sim.cancel(handles[i]);
    }
    handles.clear();
    // Self-scheduling chain with zero and tiny delays (FIFO-at-now ties).
    const int chain_id = next_id;
    next_id += 5;
    std::function<void(int)> chain = [&](int depth) {
      record(chain_id + depth);
      if (depth < 4) {
        sim.schedule_after(
            SimTime::micros(static_cast<SimTime::rep>(rng.below(2))),
            [&chain, depth] { chain(depth + 1); });
      }
    };
    sim.schedule_after(SimTime::micros(1), [&chain] { chain(0); });
    // Past-time schedule from within a callback: clamps to now(), runs
    // after everything already queued at now().
    const int clamp_id = next_id++;
    sim.schedule_after(SimTime::micros(2), [&, clamp_id] {
      sim.schedule_at(SimTime::zero(), [&record, clamp_id] {
        record(clamp_id);
      });
    });
    // Staged horizon: run only part of the timeline, then keep scripting.
    sim.run_until(sim.now() + SimTime::millis(4));
  }
  sim.run_until();
  return trace;
}

/// Cancel/re-schedule churn: repeatedly tombstones the same logical timer,
/// forcing both kernels through their compaction paths (>64 dead events).
template <typename Sim>
Trace run_churn_script(std::uint64_t seed) {
  Sim sim;
  Trace trace;
  Rng rng(seed);
  const auto record = [&](int id) {
    trace.push_back(Fired{sim.now().count(), id});
  };

  auto watchdog = sim.schedule_at(SimTime::seconds(1), [&record] { record(-1); });
  for (int i = 0; i < 5000; ++i) {
    sim.cancel(watchdog);
    const int id = i;
    watchdog = sim.schedule_at(
        SimTime::seconds(1) + SimTime::micros(static_cast<SimTime::rep>(
                                  rng.below(500))),
        [&record, id] { record(id); });
    if (i % 97 == 0) {
      sim.schedule_at(
          SimTime::micros(static_cast<SimTime::rep>(i)),
          [&record, id] { record(1000000 + id); });
    }
  }
  sim.run_until();
  return trace;
}

/// Far-future spread: exercises top-band overflow and repeated rung
/// rebuilds (spans from microseconds to hours), plus same-bucket clusters.
template <typename Sim>
Trace run_spread_script(std::uint64_t seed) {
  Sim sim;
  Trace trace;
  Rng rng(seed);
  const auto record = [&](int id) {
    trace.push_back(Fired{sim.now().count(), id});
  };
  int next_id = 0;
  for (int i = 0; i < 3000; ++i) {
    SimTime when;
    switch (rng.below(3)) {
      case 0:  // cluster: many events in one ~millisecond
        when = SimTime::seconds(10) + SimTime::micros(
                   static_cast<SimTime::rep>(rng.below(1000)));
        break;
      case 1:  // mid-range
        when = SimTime::millis(static_cast<SimTime::rep>(rng.below(60000)));
        break;
      default:  // far future, hours out
        when = SimTime::seconds(3600) * static_cast<SimTime::rep>(
                   1 + rng.below(24));
        break;
    }
    const int id = next_id++;
    sim.schedule_at(when, [&record, id] { record(id); });
  }
  sim.run_until();
  return trace;
}

TEST(EventQueueEquivalence, MixedScheduleCancelTrajectory) {
  for (std::uint64_t seed : {1u, 7u, 42u}) {
    const Trace ladder = run_mixed_script<Simulator>(seed);
    const Trace reference = run_mixed_script<ReferenceSimulator>(seed);
    ASSERT_FALSE(ladder.empty());
    EXPECT_EQ(ladder, reference) << "seed " << seed;
  }
}

TEST(EventQueueEquivalence, CancelChurnCompactionTrajectory) {
  const Trace ladder = run_churn_script<Simulator>(11);
  const Trace reference = run_churn_script<ReferenceSimulator>(11);
  ASSERT_FALSE(ladder.empty());
  EXPECT_EQ(ladder, reference);
}

TEST(EventQueueEquivalence, FarFutureSpreadTrajectory) {
  const Trace ladder = run_spread_script<Simulator>(23);
  const Trace reference = run_spread_script<ReferenceSimulator>(23);
  ASSERT_EQ(ladder.size(), 3000u);
  EXPECT_EQ(ladder, reference);
}

TEST(EventQueueEquivalence, CountersMatchAfterRun) {
  Simulator ladder;
  ReferenceSimulator reference;
  Rng rng_a(5);
  Rng rng_b(5);
  const auto drive = [](auto& sim, Rng& rng) {
    for (int i = 0; i < 1000; ++i) {
      auto h = sim.schedule_at(
          SimTime::micros(static_cast<SimTime::rep>(rng.below(5000))), [] {});
      if (rng.chance(0.3)) sim.cancel(h);
    }
    sim.run_until(SimTime::millis(2));
  };
  drive(ladder, rng_a);
  drive(reference, rng_b);
  EXPECT_EQ(ladder.executed_events(), reference.executed_events());
  EXPECT_EQ(ladder.pending_events(), reference.pending_events());
  EXPECT_EQ(ladder.now(), reference.now());
}

/// Same-time FIFO across band boundaries: events at one instant scheduled
/// before AND after a horizon-stop must still run in insertion order.
TEST(EventQueueEquivalence, TieOrderAcrossHorizonStops) {
  const auto script = [](auto& sim) {
    std::vector<int> order;
    for (int i = 0; i < 50; ++i) {
      sim.schedule_at(SimTime::seconds(2),
                      [&order, i] { order.push_back(i); });
    }
    sim.run_until(SimTime::seconds(1));
    for (int i = 50; i < 100; ++i) {
      sim.schedule_at(SimTime::seconds(2),
                      [&order, i] { order.push_back(i); });
    }
    sim.run_until();
    return order;
  };
  Simulator ladder;
  ReferenceSimulator reference;
  EXPECT_EQ(script(ladder), script(reference));
}

}  // namespace
}  // namespace dde::des
