#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "athena/obs_adapters.h"
#include "obs/bench_report.h"
#include "obs/histogram.h"
#include "obs/json.h"
#include "obs/metric_registry.h"
#include "obs/trace.h"
#include "scenario/route_scenario.h"

namespace dde::obs {
namespace {

// ---------------------------------------------------------------------------
// JSON
// ---------------------------------------------------------------------------

TEST(Json, RoundTripsDocument) {
  const std::string text =
      R"({"a":[1,2.5,true,null,"x\"y"],"b":{"nested":-3},"c":""})";
  std::string error;
  const json::Value v = json::Value::parse(text, &error);
  EXPECT_TRUE(error.empty()) << error;
  ASSERT_TRUE(v.is_object());
  EXPECT_EQ(v.find("a")->as_array().size(), 5u);
  EXPECT_EQ(v.find("a")->as_array()[4].as_string(), "x\"y");
  EXPECT_EQ(v.find("b")->find("nested")->as_number(), -3.0);
  // dump → parse → dump is a fixed point (keys are map-sorted).
  const std::string once = v.dump();
  const json::Value again = json::Value::parse(once, &error);
  EXPECT_TRUE(error.empty()) << error;
  EXPECT_EQ(again.dump(), once);
}

TEST(Json, DeterministicKeyOrder) {
  json::Object o;
  o["zebra"] = json::Value(1);
  o["alpha"] = json::Value(2);
  EXPECT_EQ(json::Value(o).dump(), R"({"alpha":2,"zebra":1})");
}

TEST(Json, IntegersPrintWithoutDecimalPoint) {
  EXPECT_EQ(json::number_to_string(42.0), "42");
  EXPECT_EQ(json::number_to_string(-7.0), "-7");
  EXPECT_EQ(json::Value(1.5).dump(), "1.5");
}

TEST(Json, MalformedInputsFailWithDiagnostic) {
  for (const char* bad :
       {"{", "[1,]", "{\"a\":}", "tru", "\"unterminated", "01", "{}x",
        "{\"a\" 1}", "[1 2]"}) {
    std::string error;
    const json::Value v = json::Value::parse(bad, &error);
    EXPECT_FALSE(error.empty()) << "accepted: " << bad;
    EXPECT_TRUE(v.is_null());
  }
}

// ---------------------------------------------------------------------------
// Histogram
// ---------------------------------------------------------------------------

TEST(Histogram, BucketAssignmentIsDeterministic) {
  Histogram h({1.0, 10.0, 100.0});
  // Boundary samples land in the bucket whose bound equals them
  // (bounds[i-1] < x <= bounds[i]), overflow catches the rest.
  for (double x : {0.5, 1.0, 1.5, 10.0, 99.0, 100.0, 101.0}) h.add(x);
  EXPECT_EQ(h.counts(), (std::vector<std::uint64_t>{2, 2, 2, 1}));
  EXPECT_EQ(h.count(), 7u);
  EXPECT_DOUBLE_EQ(h.min(), 0.5);
  EXPECT_DOUBLE_EQ(h.max(), 101.0);

  // Same samples, any order → identical counts.
  Histogram g({1.0, 10.0, 100.0});
  for (double x : {101.0, 100.0, 99.0, 10.0, 1.5, 1.0, 0.5}) g.add(x);
  EXPECT_EQ(g.counts(), h.counts());
}

TEST(Histogram, MergeAddsCountsAndAdoptsBounds) {
  Histogram a({1.0, 2.0});
  a.add(0.5);
  Histogram b({1.0, 2.0});
  b.add(1.5);
  b.add(5.0);
  a.merge(b);
  EXPECT_EQ(a.counts(), (std::vector<std::uint64_t>{1, 1, 1}));
  EXPECT_EQ(a.count(), 3u);
  EXPECT_DOUBLE_EQ(a.max(), 5.0);

  Histogram empty;
  empty.merge(a);  // adopts a's bounds and counts
  EXPECT_EQ(empty.bounds(), a.bounds());
  EXPECT_EQ(empty.counts(), a.counts());
}

// ---------------------------------------------------------------------------
// MetricRegistry + adapters
// ---------------------------------------------------------------------------

TEST(MetricRegistry, SerializationIsNameSorted) {
  MetricRegistry reg;
  reg.counter("z.last") = 3;
  reg.counter("a.first") = 1;
  reg.gauge("m.middle") = 0.5;
  const std::string dumped = reg.to_json().dump();
  EXPECT_LT(dumped.find("a.first"), dumped.find("z.last"));
  EXPECT_EQ(reg.size(), 3u);
}

TEST(MetricRegistry, InternedHandlesShareCellsWithNamedAccessors) {
  MetricRegistry reg;
  CounterHandle packets = reg.intern_counter("net.packets");
  GaugeHandle load = reg.intern_gauge("sched.load");
  HistogramHandle lat = reg.intern_histogram("net.latency_s", {1.0, 10.0});

  packets.inc();
  packets.inc(4);
  load.set(0.25);
  load.add(0.5);
  lat.observe(0.5);
  lat.observe(5.0);

  // Handle writes are visible through the string-keyed accessors...
  EXPECT_EQ(reg.counter("net.packets"), 5u);
  EXPECT_DOUBLE_EQ(reg.gauge("sched.load"), 0.75);
  EXPECT_EQ(reg.histogram("net.latency_s").count(), 2u);
  EXPECT_EQ(reg.histogram("net.latency_s").counts(),
            (std::vector<std::uint64_t>{1, 1, 0}));
  // ...and accessor writes are visible through the handles.
  reg.counter("net.packets") += 10;
  EXPECT_EQ(packets.value(), 15u);
  reg.gauge("sched.load") = 2.0;
  EXPECT_DOUBLE_EQ(load.value(), 2.0);
  EXPECT_EQ(lat.histogram().count(), 2u);
}

TEST(MetricRegistry, InternedHandlesSurviveLaterRegistrations) {
  // std::map nodes are pointer-stable: handles interned at wiring time must
  // stay valid as other metrics register around them.
  MetricRegistry reg;
  CounterHandle first = reg.intern_counter("m.first");
  first.inc();
  for (int i = 0; i < 200; ++i) {
    reg.counter("extra.counter." + std::to_string(i)) = 1;
    reg.gauge("extra.gauge." + std::to_string(i)) = 1.0;
  }
  first.inc();
  EXPECT_EQ(first.value(), 2u);
  EXPECT_EQ(reg.counter("m.first"), 2u);
  // Interning the same name twice yields the same cell.
  CounterHandle again = reg.intern_counter("m.first");
  again.inc();
  EXPECT_EQ(first.value(), 3u);
}

TEST(MetricRegistry, InternedMetricsSerializeLikeNamedOnes) {
  MetricRegistry reg;
  reg.intern_counter("z.interned").inc(3);
  reg.counter("a.named") = 1;
  const std::string dumped = reg.to_json().dump();
  EXPECT_NE(dumped.find("\"z.interned\":3"), std::string::npos);
  EXPECT_LT(dumped.find("a.named"), dumped.find("z.interned"));
  EXPECT_EQ(reg.size(), 2u);
}

TEST(MetricRegistry, AdaptersPublishEveryStruct) {
  MetricRegistry reg;

  athena::AthenaMetrics m;
  m.queries_issued = 10;
  m.queries_resolved = 9;
  m.object_bytes = 1234;
  publish(reg, m);
  EXPECT_EQ(reg.counter("athena.queries_issued"), 10u);
  EXPECT_DOUBLE_EQ(reg.gauge("athena.resolution_ratio"), 0.9);

  net::TrafficStats t;
  t.packets = 7;
  t.dropped = 2;
  publish(reg, t);
  EXPECT_EQ(reg.counter("net.packets"), 7u);

  cache::CacheStats c;
  c.hits = 3;
  c.misses = 1;
  c.refreshes = 5;
  c.expired_drops = 2;
  c.invalidated = 4;
  publish(reg, c, "cache.object.");
  EXPECT_EQ(reg.counter("cache.object.refreshes"), 5u);
  EXPECT_EQ(reg.counter("cache.object.expired_drops"), 2u);
  EXPECT_EQ(reg.counter("cache.object.invalidated"), 4u);
  EXPECT_DOUBLE_EQ(reg.gauge("cache.object.hit_ratio"), 0.75);
}

// ---------------------------------------------------------------------------
// TraceSink
// ---------------------------------------------------------------------------

TEST(TraceSink, JsonlSchemaIsStable) {
  // Golden lines: this IS the wire schema. A change here is a breaking
  // change for every trace consumer and must be deliberate.
  Event ev;
  ev.kind = EventKind::kDecide;
  ev.at = SimTime::seconds(1.5);
  ev.node = 3;
  ev.query = 3000001;
  ev.subject = 2;
  ev.bytes = 0;
  ev.value = 0.75;
  EXPECT_EQ(TraceSink::to_jsonl(ev),
            R"({"t":1.500000,"kind":"decide","node":3,"query":3000001,)"
            R"("subject":2,"bytes":0,"value":0.75})");

  Event hop;
  hop.kind = EventKind::kHopSend;
  hop.at = SimTime::millis(2);
  hop.node = 1;
  hop.subject = 4;
  hop.bytes = 512;
  EXPECT_EQ(TraceSink::to_jsonl(hop),
            R"({"t":0.002000,"kind":"hop_send","node":1,"query":0,)"
            R"("subject":4,"bytes":512,"value":0})");

  // Every kind has a stable, non-"?" name, and each JSONL line parses back
  // as JSON with the expected fields.
  for (int k = 0; k <= static_cast<int>(EventKind::kRecoveryHello); ++k) {
    Event e;
    e.kind = static_cast<EventKind>(k);
    EXPECT_STRNE(to_string(e.kind), "?");
    std::string error;
    const json::Value parsed = json::Value::parse(TraceSink::to_jsonl(e), &error);
    EXPECT_TRUE(error.empty()) << error;
    EXPECT_EQ(parsed.find("kind")->as_string(), to_string(e.kind));
  }
}

TEST(TraceSink, RingAndJsonlAndCounts) {
  std::ostringstream jsonl;
  TraceSink::Options opts;
  opts.ring_capacity = 2;
  opts.jsonl = &jsonl;
  TraceSink sink(opts);

  for (int i = 0; i < 3; ++i) {
    Event e;
    e.kind = EventKind::kFetch;
    e.at = SimTime::seconds(i);
    e.query = 42;
    sink.emit(e);
  }
  EXPECT_EQ(sink.emitted(), 3u);
  EXPECT_EQ(sink.kind_counts()[static_cast<std::size_t>(EventKind::kFetch)], 3u);
  const auto ring = sink.ring_snapshot();
  ASSERT_EQ(ring.size(), 2u);  // bounded: oldest evicted
  EXPECT_EQ(ring[0].at, SimTime::seconds(1));
  // One line per event.
  std::istringstream lines(jsonl.str());
  std::string line;
  int n = 0;
  while (std::getline(lines, line)) {
    std::string error;
    (void)json::Value::parse(line, &error);
    EXPECT_TRUE(error.empty()) << error;
    ++n;
  }
  EXPECT_EQ(n, 3);
}

TEST(TraceSink, DerivesDecisionTelemetry) {
  TraceSink sink;
  const auto emit = [&](EventKind kind, double at_s, std::uint64_t query,
                        std::uint64_t subject = 0, std::uint64_t bytes = 0,
                        double value = 0.0) {
    sink.emit(Event{kind, SimTime::seconds(at_s), 1, query, subject, bytes,
                    value});
  };

  // Query 1: issued at t=0 with deadline 100; two fetches (300 B requests),
  // one object (5000 B), labels evaluated at t=2 and t=5, decided at t=10.
  emit(EventKind::kQueryIssue, 0.0, 1, 2, 0, 100.0);
  emit(EventKind::kFetch, 1.0, 1, 7, 300);
  emit(EventKind::kFetch, 2.0, 1, 8, 300);
  emit(EventKind::kObjectRx, 4.0, 1, 7, 5000);
  emit(EventKind::kLabelSettle, 4.0, 1, 11, 0, 2.0);
  emit(EventKind::kLabelSettle, 6.0, 1, 12, 0, 5.0);
  emit(EventKind::kDecide, 10.0, 1, 0, 0, 10.0);

  // Query 2: issued then expired — contributes nothing.
  emit(EventKind::kQueryIssue, 0.0, 2, 1, 0, 50.0);
  emit(EventKind::kExpire, 50.0, 2);

  const DecisionTelemetry& t = sink.decision_telemetry();
  ASSERT_EQ(t.age_upon_decision_s.count(), 1u);
  // Oldest evidence was evaluated at t=2; decided at t=10 → age 8 s.
  EXPECT_DOUBLE_EQ(t.age_upon_decision_s.sum(), 8.0);
  ASSERT_EQ(t.slack_at_decision_s.count(), 1u);
  // Deadline 100, decided at 10 → slack 90 s.
  EXPECT_DOUBLE_EQ(t.slack_at_decision_s.sum(), 90.0);
  ASSERT_EQ(t.bytes_per_decision.count(), 1u);
  // 2 requests × 300 B + 5000 B object.
  EXPECT_DOUBLE_EQ(t.bytes_per_decision.sum(), 5600.0);
}

TEST(TraceSink, LabelSettleKeepsLatestEvaluation) {
  TraceSink sink;
  sink.emit(Event{EventKind::kQueryIssue, SimTime::zero(), 1, 1, 0, 0, 30.0});
  // Same label settled twice (refetch): age counts the freshest evaluation.
  sink.emit(Event{EventKind::kLabelSettle, SimTime::seconds(2), 1, 1, 5, 0, 1.0});
  sink.emit(Event{EventKind::kLabelSettle, SimTime::seconds(8), 1, 1, 5, 0, 7.0});
  sink.emit(Event{EventKind::kDecide, SimTime::seconds(10), 1, 1, 0, 0, 10.0});
  EXPECT_DOUBLE_EQ(sink.decision_telemetry().age_upon_decision_s.sum(), 3.0);
}

// ---------------------------------------------------------------------------
// Observation-only guarantee
// ---------------------------------------------------------------------------

TEST(TraceSink, AttachingSinkIsBitForBitInvisible) {
  // The tentpole invariant, pinned: a scenario run with a fully-enabled
  // sink (ring + JSONL + derivation) must produce exactly the trajectory
  // of a run without one — same metrics, traffic, event count, outcomes.
  scenario::ScenarioConfig cfg;
  cfg.node_count = 12;
  cfg.queries_per_node = 2;
  cfg.horizon = SimTime::seconds(120);
  cfg.seed = 7;

  const auto bare = scenario::run_route_scenario(cfg);

  std::ostringstream jsonl;
  TraceSink::Options opts;
  opts.ring_capacity = 64;
  opts.jsonl = &jsonl;
  TraceSink sink(opts);
  cfg.trace_sink = &sink;
  const auto traced = scenario::run_route_scenario(cfg);

  EXPECT_EQ(traced.events, bare.events);
  EXPECT_EQ(traced.queries, bare.queries);
  EXPECT_EQ(traced.metrics.queries_resolved, bare.metrics.queries_resolved);
  EXPECT_EQ(traced.metrics.queries_failed, bare.metrics.queries_failed);
  EXPECT_EQ(traced.metrics.total_bytes(), bare.metrics.total_bytes());
  EXPECT_EQ(traced.metrics.object_requests, bare.metrics.object_requests);
  EXPECT_EQ(traced.metrics.retries, bare.metrics.retries);
  EXPECT_EQ(traced.traffic.packets, bare.traffic.packets);
  EXPECT_EQ(traced.traffic.bytes, bare.traffic.bytes);
  EXPECT_EQ(traced.traffic.dropped, bare.traffic.dropped);
  EXPECT_DOUBLE_EQ(traced.metrics.total_resolution_latency_s,
                   bare.metrics.total_resolution_latency_s);
  ASSERT_EQ(traced.outcomes.size(), bare.outcomes.size());
  for (std::size_t i = 0; i < bare.outcomes.size(); ++i) {
    EXPECT_EQ(traced.outcomes[i].success, bare.outcomes[i].success);
    EXPECT_DOUBLE_EQ(traced.outcomes[i].latency_s, bare.outcomes[i].latency_s);
    EXPECT_DOUBLE_EQ(traced.outcomes[i].finished_s,
                     bare.outcomes[i].finished_s);
  }

  // And the sink actually observed the run.
  EXPECT_GT(sink.emitted(), 0u);
  EXPECT_GT(sink.kind_counts()[static_cast<std::size_t>(EventKind::kQueryIssue)],
            0u);
  EXPECT_GT(sink.kind_counts()[static_cast<std::size_t>(EventKind::kHopSend)],
            0u);
  EXPECT_FALSE(jsonl.str().empty());
}

TEST(TraceSink, TracedRunsAreDeterministic) {
  // Two traced runs of the same seed produce identical JSONL streams.
  const auto run = [] {
    scenario::ScenarioConfig cfg;
    cfg.node_count = 10;
    cfg.queries_per_node = 1;
    cfg.horizon = SimTime::seconds(60);
    cfg.seed = 3;
    std::ostringstream jsonl;
    TraceSink::Options opts;
    opts.jsonl = &jsonl;
    TraceSink sink(opts);
    cfg.trace_sink = &sink;
    (void)scenario::run_route_scenario(cfg);
    return jsonl.str();
  };
  const std::string first = run();
  EXPECT_FALSE(first.empty());
  EXPECT_EQ(run(), first);
}

// ---------------------------------------------------------------------------
// BenchReport
// ---------------------------------------------------------------------------

TEST(BenchReport, RoundTripsAndValidates) {
  BenchReport report("unit");
  RunningStats stats;
  stats.add(1.0);
  stats.add(2.0);
  stats.add(3.0);
  report.add_metric("lvfl", "resolution_ratio", stats);
  report.add_metric("lvfl", "total_megabytes", stats);
  report.add_metric("cmp", "resolution_ratio", stats);
  Histogram h(time_buckets_s());
  h.add(0.05);
  h.add(3.0);
  h.add(1000.0);
  report.add_histogram("lvfl", "age_upon_decision_s", h);

  const std::string dumped = report.to_json().dump(2);
  std::string error;
  const json::Value parsed = json::Value::parse(dumped, &error);
  ASSERT_TRUE(error.empty()) << error;
  EXPECT_TRUE(validate_bench_report(parsed, &error)) << error;

  // Round trip contains every registered metric with its summary intact.
  const json::Value* lvfl = parsed.find("schemes")->find("lvfl");
  ASSERT_NE(lvfl, nullptr);
  const json::Value* metrics = lvfl->find("metrics");
  ASSERT_NE(metrics, nullptr);
  EXPECT_EQ(metrics->as_object().size(), 2u);
  const json::Value* ratio = metrics->find("resolution_ratio");
  ASSERT_NE(ratio, nullptr);
  EXPECT_DOUBLE_EQ(ratio->find("mean")->as_number(), 2.0);
  EXPECT_DOUBLE_EQ(ratio->find("count")->as_number(), 3.0);
  const json::Value* hist =
      lvfl->find("histograms")->find("age_upon_decision_s");
  ASSERT_NE(hist, nullptr);
  EXPECT_EQ(hist->find("counts")->as_array().size(),
            hist->find("bounds")->as_array().size() + 1);
  EXPECT_DOUBLE_EQ(hist->find("count")->as_number(), 3.0);
  EXPECT_NE(parsed.find("schemes")->find("cmp"), nullptr);
}

TEST(BenchReport, ValidatorRejectsBrokenReports) {
  std::string error;
  const auto invalid = [&](const char* text) {
    const json::Value v = json::Value::parse(text);
    return !validate_bench_report(v, &error);
  };
  EXPECT_TRUE(invalid("[]"));
  EXPECT_TRUE(invalid(R"({"bench":"x","schema_version":2,"schemes":{}})"));
  EXPECT_TRUE(invalid(R"({"bench":"x","schema_version":1,"schemes":{}})"));
  EXPECT_TRUE(invalid(
      R"({"bench":"x","schema_version":1,"schemes":{"a":{}}})"));
  // Metric summary missing a field.
  EXPECT_TRUE(invalid(
      R"({"bench":"x","schema_version":1,)"
      R"("schemes":{"a":{"metrics":{"m":{"count":1,"mean":1}}}}})"));
  // Histogram with |counts| != |bounds|+1.
  EXPECT_TRUE(invalid(
      R"({"bench":"x","schema_version":1,"schemes":{"a":{"metrics":{},)"
      R"("histograms":{"h":{"count":1,"sum":1,"mean":1,"min":1,"max":1,)"
      R"("bounds":[1,2],"counts":[1,2]}}}}})"));
  EXPECT_FALSE(error.empty());
}

TEST(BenchReport, EnvDisableSkipsWriting) {
  setenv("DDE_BENCH_REPORT", "0", 1);
  BenchReport report("disabled_probe");
  RunningStats s;
  s.add(1.0);
  report.add_metric("x", "m", s);
  EXPECT_EQ(report.write(), "");
  unsetenv("DDE_BENCH_REPORT");
}

}  // namespace
}  // namespace dde::obs
