// Annotated-synchronization shim (common/thread_annotations.h +
// common/mutex.h): the portability contract is that this TU compiles and
// behaves identically under GCC (macros expand to nothing) and under clang
// (macros expand to the -Wthread-safety capability attributes, checked with
// -Werror by the CI lint job). The behavioral tests pin that the wrappers
// really forward to std::mutex — mutual exclusion, try_lock contention,
// condition_variable_any interop — so the annotations stay zero-overhead
// decoration, never semantics.
#include "common/mutex.h"

#include <gtest/gtest.h>

#include <condition_variable>
#include <thread>
#include <vector>

#include "common/thread_annotations.h"

namespace dde {
namespace {

TEST(Mutex, ProvidesMutualExclusion) {
  common::Mutex mu;
  long counter = 0;
  std::vector<std::thread> threads;
  threads.reserve(4);
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 10000; ++i) {
        const common::MutexLock lock(&mu);
        ++counter;
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(counter, 4 * 10000);
}

TEST(Mutex, TryLockFailsWhileHeldAndSucceedsAfterUnlock) {
  common::Mutex mu;
  mu.lock();
  // Contended try_lock must fail from another thread (same-thread try_lock
  // on a non-recursive mutex is undefined, so probe from a helper).
  bool acquired = true;
  std::thread probe([&] { acquired = mu.try_lock(); });
  probe.join();
  EXPECT_FALSE(acquired);
  mu.unlock();
  std::thread probe2([&] {
    acquired = mu.try_lock();
    if (acquired) mu.unlock();
  });
  probe2.join();
  EXPECT_TRUE(acquired);
}

TEST(Mutex, ConditionVariableAnyWaitsOnAnnotatedMutex) {
  // Mutex satisfies BasicLockable, so condition_variable_any can block on
  // it directly — the exact shape harness::ThreadPool uses.
  common::Mutex mu;
  std::condition_variable_any cv;
  bool ready = false;
  std::thread signaler([&] {
    const common::MutexLock lock(&mu);
    ready = true;
    cv.notify_one();
  });
  {
    const common::MutexLock lock(&mu);
    cv.wait(mu, [&]() DDE_REQUIRES(mu) { return ready; });
    EXPECT_TRUE(ready);
  }
  signaler.join();
}

TEST(SingleOwner, IsZeroSizeAndAssertHeldIsANoOp) {
  // The confinement capability must cost nothing: empty type, and
  // assert_held() is callable anywhere without acquiring anything.
  EXPECT_EQ(sizeof(common::SingleOwner), 1u);  // empty class, no members
  const common::SingleOwner owner;
  owner.assert_held();
  owner.assert_held();  // idempotent, no state
}

// Guarded-member usage pattern: compiles under both toolchains and, under
// clang -Wthread-safety, the assert_held() claims make the accesses legal.
class Confined {
 public:
  void bump() {
    owner_.assert_held();
    ++value_;
  }
  [[nodiscard]] int value() const {
    owner_.assert_held();
    return value_;
  }

 private:
  common::SingleOwner owner_;
  int value_ DDE_GUARDED_BY(owner_) = 0;
};

TEST(SingleOwner, GuardedMemberPatternBehavesNormally) {
  Confined c;
  c.bump();
  c.bump();
  EXPECT_EQ(c.value(), 2);
}

}  // namespace
}  // namespace dde
