#include "decision/ordering.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "common/rng.h"

namespace dde::decision {
namespace {

Term term(std::uint64_t l) { return Term{LabelId{l}, false}; }

/// Metadata table used through these tests.
class MetaFixture {
 public:
  void set(std::uint64_t l, double cost, double p,
           SimTime latency = SimTime::seconds(1),
           SimTime validity = SimTime::seconds(100)) {
    table_.set(LabelId{l}, LabelMeta{cost, latency, p, validity});
  }
  [[nodiscard]] MetaFn fn() const { return table_.fn(); }

 private:
  MetaTable table_;
};

TEST(Ordering, PaperExampleFromSectionIIIA) {
  // Condition h: 4 MB clip, p=0.6; condition k: 5 MB clip, p=0.2.
  // The paper concludes k should be evaluated first, with expected cost
  // 5 + 0.2×4 = 5.8 versus 4 + 0.6×5 = 7.
  MetaFixture m;
  m.set(0, 4.0, 0.6);  // h
  m.set(1, 5.0, 0.2);  // k
  const Conjunction c{{term(0), term(1)}};
  const auto order = order_conjunction(c, m.fn());
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order[0].label, LabelId{1}) << "k goes first";
  EXPECT_NEAR(expected_conjunction_cost(order, m.fn()), 5.8, 1e-12);
  const std::vector<Term> reversed{term(0), term(1)};
  EXPECT_NEAR(expected_conjunction_cost(reversed, m.fn()), 7.0, 1e-12);
}

TEST(Ordering, AndEfficiencyMatchesFormula) {
  MetaFixture m;
  m.set(0, 4.0, 0.6);
  m.set(1, 5.0, 0.2);
  EXPECT_NEAR(and_efficiency(term(0), m.fn()), 0.1, 1e-12);
  EXPECT_NEAR(and_efficiency(term(1), m.fn()), 0.16, 1e-12);
}

TEST(Ordering, NegationFlipsProbability) {
  MetaFixture m;
  m.set(0, 1.0, 0.9);
  EXPECT_NEAR(term_p_true(Term{LabelId{0}, false}, m.fn()), 0.9, 1e-12);
  EXPECT_NEAR(term_p_true(Term{LabelId{0}, true}, m.fn()), 0.1, 1e-12);
  // A negated likely-true term is a likely short-circuiter.
  EXPECT_NEAR(and_efficiency(Term{LabelId{0}, true}, m.fn()), 0.9, 1e-12);
}

TEST(Ordering, SuccessProbability) {
  MetaFixture m;
  m.set(0, 1.0, 0.5);
  m.set(1, 1.0, 0.4);
  const std::vector<Term> ts{term(0), term(1)};
  EXPECT_NEAR(conjunction_success_prob(ts, m.fn()), 0.2, 1e-12);
  EXPECT_NEAR(conjunction_success_prob(std::vector<Term>{}, m.fn()), 1.0, 1e-12);
}

TEST(Ordering, ExpectedCostOfEmptyIsZero) {
  MetaFixture m;
  EXPECT_DOUBLE_EQ(expected_conjunction_cost(std::vector<Term>{}, m.fn()), 0.0);
}

// The (1−p)/C rule is provably optimal for independent conjunctions:
// check against brute force on random instances.
TEST(Ordering, GreedyConjunctionOrderIsOptimal) {
  Rng rng(123);
  for (int trial = 0; trial < 300; ++trial) {
    const std::size_t n = 2 + rng.below(5);
    MetaFixture m;
    Conjunction c;
    for (std::size_t i = 0; i < n; ++i) {
      m.set(i, rng.uniform(0.1, 10.0), rng.uniform(0.05, 0.95));
      c.terms.push_back(term(i));
    }
    const auto greedy = order_conjunction(c, m.fn());
    const auto best = optimal_conjunction_order(c, m.fn());
    EXPECT_NEAR(expected_conjunction_cost(greedy, m.fn()), best.cost, 1e-9)
        << "greedy must match brute-force optimum";
  }
}

// Independence-formula expected cost must agree with exhaustive world
// enumeration when labels are distinct.
TEST(Ordering, ExpectedCostMatchesEnumeration) {
  Rng rng(9);
  for (int trial = 0; trial < 100; ++trial) {
    const std::size_t n = 1 + rng.below(6);
    MetaFixture m;
    std::vector<Term> ts;
    for (std::size_t i = 0; i < n; ++i) {
      m.set(i, rng.uniform(0.5, 5.0), rng.uniform(0.0, 1.0));
      ts.push_back(term(i));
    }
    EXPECT_NEAR(expected_conjunction_cost(ts, m.fn()),
                exact_conjunction_cost_by_enumeration(ts, m.fn()), 1e-9);
  }
}

TEST(Ordering, EnumerationChargesRepeatedLabelOnce) {
  MetaFixture m;
  m.set(0, 3.0, 1.0);  // always true, cost 3
  const std::vector<Term> ts{term(0), term(0)};
  // Label 0 retrieved once, term repeats free.
  EXPECT_NEAR(exact_conjunction_cost_by_enumeration(ts, m.fn()), 3.0, 1e-12);
}

// Regression: expected_conjunction_cost used to charge a repeated label's
// cost again and re-multiply p_reach by its probability, so the always-true
// conjunction (0 ∧ 0) came out at 6 instead of the 3 the enumeration
// oracle computes.
TEST(Ordering, ExpectedCostChargesRepeatedLabelOnce) {
  MetaFixture m;
  m.set(0, 3.0, 1.0);
  const std::vector<Term> ts{term(0), term(0)};
  EXPECT_NEAR(expected_conjunction_cost(ts, m.fn()), 3.0, 1e-12);
}

// A term contradicting an earlier occurrence of its label (l ∧ ¬l) can
// never be passed: everything after it is unreachable and free.
TEST(Ordering, ExpectedCostStopsAtContradictedRepeat) {
  MetaFixture m;
  m.set(0, 2.0, 0.5);
  m.set(1, 100.0, 0.5);
  const std::vector<Term> ts{term(0), Term{LabelId{0}, true}, term(1)};
  // Label 0 paid once; label 1 never reached.
  EXPECT_NEAR(expected_conjunction_cost(ts, m.fn()), 2.0, 1e-12);
  EXPECT_NEAR(expected_conjunction_cost(ts, m.fn()),
              exact_conjunction_cost_by_enumeration(ts, m.fn()), 1e-12);
}

// Property: with labels drawn from a small pool (repeats and mixed
// polarities likely), the closed form must agree with world enumeration.
TEST(Ordering, ExpectedCostMatchesEnumerationWithRepeatedLabels) {
  Rng rng(31);
  for (int trial = 0; trial < 300; ++trial) {
    MetaFixture m;
    for (std::uint64_t l = 0; l < 3; ++l) {
      m.set(l, rng.uniform(0.5, 5.0), rng.uniform(0.05, 0.95));
    }
    std::vector<Term> ts;
    for (std::size_t i = 0, n = 2 + rng.below(4); i < n; ++i) {
      ts.push_back(Term{LabelId{rng.below(3)}, rng.chance(0.5)});
    }
    EXPECT_NEAR(expected_conjunction_cost(ts, m.fn()),
                exact_conjunction_cost_by_enumeration(ts, m.fn()), 1e-9);
  }
}

TEST(Ordering, PlanDnfOrdersDisjunctsBySuccessPerCost) {
  MetaFixture m;
  // Disjunct 0: success 0.9, cost 10 → 0.09 per unit.
  m.set(0, 10.0, 0.9);
  // Disjunct 1: success 0.5, cost 1 → 0.5 per unit. Should go first.
  m.set(1, 1.0, 0.5);
  DnfExpr e;
  e.add_disjunct(Conjunction{{term(0)}});
  e.add_disjunct(Conjunction{{term(1)}});
  const auto plan = plan_dnf(e, m.fn());
  ASSERT_EQ(plan.disjunct_order.size(), 2u);
  EXPECT_EQ(plan.disjunct_order[0], 1u);
  // Expected cost: 1 + (1-0.5)*10 = 6, vs 10 + 0.1*1 = 10.1 the other way.
  EXPECT_NEAR(expected_dnf_cost(plan, m.fn()), 6.0, 1e-12);
}

TEST(Ordering, PlanAppliesAndRuleInsideDisjuncts) {
  MetaFixture m;
  m.set(0, 4.0, 0.6);
  m.set(1, 5.0, 0.2);
  DnfExpr e;
  e.add_disjunct(Conjunction{{term(0), term(1)}});
  const auto plan = plan_dnf(e, m.fn());
  ASSERT_EQ(plan.ordered_terms.size(), 1u);
  EXPECT_EQ(plan.ordered_terms[0][0].label, LabelId{1});
}

TEST(Ordering, FeasibilityHonoursDeadline) {
  MetaFixture m;
  m.set(0, 1.0, 0.5, SimTime::seconds(10), SimTime::seconds(1000));
  m.set(1, 1.0, 0.5, SimTime::seconds(10), SimTime::seconds(1000));
  const std::vector<Term> ts{term(0), term(1)};
  EXPECT_TRUE(order_feasible(ts, m.fn(), SimTime::zero(), SimTime::seconds(20)));
  EXPECT_FALSE(order_feasible(ts, m.fn(), SimTime::zero(), SimTime::seconds(19)));
  // Start offset shifts the finish past the deadline.
  EXPECT_FALSE(
      order_feasible(ts, m.fn(), SimTime::seconds(5), SimTime::seconds(20)));
}

TEST(Ordering, FeasibilityHonoursFreshness) {
  MetaFixture m;
  // First object: valid 5s, retrieved at t=10 (latency 10), finish t=20:
  // 10 + 5 < 20 → stale at decision time.
  m.set(0, 1.0, 0.5, SimTime::seconds(10), SimTime::seconds(5));
  m.set(1, 1.0, 0.5, SimTime::seconds(10), SimTime::seconds(1000));
  const std::vector<Term> bad{term(0), term(1)};
  EXPECT_FALSE(
      order_feasible(bad, m.fn(), SimTime::zero(), SimTime::seconds(100)));
  // Retrieving the volatile object last keeps it fresh at the finish.
  const std::vector<Term> good{term(1), term(0)};
  EXPECT_TRUE(
      order_feasible(good, m.fn(), SimTime::zero(), SimTime::seconds(100)));
}

TEST(Ordering, VariationalLvfKeepsFeasibility) {
  MetaFixture m;
  // Volatile object must go last even if it is the best short-circuiter.
  m.set(0, 1.0, 0.1, SimTime::seconds(10), SimTime::seconds(8));  // cheap killer, volatile
  m.set(1, 10.0, 0.9, SimTime::seconds(10), SimTime::seconds(1000));
  const Conjunction c{{term(0), term(1)}};
  const auto order =
      variational_lvf_order(c, m.fn(), SimTime::zero(), SimTime::seconds(100));
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order[0].label, LabelId{1});
  EXPECT_EQ(order[1].label, LabelId{0});
  EXPECT_TRUE(order_feasible(order, m.fn(), SimTime::zero(),
                             SimTime::seconds(100)));
}

TEST(Ordering, VariationalLvfImprovesCostWhenSlackAllows) {
  MetaFixture m;
  // Both objects long-validity: rearrangement by efficiency is free, so the
  // variational step must recover the pure short-circuit order.
  m.set(0, 4.0, 0.6, SimTime::seconds(1), SimTime::seconds(1000));
  m.set(1, 5.0, 0.2, SimTime::seconds(1), SimTime::seconds(1000));
  const Conjunction c{{term(0), term(1)}};
  const auto order =
      variational_lvf_order(c, m.fn(), SimTime::zero(), SimTime::seconds(100));
  EXPECT_EQ(order[0].label, LabelId{1});
}

// Property: variational LVF never costs more than the pure LVF base order
// and stays feasible whenever the base order was feasible.
TEST(Ordering, VariationalLvfDominatesPureLvf) {
  Rng rng(55);
  for (int trial = 0; trial < 300; ++trial) {
    const std::size_t n = 2 + rng.below(5);
    MetaFixture m;
    Conjunction c;
    for (std::size_t i = 0; i < n; ++i) {
      m.set(i, rng.uniform(0.5, 8.0), rng.uniform(0.05, 0.95),
            SimTime::seconds(rng.uniform(1, 5)),
            SimTime::seconds(rng.uniform(5, 60)));
      c.terms.push_back(term(i));
    }
    const SimTime deadline = SimTime::seconds(rng.uniform(10, 40));
    // Pure LVF base order.
    std::vector<Term> lvf = c.terms;
    std::stable_sort(lvf.begin(), lvf.end(), [&](const Term& a, const Term& b) {
      return m.fn()(a.label).validity > m.fn()(b.label).validity;
    });
    const auto var = variational_lvf_order(c, m.fn(), SimTime::zero(), deadline);
    EXPECT_LE(expected_conjunction_cost(var, m.fn()),
              expected_conjunction_cost(lvf, m.fn()) + 1e-9);
    if (order_feasible(lvf, m.fn(), SimTime::zero(), deadline)) {
      EXPECT_TRUE(order_feasible(var, m.fn(), SimTime::zero(), deadline));
    }
  }
}

TEST(Ordering, OptimalOrderHandlesTinyCosts) {
  MetaFixture m;
  m.set(0, 1e-15, 0.5);
  m.set(1, 1.0, 0.5);
  const Conjunction c{{term(0), term(1)}};
  const auto order = order_conjunction(c, m.fn());
  EXPECT_EQ(order[0].label, LabelId{0});  // near-free killer first
}

}  // namespace
}  // namespace dde::decision
