// GridMobility (src/world/mobility.h): lazily-memoized waypoint walks must
// be bit-deterministic, independent of query order, bounded to the map,
// and move at the configured speed.
#include "world/mobility.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "world/grid_map.h"

namespace dde::world {
namespace {

TEST(GridMobility, DeterministicForSameSeed) {
  const GridMap map(6, 4);
  Rng rng_a(99);
  Rng rng_b(99);
  GridMobility a(map, 3, 2.0, rng_a);
  GridMobility b(map, 3, 2.0, rng_b);
  for (std::size_t v = 0; v < 3; ++v) {
    for (int s = 0; s <= 120; s += 7) {
      const Position pa = a.position_at(v, SimTime::seconds(s));
      const Position pb = b.position_at(v, SimTime::seconds(s));
      EXPECT_EQ(pa.x, pb.x);
      EXPECT_EQ(pa.y, pb.y);
    }
  }
}

TEST(GridMobility, QueryOrderDoesNotChangeTrajectories) {
  const GridMap map(5, 5);
  Rng rng_a(7);
  Rng rng_b(7);
  GridMobility forward(map, 2, 1.5, rng_a);
  GridMobility backward(map, 2, 1.5, rng_b);
  // One instance queried t = 0..300, the other t = 300..0: memoization
  // must extend tracks identically either way.
  for (int s = 0; s <= 300; s += 13) {
    (void)forward.position_at(0, SimTime::seconds(s));
  }
  for (int s = 300; s >= 0; s -= 13) {
    (void)backward.position_at(0, SimTime::seconds(s));
  }
  for (int s = 0; s <= 300; s += 13) {
    const Position pf = forward.position_at(0, SimTime::seconds(s));
    const Position pb = backward.position_at(0, SimTime::seconds(s));
    EXPECT_EQ(pf.x, pb.x);
    EXPECT_EQ(pf.y, pb.y);
  }
}

TEST(GridMobility, StaysOnTheMapAndCellsInRange) {
  const GridMap map(4, 3);
  Rng rng(1234);
  GridMobility m(map, 4, 3.0, rng);
  for (std::size_t v = 0; v < 4; ++v) {
    for (int s = 0; s <= 600; s += 5) {
      const Position p = m.position_at(v, SimTime::seconds(s));
      EXPECT_GE(p.x, 0.0);
      EXPECT_LE(p.x, 4.0);
      EXPECT_GE(p.y, 0.0);
      EXPECT_LE(p.y, 3.0);
      const GridCell cell = m.cell_at(v, SimTime::seconds(s));
      EXPECT_GE(cell.x, 0);
      EXPECT_LT(cell.x, 4);
      EXPECT_GE(cell.y, 0);
      EXPECT_LT(cell.y, 3);
    }
  }
}

TEST(GridMobility, MovesAtConfiguredSpeed) {
  const GridMap map(8, 8);
  Rng rng(5);
  const double speed = 2.0;  // grid units per second
  GridMobility m(map, 1, speed, rng);
  // Between consecutive waypoint arrivals the traveler covers exactly one
  // lattice edge; sample mid-edge and check displacement over a half edge.
  const Position p0 = m.position_at(0, SimTime::seconds(0));
  const Position p1 = m.position_at(0, SimTime::millis(250));  // 0.5 units
  const double moved = std::abs(p1.x - p0.x) + std::abs(p1.y - p0.y);
  EXPECT_NEAR(moved, 0.5, 1e-9);
}

TEST(GridMobility, StartsAtAnIntersection) {
  const GridMap map(5, 5);
  Rng rng(17);
  GridMobility m(map, 5, 1.0, rng);
  for (std::size_t v = 0; v < 5; ++v) {
    const Position p = m.position_at(v, SimTime::zero());
    EXPECT_EQ(p.x, std::floor(p.x));
    EXPECT_EQ(p.y, std::floor(p.y));
  }
}

}  // namespace
}  // namespace dde::world
