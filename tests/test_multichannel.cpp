#include "sched/multichannel.h"

#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "common/rng.h"

namespace dde::sched {
namespace {

RetrievalObject obj(std::uint64_t id, double tx_s, double validity_s) {
  return RetrievalObject{ObjectId{id}, SimTime::seconds(tx_s),
                         SimTime::seconds(validity_s)};
}

DecisionTask task(std::uint64_t id, double deadline_s,
                  std::vector<RetrievalObject> objects) {
  return DecisionTask{QueryId{id}, SimTime::zero(),
                      SimTime::seconds(deadline_s), std::move(objects)};
}

TEST(MultiChannel, SingleChannelMatchesBandSchedule) {
  Rng rng(1);
  for (int trial = 0; trial < 100; ++trial) {
    std::vector<DecisionTask> tasks;
    for (std::uint64_t q = 0, n = 1 + rng.below(4); q < n; ++q) {
      std::vector<RetrievalObject> objs;
      for (std::size_t i = 0, k = 1 + rng.below(4); i < k; ++i) {
        objs.push_back(
            obj(q * 10 + i, rng.uniform(0.5, 3.0), rng.uniform(2.0, 20.0)));
      }
      tasks.push_back(task(q, rng.uniform(3.0, 25.0), std::move(objs)));
    }
    const auto multi = schedule_multichannel(tasks, 1, TaskOrder::kMinSlackBand,
                                             ObjectOrder::kLvf);
    const auto single = schedule_bands(tasks, TaskOrder::kMinSlackBand,
                                       ObjectOrder::kLvf);
    EXPECT_EQ(multi.feasible(), single.feasible());
    // Same decision times (single-channel list scheduling degenerates to
    // back-to-back bands). schedule_bands orders its result by band, the
    // multichannel result is indexed by input task; compare as multisets.
    std::vector<SimTime> a;
    std::vector<SimTime> b;
    for (const auto& t : multi.tasks) a.push_back(t.decision_time);
    for (const auto& t : single.tasks) b.push_back(t.decision_time);
    std::sort(a.begin(), a.end());
    std::sort(b.begin(), b.end());
    EXPECT_EQ(a, b);
  }
}

TEST(MultiChannel, ParallelismShortensDecisions) {
  // 4 equal objects of 2 s: one channel → decision at 8 s; two → 4 s.
  std::vector<DecisionTask> tasks{
      task(0, 100,
           {obj(0, 2, 100), obj(1, 2, 100), obj(2, 2, 100), obj(3, 2, 100)})};
  const auto one =
      schedule_multichannel(tasks, 1, TaskOrder::kDeclared, ObjectOrder::kLvf);
  const auto two =
      schedule_multichannel(tasks, 2, TaskOrder::kDeclared, ObjectOrder::kLvf);
  const auto four =
      schedule_multichannel(tasks, 4, TaskOrder::kDeclared, ObjectOrder::kLvf);
  EXPECT_EQ(one.tasks[0].decision_time, SimTime::seconds(8));
  EXPECT_EQ(two.tasks[0].decision_time, SimTime::seconds(4));
  EXPECT_EQ(four.tasks[0].decision_time, SimTime::seconds(2));
}

TEST(MultiChannel, MoreChannelsNeverHurtFeasibility) {
  Rng rng(2);
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<DecisionTask> tasks;
    for (std::uint64_t q = 0, n = 2 + rng.below(3); q < n; ++q) {
      std::vector<RetrievalObject> objs;
      for (std::size_t i = 0, k = 1 + rng.below(4); i < k; ++i) {
        objs.push_back(
            obj(q * 10 + i, rng.uniform(0.5, 3.0), rng.uniform(3.0, 20.0)));
      }
      tasks.push_back(task(q, rng.uniform(4.0, 20.0), std::move(objs)));
    }
    std::size_t prev_feasible = 0;
    for (std::size_t channels : {1u, 2u, 4u}) {
      const auto s = schedule_multichannel(
          tasks, channels, TaskOrder::kMinSlackBand, ObjectOrder::kLvf);
      std::size_t feasible = 0;
      for (const auto& t : s.tasks) feasible += t.feasible() ? 1 : 0;
      EXPECT_GE(feasible, prev_feasible)
          << "adding channels must not lose feasible tasks";
      prev_feasible = feasible;
    }
  }
}

TEST(MultiChannel, MakespanIsLastCompletion) {
  std::vector<DecisionTask> tasks{task(0, 100, {obj(0, 3, 100)}),
                                  task(1, 100, {obj(10, 5, 100)})};
  const auto s =
      schedule_multichannel(tasks, 2, TaskOrder::kDeclared, ObjectOrder::kLvf);
  EXPECT_EQ(s.makespan(), SimTime::seconds(5));
}

TEST(MultiChannel, FreshnessCheckedAgainstOwnDecisionTime) {
  // Two parallel objects; the short-validity one starts at 0 and must
  // survive until the longer one finishes at 5 s.
  std::vector<DecisionTask> ok{task(0, 100, {obj(0, 5, 100), obj(1, 1, 6)})};
  std::vector<DecisionTask> bad{task(0, 100, {obj(0, 5, 100), obj(1, 1, 4)})};
  EXPECT_TRUE(schedule_multichannel(ok, 2, TaskOrder::kDeclared,
                                    ObjectOrder::kLvf)
                  .feasible());
  EXPECT_FALSE(schedule_multichannel(bad, 2, TaskOrder::kDeclared,
                                     ObjectOrder::kLvf)
                   .feasible());
}

// --- shared-object scheduling ---------------------------------------------

SharedWorkload shared_example() {
  SharedWorkload w;
  w.objects = {obj(0, 2, 100), obj(1, 3, 100), obj(2, 1, 100)};
  w.tasks = {{QueryId{0}, SimTime::seconds(100), {0, 1}},
             {QueryId{1}, SimTime::seconds(100), {1, 2}}};
  return w;
}

TEST(SharedSchedule, EachObjectRetrievedOnce) {
  const auto w = shared_example();
  const auto s = schedule_shared_lvf(w);
  EXPECT_EQ(s.order.size(), 3u);
  EXPECT_EQ(s.total_cost, SimTime::seconds(6));
}

TEST(SharedSchedule, SharingBeatsIndependentRetrieval) {
  const auto w = shared_example();
  // Independent: task 0 pays 2+3, task 1 pays 3+1 → 9 s; shared → 6 s.
  EXPECT_EQ(independent_retrieval_cost(w), SimTime::seconds(9));
  EXPECT_LT(schedule_shared_lvf(w).total_cost, independent_retrieval_cost(w));
}

TEST(SharedSchedule, DecisionTimeIsLastNeededObject) {
  SharedWorkload w;
  w.objects = {obj(0, 2, 100), obj(1, 3, 100)};
  w.tasks = {{QueryId{0}, SimTime::seconds(100), {0}},
             {QueryId{1}, SimTime::seconds(100), {0, 1}}};
  const std::vector<std::size_t> order{0, 1};
  const auto s = evaluate_shared_order(w, order);
  EXPECT_EQ(s.decision_times[0], SimTime::seconds(2));
  EXPECT_EQ(s.decision_times[1], SimTime::seconds(5));
}

TEST(SharedSchedule, FreshnessPerTaskNotGlobal) {
  // Object 0 (validity 3 s) is fetched first; task 0 needs only it
  // (decides at 2 s: fresh); task 1 also needs object 1 (decides at 5 s —
  // object 0 is stale by then).
  SharedWorkload w;
  w.objects = {obj(0, 2, 3), obj(1, 3, 100)};
  w.tasks = {{QueryId{0}, SimTime::seconds(100), {0}},
             {QueryId{1}, SimTime::seconds(100), {0, 1}}};
  const std::vector<std::size_t> order{0, 1};
  const auto s = evaluate_shared_order(w, order);
  EXPECT_TRUE(s.task_feasible[0]);
  EXPECT_FALSE(s.task_feasible[1]);
}

TEST(SharedSchedule, DeadlinesChecked) {
  SharedWorkload w;
  w.objects = {obj(0, 5, 100)};
  w.tasks = {{QueryId{0}, SimTime::seconds(4), {0}}};
  const auto s = schedule_shared_lvf(w);
  EXPECT_FALSE(s.feasible());
}

TEST(SharedSchedule, UnreferencedObjectsNotRetrieved) {
  SharedWorkload w;
  w.objects = {obj(0, 2, 100), obj(1, 3, 100), obj(2, 9, 100)};
  w.tasks = {{QueryId{0}, SimTime::seconds(100), {0, 1}}};
  const auto s = schedule_shared_lvf(w);
  EXPECT_EQ(s.order.size(), 2u);
  EXPECT_EQ(s.total_cost, SimTime::seconds(5));
}

TEST(SharedSchedule, LvfHeuristicNearBruteForce) {
  Rng rng(3);
  int heuristic_total = 0;
  int brute_total = 0;
  for (int trial = 0; trial < 150; ++trial) {
    SharedWorkload w;
    const std::size_t n_obj = 2 + rng.below(5);
    for (std::size_t i = 0; i < n_obj; ++i) {
      w.objects.push_back(
          obj(i, rng.uniform(0.5, 3.0), rng.uniform(2.0, 15.0)));
    }
    for (std::uint64_t q = 0, n = 1 + rng.below(3); q < n; ++q) {
      SharedWorkload::Task t;
      t.id = QueryId{q};
      t.relative_deadline = SimTime::seconds(rng.uniform(3.0, 15.0));
      for (std::size_t i = 0; i < n_obj; ++i) {
        if (rng.chance(0.5)) t.needs.push_back(i);
      }
      if (t.needs.empty()) t.needs.push_back(rng.below(n_obj));
      w.tasks.push_back(std::move(t));
    }
    const auto heuristic = schedule_shared_lvf(w);
    const auto brute = schedule_shared_bruteforce(w);
    EXPECT_LE(heuristic.feasible_count(), brute.feasible_count());
    heuristic_total += static_cast<int>(heuristic.feasible_count());
    brute_total += static_cast<int>(brute.feasible_count());
    // Cost is order-independent (each object once).
    EXPECT_EQ(heuristic.total_cost, brute.total_cost);
  }
  // The heuristic should capture the large majority of what exhaustive
  // search achieves.
  EXPECT_GT(heuristic_total, brute_total * 8 / 10);
}

}  // namespace
}  // namespace dde::sched
