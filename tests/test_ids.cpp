#include "common/ids.h"

#include <gtest/gtest.h>

#include <sstream>
#include <unordered_set>

namespace dde {
namespace {

TEST(StrongId, DefaultConstructedIsInvalid) {
  NodeId id;
  EXPECT_FALSE(id.valid());
  EXPECT_EQ(id.value(), NodeId::kInvalid);
}

TEST(StrongId, ExplicitValueIsValid) {
  NodeId id{7};
  EXPECT_TRUE(id.valid());
  EXPECT_EQ(id.value(), 7u);
}

TEST(StrongId, EqualityAndOrdering) {
  NodeId a{1};
  NodeId b{2};
  NodeId c{1};
  EXPECT_EQ(a, c);
  EXPECT_NE(a, b);
  EXPECT_LT(a, b);
  EXPECT_GT(b, c);
  EXPECT_LE(a, c);
  EXPECT_GE(a, c);
}

TEST(StrongId, DistinctTagsAreDistinctTypes) {
  static_assert(!std::is_same_v<NodeId, QueryId>);
  static_assert(!std::is_same_v<ObjectId, LabelId>);
  static_assert(!std::is_convertible_v<NodeId, QueryId>);
  SUCCEED();
}

TEST(StrongId, HashWorksInUnorderedSet) {
  std::unordered_set<NodeId> set;
  set.insert(NodeId{1});
  set.insert(NodeId{2});
  set.insert(NodeId{1});
  EXPECT_EQ(set.size(), 2u);
  EXPECT_TRUE(set.contains(NodeId{1}));
  EXPECT_FALSE(set.contains(NodeId{3}));
}

TEST(StrongId, StreamOutput) {
  std::ostringstream oss;
  oss << NodeId{42};
  EXPECT_EQ(oss.str(), "42");
  std::ostringstream oss2;
  oss2 << NodeId{};
  EXPECT_EQ(oss2.str(), "<invalid>");
}

TEST(StrongId, InvalidComparesConsistently) {
  NodeId invalid;
  NodeId valid{0};
  EXPECT_NE(invalid, valid);
  // kInvalid is the max value, so any valid id sorts before it.
  EXPECT_LT(valid, invalid);
}

}  // namespace
}  // namespace dde
