#include "naming/name.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/rng.h"

namespace dde::naming {
namespace {

TEST(Name, ParseBasic) {
  const Name n = Name::parse("/city/market/cam1");
  ASSERT_EQ(n.size(), 3u);
  EXPECT_EQ(n.component(0), "city");
  EXPECT_EQ(n.component(1), "market");
  EXPECT_EQ(n.component(2), "cam1");
}

TEST(Name, ParseWithoutLeadingSlash) {
  EXPECT_EQ(Name::parse("a/b"), (Name{"a", "b"}));
}

TEST(Name, ParseCollapsesEmptyComponents) {
  EXPECT_EQ(Name::parse("//a///b//"), (Name{"a", "b"}));
}

TEST(Name, ParseRoot) {
  EXPECT_TRUE(Name::parse("/").empty());
  EXPECT_TRUE(Name::parse("").empty());
}

TEST(Name, ToStringRoundTrip) {
  const std::vector<std::string> paths{"/a", "/a/b/c", "/x/y"};
  for (const auto& p : paths) {
    EXPECT_EQ(Name::parse(p).to_string(), p);
  }
  EXPECT_EQ(Name{}.to_string(), "/");
}

TEST(Name, PrefixOf) {
  const Name root;
  const Name ab = Name::parse("/a/b");
  const Name abc = Name::parse("/a/b/c");
  const Name ax = Name::parse("/a/x");
  EXPECT_TRUE(root.is_prefix_of(abc));
  EXPECT_TRUE(ab.is_prefix_of(abc));
  EXPECT_TRUE(ab.is_prefix_of(ab));
  EXPECT_FALSE(abc.is_prefix_of(ab));
  EXPECT_FALSE(ax.is_prefix_of(abc));
}

TEST(Name, SharedPrefixLength) {
  const Name a = Name::parse("/a/b/c/d");
  EXPECT_EQ(a.shared_prefix_length(Name::parse("/a/b/x")), 2u);
  EXPECT_EQ(a.shared_prefix_length(Name::parse("/a/b/c/d")), 4u);
  EXPECT_EQ(a.shared_prefix_length(Name::parse("/z")), 0u);
  EXPECT_EQ(a.shared_prefix_length(Name{}), 0u);
}

TEST(Name, SimilarityRange) {
  const Name a = Name::parse("/a/b/c");
  const Name same = Name::parse("/a/b/c");
  const Name sib = Name::parse("/a/b/d");
  const Name far = Name::parse("/z/b/c");
  EXPECT_DOUBLE_EQ(a.similarity(same), 1.0);
  EXPECT_NEAR(a.similarity(sib), 2.0 / 3.0, 1e-12);
  EXPECT_DOUBLE_EQ(a.similarity(far), 0.0);
}

TEST(Name, SimilarityOfRootIsZero) {
  EXPECT_DOUBLE_EQ(Name{}.similarity(Name{}), 0.0);
  EXPECT_DOUBLE_EQ(Name{}.similarity(Name::parse("/a")), 0.0);
}

TEST(Name, SimilarityIsSymmetric) {
  Rng rng(4);
  for (int i = 0; i < 100; ++i) {
    Name a;
    Name b;
    for (std::uint64_t d = rng.below(4); d-- > 0;) {
      a = a.child(std::string("c") + std::to_string(rng.below(3)));
    }
    for (std::uint64_t d = rng.below(4); d-- > 0;) {
      b = b.child(std::string("c") + std::to_string(rng.below(3)));
    }
    EXPECT_DOUBLE_EQ(a.similarity(b), b.similarity(a));
  }
}

TEST(Name, ChildAndParent) {
  const Name a = Name::parse("/a/b");
  const Name abc = a.child("c");
  EXPECT_EQ(abc.to_string(), "/a/b/c");
  EXPECT_EQ(abc.parent(), a);
  EXPECT_EQ(Name::parse("/x").parent(), Name{});
}

TEST(Name, PrefixClamps) {
  const Name abc = Name::parse("/a/b/c");
  EXPECT_EQ(abc.prefix(2), Name::parse("/a/b"));
  EXPECT_EQ(abc.prefix(0), Name{});
  EXPECT_EQ(abc.prefix(99), abc);
}

TEST(Name, OrderingIsLexicographic) {
  EXPECT_LT(Name::parse("/a"), Name::parse("/a/b"));
  EXPECT_LT(Name::parse("/a/b"), Name::parse("/b"));
  EXPECT_LT(Name::parse("/a/a"), Name::parse("/a/b"));
}

TEST(Name, HashEqualForEqualNames) {
  const std::hash<Name> h;
  EXPECT_EQ(h(Name::parse("/a/b")), h(Name{"a", "b"}));
  EXPECT_NE(h(Name::parse("/a/b")), h(Name::parse("/a/c")));
}

// Longer shared prefix implies greater-or-equal similarity for names of
// equal length — the property the pub-sub redundancy model relies on.
TEST(Name, SimilarityMonotoneInSharedPrefix) {
  const Name base = Name::parse("/a/b/c/d");
  const Name s1 = Name::parse("/a/x/y/z");
  const Name s2 = Name::parse("/a/b/y/z");
  const Name s3 = Name::parse("/a/b/c/z");
  EXPECT_LT(base.similarity(s1), base.similarity(s2));
  EXPECT_LT(base.similarity(s2), base.similarity(s3));
  EXPECT_LT(base.similarity(s3), 1.0);
}

}  // namespace
}  // namespace dde::naming
