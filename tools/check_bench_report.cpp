// Schema checker for BENCH_*.json reports (see src/obs/bench_report.h for
// the schema). CI runs it after each bench to catch silent report drift:
//
//   ./tools/check_bench_report BENCH_micro_core.json [more.json ...]
//
// Exit 0 when every file parses and validates; 1 otherwise, with one
// diagnostic line per bad file. With --require-metric NAME (repeatable),
// every scheme in every file must contain that metric or histogram. With
// --require-positive NAME (repeatable), at least one scheme must contain
// metric NAME and every scheme that does must report mean > 0 — the guard
// for measured quantities (events/sec, peak RSS) that parse fine as zero
// when the measurement silently broke.
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "obs/bench_report.h"
#include "obs/json.h"

namespace {

using dde::obs::json::Value;

bool scheme_has(const Value& scheme, const std::string& name) {
  for (const char* section : {"metrics", "histograms"}) {
    const Value* sec = scheme.find(section);
    if (sec != nullptr && sec->find(name) != nullptr) return true;
  }
  return false;
}

/// events/sec-style guard: `name` must appear as a metric in >= 1 scheme,
/// and every appearance must have mean > 0.
bool check_positive(const std::string& path, const Value& schemes,
                    const std::string& name) {
  bool seen = false;
  for (const auto& [scheme, entry] : schemes.as_object()) {
    const Value* metrics = entry.find("metrics");
    const Value* metric =
        metrics != nullptr ? metrics->find(name) : nullptr;
    if (metric == nullptr) continue;
    seen = true;
    const double mean = metric->find("mean")->as_number();
    if (!(mean > 0.0)) {
      std::fprintf(stderr, "%s: schemes.%s.metrics.%s: mean %g is not > 0\n",
                   path.c_str(), scheme.c_str(), name.c_str(), mean);
      return false;
    }
  }
  if (!seen) {
    std::fprintf(stderr, "%s: no scheme contains required-positive \"%s\"\n",
                 path.c_str(), name.c_str());
    return false;
  }
  return true;
}

bool check_file(const std::string& path,
                const std::vector<std::string>& required,
                const std::vector<std::string>& positive) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "%s: cannot open\n", path.c_str());
    return false;
  }
  std::ostringstream buf;
  buf << in.rdbuf();

  std::string error;
  const Value report = Value::parse(buf.str(), &error);
  if (!error.empty()) {
    std::fprintf(stderr, "%s: JSON parse error: %s\n", path.c_str(),
                 error.c_str());
    return false;
  }
  if (!dde::obs::validate_bench_report(report, &error)) {
    std::fprintf(stderr, "%s: schema error: %s\n", path.c_str(),
                 error.c_str());
    return false;
  }
  for (const auto& [scheme, entry] : report.find("schemes")->as_object()) {
    for (const std::string& name : required) {
      if (!scheme_has(entry, name)) {
        std::fprintf(stderr, "%s: schemes.%s: missing required \"%s\"\n",
                     path.c_str(), scheme.c_str(), name.c_str());
        return false;
      }
    }
  }
  for (const std::string& name : positive) {
    if (!check_positive(path, *report.find("schemes"), name)) return false;
  }
  std::size_t schemes = report.find("schemes")->as_object().size();
  std::printf("%s: OK (%zu scheme%s)\n", path.c_str(), schemes,
              schemes == 1 ? "" : "s");
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> files;
  std::vector<std::string> required;
  std::vector<std::string> positive;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--require-metric" && i + 1 < argc) {
      required.emplace_back(argv[++i]);
    } else if (arg == "--require-positive" && i + 1 < argc) {
      positive.emplace_back(argv[++i]);
    } else {
      files.push_back(arg);
    }
  }
  if (files.empty()) {
    std::fprintf(stderr,
                 "usage: check_bench_report [--require-metric NAME]... "
                 "[--require-positive NAME]... BENCH_*.json...\n");
    return 1;
  }
  bool ok = true;
  for (const std::string& f : files) {
    if (!check_file(f, required, positive)) ok = false;
  }
  return ok ? 0 : 1;
}
