// Twin: the same accumulate with a fold justification must stay silent.
#include <numeric>
#include <vector>

double mean(const std::vector<double>& xs) {
  // lint: ordered-fold — fixed left-to-right fold over an already-sorted
  // vector; insertion order is deterministic.
  return std::accumulate(xs.begin(), xs.end(), 0.0) / xs.size();
}
