// Twin: the same loops, annotated or routed through a sorted copy, must
// stay silent.
#include <algorithm>
#include <unordered_map>
#include <vector>

std::vector<int> sorted_keys(const std::unordered_map<int, int>& m);

int total(const std::unordered_map<int, int>& weights) {
  int sum = 0;
  // lint: ordered-fold — commutative integer sum.
  for (const auto& [k, v] : weights) {
    sum += v;
  }
  for (const int k : sorted_keys(weights)) {
    sum += k;  // call expression materializes an ordered copy: not flagged
  }
  return sum;
}
