// Twin: contract macros and static_assert must NOT trip bare-assert.
static_assert(sizeof(int) >= 4, "ILP32 or wider");

void fail(const char*, int, const char*, const char*);
#define DDE_CHECK(cond, msg) \
  do {                       \
    if (!(cond)) fail(__FILE__, __LINE__, #cond, (msg)); \
  } while (0)

int checked(int x) {
  DDE_CHECK(x > 0, "x must be positive");
  return x * 2;
}
