// mutable-global good twin: everything here must stay silent.
#include <atomic>

namespace fix {

// const / constexpr namespace-scope data is immutable — never flagged.
const int kLimit = 8;
constexpr double kScale = 1.5;

// std::atomic is one of the sanctioned migration targets.
std::atomic<int> counter{0};

// lint: shared-state — fixture twin of the annotation escape hatch: a
// mutable global whose safety argument lives in this comment.
int annotated = 0;

int pure(int x) {
  // Const function-local statics are init-once lookup tables, not state.
  static const int kBias = 3;
  return x + kLimit + kBias + static_cast<int>(kScale);
}

}  // namespace fix
