// Twin: getenv under src/harness/ is the sanctioned environment read.
#include <cstdlib>

int jobs() {
  const char* j = std::getenv("JOBS");
  return j != nullptr;
}
