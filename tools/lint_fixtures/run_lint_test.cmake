# dde_lint self-test, run by ctest (see tests/CMakeLists.txt).
#
#   cmake -DLINT=<dde_lint> -DFIXTURES=<this dir> -P run_lint_test.cmake
#
# 1. The bad tree must fail (exit 1) with a file:line diagnostic per rule.
# 2. The good twins must pass (exit 0) with no output.
# 3. The layers_bad tree (own tools/dde_layers manifest) must flag the
#    inverted include and the undeclared module; layers_good must accept
#    the downward and audited-allow edges silently.
# 4. An unreadable input path must be a usage error (exit 2).

execute_process(COMMAND ${LINT} --root ${FIXTURES}/bad ${FIXTURES}/bad/src
                RESULT_VARIABLE bad_rc OUTPUT_VARIABLE bad_out
                ERROR_VARIABLE bad_err)
if(NOT bad_rc EQUAL 1)
  message(FATAL_ERROR "bad tree: expected exit 1, got ${bad_rc}\n${bad_out}")
endif()
foreach(want
        "src/bare_assert.cpp:5: \\[bare-assert\\]"
        "src/wall_clock.cpp:6: \\[wall-clock\\]"
        "src/wall_clock.cpp:7: \\[wall-clock\\]"
        "src/unordered_iter.cpp:7: \\[unordered-iter\\]"
        "src/float_accum.cpp:7: \\[float-accumulate\\]"
        "src/mutable_global.cpp:5: \\[mutable-global\\]"
        "src/mutable_global.cpp:8: \\[mutable-global\\]")
  if(NOT bad_out MATCHES "${want}")
    message(FATAL_ERROR "bad tree: missing diagnostic ${want}\n${bad_out}")
  endif()
endforeach()

execute_process(COMMAND ${LINT} --root ${FIXTURES}/layers_bad
                        ${FIXTURES}/layers_bad/src
                RESULT_VARIABLE lbad_rc OUTPUT_VARIABLE lbad_out
                ERROR_VARIABLE lbad_err)
if(NOT lbad_rc EQUAL 1)
  message(FATAL_ERROR
          "layers_bad: expected exit 1, got ${lbad_rc}\n${lbad_out}")
endif()
foreach(want
        "src/base/uses_top.h:3: \\[layer-violation\\].*points upward"
        "src/rogue/thing.cpp:1: \\[layer-violation\\].*not declared")
  if(NOT lbad_out MATCHES "${want}")
    message(FATAL_ERROR "layers_bad: missing diagnostic ${want}\n${lbad_out}")
  endif()
endforeach()

execute_process(COMMAND ${LINT} --root ${FIXTURES}/layers_good
                        ${FIXTURES}/layers_good/src
                RESULT_VARIABLE lgood_rc OUTPUT_VARIABLE lgood_out
                ERROR_VARIABLE lgood_err)
if(NOT lgood_rc EQUAL 0)
  message(FATAL_ERROR
          "layers_good: expected exit 0, got ${lgood_rc}\n${lgood_out}")
endif()
if(NOT lgood_out STREQUAL "")
  message(FATAL_ERROR "layers_good: expected no output\n${lgood_out}")
endif()

execute_process(COMMAND ${LINT} --root ${FIXTURES}/good ${FIXTURES}/good/src
                RESULT_VARIABLE good_rc OUTPUT_VARIABLE good_out
                ERROR_VARIABLE good_err)
if(NOT good_rc EQUAL 0)
  message(FATAL_ERROR
          "good twins: expected exit 0, got ${good_rc}\n${good_out}")
endif()
if(NOT good_out STREQUAL "")
  message(FATAL_ERROR "good twins: expected no output\n${good_out}")
endif()

execute_process(COMMAND ${LINT} ${FIXTURES}/no_such_dir
                RESULT_VARIABLE usage_rc OUTPUT_VARIABLE usage_out
                ERROR_VARIABLE usage_err)
if(NOT usage_rc EQUAL 2)
  message(FATAL_ERROR "unreadable path: expected exit 2, got ${usage_rc}")
endif()

message(STATUS "dde_lint fixture checks passed")
