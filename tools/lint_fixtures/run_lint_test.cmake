# dde_lint self-test, run by ctest (see tests/CMakeLists.txt).
#
#   cmake -DLINT=<dde_lint> -DFIXTURES=<this dir> -P run_lint_test.cmake
#
# 1. The bad tree must fail (exit 1) with a file:line diagnostic per rule.
# 2. The good twins must pass (exit 0) with no output.
# 3. An unreadable input path must be a usage error (exit 2).

execute_process(COMMAND ${LINT} --root ${FIXTURES}/bad ${FIXTURES}/bad/src
                RESULT_VARIABLE bad_rc OUTPUT_VARIABLE bad_out
                ERROR_VARIABLE bad_err)
if(NOT bad_rc EQUAL 1)
  message(FATAL_ERROR "bad tree: expected exit 1, got ${bad_rc}\n${bad_out}")
endif()
foreach(want
        "src/bare_assert.cpp:5: \\[bare-assert\\]"
        "src/wall_clock.cpp:6: \\[wall-clock\\]"
        "src/wall_clock.cpp:7: \\[wall-clock\\]"
        "src/unordered_iter.cpp:7: \\[unordered-iter\\]"
        "src/float_accum.cpp:7: \\[float-accumulate\\]")
  if(NOT bad_out MATCHES "${want}")
    message(FATAL_ERROR "bad tree: missing diagnostic ${want}\n${bad_out}")
  endif()
endforeach()

execute_process(COMMAND ${LINT} --root ${FIXTURES}/good ${FIXTURES}/good/src
                RESULT_VARIABLE good_rc OUTPUT_VARIABLE good_out
                ERROR_VARIABLE good_err)
if(NOT good_rc EQUAL 0)
  message(FATAL_ERROR
          "good twins: expected exit 0, got ${good_rc}\n${good_out}")
endif()
if(NOT good_out STREQUAL "")
  message(FATAL_ERROR "good twins: expected no output\n${good_out}")
endif()

execute_process(COMMAND ${LINT} ${FIXTURES}/no_such_dir
                RESULT_VARIABLE usage_rc OUTPUT_VARIABLE usage_out
                ERROR_VARIABLE usage_err)
if(NOT usage_rc EQUAL 2)
  message(FATAL_ERROR "unreadable path: expected exit 2, got ${usage_rc}")
endif()

message(STATUS "dde_lint fixture checks passed")
