// Downward include: top may depend on base. Same-module includes are also
// always fine.
#pragma once
#include "base/api.h"
#include "top/other.h"
