// Upward include covered by the manifest's audited 'allow base top' edge.
#pragma once
#include "top/api.h"
