// Module not declared in the manifest: must be flagged so the DAG cannot rot.
namespace rogue {
void noop() {}
}  // namespace rogue
