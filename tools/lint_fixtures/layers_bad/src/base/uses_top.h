// Inverted include: base (layer 0) must not reach up into top (layer 2).
#pragma once
#include "top/api.h"
