// Fixture: bare assert() in src/ must trip the bare-assert rule.
#include <cassert>

int checked(int x) {
  assert(x > 0);
  return x * 2;
}
