// Fixture: float std::accumulate without a fold comment must trip
// float-accumulate.
#include <numeric>
#include <vector>

double mean(const std::vector<double>& xs) {
  return std::accumulate(xs.begin(), xs.end(), 0.0) / xs.size();
}
