// Fixture: wall-clock and ambient-environment reads must trip wall-clock.
#include <chrono>
#include <cstdlib>

long stamp() {
  const auto t = std::chrono::steady_clock::now();
  const char* jobs = std::getenv("JOBS");
  return t.time_since_epoch().count() + (jobs != nullptr);
}
