// Fixture: unannotated range-for over an unordered container must trip
// unordered-iter.
#include <unordered_map>

int total(const std::unordered_map<int, int>& weights) {
  int sum = 0;
  for (const auto& [k, v] : weights) {
    sum += v;
  }
  return sum;
}
