// mutable-global fixture: both flavors must be flagged — the namespace-scope
// variable and the function-local static.
namespace fix {

int call_count = 0;

int bump() {
  static int bumps = 0;
  call_count += 1;
  return ++bumps;
}

}  // namespace fix
