// Scenario driver over the plugin registry (docs/SCENARIOS.md):
//
//   ./tools/run_scenario --list
//   ./tools/run_scenario --scenario teleop --seed 3 [--set knob=value ...]
//
// --list prints every registered scenario with its one-line description.
// A run prints the effective spec (after --set overlays) followed by the
// outcome metrics, both in sorted key order — two runs with equal spec and
// seed print byte-identical output.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>

#include "scenario/runner.h"
#include "scenario/spec.h"

namespace {

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s --list\n"
               "       %s --scenario NAME [--seed N] [--set KEY=VALUE ...]\n",
               argv0, argv0);
  return 2;
}

int list_scenarios() {
  for (const std::string& name : dde::scenario::scenario_names()) {
    const auto runner = dde::scenario::find_scenario(name);
    const auto& meta = runner->metadata();
    std::printf("%-10s [%s] %s\n", meta.name.c_str(), meta.category.c_str(),
                meta.description.c_str());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string name;
  std::uint64_t seed = 1;
  dde::scenario::ScenarioSpec overlay;
  bool list = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--list") {
      list = true;
    } else if (arg == "--scenario" && i + 1 < argc) {
      name = argv[++i];
    } else if (arg == "--seed" && i + 1 < argc) {
      seed = std::strtoull(argv[++i], nullptr, 10);
    } else if (arg == "--set" && i + 1 < argc) {
      const std::string kv = argv[++i];
      const std::size_t eq = kv.find('=');
      if (eq == std::string::npos || eq == 0) {
        std::fprintf(stderr, "--set expects KEY=VALUE, got '%s'\n",
                     kv.c_str());
        return 2;
      }
      overlay.set(kv.substr(0, eq), kv.substr(eq + 1));
    } else {
      return usage(argv[0]);
    }
  }

  if (list) return list_scenarios();
  if (name.empty()) return usage(argv[0]);

  auto runner = dde::scenario::find_scenario(name);
  if (runner == nullptr) {
    std::fprintf(stderr, "unknown scenario '%s'; try --list\n", name.c_str());
    return 1;
  }
  runner->configure(overlay);

  std::printf("# scenario %s seed %llu\n", name.c_str(),
              static_cast<unsigned long long>(seed));
  std::printf("%s", runner->spec().dump().c_str());
  const auto outcome = runner->run(seed);
  std::printf("---\n");
  for (const auto& [key, value] : outcome.metrics) {
    std::printf("%s = %.6f\n", key.c_str(), value);
  }
  return 0;
}
