// dde_lint: project-specific determinism & contracts lint.
//
// The reproduction's headline claim — bit-identical tables and BENCH_*.json
// at any seed and thread count — rests on conventions that an ordinary
// compiler never checks: no bare assert() guarding invariants in src/ (they
// vanish under -DNDEBUG; see PR 4's three release-only bugs), no wall-clock
// or ambient-entropy calls inside simulation code, no iteration-order-
// dependent folds over std::unordered_* containers, and no unannotated
// floating-point std::accumulate. This tool turns those conventions into
// machine-checked rules that fail CI.
//
// Rules (see docs/STATIC_ANALYSIS.md for the catalogue and suppression
// policy):
//   bare-assert      assert( in src/ — use the contract macros in
//                    src/common/contracts.h instead.
//   wall-clock       std::chrono::system_clock / steady_clock, std::rand,
//                    std::random_device, time(nullptr), time(NULL), and
//                    getenv (the latter allowed in src/harness/ and
//                    bench/bench_util.h, the two audited env entry points).
//   unordered-iter   range-for or .begin()/.cbegin() iteration over a
//                    variable declared (anywhere in the scanned set) as
//                    std::unordered_map/std::unordered_set. Over-
//                    approximate by design: the audit decides per site
//                    whether the fold is order-independent, and records the
//                    verdict as an inline annotation or an allow entry.
//   float-accumulate std::accumulate (the common way an order-dependent
//                    floating-point fold sneaks in).
//
// Suppressions:
//   * inline: the flagged line, or the line directly above it, carries
//     "lint: ordered-fold" inside a comment (used for audited
//     unordered-iter/float-accumulate sites; the comment should say WHY the
//     fold is order-independent).
//   * allowlist: tools/dde_lint.allow, one entry per line:
//         <rule> <path> [substring]
//     suppresses <rule> in <path> (repo-relative, forward slashes) on lines
//     containing <substring> (all lines if omitted). '#' starts a comment.
//
// Output: "path:line: [rule] message" per violation, sorted by path then
// line; exit 1 if any violation survived suppression, 0 otherwise. The scan
// itself is deterministic: files are discovered recursively and processed
// in lexicographic path order, and nothing here consults clocks, rng, or
// the environment.
//
// Usage: dde_lint [--allow FILE] [--root DIR] PATH...
#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <set>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

namespace fs = std::filesystem;

namespace {

struct Violation {
  std::string path;  // repo-relative
  std::size_t line = 0;
  std::string rule;
  std::string message;
  std::string raw_line;  // original text, for allowlist substring matching
};

struct AllowEntry {
  std::string rule;
  std::string path;
  std::string needle;  // empty = whole file
  bool used = false;
};

struct FileText {
  std::string rel_path;
  std::vector<std::string> raw;       // original lines
  std::vector<std::string> stripped;  // comments/strings blanked
  std::vector<bool> ordered_fold;     // line carries the annotation
};

bool is_ident_char(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
         (c >= '0' && c <= '9') || c == '_';
}

/// Strip comments and string/char literals, preserving line structure.
/// Annotations inside comments are detected before stripping.
void strip_and_annotate(FileText& ft) {
  bool in_block_comment = false;
  for (const std::string& line : ft.raw) {
    ft.ordered_fold.push_back(line.find("lint: ordered-fold") !=
                              std::string::npos);
    std::string out;
    out.reserve(line.size());
    std::size_t i = 0;
    while (i < line.size()) {
      if (in_block_comment) {
        if (line.compare(i, 2, "*/") == 0) {
          in_block_comment = false;
          i += 2;
        } else {
          ++i;
        }
        continue;
      }
      const char c = line[i];
      if (c == '/' && i + 1 < line.size() && line[i + 1] == '/') {
        break;  // line comment: drop the rest
      }
      if (c == '/' && i + 1 < line.size() && line[i + 1] == '*') {
        in_block_comment = true;
        i += 2;
        continue;
      }
      if (c == '"' || c == '\'') {
        const char quote = c;
        out.push_back(quote);
        ++i;
        while (i < line.size()) {
          if (line[i] == '\\' && i + 1 < line.size()) {
            i += 2;
            continue;
          }
          if (line[i] == quote) {
            out.push_back(quote);
            ++i;
            break;
          }
          ++i;
        }
        continue;
      }
      out.push_back(c);
      ++i;
    }
    ft.stripped.push_back(std::move(out));
  }
}

/// True when `needle` occurs in `hay` NOT preceded/followed by an
/// identifier character (so `assert(` does not match `static_assert(` or
/// `DDE_ASSERT(`).
bool contains_token(const std::string& hay, std::string_view needle) {
  std::size_t pos = 0;
  while ((pos = hay.find(needle, pos)) != std::string::npos) {
    const bool head_ok = pos == 0 || !is_ident_char(hay[pos - 1]);
    const std::size_t end = pos + needle.size();
    const bool tail_ok = end >= hay.size() || !is_ident_char(hay[end]) ||
                         !is_ident_char(needle.back());
    if (head_ok && tail_ok) return true;
    pos += 1;
  }
  return false;
}

/// Skip template arguments starting at the '<' at `pos`; returns the index
/// just past the matching '>', or npos on imbalance (possibly continuing on
/// a later line — treated as "no declaration found").
std::size_t skip_template_args(const std::string& s, std::size_t pos) {
  int depth = 0;
  while (pos < s.size()) {
    if (s[pos] == '<') ++depth;
    if (s[pos] == '>') {
      --depth;
      if (depth == 0) return pos + 1;
    }
    ++pos;
  }
  return std::string::npos;
}

/// Extract the identifier declared right after a type ending at `pos`
/// (skips whitespace, '&', '*', "const"). Returns "" if none.
std::string ident_after(const std::string& s, std::size_t pos) {
  while (pos < s.size() &&
         (s[pos] == ' ' || s[pos] == '&' || s[pos] == '*' || s[pos] == '\t')) {
    ++pos;
  }
  if (s.compare(pos, 6, "const ") == 0) return ident_after(s, pos + 6);
  std::size_t end = pos;
  while (end < s.size() && is_ident_char(s[end])) ++end;
  if (end == pos) return "";
  return s.substr(pos, end - pos);
}

/// Last identifier in `s` (used on a range-for's range expression, so
/// `node.interest_table_` and `interest_table_` both yield the member name).
std::string last_ident(std::string_view s) {
  std::size_t end = s.size();
  while (end > 0 && !is_ident_char(s[end - 1])) --end;
  std::size_t start = end;
  while (start > 0 && is_ident_char(s[start - 1])) --start;
  return std::string(s.substr(start, end - start));
}

const std::set<std::string>& cxx_keywords() {
  static const std::set<std::string> kw = {
      "if", "for", "while", "return", "const", "auto", "else", "do",
      "switch", "case", "break", "continue", "new", "delete", "this",
      "true", "false", "nullptr", "sizeof", "static", "void"};
  return kw;
}

/// Pass 1 over one file: collect identifiers declared with an unordered
/// container type, resolving per-file `using X = std::unordered_map<...>`
/// aliases.
void collect_unordered_idents(const FileText& ft,
                              std::set<std::string>& idents) {
  std::set<std::string> aliases;
  for (const std::string& line : ft.stripped) {
    for (const char* marker : {"unordered_map<", "unordered_set<"}) {
      std::size_t pos = 0;
      while ((pos = line.find(marker, pos)) != std::string::npos) {
        // `using Alias = std::unordered_map<...>` declares a type, not a
        // variable: remember the alias so its declarations count below.
        const std::size_t using_pos = line.rfind("using ", pos);
        const std::size_t open = line.find('<', pos);
        const std::size_t after = skip_template_args(line, open);
        if (using_pos != std::string::npos &&
            line.find('=', using_pos) != std::string::npos &&
            line.find('=', using_pos) < pos) {
          const std::string alias =
              last_ident(std::string_view(line).substr(
                  0, line.find('=', using_pos)));
          if (!alias.empty()) aliases.insert(alias);
          pos = open == std::string::npos ? pos + 1 : open + 1;
          continue;
        }
        if (after == std::string::npos) {
          pos = open == std::string::npos ? pos + 1 : open + 1;
          continue;
        }
        const std::string id = ident_after(line, after);
        if (!id.empty() && !cxx_keywords().count(id)) idents.insert(id);
        pos = after;
      }
    }
  }
  // Second sweep: declarations via a local alias (e.g. `Map map_;`).
  for (const std::string& alias : aliases) {
    for (const std::string& line : ft.stripped) {
      std::size_t pos = 0;
      while ((pos = line.find(alias, pos)) != std::string::npos) {
        const bool head_ok = pos == 0 || !is_ident_char(line[pos - 1]);
        const std::size_t end = pos + alias.size();
        if (head_ok && end < line.size() && !is_ident_char(line[end])) {
          const std::string id = ident_after(line, end);
          if (!id.empty() && !cxx_keywords().count(id) && id != alias) {
            idents.insert(id);
          }
        }
        pos = end;
      }
    }
  }
}

bool starts_with(const std::string& s, std::string_view prefix) {
  return s.compare(0, prefix.size(), prefix) == 0;
}

void scan_file(const FileText& ft, const std::set<std::string>& unordered_ids,
               std::vector<Violation>& out) {
  const bool in_src = starts_with(ft.rel_path, "src/");
  const bool env_exempt = starts_with(ft.rel_path, "src/harness/") ||
                          ft.rel_path == "bench/bench_util.h";
  for (std::size_t i = 0; i < ft.stripped.size(); ++i) {
    const std::string& line = ft.stripped[i];
    // Annotated: a "lint: ordered-fold" marker on this line, or anywhere in
    // the contiguous comment block directly above it (multi-line proofs).
    bool annotated = ft.ordered_fold[i];
    for (std::size_t j = i; !annotated && j-- > 0;) {
      if (ft.ordered_fold[j]) {
        annotated = true;
        break;
      }
      const bool comment_only = ft.stripped[j].find_first_not_of(" \t\r") ==
                                    std::string::npos &&
                                ft.raw[j].find_first_not_of(" \t\r") !=
                                    std::string::npos;
      if (!comment_only) break;
    }
    auto flag = [&](const char* rule, std::string msg) {
      out.push_back(Violation{ft.rel_path, i + 1, rule, std::move(msg),
                              ft.raw[i]});
    };

    // bare-assert: src/ only; contract macros and static_assert excluded
    // by token matching.
    if (in_src && contains_token(line, "assert(")) {
      flag("bare-assert",
           "bare assert() vanishes under -DNDEBUG; use DDE_CHECK / "
           "DDE_ASSERT / DDE_CLAMP_OR from common/contracts.h");
    }

    // wall-clock / ambient nondeterminism.
    for (const char* bad :
         {"std::chrono::system_clock", "std::chrono::steady_clock",
          "system_clock::now", "steady_clock::now", "std::rand",
          "std::random_device", "time(nullptr)", "time(NULL)"}) {
      if (line.find(bad) != std::string::npos) {
        flag("wall-clock",
             std::string(bad) +
                 " breaks seeded reproducibility; derive times from "
                 "des::Simulator and randomness from dde::Rng");
        break;
      }
    }
    if (!env_exempt && contains_token(line, "getenv")) {
      flag("wall-clock",
           "getenv outside src/harness/ or bench/bench_util.h makes runs "
           "depend on ambient environment");
    }

    // float-accumulate.
    if (!annotated && line.find("std::accumulate") != std::string::npos) {
      flag("float-accumulate",
           "std::accumulate hides the fold order; write the loop "
           "explicitly or annotate '// lint: ordered-fold' with a proof");
    }

    // unordered-iter: range-for over a known unordered identifier, or
    // an iterator loop touching its .begin()/.cbegin().
    if (annotated) continue;
    const std::size_t for_pos = line.find("for ");
    const std::size_t for_pos2 = line.find("for(");
    const std::size_t fpos = std::min(for_pos, for_pos2);
    if (fpos == std::string::npos) continue;
    bool flagged = false;
    const std::size_t colon = line.find(" : ", fpos);
    if (colon != std::string::npos) {
      // Range expression runs to the closing paren (or end of line for
      // multi-line fors).
      std::size_t close = line.rfind(')');
      if (close == std::string::npos || close < colon) close = line.size();
      std::string range = line.substr(colon + 3, close - colon - 3);
      while (!range.empty() && (range.back() == ' ' || range.back() == '\t')) {
        range.pop_back();
      }
      // A call expression (`sorted_keys(queries_)`) materializes a copy —
      // iterating the result is fine; only bare container accesses
      // (`queries_`, `obj.readings`) are hazards.
      const bool is_call = !range.empty() && range.back() == ')';
      const std::string id = last_ident(range);
      if (!is_call && unordered_ids.count(id)) {
        flag("unordered-iter",
             "range-for over unordered container '" + id +
                 "': iteration order is implementation-defined; use an "
                 "ordered container/sorted keys, or annotate "
                 "'// lint: ordered-fold' with a proof");
        flagged = true;
      }
    }
    if (!flagged) {
      for (const char* call : {".begin()", ".cbegin()"}) {
        const std::size_t bpos = line.find(call, fpos);
        if (bpos == std::string::npos) continue;
        const std::string id =
            last_ident(std::string_view(line).substr(0, bpos));
        if (unordered_ids.count(id)) {
          flag("unordered-iter",
               "iterator loop over unordered container '" + id +
                   "': iteration order is implementation-defined; use an "
                   "ordered container/sorted keys, or annotate "
                   "'// lint: ordered-fold' with a proof");
          break;
        }
      }
    }
  }
}

std::vector<AllowEntry> load_allowlist(const fs::path& file) {
  std::vector<AllowEntry> entries;
  std::ifstream in(file);
  if (!in) return entries;
  std::string line;
  while (std::getline(in, line)) {
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    std::istringstream iss(line);
    AllowEntry e;
    if (!(iss >> e.rule >> e.path)) continue;
    std::string rest;
    std::getline(iss, rest);
    const std::size_t first = rest.find_first_not_of(" \t");
    if (first != std::string::npos) {
      e.needle = rest.substr(first);
    }
    entries.push_back(std::move(e));
  }
  return entries;
}

}  // namespace

int main(int argc, char** argv) {
  fs::path root = fs::current_path();
  fs::path allow_file;
  std::vector<fs::path> inputs;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--root" && i + 1 < argc) {
      root = argv[++i];
    } else if (arg == "--allow" && i + 1 < argc) {
      allow_file = argv[++i];
    } else if (arg == "--help" || arg == "-h") {
      std::puts("usage: dde_lint [--allow FILE] [--root DIR] PATH...");
      return 0;
    } else {
      inputs.emplace_back(arg);
    }
  }
  if (inputs.empty()) {
    std::fputs("dde_lint: no input paths (try --help)\n", stderr);
    return 2;
  }
  root = fs::weakly_canonical(root);

  // Collect .h/.cpp files, lexicographically sorted for determinism.
  std::vector<fs::path> files;
  for (const fs::path& in : inputs) {
    std::error_code ec;
    if (fs::is_directory(in, ec)) {
      for (auto it = fs::recursive_directory_iterator(in, ec);
           !ec && it != fs::recursive_directory_iterator(); ++it) {
        if (!it->is_regular_file()) continue;
        const auto ext = it->path().extension();
        if (ext == ".h" || ext == ".cpp" || ext == ".hpp" || ext == ".cc") {
          files.push_back(it->path());
        }
      }
    } else if (fs::is_regular_file(in, ec)) {
      files.push_back(in);
    } else {
      std::fprintf(stderr, "dde_lint: cannot read %s\n", in.c_str());
      return 2;
    }
  }
  std::vector<FileText> texts;
  texts.reserve(files.size());
  for (const fs::path& f : files) {
    FileText ft;
    fs::path rel = fs::weakly_canonical(f).lexically_relative(root);
    ft.rel_path = rel.generic_string();
    std::ifstream in(f);
    std::string line;
    while (std::getline(in, line)) ft.raw.push_back(line);
    strip_and_annotate(ft);
    texts.push_back(std::move(ft));
  }
  std::sort(texts.begin(), texts.end(),
            [](const FileText& a, const FileText& b) {
              return a.rel_path < b.rel_path;
            });
  texts.erase(std::unique(texts.begin(), texts.end(),
                          [](const FileText& a, const FileText& b) {
                            return a.rel_path == b.rel_path;
                          }),
              texts.end());

  // Pass 1: every unordered-container identifier in the scanned set.
  // Global on purpose: members are declared in headers and iterated in
  // .cpp files; a same-named ordered container elsewhere is a false
  // positive the audit suppresses explicitly.
  std::set<std::string> unordered_ids;
  for (const FileText& ft : texts) {
    collect_unordered_idents(ft, unordered_ids);
  }

  // Pass 2: rules.
  std::vector<Violation> violations;
  for (const FileText& ft : texts) {
    scan_file(ft, unordered_ids, violations);
  }

  // Allowlist filtering.
  std::vector<AllowEntry> allow = load_allowlist(allow_file);
  std::vector<Violation> kept;
  for (Violation& v : violations) {
    bool suppressed = false;
    for (AllowEntry& e : allow) {
      if (e.rule == v.rule && e.path == v.path &&
          (e.needle.empty() ||
           v.raw_line.find(e.needle) != std::string::npos)) {
        e.used = true;
        suppressed = true;
        break;
      }
    }
    if (!suppressed) kept.push_back(std::move(v));
  }
  for (const AllowEntry& e : allow) {
    if (!e.used) {
      std::fprintf(stderr,
                   "dde_lint: warning: unused allowlist entry '%s %s %s'\n",
                   e.rule.c_str(), e.path.c_str(), e.needle.c_str());
    }
  }

  std::sort(kept.begin(), kept.end(), [](const Violation& a,
                                         const Violation& b) {
    if (a.path != b.path) return a.path < b.path;
    if (a.line != b.line) return a.line < b.line;
    return a.rule < b.rule;
  });
  for (const Violation& v : kept) {
    std::printf("%s:%zu: [%s] %s\n", v.path.c_str(), v.line, v.rule.c_str(),
                v.message.c_str());
  }
  if (!kept.empty()) {
    std::printf("dde_lint: %zu violation(s)\n", kept.size());
    return 1;
  }
  return 0;
}
