// dde_lint: project-specific determinism, contracts & shared-state lint.
//
// The reproduction's headline claim — bit-identical tables and BENCH_*.json
// at any seed and thread count — rests on conventions that an ordinary
// compiler never checks: no bare assert() guarding invariants in src/ (they
// vanish under -DNDEBUG; see PR 4's three release-only bugs), no wall-clock
// or ambient-entropy calls inside simulation code, no iteration-order-
// dependent folds over std::unordered_* containers, and no unannotated
// floating-point std::accumulate. The PDES frontier (ROADMAP: deterministic
// parallel simulation of one run) adds two more: no unowned mutable shared
// state, and no upward #include edges across the declared module layering —
// both must hold *before* threads touch simulator/net/athena state. This
// tool turns those conventions into machine-checked rules that fail CI.
//
// Rules (see docs/STATIC_ANALYSIS.md for the catalogue and suppression
// policy):
//   bare-assert      assert( in src/ — use the contract macros in
//                    src/common/contracts.h instead.
//   wall-clock       std::chrono::system_clock / steady_clock, std::rand,
//                    std::random_device, time(nullptr), time(NULL), and
//                    getenv (the latter allowed in src/harness/ and
//                    bench/bench_util.h, the two audited env entry points).
//   unordered-iter   range-for or .begin()/.cbegin() iteration over a
//                    variable declared (anywhere in the scanned set) as
//                    std::unordered_map/std::unordered_set. Over-
//                    approximate by design: the audit decides per site
//                    whether the fold is order-independent, and records the
//                    verdict as an inline annotation or an allow entry.
//   float-accumulate std::accumulate (the common way an order-dependent
//                    floating-point fold sneaks in).
//   mutable-global   non-const namespace-scope variables and mutable
//                    function-local / class statics in src/. Every hit must
//                    be migrated into an owned context object, made
//                    std::atomic / mutex-guarded (those types are exempt),
//                    or carry a '// lint: shared-state' audit note — the
//                    machine-checked inventory PDES sharding depends on.
//   layer-violation  #include edges in src/ that point upward (or sideways)
//                    against the module DAG declared in tools/dde_layers,
//                    so PDES can shard along clean layer boundaries. Files
//                    in a src/ module the manifest does not declare are
//                    flagged too, so the manifest cannot rot.
//
// Suppressions:
//   * inline: the flagged line, or the line directly above it, carries
//     "lint: ordered-fold" (unordered-iter / float-accumulate) or
//     "lint: shared-state" (mutable-global) inside a comment; the comment
//     must say WHY the site is safe.
//   * allowlist: tools/dde_lint.allow, one entry per line:
//         <rule> <path> [substring]
//     suppresses <rule> in <path> (repo-relative, forward slashes) on lines
//     containing <substring> (all lines if omitted). '#' starts a comment.
//   * layer manifest: tools/dde_layers may declare audited extra edges
//     ("allow <from> <to>") alongside the layer order.
//
// Output: "path:line: [rule] message" per violation, sorted by path then
// line; exit 1 if any violation survived suppression, 0 otherwise. The scan
// itself is deterministic: files are discovered recursively and processed
// in lexicographic path order, and nothing here consults clocks, rng, or
// the environment. Directories named "lint_fixtures" are skipped during
// recursive discovery (they hold deliberately-bad rule fixtures); pass a
// path inside one explicitly to scan it (the fixture self-test does).
//
// Usage: dde_lint [--allow FILE] [--layers FILE] [--root DIR]
//                 [--list-rules] PATH...
#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

namespace fs = std::filesystem;

namespace {

struct Violation {
  std::string path;  // repo-relative
  std::size_t line = 0;
  std::string rule;
  std::string message;
  std::string raw_line;  // original text, for allowlist substring matching
};

struct AllowEntry {
  std::string rule;
  std::string path;
  std::string needle;  // empty = whole file
  bool used = false;
};

struct FileText {
  std::string rel_path;
  std::vector<std::string> raw;       // original lines
  std::vector<std::string> stripped;  // comments/strings blanked
  std::vector<bool> ordered_fold;     // line carries "lint: ordered-fold"
  std::vector<bool> shared_state;     // line carries "lint: shared-state"
};

/// The module layering DAG from tools/dde_layers (see docs, §5).
struct LayerManifest {
  bool loaded = false;
  std::map<std::string, int> layer_of;            // module -> layer index
  std::set<std::pair<std::string, std::string>> allowed;  // audited edges
};

bool is_ident_char(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
         (c >= '0' && c <= '9') || c == '_';
}

/// Strip comments and string/char literals, preserving line structure.
/// Annotations inside comments are detected before stripping.
void strip_and_annotate(FileText& ft) {
  bool in_block_comment = false;
  for (const std::string& line : ft.raw) {
    ft.ordered_fold.push_back(line.find("lint: ordered-fold") !=
                              std::string::npos);
    ft.shared_state.push_back(line.find("lint: shared-state") !=
                              std::string::npos);
    std::string out;
    out.reserve(line.size());
    std::size_t i = 0;
    while (i < line.size()) {
      if (in_block_comment) {
        if (line.compare(i, 2, "*/") == 0) {
          in_block_comment = false;
          i += 2;
        } else {
          ++i;
        }
        continue;
      }
      const char c = line[i];
      if (c == '/' && i + 1 < line.size() && line[i + 1] == '/') {
        break;  // line comment: drop the rest
      }
      if (c == '/' && i + 1 < line.size() && line[i + 1] == '*') {
        in_block_comment = true;
        i += 2;
        continue;
      }
      if (c == '"' || c == '\'') {
        const char quote = c;
        out.push_back(quote);
        ++i;
        while (i < line.size()) {
          if (line[i] == '\\' && i + 1 < line.size()) {
            i += 2;
            continue;
          }
          if (line[i] == quote) {
            out.push_back(quote);
            ++i;
            break;
          }
          ++i;
        }
        continue;
      }
      out.push_back(c);
      ++i;
    }
    ft.stripped.push_back(std::move(out));
  }
}

/// True when `needle` occurs in `hay` NOT preceded/followed by an
/// identifier character (so `assert(` does not match `static_assert(` or
/// `DDE_ASSERT(`).
bool contains_token(const std::string& hay, std::string_view needle) {
  std::size_t pos = 0;
  while ((pos = hay.find(needle, pos)) != std::string::npos) {
    const bool head_ok = pos == 0 || !is_ident_char(hay[pos - 1]);
    const std::size_t end = pos + needle.size();
    const bool tail_ok = end >= hay.size() || !is_ident_char(hay[end]) ||
                         !is_ident_char(needle.back());
    if (head_ok && tail_ok) return true;
    pos += 1;
  }
  return false;
}

/// Skip template arguments starting at the '<' at `pos`; returns the index
/// just past the matching '>', or npos on imbalance (possibly continuing on
/// a later line — treated as "no declaration found").
std::size_t skip_template_args(const std::string& s, std::size_t pos) {
  int depth = 0;
  while (pos < s.size()) {
    if (s[pos] == '<') ++depth;
    if (s[pos] == '>') {
      --depth;
      if (depth == 0) return pos + 1;
    }
    ++pos;
  }
  return std::string::npos;
}

/// Extract the identifier declared right after a type ending at `pos`
/// (skips whitespace, '&', '*', "const"). Returns "" if none.
std::string ident_after(const std::string& s, std::size_t pos) {
  while (pos < s.size() &&
         (s[pos] == ' ' || s[pos] == '&' || s[pos] == '*' || s[pos] == '\t')) {
    ++pos;
  }
  if (s.compare(pos, 6, "const ") == 0) return ident_after(s, pos + 6);
  std::size_t end = pos;
  while (end < s.size() && is_ident_char(s[end])) ++end;
  if (end == pos) return "";
  return s.substr(pos, end - pos);
}

/// Last identifier in `s` (used on a range-for's range expression, so
/// `node.interest_table_` and `interest_table_` both yield the member name).
std::string last_ident(std::string_view s) {
  std::size_t end = s.size();
  while (end > 0 && !is_ident_char(s[end - 1])) --end;
  std::size_t start = end;
  while (start > 0 && is_ident_char(s[start - 1])) --start;
  return std::string(s.substr(start, end - start));
}

const std::set<std::string>& cxx_keywords() {
  static const std::set<std::string> kw = {
      "if", "for", "while", "return", "const", "auto", "else", "do",
      "switch", "case", "break", "continue", "new", "delete", "this",
      "true", "false", "nullptr", "sizeof", "static", "void"};
  return kw;
}

/// Pass 1 over one file: collect identifiers declared with an unordered
/// container type, resolving per-file `using X = std::unordered_map<...>`
/// aliases.
void collect_unordered_idents(const FileText& ft,
                              std::set<std::string>& idents) {
  std::set<std::string> aliases;
  for (const std::string& line : ft.stripped) {
    for (const char* marker : {"unordered_map<", "unordered_set<"}) {
      std::size_t pos = 0;
      while ((pos = line.find(marker, pos)) != std::string::npos) {
        // `using Alias = std::unordered_map<...>` declares a type, not a
        // variable: remember the alias so its declarations count below.
        const std::size_t using_pos = line.rfind("using ", pos);
        const std::size_t open = line.find('<', pos);
        const std::size_t after = skip_template_args(line, open);
        if (using_pos != std::string::npos &&
            line.find('=', using_pos) != std::string::npos &&
            line.find('=', using_pos) < pos) {
          const std::string alias =
              last_ident(std::string_view(line).substr(
                  0, line.find('=', using_pos)));
          if (!alias.empty()) aliases.insert(alias);
          pos = open == std::string::npos ? pos + 1 : open + 1;
          continue;
        }
        if (after == std::string::npos) {
          pos = open == std::string::npos ? pos + 1 : open + 1;
          continue;
        }
        const std::string id = ident_after(line, after);
        if (!id.empty() && !cxx_keywords().count(id)) idents.insert(id);
        pos = after;
      }
    }
  }
  // Second sweep: declarations via a local alias (e.g. `Map map_;`).
  for (const std::string& alias : aliases) {
    for (const std::string& line : ft.stripped) {
      std::size_t pos = 0;
      while ((pos = line.find(alias, pos)) != std::string::npos) {
        const bool head_ok = pos == 0 || !is_ident_char(line[pos - 1]);
        const std::size_t end = pos + alias.size();
        if (head_ok && end < line.size() && !is_ident_char(line[end])) {
          const std::string id = ident_after(line, end);
          if (!id.empty() && !cxx_keywords().count(id) && id != alias) {
            idents.insert(id);
          }
        }
        pos = end;
      }
    }
  }
}

bool starts_with(const std::string& s, std::string_view prefix) {
  return s.compare(0, prefix.size(), prefix) == 0;
}

// --- mutable-global pass ---------------------------------------------------
//
// A lightweight scope tracker classifies every '{' by the statement head
// that precedes it (namespace / record / initializer / block), so the pass
// knows which lines sit at namespace scope. Heuristic and over-approximate
// by design, like the unordered-identifier table: the audit resolves each
// hit with a migration, an exempt thread-safe type, or an annotation.

enum class ScopeKind { kNamespace, kRecord, kInit, kBlock };

/// Thread-safe-by-construction types: state behind these is owned by the
/// synchronization primitive itself, not by ambient convention.
bool has_exempt_type(const std::string& line) {
  for (const char* tok : {"atomic", "mutex", "Mutex", "once_flag",
                          "condition_variable"}) {
    if (contains_token(line, tok)) return true;
  }
  return false;
}

/// Leading declaration qualifiers to skip before counting type+name tokens.
bool is_decl_qualifier(const std::string& tok) {
  return tok == "static" || tok == "inline" || tok == "thread_local" ||
         tok == "extern" || tok == "mutable" || tok == "volatile";
}

/// Split the identifier tokens of `s` up to the first of '=', ';', '{'
/// (whichever comes first); returns them in order. Stops at '(' — a
/// function declarator or call — and at an unbalanced ')' — the
/// continuation line of a multi-line signature — by flagging `saw_paren`.
std::vector<std::string> decl_idents(const std::string& s, bool* saw_paren) {
  std::vector<std::string> toks;
  *saw_paren = false;
  std::size_t i = 0;
  int angle = 0;
  while (i < s.size()) {
    const char c = s[i];
    if (c == '(' || c == ')') {
      *saw_paren = true;
      return toks;
    }
    if (c == '<') ++angle;
    if (c == '>' && angle > 0) --angle;
    if (angle == 0 && (c == '=' || c == ';' || c == '{')) break;
    if (is_ident_char(c)) {
      std::size_t end = i;
      while (end < s.size() && is_ident_char(s[end])) ++end;
      toks.push_back(s.substr(i, end - i));
      i = end;
      continue;
    }
    ++i;
  }
  return toks;
}

/// One line that plausibly *defines a variable*: at least a type token and
/// a name token before '=', ';' or '{', no parentheses (those are function
/// declarators, macro invocations, or constructor-call initializers), and a
/// statement terminator on the line.
bool looks_like_var_definition(const std::string& trimmed,
                               std::string* name_out) {
  if (trimmed.find(';') == std::string::npos) return false;
  // A continuation line of a multi-line signature closes more parens than
  // it opens ("SimTime deadline = SimTime::max());").
  int balance = 0;
  for (const char c : trimmed) {
    if (c == '(') ++balance;
    if (c == ')') --balance;
  }
  if (balance < 0) return false;
  bool saw_paren = false;
  std::vector<std::string> toks = decl_idents(trimmed, &saw_paren);
  if (saw_paren) return false;
  std::size_t first = 0;
  while (first < toks.size() && is_decl_qualifier(toks[first])) ++first;
  // Everything after qualifiers must hold a type and a name. Template
  // arguments inflate the count; the *last* token is the declared name.
  if (toks.size() - first < 2) return false;
  if (cxx_keywords().count(toks.back())) return false;
  *name_out = toks.back();
  return true;
}

const char* kStatementStops[] = {
    "using",  "typedef", "template", "namespace", "class",  "struct",
    "enum",   "union",   "friend",   "return",    "public", "private",
    "protected", "case", "goto",     "operator"};

bool stopped_statement(const std::string& trimmed) {
  for (const char* stop : kStatementStops) {
    if (starts_with(trimmed, stop) &&
        (trimmed.size() == std::string(stop).size() ||
         !is_ident_char(trimmed[std::string(stop).size()]))) {
      return true;
    }
  }
  return false;
}

std::string trim(const std::string& s) {
  const std::size_t a = s.find_first_not_of(" \t\r");
  if (a == std::string::npos) return "";
  const std::size_t b = s.find_last_not_of(" \t\r");
  return s.substr(a, b - a + 1);
}

/// Scan one src/ file for mutable namespace-scope variables and mutable
/// local/class statics. `annotated(i)` suppression is resolved by the
/// caller via the shared comment-block walk.
void scan_mutable_globals(const FileText& ft,
                          const std::vector<bool>& annotated,
                          std::vector<Violation>& out) {
  std::vector<ScopeKind> scopes;
  std::string head;  // statement text since the last ';' '{' '}' boundary
  for (std::size_t i = 0; i < ft.stripped.size(); ++i) {
    const std::string& line = ft.stripped[i];
    const bool at_namespace_scope =
        std::all_of(scopes.begin(), scopes.end(), [](ScopeKind k) {
          return k == ScopeKind::kNamespace;
        });
    const std::string trimmed = trim(line);

    if (!annotated[i] && !trimmed.empty() && trimmed[0] != '#') {
      if (at_namespace_scope && !stopped_statement(trimmed) &&
          !starts_with(trimmed, "extern") && !has_exempt_type(trimmed) &&
          !contains_token(trimmed, "const") &&
          !contains_token(trimmed, "constexpr") &&
          !contains_token(trimmed, "constinit")) {
        std::string name;
        if (looks_like_var_definition(trimmed, &name)) {
          out.push_back(Violation{
              ft.rel_path, i + 1, "mutable-global",
              "mutable namespace-scope variable '" + name +
                  "': unowned shared state blocks PDES sharding; move it "
                  "into an owned context object, make it std::atomic / "
                  "mutex-guarded, or annotate '// lint: shared-state' "
                  "with a proof",
              ft.raw[i]});
        }
      } else if (!at_namespace_scope && contains_token(trimmed, "static") &&
                 !contains_token(trimmed, "static_assert") &&
                 !has_exempt_type(trimmed) &&
                 !contains_token(trimmed, "const") &&
                 !contains_token(trimmed, "constexpr") &&
                 !contains_token(trimmed, "constinit")) {
        std::string name;
        if (looks_like_var_definition(trimmed, &name)) {
          out.push_back(Violation{
              ft.rel_path, i + 1, "mutable-global",
              "mutable static '" + name +
                  "': function-local/class statics are process-wide shared "
                  "state; make it std::atomic / mutex-guarded, move it into "
                  "an owned context, or annotate '// lint: shared-state' "
                  "with a proof",
              ft.raw[i]});
        }
      }
    }

    // Advance the scope tracker across this line.
    for (const char c : line) {
      if (c == '{') {
        ScopeKind kind = ScopeKind::kBlock;
        if (contains_token(head, "namespace")) {
          kind = ScopeKind::kNamespace;
        } else if (head.find('=') != std::string::npos) {
          kind = ScopeKind::kInit;
        } else if ((contains_token(head, "class") ||
                    contains_token(head, "struct") ||
                    contains_token(head, "union") ||
                    contains_token(head, "enum")) &&
                   head.find('(') == std::string::npos) {
          kind = ScopeKind::kRecord;
        }
        scopes.push_back(kind);
        head.clear();
      } else if (c == '}') {
        if (!scopes.empty()) scopes.pop_back();
        head.clear();
      } else if (c == ';') {
        head.clear();
      } else {
        head.push_back(c);
      }
    }
    head.push_back(' ');  // line break separates tokens
  }
}

// --- layer-violation pass --------------------------------------------------

LayerManifest load_layers(const fs::path& file) {
  LayerManifest m;
  std::ifstream in(file);
  if (!in) return m;
  m.loaded = true;
  int next_layer = 0;
  std::string line;
  while (std::getline(in, line)) {
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    std::istringstream iss(line);
    std::string word;
    if (!(iss >> word)) continue;
    if (word == "layer") {
      std::string mod;
      while (iss >> mod) m.layer_of.emplace(mod, next_layer);
      ++next_layer;
    } else if (word == "allow") {
      std::string from, to;
      if (iss >> from >> to) m.allowed.emplace(from, to);
    } else {
      std::fprintf(stderr, "dde_lint: warning: dde_layers: unknown directive "
                           "'%s'\n", word.c_str());
    }
  }
  return m;
}

/// Module of a src/ file: the first path component under src/, or "" for
/// files sitting directly in src/ (the dde.h umbrella — outside the DAG,
/// allowed to include everything, included by nothing in src/).
std::string module_of(const std::string& rel_path) {
  if (!starts_with(rel_path, "src/")) return "";
  const std::size_t slash = rel_path.find('/', 4);
  if (slash == std::string::npos) return "";
  return rel_path.substr(4, slash - 4);
}

void scan_layers(const FileText& ft, const LayerManifest& layers,
                 std::vector<Violation>& out) {
  const std::string from = module_of(ft.rel_path);
  if (from.empty()) return;
  const auto from_it = layers.layer_of.find(from);
  if (from_it == layers.layer_of.end()) {
    out.push_back(Violation{
        ft.rel_path, 1, "layer-violation",
        "module 'src/" + from +
            "' is not declared in tools/dde_layers; add it to a layer so "
            "the DAG stays complete",
        ft.raw.empty() ? std::string() : ft.raw[0]});
    return;
  }
  for (std::size_t i = 0; i < ft.raw.size(); ++i) {
    const std::string& line = ft.raw[i];
    const std::size_t inc = line.find("#include \"");
    if (inc == std::string::npos) continue;
    const std::size_t open = line.find('"', inc);
    const std::size_t close = line.find('"', open + 1);
    if (close == std::string::npos) continue;
    const std::string target = line.substr(open + 1, close - open - 1);
    const std::size_t slash = target.find('/');
    if (slash == std::string::npos) continue;
    const std::string to = target.substr(0, slash);
    const auto to_it = layers.layer_of.find(to);
    if (to_it == layers.layer_of.end()) continue;  // not a module include
    if (to == from) continue;
    if (to_it->second < from_it->second) continue;  // downward edge: fine
    if (layers.allowed.count({from, to})) continue;
    const bool upward = to_it->second > from_it->second;
    out.push_back(Violation{
        ft.rel_path, i + 1, "layer-violation",
        "include of '" + target + "' points " +
            (upward ? "upward" : "sideways") + " in the module DAG ('" +
            from + "' layer " + std::to_string(from_it->second) + " -> '" +
            to + "' layer " + std::to_string(to_it->second) +
            "); depend only on lower layers, or declare an audited "
            "'allow " + from + " " + to + "' edge in tools/dde_layers",
        line});
  }
}

// --- per-line rule scan ----------------------------------------------------

void scan_file(const FileText& ft, const std::set<std::string>& unordered_ids,
               const LayerManifest& layers, std::vector<Violation>& out) {
  const bool in_src = starts_with(ft.rel_path, "src/");
  const bool env_exempt = starts_with(ft.rel_path, "src/harness/") ||
                          ft.rel_path == "bench/bench_util.h";

  // Resolve annotations once: a marker on the line itself, or anywhere in
  // the contiguous comment block directly above it (multi-line proofs).
  const auto resolve = [&](const std::vector<bool>& marks) {
    std::vector<bool> annotated(ft.stripped.size(), false);
    for (std::size_t i = 0; i < ft.stripped.size(); ++i) {
      bool on = marks[i];
      for (std::size_t j = i; !on && j-- > 0;) {
        if (marks[j]) {
          on = true;
          break;
        }
        const bool comment_only = ft.stripped[j].find_first_not_of(" \t\r") ==
                                      std::string::npos &&
                                  ft.raw[j].find_first_not_of(" \t\r") !=
                                      std::string::npos;
        if (!comment_only) break;
      }
      annotated[i] = on;
    }
    return annotated;
  };
  const std::vector<bool> fold_annotated = resolve(ft.ordered_fold);

  if (in_src) {
    scan_mutable_globals(ft, resolve(ft.shared_state), out);
    if (layers.loaded) scan_layers(ft, layers, out);
  }

  for (std::size_t i = 0; i < ft.stripped.size(); ++i) {
    const std::string& line = ft.stripped[i];
    const bool annotated = fold_annotated[i];
    auto flag = [&](const char* rule, std::string msg) {
      out.push_back(Violation{ft.rel_path, i + 1, rule, std::move(msg),
                              ft.raw[i]});
    };

    // bare-assert: src/ only; contract macros and static_assert excluded
    // by token matching.
    if (in_src && contains_token(line, "assert(")) {
      flag("bare-assert",
           "bare assert() vanishes under -DNDEBUG; use DDE_CHECK / "
           "DDE_ASSERT / DDE_CLAMP_OR from common/contracts.h");
    }

    // wall-clock / ambient nondeterminism.
    for (const char* bad :
         {"std::chrono::system_clock", "std::chrono::steady_clock",
          "system_clock::now", "steady_clock::now", "std::rand",
          "std::random_device", "time(nullptr)", "time(NULL)"}) {
      if (line.find(bad) != std::string::npos) {
        flag("wall-clock",
             std::string(bad) +
                 " breaks seeded reproducibility; derive times from "
                 "des::Simulator and randomness from dde::Rng");
        break;
      }
    }
    if (!env_exempt && contains_token(line, "getenv")) {
      flag("wall-clock",
           "getenv outside src/harness/ or bench/bench_util.h makes runs "
           "depend on ambient environment");
    }

    // float-accumulate.
    if (!annotated && line.find("std::accumulate") != std::string::npos) {
      flag("float-accumulate",
           "std::accumulate hides the fold order; write the loop "
           "explicitly or annotate '// lint: ordered-fold' with a proof");
    }

    // unordered-iter: range-for over a known unordered identifier, or
    // an iterator loop touching its .begin()/.cbegin().
    if (annotated) continue;
    const std::size_t for_pos = line.find("for ");
    const std::size_t for_pos2 = line.find("for(");
    const std::size_t fpos = std::min(for_pos, for_pos2);
    if (fpos == std::string::npos) continue;
    bool flagged = false;
    const std::size_t colon = line.find(" : ", fpos);
    if (colon != std::string::npos) {
      // Range expression runs to the closing paren (or end of line for
      // multi-line fors).
      std::size_t close = line.rfind(')');
      if (close == std::string::npos || close < colon) close = line.size();
      std::string range = line.substr(colon + 3, close - colon - 3);
      while (!range.empty() && (range.back() == ' ' || range.back() == '\t')) {
        range.pop_back();
      }
      // A call expression (`sorted_keys(queries_)`) materializes a copy —
      // iterating the result is fine; only bare container accesses
      // (`queries_`, `obj.readings`) are hazards.
      const bool is_call = !range.empty() && range.back() == ')';
      const std::string id = last_ident(range);
      if (!is_call && unordered_ids.count(id)) {
        flag("unordered-iter",
             "range-for over unordered container '" + id +
                 "': iteration order is implementation-defined; use an "
                 "ordered container/sorted keys, or annotate "
                 "'// lint: ordered-fold' with a proof");
        flagged = true;
      }
    }
    if (!flagged) {
      for (const char* call : {".begin()", ".cbegin()"}) {
        const std::size_t bpos = line.find(call, fpos);
        if (bpos == std::string::npos) continue;
        const std::string id =
            last_ident(std::string_view(line).substr(0, bpos));
        if (unordered_ids.count(id)) {
          flag("unordered-iter",
               "iterator loop over unordered container '" + id +
                   "': iteration order is implementation-defined; use an "
                   "ordered container/sorted keys, or annotate "
                   "'// lint: ordered-fold' with a proof");
          break;
        }
      }
    }
  }
}

std::vector<AllowEntry> load_allowlist(const fs::path& file) {
  std::vector<AllowEntry> entries;
  std::ifstream in(file);
  if (!in) return entries;
  std::string line;
  while (std::getline(in, line)) {
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    std::istringstream iss(line);
    AllowEntry e;
    if (!(iss >> e.rule >> e.path)) continue;
    std::string rest;
    std::getline(iss, rest);
    const std::size_t first = rest.find_first_not_of(" \t");
    if (first != std::string::npos) {
      e.needle = rest.substr(first);
    }
    entries.push_back(std::move(e));
  }
  return entries;
}

/// Rule catalogue for --list-rules: CI logs print this so a passing run
/// shows which passes were active.
void list_rules() {
  std::puts(
      "bare-assert       assert( in src/ (use src/common/contracts.h)\n"
      "wall-clock        ambient time/env/entropy reads\n"
      "unordered-iter    iteration over std::unordered_* containers\n"
      "float-accumulate  std::accumulate fold-order hazard\n"
      "mutable-global    unowned mutable namespace-scope/static state in "
      "src/\n"
      "layer-violation   #include edge against the tools/dde_layers module "
      "DAG");
}

}  // namespace

int main(int argc, char** argv) {
  fs::path root = fs::current_path();
  fs::path allow_file;
  fs::path layers_file;
  std::vector<fs::path> inputs;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--root" && i + 1 < argc) {
      root = argv[++i];
    } else if (arg == "--allow" && i + 1 < argc) {
      allow_file = argv[++i];
    } else if (arg == "--layers" && i + 1 < argc) {
      layers_file = argv[++i];
    } else if (arg == "--list-rules") {
      list_rules();
      return 0;
    } else if (arg == "--help" || arg == "-h") {
      std::puts(
          "usage: dde_lint [--allow FILE] [--layers FILE] [--root DIR]\n"
          "                [--list-rules] PATH...");
      return 0;
    } else {
      inputs.emplace_back(arg);
    }
  }
  if (inputs.empty()) {
    std::fputs("dde_lint: no input paths (try --help)\n", stderr);
    return 2;
  }
  root = fs::weakly_canonical(root);
  if (layers_file.empty()) layers_file = root / "tools" / "dde_layers";

  // Collect .h/.cpp files, lexicographically sorted for determinism.
  // Directories named lint_fixtures are deliberately-bad rule fixtures:
  // skipped unless the caller points inside one explicitly.
  std::vector<fs::path> files;
  for (const fs::path& in : inputs) {
    std::error_code ec;
    if (fs::is_directory(in, ec)) {
      for (auto it = fs::recursive_directory_iterator(in, ec);
           !ec && it != fs::recursive_directory_iterator(); ++it) {
        if (it->is_directory() &&
            it->path().filename() == "lint_fixtures") {
          it.disable_recursion_pending();
          continue;
        }
        if (!it->is_regular_file()) continue;
        const auto ext = it->path().extension();
        if (ext == ".h" || ext == ".cpp" || ext == ".hpp" || ext == ".cc") {
          files.push_back(it->path());
        }
      }
    } else if (fs::is_regular_file(in, ec)) {
      files.push_back(in);
    } else {
      std::fprintf(stderr, "dde_lint: cannot read %s\n", in.c_str());
      return 2;
    }
  }
  std::vector<FileText> texts;
  texts.reserve(files.size());
  for (const fs::path& f : files) {
    FileText ft;
    fs::path rel = fs::weakly_canonical(f).lexically_relative(root);
    ft.rel_path = rel.generic_string();
    std::ifstream in(f);
    std::string line;
    while (std::getline(in, line)) ft.raw.push_back(line);
    strip_and_annotate(ft);
    texts.push_back(std::move(ft));
  }
  std::sort(texts.begin(), texts.end(),
            [](const FileText& a, const FileText& b) {
              return a.rel_path < b.rel_path;
            });
  texts.erase(std::unique(texts.begin(), texts.end(),
                          [](const FileText& a, const FileText& b) {
                            return a.rel_path == b.rel_path;
                          }),
              texts.end());

  // Pass 1: every unordered-container identifier in the scanned set.
  // Global on purpose: members are declared in headers and iterated in
  // .cpp files; a same-named ordered container elsewhere is a false
  // positive the audit suppresses explicitly.
  std::set<std::string> unordered_ids;
  for (const FileText& ft : texts) {
    collect_unordered_idents(ft, unordered_ids);
  }

  // The module DAG. Absent manifest = pass off (fixture trees without one
  // exercise only the line rules); the real tree checks one in at
  // tools/dde_layers, so the repo gate always runs it.
  const LayerManifest layers = load_layers(layers_file);

  // Pass 2: rules.
  std::vector<Violation> violations;
  for (const FileText& ft : texts) {
    scan_file(ft, unordered_ids, layers, violations);
  }

  // Allowlist filtering.
  std::vector<AllowEntry> allow = load_allowlist(allow_file);
  std::vector<Violation> kept;
  for (Violation& v : violations) {
    bool suppressed = false;
    for (AllowEntry& e : allow) {
      if (e.rule == v.rule && e.path == v.path &&
          (e.needle.empty() ||
           v.raw_line.find(e.needle) != std::string::npos)) {
        e.used = true;
        suppressed = true;
        break;
      }
    }
    if (!suppressed) kept.push_back(std::move(v));
  }
  for (const AllowEntry& e : allow) {
    if (!e.used) {
      std::fprintf(stderr,
                   "dde_lint: warning: unused allowlist entry '%s %s %s'\n",
                   e.rule.c_str(), e.path.c_str(), e.needle.c_str());
    }
  }

  std::sort(kept.begin(), kept.end(), [](const Violation& a,
                                         const Violation& b) {
    if (a.path != b.path) return a.path < b.path;
    if (a.line != b.line) return a.line < b.line;
    return a.rule < b.rule;
  });
  for (const Violation& v : kept) {
    std::printf("%s:%zu: [%s] %s\n", v.path.c_str(), v.line, v.rule.c_str(),
                v.message.c_str());
  }
  if (!kept.empty()) {
    std::printf("dde_lint: %zu violation(s)\n", kept.size());
    return 1;
  }
  return 0;
}
