# Empty dependencies file for workflow_anticipation.
# This may be replaced when dependencies are built.
