file(REMOVE_RECURSE
  "CMakeFiles/workflow_anticipation.dir/workflow_anticipation.cpp.o"
  "CMakeFiles/workflow_anticipation.dir/workflow_anticipation.cpp.o.d"
  "workflow_anticipation"
  "workflow_anticipation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/workflow_anticipation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
