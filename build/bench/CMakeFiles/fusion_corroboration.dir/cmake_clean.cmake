file(REMOVE_RECURSE
  "CMakeFiles/fusion_corroboration.dir/fusion_corroboration.cpp.o"
  "CMakeFiles/fusion_corroboration.dir/fusion_corroboration.cpp.o.d"
  "fusion_corroboration"
  "fusion_corroboration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fusion_corroboration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
