# Empty dependencies file for fusion_corroboration.
# This may be replaced when dependencies are built.
