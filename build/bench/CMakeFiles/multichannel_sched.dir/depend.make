# Empty dependencies file for multichannel_sched.
# This may be replaced when dependencies are built.
