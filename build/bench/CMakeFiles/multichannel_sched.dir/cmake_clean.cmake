file(REMOVE_RECURSE
  "CMakeFiles/multichannel_sched.dir/multichannel_sched.cpp.o"
  "CMakeFiles/multichannel_sched.dir/multichannel_sched.cpp.o.d"
  "multichannel_sched"
  "multichannel_sched.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multichannel_sched.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
