file(REMOVE_RECURSE
  "CMakeFiles/criticality.dir/criticality.cpp.o"
  "CMakeFiles/criticality.dir/criticality.cpp.o.d"
  "criticality"
  "criticality.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/criticality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
