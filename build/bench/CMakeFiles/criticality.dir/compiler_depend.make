# Empty compiler generated dependencies file for criticality.
# This may be replaced when dependencies are built.
