# Empty dependencies file for criticality.
# This may be replaced when dependencies are built.
