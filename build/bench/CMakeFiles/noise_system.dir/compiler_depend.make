# Empty compiler generated dependencies file for noise_system.
# This may be replaced when dependencies are built.
