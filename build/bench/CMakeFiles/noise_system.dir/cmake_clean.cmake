file(REMOVE_RECURSE
  "CMakeFiles/noise_system.dir/noise_system.cpp.o"
  "CMakeFiles/noise_system.dir/noise_system.cpp.o.d"
  "noise_system"
  "noise_system.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/noise_system.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
