
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/trigger_reaction.cpp" "bench/CMakeFiles/trigger_reaction.dir/trigger_reaction.cpp.o" "gcc" "bench/CMakeFiles/trigger_reaction.dir/trigger_reaction.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/scenario/CMakeFiles/dde_scenario.dir/DependInfo.cmake"
  "/root/repo/build/src/athena/CMakeFiles/dde_athena.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/dde_net.dir/DependInfo.cmake"
  "/root/repo/build/src/world/CMakeFiles/dde_world.dir/DependInfo.cmake"
  "/root/repo/build/src/decision/CMakeFiles/dde_decision.dir/DependInfo.cmake"
  "/root/repo/build/src/naming/CMakeFiles/dde_naming.dir/DependInfo.cmake"
  "/root/repo/build/src/sched/CMakeFiles/dde_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/coverage/CMakeFiles/dde_coverage.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/dde_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
