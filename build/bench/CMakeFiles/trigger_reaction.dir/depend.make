# Empty dependencies file for trigger_reaction.
# This may be replaced when dependencies are built.
