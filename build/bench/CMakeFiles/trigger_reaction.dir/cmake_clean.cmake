file(REMOVE_RECURSE
  "CMakeFiles/trigger_reaction.dir/trigger_reaction.cpp.o"
  "CMakeFiles/trigger_reaction.dir/trigger_reaction.cpp.o.d"
  "trigger_reaction"
  "trigger_reaction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trigger_reaction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
