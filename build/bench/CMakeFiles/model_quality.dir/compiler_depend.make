# Empty compiler generated dependencies file for model_quality.
# This may be replaced when dependencies are built.
