file(REMOVE_RECURSE
  "CMakeFiles/model_quality.dir/model_quality.cpp.o"
  "CMakeFiles/model_quality.dir/model_quality.cpp.o.d"
  "model_quality"
  "model_quality.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/model_quality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
