file(REMOVE_RECURSE
  "CMakeFiles/arrival_patterns.dir/arrival_patterns.cpp.o"
  "CMakeFiles/arrival_patterns.dir/arrival_patterns.cpp.o.d"
  "arrival_patterns"
  "arrival_patterns.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/arrival_patterns.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
