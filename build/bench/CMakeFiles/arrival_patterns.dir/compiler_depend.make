# Empty compiler generated dependencies file for arrival_patterns.
# This may be replaced when dependencies are built.
