file(REMOVE_RECURSE
  "CMakeFiles/coverage_quality.dir/coverage_quality.cpp.o"
  "CMakeFiles/coverage_quality.dir/coverage_quality.cpp.o.d"
  "coverage_quality"
  "coverage_quality.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/coverage_quality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
