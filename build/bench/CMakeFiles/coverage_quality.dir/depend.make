# Empty dependencies file for coverage_quality.
# This may be replaced when dependencies are built.
