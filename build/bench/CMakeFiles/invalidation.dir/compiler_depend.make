# Empty compiler generated dependencies file for invalidation.
# This may be replaced when dependencies are built.
