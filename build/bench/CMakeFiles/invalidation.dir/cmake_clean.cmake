file(REMOVE_RECURSE
  "CMakeFiles/invalidation.dir/invalidation.cpp.o"
  "CMakeFiles/invalidation.dir/invalidation.cpp.o.d"
  "invalidation"
  "invalidation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/invalidation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
