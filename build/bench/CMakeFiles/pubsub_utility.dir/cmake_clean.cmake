file(REMOVE_RECURSE
  "CMakeFiles/pubsub_utility.dir/pubsub_utility.cpp.o"
  "CMakeFiles/pubsub_utility.dir/pubsub_utility.cpp.o.d"
  "pubsub_utility"
  "pubsub_utility.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pubsub_utility.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
