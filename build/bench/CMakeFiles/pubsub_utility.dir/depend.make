# Empty dependencies file for pubsub_utility.
# This may be replaced when dependencies are built.
