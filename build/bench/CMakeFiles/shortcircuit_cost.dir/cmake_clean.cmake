file(REMOVE_RECURSE
  "CMakeFiles/shortcircuit_cost.dir/shortcircuit_cost.cpp.o"
  "CMakeFiles/shortcircuit_cost.dir/shortcircuit_cost.cpp.o.d"
  "shortcircuit_cost"
  "shortcircuit_cost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/shortcircuit_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
