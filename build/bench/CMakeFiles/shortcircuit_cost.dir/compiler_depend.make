# Empty compiler generated dependencies file for shortcircuit_cost.
# This may be replaced when dependencies are built.
