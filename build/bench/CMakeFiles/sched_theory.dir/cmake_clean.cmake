file(REMOVE_RECURSE
  "CMakeFiles/sched_theory.dir/sched_theory.cpp.o"
  "CMakeFiles/sched_theory.dir/sched_theory.cpp.o.d"
  "sched_theory"
  "sched_theory.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sched_theory.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
