
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/sched_theory.cpp" "bench/CMakeFiles/sched_theory.dir/sched_theory.cpp.o" "gcc" "bench/CMakeFiles/sched_theory.dir/sched_theory.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sched/CMakeFiles/dde_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/dde_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
