# Empty dependencies file for sched_theory.
# This may be replaced when dependencies are built.
