# Empty compiler generated dependencies file for fig2_resolution_ratio.
# This may be replaced when dependencies are built.
