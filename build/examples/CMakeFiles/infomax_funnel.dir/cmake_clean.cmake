file(REMOVE_RECURSE
  "CMakeFiles/infomax_funnel.dir/infomax_funnel.cpp.o"
  "CMakeFiles/infomax_funnel.dir/infomax_funnel.cpp.o.d"
  "infomax_funnel"
  "infomax_funnel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/infomax_funnel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
