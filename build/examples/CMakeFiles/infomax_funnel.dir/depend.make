# Empty dependencies file for infomax_funnel.
# This may be replaced when dependencies are built.
