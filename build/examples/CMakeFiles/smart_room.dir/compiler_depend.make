# Empty compiler generated dependencies file for smart_room.
# This may be replaced when dependencies are built.
