file(REMOVE_RECURSE
  "CMakeFiles/smart_room.dir/smart_room.cpp.o"
  "CMakeFiles/smart_room.dir/smart_room.cpp.o.d"
  "smart_room"
  "smart_room.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smart_room.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
