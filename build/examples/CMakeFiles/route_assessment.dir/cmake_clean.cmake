file(REMOVE_RECURSE
  "CMakeFiles/route_assessment.dir/route_assessment.cpp.o"
  "CMakeFiles/route_assessment.dir/route_assessment.cpp.o.d"
  "route_assessment"
  "route_assessment.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/route_assessment.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
