# Empty dependencies file for route_assessment.
# This may be replaced when dependencies are built.
