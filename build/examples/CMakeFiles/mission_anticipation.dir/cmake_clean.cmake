file(REMOVE_RECURSE
  "CMakeFiles/mission_anticipation.dir/mission_anticipation.cpp.o"
  "CMakeFiles/mission_anticipation.dir/mission_anticipation.cpp.o.d"
  "mission_anticipation"
  "mission_anticipation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mission_anticipation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
