# Empty compiler generated dependencies file for mission_anticipation.
# This may be replaced when dependencies are built.
