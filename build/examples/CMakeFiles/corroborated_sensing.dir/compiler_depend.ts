# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for corroborated_sensing.
