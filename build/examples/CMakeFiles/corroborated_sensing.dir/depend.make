# Empty dependencies file for corroborated_sensing.
# This may be replaced when dependencies are built.
