# Empty compiler generated dependencies file for corroborated_sensing.
# This may be replaced when dependencies are built.
