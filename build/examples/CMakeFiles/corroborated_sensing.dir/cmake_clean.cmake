file(REMOVE_RECURSE
  "CMakeFiles/corroborated_sensing.dir/corroborated_sensing.cpp.o"
  "CMakeFiles/corroborated_sensing.dir/corroborated_sensing.cpp.o.d"
  "corroborated_sensing"
  "corroborated_sensing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/corroborated_sensing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
