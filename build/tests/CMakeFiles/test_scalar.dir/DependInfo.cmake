
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_scalar.cpp" "tests/CMakeFiles/test_scalar.dir/test_scalar.cpp.o" "gcc" "tests/CMakeFiles/test_scalar.dir/test_scalar.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/world/CMakeFiles/dde_world.dir/DependInfo.cmake"
  "/root/repo/build/src/naming/CMakeFiles/dde_naming.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/dde_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
