# Empty compiler generated dependencies file for test_athena_node.
# This may be replaced when dependencies are built.
