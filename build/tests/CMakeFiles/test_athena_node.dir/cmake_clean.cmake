file(REMOVE_RECURSE
  "CMakeFiles/test_athena_node.dir/test_athena_node.cpp.o"
  "CMakeFiles/test_athena_node.dir/test_athena_node.cpp.o.d"
  "test_athena_node"
  "test_athena_node.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_athena_node.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
