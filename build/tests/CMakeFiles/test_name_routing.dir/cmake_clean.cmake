file(REMOVE_RECURSE
  "CMakeFiles/test_name_routing.dir/test_name_routing.cpp.o"
  "CMakeFiles/test_name_routing.dir/test_name_routing.cpp.o.d"
  "test_name_routing"
  "test_name_routing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_name_routing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
