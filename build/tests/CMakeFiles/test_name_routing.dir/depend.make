# Empty dependencies file for test_name_routing.
# This may be replaced when dependencies are built.
