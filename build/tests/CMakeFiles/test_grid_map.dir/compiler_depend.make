# Empty compiler generated dependencies file for test_grid_map.
# This may be replaced when dependencies are built.
