file(REMOVE_RECURSE
  "CMakeFiles/test_grid_map.dir/test_grid_map.cpp.o"
  "CMakeFiles/test_grid_map.dir/test_grid_map.cpp.o.d"
  "test_grid_map"
  "test_grid_map.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_grid_map.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
