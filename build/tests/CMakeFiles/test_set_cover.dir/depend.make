# Empty dependencies file for test_set_cover.
# This may be replaced when dependencies are built.
