# Empty compiler generated dependencies file for test_ttl_cache.
# This may be replaced when dependencies are built.
