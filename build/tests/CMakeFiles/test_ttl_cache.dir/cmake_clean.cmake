file(REMOVE_RECURSE
  "CMakeFiles/test_ttl_cache.dir/test_ttl_cache.cpp.o"
  "CMakeFiles/test_ttl_cache.dir/test_ttl_cache.cpp.o.d"
  "test_ttl_cache"
  "test_ttl_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ttl_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
