# Empty compiler generated dependencies file for test_tristate.
# This may be replaced when dependencies are built.
