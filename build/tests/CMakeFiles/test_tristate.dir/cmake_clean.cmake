file(REMOVE_RECURSE
  "CMakeFiles/test_tristate.dir/test_tristate.cpp.o"
  "CMakeFiles/test_tristate.dir/test_tristate.cpp.o.d"
  "test_tristate"
  "test_tristate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_tristate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
