# Empty dependencies file for test_sensor_field.
# This may be replaced when dependencies are built.
