file(REMOVE_RECURSE
  "CMakeFiles/test_sensor_field.dir/test_sensor_field.cpp.o"
  "CMakeFiles/test_sensor_field.dir/test_sensor_field.cpp.o.d"
  "test_sensor_field"
  "test_sensor_field.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sensor_field.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
