file(REMOVE_RECURSE
  "CMakeFiles/test_prefix_index.dir/test_prefix_index.cpp.o"
  "CMakeFiles/test_prefix_index.dir/test_prefix_index.cpp.o.d"
  "test_prefix_index"
  "test_prefix_index.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_prefix_index.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
