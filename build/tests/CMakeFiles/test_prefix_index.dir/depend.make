# Empty dependencies file for test_prefix_index.
# This may be replaced when dependencies are built.
