file(REMOVE_RECURSE
  "CMakeFiles/dde_athena.dir/directory.cpp.o"
  "CMakeFiles/dde_athena.dir/directory.cpp.o.d"
  "CMakeFiles/dde_athena.dir/node.cpp.o"
  "CMakeFiles/dde_athena.dir/node.cpp.o.d"
  "libdde_athena.a"
  "libdde_athena.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dde_athena.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
