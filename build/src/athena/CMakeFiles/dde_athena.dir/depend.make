# Empty dependencies file for dde_athena.
# This may be replaced when dependencies are built.
