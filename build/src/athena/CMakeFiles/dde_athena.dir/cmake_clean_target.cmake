file(REMOVE_RECURSE
  "libdde_athena.a"
)
