file(REMOVE_RECURSE
  "CMakeFiles/dde_common.dir/log.cpp.o"
  "CMakeFiles/dde_common.dir/log.cpp.o.d"
  "libdde_common.a"
  "libdde_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dde_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
