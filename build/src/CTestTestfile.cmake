# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("common")
subdirs("des")
subdirs("naming")
subdirs("world")
subdirs("decision")
subdirs("sched")
subdirs("coverage")
subdirs("fusion")
subdirs("workflow")
subdirs("cache")
subdirs("net")
subdirs("pubsub")
subdirs("athena")
subdirs("scenario")
