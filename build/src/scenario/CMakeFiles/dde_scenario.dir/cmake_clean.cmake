file(REMOVE_RECURSE
  "CMakeFiles/dde_scenario.dir/route_scenario.cpp.o"
  "CMakeFiles/dde_scenario.dir/route_scenario.cpp.o.d"
  "CMakeFiles/dde_scenario.dir/trigger_scenario.cpp.o"
  "CMakeFiles/dde_scenario.dir/trigger_scenario.cpp.o.d"
  "libdde_scenario.a"
  "libdde_scenario.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dde_scenario.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
