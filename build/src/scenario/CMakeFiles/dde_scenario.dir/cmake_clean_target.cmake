file(REMOVE_RECURSE
  "libdde_scenario.a"
)
