# Empty dependencies file for dde_scenario.
# This may be replaced when dependencies are built.
