file(REMOVE_RECURSE
  "CMakeFiles/dde_sched.dir/lvf.cpp.o"
  "CMakeFiles/dde_sched.dir/lvf.cpp.o.d"
  "CMakeFiles/dde_sched.dir/multichannel.cpp.o"
  "CMakeFiles/dde_sched.dir/multichannel.cpp.o.d"
  "libdde_sched.a"
  "libdde_sched.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dde_sched.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
