# Empty compiler generated dependencies file for dde_sched.
# This may be replaced when dependencies are built.
