file(REMOVE_RECURSE
  "libdde_sched.a"
)
