file(REMOVE_RECURSE
  "libdde_fusion.a"
)
