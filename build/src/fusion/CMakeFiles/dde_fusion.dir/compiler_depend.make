# Empty compiler generated dependencies file for dde_fusion.
# This may be replaced when dependencies are built.
