file(REMOVE_RECURSE
  "CMakeFiles/dde_fusion.dir/corroboration.cpp.o"
  "CMakeFiles/dde_fusion.dir/corroboration.cpp.o.d"
  "CMakeFiles/dde_fusion.dir/reliability.cpp.o"
  "CMakeFiles/dde_fusion.dir/reliability.cpp.o.d"
  "libdde_fusion.a"
  "libdde_fusion.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dde_fusion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
