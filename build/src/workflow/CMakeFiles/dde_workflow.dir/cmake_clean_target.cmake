file(REMOVE_RECURSE
  "libdde_workflow.a"
)
