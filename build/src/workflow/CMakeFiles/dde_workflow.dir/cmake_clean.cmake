file(REMOVE_RECURSE
  "CMakeFiles/dde_workflow.dir/mining.cpp.o"
  "CMakeFiles/dde_workflow.dir/mining.cpp.o.d"
  "CMakeFiles/dde_workflow.dir/workflow.cpp.o"
  "CMakeFiles/dde_workflow.dir/workflow.cpp.o.d"
  "libdde_workflow.a"
  "libdde_workflow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dde_workflow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
