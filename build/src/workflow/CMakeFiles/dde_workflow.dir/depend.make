# Empty dependencies file for dde_workflow.
# This may be replaced when dependencies are built.
