# Empty dependencies file for dde_decision.
# This may be replaced when dependencies are built.
