file(REMOVE_RECURSE
  "CMakeFiles/dde_decision.dir/algebra.cpp.o"
  "CMakeFiles/dde_decision.dir/algebra.cpp.o.d"
  "CMakeFiles/dde_decision.dir/expression.cpp.o"
  "CMakeFiles/dde_decision.dir/expression.cpp.o.d"
  "CMakeFiles/dde_decision.dir/ordering.cpp.o"
  "CMakeFiles/dde_decision.dir/ordering.cpp.o.d"
  "CMakeFiles/dde_decision.dir/planner.cpp.o"
  "CMakeFiles/dde_decision.dir/planner.cpp.o.d"
  "libdde_decision.a"
  "libdde_decision.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dde_decision.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
