file(REMOVE_RECURSE
  "libdde_decision.a"
)
