
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/decision/algebra.cpp" "src/decision/CMakeFiles/dde_decision.dir/algebra.cpp.o" "gcc" "src/decision/CMakeFiles/dde_decision.dir/algebra.cpp.o.d"
  "/root/repo/src/decision/expression.cpp" "src/decision/CMakeFiles/dde_decision.dir/expression.cpp.o" "gcc" "src/decision/CMakeFiles/dde_decision.dir/expression.cpp.o.d"
  "/root/repo/src/decision/ordering.cpp" "src/decision/CMakeFiles/dde_decision.dir/ordering.cpp.o" "gcc" "src/decision/CMakeFiles/dde_decision.dir/ordering.cpp.o.d"
  "/root/repo/src/decision/planner.cpp" "src/decision/CMakeFiles/dde_decision.dir/planner.cpp.o" "gcc" "src/decision/CMakeFiles/dde_decision.dir/planner.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/dde_common.dir/DependInfo.cmake"
  "/root/repo/build/src/naming/CMakeFiles/dde_naming.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
