# Empty compiler generated dependencies file for dde_naming.
# This may be replaced when dependencies are built.
