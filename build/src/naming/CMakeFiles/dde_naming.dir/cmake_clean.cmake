file(REMOVE_RECURSE
  "CMakeFiles/dde_naming.dir/name.cpp.o"
  "CMakeFiles/dde_naming.dir/name.cpp.o.d"
  "libdde_naming.a"
  "libdde_naming.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dde_naming.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
