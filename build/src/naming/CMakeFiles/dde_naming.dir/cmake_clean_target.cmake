file(REMOVE_RECURSE
  "libdde_naming.a"
)
