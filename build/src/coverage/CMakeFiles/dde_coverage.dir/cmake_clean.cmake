file(REMOVE_RECURSE
  "CMakeFiles/dde_coverage.dir/set_cover.cpp.o"
  "CMakeFiles/dde_coverage.dir/set_cover.cpp.o.d"
  "libdde_coverage.a"
  "libdde_coverage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dde_coverage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
