file(REMOVE_RECURSE
  "libdde_coverage.a"
)
