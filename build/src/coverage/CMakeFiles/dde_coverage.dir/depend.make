# Empty dependencies file for dde_coverage.
# This may be replaced when dependencies are built.
