file(REMOVE_RECURSE
  "libdde_pubsub.a"
)
