# Empty compiler generated dependencies file for dde_pubsub.
# This may be replaced when dependencies are built.
