file(REMOVE_RECURSE
  "CMakeFiles/dde_pubsub.dir/utility.cpp.o"
  "CMakeFiles/dde_pubsub.dir/utility.cpp.o.d"
  "libdde_pubsub.a"
  "libdde_pubsub.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dde_pubsub.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
