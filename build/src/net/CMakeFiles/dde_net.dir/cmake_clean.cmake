file(REMOVE_RECURSE
  "CMakeFiles/dde_net.dir/name_routing.cpp.o"
  "CMakeFiles/dde_net.dir/name_routing.cpp.o.d"
  "CMakeFiles/dde_net.dir/network.cpp.o"
  "CMakeFiles/dde_net.dir/network.cpp.o.d"
  "CMakeFiles/dde_net.dir/topology.cpp.o"
  "CMakeFiles/dde_net.dir/topology.cpp.o.d"
  "libdde_net.a"
  "libdde_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dde_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
