file(REMOVE_RECURSE
  "libdde_net.a"
)
