# Empty dependencies file for dde_net.
# This may be replaced when dependencies are built.
