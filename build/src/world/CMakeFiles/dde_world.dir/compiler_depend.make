# Empty compiler generated dependencies file for dde_world.
# This may be replaced when dependencies are built.
