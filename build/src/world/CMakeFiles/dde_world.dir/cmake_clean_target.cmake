file(REMOVE_RECURSE
  "libdde_world.a"
)
