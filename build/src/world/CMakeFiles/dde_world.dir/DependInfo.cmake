
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/world/dynamics.cpp" "src/world/CMakeFiles/dde_world.dir/dynamics.cpp.o" "gcc" "src/world/CMakeFiles/dde_world.dir/dynamics.cpp.o.d"
  "/root/repo/src/world/grid_map.cpp" "src/world/CMakeFiles/dde_world.dir/grid_map.cpp.o" "gcc" "src/world/CMakeFiles/dde_world.dir/grid_map.cpp.o.d"
  "/root/repo/src/world/scalar.cpp" "src/world/CMakeFiles/dde_world.dir/scalar.cpp.o" "gcc" "src/world/CMakeFiles/dde_world.dir/scalar.cpp.o.d"
  "/root/repo/src/world/sensor_field.cpp" "src/world/CMakeFiles/dde_world.dir/sensor_field.cpp.o" "gcc" "src/world/CMakeFiles/dde_world.dir/sensor_field.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/dde_common.dir/DependInfo.cmake"
  "/root/repo/build/src/naming/CMakeFiles/dde_naming.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
