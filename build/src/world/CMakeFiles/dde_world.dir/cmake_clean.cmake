file(REMOVE_RECURSE
  "CMakeFiles/dde_world.dir/dynamics.cpp.o"
  "CMakeFiles/dde_world.dir/dynamics.cpp.o.d"
  "CMakeFiles/dde_world.dir/grid_map.cpp.o"
  "CMakeFiles/dde_world.dir/grid_map.cpp.o.d"
  "CMakeFiles/dde_world.dir/scalar.cpp.o"
  "CMakeFiles/dde_world.dir/scalar.cpp.o.d"
  "CMakeFiles/dde_world.dir/sensor_field.cpp.o"
  "CMakeFiles/dde_world.dir/sensor_field.cpp.o.d"
  "libdde_world.a"
  "libdde_world.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dde_world.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
