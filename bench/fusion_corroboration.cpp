// Sec. IV-B experiments: corroborating noisy evidence.
//
// (a) Retrieval cost of reaching a confidence threshold, greedy vs exact
//     corroboration planning, as the threshold tightens.
// (b) Empirical decision accuracy of executed plans versus the planned
//     confidence (the guarantee the scheduler is buying).
// (c) Source-reliability learning: estimation error of annotator-feedback
//     profiles versus number of feedback observations, including the
//     bounded influence of an untrusted lying annotator.
#include <cstddef>
#include <cstdio>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/stats.h"
#include "fusion/belief.h"
#include "fusion/corroboration.h"
#include "fusion/reliability.h"
#include "harness/parallel_runner.h"

using namespace dde;
using namespace dde::fusion;

namespace {

std::vector<NoisySource> random_sources(Rng& rng) {
  std::vector<NoisySource> out;
  for (std::uint64_t i = 0, n = 2 + rng.below(4); i < n; ++i) {
    out.push_back(NoisySource{SourceId{i}, rng.uniform(0.6, 0.95),
                              rng.uniform(0.5, 4.0),
                              1 + static_cast<int>(rng.below(4))});
  }
  return out;
}

void cost_vs_threshold(int trials) {
  std::printf("(a) plan cost vs confidence threshold (%d instances/row)\n",
              trials);
  std::printf("%-10s %10s %10s %10s %12s\n", "threshold", "greedy", "exact",
              "ratio", "achievable%");
  // Each threshold row reseeds its own Rng: rows run in parallel and print
  // in declared order.
  const std::vector<double> thresholds{0.7, 0.8, 0.9, 0.95, 0.99};
  const auto rows = harness::run_indexed(
      thresholds.size(), [&](std::size_t row) {
        const double th = thresholds[row];
        RunningStats greedy_cost;
        RunningStats exact_cost;
        RunningStats ratio;
        int achievable = 0;
        Rng rng(1);
        for (int t = 0; t < trials; ++t) {
          const auto sources = random_sources(rng);
          const auto g = greedy_corroboration(sources, th);
          const auto e = exact_corroboration(sources, th);
          if (!e.achievable) continue;
          ++achievable;
          greedy_cost.add(g.cost);
          exact_cost.add(e.cost);
          ratio.add(g.cost / e.cost);
        }
        char line[96];
        std::snprintf(line, sizeof line, "%-10.2f %10.2f %10.2f %9.3fx %11.1f%%\n",
                      th, greedy_cost.mean(), exact_cost.mean(), ratio.mean(),
                      100.0 * achievable / trials);
        return std::string(line);
      });
  for (const auto& line : rows) std::fputs(line.c_str(), stdout);
  std::printf("\n");
}

void accuracy_of_plans(int trials) {
  std::printf("(b) empirical accuracy of executed plans (%d worlds/row)\n",
              trials);
  std::printf("%-10s %10s %12s %12s\n", "threshold", "decided%", "accuracy",
              "mean-obs");
  // Serial on purpose: one Rng stream is shared across the threshold rows,
  // so rows are not independent and cannot be fanned out.
  Rng rng(2);
  for (double th : {0.7, 0.8, 0.9, 0.95}) {
    int decided = 0;
    int correct = 0;
    RunningStats observations;
    for (int t = 0; t < trials; ++t) {
      const auto sources = random_sources(rng);
      const auto plan = exact_corroboration(sources, th);
      if (!plan.achievable) continue;
      const bool truth = rng.chance(0.5);
      LabelBelief belief;
      int obs = 0;
      for (std::size_t i = 0; i < sources.size(); ++i) {
        for (int k = 0; k < plan.counts[i]; ++k) {
          const bool reading =
              rng.chance(sources[i].reliability) ? truth : !truth;
          belief.observe(reading, sources[i].reliability);
          ++obs;
        }
      }
      observations.add(obs);
      const Tristate verdict = belief.decided(th);
      if (verdict != Tristate::kUnknown) {
        ++decided;
        correct += (verdict == Tristate::kTrue) == truth ? 1 : 0;
      }
    }
    std::printf("%-10.2f %9.1f%% %12.3f %12.1f\n", th,
                100.0 * decided / trials,
                decided ? static_cast<double>(correct) / decided : 0.0,
                observations.mean());
  }
  std::printf("(accuracy among decided labels must meet the threshold)\n\n");
}

void reliability_learning() {
  std::printf("(c) reliability learning: |estimate - truth| vs feedback\n");
  std::printf("%-12s %10s %10s %14s\n", "feedback", "honest", "with-liar",
              "trusted-liar");
  const double truth = 0.85;
  // Each (n, rep) pair derives its Rng from its indices: rows run in
  // parallel and print in declared order.
  const std::vector<int> feedback_counts{5, 20, 100, 500, 2000};
  const auto rows = harness::run_indexed(
      feedback_counts.size(), [&](std::size_t row) {
    const int n = feedback_counts[row];
    RunningStats honest_err;
    RunningStats liar_err;
    RunningStats trusted_liar_err;
    for (int rep = 0; rep < 100; ++rep) {
      Rng rng(static_cast<std::uint64_t>(n * 1000 + rep));
      ReliabilityProfile honest;
      ReliabilityProfile with_liar;     // liar trusted at 0.05
      ReliabilityProfile trusted_liar;  // liar trusted at 1.0
      for (int i = 0; i < n; ++i) {
        const bool useful = rng.chance(truth);
        honest.record(SourceId{0}, useful, 1.0);
        with_liar.record(SourceId{0}, useful, 1.0);
        with_liar.record(SourceId{0}, false, 0.05);
        trusted_liar.record(SourceId{0}, useful, 1.0);
        trusted_liar.record(SourceId{0}, false, 1.0);
      }
      honest_err.add(std::abs(honest.reliability(SourceId{0}) - truth));
      liar_err.add(std::abs(with_liar.reliability(SourceId{0}) - truth));
      trusted_liar_err.add(
          std::abs(trusted_liar.reliability(SourceId{0}) - truth));
    }
    char line[64];
    std::snprintf(line, sizeof line, "%-12d %10.3f %10.3f %14.3f\n", n,
                  honest_err.mean(), liar_err.mean(), trusted_liar_err.mean());
    return std::string(line);
  });
  for (const auto& line : rows) std::fputs(line.c_str(), stdout);
  std::printf(
      "(low-trust feedback has bounded influence; a fully trusted liar\n"
      " permanently corrupts the profile — trust weighting matters)\n");
}

}  // namespace

int main(int argc, char** argv) {
  const int trials = argc > 1 ? std::atoi(argv[1]) : 2000;
  std::printf("FUSION — noisy sensors, corroboration, reliability (Sec. IV-B)\n\n");
  cost_vs_threshold(trials / 4);
  accuracy_of_plans(trials);
  reliability_learning();
  return 0;
}
