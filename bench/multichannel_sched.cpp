// Sec. IV-B experiments: beyond the single-channel model.
//
// (a) Multi-channel retrieval: feasibility ratio of random task sets as the
//     number of parallel channels grows, per band-ordering policy.
// (b) Non-independent queries: total retrieval cost with object sharing vs
//     independent per-query retrieval, as the overlap between queries'
//     evidence sets grows; plus the feasibility gap between the global-LVF
//     heuristic and exhaustive search.
#include <cstddef>
#include <cstdio>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/stats.h"
#include "harness/parallel_runner.h"
#include "sched/multichannel.h"

using namespace dde;
using namespace dde::sched;

namespace {

void channels_sweep(int trials) {
  std::printf("(a) feasibility vs parallel channels (%d task sets/cell)\n",
              trials);
  std::printf("%-10s %10s %10s %10s\n", "channels", "minslack", "edf",
              "declared");
  // Rows own their Rng streams: run them in parallel, print in order.
  const std::vector<std::size_t> channel_counts{1, 2, 3, 4, 8};
  const auto rows = harness::run_indexed(
      channel_counts.size(), [&](std::size_t row) {
    const std::size_t channels = channel_counts[row];
    int ok_minslack = 0;
    int ok_edf = 0;
    int ok_decl = 0;
    Rng rng(5);
    for (int t = 0; t < trials; ++t) {
      std::vector<DecisionTask> tasks;
      for (std::uint64_t q = 0; q < 5; ++q) {
        std::vector<RetrievalObject> objs;
        for (std::size_t i = 0, n = 2 + rng.below(4); i < n; ++i) {
          objs.push_back(RetrievalObject{
              ObjectId{q * 10 + i}, SimTime::seconds(rng.uniform(0.5, 3.0)),
              SimTime::seconds(rng.uniform(3.0, 20.0))});
        }
        tasks.push_back(DecisionTask{QueryId{q}, SimTime::zero(),
                                     SimTime::seconds(rng.uniform(6.0, 25.0)),
                                     std::move(objs)});
      }
      ok_minslack += schedule_multichannel(tasks, channels,
                                           TaskOrder::kMinSlackBand,
                                           ObjectOrder::kLvf)
                         .feasible();
      ok_edf += schedule_multichannel(tasks, channels, TaskOrder::kEdf,
                                      ObjectOrder::kLvf)
                    .feasible();
      ok_decl += schedule_multichannel(tasks, channels, TaskOrder::kDeclared,
                                       ObjectOrder::kDeclared)
                     .feasible();
    }
    char line[80];
    std::snprintf(line, sizeof line, "%-10zu %10.3f %10.3f %10.3f\n", channels,
                  ok_minslack * 1.0 / trials, ok_edf * 1.0 / trials,
                  ok_decl * 1.0 / trials);
    return std::string(line);
  });
  for (const auto& line : rows) std::fputs(line.c_str(), stdout);
  std::printf("\n");
}

void sharing_sweep(int trials) {
  std::printf("(b) object sharing across overlapping queries (%d/cell)\n",
              trials);
  std::printf("%-10s %12s %12s %10s %12s\n", "overlap", "sharedCost",
              "indepCost", "saving", "feas(shared)");
  const std::vector<double> overlaps{0.0, 0.25, 0.5, 0.75, 1.0};
  const auto rows = harness::run_indexed(
      overlaps.size(), [&](std::size_t row) {
    const double overlap = overlaps[row];
    RunningStats shared_cost;
    RunningStats indep_cost;
    RunningStats feas;
    Rng rng(9);
    for (int t = 0; t < trials; ++t) {
      SharedWorkload w;
      // Objects 0-2 are shared; each of the 4 tasks additionally has a
      // disjoint private range of 3. Each task needs 3 objects, drawn from
      // the shared pool with probability `overlap`, else from its private
      // range — so overlap 0 means zero cross-task sharing.
      for (std::size_t i = 0; i < 3 + 4 * 3; ++i) {
        w.objects.push_back(RetrievalObject{
            ObjectId{i}, SimTime::seconds(rng.uniform(0.5, 2.0)),
            SimTime::seconds(rng.uniform(5.0, 25.0))});
      }
      for (std::uint64_t q = 0; q < 4; ++q) {
        SharedWorkload::Task task;
        task.id = QueryId{q};
        task.relative_deadline = SimTime::seconds(rng.uniform(8.0, 25.0));
        while (task.needs.size() < 3) {
          const std::size_t idx = rng.chance(overlap)
                                      ? rng.below(3)              // shared
                                      : 3 + q * 3 + rng.below(3); // private
          if (std::find(task.needs.begin(), task.needs.end(), idx) ==
              task.needs.end()) {
            task.needs.push_back(idx);
          }
        }
        w.tasks.push_back(std::move(task));
      }
      const auto s = schedule_shared_lvf(w);
      shared_cost.add(s.total_cost.to_seconds());
      indep_cost.add(independent_retrieval_cost(w).to_seconds());
      feas.add(static_cast<double>(s.feasible_count()) /
               static_cast<double>(w.tasks.size()));
    }
    char line[96];
    std::snprintf(line, sizeof line, "%-10.2f %12.2f %12.2f %9.1f%% %12.3f\n",
                  overlap, shared_cost.mean(), indep_cost.mean(),
                  100.0 * (1.0 - shared_cost.mean() / indep_cost.mean()),
                  feas.mean());
    return std::string(line);
  });
  for (const auto& line : rows) std::fputs(line.c_str(), stdout);
  std::printf(
      "\nsavings grow with overlap: shared objects are retrieved once and\n"
      "reused across every query that needs them.\n");
}

}  // namespace

int main(int argc, char** argv) {
  const int trials = argc > 1 ? std::atoi(argv[1]) : 2000;
  std::printf("MULTI-CHANNEL & SHARED-OBJECT SCHEDULING (Sec. IV-B)\n\n");
  channels_sweep(trials);
  sharing_sweep(trials);
  return 0;
}
