// Library micro-benchmarks (google-benchmark): the hot paths of the
// substrate — DES event throughput, name/prefix-trie operations, decision
// expression evaluation and planning, TTL-cache operations, and PRNG.
//
// Serial on purpose (ignores DDE_BENCH_JOBS): google-benchmark measures
// wall-clock time per iteration, so concurrent cases would contend.
#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "common/stats.h"
#include "obs/bench_report.h"

#include "athena/directory.h"
#include "athena/node.h"
#include "cache/ttl_cache.h"
#include "common/flat_hash.h"
#include "coverage/set_cover.h"
#include "pubsub/utility.h"
#include "common/rng.h"
#include "decision/ordering.h"
#include "decision/planner.h"
#include "des/simulator.h"
#include "naming/prefix_index.h"
#include "net/network.h"
#include "net/packet_queue.h"
#include "world/sensor_field.h"

namespace {

using namespace dde;

void BM_RngUniform(benchmark::State& state) {
  Rng rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng.uniform());
  }
}
BENCHMARK(BM_RngUniform);

void BM_DesScheduleRun(benchmark::State& state) {
  const auto n = static_cast<std::uint64_t>(state.range(0));
  for (auto _ : state) {
    des::Simulator sim;
    for (std::uint64_t i = 0; i < n; ++i) {
      sim.schedule_at(SimTime::micros(static_cast<SimTime::rep>(i * 7 % 1000)),
                      [] {});
    }
    sim.run_until();
    benchmark::DoNotOptimize(sim.executed_events());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(n));
}
BENCHMARK(BM_DesScheduleRun)->Arg(1000)->Arg(10000);

void BM_DesSelfScheduling(benchmark::State& state) {
  for (auto _ : state) {
    des::Simulator sim;
    std::function<void()> tick = [&] {
      if (sim.executed_events() < 10000) {
        sim.schedule_after(SimTime::micros(1), tick);
      }
    };
    sim.schedule_at(SimTime::zero(), tick);
    sim.run_until();
    benchmark::DoNotOptimize(sim.now());
  }
  state.SetItemsProcessed(state.iterations() * 10000);
}
BENCHMARK(BM_DesSelfScheduling);

void BM_DesCancelChurn(benchmark::State& state) {
  // The watchdog pattern that motivated tombstone cancellation: every
  // timer is re-armed before it fires, so the ladder queue spends its life
  // absorbing cancels and compacting dead slots.
  for (auto _ : state) {
    des::Simulator sim;
    auto watchdog = sim.schedule_at(SimTime::seconds(1), [] {});
    for (int i = 0; i < 10000; ++i) {
      sim.cancel(watchdog);
      watchdog = sim.schedule_at(
          SimTime::seconds(1) +
              SimTime::micros(static_cast<SimTime::rep>(i * 13 % 500)),
          [] {});
    }
    sim.run_until();
    benchmark::DoNotOptimize(sim.executed_events());
  }
  state.SetItemsProcessed(state.iterations() * 10000);
}
BENCHMARK(BM_DesCancelChurn);

void BM_FlatPacketQueuePushPop(benchmark::State& state) {
  // Steady-state link queue traffic: priority-mixed pushes against in-order
  // pops, holding ~64 packets in flight.
  net::FlatPacketQueue<int> q;
  Rng rng(10);
  for (int i = 0; i < 64; ++i) {
    q.push(static_cast<int>(rng.below(4)), i);
  }
  for (auto _ : state) {
    q.push(static_cast<int>(rng.below(4)), 0);
    benchmark::DoNotOptimize(q.pop_front());
  }
}
BENCHMARK(BM_FlatPacketQueuePushPop);

void BM_FlatPacketQueueOverloadEvict(benchmark::State& state) {
  // The overload path: every push over the cap evicts the
  // lowest-priority-newest victim (linear max-scan + heap remove).
  net::FlatPacketQueue<int> q;
  Rng rng(11);
  for (int i = 0; i < 64; ++i) {
    q.push(static_cast<int>(rng.below(4)), i);
  }
  for (auto _ : state) {
    q.push(static_cast<int>(rng.below(4)), 0);
    benchmark::DoNotOptimize(q.pop_back());
  }
}
BENCHMARK(BM_FlatPacketQueueOverloadEvict);

naming::Name random_name(Rng& rng, int depth) {
  naming::Name n;
  for (int i = 0; i < depth; ++i) {
    n = n.child(std::string("c") + std::to_string(rng.below(10)));
  }
  return n;
}

void BM_PrefixIndexInsertFind(benchmark::State& state) {
  Rng rng(2);
  std::vector<naming::Name> names;
  for (int i = 0; i < 1000; ++i) names.push_back(random_name(rng, 5));
  for (auto _ : state) {
    naming::PrefixIndex<int> idx;
    for (std::size_t i = 0; i < names.size(); ++i) {
      idx.insert(names[i], static_cast<int>(i));
    }
    int found = 0;
    for (const auto& n : names) {
      if (idx.find(n) != nullptr) ++found;
    }
    benchmark::DoNotOptimize(found);
  }
  state.SetItemsProcessed(state.iterations() * 2000);
}
BENCHMARK(BM_PrefixIndexInsertFind);

void BM_PrefixIndexNearest(benchmark::State& state) {
  Rng rng(3);
  naming::PrefixIndex<int> idx;
  for (int i = 0; i < 1000; ++i) idx.insert(random_name(rng, 5), i);
  std::vector<naming::Name> queries;
  for (int i = 0; i < 100; ++i) queries.push_back(random_name(rng, 5));
  for (auto _ : state) {
    for (const auto& q : queries) {
      benchmark::DoNotOptimize(idx.nearest(q));
    }
  }
  state.SetItemsProcessed(state.iterations() * 100);
}
BENCHMARK(BM_PrefixIndexNearest);

decision::DnfExpr route_expr(std::size_t disjuncts, std::size_t terms) {
  decision::DnfExpr e;
  std::uint64_t next = 0;
  for (std::size_t d = 0; d < disjuncts; ++d) {
    decision::Conjunction c;
    for (std::size_t t = 0; t < terms; ++t) {
      c.terms.push_back(decision::Term{LabelId{next++}, false});
    }
    e.add_disjunct(std::move(c));
  }
  return e;
}

void BM_ExpressionEvaluate(benchmark::State& state) {
  const auto e = route_expr(5, 7);
  decision::Assignment a;
  Rng rng(4);
  for (std::uint64_t l = 0; l < 35; l += 2) {
    decision::LabelValue v;
    v.label = LabelId{l};
    v.value = rng.chance(0.5) ? Tristate::kTrue : Tristate::kFalse;
    v.evaluated_at = SimTime::zero();
    v.validity = SimTime::seconds(100);
    a.set(v);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(e.evaluate(a, SimTime::seconds(1)));
  }
}
BENCHMARK(BM_ExpressionEvaluate);

void BM_PlanRetrievalOrder(benchmark::State& state) {
  const auto e = route_expr(5, 7);
  decision::MetaTable meta;
  Rng rng(5);
  for (std::uint64_t l = 0; l < 35; ++l) {
    meta.set(LabelId{l},
             decision::LabelMeta{rng.uniform(0.5, 5.0), SimTime::seconds(1),
                                 rng.uniform(0.1, 0.9),
                                 SimTime::seconds(rng.uniform(30, 300))});
  }
  decision::Assignment a;
  for (auto _ : state) {
    benchmark::DoNotOptimize(decision::plan_retrieval_order(
        e, a, SimTime::zero(), meta.fn(),
        decision::OrderPolicy::kVariationalLvf, SimTime::seconds(100)));
  }
}
BENCHMARK(BM_PlanRetrievalOrder);

void BM_TtlCachePutGet(benchmark::State& state) {
  cache::TtlCache<int, int> c(256);
  Rng rng(6);
  int t = 0;
  for (auto _ : state) {
    const int key = static_cast<int>(rng.below(512));
    ++t;
    c.put(key, key, SimTime::seconds(t + 100), SimTime::seconds(t));
    benchmark::DoNotOptimize(
        c.get(static_cast<int>(rng.below(512)), SimTime::seconds(t),
              SimTime::seconds(t)));
  }
}
BENCHMARK(BM_TtlCachePutGet);

void BM_TtlCacheExpireChurn(benchmark::State& state) {
  // Expiry-dominated traffic: every entry dies by TTL shortly after
  // insertion, so each put's prune pass is doing real collection work.
  // This is the case the lazy expiry heap exists for — the old
  // implementation rescanned the whole map on every put.
  cache::TtlCache<int, int> c(256);
  Rng rng(12);
  int t = 0;
  for (auto _ : state) {
    const int key = static_cast<int>(rng.below(1024));
    ++t;
    c.put(key, key, SimTime::millis(t + 8), SimTime::millis(t));
    benchmark::DoNotOptimize(
        c.get(static_cast<int>(rng.below(1024)), SimTime::millis(t),
              SimTime::millis(t)));
  }
}
BENCHMARK(BM_TtlCacheExpireChurn);

void BM_FlatU64MapChurn(benchmark::State& state) {
  // The athena dedup/interest-table access mix: upsert + point lookup +
  // trailing-window erase, holding ~4k live keys through tombstone churn.
  FlatU64Map<std::uint64_t> m(4096);
  Rng rng(13);
  std::uint64_t k = 0;
  for (int i = 0; i < 4096; ++i) m.insert(k++, k);
  for (auto _ : state) {
    m.insert(k, k);
    benchmark::DoNotOptimize(m.find(k - rng.below(4096)));
    m.erase(k - 4096);
    ++k;
  }
}
BENCHMARK(BM_FlatU64MapChurn);

void BM_AthenaQueryInitResolve(benchmark::State& state) {
  // The per-query hot path end to end on a single-node world: pool slot
  // creation, announce dedup, source selection, local retrieval through
  // the object cache, decision evaluation, finish, and slot retirement.
  world::GridMap map{2, 2};
  world::ViabilityProcess truth(
      std::vector<world::SegmentDynamics>(
          map.segment_count(), world::SegmentDynamics{1.0, SimTime::seconds(1e7)}),
      Rng(14));
  world::SensorInfo s0;
  s0.id = SourceId{0};
  s0.name = naming::Name::parse("/b/s0");
  s0.covers = {SegmentId{0}};
  s0.object_bytes = 1000;
  s0.validity = SimTime::seconds(100);
  world::SensorField field(map, truth, {s0});
  net::Topology topo;
  const NodeId n0 = topo.add_node();
  topo.compute_routes();
  des::Simulator sim;
  net::Network net(sim, topo);
  athena::Directory dir(topo, field, {n0}, {{LabelId{0}, 0.9}});
  athena::AthenaMetrics metrics;
  athena::AthenaNode node(n0, net, dir, field, config_for(athena::Scheme::kLvfl),
                          metrics);
  decision::DnfExpr expr;
  expr.add_disjunct(decision::Conjunction{{decision::Term{LabelId{0}, false}}});
  for (auto _ : state) {
    benchmark::DoNotOptimize(node.query_init(expr, SimTime::millis(1)));
    sim.run_until(sim.now() + SimTime::millis(2));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_AthenaQueryInitResolve);

void BM_GreedySetCover(benchmark::State& state) {
  Rng rng(7);
  coverage::CoverInstance inst;
  for (std::uint32_t e = 0; e < 40; ++e) inst.universe.push_back(e);
  for (int i = 0; i < 30; ++i) {
    coverage::CoverSet set;
    set.cost = rng.uniform(0.5, 5.0);
    for (std::uint32_t e = 0; e < 40; ++e) {
      if (rng.chance(0.2)) set.elements.push_back(e);
    }
    inst.sets.push_back(std::move(set));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(coverage::greedy_cover(inst));
  }
}
BENCHMARK(BM_GreedySetCover);

void BM_InfomaxTriage(benchmark::State& state) {
  Rng rng(8);
  std::vector<pubsub::Item> items;
  for (int i = 0; i < 64; ++i) {
    pubsub::Item it;
    it.name = naming::Name::parse("/r" + std::to_string(rng.below(6)) +
                                  "/s" + std::to_string(i));
    it.bytes = 20 + rng.below(100);
    it.base_utility = rng.uniform(0.1, 2.0);
    items.push_back(std::move(it));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(pubsub::infomax_triage(items, 1500));
  }
}
BENCHMARK(BM_InfomaxTriage);

void BM_VariationalLvfOrder(benchmark::State& state) {
  Rng rng(9);
  decision::MetaTable meta;
  decision::Conjunction c;
  for (std::uint64_t l = 0; l < 12; ++l) {
    c.terms.push_back(decision::Term{LabelId{l}, false});
    meta.set(LabelId{l},
             decision::LabelMeta{rng.uniform(0.5, 5.0),
                                 SimTime::seconds(rng.uniform(1, 4)),
                                 rng.uniform(0.1, 0.9),
                                 SimTime::seconds(rng.uniform(10, 100))});
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(decision::variational_lvf_order(
        c, meta.fn(), SimTime::zero(), SimTime::seconds(60)));
  }
}
BENCHMARK(BM_VariationalLvfOrder);

/// Console output exactly as stock google-benchmark, plus every finished
/// run captured into the machine-readable report (one metric per benchmark
/// under the "micro" scheme, adjusted real time in ns).
class ReportingReporter : public benchmark::ConsoleReporter {
 public:
  explicit ReportingReporter(obs::BenchReport& report) : report_(report) {}

  void ReportRuns(const std::vector<Run>& runs) override {
    for (const Run& run : runs) {
      if (run.error_occurred || run.run_type != Run::RT_Iteration) continue;
      RunningStats stats;
      stats.add(run.GetAdjustedRealTime());
      report_.add_metric("micro", run.benchmark_name() + "_ns", stats);
    }
    ConsoleReporter::ReportRuns(runs);
  }

 private:
  obs::BenchReport& report_;
};

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  dde::obs::BenchReport report("micro_core");
  ReportingReporter reporter(report);
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();
  report.write();
  return 0;
}
