// Vehicular teleoperation under bursty cellular loss (docs/SCENARIOS.md,
// "teleop" scenario): does redundant multipath transmission of critical
// objects rescue tight-deadline decisions?
//
// Sweeps multipath redundancy K (parallel carrier links used per critical
// transfer) × Gilbert–Elliott mean burst length (1 ≈ independent loss;
// larger = burstier at the same average rate) × decision deadline. The
// tight deadline sits below the retry-timeout floor, so a lost single-path
// transfer cannot be retried in time — redundancy is the only defense, and
// the K≥2 columns should hold their hit rate as burstiness grows while K=1
// collapses. The relaxed deadline has retry slack, bounding what redundancy
// can add there.
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_util.h"
#include "harness/parallel_runner.h"
#include "obs/bench_report.h"
#include "scenario/teleop_scenario.h"

int main(int argc, char** argv) {
  using namespace dde;
  const int seeds = argc > 1 ? std::atoi(argv[1]) : 10;

  const std::vector<double> deadlines_s = {5.0, 20.0};
  const std::vector<double> burst_lens = {1.0, 8.0, 32.0};
  const std::vector<std::size_t> redundancy = {1, 2, 3};

  std::printf("TELEOP MOBILITY — redundancy x burstiness x deadline (%d seeds)\n",
              seeds);
  std::printf(
      "(6 vehicles, 3 carriers, 5%% average cellular loss; hit = decision "
      "within deadline)\n\n");

  obs::BenchReport report("teleop_mobility");

  for (double deadline : deadlines_s) {
    std::printf("deadline %.0f s — deadline-hit rate (and replica MB)\n",
                deadline);
    std::printf("%-10s", "burst");
    for (std::size_t k : redundancy) {
      std::printf(" %8s%zu", "K=", k);
    }
    std::printf(" | %10s %10s\n", "MB@K=3", "dups@K=3");
    for (double burst : burst_lens) {
      std::printf("L=%-8.0f", burst);
      double mb_k3 = 0.0;
      double dups_k3 = 0.0;
      for (std::size_t k : redundancy) {
        scenario::TeleopScenarioConfig cfg;
        cfg.query_deadline = SimTime::seconds(deadline);
        cfg.mean_burst_len = burst;
        cfg.multipath_redundancy = k;

        RunningStats hit_rate;
        RunningStats latency_s;
        RunningStats megabytes;
        RunningStats replica_copies;
        RunningStats replica_dups;
        const auto runs = harness::run_indexed(
            static_cast<std::size_t>(seeds < 0 ? 0 : seeds),
            [&](std::size_t i) {
              scenario::TeleopScenarioConfig c = cfg;
              c.seed = static_cast<std::uint64_t>(i + 1);
              return scenario::run_teleop_scenario(c);
            });
        for (const auto& r : runs) {
          hit_rate.add(r.deadline_hit_rate());
          latency_s.add(r.metrics.mean_latency_s());
          megabytes.add(static_cast<double>(r.bytes_sent) / 1e6);
          replica_copies.add(static_cast<double>(r.replica_copies));
          replica_dups.add(static_cast<double>(r.replica_duplicates));
        }
        std::printf(" %9.3f", hit_rate.mean());
        if (k == 3) {
          mb_k3 = megabytes.mean();
          dups_k3 = replica_dups.mean();
        }

        const std::string key = "K=" + std::to_string(k) +
                                "@L=" + std::to_string(static_cast<int>(burst)) +
                                "@D=" + std::to_string(static_cast<int>(deadline));
        report.add_metric(key, "deadline_hit_rate", hit_rate);
        report.add_metric(key, "mean_latency_s", latency_s);
        report.add_metric(key, "total_megabytes", megabytes);
        report.add_metric(key, "replica_copies", replica_copies);
        report.add_metric(key, "replica_duplicates", replica_dups);
      }
      std::printf(" | %10.1f %10.1f\n", mb_k3, dups_k3);
    }
    std::printf("\n");
  }

  report.write();
  return 0;
}
