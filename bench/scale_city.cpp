// City-scale hot-path bench (ISSUE 8): a heavy open-arrival workload on a
// large grid — far beyond the paper's 8×8/30-node setup — plus a timed
// head-to-head between the production ladder-queue DES kernel
// (des::Simulator) and the frozen std::priority_queue kernel
// (des::ReferenceSimulator) on an identical synthetic schedule/cancel
// workload.
//
// Output discipline: stdout carries ONLY deterministic simulation results
// (byte-identical at any DDE_BENCH_JOBS), so CI can diff jobs=1 vs jobs=4
// runs directly. Wall-clock throughput and peak RSS go to stderr and into
// BENCH_scale_city.json (schemes `ladder_kernel`, `reference_kernel`,
// `process`), validated by tools/check_bench_report --require-positive.
//
// Usage: scale_city [seeds] [city|small]
//   small = CI/sanitizer smoke preset (shrunken grid + kernel workload).
#include <sys/resource.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <vector>

#include "bench_util.h"
#include "common/rng.h"
#include "des/reference_kernel.h"
#include "des/simulator.h"

namespace {

using namespace dde;

struct Preset {
  const char* name;
  int grid;                 ///< grid is grid × grid segments
  std::size_t nodes;
  std::size_t queries_per_node;
  double interarrival_s;    ///< Poisson mean inter-arrival per node
  double horizon_s;
  int kernel_events;        ///< synthetic head-to-head schedule count
};

constexpr Preset kCity{"city", 20, 160, 4, 15.0, 600.0, 1500000};
constexpr Preset kSmall{"small", 10, 48, 2, 10.0, 120.0, 150000};

/// Synthetic hot-path workload, identical for both kernels: bursts of
/// schedules over a spread of horizons, ~30% cancellation churn (exercising
/// tombstones + compaction), and staged run_until windows. Returns executed
/// events — both kernels must agree exactly.
template <typename Sim>
std::uint64_t run_kernel_workload(std::uint64_t seed, int events) {
  Sim sim;
  Rng rng(seed);
  std::vector<decltype(sim.schedule_at(SimTime{}, nullptr))> handles;
  handles.reserve(512);
  std::uint64_t fired = 0;
  int scheduled = 0;
  while (scheduled < events) {
    for (int i = 0; i < 512 && scheduled < events; ++i, ++scheduled) {
      const SimTime when =
          sim.now() + SimTime::micros(static_cast<SimTime::rep>(
                          rng.below(50000)));
      handles.push_back(sim.schedule_at(when, [&fired] { ++fired; }));
    }
    for (auto& h : handles) {
      if (rng.chance(0.3)) sim.cancel(h);
    }
    handles.clear();
    sim.run_until(sim.now() + SimTime::millis(10));
  }
  sim.run_until();
  return fired;
}

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

double peak_rss_mb() {
  rusage usage{};
  getrusage(RUSAGE_SELF, &usage);
  // Linux reports ru_maxrss in kilobytes.
  return static_cast<double>(usage.ru_maxrss) / 1024.0;
}

}  // namespace

int main(int argc, char** argv) {
  const int seeds = argc > 1 ? std::atoi(argv[1]) : 5;
  const Preset preset =
      (argc > 2 && std::strcmp(argv[2], "small") == 0) ? kSmall : kCity;

  // --- City workload: open Poisson arrivals on a large grid -------------
  scenario::ScenarioConfig cfg;
  cfg.grid_width = preset.grid;
  cfg.grid_height = preset.grid;
  cfg.node_count = preset.nodes;
  cfg.queries_per_node = preset.queries_per_node;
  cfg.arrival = scenario::ScenarioConfig::Arrival::kPoisson;
  cfg.mean_interarrival = SimTime::seconds(preset.interarrival_s);
  cfg.horizon = SimTime::seconds(preset.horizon_s);
  cfg.link_radius = 2.2;

  std::printf("SCALE CITY — %s preset: %dx%d grid, %zu nodes, open Poisson "
              "arrivals (%d seeds)\n\n",
              preset.name, preset.grid, preset.grid, preset.nodes, seeds);
  std::printf("%-6s %8s %10s %11s %12s %9s\n", "scheme", "ratio", "totalMB",
              "latency_s", "sim_events", "queries");

  RunningStats ratio;
  RunningStats mb;
  RunningStats latency;
  RunningStats sim_events;
  RunningStats queries;
  const auto city_start = std::chrono::steady_clock::now();
  for (const auto& r : bench::run_seeds(cfg, seeds)) {
    ratio.add(r.resolution_ratio());
    mb.add(r.total_megabytes());
    latency.add(r.metrics.mean_latency_s());
    sim_events.add(static_cast<double>(r.events));
    queries.add(static_cast<double>(r.queries));
  }
  const double city_elapsed = seconds_since(city_start);
  std::printf("%-6s %8.3f %10.1f %11.2f %12.0f %9.0f\n",
              bench::scheme_name(cfg.scheme).c_str(), ratio.mean(), mb.mean(),
              latency.mean(), sim_events.sum(), queries.sum());

  // --- Kernel head-to-head: ladder queue vs frozen priority_queue -------
  constexpr int kRounds = 3;
  RunningStats ladder_eps;
  RunningStats reference_eps;
  for (int round = 0; round < kRounds; ++round) {
    const std::uint64_t seed = static_cast<std::uint64_t>(round + 1);

    auto start = std::chrono::steady_clock::now();
    const std::uint64_t ladder_fired =
        run_kernel_workload<des::Simulator>(seed, preset.kernel_events);
    ladder_eps.add(static_cast<double>(ladder_fired) / seconds_since(start));

    start = std::chrono::steady_clock::now();
    const std::uint64_t reference_fired =
        run_kernel_workload<des::ReferenceSimulator>(seed,
                                                     preset.kernel_events);
    reference_eps.add(static_cast<double>(reference_fired) /
                      seconds_since(start));

    if (ladder_fired != reference_fired) {
      std::fprintf(stderr,
                   "KERNEL DIVERGENCE: ladder fired %llu, reference %llu "
                   "(seed %llu)\n",
                   static_cast<unsigned long long>(ladder_fired),
                   static_cast<unsigned long long>(reference_fired),
                   static_cast<unsigned long long>(seed));
      return 1;
    }
  }

  // Wall-clock results: stderr only, so stdout stays byte-identical across
  // DDE_BENCH_JOBS settings and hosts.
  const double city_eps = sim_events.sum() / city_elapsed;
  std::fprintf(stderr,
               "\ncity throughput: %.0f events/s (%.0f events in %.2fs)\n"
               "kernel head-to-head (%d x %d synthetic events, ~30%% cancel "
               "churn):\n"
               "  ladder_kernel     %12.0f events/s\n"
               "  reference_kernel  %12.0f events/s\n"
               "  speedup           %12.2fx\n"
               "peak RSS: %.1f MB\n",
               city_eps, sim_events.sum(), city_elapsed, kRounds,
               preset.kernel_events, ladder_eps.mean(), reference_eps.mean(),
               ladder_eps.mean() / reference_eps.mean(), peak_rss_mb());

  obs::BenchReport report("scale_city");
  report.add_metric("city", "resolution_ratio", ratio);
  report.add_metric("city", "total_megabytes", mb);
  report.add_metric("city", "mean_latency_s", latency);
  report.add_metric("city", "sim_events", sim_events);
  report.add_metric("city", "queries", queries);
  report.add_metric("ladder_kernel", "events_per_sec", ladder_eps);
  report.add_metric("reference_kernel", "events_per_sec", reference_eps);
  {
    RunningStats city_throughput;
    city_throughput.add(city_eps);
    report.add_metric("process", "city_events_per_sec", city_throughput);
    RunningStats rss;
    rss.add(peak_rss_mb());
    report.add_metric("process", "peak_rss_mb", rss);
  }
  report.write();
  return 0;
}
