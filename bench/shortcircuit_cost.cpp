// Sec. III-A experiments: expected retrieval cost of short-circuit-aware
// evaluation orders.
//
// Random DNF decision workloads; for each ordering policy we simulate the
// adaptive sequential evaluation against sampled ground-truth worlds and
// report the mean retrieval cost (sum of costs of objects actually
// fetched), normalized to fetching everything (the cmp baseline).
#include <cstddef>
#include <cstdio>
#include <string>
#include <vector>

#include "common/rng.h"
#include "decision/ordering.h"
#include "decision/planner.h"
#include "harness/parallel_runner.h"

namespace dde::decision {
namespace {

struct Workload {
  DnfExpr expr;
  MetaTable meta;
  std::size_t n_labels = 0;
};

Workload random_workload(Rng& rng, std::size_t disjuncts, std::size_t terms) {
  Workload w;
  w.n_labels = disjuncts * terms;
  std::uint64_t next = 0;
  for (std::size_t d = 0; d < disjuncts; ++d) {
    Conjunction c;
    for (std::size_t t = 0; t < terms; ++t) {
      const LabelId l{next++};
      c.terms.push_back(Term{l, false});
      w.meta.set(l, LabelMeta{rng.uniform(0.1, 10.0), SimTime::seconds(1),
                              rng.uniform(0.1, 0.95),
                              SimTime::seconds(rng.uniform(30, 300))});
    }
    w.expr.add_disjunct(std::move(c));
  }
  return w;
}

LabelValue sample_value(LabelId l, bool truth) {
  LabelValue v;
  v.label = l;
  v.value = truth ? Tristate::kTrue : Tristate::kFalse;
  v.evaluated_at = SimTime::zero();
  v.validity = SimTime::seconds(1e6);
  v.annotator = AnnotatorId{0};
  return v;
}

/// Cost of adaptively evaluating `w` under `policy` in a sampled world.
double adaptive_cost(const Workload& w, OrderPolicy policy, Rng& rng) {
  std::vector<bool> world(w.n_labels);
  for (std::size_t i = 0; i < w.n_labels; ++i) {
    world[i] = rng.chance(w.meta.get(LabelId{i}).p_true);
  }
  Assignment a;
  double cost = 0;
  while (auto next = next_label(w.expr, a, SimTime::zero(), w.meta.fn(),
                                policy)) {
    cost += w.meta.get(*next).cost;
    a.set(sample_value(*next, world[next->value()]));
  }
  return cost;
}

/// Cost of retrieving every label (comprehensive baseline).
double full_cost(const Workload& w) {
  double cost = 0;
  for (std::size_t i = 0; i < w.n_labels; ++i) {
    cost += w.meta.get(LabelId{i}).cost;
  }
  return cost;
}

}  // namespace
}  // namespace dde::decision

int main(int argc, char** argv) {
  using namespace dde;
  using namespace dde::decision;
  const int trials = argc > 1 ? std::atoi(argv[1]) : 500;
  const int worlds = 20;

  std::printf("SHORT-CIRCUIT COST — Sec. III-A evaluation-order policies\n");
  std::printf("mean adaptive retrieval cost / comprehensive cost\n");
  std::printf("(%d random DNFs x %d sampled worlds per shape)\n\n", trials,
              worlds);
  std::printf("%-12s %10s %10s %10s %10s %8s\n", "DNF shape", "declared",
              "cheapest", "s-circuit", "varLVF", "static");

  struct Shape {
    std::size_t disjuncts;
    std::size_t terms;
  };
  // Each shape row seeds its own Rng stream from the row index: rows run in
  // parallel and print in declared order.
  const std::vector<Shape> shapes{Shape{1, 4}, Shape{2, 3}, Shape{3, 3},
                                  Shape{5, 6}, Shape{5, 2}};
  const auto rows = harness::run_indexed(shapes.size(), [&](std::size_t row) {
    const Shape shape = shapes[row];
    Rng rng(4242 + 1000 * static_cast<std::uint64_t>(row));
    double sums[4] = {0, 0, 0, 0};
    double static_sum = 0;
    double full_sum = 0;
    const OrderPolicy policies[4] = {
        OrderPolicy::kDeclared, OrderPolicy::kCheapestFirst,
        OrderPolicy::kShortCircuit, OrderPolicy::kVariationalLvf};
    for (int t = 0; t < trials; ++t) {
      const auto w = random_workload(rng, shape.disjuncts, shape.terms);
      full_sum += full_cost(w) * worlds;
      // Analytical expected cost of the static short-circuit plan.
      static_sum += expected_dnf_cost(plan_dnf(w.expr, w.meta.fn()),
                                      w.meta.fn()) *
                    worlds;
      for (int k = 0; k < 4; ++k) {
        for (int s = 0; s < worlds; ++s) {
          sums[k] += adaptive_cost(w, policies[k], rng);
        }
      }
    }
    char line[112];
    std::snprintf(line, sizeof line,
                  "%zux%zu terms  %10.3f %10.3f %10.3f %10.3f %8.3f\n",
                  shape.disjuncts, shape.terms, sums[0] / full_sum,
                  sums[1] / full_sum, sums[2] / full_sum, sums[3] / full_sum,
                  static_sum / full_sum);
    return std::string(line);
  });
  for (const auto& line : rows) std::fputs(line.c_str(), stdout);
  std::printf(
      "\nthe short-circuit column must dominate declared/cheapest; the\n"
      "static column is the analytical expectation of the planned order.\n");
  return 0;
}
