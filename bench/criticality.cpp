// Sec. V-C experiment: preferential treatment of critical traffic.
//
// 20% of queries are marked critical. With priority forwarding, their
// messages preempt best-effort traffic at every link queue (non-preemptive
// per packet). We compare resolution ratio and latency of the critical
// class against the best-effort class, with priorities enabled and with
// all traffic forced into one class.
#include <cstdio>

#include "bench_util.h"

int main(int argc, char** argv) {
  using namespace dde;
  const int seeds = argc > 1 ? std::atoi(argv[1]) : 10;

  std::printf("CRITICALITY — priority forwarding (cmp, 20%% critical, %d seeds)\n\n",
              seeds);
  std::printf("%-10s %-10s %9s %12s\n", "priority", "class", "ratio",
              "latency_s");

  for (bool priorities_on : {true, false}) {
    RunningStats crit_ratio;
    RunningStats norm_ratio;
    RunningStats crit_latency;
    RunningStats norm_latency;
    scenario::ScenarioConfig cfg;
    // Comprehensive retrieval creates the heavy contention where link
    // priorities matter; decision-driven schemes rarely queue deeply.
    cfg.scheme = athena::Scheme::kCmp;
    cfg.fast_ratio = 0.6;
    cfg.critical_fraction = 0.2;
    cfg.critical_priority = priorities_on ? 1 : 0;
    for (const auto& r : bench::run_seeds(cfg, seeds)) {
      int crit_total = 0;
      int crit_ok = 0;
      int norm_total = 0;
      int norm_ok = 0;
      double crit_lat = 0;
      double norm_lat = 0;
      for (const auto& o : r.outcomes) {
        // With priorities off the critical class still exists logically; we
        // recover it from the seeded issue order being identical. The
        // simplest robust split: priority field when on; when off, every
        // query reports priority 0 and the class split is meaningless, so
        // report the aggregate in both rows.
        const bool critical = o.priority > 0;
        if (critical) {
          ++crit_total;
          crit_ok += o.success;
          if (o.success) crit_lat += o.latency_s;
        } else {
          ++norm_total;
          norm_ok += o.success;
          if (o.success) norm_lat += o.latency_s;
        }
      }
      if (crit_total > 0) {
        crit_ratio.add(static_cast<double>(crit_ok) / crit_total);
        if (crit_ok > 0) crit_latency.add(crit_lat / crit_ok);
      }
      if (norm_total > 0) {
        norm_ratio.add(static_cast<double>(norm_ok) / norm_total);
        if (norm_ok > 0) norm_latency.add(norm_lat / norm_ok);
      }
    }
    const char* label = priorities_on ? "on" : "off";
    if (priorities_on) {
      std::printf("%-10s %-10s %9.3f %12.2f\n", label, "critical",
                  crit_ratio.mean(), crit_latency.mean());
      std::printf("%-10s %-10s %9.3f %12.2f\n", label, "normal",
                  norm_ratio.mean(), norm_latency.mean());
    } else {
      std::printf("%-10s %-10s %9.3f %12.2f\n", label, "all",
                  norm_ratio.mean(), norm_latency.mean());
    }
  }
  std::printf(
      "\nwith priorities on, the critical class resolves more queries than\n"
      "the undifferentiated baseline at a small cost to the normal class.\n"
      "(mean latency is conditioned on success: the critical class also\n"
      "rescues slow queries the baseline would have dropped, which raises\n"
      "its successful-latency average — read the ratio column.)\n");
  return 0;
}
