// Ablation: in-network object caches (Sec. VI-B).
//
// Every Athena node caches passing objects; requests can be served by any
// node on the path. Disabling the cache forces every request to travel to
// the source, isolating how much of the system's efficiency comes from
// caching versus scheduling.
#include <cstdio>

#include "bench_util.h"

int main(int argc, char** argv) {
  using namespace dde;
  const int seeds = argc > 1 ? std::atoi(argv[1]) : 10;

  std::printf("ABLATION — object cache on/off (40%% fast objects, %d seeds)\n\n",
              seeds);
  std::printf("%-6s %-7s %8s %10s %11s %9s\n", "scheme", "cache", "ratio",
              "totalMB", "latency_s", "refetch");

  for (athena::Scheme scheme : bench::all_schemes()) {
    for (bool cache_on : {true, false}) {
      scenario::ScenarioConfig cfg;
      cfg.scheme = scheme;
      cfg.fast_ratio = 0.4;
      auto ac = athena::config_for(scheme);
      // Prefetch off in BOTH arms: pushes rely on caches to land en route,
      // so leaving prefetch on would conflate the two mechanisms.
      ac.prefetch = false;
      if (!cache_on) ac.object_cache_capacity = 0;
      cfg.config_override = ac;
      const auto cell = bench::run_cell(cfg, seeds);
      std::printf("%-6s %-7s %8.3f %10.1f %11.2f %9.1f\n",
                  bench::scheme_name(scheme).c_str(), cache_on ? "on" : "off",
                  cell.ratio.mean(), cell.megabytes.mean(),
                  cell.latency_s.mean(), cell.refetches.mean());
    }
  }
  return 0;
}
