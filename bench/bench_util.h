// Shared helpers for the experiment binaries: aggregate scenario runs over
// seeds and print aligned tables.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "common/stats.h"
#include "scenario/route_scenario.h"

namespace dde::bench {

/// Aggregated results of one (scheme, config) cell over several seeds.
struct Cell {
  RunningStats ratio;       ///< query resolution ratio
  RunningStats megabytes;   ///< total network bandwidth
  RunningStats latency_s;   ///< mean resolution latency
  RunningStats object_mb;   ///< foreground object bytes
  RunningStats push_mb;     ///< prefetch push bytes
  RunningStats label_mb;    ///< label-share / label-reply bytes
  RunningStats refetches;
  RunningStats stale;
};

/// Run `cfg` for seeds 1..seeds and aggregate.
inline Cell run_cell(scenario::ScenarioConfig cfg, int seeds) {
  Cell cell;
  for (int s = 1; s <= seeds; ++s) {
    cfg.seed = static_cast<std::uint64_t>(s);
    const auto r = scenario::run_route_scenario(cfg);
    cell.ratio.add(r.resolution_ratio());
    cell.megabytes.add(r.total_megabytes());
    cell.latency_s.add(r.metrics.mean_latency_s());
    cell.object_mb.add(static_cast<double>(r.metrics.object_bytes) / 1e6);
    cell.push_mb.add(static_cast<double>(r.metrics.push_bytes) / 1e6);
    cell.label_mb.add(static_cast<double>(r.metrics.label_bytes) / 1e6);
    cell.refetches.add(static_cast<double>(r.metrics.refetches));
    cell.stale.add(static_cast<double>(r.metrics.stale_arrivals));
  }
  return cell;
}

inline const std::vector<athena::Scheme>& all_schemes() {
  static const std::vector<athena::Scheme> schemes{
      athena::Scheme::kCmp, athena::Scheme::kSlt, athena::Scheme::kLcf,
      athena::Scheme::kLvf, athena::Scheme::kLvfl};
  return schemes;
}

inline std::string scheme_name(athena::Scheme s) {
  return std::string(to_string(s));
}

}  // namespace dde::bench
