// Shared helpers for the experiment binaries: aggregate scenario runs over
// seeds, print aligned tables, and emit machine-readable BENCH_*.json
// reports (src/obs/bench_report.h).
//
// Seed replication is fanned out across DDE_BENCH_JOBS worker threads
// (src/harness/parallel_runner.h): each seed owns its full simulation
// state, and all folding into RunningStats / DecisionTelemetry happens on
// the calling thread in seed order — so every printed table and BENCH
// report is byte-identical at any thread count (jobs=1 is the exact legacy
// serial path).
#pragma once

#include <cstddef>
#include <cstdio>
#include <string>
#include <vector>

#include "common/stats.h"
#include "harness/parallel_runner.h"
#include "obs/bench_report.h"
#include "obs/trace.h"
#include "scenario/route_scenario.h"

namespace dde::bench {

/// Run `cfg` once per seed 1..seeds, in parallel, returning results in seed
/// order. Any aggregation over the returned vector is bit-identical to the
/// legacy `for (s = 1..seeds)` loop.
inline std::vector<scenario::ScenarioResult> run_seeds(
    const scenario::ScenarioConfig& cfg, int seeds) {
  return harness::run_indexed(
      static_cast<std::size_t>(seeds < 0 ? 0 : seeds), [&](std::size_t i) {
        scenario::ScenarioConfig c = cfg;
        c.seed = static_cast<std::uint64_t>(i + 1);
        return scenario::run_route_scenario(c);
      });
}

/// One seed's scenario result plus the per-run derived decision telemetry
/// (each worker owns its TraceSink; attaching it is observation only).
struct SeedRun {
  scenario::ScenarioResult result;
  obs::DecisionTelemetry telem;
};

/// run_seeds with a derive-only trace sink attached to every run.
inline std::vector<SeedRun> run_seeds_traced(
    const scenario::ScenarioConfig& cfg, int seeds) {
  return harness::run_indexed(
      static_cast<std::size_t>(seeds < 0 ? 0 : seeds), [&](std::size_t i) {
        scenario::ScenarioConfig c = cfg;
        c.seed = static_cast<std::uint64_t>(i + 1);
        obs::TraceSink sink;  // derive-only: no ring, no JSONL
        c.trace_sink = &sink;
        SeedRun run;
        run.result = scenario::run_route_scenario(c);
        run.telem.merge(sink.decision_telemetry());
        return run;
      });
}

/// Aggregated results of one (scheme, config) cell over several seeds.
struct Cell {
  RunningStats ratio;       ///< query resolution ratio
  RunningStats megabytes;   ///< total network bandwidth
  RunningStats latency_s;   ///< mean resolution latency
  RunningStats object_mb;   ///< foreground object bytes
  RunningStats push_mb;     ///< prefetch push bytes
  RunningStats label_mb;    ///< label-share / label-reply bytes
  RunningStats refetches;
  RunningStats stale;
  /// Per-decision distributions (age-upon-decision, slack-at-decision,
  /// bytes-per-decision), derived by a per-run trace sink and merged
  /// across seeds. Attaching the sink is observation only: the text
  /// numbers above are bit-identical to a harness without it.
  obs::DecisionTelemetry telem;
};

/// Run `cfg` for seeds 1..seeds (parallel across workers) and aggregate in
/// seed order on this thread.
inline Cell run_cell(const scenario::ScenarioConfig& cfg, int seeds) {
  Cell cell;
  for (const SeedRun& run : run_seeds_traced(cfg, seeds)) {
    const auto& r = run.result;
    cell.ratio.add(r.resolution_ratio());
    cell.megabytes.add(r.total_megabytes());
    cell.latency_s.add(r.metrics.mean_latency_s());
    cell.object_mb.add(static_cast<double>(r.metrics.object_bytes) / 1e6);
    cell.push_mb.add(static_cast<double>(r.metrics.push_bytes) / 1e6);
    cell.label_mb.add(static_cast<double>(r.metrics.label_bytes) / 1e6);
    cell.refetches.add(static_cast<double>(r.metrics.refetches));
    cell.stale.add(static_cast<double>(r.metrics.stale_arrivals));
    cell.telem.merge(run.telem);
  }
  return cell;
}

/// Record one cell in a report under `scheme` (any config-point key):
/// every aggregated metric plus the three per-decision histograms.
inline void report_cell(obs::BenchReport& report, const std::string& scheme,
                        const Cell& cell) {
  report.add_metric(scheme, "resolution_ratio", cell.ratio);
  report.add_metric(scheme, "total_megabytes", cell.megabytes);
  report.add_metric(scheme, "mean_latency_s", cell.latency_s);
  report.add_metric(scheme, "object_megabytes", cell.object_mb);
  report.add_metric(scheme, "push_megabytes", cell.push_mb);
  report.add_metric(scheme, "label_megabytes", cell.label_mb);
  report.add_metric(scheme, "refetches", cell.refetches);
  report.add_metric(scheme, "stale_arrivals", cell.stale);
  report.add_histogram(scheme, "age_upon_decision_s",
                       cell.telem.age_upon_decision_s);
  report.add_histogram(scheme, "slack_at_decision_s",
                       cell.telem.slack_at_decision_s);
  report.add_histogram(scheme, "bytes_per_decision",
                       cell.telem.bytes_per_decision);
}

inline const std::vector<athena::Scheme>& all_schemes() {
  static const std::vector<athena::Scheme> schemes{
      athena::Scheme::kCmp, athena::Scheme::kSlt, athena::Scheme::kLcf,
      athena::Scheme::kLvf, athena::Scheme::kLvfl};
  return schemes;
}

inline std::string scheme_name(athena::Scheme s) {
  return std::string(to_string(s));
}

}  // namespace dde::bench
