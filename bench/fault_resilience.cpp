// Fault injection (src/fault): resolution under link outages and bursty loss.
//
// Part 1 downs a fraction of links mid-run (permanently — an "aftershock"
// severing the mesh) and lets the recovery machinery work: routes are
// recomputed around the outage, timed-out requests back off exponentially,
// and sources that stay silent for max_source_attempts are failed over to
// the next covering candidate. Part 2 holds the average loss rate fixed and
// sweeps the mean burst length of a Gilbert–Elliott channel: bursty loss
// kills a request AND its retry, so it stresses the backoff policy in a way
// independent per-packet loss does not.
#include <cstdio>

#include "bench_util.h"
#include "fault/fault_plan.h"
#include "scenario/spec.h"

int main(int argc, char** argv) {
  using namespace dde;
  const int seeds = argc > 1 ? std::atoi(argv[1]) : 10;

  // Recovery knobs shared by both parts: the loss_resilience timeout so
  // retries fit the deadline, doubling backoff, failover after 3 silences.
  auto recovery_config = [](athena::Scheme scheme) {
    auto ac = athena::config_for(scheme);
    ac.request_timeout = SimTime::seconds(30);
    ac.retry_backoff = 2.0;
    ac.max_source_attempts = 3;
    return ac;
  };

  // Spec-portable knobs go through the scenario registry's declarative
  // path; typed-only knobs (config_override, fault spec) are layered on
  // the returned config afterwards.
  auto base_config = [&](athena::Scheme scheme) {
    scenario::ScenarioSpec spec;
    spec.set("scheme", bench::scheme_name(scheme));
    spec.set("fast_ratio", 0.2);
    auto cfg = scenario::route_config_from_spec(spec);
    cfg.config_override = recovery_config(scheme);
    return cfg;
  };

  std::printf("FAULT RESILIENCE — link outages and bursty loss (%d seeds)\n",
              seeds);
  std::printf(
      "(outage at t=30 s, permanent; backoff x2, failover after 3 tries)\n\n");

  // --- part 1: outage-fraction sweep ------------------------------------
  std::printf("link outage fraction sweep — resolution ratio\n");
  std::printf("%-6s %8s %8s %8s %8s | %8s %8s %8s %8s %8s\n", "scheme",
              "f=0", "f=0.1", "f=0.2", "f=0.3", "MB@.2", "retry@.2",
              "fail@.2", "rert@.2", "drop@.2");
  for (athena::Scheme scheme : bench::all_schemes()) {
    std::printf("%-6s", bench::scheme_name(scheme).c_str());
    double mb = 0;
    double retries = 0;
    double failovers = 0;
    double reroutes = 0;
    double drops = 0;
    for (double frac : {0.0, 0.1, 0.2, 0.3}) {
      RunningStats ratio;
      scenario::ScenarioConfig cfg = base_config(scheme);
      cfg.faults.link_outage_fraction = frac;
      cfg.faults.outage_at = SimTime::seconds(30);
      for (const auto& r : bench::run_seeds(cfg, seeds)) {
        ratio.add(r.resolution_ratio());
        if (frac == 0.2) {
          mb += r.total_megabytes() / seeds;
          retries += static_cast<double>(r.metrics.retries) / seeds;
          failovers += static_cast<double>(r.metrics.failovers) / seeds;
          reroutes += static_cast<double>(r.metrics.reroutes) / seeds;
          drops += static_cast<double>(r.metrics.link_down_drops) / seeds;
        }
      }
      std::printf(" %8.3f", ratio.mean());
    }
    std::printf(" | %8.1f %8.1f %8.1f %8.1f %8.1f\n", mb, retries, failovers,
                reroutes, drops);
  }

  // --- part 2: burstiness sweep at fixed 5% average loss -----------------
  std::printf(
      "\nburst length sweep — resolution ratio at 5%% average loss\n");
  std::printf("%-6s %8s %8s %8s %8s\n", "scheme", "iid", "L=2", "L=8",
              "L=32");
  for (athena::Scheme scheme : bench::all_schemes()) {
    std::printf("%-6s", bench::scheme_name(scheme).c_str());
    for (double burst_len : {1.0, 2.0, 8.0, 32.0}) {
      RunningStats ratio;
      scenario::ScenarioConfig cfg = base_config(scheme);
      cfg.faults.burst =
          fault::GilbertElliottParams::for_average_loss(0.05, burst_len);
      for (const auto& r : bench::run_seeds(cfg, seeds)) {
        ratio.add(r.resolution_ratio());
      }
      std::printf(" %8.3f", ratio.mean());
    }
    std::printf("\n");
  }

  std::printf(
      "\nwith a fifth of the links severed, set-cover schemes reroute and\n"
      "fail over to surviving sources; batch flooding (cmp) loses whole\n"
      "request fan-outs to downed links and pays the most bandwidth for\n"
      "the least recovery. longer bursts at equal average loss hurt more:\n"
      "back-to-back losses defeat a retry unless the backoff outgrows the\n"
      "burst.\n");
  return 0;
}
