// Reproduces Fig. 3: total network bandwidth consumption of all scheduling
// schemes, at 40% fast-changing objects (Sec. VII).
//
// Expected shape: bandwidth strictly decreases cmp → slt → lcf → lvf → lvfl;
// comprehensive retrieval is the most expensive, label sharing the cheapest.
#include <cstdio>

#include "bench_util.h"

int main(int argc, char** argv) {
  using namespace dde;
  const int seeds = argc > 1 ? std::atoi(argv[1]) : 10;

  std::printf("FIG 3 — total network bandwidth (MB), 40%% fast objects\n");
  std::printf("(mean over %d seeds; breakdown per message kind)\n\n", seeds);
  std::printf("%-6s %10s %9s | %9s %8s %8s | %8s %8s\n", "scheme", "totalMB",
              "+-95%", "objectMB", "pushMB", "labelMB", "refetch", "stale");

  obs::BenchReport report("fig3_bandwidth");
  double previous = -1.0;
  bool monotone = true;
  for (athena::Scheme scheme : bench::all_schemes()) {
    scenario::ScenarioConfig cfg;
    cfg.scheme = scheme;
    cfg.fast_ratio = 0.4;
    const auto cell = bench::run_cell(cfg, seeds);
    bench::report_cell(report, bench::scheme_name(scheme), cell);
    std::printf("%-6s %10.1f %9.1f | %9.1f %8.1f %8.1f | %8.1f %8.1f\n",
                bench::scheme_name(scheme).c_str(), cell.megabytes.mean(),
                cell.megabytes.ci95(), cell.object_mb.mean(),
                cell.push_mb.mean(), cell.label_mb.mean(),
                cell.refetches.mean(), cell.stale.mean());
    if (previous >= 0 && cell.megabytes.mean() > previous) monotone = false;
    previous = cell.megabytes.mean();
  }

  report.write();
  std::printf("\nshape check: bandwidth decreasing cmp>slt>lcf>lvf>lvfl: %s\n",
              monotone ? "YES" : "NO");
  std::printf(
      "paper: bandwidth decreases marginally with slt/lcf, considerably with\n"
      "decision-driven scheduling, and most with label sharing (lvfl).\n");
  return 0;
}
