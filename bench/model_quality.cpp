// "The sensitivity of decision cost to the quality of models supplied is
// itself an interesting research problem" (Sec. II-A) — quantified.
//
// (a) Sensitivity: the short-circuit planner is fed success probabilities
//     perturbed by ±ε; adaptive retrieval cost is measured against the
//     true-model planner and the uninformative (p = 0.5) planner.
// (b) Learning: a PriorEstimator starts uninformative and observes every
//     resolved label across consecutive query batches (Sec. VIII); the
//     planner's cost converges toward the true-model cost.
#include <algorithm>
#include <cstddef>
#include <cstdio>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/stats.h"
#include "decision/estimator.h"
#include "decision/ordering.h"
#include "decision/planner.h"
#include "harness/parallel_runner.h"

using namespace dde;
using namespace dde::decision;

namespace {

struct Workload {
  DnfExpr expr;
  MetaTable truth;      // true model
  std::vector<double> p;  // true probabilities per label
  std::size_t n_labels;
};

Workload make_workload(Rng& rng, std::size_t disjuncts, std::size_t terms) {
  Workload w;
  w.n_labels = disjuncts * terms;
  w.p.resize(w.n_labels);
  std::uint64_t next = 0;
  for (std::size_t d = 0; d < disjuncts; ++d) {
    Conjunction c;
    for (std::size_t t = 0; t < terms; ++t) {
      const LabelId l{next};
      w.p[next] = rng.uniform(0.1, 0.9);
      c.terms.push_back(Term{l, false});
      w.truth.set(l, LabelMeta{rng.uniform(0.1, 10.0), SimTime::seconds(1),
                               w.p[next], SimTime::seconds(300)});
      ++next;
    }
    w.expr.add_disjunct(std::move(c));
  }
  return w;
}

LabelValue value_of(LabelId l, bool truth_value) {
  LabelValue v;
  v.label = l;
  v.value = to_tristate(truth_value);
  v.evaluated_at = SimTime::zero();
  v.validity = SimTime::seconds(1e6);
  v.annotator = AnnotatorId{0};
  return v;
}

/// Adaptive evaluation cost in one sampled world under `meta`'s beliefs,
/// optionally reporting resolved labels to `learn`.
double run_world(const Workload& w, const MetaFn& meta, Rng& rng,
                 PriorEstimator* learn) {
  std::vector<bool> world(w.n_labels);
  for (std::size_t i = 0; i < w.n_labels; ++i) world[i] = rng.chance(w.p[i]);
  Assignment a;
  double cost = 0;
  while (auto next = next_label(w.expr, a, SimTime::zero(), meta,
                                OrderPolicy::kShortCircuit)) {
    cost += w.truth.get(*next).cost;
    const bool v = world[next->value()];
    a.set(value_of(*next, v));
    if (learn) learn->observe(*next, v);
  }
  return cost;
}

void sensitivity(int trials, int worlds) {
  std::printf("(a) cost vs model error (%d DNFs x %d worlds per cell,\n",
              trials, worlds);
  std::printf("    cost normalized to the true-model planner)\n");
  std::printf("%-10s %12s\n", "error e", "cost ratio");
  // Each error row seeds its perturbation Rng from the row index: rows run
  // in parallel and print in declared order.
  const std::vector<double> epsilons{0.0, 0.1, 0.2, 0.3, 0.4, 0.5};
  const auto rows = harness::run_indexed(
      epsilons.size(), [&](std::size_t row) {
    const double eps = epsilons[row];
    Rng rng(11 + 100 * static_cast<std::uint64_t>(row));
    double noisy_total = 0;
    double true_total = 0;
    Rng gen(17);
    for (int t = 0; t < trials; ++t) {
      const auto w = make_workload(gen, 4, 4);
      // Perturbed model: p̂ = clamp(p ± uniform(0, eps)).
      MetaTable distorted = w.truth;
      for (std::size_t i = 0; i < w.n_labels; ++i) {
        LabelMeta m = w.truth.get(LabelId{i});
        m.p_true = std::clamp(m.p_true + rng.uniform(-eps, eps), 0.02, 0.98);
        distorted.set(LabelId{i}, m);
      }
      for (int s = 0; s < worlds; ++s) {
        Rng world_rng(static_cast<std::uint64_t>(t * 1000 + s));
        Rng world_rng2 = world_rng;
        noisy_total += run_world(w, distorted.fn(), world_rng, nullptr);
        true_total += run_world(w, w.truth.fn(), world_rng2, nullptr);
      }
    }
    char line[32];
    std::snprintf(line, sizeof line, "%-10.2f %12.3f\n", eps,
                  noisy_total / true_total);
    return std::string(line);
  });
  for (const auto& line : rows) std::fputs(line.c_str(), stdout);
  std::printf("\n");
}

void learning(int batches, int per_batch) {
  // Serial on purpose: the estimator learns online across batches, so each
  // batch depends on everything observed before it.
  std::printf("(b) learning the priors online (%d batches x %d queries)\n",
              batches, per_batch);
  std::printf("%-10s %12s %12s\n", "batch", "learned", "uninformed");
  Rng gen(23);
  const auto w = make_workload(gen, 4, 4);
  // Uninformative base model: correct costs, p = 0.5 everywhere.
  MetaTable flat = w.truth;
  for (std::size_t i = 0; i < w.n_labels; ++i) {
    LabelMeta m = w.truth.get(LabelId{i});
    m.p_true = 0.5;
    flat.set(LabelId{i}, m);
  }
  PriorEstimator estimator;
  const MetaFn learned = estimator.overlay(flat.fn());
  Rng rng(29);
  double true_total = 0;
  int true_n = 0;
  for (int b = 0; b < batches; ++b) {
    RunningStats learned_cost;
    RunningStats flat_cost;
    for (int q = 0; q < per_batch; ++q) {
      Rng world_rng(static_cast<std::uint64_t>(b * 10000 + q));
      Rng world_rng2 = world_rng;
      Rng world_rng3 = world_rng;
      learned_cost.add(run_world(w, learned, world_rng, &estimator));
      flat_cost.add(run_world(w, flat.fn(), world_rng2, nullptr));
      true_total += run_world(w, w.truth.fn(), world_rng3, nullptr);
      ++true_n;
    }
    std::printf("%-10d %12.2f %12.2f\n", b, learned_cost.mean(),
                flat_cost.mean());
  }
  std::printf("(true-model planner averages %.2f on the same worlds)\n",
              true_total / true_n);
}

}  // namespace

int main(int argc, char** argv) {
  const int trials = argc > 1 ? std::atoi(argv[1]) : 300;
  std::printf("MODEL QUALITY — planner cost vs probability-model fidelity\n\n");
  sensitivity(trials, 10);
  learning(8, 200);
  std::printf(
      "\nmoderate model error is cheap (a few %% at e<=0.2) but grows\n"
      "superlinearly; online learning recovers true-model performance\n"
      "within a few hundred observed queries.\n");
  return 0;
}
