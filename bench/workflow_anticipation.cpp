// Sec. VIII experiments: anticipating future decisions from workflow
// structure.
//
// A simulated operator walks a ground-truth mission workflow. We (a) mine
// the workflow from observed sessions and measure how fast the learned
// transition probabilities converge, and (b) measure per-decision evidence
// latency with and without anticipatory prefetching: while the operator
// "thinks" about the current decision, the system may already fetch labels
// for the likely next decision points.
#include <cmath>
#include <cstddef>
#include <cstdio>
#include <string>
#include <unordered_set>
#include <vector>

#include "common/rng.h"
#include "common/stats.h"
#include "harness/parallel_runner.h"
#include "workflow/mining.h"
#include "workflow/workflow.h"

using namespace dde;
using namespace dde::workflow;

namespace {

/// Ground-truth workflow: a 6-point mission graph with branching.
struct Mission {
  WorkflowGraph graph;
  std::vector<DecisionPoint> points;

  Mission() {
    auto lab = [](std::initializer_list<std::uint64_t> ids) {
      std::vector<LabelId> out;
      for (auto i : ids) out.push_back(LabelId{i});
      return out;
    };
    const PointId recon = graph.add_point("recon", lab({0, 1, 2}));
    const PointId approach = graph.add_point("approach", lab({3, 4}));
    const PointId detour = graph.add_point("detour", lab({5, 6}));
    const PointId rescue = graph.add_point("rescue", lab({7, 8}));
    const PointId medevac = graph.add_point("medevac", lab({9}));
    const PointId report = graph.add_point("report", lab({10}));
    graph.add_transition(recon, 0, approach, 0.7);
    graph.add_transition(recon, 0, detour, 0.3);
    graph.add_transition(recon, kNoViableAction, report, 1.0);
    graph.add_transition(approach, 0, rescue, 1.0);
    graph.add_transition(detour, 0, rescue, 0.8);
    graph.add_transition(detour, 0, report, 0.2);
    graph.add_transition(rescue, 0, medevac, 0.6);
    graph.add_transition(rescue, 0, report, 0.4);
    for (std::size_t i = 0; i < graph.point_count(); ++i) {
      points.push_back(graph.point(PointId{i}));
    }
  }

  /// Sample one session; outcome 0 everywhere except recon failing 10%.
  std::vector<ObservedStep> sample_session(Rng& rng) const {
    std::vector<ObservedStep> session;
    PointId cur{0};
    for (int guard = 0; guard < 20; ++guard) {
      const Outcome outcome =
          cur == PointId{0} && rng.chance(0.1) ? kNoViableAction : 0;
      session.push_back({cur, outcome});
      const auto succ = graph.successors(cur, outcome);
      if (succ.empty()) break;
      double u = rng.uniform();
      PointId next = succ.back().point;
      for (const auto& s : succ) {
        if (u < s.probability) {
          next = s.point;
          break;
        }
        u -= s.probability;
      }
      cur = next;
    }
    return session;
  }
};

void mining_convergence() {
  std::printf("(a) mining convergence: max |learned - true| transition prob\n");
  std::printf("%-10s %12s\n", "sessions", "max-error");
  const Mission mission;
  // Rows (session counts) derive their Rng from (n, rep): independent, so
  // they run in parallel and print in declared order.
  const std::vector<int> session_counts{10, 50, 200, 1000, 5000};
  const auto rows = harness::run_indexed(
      session_counts.size(), [&](std::size_t row) {
    const int n = session_counts[row];
    RunningStats err;
    for (int rep = 0; rep < 20; ++rep) {
      Rng rng(static_cast<std::uint64_t>(n * 100 + rep));
      SequenceMiner miner(mission.points);
      for (int s = 0; s < n; ++s) {
        miner.record_session(mission.sample_session(rng));
      }
      // Compare learned vs true over the known contexts.
      double max_err = 0.0;
      const struct {
        PointId from;
        Outcome outcome;
        PointId to;
        double truth;
      } checks[] = {
          {PointId{0}, 0, PointId{1}, 0.7}, {PointId{0}, 0, PointId{2}, 0.3},
          {PointId{2}, 0, PointId{3}, 0.8}, {PointId{3}, 0, PointId{4}, 0.6},
      };
      for (const auto& c : checks) {
        max_err = std::max(
            max_err, std::abs(miner.transition_probability(c.from, c.outcome,
                                                           c.to) -
                              c.truth));
      }
      err.add(max_err);
    }
    char line[48];
    std::snprintf(line, sizeof line, "%-10d %12.4f\n", n, err.mean());
    return std::string(line);
  });
  for (const auto& line : rows) std::fputs(line.c_str(), stdout);
  std::printf("\n");
}

void anticipation_latency(int sessions) {
  std::printf("(b) evidence latency with anticipatory prefetch\n");
  // Model: each label fetch takes 4 s of wall time on the shared uplink;
  // the operator thinks for 10 s before acting on a resolved decision.
  // Without anticipation, a decision waits for all its labels. With it,
  // labels of likely (p ≥ threshold) next points are prefetched during the
  // think time, up to the uplink capacity of think_time/fetch.
  const double fetch_s = 4.0;
  const double think_s = 10.0;
  const Mission mission;
  std::printf("%-22s %12s %12s %10s\n", "policy", "wait_s/dec", "fetches/dec",
              "wasted/dec");
  for (double threshold : {-1.0, 0.5, 0.25, 0.0}) {  // -1 = no anticipation
    Rng rng(7);
    RunningStats wait;
    RunningStats fetches;
    RunningStats wasted;
    for (int s = 0; s < sessions; ++s) {
      const auto session = mission.sample_session(rng);
      std::unordered_set<std::uint64_t> have;  // prefetched labels
      for (std::size_t i = 0; i < session.size(); ++i) {
        const auto& step = session[i];
        const auto& labels = mission.graph.point(step.point).labels;
        // Wait for labels not already prefetched (fetched sequentially).
        int missing = 0;
        for (LabelId l : labels) {
          if (!have.contains(l.value())) ++missing;
        }
        wait.add(missing * fetch_s);
        fetches.add(static_cast<double>(missing));
        // Think time: prefetch for anticipated next points.
        if (threshold >= 0.0) {
          const auto anticipated = mission.graph.anticipated_labels(
              step.point, step.outcome, threshold);
          int budget = static_cast<int>(think_s / fetch_s);
          int prefetched = 0;
          int useful = 0;
          const auto next_labels =
              i + 1 < session.size()
                  ? mission.graph.point(session[i + 1].point).labels
                  : std::vector<LabelId>{};
          for (const auto& [label, prob] : anticipated) {
            if (budget-- <= 0) break;
            if (have.insert(label.value()).second) {
              ++prefetched;
              for (LabelId l : next_labels) {
                if (l == label) ++useful;
              }
            }
          }
          wasted.add(static_cast<double>(prefetched - useful));
          fetches.add(static_cast<double>(prefetched));
        } else {
          wasted.add(0.0);
        }
      }
    }
    if (threshold < 0) {
      std::printf("%-22s %12.2f %12.2f %10.2f\n", "no anticipation",
                  wait.mean(), fetches.mean(), wasted.mean());
    } else {
      char name[64];
      std::snprintf(name, sizeof name, "anticipate p>=%.2f", threshold);
      std::printf("%-22s %12.2f %12.2f %10.2f\n", name, wait.mean(),
                  fetches.mean(), wasted.mean());
    }
  }
  std::printf(
      "\nanticipation shifts fetches into think time (lower wait) at the\n"
      "price of some wasted prefetches on the unlikely branch.\n");
}

}  // namespace

int main(int argc, char** argv) {
  const int sessions = argc > 1 ? std::atoi(argv[1]) : 2000;
  std::printf("WORKFLOW — anticipatory decision-making (Sec. VIII)\n\n");
  mining_convergence();
  anticipation_latency(sessions);
  return 0;
}
