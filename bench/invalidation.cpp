// Observation invalidation (Sec. II-A): "the existence of a resource, such
// as a bridge across a river, can be assumed to hold with a very large
// validity interval. However, a large earthquake … may invalidate such past
// observations, making them effectively stale."
//
// Mid-run, an aftershock permanently blocks 15% of the covered segments.
// Cached observations of those segments are now wrong but still "valid" by
// their freshness intervals. With invalidation broadcast, every node purges
// the affected labels/objects and re-opens its decisions; without it, stale
// caches keep answering until natural expiry. The audit measures the
// accuracy of decisions made after the event.
#include <cstdio>

#include "bench_util.h"

int main(int argc, char** argv) {
  using namespace dde;
  const int seeds = argc > 1 ? std::atoi(argv[1]) : 10;

  std::printf(
      "INVALIDATION — aftershock at t=60s blocks 15%% of segments (lvfl,\n"
      "long validities so staleness persists; %d seeds)\n\n",
      seeds);
  std::printf("%-14s %12s %12s %10s\n", "invalidation", "acc-before",
              "acc-after", "totalMB");

  for (bool invalidate : {true, false}) {
    RunningStats before;
    RunningStats after;
    RunningStats mb;
    scenario::ScenarioConfig cfg;
    cfg.scheme = athena::Scheme::kLvfl;
    // Long validities and a calm world: without the event, everything
    // cached stays truthful; the aftershock is the only staleness source.
    cfg.fast_ratio = 0.0;
    cfg.slow_validity = SimTime::seconds(600);
    cfg.mean_holding = SimTime::seconds(36000);
    cfg.arrival = scenario::ScenarioConfig::Arrival::kPoisson;
    cfg.mean_interarrival = SimTime::seconds(40);
    cfg.horizon = SimTime::seconds(500);
    cfg.disruption_at = SimTime::seconds(60);
    cfg.disruption_fraction = 0.15;
    cfg.broadcast_invalidation = invalidate;
    for (const auto& r : bench::run_seeds(cfg, seeds)) {
      int nb = 0;
      int cb = 0;
      int na = 0;
      int ca = 0;
      for (const auto& o : r.outcomes) {
        if (!o.audited) continue;
        if (o.finished_s < 60.0) {
          ++nb;
          cb += o.correct;
        } else {
          ++na;
          ca += o.correct;
        }
      }
      if (nb > 0) before.add(static_cast<double>(cb) / nb);
      if (na > 0) after.add(static_cast<double>(ca) / na);
      mb.add(r.total_megabytes());
    }
    std::printf("%-14s %12.3f %12.3f %10.1f\n", invalidate ? "on" : "off",
                before.mean(), after.mean(), mb.mean());
  }
  std::printf(
      "\nwithout invalidation, post-event decisions trust observations the\n"
      "aftershock voided; the broadcast restores accuracy at the price of\n"
      "re-fetching the affected evidence.\n");
  return 0;
}
