// Failure injection: resolution under per-packet link loss.
//
// Lost requests and replies are recovered by the request-timeout watchdog
// (the origin re-issues after AthenaConfig::request_timeout). Sequential
// decision-driven schemes pay one stalled pipeline slot per loss; batch
// schemes have more requests in flight and absorb losses more smoothly —
// but at their usual bandwidth premium. The experiment sweeps the loss
// rate and reports resolution ratio / bandwidth / latency per scheme.
#include <cstdio>

#include "bench_util.h"

int main(int argc, char** argv) {
  using namespace dde;
  const int seeds = argc > 1 ? std::atoi(argv[1]) : 10;

  std::printf("LOSS RESILIENCE — per-packet loss sweep (%d seeds)\n", seeds);
  std::printf("(request timeout lowered to 30 s so retries fit the deadline)\n\n");
  std::printf("%-6s %8s %8s %8s %8s | %10s %8s\n", "scheme", "p=0",
              "p=0.01", "p=0.05", "p=0.10", "MB@0.05", "drop@.05");

  for (athena::Scheme scheme : bench::all_schemes()) {
    std::printf("%-6s", bench::scheme_name(scheme).c_str());
    double mb_at_5 = 0;
    double drops_at_5 = 0;
    for (double loss : {0.0, 0.01, 0.05, 0.10}) {
      RunningStats ratio;
      scenario::ScenarioConfig cfg;
      cfg.scheme = scheme;
      cfg.fast_ratio = 0.2;
      cfg.packet_loss = loss;
      auto ac = athena::config_for(scheme);
      ac.request_timeout = SimTime::seconds(30);
      cfg.config_override = ac;
      for (const auto& r : bench::run_seeds(cfg, seeds)) {
        ratio.add(r.resolution_ratio());
        if (loss == 0.05) {
          mb_at_5 += r.total_megabytes() / seeds;
          drops_at_5 += static_cast<double>(r.traffic.dropped) / seeds;
        }
      }
      std::printf(" %8.3f", ratio.mean());
    }
    std::printf(" | %10.1f %8.1f\n", mb_at_5, drops_at_5);
  }
  std::printf(
      "\nresolution degrades gracefully with loss; timeouts re-issue lost\n"
      "requests, trading latency (and some duplicate traffic) for delivery.\n");
  return 0;
}
