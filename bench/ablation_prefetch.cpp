// Ablation: the background prefetch queues of Sec. VI-A.
//
// Prefetching pushes objects toward announced query origins before they are
// requested, trading background bandwidth for timeliness. This bench
// quantifies that trade for every scheme at the Fig. 3 operating point.
#include <cstdio>

#include "bench_util.h"

int main(int argc, char** argv) {
  using namespace dde;
  const int seeds = argc > 1 ? std::atoi(argv[1]) : 10;

  std::printf("ABLATION — prefetch on/off (40%% fast objects, %d seeds)\n\n",
              seeds);
  std::printf("%-6s %-9s %8s %10s %11s %9s\n", "scheme", "prefetch", "ratio",
              "totalMB", "latency_s", "staleAvg");

  for (athena::Scheme scheme : bench::all_schemes()) {
    for (bool prefetch : {true, false}) {
      scenario::ScenarioConfig cfg;
      cfg.scheme = scheme;
      cfg.fast_ratio = 0.4;
      auto ac = athena::config_for(scheme);
      ac.prefetch = prefetch;
      cfg.config_override = ac;
      const auto cell = bench::run_cell(cfg, seeds);
      std::printf("%-6s %-9s %8.3f %10.1f %11.2f %9.1f\n",
                  bench::scheme_name(scheme).c_str(),
                  prefetch ? "on" : "off", cell.ratio.mean(),
                  cell.megabytes.mean(), cell.latency_s.mean(),
                  cell.stale.mean());
    }
  }
  std::printf(
      "\nprefetch buys resolution latency at the cost of background pushes;\n"
      "the scheme ordering of Fig. 3 must hold in both configurations.\n");
  return 0;
}
