// Event-triggered decision-making (Sec. IV-B): reaction-time pipeline.
//
// Warehouse-watch scenario: a motion process trips a watch node, which
// issues an identification query over nearby cameras. Reaction time =
// detection delay (bounded by the local sampling period) + retrieval time
// (the decision-driven part). The sweep shows both knobs: faster sampling
// shrinks detection; the retrieval scheme governs the rest.
#include <cstdio>

#include "common/stats.h"
#include "harness/parallel_runner.h"
#include "scenario/trigger_scenario.h"

int main(int argc, char** argv) {
  using namespace dde;
  const int seeds = argc > 1 ? std::atoi(argv[1]) : 10;

  std::printf("TRIGGERED DECISIONS — warehouse watch (%d seeds x 1h)\n\n",
              seeds);
  std::printf("%-6s %-8s %8s %8s %10s %10s %10s\n", "scheme", "period",
              "events", "resolved", "detect_s", "react_s", "react_p95");

  for (athena::Scheme scheme : {athena::Scheme::kCmp, athena::Scheme::kLvfl}) {
    for (double period : {1.0, 5.0, 15.0}) {
      std::uint64_t events = 0;
      std::uint64_t resolved = 0;
      RunningStats detect;
      std::vector<double> reactions;
      const auto runs = harness::run_indexed(
          static_cast<std::size_t>(seeds), [&](std::size_t i) {
            scenario::TriggerScenarioConfig cfg;
            cfg.scheme = scheme;
            cfg.watch_period = SimTime::seconds(period);
            cfg.seed = static_cast<std::uint64_t>(i + 1);
            return scenario::run_trigger_scenario(cfg);
          });
      for (const auto& r : runs) {
        events += r.events;
        resolved += r.metrics.queries_resolved;
        for (double d : r.detection_s) detect.add(d);
        reactions.insert(reactions.end(), r.reaction_s.begin(),
                         r.reaction_s.end());
      }
      RunningStats react;
      for (double x : reactions) react.add(x);
      std::printf("%-6s %-8.0f %8llu %8llu %10.2f %10.2f %10.2f\n",
                  std::string(to_string(scheme)).c_str(), period,
                  static_cast<unsigned long long>(events),
                  static_cast<unsigned long long>(resolved), detect.mean(),
                  react.mean(),
                  reactions.empty() ? 0.0 : percentile(reactions, 0.95));
    }
  }
  std::printf(
      "\ndetection tracks the sampling period (mean ~ period/2); the\n"
      "retrieval tail rides on the scheme. Anticipatory prefetching of the\n"
      "identification labels (bench/workflow_anticipation) would cut the\n"
      "retrieval share further.\n");
  return 0;
}
