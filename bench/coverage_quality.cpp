// Sec. III-B experiments: source-selection quality.
//
// Greedy weighted set cover (the slt step, after [10]) versus the exact
// branch-and-bound optimum: cost ratio and runtime on random coverage
// instances of growing size.
//
// Serial on purpose (ignores DDE_BENCH_JOBS): the runtime columns are
// wall-clock measurements, and concurrent rows would contend for the CPU
// and distort them.
#include <chrono>
#include <cstdio>
#include <vector>

#include "common/rng.h"
#include "common/stats.h"
#include "coverage/set_cover.h"

int main(int argc, char** argv) {
  using namespace dde;
  using Clock = std::chrono::steady_clock;
  const int trials = argc > 1 ? std::atoi(argv[1]) : 200;

  std::printf("COVERAGE — greedy vs exact source selection\n");
  std::printf("(%d random instances per row; density 0.3)\n\n", trials);
  std::printf("%-14s %10s %10s %12s %12s %10s\n", "elems x sets", "ratio-avg",
              "ratio-max", "greedy-us", "exact-us", "optimal%");

  Rng rng(99);
  struct Size {
    std::uint32_t elems;
    std::size_t sets;
  };
  for (const Size size :
       {Size{8, 6}, Size{10, 10}, Size{14, 14}, Size{18, 18}, Size{20, 22}}) {
    RunningStats ratio;
    RunningStats greedy_us;
    RunningStats exact_us;
    int optimal_hits = 0;
    int covered = 0;
    for (int t = 0; t < trials; ++t) {
      coverage::CoverInstance inst;
      for (std::uint32_t e = 0; e < size.elems; ++e) {
        inst.universe.push_back(e);
      }
      for (std::size_t s = 0; s < size.sets; ++s) {
        coverage::CoverSet set;
        set.cost = rng.uniform(0.5, 5.0);
        for (std::uint32_t e = 0; e < size.elems; ++e) {
          if (rng.chance(0.3)) set.elements.push_back(e);
        }
        inst.sets.push_back(std::move(set));
      }
      const auto g0 = Clock::now();
      const auto greedy = coverage::greedy_cover(inst);
      const auto g1 = Clock::now();
      const auto exact = coverage::exact_cover(inst);
      const auto g2 = Clock::now();
      greedy_us.add(std::chrono::duration<double, std::micro>(g1 - g0).count());
      exact_us.add(std::chrono::duration<double, std::micro>(g2 - g1).count());
      if (!greedy.covered || !exact.covered) continue;
      ++covered;
      ratio.add(greedy.cost / exact.cost);
      if (greedy.cost <= exact.cost * (1.0 + 1e-9)) ++optimal_hits;
    }
    std::printf("%3ux%-10zu %10.3f %10.3f %12.1f %12.1f %9.1f%%\n", size.elems,
                size.sets, ratio.mean(), ratio.max(), greedy_us.mean(),
                exact_us.mean(),
                covered ? 100.0 * optimal_hits / covered : 0.0);
  }
  std::printf(
      "\ngreedy stays near-optimal (ratio ~1.0x) at a flat, tiny runtime;\n"
      "exact search grows exponentially with instance size.\n");
  return 0;
}
