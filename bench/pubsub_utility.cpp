// Sec. V-B experiments: information-maximizing triage at an overloaded
// bottleneck.
//
// A mixture of clustered (redundant) and distinct named items competes for
// a byte budget; we compare the delivered sub-additive information utility
// of infomax triage against FIFO and static-priority baselines, across
// overload factors, plus the Sec. V-C criticality guarantee.
#include <cstddef>
#include <cstdio>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/stats.h"
#include "harness/parallel_runner.h"
#include "pubsub/utility.h"

namespace dde::pubsub {
namespace {

std::vector<Item> random_items(Rng& rng, std::size_t n, std::size_t clusters) {
  std::vector<Item> items;
  for (std::size_t i = 0; i < n; ++i) {
    Item it;
    const auto cluster = rng.below(clusters);
    it.name = naming::Name::parse("/city/region" + std::to_string(cluster) +
                                  "/sensor" + std::to_string(i));
    it.bytes = 20 + rng.below(100);
    it.base_utility = rng.uniform(0.1, 2.0);
    items.push_back(std::move(it));
  }
  return items;
}

std::uint64_t total_bytes(const std::vector<Item>& items) {
  std::uint64_t sum = 0;
  for (const auto& it : items) sum += it.bytes;
  return sum;
}

}  // namespace
}  // namespace dde::pubsub

int main(int argc, char** argv) {
  using namespace dde;
  using namespace dde::pubsub;
  const int trials = argc > 1 ? std::atoi(argv[1]) : 300;

  std::printf("PUBSUB — delivered information utility under overload\n");
  std::printf("(40 items in 5 clusters; %d trials; utility relative to\n",
              trials);
  std::printf(" delivering everything)\n\n");
  std::printf("%-10s %10s %10s %10s %12s\n", "budget", "infomax", "fifo",
              "priority", "infomax/fifo");

  // Each budget row reseeds its own Rng: rows run in parallel and print in
  // declared order (byte-identical at any DDE_BENCH_JOBS).
  const std::vector<double> budget_fracs{0.1, 0.2, 0.4, 0.6, 0.8};
  const auto rows = harness::run_indexed(
      budget_fracs.size(), [&](std::size_t row) {
        const double budget_frac = budget_fracs[row];
        RunningStats infomax_u;
        RunningStats fifo_u;
        RunningStats prio_u;
        Rng rng(2718);
        for (int t = 0; t < trials; ++t) {
          const auto items = random_items(rng, 40, 5);
          const auto budget = static_cast<std::uint64_t>(
              budget_frac * static_cast<double>(total_bytes(items)));
          const double everything = delivered_utility(items);
          infomax_u.add(infomax_triage(items, budget).utility / everything);
          fifo_u.add(fifo_triage(items, budget).utility / everything);
          prio_u.add(priority_triage(items, budget).utility / everything);
        }
        char line[96];
        std::snprintf(line, sizeof line,
                      "%-10.0f%% %9.3f %10.3f %10.3f %11.2fx\n",
                      budget_frac * 100, infomax_u.mean(), fifo_u.mean(),
                      prio_u.mean(), infomax_u.mean() / fifo_u.mean());
        return std::string(line);
      });
  for (const auto& line : rows) std::fputs(line.c_str(), stdout);

  // Criticality (Sec. V-C): critical items always make it through.
  Rng rng(3141);
  int critical_delivered = 0;
  int critical_total = 0;
  for (int t = 0; t < trials; ++t) {
    auto items = random_items(rng, 40, 5);
    for (std::size_t i = 0; i < items.size(); ++i) {
      if (rng.chance(0.1)) items[i].critical = true;
    }
    const auto sel = infomax_triage(items, total_bytes(items) / 5);
    for (std::size_t i = 0; i < items.size(); ++i) {
      if (!items[i].critical) continue;
      ++critical_total;
      for (std::size_t chosen : sel.order) {
        if (chosen == i) {
          ++critical_delivered;
          break;
        }
      }
    }
  }
  std::printf("\ncriticality: %d/%d critical items delivered at 20%% budget\n",
              critical_delivered, critical_total);
  std::printf(
      "infomax must dominate both baselines, most at small budgets, where\n"
      "skipping redundant items matters most.\n");
  return 0;
}
