// Sec. IV experiments: schedulability of decision-driven scheduling.
//
// Two sweeps over random task sets:
//   (a) single task — feasibility ratio of object orders (LVF vs baselines)
//       under lazy activation, as deadline tightness varies;
//   (b) multiple tasks — feasibility ratio of band orders (min-slack vs
//       EDF/SJF/declared/random) under both activation models, as load
//       varies.
// LVF and min-slack are provably optimal in their respective models; the
// bench shows by how much the baselines fall short.
#include <cstddef>
#include <cstdio>
#include <string>
#include <vector>

#include "common/rng.h"
#include "harness/parallel_runner.h"
#include "sched/lvf.h"

namespace dde::sched {
namespace {

RetrievalObject rand_obj(std::uint64_t id, Rng& rng) {
  return RetrievalObject{ObjectId{id}, SimTime::seconds(rng.uniform(0.5, 3.0)),
                         SimTime::seconds(rng.uniform(2.0, 25.0))};
}

void single_task_sweep(int trials) {
  std::printf(
      "(a) single task, lazy activation: feasibility ratio by object order\n");
  std::printf("%-10s %8s %8s %8s %8s\n", "deadline", "lvf", "svf", "shortest",
              "declared");
  // Each deadline row owns its Rng stream, so rows are independent trials:
  // they run in parallel and print in declared order (byte-identical at any
  // DDE_BENCH_JOBS).
  const std::vector<double> deadlines{6.0, 9.0, 12.0, 15.0, 20.0};
  const auto rows = harness::run_indexed(
      deadlines.size(), [&](std::size_t row) {
        const double deadline = deadlines[row];
        int feasible[4] = {0, 0, 0, 0};
        Rng rng(42);
        for (int t = 0; t < trials; ++t) {
          std::vector<RetrievalObject> objs;
          for (std::size_t i = 0, n = 2 + rng.below(5); i < n; ++i) {
            objs.push_back(rand_obj(i, rng));
          }
          const DecisionTask task{QueryId{0}, SimTime::zero(),
                                  SimTime::seconds(deadline), objs};
          const ObjectOrder orders[4] = {ObjectOrder::kLvf, ObjectOrder::kSvf,
                                         ObjectOrder::kShortestFirst,
                                         ObjectOrder::kDeclared};
          for (int k = 0; k < 4; ++k) {
            const auto order = order_objects(task, orders[k]);
            if (schedule_task(task, order, SimTime::zero()).feasible()) {
              ++feasible[k];
            }
          }
        }
        char line[96];
        std::snprintf(line, sizeof line, "%-10.0f %8.3f %8.3f %8.3f %8.3f\n",
                      deadline, feasible[0] * 1.0 / trials,
                      feasible[1] * 1.0 / trials, feasible[2] * 1.0 / trials,
                      feasible[3] * 1.0 / trials);
        return std::string(line);
      });
  for (const auto& line : rows) std::fputs(line.c_str(), stdout);
  std::printf("(lvf is optimal: its column must dominate every other)\n\n");
}

void band_sweep(int trials, ActivationModel model, const char* name) {
  std::printf("(b) %d tasks, %s: band-order feasibility ratio\n", 4, name);
  std::printf("%-10s %9s %8s %8s %9s %8s\n", "deadlines", "minslack", "edf",
              "sjf", "declared", "random");
  const std::vector<double> dmaxes{10.0, 15.0, 20.0, 30.0, 45.0};
  const auto rows = harness::run_indexed(
      dmaxes.size(), [&](std::size_t row) {
        const double dmax = dmaxes[row];
        const TaskOrder orders[5] = {TaskOrder::kMinSlackBand, TaskOrder::kEdf,
                                     TaskOrder::kShortestFirst,
                                     TaskOrder::kDeclared, TaskOrder::kRandom};
        int feasible[5] = {0, 0, 0, 0, 0};
        Rng rng(7);
        for (int t = 0; t < trials; ++t) {
          std::vector<DecisionTask> tasks;
          for (std::uint64_t q = 0; q < 4; ++q) {
            std::vector<RetrievalObject> objs;
            for (std::size_t i = 0, n = 1 + rng.below(4); i < n; ++i) {
              objs.push_back(rand_obj(q * 10 + i, rng));
            }
            tasks.push_back(
                DecisionTask{QueryId{q}, SimTime::zero(),
                             SimTime::seconds(rng.uniform(5.0, dmax)),
                             std::move(objs)});
          }
          for (int k = 0; k < 5; ++k) {
            Rng band_rng(static_cast<std::uint64_t>(t));
            if (schedule_bands(tasks, orders[k], ObjectOrder::kLvf, &band_rng,
                               model)
                    .feasible()) {
              ++feasible[k];
            }
          }
        }
        char line[112];
        std::snprintf(line, sizeof line,
                      "5..%-6.0f %9.3f %8.3f %8.3f %9.3f %8.3f\n", dmax,
                      feasible[0] * 1.0 / trials, feasible[1] * 1.0 / trials,
                      feasible[2] * 1.0 / trials, feasible[3] * 1.0 / trials,
                      feasible[4] * 1.0 / trials);
        return std::string(line);
      });
  for (const auto& line : rows) std::fputs(line.c_str(), stdout);
  std::printf("\n");
}

}  // namespace
}  // namespace dde::sched

int main(int argc, char** argv) {
  const int trials = argc > 1 ? std::atoi(argv[1]) : 2000;
  std::printf("SCHED THEORY — decision-driven real-time scheduling (Sec. IV)\n");
  std::printf("%d random task sets per cell\n\n", trials);
  dde::sched::single_task_sweep(trials);
  dde::sched::band_sweep(trials, dde::sched::ActivationModel::kActivateOnArrival,
                         "activate-on-arrival (paper's rule optimal)");
  dde::sched::band_sweep(trials, dde::sched::ActivationModel::kLazyActivation,
                         "lazy activation (EDF optimal)");
  return 0;
}
