// Overload protection: graceful degradation under query saturation.
//
// Sweeps offered load from 0.5x to 4x of a near-saturating Poisson query
// rate across all five schemes, each with overload protection off (seed
// behaviour: unbounded link queues, no shedding) and on (bounded queues
// with lowest-priority-newest eviction, deadline-infeasibility shedding,
// admission control for low-priority queries, congestion-throttled
// prefetch). A quarter of the queries are critical (priority 1).
//
// The paper's value-driven promise (Sec. V-C) is that under saturation the
// system keeps serving its highest-value decisions predictably instead of
// collapsing uniformly: critical success should degrade gracefully while
// low-priority work is shed, and total bytes should stay ~linear in
// offered load (no retry/refetch blow-up).
#include <cmath>
#include <cstdio>

#include "bench_util.h"

namespace {

using namespace dde;

/// Per-priority outcome aggregation of one (scheme, load, protection) cell.
struct OverloadCell {
  double crit_issued = 0;
  double crit_ok = 0;
  double low_issued = 0;
  double low_ok = 0;
  double shed = 0;           ///< shed + admission-rejected queries
  double crit_latency_s = 0; ///< summed over successful critical queries
  double megabytes = 0;
  double queue_drops = 0;

  [[nodiscard]] double crit_ratio() const {
    return crit_issued == 0 ? 0 : crit_ok / crit_issued;
  }
  [[nodiscard]] double low_ratio() const {
    return low_issued == 0 ? 0 : low_ok / low_issued;
  }
  [[nodiscard]] double shed_ratio() const {
    const double issued = crit_issued + low_issued;
    return issued == 0 ? 0 : shed / issued;
  }
  [[nodiscard]] double crit_latency() const {
    return crit_ok == 0 ? 0 : crit_latency_s / crit_ok;
  }

  // Per-seed summaries + per-decision telemetry for the machine-readable
  // report; the printed numbers above stay computed exactly as before.
  RunningStats crit_ratio_stats;
  RunningStats low_ratio_stats;
  RunningStats shed_ratio_stats;
  RunningStats megabytes_stats;
  obs::DecisionTelemetry telem;
};

// Load model: Poisson arrivals per node over a fixed ~180 s issue window
// with a 20 s decision deadline. The world is tuned so that demand scales
// with the query rate instead of being absorbed by caches and interest
// aggregation — every object is fast-validity (20 s), so each fresh query
// window refetches — and the mesh is thinned (link radius 1.8) so hot
// links actually saturate. kBaseInterarrival is the per-node mean
// inter-arrival that puts that world near its knee (1.0x); the sweep
// scales the rate, holding the window fixed by scaling the per-node query
// count with it.
constexpr double kBaseInterarrival = 10.0;  // seconds/query/node at 1.0x
constexpr double kIssueWindow = 180.0;      // seconds of arrivals
constexpr double kDeadline = 20.0;          // per-query decision deadline

scenario::ScenarioConfig make_config(athena::Scheme scheme, double load,
                                     bool protection) {
  scenario::ScenarioConfig cfg;
  cfg.scheme = scheme;
  cfg.fast_ratio = 1.0;
  cfg.fast_validity = SimTime::seconds(20);
  cfg.link_radius = 1.8;
  cfg.arrival = scenario::ScenarioConfig::Arrival::kPoisson;
  cfg.mean_interarrival = SimTime::seconds(kBaseInterarrival / load);
  cfg.queries_per_node = static_cast<std::size_t>(
      std::lround(std::max(1.0, kIssueWindow * load / kBaseInterarrival)));
  cfg.query_deadline = SimTime::seconds(kDeadline);
  cfg.horizon = SimTime::seconds(kIssueWindow + kDeadline + 60.0);
  cfg.critical_fraction = 0.25;
  cfg.critical_priority = 1;
  if (protection) {
    auto ac = athena::config_for(scheme);
    ac.shed_infeasible = true;
    ac.admission_max_active = 4;
    ac.prefetch_watermark = 2;
    cfg.config_override = ac;
    cfg.link_queue_max_bytes = 1024 * 1024;  // ~8 s of 1 Mbps backlog
  }
  return cfg;
}

OverloadCell run_cell(athena::Scheme scheme, double load, bool protection,
                      int seeds) {
  OverloadCell cell;
  // Seeds run in parallel (DDE_BENCH_JOBS workers); the fold below happens
  // here in seed order, so the cell is byte-identical at any thread count.
  const auto runs =
      dde::bench::run_seeds_traced(make_config(scheme, load, protection), seeds);
  for (const bench::SeedRun& run : runs) {
    const auto& r = run.result;
    double seed_crit_issued = 0, seed_crit_ok = 0;
    double seed_low_issued = 0, seed_low_ok = 0, seed_shed = 0;
    for (const auto& out : r.outcomes) {
      if (out.priority > 0) {
        seed_crit_issued += 1;
        if (out.success) seed_crit_ok += 1;
      } else {
        seed_low_issued += 1;
        if (out.success) seed_low_ok += 1;
      }
      if (out.shed) seed_shed += 1;
    }
    cell.crit_ratio_stats.add(
        seed_crit_issued == 0 ? 0 : seed_crit_ok / seed_crit_issued);
    cell.low_ratio_stats.add(
        seed_low_issued == 0 ? 0 : seed_low_ok / seed_low_issued);
    const double seed_issued = seed_crit_issued + seed_low_issued;
    cell.shed_ratio_stats.add(seed_issued == 0 ? 0 : seed_shed / seed_issued);
    cell.megabytes_stats.add(r.total_megabytes());
    cell.telem.merge(run.telem);
    for (const auto& out : r.outcomes) {
      if (out.priority > 0) {
        cell.crit_issued += 1;
        if (out.success) {
          cell.crit_ok += 1;
          cell.crit_latency_s += out.latency_s;
        }
      } else {
        cell.low_issued += 1;
        if (out.success) cell.low_ok += 1;
      }
      if (out.shed) cell.shed += 1;
    }
    cell.megabytes += r.total_megabytes() / seeds;
    cell.queue_drops += static_cast<double>(r.metrics.queue_drops) / seeds;
  }
  return cell;
}

}  // namespace

int main(int argc, char** argv) {
  const int seeds = argc > 1 ? std::atoi(argv[1]) : 5;
  const double loads[] = {0.5, 1.0, 2.0, 4.0};

  std::printf(
      "OVERLOAD SATURATION — per-priority degradation, 0.5x–4x load "
      "(%d seeds)\n", seeds);
  std::printf(
      "(Poisson arrivals, %.0f s deadline, 25%% critical; protection = "
      "1 MB link queues,\n shedding, admission cap 4, prefetch watermark "
      "2. off = seed behaviour)\n\n", kDeadline);
  std::printf("%-6s %-5s | %17s | %17s | %15s | %15s | %13s\n", "", "",
              "crit success", "low success", "shed ratio", "traffic MB",
              "crit lat s");
  std::printf("%-6s %-5s | %8s %8s | %8s %8s | %7s %7s | %7s %7s | %6s %6s\n",
              "scheme", "load", "off", "on", "off", "on", "off", "on", "off",
              "on", "off", "on");

  obs::BenchReport report("overload_saturation");
  const auto report_overload = [&report](const std::string& key,
                                         const OverloadCell& cell) {
    report.add_metric(key, "crit_success", cell.crit_ratio_stats);
    report.add_metric(key, "low_success", cell.low_ratio_stats);
    report.add_metric(key, "shed_ratio", cell.shed_ratio_stats);
    report.add_metric(key, "total_megabytes", cell.megabytes_stats);
    report.add_histogram(key, "age_upon_decision_s",
                         cell.telem.age_upon_decision_s);
    report.add_histogram(key, "slack_at_decision_s",
                         cell.telem.slack_at_decision_s);
    report.add_histogram(key, "bytes_per_decision",
                         cell.telem.bytes_per_decision);
  };

  for (athena::Scheme scheme : bench::all_schemes()) {
    for (double load : loads) {
      const OverloadCell off = run_cell(scheme, load, false, seeds);
      const OverloadCell on = run_cell(scheme, load, true, seeds);
      char key[48];
      std::snprintf(key, sizeof(key), "%s@load=%.1f",
                    bench::scheme_name(scheme).c_str(), load);
      report_overload(std::string(key) + ":off", off);
      report_overload(std::string(key) + ":on", on);
      std::printf(
          "%-6s %-5.1f | %8.3f %8.3f | %8.3f %8.3f | %7.3f %7.3f | "
          "%7.1f %7.1f | %6.1f %6.1f\n",
          bench::scheme_name(scheme).c_str(), load, off.crit_ratio(),
          on.crit_ratio(), off.low_ratio(), on.low_ratio(), off.shed_ratio(),
          on.shed_ratio(), off.megabytes, on.megabytes, off.crit_latency(),
          on.crit_latency());
    }
    std::printf("\n");
  }
  report.write();

  std::printf(
      "under saturation the unprotected system degrades uniformly: every\n"
      "class queues behind every other, deadlines pass with work still in\n"
      "flight, and bandwidth is burnt on doomed transfers. with protection\n"
      "on, bounded queues evict low-priority backlog first, infeasible\n"
      "queries are shed before they fetch, and admission control keeps each\n"
      "node's outstanding set small — so critical success holds (or falls\n"
      "much more slowly) while the shed ratio absorbs the excess load, and\n"
      "traffic stays ~linear in offered load instead of superlinear.\n");
  return 0;
}
