// System-level noisy-sensor experiment (Sec. IV-B in the full Athena
// stack): decision accuracy and cost with and without corroboration.
//
// Sensors misreport each segment with probability (1 − reliability). The
// audit checks every committed route against ground truth at resolution
// time. Without corroboration a single wrong reading can commit the team
// to a blocked route; with corroboration (confidence τ) the node keeps
// retrieving evidence from other covering sensors until the Bayesian
// belief clears τ — trading bandwidth and latency for decision accuracy.
#include <cstdio>

#include "bench_util.h"

int main(int argc, char** argv) {
  using namespace dde;
  const int seeds = argc > 1 ? std::atoi(argv[1]) : 10;

  std::printf(
      "NOISY SENSORS — decision accuracy vs corroboration (lvfl, %d seeds)\n\n",
      seeds);
  std::printf("%-12s %-9s %9s %10s %10s %11s\n", "reliability", "corrob",
              "ratio", "accuracy", "totalMB", "latency_s");

  for (double reliability : {1.0, 0.95, 0.9, 0.8, 0.7}) {
    for (double tau : {0.0, 0.85}) {
      scenario::ScenarioConfig cfg;
      cfg.scheme = athena::Scheme::kLvfl;
      // Slow world, short validity: staleness-in-truth is negligible, so
      // the audit isolates the effect of sensor noise.
      cfg.fast_ratio = 0.0;
      cfg.slow_validity = SimTime::seconds(120);
      cfg.mean_holding = SimTime::seconds(7200);
      cfg.sensor_reliability = reliability;
      cfg.corroboration_confidence = tau;
      RunningStats ratio;
      RunningStats accuracy;
      RunningStats mb;
      RunningStats latency;
      for (const auto& r : bench::run_seeds(cfg, seeds)) {
        ratio.add(r.resolution_ratio());
        accuracy.add(r.decision_accuracy());
        mb.add(r.total_megabytes());
        latency.add(r.metrics.mean_latency_s());
      }
      std::printf("%-12.2f %-9s %9.3f %10.3f %10.1f %11.2f\n", reliability,
                  tau > 0 ? "tau=0.85" : "off", ratio.mean(), accuracy.mean(),
                  mb.mean(), latency.mean());
    }
  }
  std::printf(
      "\ncorroboration must recover most of the accuracy lost to noise, at\n"
      "a visible cost in bandwidth and resolution latency/ratio.\n");
  return 0;
}
