// Chaos harness (src/fault/chaos.h): crash/restart churn, restart
// semantics, and the crash-recovery protocol.
//
// Part 1 holds a fixed churn schedule and sweeps the restart policy —
// ghost (state survives, the legacy behaviour), warm (caches survive,
// tables wiped), cold (everything wiped) — with the recovery protocol on
// and off. Part 2 sweeps the crash rate under cold restarts, on vs off:
// the off column shows what raw retry/failover machinery salvages, the on
// column adds restart hellos, marker purges, and short recovery leases.
// Part 3 is the seeded chaos sweep: many independent schedules (crashes,
// link flaps, bursty loss) each run to the quiesce point, where the
// invariant checker must find zero residual state and a double run of
// every seed must produce byte-identical outcome digests.
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "fault/chaos.h"
#include "harness/parallel_runner.h"
#include "scenario/spec.h"

namespace {

using namespace dde;

/// Workload + chaos shape shared by every part: queries arrive as a
/// Poisson stream across the churn window, with deadlines short enough
/// that a crash mid-retrieval genuinely threatens the decision.
scenario::ScenarioConfig base_config() {
  scenario::ScenarioSpec spec;
  spec.set("scheme", std::string("lvfl"));
  spec.set("fast_ratio", 0.2);
  spec.set("arrival", std::string("poisson"));
  spec.set("mean_interarrival_s", 40.0);
  spec.set("queries_per_node", static_cast<std::int64_t>(4));
  spec.set("query_deadline_s", 60.0);
  spec.set("horizon_s", 300.0);
  auto cfg = scenario::route_config_from_spec(spec);
  cfg.chaos.window_start = SimTime::seconds(20);
  cfg.chaos.window_end = SimTime::seconds(260);
  cfg.chaos.crashes_per_node_min = 0.4;
  return cfg;
}

/// Node config: fault_resilience's recovery stack (tight timeout, doubling
/// backoff, failover) plus the crash-recovery knobs under test.
athena::AthenaConfig node_config(bool recovery_on) {
  auto ac = athena::config_for(athena::Scheme::kLvfl);
  ac.request_timeout = SimTime::seconds(30);
  ac.retry_backoff = 2.0;
  ac.max_source_attempts = 3;
  ac.crash_recovery = recovery_on;
  ac.recovery_lease = recovery_on ? SimTime::seconds(10) : SimTime::zero();
  return ac;
}

struct ChurnCell {
  RunningStats ratio;          ///< resolved / issued
  RunningStats survivor_ratio; ///< resolved / (issued − crashed)
  RunningStats crashed;
  RunningStats restarts;
  RunningStats hellos;
  RunningStats reissues;
  RunningStats recovery_s;
  RunningStats megabytes;
};

ChurnCell run_churn_cell(const scenario::ScenarioConfig& cfg, int seeds) {
  ChurnCell cell;
  for (const auto& r : bench::run_seeds(cfg, seeds)) {
    const auto& m = r.metrics;
    cell.ratio.add(r.resolution_ratio());
    const double alive = static_cast<double>(m.queries_issued) -
                         static_cast<double>(m.queries_failed_crash);
    cell.survivor_ratio.add(
        alive <= 0.0 ? 0.0 : static_cast<double>(m.queries_resolved) / alive);
    cell.crashed.add(static_cast<double>(m.queries_failed_crash));
    cell.restarts.add(static_cast<double>(m.node_restarts));
    cell.hellos.add(static_cast<double>(m.recovery_hellos));
    cell.reissues.add(static_cast<double>(m.recovery_reissues));
    cell.recovery_s.add(m.mean_recovery_time_s());
    cell.megabytes.add(r.total_megabytes());
  }
  return cell;
}

void report_churn_cell(obs::BenchReport& report, const std::string& key,
                       const ChurnCell& cell) {
  report.add_metric(key, "resolution_ratio", cell.ratio);
  report.add_metric(key, "survivor_resolution_ratio", cell.survivor_ratio);
  report.add_metric(key, "crashed_queries", cell.crashed);
  report.add_metric(key, "node_restarts", cell.restarts);
  report.add_metric(key, "recovery_hellos", cell.hellos);
  report.add_metric(key, "recovery_reissues", cell.reissues);
  report.add_metric(key, "recovery_time_s", cell.recovery_s);
  report.add_metric(key, "total_megabytes", cell.megabytes);
}

/// Order-sensitive digest of everything a run observably produced.
std::uint64_t outcome_digest(const scenario::ScenarioResult& r) {
  fault::ReplayDigest d;
  const auto& m = r.metrics;
  d.fold(m.queries_issued);
  d.fold(m.queries_resolved);
  d.fold(m.queries_failed);
  d.fold(m.queries_failed_crash);
  d.fold(m.queries_shed);
  d.fold(m.node_restarts);
  d.fold(m.recovery_hellos);
  d.fold(m.recovery_marker_purges);
  d.fold(m.recovery_reissues);
  d.fold(m.total_recovery_lag_s);
  d.fold(m.total_bytes());
  d.fold(m.retries);
  d.fold(m.failovers);
  d.fold(m.link_down_drops);
  d.fold(r.traffic.bytes);
  d.fold(r.events);
  for (const auto& out : r.outcomes) {
    d.fold(static_cast<std::uint64_t>(out.priority));
    d.fold(static_cast<std::uint64_t>(out.success ? 1 : 0));
    d.fold(static_cast<std::uint64_t>(out.crashed ? 1 : 0));
    d.fold(out.latency_s);
    d.fold(out.issued_s);
    d.fold(out.finished_s);
  }
  for (const auto& p : r.probes) {
    d.fold(p.node);
    d.fold(p.active_queries);
    d.fold(p.interest_entries);
    d.fold(p.forwarded_entries);
    d.fold(p.dedup_entries);
  }
  return d.value();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace dde;
  const int seeds = argc > 1 ? std::atoi(argv[1]) : 10;
  const int schedules = argc > 2 ? std::atoi(argv[2]) : 50;

  obs::BenchReport report("churn_recovery");

  std::printf("CHURN RECOVERY — restart semantics under seeded chaos "
              "(%d seeds)\n", seeds);
  std::printf("(poisson workload, 60 s deadlines; crashes at 0.4/node/min "
              "over t=20..260 s,\n 10–40 s downtime; recovery = hellos + "
              "marker purge/re-issue + 10 s lease)\n\n");

  // --- part 1: restart policy × recovery protocol ------------------------
  std::printf("restart policy sweep — what a crash forgets\n");
  std::printf("%-14s %8s %8s %8s %8s %8s %8s %8s\n", "policy", "ratio",
              "surv", "crashed", "restart", "hellos", "reissue", "rec_s");
  struct PolicyRow {
    const char* key;
    fault::RestartPolicy policy;
    bool recovery;
  };
  const std::vector<PolicyRow> rows = {
      {"ghost", fault::RestartPolicy::kGhost, true},
      {"warm", fault::RestartPolicy::kWarm, true},
      {"cold", fault::RestartPolicy::kCold, true},
      {"cold_norec", fault::RestartPolicy::kCold, false},
  };
  for (const PolicyRow& row : rows) {
    scenario::ScenarioConfig cfg = base_config();
    cfg.chaos.restart_policy = row.policy;
    cfg.config_override = node_config(row.recovery);
    const ChurnCell cell = run_churn_cell(cfg, seeds);
    std::printf("%-14s %8.3f %8.3f %8.1f %8.1f %8.1f %8.1f %8.3f\n", row.key,
                cell.ratio.mean(), cell.survivor_ratio.mean(),
                cell.crashed.mean(), cell.restarts.mean(), cell.hellos.mean(),
                cell.reissues.mean(), cell.recovery_s.mean());
    report_churn_cell(report, row.key, cell);
  }

  // --- part 2: crash-rate sweep, cold restarts, recovery on vs off --------
  std::printf("\ncrash rate sweep (cold restarts) — survivor resolution "
              "ratio, recovery on|off\n");
  std::printf("%-10s", "rate/min");
  for (double rate : {0.1, 0.2, 0.4, 0.8}) std::printf(" %11.1f", rate);
  std::printf("\n%-10s", "on|off");
  for (double rate : {0.1, 0.2, 0.4, 0.8}) {
    ChurnCell on;
    ChurnCell off;
    for (bool recovery : {true, false}) {
      scenario::ScenarioConfig cfg = base_config();
      cfg.chaos.restart_policy = fault::RestartPolicy::kCold;
      cfg.chaos.crashes_per_node_min = rate;
      cfg.config_override = node_config(recovery);
      (recovery ? on : off) = run_churn_cell(cfg, seeds);
    }
    std::printf(" %5.3f|%5.3f", on.survivor_ratio.mean(),
                off.survivor_ratio.mean());
    char key[32];
    std::snprintf(key, sizeof(key), "rate_%.1f_on", rate);
    report_churn_cell(report, key, on);
    std::snprintf(key, sizeof(key), "rate_%.1f_off", rate);
    report_churn_cell(report, key, off);
  }
  std::printf("\n");

  // --- part 3: seeded chaos schedules → quiesce-point invariants ----------
  // Every schedule adds link flaps and a bursty-loss floor on top of the
  // cold crash churn, runs past the horizon until the DES drains, checks
  // the residual-state invariants, and replays the same seed to compare
  // outcome digests. Any violation or digest mismatch is a bug.
  std::printf("\nchaos sweep — %d seeded schedules to quiescence "
              "(cold, recovery on, flaps + burst)\n", schedules);
  struct ChaosRun {
    std::uint64_t violations = 0;
    bool replay_identical = true;
    std::uint64_t events = 0;
  };
  const auto chaos_runs = harness::run_indexed(
      static_cast<std::size_t>(schedules < 0 ? 0 : schedules),
      [&](std::size_t i) {
        scenario::ScenarioConfig cfg = base_config();
        cfg.seed = static_cast<std::uint64_t>(i + 1);
        cfg.chaos.restart_policy = fault::RestartPolicy::kCold;
        cfg.chaos.flaps_per_link_min = 0.1;
        cfg.chaos.burst =
            fault::GilbertElliottParams::for_average_loss(0.02, 4.0);
        cfg.config_override = node_config(/*recovery_on=*/true);
        cfg.run_to_quiescence = true;
        const scenario::ScenarioResult first =
            scenario::run_route_scenario(cfg);
        const scenario::ScenarioResult second =
            scenario::run_route_scenario(cfg);
        ChaosRun run;
        run.violations =
            fault::check_quiesce_invariants(first.probes).violations.size();
        run.replay_identical =
            outcome_digest(first) == outcome_digest(second);
        run.events = first.events;
        return run;
      });
  std::uint64_t total_violations = 0;
  std::uint64_t replay_mismatches = 0;
  RunningStats events;
  RunningStats violations;
  for (const ChaosRun& run : chaos_runs) {
    total_violations += run.violations;
    replay_mismatches += run.replay_identical ? 0 : 1;
    events.add(static_cast<double>(run.events));
    violations.add(static_cast<double>(run.violations));
  }
  std::printf("invariant violations: %llu across %d schedules\n",
              static_cast<unsigned long long>(total_violations), schedules);
  std::printf("replay mismatches:    %llu (every schedule run twice)\n",
              static_cast<unsigned long long>(replay_mismatches));
  report.add_metric("chaos", "invariant_violations", violations);
  report.add_metric("chaos", "replay_mismatches", [&] {
    RunningStats s;
    s.add(static_cast<double>(replay_mismatches));
    return s;
  }());
  report.add_metric("chaos", "events", events);

  std::printf(
      "\nghost crashes cost nothing (state survives by fiat); cold crashes\n"
      "drop in-flight queries and strand neighbors' interest state. the\n"
      "recovery protocol buys back most of the stranded work: restart\n"
      "hellos purge aggregation markers through the crashed hop and\n"
      "re-issue live interests upstream, so survivors resolve instead of\n"
      "burning their deadlines against stale leases.\n");

  report.write();
  return total_violations == 0 && replay_mismatches == 0 ? 0 : 1;
}
