// Reproduces Fig. 2: query resolution ratio at varying levels of
// environment dynamics (ratio of fast-changing objects), for all five
// retrieval schemes. 10 randomized repetitions per data point, as in the
// paper (Sec. VII).
//
// Expected shape: decision-driven schemes (lvf, lvfl) resolve most if not
// all queries at every dynamics level; baselines (cmp, slt, lcf) degrade as
// the fast-object ratio grows, due to data expirations and refetches.
#include <cstdio>

#include "bench_util.h"
#include "scenario/spec.h"

int main(int argc, char** argv) {
  using namespace dde;
  const int seeds = argc > 1 ? std::atoi(argv[1]) : 10;
  const std::vector<double> fast_ratios{0.0, 0.2, 0.4, 0.6, 0.8, 1.0};

  std::printf("FIG 2 — query resolution ratio vs environment dynamics\n");
  std::printf("(mean over %d seeds; +- is the 95%% CI half-width)\n\n", seeds);
  std::printf("%-6s", "scheme");
  for (double fr : fast_ratios) std::printf("        fr=%.1f", fr);
  std::printf("\n");

  obs::BenchReport report("fig2_resolution_ratio");
  for (athena::Scheme scheme : bench::all_schemes()) {
    std::printf("%-6s", bench::scheme_name(scheme).c_str());
    for (double fr : fast_ratios) {
      // Declarative sweep point through the scenario registry's spec path
      // (typo'd knob names abort instead of being silently ignored).
      scenario::ScenarioSpec spec;
      spec.set("scheme", bench::scheme_name(scheme));
      spec.set("fast_ratio", fr);
      const auto cfg = scenario::route_config_from_spec(spec);
      const auto cell = bench::run_cell(cfg, seeds);
      std::printf("  %.3f+-%.3f", cell.ratio.mean(), cell.ratio.ci95());
      char key[32];
      std::snprintf(key, sizeof(key), "%s@fr=%.1f",
                    bench::scheme_name(scheme).c_str(), fr);
      bench::report_cell(report, key, cell);
    }
    std::printf("\n");
  }
  report.write();

  std::printf(
      "\npaper: decision-driven retrieval resolves most, if not all, queries\n"
      "at all dynamics levels; baselines struggle as dynamics increase.\n");
  return 0;
}
