// Workload-arrival ablation: the paper issues all queries concurrently
// (Sec. VII); real missions stagger them (event-triggered / periodic,
// Sec. IV-B). Staggered arrivals relieve contention for every scheme, and
// they grow the value of label sharing: evaluated labels linger in caches
// and serve queries that arrive later.
#include <cstdio>

#include "bench_util.h"

int main(int argc, char** argv) {
  using namespace dde;
  const int seeds = argc > 1 ? std::atoi(argv[1]) : 10;

  std::printf("ARRIVAL PATTERNS — concurrent vs staggered queries (%d seeds)\n\n",
              seeds);
  std::printf("%-6s %-12s %8s %10s %11s %7s\n", "scheme", "arrival", "ratio",
              "totalMB", "latency_s", "lhit");

  struct Pattern {
    scenario::ScenarioConfig::Arrival arrival;
    const char* name;
  };
  const Pattern patterns[] = {
      {scenario::ScenarioConfig::Arrival::kConcurrent, "concurrent"},
      {scenario::ScenarioConfig::Arrival::kPoisson, "poisson-60s"},
      {scenario::ScenarioConfig::Arrival::kPeriodic, "periodic-60s"},
  };

  for (athena::Scheme scheme :
       {athena::Scheme::kCmp, athena::Scheme::kLvf, athena::Scheme::kLvfl}) {
    for (const Pattern& p : patterns) {
      scenario::ScenarioConfig cfg;
      cfg.scheme = scheme;
      cfg.fast_ratio = 0.4;
      cfg.arrival = p.arrival;
      cfg.mean_interarrival = SimTime::seconds(60);
      // Room for the latest arrivals to run to their deadline.
      cfg.horizon = SimTime::seconds(700);
      RunningStats ratio;
      RunningStats mb;
      RunningStats latency;
      RunningStats lhit;
      for (const auto& r : bench::run_seeds(cfg, seeds)) {
        ratio.add(r.resolution_ratio());
        mb.add(r.total_megabytes());
        latency.add(r.metrics.mean_latency_s());
        lhit.add(static_cast<double>(r.metrics.label_cache_hits));
      }
      std::printf("%-6s %-12s %8.3f %10.1f %11.2f %7.1f\n",
                  bench::scheme_name(scheme).c_str(), p.name, ratio.mean(),
                  mb.mean(), latency.mean(), lhit.mean());
    }
  }
  std::printf(
      "\nstaggering reduces contention (higher ratio, lower latency) and\n"
      "lets lvfl's shared labels serve late arrivals from caches.\n");
  return 0;
}
