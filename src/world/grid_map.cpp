#include "world/grid_map.h"

#include <algorithm>
#include <cmath>
#include <set>
#include <stdexcept>

#include "common/contracts.h"

namespace dde::world {

GridMap::GridMap(int width, int height) : width_(width), height_(height) {
  DDE_CHECK(width >= 1 && height >= 1,
            "GridMap: dimensions must be positive");
  std::uint64_t next = 0;
  horizontal_index_.assign(static_cast<std::size_t>(height_ + 1),
                           std::vector<SegmentId>(static_cast<std::size_t>(width_)));
  vertical_index_.assign(static_cast<std::size_t>(height_),
                         std::vector<SegmentId>(static_cast<std::size_t>(width_ + 1)));
  for (int y = 0; y <= height_; ++y) {
    for (int x = 0; x < width_; ++x) {
      const SegmentId id{next++};
      segments_.push_back(Segment{id, {x, y}, {x + 1, y}, /*horizontal=*/true});
      horizontal_index_[static_cast<std::size_t>(y)][static_cast<std::size_t>(x)] = id;
    }
  }
  for (int y = 0; y < height_; ++y) {
    for (int x = 0; x <= width_; ++x) {
      const SegmentId id{next++};
      segments_.push_back(Segment{id, {x, y}, {x, y + 1}, /*horizontal=*/false});
      vertical_index_[static_cast<std::size_t>(y)][static_cast<std::size_t>(x)] = id;
    }
  }
}

const Segment& GridMap::segment(SegmentId id) const {
  if (!id.valid() || id.value() >= segments_.size()) {
    throw std::out_of_range("GridMap::segment: unknown segment id");
  }
  return segments_[id.value()];
}

std::optional<SegmentId> GridMap::segment_between(Intersection a,
                                                  Intersection b) const {
  if (!in_range(a) || !in_range(b)) return std::nullopt;
  if (a.y == b.y && std::abs(a.x - b.x) == 1) {
    const int x = std::min(a.x, b.x);
    return horizontal_index_[static_cast<std::size_t>(a.y)][static_cast<std::size_t>(x)];
  }
  if (a.x == b.x && std::abs(a.y - b.y) == 1) {
    const int y = std::min(a.y, b.y);
    return vertical_index_[static_cast<std::size_t>(y)][static_cast<std::size_t>(a.x)];
  }
  return std::nullopt;
}

std::vector<SegmentId> GridMap::segments_near(double x, double y,
                                              double radius) const {
  std::vector<SegmentId> out;
  for (const auto& seg : segments_) {
    if (std::abs(seg.mid_x() - x) <= radius && std::abs(seg.mid_y() - y) <= radius) {
      out.push_back(seg.id);
    }
  }
  return out;
}

Intersection GridMap::random_intersection(Rng& rng) const {
  return Intersection{
      static_cast<int>(rng.below(static_cast<std::uint64_t>(width_ + 1))),
      static_cast<int>(rng.below(static_cast<std::uint64_t>(height_ + 1)))};
}

Route GridMap::random_monotone_route(Intersection from, Intersection to,
                                     Rng& rng) const {
  DDE_CHECK(in_range(from) && in_range(to),
            "random_monotone_route: endpoints must lie on the grid");
  Route route;
  route.origin = from;
  route.destination = to;
  Intersection cur = from;
  const int dx = to.x > from.x ? 1 : -1;
  const int dy = to.y > from.y ? 1 : -1;
  while (cur != to) {
    const int remaining_x = std::abs(to.x - cur.x);
    const int remaining_y = std::abs(to.y - cur.y);
    const bool move_x =
        remaining_y == 0 ||
        (remaining_x > 0 &&
         rng.below(static_cast<std::uint64_t>(remaining_x + remaining_y)) <
             static_cast<std::uint64_t>(remaining_x));
    Intersection next = cur;
    if (move_x) {
      next.x += dx;
    } else {
      next.y += dy;
    }
    const auto seg = segment_between(cur, next);
    DDE_CHECK(seg.has_value(),
              "random_monotone_route: adjacent intersections missing segment");
    route.segments.push_back(*seg);
    cur = next;
  }
  return route;
}

std::vector<Route> GridMap::random_route_choices(std::size_t k,
                                                 int min_distance,
                                                 Rng& rng) const {
  DDE_CLAMP_OR(min_distance >= 1, min_distance = 1,
               "random_route_choices: min_distance < 1; clamped to 1");
  // An unsatisfiable distance would spin the rejection loop forever: the
  // farthest pair on a width x height grid is width+height apart.
  DDE_CLAMP_OR(min_distance <= width_ + height_,
               min_distance = width_ + height_,
               "random_route_choices: min_distance exceeds grid diameter; "
               "clamped to width+height");
  Intersection from{};
  Intersection to{};
  // Rejection-sample an origin/destination pair that is far enough apart.
  do {
    from = random_intersection(rng);
    to = random_intersection(rng);
  } while (std::abs(from.x - to.x) + std::abs(from.y - to.y) < min_distance);

  std::vector<Route> routes;
  std::set<std::vector<SegmentId>> seen;
  // Distinct monotone paths can be scarce (a straight-line pair has exactly
  // one); cap attempts so we terminate.
  const std::size_t max_attempts = 20 * k + 20;
  for (std::size_t attempt = 0; attempt < max_attempts && routes.size() < k;
       ++attempt) {
    Route r = random_monotone_route(from, to, rng);
    if (seen.insert(r.segments).second) routes.push_back(std::move(r));
  }
  return routes;
}

}  // namespace dde::world
