#include "world/sensor_field.h"

#include <algorithm>
#include <stdexcept>
#include <string>

#include "common/contracts.h"

namespace dde::world {

SensorField::SensorField(const GridMap& map, ViabilityProcess& truth,
                         const SensorFieldConfig& config, Rng& rng)
    : map_(map), truth_(truth) {
  DDE_CHECK(config.sensor_count > 0,
            "SensorField: need at least one sensor");
  DDE_CHECK(config.min_object_bytes <= config.max_object_bytes,
            "SensorField: min_object_bytes must not exceed max_object_bytes");
  const auto fast_count = static_cast<std::size_t>(
      config.fast_ratio * static_cast<double>(config.sensor_count) + 0.5);
  for (std::size_t i = 0; i < config.sensor_count; ++i) {
    SensorInfo s;
    s.id = SourceId{i};
    // Place at a random position; retry until the footprint is non-empty.
    for (int attempt = 0; attempt < 1000; ++attempt) {
      s.x = rng.uniform(0.0, static_cast<double>(map.width()));
      s.y = rng.uniform(0.0, static_cast<double>(map.height()));
      s.covers = map.segments_near(s.x, s.y, config.coverage_radius);
      if (!s.covers.empty()) break;
    }
    if (s.covers.empty()) {
      throw std::runtime_error("SensorField: could not place sensor with coverage");
    }
    s.object_bytes = static_cast<std::uint64_t>(rng.between(
        static_cast<std::int64_t>(config.min_object_bytes),
        static_cast<std::int64_t>(config.max_object_bytes)));
    s.rate = i < fast_count ? ChangeRate::kFast : ChangeRate::kSlow;
    s.validity = s.rate == ChangeRate::kFast ? config.fast_validity
                                             : config.slow_validity;
    s.reliability = config.reliability;
    s.name = naming::Name{"city", "grid",
                          std::string("x") + std::to_string(static_cast<int>(s.x)),
                          std::string("y") + std::to_string(static_cast<int>(s.y)),
                          std::string("camera") + std::to_string(i)};
    sensors_.push_back(std::move(s));
  }
  // Shuffle which sensors are fast so rate does not correlate with position.
  std::vector<ChangeRate> rates;
  rates.reserve(sensors_.size());
  for (const auto& s : sensors_) rates.push_back(s.rate);
  rng.shuffle(rates);
  for (std::size_t i = 0; i < sensors_.size(); ++i) {
    sensors_[i].rate = rates[i];
    sensors_[i].validity = rates[i] == ChangeRate::kFast
                               ? config.fast_validity
                               : config.slow_validity;
  }
}

SensorField::SensorField(const GridMap& map, ViabilityProcess& truth,
                         std::vector<SensorInfo> sensors)
    : map_(map), truth_(truth), sensors_(std::move(sensors)) {
  for (std::size_t i = 0; i < sensors_.size(); ++i) {
    DDE_CHECK(sensors_[i].id == SourceId{i},
              "SensorField: sensor ids must be dense and in order");
    DDE_CHECK(!sensors_[i].covers.empty(),
              "SensorField: every sensor must cover at least one segment");
  }
}

const SensorInfo& SensorField::sensor(SourceId id) const {
  if (!id.valid() || id.value() >= sensors_.size()) {
    throw std::out_of_range("SensorField::sensor: unknown source id");
  }
  return sensors_[id.value()];
}

std::vector<SourceId> SensorField::sensors_covering(SegmentId segment) const {
  std::vector<SourceId> out;
  for (const auto& s : sensors_) {
    if (std::find(s.covers.begin(), s.covers.end(), segment) != s.covers.end()) {
      out.push_back(s.id);
    }
  }
  return out;
}

std::vector<SegmentId> SensorField::covered_segments() const {
  std::vector<SegmentId> out;
  for (const auto& s : sensors_) {
    out.insert(out.end(), s.covers.begin(), s.covers.end());
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

EvidenceObject SensorField::sample(SourceId id, SimTime now) {
  const SensorInfo& s = sensor(id);
  EvidenceObject obj;
  obj.id = ObjectId{samples_};
  obj.source = id;
  obj.name = s.name.child("capture" + std::to_string(samples_));
  obj.bytes = s.object_bytes;
  obj.captured_at = now;
  obj.validity = s.validity;
  obj.reliability = s.reliability;
  for (SegmentId seg : s.covers) {
    bool reading = truth_.viable_at(seg, now);
    if (s.reliability < 1.0 && !noise_rng_.chance(s.reliability)) {
      reading = !reading;  // sensor error
    }
    obj.readings.emplace(seg, reading);
  }
  ++samples_;
  return obj;
}

}  // namespace dde::world
