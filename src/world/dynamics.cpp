#include "world/dynamics.h"

#include <algorithm>
#include <stdexcept>

#include "common/contracts.h"

namespace dde::world {
namespace {

/// Holding time in a state, exponential with mean chosen so the chain's
/// stationary distribution matches p_viable while the average holding time
/// stays mean_holding: viable states last 2*p*H, blocked states 2*(1-p)*H.
SimTime holding_time(const SegmentDynamics& p, bool viable, Rng& rng) {
  const double share = viable ? p.p_viable : (1.0 - p.p_viable);
  const double mean = std::max(1.0, 2.0 * share * p.mean_holding.to_seconds());
  return SimTime::seconds(rng.exponential(mean));
}

}  // namespace

ViabilityProcess::ViabilityProcess(std::vector<SegmentDynamics> params, Rng rng) {
  tracks_.reserve(params.size());
  for (auto& p : params) {
    Track t;
    t.params = p;
    t.rng = rng.fork();
    t.initial_state = t.rng.chance(p.p_viable);
    tracks_.push_back(std::move(t));
  }
}

ViabilityProcess::Track& ViabilityProcess::track(SegmentId segment) {
  if (!segment.valid() || segment.value() >= tracks_.size()) {
    throw std::out_of_range("ViabilityProcess: unknown segment id");
  }
  return tracks_[segment.value()];
}

const SegmentDynamics& ViabilityProcess::params(SegmentId segment) const {
  if (!segment.valid() || segment.value() >= tracks_.size()) {
    throw std::out_of_range("ViabilityProcess: unknown segment id");
  }
  return tracks_[segment.value()].params;
}

void ViabilityProcess::extend(Track& t, SimTime until) {
  SimTime last = t.flips.empty() ? SimTime::zero() : t.flips.back();
  while (last <= until) {
    const bool state_now = t.initial_state == (t.flips.size() % 2 == 0);
    last += holding_time(t.params, state_now, t.rng);
    t.flips.push_back(last);
  }
}

bool ViabilityProcess::viable_at(SegmentId segment, SimTime at) {
  // Negative times sit before every flip: clamp to the initial state rather
  // than reading an inconsistent prefix of the flip history.
  DDE_CLAMP_OR(at >= SimTime::zero(), at = SimTime::zero(),
               "viable_at: negative time; clamped to t=0");
  Track& t = track(segment);
  if (at >= t.blocked_after) return false;  // disruption dominates
  extend(t, at);
  // Number of flips at or before `at`.
  const auto flipped = static_cast<std::size_t>(
      std::upper_bound(t.flips.begin(), t.flips.end(), at) - t.flips.begin());
  return t.initial_state == (flipped % 2 == 0);
}

void ViabilityProcess::block_after(SegmentId segment, SimTime at) {
  Track& t = track(segment);
  t.blocked_after = std::min(t.blocked_after, at);
}

bool ViabilityProcess::disrupted_at(SegmentId segment, SimTime at) const {
  if (!segment.valid() || segment.value() >= tracks_.size()) {
    throw std::out_of_range("ViabilityProcess: unknown segment id");
  }
  return at >= tracks_[segment.value()].blocked_after;
}

SimTime ViabilityProcess::next_change_after(SegmentId segment, SimTime at) {
  Track& t = track(segment);
  extend(t, at);
  auto it = std::upper_bound(t.flips.begin(), t.flips.end(), at);
  DDE_CHECK(it != t.flips.end(),
            "next_change_after: extend() must leave a flip beyond `at`");
  return *it;
}

}  // namespace dde::world
