// Evidence (data) objects and sensors.
//
// A sensor, once sampled, produces an evidence object: a snapshot of the
// viability of the segments in its field of view, taken at a specific time,
// with a validity interval after which it is stale (Sec. II-B, IV).
// Object payloads (the "pictures") are represented by their size only; the
// resource-management layer never looks inside them.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/ids.h"
#include "common/sim_time.h"
#include "naming/name.h"

namespace dde::world {

/// Object dynamics category (the Fig. 2 sweep variable).
enum class ChangeRate : std::uint8_t {
  kSlow = 0,  ///< long validity interval
  kFast = 1,  ///< short validity interval
};

/// Static description of a deployed sensor (e.g. a roadside camera).
struct SensorInfo {
  SourceId id;
  naming::Name name;            ///< hierarchical semantic name
  double x = 0.0;               ///< position on the grid
  double y = 0.0;
  std::vector<SegmentId> covers;  ///< segments in the field of view
  std::uint64_t object_bytes = 0;  ///< size of each produced evidence object
  SimTime validity;             ///< freshness interval of produced objects
  ChangeRate rate = ChangeRate::kSlow;
  /// Probability each per-segment reading is correct (1.0 = noiseless).
  double reliability = 1.0;
};

/// One captured evidence object: a snapshot of covered-segment viability.
struct EvidenceObject {
  ObjectId id;
  SourceId source;
  naming::Name name;        ///< sensor name extended with a capture index
  std::uint64_t bytes = 0;
  SimTime captured_at;      ///< sample time
  SimTime validity;         ///< fresh while now < captured_at + validity
  double reliability = 1.0; ///< per-reading correctness probability

  /// Ground-truth viability of each covered segment at captured_at.
  /// An annotator reads these to produce labels.
  std::unordered_map<SegmentId, bool> readings;

  [[nodiscard]] SimTime expires_at() const noexcept {
    return captured_at + validity;
  }
  [[nodiscard]] bool fresh_at(SimTime t) const noexcept {
    return t < expires_at();
  }
};

}  // namespace dde::world
