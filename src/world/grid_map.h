// Manhattan-grid road network (the Sec. VII scenario world).
//
// Intersections form a (width+1) × (height+1) lattice; road segments are
// the lattice edges. Routes are monotone "staircase" paths between two
// intersections, matching the paper's randomly-selected candidate routes.
#pragma once

#include <cstddef>
#include <optional>
#include <vector>

#include "common/ids.h"
#include "common/rng.h"

namespace dde::world {

/// An intersection coordinate on the lattice.
struct Intersection {
  int x = 0;
  int y = 0;
  friend bool operator==(const Intersection&, const Intersection&) = default;
};

/// A road segment: an edge between two adjacent intersections.
struct Segment {
  SegmentId id;
  Intersection a;
  Intersection b;
  bool horizontal = false;

  /// Midpoint, used for sensor coverage geometry.
  [[nodiscard]] double mid_x() const noexcept { return (a.x + b.x) / 2.0; }
  [[nodiscard]] double mid_y() const noexcept { return (a.y + b.y) / 2.0; }
};

/// A candidate route: an ordered list of segments joining two intersections.
struct Route {
  Intersection origin;
  Intersection destination;
  std::vector<SegmentId> segments;
};

/// The grid map: geometry only, no dynamics.
class GridMap {
 public:
  /// Build a grid with `width` × `height` cells (so (width+1)*(height+1)
  /// intersections). Preconditions: width >= 1, height >= 1.
  GridMap(int width, int height);

  [[nodiscard]] int width() const noexcept { return width_; }
  [[nodiscard]] int height() const noexcept { return height_; }
  [[nodiscard]] std::size_t segment_count() const noexcept { return segments_.size(); }
  [[nodiscard]] const std::vector<Segment>& segments() const noexcept {
    return segments_;
  }
  [[nodiscard]] const Segment& segment(SegmentId id) const;

  /// The segment joining two adjacent intersections, if any.
  [[nodiscard]] std::optional<SegmentId> segment_between(Intersection a,
                                                         Intersection b) const;

  /// Segments whose midpoint lies within Chebyshev distance `radius` of
  /// (x, y) — a sensor's coverage footprint.
  [[nodiscard]] std::vector<SegmentId> segments_near(double x, double y,
                                                     double radius) const;

  /// A uniformly random intersection.
  [[nodiscard]] Intersection random_intersection(Rng& rng) const;

  /// A random monotone (staircase) route from `from` to `to`. If the two
  /// coincide, the route is empty. Each step moves one cell toward the
  /// destination in x or y, chosen at random among the remaining moves.
  [[nodiscard]] Route random_monotone_route(Intersection from, Intersection to,
                                            Rng& rng) const;

  /// `k` distinct random candidate routes between two random intersections
  /// at L1 distance >= `min_distance`. May return fewer than `k` routes if
  /// the pair admits fewer distinct monotone paths (e.g. a straight line).
  [[nodiscard]] std::vector<Route> random_route_choices(std::size_t k,
                                                        int min_distance,
                                                        Rng& rng) const;

 private:
  [[nodiscard]] bool in_range(Intersection p) const noexcept {
    return p.x >= 0 && p.x <= width_ && p.y >= 0 && p.y <= height_;
  }

  int width_;
  int height_;
  std::vector<Segment> segments_;
  // horizontal_index_[y][x] = id of segment (x,y)-(x+1,y)
  std::vector<std::vector<SegmentId>> horizontal_index_;
  // vertical_index_[y][x] = id of segment (x,y)-(x,y+1)
  std::vector<std::vector<SegmentId>> vertical_index_;
};

}  // namespace dde::world
