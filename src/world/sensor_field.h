// The deployed sensor field: sensor placement and on-demand sampling.
#pragma once

#include <cstddef>
#include <optional>
#include <vector>

#include "common/ids.h"
#include "common/rng.h"
#include "common/sim_time.h"
#include "world/dynamics.h"
#include "world/evidence.h"
#include "world/grid_map.h"

namespace dde::world {

/// Parameters for deploying a random sensor field over a grid.
struct SensorFieldConfig {
  std::size_t sensor_count = 30;
  double coverage_radius = 0.75;     ///< Chebyshev radius of the field of view
  std::uint64_t min_object_bytes = 100 * 1024;   ///< 100 KB (paper Sec. VII)
  std::uint64_t max_object_bytes = 1024 * 1024;  ///< ~1 MB
  double fast_ratio = 0.4;           ///< fraction of fast-changing sensors
  SimTime slow_validity = SimTime::seconds(300);
  SimTime fast_validity = SimTime::seconds(25);
  /// Per-reading correctness probability of every sensor (Sec. IV-B noisy
  /// data model); 1.0 = noiseless.
  double reliability = 1.0;
};

/// The set of deployed sensors plus the ground-truth process they observe.
///
/// sample() captures a fresh evidence object from a sensor: a snapshot of
/// the current viability of every segment in its field of view.
class SensorField {
 public:
  /// Deploy `config.sensor_count` sensors at random grid positions.
  /// Every sensor covers at least one segment (placement is rejected
  /// otherwise); collectively covering all segments is not guaranteed —
  /// scenario builders should check coverage() if they need it.
  SensorField(const GridMap& map, ViabilityProcess& truth,
              const SensorFieldConfig& config, Rng& rng);

  /// Deploy an explicit list of sensors (ids must be dense from 0).
  /// Used for hand-crafted scenarios and tests.
  SensorField(const GridMap& map, ViabilityProcess& truth,
              std::vector<SensorInfo> sensors);

  [[nodiscard]] const std::vector<SensorInfo>& sensors() const noexcept {
    return sensors_;
  }
  [[nodiscard]] const SensorInfo& sensor(SourceId id) const;

  /// Sensors whose field of view includes `segment`.
  [[nodiscard]] std::vector<SourceId> sensors_covering(SegmentId segment) const;

  /// Segments covered by at least one sensor.
  [[nodiscard]] std::vector<SegmentId> covered_segments() const;

  /// Capture a fresh evidence object from `sensor` at time `now`. If the
  /// sensor's reliability is below 1, each reading is independently flipped
  /// with probability (1 − reliability).
  [[nodiscard]] EvidenceObject sample(SourceId sensor, SimTime now);

  /// Number of samples taken so far (across all sensors).
  [[nodiscard]] std::uint64_t total_samples() const noexcept { return samples_; }

 private:
  const GridMap& map_;
  ViabilityProcess& truth_;
  std::vector<SensorInfo> sensors_;
  Rng noise_rng_{0xD0D0CAFEULL};
  std::uint64_t samples_ = 0;
};

}  // namespace dde::world
