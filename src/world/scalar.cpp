#include "world/scalar.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "common/contracts.h"

namespace dde::world {

ScalarProcess::ScalarProcess(std::vector<ScalarDynamics> params, Rng rng,
                             SimTime step)
    : step_(step) {
  DDE_CHECK(step.count() > 0,
            "ScalarProcess: step must be positive (zero would divide by "
            "zero in value_at)");
  tracks_.reserve(params.size());
  for (const auto& p : params) {
    Track t;
    t.params = p;
    t.values.push_back(p.initial);
    t.rng = rng.fork();
    tracks_.push_back(std::move(t));
  }
}

const ScalarDynamics& ScalarProcess::params(std::size_t site) const {
  if (site >= tracks_.size()) {
    throw std::out_of_range("ScalarProcess: unknown site");
  }
  return tracks_[site].params;
}

void ScalarProcess::extend(Track& t, std::size_t steps) {
  const double dt = step_.to_seconds();
  const double sdt = std::sqrt(dt);
  while (t.values.size() <= steps) {
    const double v = t.values.back();
    const double drift = t.params.reversion * (t.params.mean - v) * dt;
    const double next = v + drift + t.params.sigma * sdt * t.rng.normal();
    t.values.push_back(next);
  }
}

double ScalarProcess::value_at(std::size_t site, SimTime at) {
  // A negative time would cast to a huge step index and extend() the track
  // until allocation failure; the initial value is the sane reading.
  DDE_CLAMP_OR(at >= SimTime::zero(), at = SimTime::zero(),
               "ScalarProcess::value_at: negative time; clamped to t=0");
  if (site >= tracks_.size()) {
    throw std::out_of_range("ScalarProcess: unknown site");
  }
  Track& t = tracks_[site];
  const auto k = static_cast<std::size_t>(at.count() / step_.count());
  extend(t, k);
  return t.values[k];
}

SimTime estimate_validity(ScalarProcess& process, std::size_t site,
                          SimTime now, const ThresholdPredicate& predicate,
                          double confidence, int paths, Rng rng,
                          SimTime max_horizon) {
  DDE_CHECK(confidence > 0.0 && confidence <= 1.0,
            "estimate_validity: confidence must be in (0, 1]");
  DDE_CHECK(paths > 0, "estimate_validity: need at least one rollout path");
  const ScalarDynamics& p = process.params(site);
  const double start = process.value_at(site, now);
  const double dt = 1.0;  // 1 s rollout resolution
  const auto max_steps =
      static_cast<std::size_t>(max_horizon.to_seconds() / dt);

  // crossings[k] = number of paths that have crossed by step k.
  std::vector<int> crossings(max_steps + 1, 0);
  for (int path = 0; path < paths; ++path) {
    double v = start;
    for (std::size_t k = 1; k <= max_steps; ++k) {
      v += p.reversion * (p.mean - v) * dt +
           p.sigma * std::sqrt(dt) * rng.normal();
      if (predicate.evaluate(v) != predicate.evaluate(start)) {
        for (std::size_t j = k; j <= max_steps; ++j) ++crossings[j];
        break;
      }
    }
  }
  const int budget =
      static_cast<int>((1.0 - confidence) * static_cast<double>(paths));
  std::size_t horizon = max_steps;
  for (std::size_t k = 1; k <= max_steps; ++k) {
    if (crossings[k] > budget) {
      horizon = k - 1;
      break;
    }
  }
  return SimTime::seconds(static_cast<double>(horizon) * dt);
}

}  // namespace dde::world
