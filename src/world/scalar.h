// Continuous physical variables and threshold predicates (Sec. II-B).
//
// "Continuous variables can be supported as long as actions are predicated
// on some thresholds defined on these variables" — e.g. the decision to
// turn the lights on in a smart room is predicated on an optical sensor
// measurement dropping below a threshold (the `Dim` label).
//
// Each site carries a mean-reverting (Ornstein–Uhlenbeck) process, lazily
// sampled and memoized like the viability process, so queries at any past
// time are consistent. Threshold predicates turn readings into Boolean
// labels, and — per Sec. VIII, where the system "can derive its own models
// of physical phenomena … [to] inform settings of validity intervals" —
// a Monte-Carlo estimator suggests how long such a label stays valid.
#pragma once

#include <cstddef>
#include <vector>

#include "common/ids.h"
#include "common/rng.h"
#include "common/sim_time.h"

namespace dde::world {

/// Ornstein–Uhlenbeck parameters of one site's variable.
struct ScalarDynamics {
  double mean = 0.0;        ///< long-run level μ
  double reversion = 0.1;   ///< pull strength θ (1/s)
  double sigma = 1.0;       ///< volatility σ (per √s)
  double initial = 0.0;     ///< value at t = 0
};

/// Lazily-sampled trajectories of scalar variables, one per site.
class ScalarProcess {
 public:
  /// `step` is the discretization interval of the Euler–Maruyama scheme.
  ScalarProcess(std::vector<ScalarDynamics> params, Rng rng,
                SimTime step = SimTime::seconds(1));

  [[nodiscard]] std::size_t site_count() const noexcept { return tracks_.size(); }
  [[nodiscard]] const ScalarDynamics& params(std::size_t site) const;

  /// Value at time t (t >= 0); repeated queries are consistent.
  [[nodiscard]] double value_at(std::size_t site, SimTime t);

 private:
  struct Track {
    ScalarDynamics params;
    std::vector<double> values;  ///< values[k] = value at k*step
    Rng rng;
  };
  void extend(Track& track, std::size_t steps);

  std::vector<Track> tracks_;
  SimTime step_;
};

/// A Boolean predicate over a continuous reading.
struct ThresholdPredicate {
  double threshold = 0.0;
  bool above = true;  ///< true: label = (value >= threshold)

  [[nodiscard]] bool evaluate(double value) const noexcept {
    return above ? value >= threshold : value < threshold;
  }
};

/// Suggest a validity interval for a threshold label evaluated at `now`:
/// the largest horizon such that, across `paths` Monte-Carlo rollouts of
/// the site's own dynamics, at least `confidence` of them have not crossed
/// the predicate boundary. Rollouts use the process parameters, not its
/// memoized trajectory, so the estimate never peeks at the future.
/// Capped at `max_horizon`.
[[nodiscard]] SimTime estimate_validity(ScalarProcess& process,
                                        std::size_t site, SimTime now,
                                        const ThresholdPredicate& predicate,
                                        double confidence, int paths, Rng rng,
                                        SimTime max_horizon = SimTime::seconds(3600));

}  // namespace dde::world
