// Ground-truth physical dynamics: per-segment viability as a two-state
// continuous-time Markov process.
//
// This is the "physical model" the paper's optimization consumes: each
// segment alternates between viable and blocked with exponential holding
// times. The stationary viability probability feeds the short-circuit
// ordering (success probability p), and the holding-time scale determines
// how long a sensor observation stays meaningful (validity interval).
#pragma once

#include <cstddef>
#include <vector>

#include "common/ids.h"
#include "common/rng.h"
#include "common/sim_time.h"

namespace dde::world {

/// Dynamics parameters for one segment.
struct SegmentDynamics {
  /// Stationary probability the segment is viable.
  double p_viable = 0.7;
  /// Mean time between state changes (average holding time).
  SimTime mean_holding = SimTime::seconds(600);
};

/// Lazily-sampled trajectories of segment viability.
///
/// Trajectories are generated on demand and memoized, so querying the state
/// at any past time is consistent: viable_at(s, t) always returns the same
/// answer for the same (s, t).
class ViabilityProcess {
 public:
  /// One process per segment; `params[i]` governs segment with id i.
  ViabilityProcess(std::vector<SegmentDynamics> params, Rng rng);

  [[nodiscard]] std::size_t segment_count() const noexcept { return tracks_.size(); }

  /// Ground-truth viability of `segment` at time `t` (t >= 0).
  [[nodiscard]] bool viable_at(SegmentId segment, SimTime t);

  /// The parameters for `segment`.
  [[nodiscard]] const SegmentDynamics& params(SegmentId segment) const;

  /// Time of the first state change strictly after `t` for `segment`.
  /// (Considers the natural Markov process only, not disruptions.)
  [[nodiscard]] SimTime next_change_after(SegmentId segment, SimTime t);

  /// External disruption (Sec. II-A: "a large earthquake … may invalidate
  /// such past observations"): from `at` onward the segment is forcibly
  /// blocked, regardless of its natural process. Irreversible.
  void block_after(SegmentId segment, SimTime at);

  /// Whether `segment` is under a disruption at time `t`.
  [[nodiscard]] bool disrupted_at(SegmentId segment, SimTime t) const;

 private:
  struct Track {
    SegmentDynamics params;
    bool initial_state = true;
    // flip_times_[k] = time of the (k+1)-th state change; strictly increasing.
    std::vector<SimTime> flips;
    Rng rng;
    /// Forced-blocked from this time on (max() = no disruption).
    SimTime blocked_after = SimTime::max();
  };

  /// Extend the memoized trajectory of `track` to cover time `t`.
  void extend(Track& track, SimTime t);

  [[nodiscard]] Track& track(SegmentId segment);

  std::vector<Track> tracks_;
};

}  // namespace dde::world
