#include "world/mobility.h"

#include <algorithm>
#include <cmath>

#include "common/contracts.h"

namespace dde::world {

GridMobility::GridMobility(const GridMap& map, std::size_t traveler_count,
                           double speed, Rng& rng)
    : map_(map), speed_(speed) {
  DDE_CHECK(speed > 0.0, "GridMobility: speed must be > 0");
  hop_duration_ = SimTime::seconds(1.0 / speed);
  DDE_CHECK(hop_duration_ > SimTime::zero(),
            "GridMobility: speed too large (hop time rounds to zero)");
  tracks_.reserve(traveler_count);
  for (std::size_t v = 0; v < traveler_count; ++v) {
    Track track{rng.fork(), {}, {}};
    track.waypoints.push_back(map_.random_intersection(track.rng));
    track.hop_times.push_back(SimTime::zero());
    tracks_.push_back(std::move(track));
  }
}

void GridMobility::extend(Track& track, SimTime t) {
  while (track.hop_times.back() < t) {
    const Intersection cur = track.waypoints.back();
    const Intersection prev = track.waypoints.size() >= 2
                                  ? track.waypoints[track.waypoints.size() - 2]
                                  : cur;
    // Adjacent lattice intersections in a fixed order (+x, -x, +y, -y);
    // avoid an immediate U-turn unless the traveler is at a dead end.
    std::vector<Intersection> candidates;
    for (const Intersection next :
         {Intersection{cur.x + 1, cur.y}, Intersection{cur.x - 1, cur.y},
          Intersection{cur.x, cur.y + 1}, Intersection{cur.x, cur.y - 1}}) {
      if (next.x < 0 || next.x > map_.width()) continue;
      if (next.y < 0 || next.y > map_.height()) continue;
      if (next == prev && track.waypoints.size() >= 2) continue;
      candidates.push_back(next);
    }
    if (candidates.empty()) candidates.push_back(prev);
    const Intersection chosen =
        candidates[track.rng.below(candidates.size())];
    track.waypoints.push_back(chosen);
    track.hop_times.push_back(track.hop_times.back() + hop_duration_);
  }
}

Position GridMobility::position_at(std::size_t traveler, SimTime t) {
  DDE_CHECK(traveler < tracks_.size(), "GridMobility: traveler out of range");
  DDE_CHECK(t >= SimTime::zero(), "GridMobility: negative time");
  Track& track = tracks_[traveler];
  extend(track, t);
  // First hop time strictly after t; its predecessor starts the current leg.
  const auto it =
      std::upper_bound(track.hop_times.begin(), track.hop_times.end(), t);
  const std::size_t k =
      static_cast<std::size_t>(it - track.hop_times.begin()) - 1;
  const Intersection from = track.waypoints[k];
  if (k + 1 >= track.waypoints.size()) {
    return Position{static_cast<double>(from.x), static_cast<double>(from.y)};
  }
  const Intersection to = track.waypoints[k + 1];
  const double frac = static_cast<double>((t - track.hop_times[k]).count()) /
                      static_cast<double>(hop_duration_.count());
  return Position{from.x + (to.x - from.x) * frac,
                  from.y + (to.y - from.y) * frac};
}

GridCell GridMobility::cell_at(std::size_t traveler, SimTime t) {
  const Position p = position_at(traveler, t);
  const auto clamp_cell = [](double coord, int count) {
    int c = static_cast<int>(std::floor(coord));
    if (c < 0) c = 0;
    if (c >= count) c = count - 1;
    return c;
  };
  return GridCell{clamp_cell(p.x, map_.width()), clamp_cell(p.y, map_.height())};
}

}  // namespace dde::world
