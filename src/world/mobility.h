// GPS-like vehicle mobility on the Manhattan grid: waypoint walks over the
// intersection lattice at constant speed.
//
// Each traveler drives from intersection to intersection; at every
// intersection it draws the next waypoint (a random adjacent intersection,
// never an immediate U-turn unless at a dead end) from its own forked RNG
// stream. Trajectories are generated lazily and memoized — like
// world::ViabilityProcess — so position_at(v, t) always returns the same
// answer for the same (v, t) regardless of query order, keeping runs
// bit-for-bit deterministic under any event interleaving.
#pragma once

#include <cstddef>
#include <vector>

#include "common/rng.h"
#include "common/sim_time.h"
#include "world/grid_map.h"

namespace dde::world {

/// A continuous position on the grid (in grid units; intersections sit at
/// integer coordinates).
struct Position {
  double x = 0.0;
  double y = 0.0;
};

/// A grid cell index, i.e. which unit square of the map a position falls
/// in: 0 <= x < width, 0 <= y < height (positions on the far border clamp
/// to the last cell).
struct GridCell {
  int x = 0;
  int y = 0;
  friend bool operator==(const GridCell&, const GridCell&) = default;
};

/// Lazily-sampled constant-speed waypoint trajectories for a fleet of
/// travelers.
class GridMobility {
 public:
  /// `traveler_count` travelers on `map`, all moving at `speed` grid units
  /// per second. Start intersections and every subsequent waypoint are
  /// drawn from per-traveler streams forked off `rng` at construction.
  /// Preconditions: speed > 0. The map must outlive the mobility model.
  GridMobility(const GridMap& map, std::size_t traveler_count, double speed,
               Rng& rng);

  [[nodiscard]] std::size_t traveler_count() const noexcept {
    return tracks_.size();
  }
  [[nodiscard]] double speed() const noexcept { return speed_; }

  /// Ground-truth position of `traveler` at time `t` (t >= 0), linearly
  /// interpolated between its waypoints.
  [[nodiscard]] Position position_at(std::size_t traveler, SimTime t);

  /// The grid cell containing position_at(traveler, t).
  [[nodiscard]] GridCell cell_at(std::size_t traveler, SimTime t);

 private:
  struct Track {
    Rng rng;
    /// waypoints[k] reached at hop_times[k]; both strictly growing, one
    /// lattice edge apart. waypoints[0] at t = 0.
    std::vector<Intersection> waypoints;
    std::vector<SimTime> hop_times;
  };

  /// Extend the memoized waypoint list of `track` to cover time `t`.
  void extend(Track& track, SimTime t);

  const GridMap& map_;
  double speed_;
  SimTime hop_duration_;  ///< time to traverse one lattice edge
  std::vector<Track> tracks_;
};

}  // namespace dde::world
