#include "net/network.h"

#include "common/contracts.h"

namespace dde::net {

Network::Network(des::Simulator& sim, const Topology& topo)
    : sim_(sim), topo_(topo) {
  handlers_.resize(topo.node_count());
  link_state_.resize(topo.link_count());
  link_admin_up_.assign(topo.link_count(), 1);
  node_up_.assign(topo.node_count(), 1);
}

void Network::set_handler(NodeId node, Handler handler) {
  DDE_CHECK(node.valid() && node.value() < handlers_.size(),
            "set_handler: unknown node");
  handlers_[node.value()] = std::move(handler);
}

bool Network::send(NodeId from, NodeId next, Packet packet) {
  const auto link_id = topo_.link_between(from, next);
  if (!link_id) return false;
  if (!node_up_[from.value()] || !link_admin_up_[link_id->value()]) {
    return false;  // a crashed node or severed link accepts nothing
  }
  LinkState& state = link_state_[link_id->value()];

  if (!packet.id.valid()) packet.id = MessageId{next_message_++};
  state.bytes += packet.bytes;
  state.packets += 1;
  stats_.packets += 1;
  stats_.bytes += packet.bytes;

  if (tracer_) {
    tracer_(TraceEvent{TraceEvent::Kind::kSend, sim_.now(), from, next,
                       packet.id, packet.bytes, &packet.payload});
  }
  if (trace_sink_) {
    trace_sink_->emit(obs::Event{obs::EventKind::kHopSend, sim_.now(),
                                 from.value(), 0, next.value(), packet.bytes,
                                 0.0});
  }

  state.queued_bytes += packet.bytes;
  const int priority = packet.priority;
  state.queue.push(priority, std::move(packet));
  if (!state.busy) start_transmission(*link_id);
  enforce_queue_limits(state);
  return true;
}

void Network::enforce_queue_limits(LinkState& state) {
  if (!limits_.bounded()) return;
  while (!state.queue.empty() &&
         ((limits_.max_packets != 0 &&
           state.queue.size() > limits_.max_packets) ||
          (limits_.max_bytes != 0 &&
           state.queued_bytes > limits_.max_bytes))) {
    // Victim: lowest priority, newest within that class — the queue's back
    // element, exactly the old map's prev(end()). The transmitting packet
    // left the queue at start_transmission and is never touched.
    const Packet victim = state.queue.pop_back();
    state.queued_bytes -= victim.bytes;
    // The packet never crossed the link: refund its bytes, keep the send
    // attempt counted, and record the eviction.
    state.bytes -= victim.bytes;
    stats_.bytes -= victim.bytes;
    ++state.queue_drops;
    ++stats_.queue_drops;
    ++stats_.dropped;
  }
}

void Network::set_link_up(LinkId link, bool up) {
  DDE_CHECK(link.valid() && link.value() < link_admin_up_.size(),
            "set_link_up: unknown link");
  if ((link_admin_up_[link.value()] != 0) == up) return;
  link_admin_up_[link.value()] = up ? 1 : 0;
  LinkState& state = link_state_[link.value()];
  if (!up) {
    // Sever: waiting packets are lost, and the transmission in progress
    // (if any) is voided by the epoch bump — its completion callback will
    // count it. Bytes were charged at send() and stay charged.
    stats_.dropped += state.queue.size();
    stats_.link_down_drops += state.queue.size();
    state.queue.clear();
    state.queued_bytes = 0;
    ++state.epoch;
  } else if (!state.busy) {
    start_transmission(link);  // resume service (queue is normally empty)
  }
}

void Network::start_transmission(LinkId link_id) {
  const Link& link = topo_.link(link_id);
  LinkState& state = link_state_[link_id.value()];
  if (state.busy || state.queue.empty()) return;
  if (!link_admin_up_[link_id.value()]) return;

  Packet pkt = state.queue.pop_front();  // highest priority, FIFO in class
  state.queued_bytes -= pkt.bytes;
  state.busy = true;

  const SimTime tx = link.transmission_time(pkt.bytes);
  const NodeId from = link.from;
  const NodeId next = link.to;
  // Transmission completes after tx; the packet arrives after the extra
  // propagation latency while the link already serves its next packet.
  sim_.schedule_after(tx, [this, link_id, from, next,
                           latency = link.latency, epoch = state.epoch,
                           pkt = std::move(pkt)]() mutable {
    LinkState& st = link_state_[link_id.value()];
    st.busy = false;
    start_transmission(link_id);
    // The link went down while this packet was on the wire: severed
    // mid-transfer, never arrives.
    if (st.epoch != epoch) {
      ++stats_.dropped;
      ++stats_.link_down_drops;
      return;
    }
    // Correlated loss (fault subsystem), then independent injected loss:
    // either way the packet consumed its link time but never arrives.
    if (loss_model_ && loss_model_(link_id)) {
      ++stats_.dropped;
      return;
    }
    if (loss_rate_ > 0.0 && loss_rng_.chance(loss_rate_)) {
      ++stats_.dropped;
      return;
    }
    sim_.schedule_after(latency, [this, from, next,
                                  p = std::move(pkt)]() {
      // A crashed receiver hears nothing.
      if (!node_up_[next.value()]) {
        ++stats_.dropped;
        ++stats_.link_down_drops;
        return;
      }
      if (tracer_) {
        tracer_(TraceEvent{TraceEvent::Kind::kDeliver, sim_.now(), from, next,
                           p.id, p.bytes, &p.payload});
      }
      if (trace_sink_) {
        trace_sink_->emit(obs::Event{obs::EventKind::kHopDeliver, sim_.now(),
                                     from.value(), 0, next.value(), p.bytes,
                                     0.0});
      }
      Handler& h = handlers_[next.value()];
      if (h) h(next, p);
    });
  });
}

}  // namespace dde::net
