#include "net/network.h"

#include <cassert>

namespace dde::net {

Network::Network(des::Simulator& sim, const Topology& topo)
    : sim_(sim), topo_(topo) {
  handlers_.resize(topo.node_count());
  link_state_.resize(topo.link_count());
}

void Network::set_handler(NodeId node, Handler handler) {
  assert(node.valid() && node.value() < handlers_.size());
  handlers_[node.value()] = std::move(handler);
}

bool Network::send(NodeId from, NodeId next, Packet packet) {
  const auto link_id = topo_.link_between(from, next);
  if (!link_id) return false;
  LinkState& state = link_state_[link_id->value()];

  if (!packet.id.valid()) packet.id = MessageId{next_message_++};
  state.bytes += packet.bytes;
  state.packets += 1;
  stats_.packets += 1;
  stats_.bytes += packet.bytes;

  if (tracer_) {
    tracer_(TraceEvent{TraceEvent::Kind::kSend, sim_.now(), from, next,
                       packet.id, packet.bytes, &packet.payload});
  }

  state.queue.emplace(std::make_pair(-packet.priority, state.next_seq++),
                      std::move(packet));
  ++state.queue_size;
  if (!state.busy) start_transmission(*link_id);
  return true;
}

void Network::start_transmission(LinkId link_id) {
  const Link& link = topo_.link(link_id);
  LinkState& state = link_state_[link_id.value()];
  if (state.busy || state.queue.empty()) return;

  auto it = state.queue.begin();  // highest priority, FIFO within class
  Packet pkt = std::move(it->second);
  state.queue.erase(it);
  --state.queue_size;
  state.busy = true;

  const SimTime tx = link.transmission_time(pkt.bytes);
  const NodeId from = link.from;
  const NodeId next = link.to;
  // Transmission completes after tx; the packet arrives after the extra
  // propagation latency while the link already serves its next packet.
  sim_.schedule_after(tx, [this, link_id, from, next,
                           latency = link.latency,
                           pkt = std::move(pkt)]() mutable {
    LinkState& st = link_state_[link_id.value()];
    st.busy = false;
    start_transmission(link_id);
    // Injected loss: the packet consumed its link time but never arrives.
    if (loss_rate_ > 0.0 && loss_rng_.chance(loss_rate_)) {
      ++stats_.dropped;
      return;
    }
    sim_.schedule_after(latency, [this, from, next,
                                  p = std::move(pkt)]() {
      if (tracer_) {
        tracer_(TraceEvent{TraceEvent::Kind::kDeliver, sim_.now(), from, next,
                           p.id, p.bytes, &p.payload});
      }
      Handler& h = handlers_[next.value()];
      if (h) h(next, p);
    });
  });
}

}  // namespace dde::net
