#include "net/name_routing.h"

#include <algorithm>
#include <map>

#include "common/contracts.h"

namespace dde::net {

std::vector<NameFib> build_fibs(const Topology& topo,
                                const std::vector<Advertisement>& ads) {
  std::vector<NameFib> fibs(topo.node_count());

  // Group advertisements by prefix (several hosts may serve one prefix).
  std::map<naming::Name, std::vector<NodeId>> hosts_by_prefix;
  for (const auto& ad : ads) {
    hosts_by_prefix[ad.prefix].push_back(ad.host);
  }

  for (auto& [prefix, hosts] : hosts_by_prefix) {
    std::sort(hosts.begin(), hosts.end());
    for (std::size_t n = 0; n < topo.node_count(); ++n) {
      const NodeId node{n};
      // Nearest advertising host (ties: lowest id — the sort order).
      std::optional<NodeId> best_host;
      std::size_t best_hops = 0;
      for (NodeId host : hosts) {
        const auto hops = topo.hop_distance(node, host);
        if (!hops) continue;
        if (!best_host || *hops < best_hops) {
          best_host = host;
          best_hops = *hops;
        }
      }
      if (!best_host) continue;
      if (*best_host == node) {
        fibs[n].add_route(prefix, node);  // local delivery
        continue;
      }
      const auto next = topo.next_hop(node, *best_host);
      if (next) fibs[n].add_route(prefix, *next);
    }
  }
  return fibs;
}

std::optional<std::vector<NodeId>> route_by_name(
    const std::vector<NameFib>& fibs, const Topology& topo, NodeId from,
    const naming::Name& name) {
  DDE_CHECK(from.valid() && from.value() < fibs.size(),
            "route_by_name: origin node has no FIB");
  std::vector<NodeId> path{from};
  NodeId cur = from;
  // A simple hop bound doubles as loop detection (paths cannot exceed the
  // node count in a correctly built FIB).
  for (std::size_t step = 0; step <= topo.node_count(); ++step) {
    const auto next = fibs[cur.value()].next_hop(name);
    if (!next) return std::nullopt;
    if (*next == cur) return path;  // local delivery: cur hosts the prefix
    if (!topo.link_between(cur, *next)) return std::nullopt;
    cur = *next;
    path.push_back(cur);
  }
  return std::nullopt;  // loop
}

}  // namespace dde::net
