#include "net/multipath.h"

#include <algorithm>

#include "common/contracts.h"

namespace dde::net {

std::vector<NodeId> downhill_neighbors(const Topology& topo, NodeId from,
                                       NodeId dest) {
  std::vector<NodeId> result;
  if (from == dest) return result;
  const auto here = topo.hop_distance(from, dest);
  if (!here) return result;
  std::vector<std::pair<std::size_t, NodeId>> ranked;
  for (NodeId nb : topo.neighbors(from)) {
    const auto there = topo.hop_distance(nb, dest);
    if (there && *there < *here) ranked.emplace_back(*there, nb);
  }
  std::sort(ranked.begin(), ranked.end(),
            [](const auto& a, const auto& b) {
              return a.first != b.first ? a.first < b.first
                                        : a.second.value() < b.second.value();
            });
  result.reserve(ranked.size());
  for (const auto& [hops, nb] : ranked) result.push_back(nb);
  return result;
}

std::vector<NodeId> alternate_next_hops(const Topology& topo, NodeId from,
                                        NodeId dest, std::size_t k,
                                        const std::vector<NodeId>& used) {
  std::vector<NodeId> result;
  if (k == 0) return result;
  for (NodeId nb : downhill_neighbors(topo, from, dest)) {
    if (std::find(used.begin(), used.end(), nb) != used.end()) continue;
    result.push_back(nb);
    if (result.size() >= k) break;
  }
  return result;
}

namespace {

/// Min-heap order on (expiry, key): std::make/push/pop_heap build max-heaps,
/// so feed them the reversed comparison.
bool heap_after(const std::pair<SimTime, std::uint64_t>& a,
                const std::pair<SimTime, std::uint64_t>& b) noexcept {
  return b < a;
}

}  // namespace

DedupTable::DedupTable(std::size_t capacity, SimTime ttl)
    : capacity_(capacity), ttl_(ttl), expiry_(capacity) {
  DDE_CHECK(capacity > 0, "DedupTable: capacity must be > 0");
  DDE_CHECK(ttl > SimTime::zero(), "DedupTable: ttl must be > 0");
  by_expiry_.reserve(capacity);
}

/// Drop the heap minimum — the entry with the earliest (expiry, key) — from
/// both structures.
void DedupTable::pop_earliest() {
  std::pop_heap(by_expiry_.begin(), by_expiry_.end(), heap_after);
  expiry_.erase(by_expiry_.back().second);
  by_expiry_.pop_back();
}

void DedupTable::purge(SimTime now) {
  while (!by_expiry_.empty() && by_expiry_.front().first <= now) {
    pop_earliest();
    ++stats_.expired;
  }
}

bool DedupTable::accept(std::uint64_t key, SimTime now) {
  purge(now);
  if (expiry_.find(key) != nullptr) {
    ++stats_.duplicates;
    return false;
  }
  if (expiry_.size() >= capacity_) {
    // Displace the entry closest to natural expiry (least useful to keep).
    pop_earliest();
    ++stats_.evicted;
  }
  const SimTime when = now + ttl_;
  expiry_.insert(key, when);
  by_expiry_.emplace_back(when, key);
  std::push_heap(by_expiry_.begin(), by_expiry_.end(), heap_after);
  ++stats_.accepted;
  return true;
}

}  // namespace dde::net
