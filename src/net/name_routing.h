// Name-based forwarding (Sec. V-A, "hierarchical semantic naming and
// indexing").
//
// In an NDN-like deployment, data — not machines — is the named entity:
// nodes advertise name prefixes they can serve, routers record how to
// forward interests toward each prefix, and interests are routed by
// longest-prefix match on the *data name*. Because similar objects share
// long prefixes, a FIB can also do approximate forwarding: when no exact
// prefix matches, route toward the most similar advertised prefix (the
// /…/camera1 → /…/camera2 substitution at the routing layer).
//
// We model the steady state of advertisement propagation: each node's next
// hop for a prefix is its shortest-path next hop toward the nearest
// advertising host. The Athena prototype uses the directory + host routing
// (as the paper's implementation does via its lookup service); this module
// provides the name-native alternative with its own tests and size/stretch
// analysis.
#pragma once

#include <optional>
#include <utility>
#include <vector>

#include "common/ids.h"
#include "naming/name.h"
#include "naming/prefix_index.h"
#include "net/topology.h"

namespace dde::net {

/// A name prefix available at a host node.
struct Advertisement {
  naming::Name prefix;
  NodeId host;
};

/// One node's forwarding information base.
class NameFib {
 public:
  /// Install/overwrite the next hop for `prefix`.
  void add_route(const naming::Name& prefix, NodeId next_hop) {
    table_.insert(prefix, next_hop);
  }

  /// Longest-prefix-match next hop for `name`.
  [[nodiscard]] std::optional<NodeId> next_hop(const naming::Name& name) const {
    const auto m = table_.longest_prefix(name);
    if (!m) return std::nullopt;
    return *m->value;
  }

  /// Approximate forwarding: when no prefix of `name` is routable, the
  /// most similar advertised prefix sharing at least `min_shared` leading
  /// components. Returns {matched prefix, next hop}.
  [[nodiscard]] std::optional<std::pair<naming::Name, NodeId>>
  approximate_next_hop(const naming::Name& name, std::size_t min_shared) const {
    if (auto exact = next_hop(name)) return std::make_pair(name, *exact);
    const auto near =
        table_.nearest(name, min_shared, /*exclude_exact=*/false);
    if (!near) return std::nullopt;
    return std::make_pair(near->first, *near->second);
  }

  /// Number of installed prefixes.
  [[nodiscard]] std::size_t size() const noexcept { return table_.size(); }

 private:
  naming::PrefixIndex<NodeId> table_;
};

/// Build every node's FIB from global advertisements: for each advertised
/// prefix, a node's next hop points along the shortest path toward the
/// nearest advertising host (ties broken by lower host id). Unreachable
/// hosts produce no route. Hosts route their own prefixes to themselves.
[[nodiscard]] std::vector<NameFib> build_fibs(
    const Topology& topo, const std::vector<Advertisement>& ads);

/// Follow FIB next hops from `from` for `name` until a node that hosts the
/// longest matched prefix is reached. Returns the node path (starting at
/// `from`) or nullopt if unroutable or a loop is detected.
[[nodiscard]] std::optional<std::vector<NodeId>> route_by_name(
    const std::vector<NameFib>& fibs, const Topology& topo, NodeId from,
    const naming::Name& name);

}  // namespace dde::net
