// Network topology: nodes and directed links with bandwidth and
// propagation latency, plus shortest-path routing tables.
//
// This substitutes for the paper's EMANE emulator topology: Athena nodes
// forward interests and data hop-by-hop along next-hop routes computed here.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "common/ids.h"
#include "common/sim_time.h"

namespace dde::net {

/// A directed link.
struct Link {
  LinkId id;
  NodeId from;
  NodeId to;
  double bandwidth_bps = 1e6;  ///< paper Sec. VII: 1 Mbps node-to-node
  SimTime latency = SimTime::millis(1);

  /// Serialization delay of `bytes` on this link.
  [[nodiscard]] SimTime transmission_time(std::uint64_t bytes) const noexcept {
    const double seconds = static_cast<double>(bytes) * 8.0 / bandwidth_bps;
    return SimTime::seconds(seconds);
  }
};

/// A static network graph with computed next-hop routes.
class Topology {
 public:
  /// Add a node; ids are dense starting at 0.
  NodeId add_node();

  /// Add a bidirectional link (two directed links) between `a` and `b`.
  /// Returns the two directed link ids (a→b, b→a).
  std::pair<LinkId, LinkId> add_link(NodeId a, NodeId b,
                                     double bandwidth_bps = 1e6,
                                     SimTime latency = SimTime::millis(1));

  [[nodiscard]] std::size_t node_count() const noexcept { return node_count_; }
  [[nodiscard]] std::size_t link_count() const noexcept { return links_.size(); }
  [[nodiscard]] const std::vector<Link>& links() const noexcept { return links_; }
  [[nodiscard]] const Link& link(LinkId id) const;

  /// Directed link from `a` to `b`, if adjacent.
  [[nodiscard]] std::optional<LinkId> link_between(NodeId a, NodeId b) const;

  /// Out-neighbors of `node`.
  [[nodiscard]] std::vector<NodeId> neighbors(NodeId node) const;

  /// (Re)compute all-pairs next-hop routes by Dijkstra over link delay
  /// (latency + per-byte time of a nominal 1 KB packet). Must be called
  /// after the topology is built and before next_hop() queries.
  void compute_routes();

  /// Route recomputation over a degraded graph: only links with
  /// `link_enabled[id] != 0` participate (the fault subsystem passes the
  /// current up/down state after each topology-change event). The vector
  /// must have one entry per directed link. Pairs separated by the
  /// disabled links simply become unreachable (next_hop → nullopt).
  void compute_routes(const std::vector<char>& link_enabled);

  /// Next hop from `from` toward `dest` (nullopt if unreachable or routes
  /// not computed). next_hop(x, x) == x.
  [[nodiscard]] std::optional<NodeId> next_hop(NodeId from, NodeId dest) const;

  /// Hop count from `from` to `dest` (nullopt if unreachable).
  [[nodiscard]] std::optional<std::size_t> hop_distance(NodeId from,
                                                        NodeId dest) const;

 private:
  std::size_t node_count_ = 0;
  std::vector<Link> links_;
  std::vector<std::vector<LinkId>> out_links_;  // per node
  // next_hop_[from * node_count_ + dest] (kInvalid if unreachable)
  std::vector<NodeId> next_hop_;
  std::vector<std::size_t> hops_;
  bool routes_valid_ = false;
};

}  // namespace dde::net
