// Flat per-link waiting queue: a hand-rolled binary min-heap over
// (priority rank, arrival seq) with packets parked in a slot pool.
//
// Replaces the old std::map<std::pair<int, seq>, Packet> — a red-black tree
// that paid a node allocation plus pointer-chasing comparisons on every
// send. The heap orders by exactly the same key the map did
// (rank = -priority ascending, then seq ascending), so pop_front() serves
// the identical packet sequence byte-for-byte: highest priority first, FIFO
// within a priority class.
//
// Eviction (bounded queues, overload protection) needs the *maximum* key —
// lowest-priority-newest. That is a linear scan here: eviction only runs on
// the overload path once a queue is past its cap, where the queue is small
// by definition (the cap), and the scan's victim (unique max key) is the
// same element the map's prev(end()) produced.
//
// Determinism: sift order is a pure function of the unique integer keys;
// no pointers, addresses, or hashes feed any comparison.
#pragma once

#include <cstdint>
#include <limits>
#include <utility>
#include <vector>

#include "common/contracts.h"

namespace dde::net {

/// Bounded-size double-ended priority queue storing T by slot.
/// Key order: (rank, seq) ascending; rank = -priority, seq = arrival order.
template <typename T>
class FlatPacketQueue {
 public:
  [[nodiscard]] bool empty() const noexcept { return heap_.empty(); }
  [[nodiscard]] std::size_t size() const noexcept { return heap_.size(); }

  /// Enqueue with the next arrival sequence (monotonic per queue).
  void push(int priority, T value) {
    const std::uint32_t slot = allocate(std::move(value));
    heap_.push_back(Item{-static_cast<std::int64_t>(priority), next_seq_++,
                         slot});
    sift_up(heap_.size() - 1);
  }

  /// The next element to serve: highest priority, FIFO within the class.
  [[nodiscard]] const T& front() const {
    DDE_CHECK(!heap_.empty(), "FlatPacketQueue: front of empty queue");
    return slots_[heap_.front().slot];
  }

  /// Remove and return the front element.
  T pop_front() {
    DDE_CHECK(!heap_.empty(), "FlatPacketQueue: pop from empty queue");
    const std::uint32_t slot = heap_.front().slot;
    remove_at(0);
    return release(slot);
  }

  /// Remove and return the *back* element — lowest priority, newest within
  /// that class (the bounded-queue eviction victim). O(size) scan.
  T pop_back() {
    DDE_CHECK(!heap_.empty(), "FlatPacketQueue: evict from empty queue");
    std::size_t worst = 0;
    for (std::size_t i = 1; i < heap_.size(); ++i) {
      if (item_less(heap_[worst], heap_[i])) worst = i;
    }
    const std::uint32_t slot = heap_[worst].slot;
    remove_at(worst);
    return release(slot);
  }

  void clear() {
    heap_.clear();
    slots_.clear();
    free_.clear();
  }

 private:
  struct Item {
    std::int64_t rank;   ///< -priority: ascending = highest priority first
    std::uint64_t seq;   ///< arrival order: ascending = FIFO within class
    std::uint32_t slot;
  };

  static bool item_less(const Item& a, const Item& b) noexcept {
    if (a.rank != b.rank) return a.rank < b.rank;
    return a.seq < b.seq;
  }

  std::uint32_t allocate(T value) {
    if (!free_.empty()) {
      const std::uint32_t slot = free_.back();
      free_.pop_back();
      slots_[slot] = std::move(value);
      return slot;
    }
    slots_.push_back(std::move(value));
    return static_cast<std::uint32_t>(slots_.size() - 1);
  }

  T release(std::uint32_t slot) {
    T value = std::move(slots_[slot]);
    free_.push_back(slot);
    return value;
  }

  void remove_at(std::size_t pos) {
    heap_[pos] = heap_.back();
    heap_.pop_back();
    if (pos < heap_.size()) {
      sift_down(pos);
      sift_up(pos);
    }
  }

  void sift_up(std::size_t pos) {
    while (pos > 0) {
      const std::size_t parent = (pos - 1) / 2;
      if (!item_less(heap_[pos], heap_[parent])) break;
      std::swap(heap_[pos], heap_[parent]);
      pos = parent;
    }
  }

  void sift_down(std::size_t pos) {
    for (;;) {
      const std::size_t left = 2 * pos + 1;
      if (left >= heap_.size()) break;
      std::size_t best = left;
      const std::size_t right = left + 1;
      if (right < heap_.size() && item_less(heap_[right], heap_[left])) {
        best = right;
      }
      if (!item_less(heap_[best], heap_[pos])) break;
      std::swap(heap_[pos], heap_[best]);
      pos = best;
    }
  }

  std::vector<Item> heap_;
  std::vector<T> slots_;
  std::vector<std::uint32_t> free_;
  std::uint64_t next_seq_ = 0;
};

}  // namespace dde::net
