#include "net/topology.h"

#include <algorithm>
#include <limits>
#include <queue>
#include <stdexcept>

#include "common/contracts.h"

namespace dde::net {

NodeId Topology::add_node() {
  routes_valid_ = false;
  out_links_.emplace_back();
  return NodeId{node_count_++};
}

std::pair<LinkId, LinkId> Topology::add_link(NodeId a, NodeId b,
                                             double bandwidth_bps,
                                             SimTime latency) {
  DDE_CHECK(a.valid() && a.value() < node_count_,
            "add_link: endpoint a is not a node of this topology");
  DDE_CHECK(b.valid() && b.value() < node_count_,
            "add_link: endpoint b is not a node of this topology");
  DDE_CHECK(a != b, "add_link: self-loops are not allowed");
  DDE_CHECK(bandwidth_bps > 0,
            "add_link: bandwidth must be positive (zero would make route "
            "weights infinite)");
  routes_valid_ = false;
  const LinkId ab{links_.size()};
  links_.push_back(Link{ab, a, b, bandwidth_bps, latency});
  out_links_[a.value()].push_back(ab);
  const LinkId ba{links_.size()};
  links_.push_back(Link{ba, b, a, bandwidth_bps, latency});
  out_links_[b.value()].push_back(ba);
  return {ab, ba};
}

const Link& Topology::link(LinkId id) const {
  if (!id.valid() || id.value() >= links_.size()) {
    throw std::out_of_range("Topology::link: unknown link id");
  }
  return links_[id.value()];
}

std::optional<LinkId> Topology::link_between(NodeId a, NodeId b) const {
  DDE_CHECK(a.valid() && a.value() < node_count_,
            "link_between: unknown node");
  for (LinkId id : out_links_[a.value()]) {
    if (links_[id.value()].to == b) return id;
  }
  return std::nullopt;
}

std::vector<NodeId> Topology::neighbors(NodeId node) const {
  DDE_CHECK(node.valid() && node.value() < node_count_,
            "neighbors: unknown node");
  std::vector<NodeId> out;
  out.reserve(out_links_[node.value()].size());
  for (LinkId id : out_links_[node.value()]) {
    out.push_back(links_[id.value()].to);
  }
  return out;
}

void Topology::compute_routes() {
  compute_routes(std::vector<char>());
}

void Topology::compute_routes(const std::vector<char>& link_enabled) {
  DDE_CHECK(link_enabled.empty() || link_enabled.size() == links_.size(),
            "compute_routes: link_enabled mask size mismatch");
  const std::size_t n = node_count_;
  next_hop_.assign(n * n, NodeId{});
  hops_.assign(n * n, std::numeric_limits<std::size_t>::max());
  // Dijkstra from every destination over reversed edges, so a single pass
  // yields next hops toward that destination from every node.
  for (std::size_t dest = 0; dest < n; ++dest) {
    std::vector<double> dist(n, std::numeric_limits<double>::infinity());
    std::vector<std::size_t> hops(n, std::numeric_limits<std::size_t>::max());
    std::vector<NodeId> next(n, NodeId{});
    using Item = std::pair<double, std::size_t>;
    std::priority_queue<Item, std::vector<Item>, std::greater<>> pq;
    dist[dest] = 0.0;
    hops[dest] = 0;
    next[dest] = NodeId{dest};
    pq.emplace(0.0, dest);
    while (!pq.empty()) {
      const auto [d, u] = pq.top();
      pq.pop();
      if (d > dist[u]) continue;
      // Relax incoming edges v→u: from v, going through u gets closer.
      for (const Link& l : links_) {
        if (l.to.value() != u) continue;
        if (!link_enabled.empty() && !link_enabled[l.id.value()]) continue;
        const std::size_t v = l.from.value();
        const double w =
            l.latency.to_seconds() + 1024.0 * 8.0 / l.bandwidth_bps;
        if (dist[u] + w < dist[v]) {
          dist[v] = dist[u] + w;
          hops[v] = hops[u] + 1;
          next[v] = NodeId{u};
          pq.emplace(dist[v], v);
        }
      }
    }
    for (std::size_t from = 0; from < n; ++from) {
      next_hop_[from * n + dest] = next[from];
      hops_[from * n + dest] = hops[from];
    }
  }
  routes_valid_ = true;
}

std::optional<NodeId> Topology::next_hop(NodeId from, NodeId dest) const {
  if (!routes_valid_) return std::nullopt;
  DDE_CHECK(from.valid() && from.value() < node_count_,
            "next_hop: unknown source node");
  DDE_CHECK(dest.valid() && dest.value() < node_count_,
            "next_hop: unknown destination node");
  const NodeId hop = next_hop_[from.value() * node_count_ + dest.value()];
  if (!hop.valid()) return std::nullopt;
  return hop;
}

std::optional<std::size_t> Topology::hop_distance(NodeId from,
                                                  NodeId dest) const {
  if (!routes_valid_) return std::nullopt;
  const std::size_t h = hops_[from.value() * node_count_ + dest.value()];
  if (h == std::numeric_limits<std::size_t>::max()) return std::nullopt;
  return h;
}

}  // namespace dde::net
