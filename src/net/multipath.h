// Multipath redundancy support: alternate next-hop selection for sending
// replicated copies of critical traffic over disjoint first hops, and a
// bounded receiver-side dedup table that suppresses the extra copies.
//
// The transmission side is policy-free: alternate_next_hops() just ranks a
// node's other neighbors by how much closer they sit to the destination
// (deterministically — ties break by node id), and the caller decides how
// many replicas to cut. The receive side is a DedupTable keyed by replica
// group: the first copy of a group is accepted, later copies are dropped.
// Entries expire (groups are short-lived — one request/reply exchange) and
// the table is capacity-bounded with earliest-expiry eviction, like the
// announce-flood dedup, so state stays O(capacity) regardless of traffic.
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <utility>
#include <vector>

#include "common/ids.h"
#include "common/sim_time.h"
#include "net/topology.h"

namespace dde::net {

/// Neighbors of `from` that are strictly closer to `dest` than `from`
/// itself (downhill hops), sorted by (hop distance to dest, node id).
/// The routing-table next hop is always first if reachable.
[[nodiscard]] std::vector<NodeId> downhill_neighbors(const Topology& topo,
                                                     NodeId from, NodeId dest);

/// Up to `k` distinct alternate next hops from `from` toward `dest`,
/// excluding the nodes in `used` (typically the primary next hop).
/// Deterministic: best-first order as in downhill_neighbors().
[[nodiscard]] std::vector<NodeId> alternate_next_hops(
    const Topology& topo, NodeId from, NodeId dest, std::size_t k,
    const std::vector<NodeId>& used);

/// Bounded first-copy-wins duplicate suppression.
class DedupTable {
 public:
  struct Stats {
    std::uint64_t accepted = 0;    ///< first copies admitted
    std::uint64_t duplicates = 0;  ///< later copies suppressed
    std::uint64_t expired = 0;     ///< entries aged out
    std::uint64_t evicted = 0;     ///< entries displaced at capacity
  };

  /// Remember keys for `ttl` after first sight; hold at most `capacity`
  /// live keys (earliest-expiry eviction). Preconditions: capacity > 0,
  /// ttl > 0.
  DedupTable(std::size_t capacity, SimTime ttl);

  /// First sight of `key` at `now` → true (accepted); a repeat within the
  /// ttl → false (duplicate). Re-admits keys whose entry expired or was
  /// evicted.
  [[nodiscard]] bool accept(std::uint64_t key, SimTime now);

  [[nodiscard]] std::size_t size() const noexcept { return expiry_.size(); }
  [[nodiscard]] const Stats& stats() const noexcept { return stats_; }

 private:
  void purge(SimTime now);

  std::size_t capacity_;
  SimTime ttl_;
  std::map<std::uint64_t, SimTime> expiry_;           // key → expiry time
  std::set<std::pair<SimTime, std::uint64_t>> by_expiry_;
  Stats stats_;
};

}  // namespace dde::net
