// Multipath redundancy support: alternate next-hop selection for sending
// replicated copies of critical traffic over disjoint first hops, and a
// bounded receiver-side dedup table that suppresses the extra copies.
//
// The transmission side is policy-free: alternate_next_hops() just ranks a
// node's other neighbors by how much closer they sit to the destination
// (deterministically — ties break by node id), and the caller decides how
// many replicas to cut. The receive side is a DedupTable keyed by replica
// group: the first copy of a group is accepted, later copies are dropped.
// Entries expire (groups are short-lived — one request/reply exchange) and
// the table is capacity-bounded with earliest-expiry eviction, like the
// announce-flood dedup, so state stays O(capacity) regardless of traffic.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "common/flat_hash.h"
#include "common/ids.h"
#include "common/sim_time.h"
#include "net/topology.h"

namespace dde::net {

/// Neighbors of `from` that are strictly closer to `dest` than `from`
/// itself (downhill hops), sorted by (hop distance to dest, node id).
/// The routing-table next hop is always first if reachable.
[[nodiscard]] std::vector<NodeId> downhill_neighbors(const Topology& topo,
                                                     NodeId from, NodeId dest);

/// Up to `k` distinct alternate next hops from `from` toward `dest`,
/// excluding the nodes in `used` (typically the primary next hop).
/// Deterministic: best-first order as in downhill_neighbors().
[[nodiscard]] std::vector<NodeId> alternate_next_hops(
    const Topology& topo, NodeId from, NodeId dest, std::size_t k,
    const std::vector<NodeId>& used);

/// Bounded first-copy-wins duplicate suppression.
class DedupTable {
 public:
  struct Stats {
    std::uint64_t accepted = 0;    ///< first copies admitted
    std::uint64_t duplicates = 0;  ///< later copies suppressed
    std::uint64_t expired = 0;     ///< entries aged out
    std::uint64_t evicted = 0;     ///< entries displaced at capacity
  };

  /// Remember keys for `ttl` after first sight; hold at most `capacity`
  /// live keys (earliest-expiry eviction). Preconditions: capacity > 0,
  /// ttl > 0.
  DedupTable(std::size_t capacity, SimTime ttl);

  /// First sight of `key` at `now` → true (accepted); a repeat within the
  /// ttl → false (duplicate). Re-admits keys whose entry expired or was
  /// evicted.
  [[nodiscard]] bool accept(std::uint64_t key, SimTime now);

  [[nodiscard]] std::size_t size() const noexcept { return expiry_.size(); }
  [[nodiscard]] const Stats& stats() const noexcept { return stats_; }

 private:
  void purge(SimTime now);
  void pop_earliest();

  std::size_t capacity_;
  SimTime ttl_;
  /// key → expiry time: flat open-addressing probe, no iteration ever
  /// (common/flat_hash.h) — the old std::map cost a node allocation and a
  /// tree descent per packet copy.
  FlatU64Map<SimTime> expiry_;
  /// Intrusive min-heap ordered by (expiry, key) — the same total order the
  /// old std::set<pair> gave, so purge order and the capacity-eviction
  /// victim are byte-identical. Always 1:1 with expiry_: entries leave both
  /// together (heap-minimum pops only).
  std::vector<std::pair<SimTime, std::uint64_t>> by_expiry_;
  Stats stats_;
};

}  // namespace dde::net
