// Simulated packet network on top of the DES kernel.
//
// Each directed link transmits one packet at a time (FIFO queue behind it);
// a packet occupies the link for its serialization time and arrives after
// the additional propagation latency. Per-link and global byte counters
// provide the bandwidth-consumption metric of Fig. 3.
//
// The network is intentionally dumb: it moves a packet one hop. Forwarding
// decisions (interest routing, caching, label propagation) belong to the
// protocol layer (Athena) — exactly as in the paper, where the intelligence
// lives in the nodes.
#pragma once

#include <any>
#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

#include "common/contracts.h"
#include "common/ids.h"
#include "common/rng.h"
#include "common/sim_time.h"
#include "des/simulator.h"
#include "net/packet_queue.h"
#include "net/topology.h"
#include "obs/trace.h"

namespace dde::net {

/// A packet in flight. `payload` carries a protocol-defined message;
/// `bytes` alone determines timing and accounting. `priority` orders
/// contending packets on each link (higher first, FIFO within a class) —
/// the preferential-treatment mechanism of Sec. V-C; background traffic
/// (e.g. prefetch pushes) uses negative priorities.
struct Packet {
  MessageId id;
  NodeId src;          ///< original sender
  NodeId dst;          ///< final destination (informational)
  std::uint64_t bytes = 0;
  int priority = 0;
  std::any payload;
};

/// Aggregate traffic statistics. `bytes` counts every byte crossing every
/// link (a packet traversing 3 hops counts 3×) — the total network
/// bandwidth consumption metric of Fig. 3.
struct TrafficStats {
  std::uint64_t packets = 0;
  std::uint64_t bytes = 0;
  /// Every lost packet, whatever the cause, counted exactly once: random
  /// loss, bursty loss, a downed link's purged queue/in-flight packet,
  /// delivery to a crashed node, or eviction from a bounded queue. Bytes
  /// stay charged for packets that reached the wire — the packet occupied
  /// its link time before being lost — but a queue eviction refunds them
  /// (the packet never transmitted).
  std::uint64_t dropped = 0;
  /// The subset of `dropped` caused by link/node dynamics (fault
  /// injection) rather than random per-packet loss.
  std::uint64_t link_down_drops = 0;
  /// The subset of `dropped` evicted from bounded link queues (overload
  /// protection; see QueueLimits).
  std::uint64_t queue_drops = 0;
};

/// Caps on each link's *waiting* queue — the packet currently transmitting
/// is exempt and never evicted. 0 means unbounded (the default: behaviour
/// is identical to a build without queue limits). When accepting a packet
/// would exceed either cap, the lowest-priority, newest waiting packet is
/// evicted — possibly the arriving packet itself — until the queue fits.
/// Evictions count in TrafficStats::dropped and ::queue_drops; their bytes
/// are refunded because the packet never crossed the link.
struct QueueLimits {
  std::size_t max_packets = 0;   ///< waiting packets per link (0 = ∞)
  std::uint64_t max_bytes = 0;   ///< waiting bytes per link (0 = ∞)
  [[nodiscard]] constexpr bool bounded() const noexcept {
    return max_packets > 0 || max_bytes > 0;
  }
};

/// One hop-level trace event (optional observability hook).
struct TraceEvent {
  enum class Kind { kSend, kDeliver } kind = Kind::kSend;
  SimTime at;
  NodeId from;     ///< transmitting node
  NodeId to;       ///< receiving node
  MessageId message;
  std::uint64_t bytes = 0;
  /// The packet's payload, for protocol-aware tracers (std::any_cast it).
  /// Points into the live packet: valid only for the duration of the
  /// tracer callback, never to be stored.
  const std::any* payload = nullptr;
};

/// The simulated network runtime.
class Network {
 public:
  using Handler = std::function<void(NodeId self, const Packet&)>;
  using Tracer = std::function<void(const TraceEvent&)>;
  /// Per-packet loss decision hook, consulted at transmission completion
  /// for every packet that finished serializing on an up link. Returning
  /// true drops the packet. Used by the fault subsystem to install
  /// correlated (Gilbert–Elliott) loss processes; composes with the
  /// independent loss of set_loss_rate().
  using LossModel = std::function<bool(LinkId)>;

  /// Topology must outlive the network and have routes computed.
  Network(des::Simulator& sim, const Topology& topo);

  /// Register the receive handler for `node` (one per node).
  void set_handler(NodeId node, Handler handler);

  /// Transmit `packet` one hop from `from` to adjacent `next`. The packet
  /// queues on that link; the link serves the highest-priority packet
  /// first (FIFO within a priority class, non-preemptive). Returns false
  /// (drop) if the nodes are not adjacent, the link is down, or `from`
  /// itself is down.
  bool send(NodeId from, NodeId next, Packet packet);

  // --- link/node dynamics (fault injection) -----------------------------
  /// Administratively down or restore a directed link. Downing a link
  /// purges its queue and voids the in-flight packet (each counted once in
  /// TrafficStats::dropped and ::link_down_drops); while down, send() over
  /// it returns false. Packets already past transmission (in propagation)
  /// still arrive. Restoring resumes normal service.
  void set_link_up(LinkId link, bool up);
  [[nodiscard]] bool link_up(LinkId link) const {
    DDE_CHECK(link.valid() && link.value() < link_admin_up_.size(),
              "link_up: unknown link");
    return link_admin_up_[link.value()] != 0;
  }

  /// Crash or restart a node. A down node sends nothing (send() returns
  /// false) and receives nothing (deliveries to it are dropped and
  /// counted). Its state is otherwise untouched — a restart resumes with
  /// whatever the protocol layer kept.
  void set_node_up(NodeId node, bool up) {
    DDE_CHECK(node.valid() && node.value() < node_up_.size(),
              "set_node_up: unknown node");
    node_up_[node.value()] = up ? 1 : 0;
  }
  [[nodiscard]] bool node_up(NodeId node) const {
    DDE_CHECK(node.valid() && node.value() < node_up_.size(),
              "node_up: unknown node");
    return node_up_[node.value()] != 0;
  }

  // --- overload protection (bounded queues) -----------------------------
  /// Install waiting-queue caps, applied to every link. Default-constructed
  /// limits (all zero) restore unbounded queues. Caps are enforced from the
  /// next send() on; an already-over-cap queue is trimmed lazily as traffic
  /// arrives, never retroactively.
  void set_queue_limits(QueueLimits limits) noexcept { limits_ = limits; }
  [[nodiscard]] const QueueLimits& queue_limits() const noexcept {
    return limits_;
  }

  /// Packets currently queued (not yet transmitting) on `link`.
  [[nodiscard]] std::size_t queue_length(LinkId link) const {
    return link_state_.at(link.value()).queue.size();
  }

  /// Bytes currently queued (not yet transmitting) on `link` — the
  /// congestion signal protocol layers use for backpressure decisions.
  [[nodiscard]] std::uint64_t queue_bytes(LinkId link) const {
    return link_state_.at(link.value()).queued_bytes;
  }

  /// Packets evicted from `link`'s bounded queue so far.
  [[nodiscard]] std::uint64_t link_queue_drops(LinkId link) const {
    return link_state_.at(link.value()).queue_drops;
  }

  /// Next hop from `from` toward `dest` per the topology's routes.
  [[nodiscard]] std::optional<NodeId> next_hop(NodeId from, NodeId dest) const {
    return topo_.next_hop(from, dest);
  }

  [[nodiscard]] const Topology& topology() const noexcept { return topo_; }
  [[nodiscard]] const TrafficStats& stats() const noexcept { return stats_; }
  [[nodiscard]] std::uint64_t link_bytes(LinkId link) const {
    return link_state_.at(link.value()).bytes;
  }
  [[nodiscard]] des::Simulator& simulator() noexcept { return sim_; }
  [[nodiscard]] SimTime now() const noexcept { return sim_.now(); }

  /// Install a hop-level tracer (pass nullptr to remove). The tracer sees
  /// every send (at enqueue time) and every delivery (at arrival time) —
  /// the raw material for Fig. 1-style message-flow walkthroughs.
  void set_tracer(Tracer tracer) { tracer_ = std::move(tracer); }

  /// Attach a structured trace sink (pass nullptr to detach). The network
  /// emits obs::EventKind::kHopSend / kHopDeliver events into it alongside
  /// (not replacing) the legacy Tracer callback. Observation only — the
  /// sink never alters timing, ordering, or loss.
  void set_trace_sink(obs::TraceSink* sink) noexcept { trace_sink_ = sink; }

  /// Failure injection: drop each transmitted packet independently with
  /// this probability (checked at transmission completion, so a lost
  /// packet still consumed its link time — wireless-style loss). The loss
  /// process is deterministic per seed; callers must derive the seed from
  /// their run seed so loss realizations vary across a seed sweep.
  void set_loss_rate(double probability, std::uint64_t seed) {
    loss_rate_ = probability;
    loss_rng_.reseed(seed);
  }
  [[nodiscard]] double loss_rate() const noexcept { return loss_rate_; }

  /// Install a correlated-loss model (pass nullptr to remove). Consulted
  /// once per completed transmission, before the independent loss draw.
  void set_loss_model(LossModel model) { loss_model_ = std::move(model); }

 private:
  struct LinkState {
    bool busy = false;
    /// Waiting packets, served in (-priority, arrival seq) order — highest
    /// priority first, FIFO within a class (flat heap, net/packet_queue.h).
    FlatPacketQueue<Packet> queue;
    std::uint64_t queued_bytes = 0;  ///< bytes of waiting packets
    std::uint64_t bytes = 0;
    std::uint64_t packets = 0;
    std::uint64_t queue_drops = 0;   ///< bounded-queue evictions
    /// Bumped on every link-down; an in-flight transmission whose captured
    /// epoch no longer matches was severed mid-transfer and is dropped.
    std::uint64_t epoch = 0;
  };

  /// Start transmitting the head-of-queue packet on an idle link.
  void start_transmission(LinkId link_id);

  /// Evict lowest-priority, newest waiting packets until `state` fits the
  /// configured caps (no-op with unbounded limits).
  void enforce_queue_limits(LinkState& state);

  des::Simulator& sim_;
  const Topology& topo_;
  std::vector<Handler> handlers_;
  Tracer tracer_;
  obs::TraceSink* trace_sink_ = nullptr;
  double loss_rate_ = 0.0;
  Rng loss_rng_{99173};
  LossModel loss_model_;
  QueueLimits limits_;
  std::vector<LinkState> link_state_;
  std::vector<char> link_admin_up_;  ///< per directed link
  std::vector<char> node_up_;
  TrafficStats stats_;
  std::uint64_t next_message_ = 0;
};

}  // namespace dde::net
