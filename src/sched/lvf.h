// Decision-driven real-time scheduling (Sec. IV-A).
//
// Two sensor-activation models are supported; they change which policies
// are optimal, and both appear in the paper's narrative:
//
//  * kLazyActivation — the scheduler chooses each sensor's activation time;
//    the optimal choice is to sample exactly when the object's transfer
//    starts. Here LVF (longest validity first) within a task is optimal:
//    if any retrieval order is feasible, the LVF order is ([1]). Across
//    tasks with equal arrivals, within-band freshness is start-independent,
//    so EDF banding is optimal (Jackson's rule).
//
//  * kActivateOnArrival — sensors fire the moment the query arrives, so
//    every object's validity clock starts at the arrival. A task is then a
//    job with effective deadline min(min_i I_i, D) — and the paper's
//    hierarchical rule ("highest priority to the query with the smallest
//    value of the minimum of its object validity expiration times and its
//    decision deadline", i.e. kMinSlackBand) is exactly EDF on that
//    effective deadline, hence optimal.
//
// Baseline policies (EDF on the raw deadline, shortest-job-first, shortest
// validity first, declaration order) are provided for the schedulability
// experiments.
#pragma once

#include <span>
#include <vector>

#include "common/rng.h"
#include "sched/task.h"

namespace dde::sched {

/// When a sensor takes the sample whose freshness matters at decision time.
enum class ActivationModel {
  kLazyActivation,     ///< sampled when its transfer starts (chosen t_i)
  kActivateOnArrival,  ///< sampled at the query's arrival
};

/// Object-order policy within one task.
enum class ObjectOrder {
  kDeclared,           ///< as given
  kLvf,                ///< longest validity first (optimal)
  kSvf,                ///< shortest validity first (pessimal contrast)
  kShortestFirst,      ///< shortest transmission first
  kRandom,             ///< uniformly random
};

/// Task-order policy across tasks (non-overlapping bands).
enum class TaskOrder {
  kDeclared,        ///< as given
  kMinSlackBand,    ///< optimal: min(min validity, deadline) ascending
  kEdf,             ///< earliest absolute deadline first
  kShortestFirst,   ///< least total transmission time first
  kRandom,          ///< uniformly random
};

/// Objects of `task` in the given order (kRandom consumes `rng`).
[[nodiscard]] std::vector<RetrievalObject> order_objects(
    const DecisionTask& task, ObjectOrder policy, Rng* rng = nullptr);

/// Schedule one task's objects back-to-back on the channel from
/// `channel_free` (but not before the task's arrival), in the given order.
/// Checks deadline and freshness-at-decision-time constraints under the
/// given activation model.
[[nodiscard]] TaskSchedule schedule_task(
    const DecisionTask& task, std::span<const RetrievalObject> order,
    SimTime channel_free,
    ActivationModel model = ActivationModel::kLazyActivation);

/// Schedule many tasks in non-overlapping priority bands: tasks ordered by
/// `task_policy`, objects within each by `object_policy`.
[[nodiscard]] ChannelSchedule schedule_bands(
    std::span<const DecisionTask> tasks, TaskOrder task_policy,
    ObjectOrder object_policy, Rng* rng = nullptr,
    ActivationModel model = ActivationModel::kLazyActivation);

/// True iff a single task is feasible on an idle channel starting at its
/// arrival under any retrieval order. (Checks the LVF order, which is
/// optimal under both activation models.)
[[nodiscard]] bool single_task_feasible(
    const DecisionTask& task,
    ActivationModel model = ActivationModel::kLazyActivation);

/// Exhaustive feasibility: tries every permutation of the task's objects
/// (reference for tests; N ≤ ~8).
[[nodiscard]] bool single_task_feasible_bruteforce(
    const DecisionTask& task,
    ActivationModel model = ActivationModel::kLazyActivation);

/// Exhaustive multi-task feasibility over all task-band permutations with
/// LVF inside each band (reference for tests; task count ≤ ~7).
[[nodiscard]] bool bands_feasible_bruteforce(
    std::span<const DecisionTask> tasks,
    ActivationModel model = ActivationModel::kLazyActivation);

}  // namespace dde::sched
