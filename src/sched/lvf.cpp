#include "sched/lvf.h"

#include <algorithm>
#include <numeric>

#include "common/contracts.h"

namespace dde::sched {

std::vector<RetrievalObject> order_objects(const DecisionTask& task,
                                           ObjectOrder policy, Rng* rng) {
  std::vector<RetrievalObject> objs = task.objects;
  switch (policy) {
    case ObjectOrder::kDeclared:
      break;
    case ObjectOrder::kLvf:
      std::stable_sort(objs.begin(), objs.end(),
                       [](const RetrievalObject& a, const RetrievalObject& b) {
                         return a.validity > b.validity;
                       });
      break;
    case ObjectOrder::kSvf:
      std::stable_sort(objs.begin(), objs.end(),
                       [](const RetrievalObject& a, const RetrievalObject& b) {
                         return a.validity < b.validity;
                       });
      break;
    case ObjectOrder::kShortestFirst:
      std::stable_sort(objs.begin(), objs.end(),
                       [](const RetrievalObject& a, const RetrievalObject& b) {
                         return a.transmission < b.transmission;
                       });
      break;
    case ObjectOrder::kRandom: {
      // A null rng is a caller bug, but dereferencing it is UB in every
      // build type — log once and degrade to the declared order.
      bool have_rng = true;
      DDE_CLAMP_OR(rng != nullptr, have_rng = false,
                   "ObjectOrder::kRandom without an rng; using declared order");
      if (have_rng) rng->shuffle(objs);
      break;
    }
  }
  return objs;
}

TaskSchedule schedule_task(const DecisionTask& task,
                           std::span<const RetrievalObject> order,
                           SimTime channel_free, ActivationModel model) {
  TaskSchedule out;
  out.query = task.id;
  SimTime cursor = std::max(channel_free, task.arrival);
  for (const RetrievalObject& o : order) {
    ScheduledRetrieval r;
    r.object = o.id;
    r.query = task.id;
    r.start = cursor;
    r.finish = cursor + o.transmission;
    cursor = r.finish;
    out.retrievals.push_back(r);
  }
  out.decision_time = cursor;
  out.deadline_met = out.decision_time <= task.absolute_deadline();
  out.all_fresh = true;
  for (std::size_t i = 0; i < order.size(); ++i) {
    // The sample must stay fresh through the decision time. Under lazy
    // activation the sensor is sampled when its transfer starts; under
    // activate-on-arrival the validity clock started at the query arrival.
    const SimTime sampled = model == ActivationModel::kLazyActivation
                                ? out.retrievals[i].start
                                : task.arrival;
    if (sampled + order[i].validity < out.decision_time) {
      out.all_fresh = false;
      break;
    }
  }
  return out;
}

namespace {

/// Hierarchical band priority key (paper: the query with the smallest value
/// of the minimum of its object validity expiration times and its decision
/// deadline goes first). With sensors activated at retrieval time, the
/// static surrogate is min(min_i I_i, D).
SimTime band_key(const DecisionTask& t) {
  SimTime k = t.relative_deadline;
  for (const auto& o : t.objects) k = std::min(k, o.validity);
  return k;
}

ChannelSchedule schedule_in_order(std::span<const DecisionTask> tasks,
                                  std::span<const std::size_t> order,
                                  ObjectOrder object_policy, Rng* rng,
                                  ActivationModel model) {
  ChannelSchedule out;
  SimTime channel_free = SimTime::zero();
  for (std::size_t idx : order) {
    const DecisionTask& t = tasks[idx];
    const auto objs = order_objects(t, object_policy, rng);
    TaskSchedule ts = schedule_task(t, objs, channel_free, model);
    channel_free = ts.decision_time;
    out.tasks.push_back(std::move(ts));
  }
  return out;
}

}  // namespace

ChannelSchedule schedule_bands(std::span<const DecisionTask> tasks,
                               TaskOrder task_policy,
                               ObjectOrder object_policy, Rng* rng,
                               ActivationModel model) {
  std::vector<std::size_t> order(tasks.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  switch (task_policy) {
    case TaskOrder::kDeclared:
      break;
    case TaskOrder::kMinSlackBand:
      std::stable_sort(order.begin(), order.end(),
                       [&](std::size_t a, std::size_t b) {
                         return band_key(tasks[a]) < band_key(tasks[b]);
                       });
      break;
    case TaskOrder::kEdf:
      std::stable_sort(order.begin(), order.end(),
                       [&](std::size_t a, std::size_t b) {
                         return tasks[a].absolute_deadline() <
                                tasks[b].absolute_deadline();
                       });
      break;
    case TaskOrder::kShortestFirst: {
      auto total = [&](std::size_t i) {
        SimTime sum = SimTime::zero();
        for (const auto& o : tasks[i].objects) sum += o.transmission;
        return sum;
      };
      std::stable_sort(order.begin(), order.end(),
                       [&](std::size_t a, std::size_t b) {
                         return total(a) < total(b);
                       });
      break;
    }
    case TaskOrder::kRandom: {
      // Same contract as ObjectOrder::kRandom: log once, declared order
      // instead of UB.
      bool have_rng = true;
      DDE_CLAMP_OR(rng != nullptr, have_rng = false,
                   "TaskOrder::kRandom without an rng; using declared order");
      if (have_rng) rng->shuffle(order);
      break;
    }
  }
  return schedule_in_order(tasks, order, object_policy, rng, model);
}

bool single_task_feasible(const DecisionTask& task, ActivationModel model) {
  const auto order = order_objects(task, ObjectOrder::kLvf);
  return schedule_task(task, order, task.arrival, model).feasible();
}

bool single_task_feasible_bruteforce(const DecisionTask& task,
                                     ActivationModel model) {
  std::vector<std::size_t> perm(task.objects.size());
  std::iota(perm.begin(), perm.end(), std::size_t{0});
  DDE_CHECK(perm.size() <= 9,
            "single_task_feasible_bruteforce: >9 objects would enumerate "
            ">362880 permutations");
  std::sort(perm.begin(), perm.end());
  do {
    std::vector<RetrievalObject> order;
    order.reserve(perm.size());
    for (std::size_t i : perm) order.push_back(task.objects[i]);
    if (schedule_task(task, order, task.arrival, model).feasible()) return true;
  } while (std::next_permutation(perm.begin(), perm.end()));
  return false;
}

bool bands_feasible_bruteforce(std::span<const DecisionTask> tasks,
                               ActivationModel model) {
  std::vector<std::size_t> perm(tasks.size());
  std::iota(perm.begin(), perm.end(), std::size_t{0});
  DDE_CHECK(perm.size() <= 8,
            "bands_feasible_bruteforce: >8 tasks would enumerate >40320 "
            "orderings");
  std::sort(perm.begin(), perm.end());
  do {
    if (schedule_in_order(tasks, perm, ObjectOrder::kLvf, nullptr, model)
            .feasible()) {
      return true;
    }
  } while (std::next_permutation(perm.begin(), perm.end()));
  return false;
}

}  // namespace dde::sched
