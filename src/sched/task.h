// Task model for decision-driven scheduling theory (Sec. IV-A).
//
// A decision task (query) needs N evidence objects retrieved over a single
// shared channel. Retrieving object i occupies the channel for its
// transmission time C_i; the sensor is activated (and samples) when its
// retrieval starts, and the sample stays fresh for the validity interval
// I_i. All objects must be fresh at the task's decision time F, and F must
// not exceed the decision deadline.
#pragma once

#include <vector>

#include "common/ids.h"
#include "common/sim_time.h"

namespace dde::sched {

/// One evidence object to retrieve.
struct RetrievalObject {
  ObjectId id;
  SimTime transmission;  ///< channel occupancy C_i
  SimTime validity;      ///< freshness interval I_i
};

/// One decision task (query).
struct DecisionTask {
  QueryId id;
  SimTime arrival;                       ///< query arrival time t
  SimTime relative_deadline;             ///< D; absolute deadline = t + D
  std::vector<RetrievalObject> objects;  ///< evidence to retrieve

  [[nodiscard]] SimTime absolute_deadline() const noexcept {
    return arrival + relative_deadline;
  }
};

/// A scheduled retrieval: when each object's transfer starts/ends.
struct ScheduledRetrieval {
  ObjectId object;
  QueryId query;
  SimTime start;   ///< sensor activation = sample time t_i
  SimTime finish;  ///< transfer completion
};

/// The outcome of scheduling one task.
struct TaskSchedule {
  QueryId query;
  std::vector<ScheduledRetrieval> retrievals;
  SimTime decision_time;  ///< F: completion of the task's last object
  bool deadline_met = false;
  bool all_fresh = false;  ///< every object fresh at decision_time

  [[nodiscard]] bool feasible() const noexcept {
    return deadline_met && all_fresh;
  }
};

/// A full schedule over the shared channel.
struct ChannelSchedule {
  std::vector<TaskSchedule> tasks;

  [[nodiscard]] bool feasible() const noexcept {
    for (const auto& t : tasks) {
      if (!t.feasible()) return false;
    }
    return true;
  }

  /// Total channel time consumed (equals Cost_opt when each object is
  /// retrieved exactly once — Eq. 1 of the paper).
  [[nodiscard]] SimTime total_cost() const noexcept {
    SimTime sum = SimTime::zero();
    for (const auto& t : tasks) {
      for (const auto& r : t.retrievals) sum += r.finish - r.start;
    }
    return sum;
  }
};

}  // namespace dde::sched
