// Extensions to the decision-driven scheduling theory (Sec. IV-B):
//
//  * Multi-channel retrieval — the paper's initial results assume a single
//    resource bottleneck; here objects may be fetched over m parallel
//    channels (list scheduling onto the earliest-free channel).
//
//  * Non-independent queries — queries may overlap in the objects they
//    need. Retrieving a shared object once and reusing it for every query
//    that needs it reduces total cost below the sum of per-query optima.
//
// Both use the lazy-activation freshness model: an object is sampled when
// its transfer starts and must remain valid at the decision time of every
// task that uses it.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "sched/lvf.h"

namespace dde::sched {

/// Result of scheduling tasks over m parallel channels.
struct MultiChannelSchedule {
  std::vector<TaskSchedule> tasks;
  std::size_t channels = 1;

  [[nodiscard]] bool feasible() const noexcept {
    for (const auto& t : tasks) {
      if (!t.feasible()) return false;
    }
    return true;
  }
  /// Completion of the last retrieval over all channels.
  [[nodiscard]] SimTime makespan() const noexcept {
    SimTime m = SimTime::zero();
    for (const auto& t : tasks) m = std::max(m, t.decision_time);
    return m;
  }
};

/// List-schedule tasks over `channels` parallel channels: tasks in
/// `task_policy` order; within a task, objects in `object_policy` order,
/// each assigned to the earliest-free channel. A task's decision time is
/// the completion of its last object; freshness is checked per object
/// against that decision time (lazy activation).
[[nodiscard]] MultiChannelSchedule schedule_multichannel(
    std::span<const DecisionTask> tasks, std::size_t channels,
    TaskOrder task_policy, ObjectOrder object_policy, Rng* rng = nullptr);

// --- non-independent (object-sharing) queries -----------------------------

/// A workload where tasks reference objects from a shared pool by index.
struct SharedWorkload {
  std::vector<RetrievalObject> objects;
  struct Task {
    QueryId id;
    SimTime relative_deadline;          ///< all tasks arrive at time 0
    std::vector<std::size_t> needs;     ///< indexes into `objects`
  };
  std::vector<Task> tasks;
};

/// Outcome of scheduling a shared workload on a single channel.
struct SharedSchedule {
  /// Retrieval order (object indexes, each exactly once).
  std::vector<std::size_t> order;
  /// Per-task decision times, aligned with workload.tasks.
  std::vector<SimTime> decision_times;
  std::vector<bool> task_feasible;
  SimTime total_cost;  ///< channel time consumed (each object once)

  [[nodiscard]] bool feasible() const noexcept {
    for (bool ok : task_feasible) {
      if (!ok) return false;
    }
    return true;
  }
  [[nodiscard]] std::size_t feasible_count() const noexcept {
    std::size_t n = 0;
    for (bool ok : task_feasible) n += ok ? 1 : 0;
    return n;
  }
};

/// Evaluate a given retrieval order (each needed object exactly once,
/// back-to-back from time 0) against the workload's deadlines and
/// freshness constraints.
[[nodiscard]] SharedSchedule evaluate_shared_order(
    const SharedWorkload& workload, std::span<const std::size_t> order);

/// Heuristic: retrieve needed objects once, globally ordered by longest
/// validity first (ties: most-demanded first, then shorter transmission).
[[nodiscard]] SharedSchedule schedule_shared_lvf(const SharedWorkload& workload);

/// Reference: best order by exhaustive permutation (≤ ~8 distinct objects).
/// Maximizes the number of feasible tasks; ties broken by earlier average
/// decision time.
[[nodiscard]] SharedSchedule schedule_shared_bruteforce(
    const SharedWorkload& workload);

/// Channel time needed if every task retrieved its objects independently
/// (the no-sharing baseline): shared objects are paid once per task.
[[nodiscard]] SimTime independent_retrieval_cost(const SharedWorkload& workload);

}  // namespace dde::sched
