#include "sched/multichannel.h"

#include <algorithm>
#include <numeric>
#include <unordered_set>

#include "common/contracts.h"

namespace dde::sched {

MultiChannelSchedule schedule_multichannel(std::span<const DecisionTask> tasks,
                                           std::size_t channels,
                                           TaskOrder task_policy,
                                           ObjectOrder object_policy,
                                           Rng* rng) {
  // Zero channels would divide-by-zero below; a single channel is the
  // degenerate-but-well-defined reading of the request.
  DDE_CLAMP_OR(channels >= 1, channels = 1,
               "schedule_multichannel: channels must be >= 1; clamped to 1");
  // Order tasks exactly as schedule_bands would.
  std::vector<std::size_t> task_order(tasks.size());
  std::iota(task_order.begin(), task_order.end(), std::size_t{0});
  {
    // Reuse the single-channel band ordering by scheduling with a dummy
    // call: replicate the ordering logic locally to avoid exposing it.
    auto band_key = [](const DecisionTask& t) {
      SimTime k = t.relative_deadline;
      for (const auto& o : t.objects) k = std::min(k, o.validity);
      return k;
    };
    auto total_tx = [&](std::size_t i) {
      SimTime sum = SimTime::zero();
      for (const auto& o : tasks[i].objects) sum += o.transmission;
      return sum;
    };
    switch (task_policy) {
      case TaskOrder::kDeclared:
        break;
      case TaskOrder::kMinSlackBand:
        std::stable_sort(task_order.begin(), task_order.end(),
                         [&](std::size_t a, std::size_t b) {
                           return band_key(tasks[a]) < band_key(tasks[b]);
                         });
        break;
      case TaskOrder::kEdf:
        std::stable_sort(task_order.begin(), task_order.end(),
                         [&](std::size_t a, std::size_t b) {
                           return tasks[a].absolute_deadline() <
                                  tasks[b].absolute_deadline();
                         });
        break;
      case TaskOrder::kShortestFirst:
        std::stable_sort(task_order.begin(), task_order.end(),
                         [&](std::size_t a, std::size_t b) {
                           return total_tx(a) < total_tx(b);
                         });
        break;
      case TaskOrder::kRandom: {
        // Null rng was a release-build segfault here (same disease as the
        // PR 4 sched fix): log once and keep the declared order instead.
        bool have_rng = true;
        DDE_CLAMP_OR(rng != nullptr, have_rng = false,
                     "schedule_multichannel: kRandom without an rng; using "
                     "declared order");
        if (have_rng) rng->shuffle(task_order);
        break;
      }
    }
  }

  MultiChannelSchedule out;
  out.channels = channels;
  out.tasks.resize(tasks.size());
  std::vector<SimTime> channel_free(channels, SimTime::zero());

  for (std::size_t idx : task_order) {
    const DecisionTask& t = tasks[idx];
    const auto objs = order_objects(t, object_policy, rng);
    TaskSchedule ts;
    ts.query = t.id;
    for (const RetrievalObject& o : objs) {
      // Earliest-free channel (stable: lowest index on ties).
      std::size_t best = 0;
      for (std::size_t c = 1; c < channels; ++c) {
        if (channel_free[c] < channel_free[best]) best = c;
      }
      ScheduledRetrieval r;
      r.object = o.id;
      r.query = t.id;
      r.start = std::max(channel_free[best], t.arrival);
      r.finish = r.start + o.transmission;
      channel_free[best] = r.finish;
      ts.retrievals.push_back(r);
    }
    ts.decision_time = t.arrival;
    for (const auto& r : ts.retrievals) {
      ts.decision_time = std::max(ts.decision_time, r.finish);
    }
    ts.deadline_met = ts.decision_time <= t.absolute_deadline();
    ts.all_fresh = true;
    for (std::size_t i = 0; i < objs.size(); ++i) {
      if (ts.retrievals[i].start + objs[i].validity < ts.decision_time) {
        ts.all_fresh = false;
        break;
      }
    }
    out.tasks[idx] = std::move(ts);
  }
  return out;
}

SharedSchedule evaluate_shared_order(const SharedWorkload& workload,
                                     std::span<const std::size_t> order) {
  SharedSchedule out;
  out.order.assign(order.begin(), order.end());
  out.total_cost = SimTime::zero();

  // Transfer windows back-to-back from t = 0.
  std::vector<SimTime> start(workload.objects.size(), SimTime::zero());
  std::vector<SimTime> finish(workload.objects.size(), SimTime::zero());
  SimTime cursor = SimTime::zero();
  for (std::size_t idx : order) {
    start[idx] = cursor;
    cursor += workload.objects[idx].transmission;
    finish[idx] = cursor;
    out.total_cost += workload.objects[idx].transmission;
  }

  out.decision_times.reserve(workload.tasks.size());
  out.task_feasible.reserve(workload.tasks.size());
  for (const auto& task : workload.tasks) {
    SimTime decision = SimTime::zero();
    for (std::size_t idx : task.needs) decision = std::max(decision, finish[idx]);
    bool ok = decision <= task.relative_deadline;
    for (std::size_t idx : task.needs) {
      // The shared object is sampled when its (single) transfer starts; it
      // must still be fresh at this task's decision time.
      if (start[idx] + workload.objects[idx].validity < decision) {
        ok = false;
        break;
      }
    }
    out.decision_times.push_back(decision);
    out.task_feasible.push_back(ok);
  }
  return out;
}

namespace {

/// Distinct objects needed by at least one task, in index order.
std::vector<std::size_t> needed_objects(const SharedWorkload& w) {
  std::unordered_set<std::size_t> seen;
  std::vector<std::size_t> out;
  for (const auto& t : w.tasks) {
    for (std::size_t idx : t.needs) {
      if (seen.insert(idx).second) out.push_back(idx);
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::size_t demand_of(const SharedWorkload& w, std::size_t object) {
  std::size_t demand = 0;
  for (const auto& t : w.tasks) {
    for (std::size_t idx : t.needs) {
      if (idx == object) ++demand;
    }
  }
  return demand;
}

}  // namespace

SharedSchedule schedule_shared_lvf(const SharedWorkload& workload) {
  auto order = needed_objects(workload);
  std::stable_sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    const auto& oa = workload.objects[a];
    const auto& ob = workload.objects[b];
    if (oa.validity != ob.validity) return oa.validity > ob.validity;
    const std::size_t da = demand_of(workload, a);
    const std::size_t db = demand_of(workload, b);
    if (da != db) return da > db;
    return oa.transmission < ob.transmission;
  });
  return evaluate_shared_order(workload, order);
}

SharedSchedule schedule_shared_bruteforce(const SharedWorkload& workload) {
  auto order = needed_objects(workload);
  DDE_CHECK(order.size() <= 9,
            "schedule_shared_bruteforce: >9 objects would enumerate >362880 "
            "permutations");
  std::sort(order.begin(), order.end());
  SharedSchedule best = evaluate_shared_order(workload, order);
  double best_avg = 0.0;
  for (SimTime d : best.decision_times) best_avg += d.to_seconds();
  while (std::next_permutation(order.begin(), order.end())) {
    SharedSchedule candidate = evaluate_shared_order(workload, order);
    double avg = 0.0;
    for (SimTime d : candidate.decision_times) avg += d.to_seconds();
    if (candidate.feasible_count() > best.feasible_count() ||
        (candidate.feasible_count() == best.feasible_count() &&
         avg < best_avg)) {
      best = std::move(candidate);
      best_avg = avg;
    }
  }
  return best;
}

SimTime independent_retrieval_cost(const SharedWorkload& workload) {
  SimTime cost = SimTime::zero();
  for (const auto& t : workload.tasks) {
    for (std::size_t idx : t.needs) {
      cost += workload.objects[idx].transmission;
    }
  }
  return cost;
}

}  // namespace dde::sched
