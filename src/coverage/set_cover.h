// Source selection as weighted set cover (Sec. III-B).
//
// Multiple sources may offer evidence covering overlapping subsets of the
// predicates a decision needs. We want the least-cost subset of sources
// that covers all required predicates. The greedy algorithm (best marginal
// coverage per unit cost) is the classical H_n-approximation the paper's
// `slt` scheme relies on; an exact branch-and-bound solver is provided as a
// test/benchmark reference.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace dde::coverage {

/// One selectable source: a cost and the set of elements it covers
/// (element ids are small dense integers assigned by the caller).
struct CoverSet {
  double cost = 1.0;
  std::vector<std::uint32_t> elements;
};

/// A set-cover instance: choose sets covering all elements in `universe`.
struct CoverInstance {
  std::vector<std::uint32_t> universe;
  std::vector<CoverSet> sets;
};

/// Result of a cover computation.
struct CoverResult {
  bool covered = false;              ///< all universe elements covered?
  double cost = 0.0;                 ///< total cost of chosen sets
  std::vector<std::size_t> chosen;   ///< indexes into instance.sets
};

/// Greedy weighted set cover: repeatedly pick the set with the most
/// uncovered elements per unit cost. O(sets × universe) per pick.
/// If full coverage is impossible, covers what it can (covered=false).
[[nodiscard]] CoverResult greedy_cover(const CoverInstance& instance);

/// Exact minimum-cost cover by branch and bound. Exponential; intended for
/// instances with ≤ ~25 sets. Returns covered=false if no cover exists.
[[nodiscard]] CoverResult exact_cover(const CoverInstance& instance);

}  // namespace dde::coverage
