#include "coverage/set_cover.h"

#include <algorithm>
#include <limits>
#include <unordered_map>

#include "common/contracts.h"

namespace dde::coverage {
namespace {

/// Map universe elements to dense bit positions; elements outside the
/// universe are ignored.
struct DenseInstance {
  std::size_t n = 0;                        // universe size
  std::vector<std::vector<std::size_t>> sets;  // bit positions per set
  std::vector<double> costs;
};

DenseInstance densify(const CoverInstance& in) {
  DenseInstance d;
  std::unordered_map<std::uint32_t, std::size_t> pos;
  for (std::uint32_t e : in.universe) pos.try_emplace(e, pos.size());
  d.n = pos.size();
  d.sets.reserve(in.sets.size());
  d.costs.reserve(in.sets.size());
  for (const auto& s : in.sets) {
    std::vector<std::size_t> bits;
    for (std::uint32_t e : s.elements) {
      auto it = pos.find(e);
      if (it != pos.end()) bits.push_back(it->second);
    }
    std::sort(bits.begin(), bits.end());
    bits.erase(std::unique(bits.begin(), bits.end()), bits.end());
    d.sets.push_back(std::move(bits));
    d.costs.push_back(s.cost);
  }
  return d;
}

using Mask = std::vector<bool>;

std::size_t uncovered_gain(const std::vector<std::size_t>& bits,
                           const Mask& covered) {
  std::size_t gain = 0;
  for (std::size_t b : bits) {
    if (!covered[b]) ++gain;
  }
  return gain;
}

}  // namespace

CoverResult greedy_cover(const CoverInstance& instance) {
  const DenseInstance d = densify(instance);
  CoverResult result;
  Mask covered(d.n, false);
  std::size_t remaining = d.n;
  std::vector<bool> used(d.sets.size(), false);
  while (remaining > 0) {
    double best_ratio = -1.0;
    std::size_t best = d.sets.size();
    for (std::size_t i = 0; i < d.sets.size(); ++i) {
      if (used[i]) continue;
      const std::size_t gain = uncovered_gain(d.sets[i], covered);
      if (gain == 0) continue;
      const double ratio =
          static_cast<double>(gain) / std::max(d.costs[i], 1e-12);
      if (ratio > best_ratio) {
        best_ratio = ratio;
        best = i;
      }
    }
    if (best == d.sets.size()) break;  // nothing covers more
    used[best] = true;
    result.chosen.push_back(best);
    result.cost += d.costs[best];
    for (std::size_t b : d.sets[best]) {
      if (!covered[b]) {
        covered[b] = true;
        --remaining;
      }
    }
  }
  result.covered = remaining == 0;
  std::sort(result.chosen.begin(), result.chosen.end());
  return result;
}

namespace {

struct BnB {
  const DenseInstance& d;
  // element → sets containing it, cheapest-cost-per-element first not
  // needed; we branch on the lowest-index uncovered element.
  std::vector<std::vector<std::size_t>> element_sets;
  double best_cost = std::numeric_limits<double>::infinity();
  std::vector<std::size_t> best_chosen;
  std::vector<std::size_t> current;

  explicit BnB(const DenseInstance& dense) : d(dense) {
    element_sets.assign(d.n, {});
    for (std::size_t i = 0; i < d.sets.size(); ++i) {
      for (std::size_t b : d.sets[i]) element_sets[b].push_back(i);
    }
  }

  void solve(Mask& covered, std::size_t remaining, double cost) {
    if (cost >= best_cost) return;  // bound
    if (remaining == 0) {
      best_cost = cost;
      best_chosen = current;
      return;
    }
    // Branch on the first uncovered element: some chosen set must cover it.
    std::size_t elem = 0;
    while (elem < d.n && covered[elem]) ++elem;
    DDE_CHECK(elem < d.n,
              "set_cover BnB: remaining > 0 but every element is covered");
    for (std::size_t i : element_sets[elem]) {
      // Apply set i.
      std::vector<std::size_t> newly;
      for (std::size_t b : d.sets[i]) {
        if (!covered[b]) {
          covered[b] = true;
          newly.push_back(b);
        }
      }
      current.push_back(i);
      solve(covered, remaining - newly.size(), cost + d.costs[i]);
      current.pop_back();
      for (std::size_t b : newly) covered[b] = false;
    }
  }
};

}  // namespace

CoverResult exact_cover(const CoverInstance& instance) {
  const DenseInstance d = densify(instance);
  BnB bnb(d);
  Mask covered(d.n, false);
  bnb.solve(covered, d.n, 0.0);
  CoverResult result;
  if (bnb.best_cost == std::numeric_limits<double>::infinity()) {
    // No full cover exists; fall back to greedy partial for a usable answer.
    result = greedy_cover(instance);
    result.covered = false;
    return result;
  }
  result.covered = true;
  result.cost = bnb.best_cost;
  result.chosen = bnb.best_chosen;
  std::sort(result.chosen.begin(), result.chosen.end());
  return result;
}

}  // namespace dde::coverage
