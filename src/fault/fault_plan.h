// Deterministic fault plans: timed link/node dynamics plus bursty loss.
//
// A FaultPlan is the concrete, fully-resolved schedule of failure events a
// FaultInjector applies to one run: link down/up, node crash/restart, and a
// per-link Gilbert–Elliott loss process. Plans are plain data — building
// one consumes no randomness beyond what the caller's Rng provides, so the
// same seed always yields the same failure trajectory.
//
// A FaultSpec is the declarative form used by scenario configs ("down 20%
// of links at t=60 s for 90 s"); it is realized into a FaultPlan once the
// topology exists. An empty spec/plan injects nothing and leaves the run
// bit-for-bit identical to a fault-free one.
#pragma once

#include <cstdint>
#include <vector>

#include "common/ids.h"
#include "common/rng.h"
#include "common/sim_time.h"
#include "fault/gilbert_elliott.h"
#include "fault/restart_policy.h"
#include "net/topology.h"

namespace dde::fault {

/// One scheduled failure (or repair) event.
struct FaultEvent {
  enum class Kind {
    kLinkDown,  ///< subject = directed link id; queued/in-flight drops
    kLinkUp,    ///< subject = directed link id
    kNodeDown,  ///< subject = node id; sends rejected, deliveries dropped
    kNodeUp,    ///< subject = node id
  };
  Kind kind = Kind::kLinkDown;
  SimTime at;
  std::uint64_t subject = 0;  ///< LinkId or NodeId value, per kind
};

/// A fully-resolved fault schedule for one run.
struct FaultPlan {
  std::vector<FaultEvent> events;
  /// Bursty-loss channel applied to every link (identity = disabled).
  GilbertElliottParams burst;
  /// What restarted nodes remember (restart_policy.h). Ghost — the
  /// default — is the legacy flag-flip restart, byte-identical to PR 1.
  RestartPolicy restart_policy = RestartPolicy::kGhost;

  [[nodiscard]] bool empty() const noexcept {
    return events.empty() && !burst.enabled();
  }

  /// Down `link` at `down_at`; restore at `up_at` unless `up_at` is zero
  /// (permanent outage). Downs one *directed* link — use the topology
  /// helpers below for whole bidirectional pairs. An up time at or before
  /// the down time would apply the repair first and leave the subject down
  /// forever; such an outage is clamped to a no-op (nothing scheduled).
  void add_link_outage(LinkId link, SimTime down_at,
                       SimTime up_at = SimTime::zero());

  /// Crash `node` at `down_at`; restart at `up_at` unless zero (permanent).
  /// Same up/down ordering clamp as add_link_outage.
  void add_node_crash(NodeId node, SimTime down_at,
                      SimTime up_at = SimTime::zero());
};

/// Declarative fault description, realized against a concrete topology.
/// Fractions select subjects uniformly through the provided Rng.
struct FaultSpec {
  /// Fraction of bidirectional link pairs downed at `outage_at`.
  double link_outage_fraction = 0.0;
  SimTime outage_at = SimTime::zero();
  /// Zero = permanent; otherwise links heal after this long.
  SimTime outage_duration = SimTime::zero();

  /// Fraction of nodes crashed at `crash_at` (node 0 is never crashed so a
  /// scenario's herald/origin role stays alive).
  double node_crash_fraction = 0.0;
  SimTime crash_at = SimTime::zero();
  SimTime crash_duration = SimTime::zero();  ///< zero = permanent

  /// Bursty loss on every link for the whole run.
  GilbertElliottParams burst;

  /// Restart semantics applied to every node crash in this spec
  /// (restart_policy.h). Ghost keeps PR 1's state-preserving restart.
  RestartPolicy restart_policy = RestartPolicy::kGhost;

  /// Extra hand-written events appended verbatim.
  std::vector<FaultEvent> events;

  [[nodiscard]] bool empty() const noexcept {
    return link_outage_fraction <= 0.0 && node_crash_fraction <= 0.0 &&
           !burst.enabled() && events.empty();
  }

  /// Resolve fractions into concrete link/node events. Links are sampled
  /// as bidirectional pairs (both directions fail together, as a severed
  /// cable or jammed radio would). Deterministic given `rng`'s state.
  [[nodiscard]] FaultPlan realize(const net::Topology& topo, Rng& rng) const;
};

}  // namespace dde::fault
