// Gilbert–Elliott bursty-loss process.
//
// The classic two-state Markov channel model: a link is either in a GOOD
// state (low loss) or a BAD/burst state (high loss); state transitions are
// evaluated once per transmitted packet. Mean burst length is
// 1 / p_exit_burst packets, and the stationary loss rate is
//   pi_bad = p_enter / (p_enter + p_exit)
//   loss   = pi_good * loss_good + pi_bad * loss_bad,
// which lets experiments hold the average loss fixed while sweeping
// burstiness — the correlated-loss regime uniform per-packet loss
// (Network::set_loss_rate) cannot express.
//
// The process draws from a caller-owned Rng, so a fault plan's loss
// realization is bit-for-bit reproducible per seed.
#pragma once

#include "common/rng.h"

namespace dde::fault {

/// Parameters of one Gilbert–Elliott channel. Defaults are the identity
/// channel (never enters a burst, lossless) so a zero-initialized plan
/// injects nothing.
struct GilbertElliottParams {
  double p_enter_burst = 0.0;  ///< per-packet GOOD → BAD probability
  double p_exit_burst = 0.25;  ///< per-packet BAD → GOOD (mean burst = 1/p)
  double loss_good = 0.0;      ///< per-packet loss while GOOD
  double loss_bad = 1.0;       ///< per-packet loss while BAD

  [[nodiscard]] constexpr bool enabled() const noexcept {
    return p_enter_burst > 0.0 || loss_good > 0.0;
  }

  /// Stationary (long-run average) loss rate of the channel.
  [[nodiscard]] constexpr double stationary_loss() const noexcept {
    const double denom = p_enter_burst + p_exit_burst;
    if (denom <= 0.0) return loss_good;
    const double pi_bad = p_enter_burst / denom;
    return (1.0 - pi_bad) * loss_good + pi_bad * loss_bad;
  }

  /// Parameters hitting `target_loss` on average with bursts of
  /// `mean_burst_len` packets (loss_bad = 1, loss_good = 0).
  /// mean_burst_len <= 1 degenerates toward independent per-packet loss.
  [[nodiscard]] static GilbertElliottParams for_average_loss(
      double target_loss, double mean_burst_len) noexcept {
    GilbertElliottParams p;
    p.loss_good = 0.0;
    p.loss_bad = 1.0;
    p.p_exit_burst = 1.0 / (mean_burst_len < 1.0 ? 1.0 : mean_burst_len);
    // pi_bad = target_loss  =>  p_enter = p_exit * pi / (1 - pi).
    if (target_loss <= 0.0) {
      p.p_enter_burst = 0.0;
    } else if (target_loss >= 1.0) {
      p.p_enter_burst = 1.0;
      p.p_exit_burst = 0.0;
    } else {
      p.p_enter_burst = p.p_exit_burst * target_loss / (1.0 - target_loss);
    }
    return p;
  }
};

/// The per-link channel state machine. One instance per directed link;
/// step() is called once per transmitted packet.
class GilbertElliott {
 public:
  GilbertElliott() noexcept = default;
  explicit GilbertElliott(GilbertElliottParams params) noexcept
      : params_(params) {}

  [[nodiscard]] const GilbertElliottParams& params() const noexcept {
    return params_;
  }
  [[nodiscard]] bool in_burst() const noexcept { return bad_; }

  /// Advance the channel one packet; returns true if that packet is lost.
  [[nodiscard]] bool step(Rng& rng) noexcept {
    if (bad_) {
      if (rng.chance(params_.p_exit_burst)) bad_ = false;
    } else {
      if (rng.chance(params_.p_enter_burst)) bad_ = true;
    }
    return rng.chance(bad_ ? params_.loss_bad : params_.loss_good);
  }

 private:
  GilbertElliottParams params_;
  bool bad_ = false;
};

}  // namespace dde::fault
