// What a crashed node remembers when it comes back (crash-faithful
// restarts).
//
// PR 1 modeled a node "restart" as flipping the network's node_up flag: a
// crashed node resumed with every soft table — interests, forwarded
// markers, caches, beliefs, dedup state — magically intact. Real churn
// loses that state. RestartPolicy names the three semantics a fault plan
// can apply through the FaultInjector's node hook:
//
//   * ghost — the legacy behaviour: only connectivity is lost; all
//     protocol state survives the outage untouched. The default, so every
//     pre-existing run stays bit-for-bit identical.
//   * cold  — a real power cycle: every piece of volatile protocol state
//     is wiped (tables, caches, beliefs, dedup, queued prefetch work) and
//     in-flight local queries terminate as failed_crash at the instant of
//     the crash.
//   * warm  — persistent object/label caches (e.g. flash-backed) survive;
//     routing-ish soft state (interest/forwarded tables, dedup, prefetch
//     queue) is wiped and in-flight queries crash-fail like cold.
//
// Header-only on purpose: athena includes it to implement the wipe without
// linking dde_fault, and chaos/fault plans carry it as plain data.
#pragma once

#include <string_view>

namespace dde::fault {

enum class RestartPolicy {
  kGhost,  ///< legacy: all state survives (outage masking only)
  kCold,   ///< wipe all volatile state on crash
  kWarm,   ///< caches survive; tables and in-flight work are lost
};

[[nodiscard]] constexpr std::string_view to_string(RestartPolicy p) noexcept {
  switch (p) {
    case RestartPolicy::kGhost: return "ghost";
    case RestartPolicy::kCold: return "cold";
    case RestartPolicy::kWarm: return "warm";
  }
  return "?";
}

/// Parse a policy token; returns false on an unrecognized one.
[[nodiscard]] constexpr bool parse_restart_policy(std::string_view v,
                                                  RestartPolicy* out) noexcept {
  if (v == "ghost") *out = RestartPolicy::kGhost;
  else if (v == "cold") *out = RestartPolicy::kCold;
  else if (v == "warm") *out = RestartPolicy::kWarm;
  else return false;
  return true;
}

}  // namespace dde::fault
