// Seeded chaos schedules and quiesce-point invariants.
//
// A ChaosSpec describes sustained random churn — node crash/restart
// cycles, link flaps, and a bursty-loss floor — as Poisson processes over
// a time window, instead of FaultSpec's single synchronized outage. It is
// realized into an ordinary FaultPlan against a concrete topology, drawing
// only from the caller's Rng: the same (spec, topology, seed) triple
// always yields the same schedule, so every chaos run replays bit-for-bit.
//
// The second half is the invariant checker the chaos harness runs at the
// quiesce point — after the workload has ended and the DES has drained
// every pending event (all leases, interests, and dedup entries past
// expiry). At quiescence a correct protocol holds:
//
//   1. every issued query reached a terminal outcome (resolved, failed,
//      shed, rejected, or failed_crash) — no QueryState leaks;
//   2. every soft table (interest, forwarded markers, flood dedup) has
//      drained to empty — no entry can outlive its lease, including
//      entries pointing through crashed-and-wiped epochs.
//
// The checker consumes flat per-node probes (counts) so dde_fault never
// links the protocol layer; scenarios fill the probes from their nodes.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/sim_time.h"
#include "fault/fault_plan.h"

namespace dde::fault {

/// Declarative churn description, realized into a FaultPlan.
struct ChaosSpec {
  /// Fault activity window. Crashes/flaps begin in [window_start,
  /// window_end); repairs may land after window_end.
  SimTime window_start = SimTime::zero();
  SimTime window_end = SimTime::zero();

  /// Node churn: each node independently crashes as a Poisson process at
  /// this rate (expected crashes per simulated minute, while up). 0 = off.
  double crashes_per_node_min = 0.0;
  SimTime min_downtime = SimTime::seconds(10);
  SimTime max_downtime = SimTime::seconds(40);
  /// Never crash node 0 (scenario herald/origin role), matching
  /// FaultSpec::realize.
  bool spare_node0 = true;

  /// Link flaps: each undirected link pair independently flaps (both
  /// directions down together) at this rate per simulated minute. 0 = off.
  double flaps_per_link_min = 0.0;
  SimTime min_flap = SimTime::seconds(2);
  SimTime max_flap = SimTime::seconds(15);

  /// Bursty-loss floor on every link for the whole run (identity = off).
  GilbertElliottParams burst;

  /// Restart semantics for the generated node crashes.
  RestartPolicy restart_policy = RestartPolicy::kGhost;

  [[nodiscard]] bool empty() const noexcept {
    return crashes_per_node_min <= 0.0 && flaps_per_link_min <= 0.0 &&
           !burst.enabled();
  }
};

/// Realize `spec` into a concrete schedule. Deterministic given `rng`'s
/// state; an empty spec yields an empty plan (still carrying the policy).
[[nodiscard]] FaultPlan realize_chaos(const ChaosSpec& spec,
                                      const net::Topology& topo, Rng& rng);

/// Flat snapshot of one node's residual protocol state at the quiesce
/// point (filled by the scenario from AthenaNode accessors).
struct NodeStateProbe {
  std::uint64_t node = 0;
  std::uint64_t active_queries = 0;     ///< issued, not yet terminal
  std::uint64_t interest_entries = 0;   ///< interest-table entries held
  std::uint64_t forwarded_entries = 0;  ///< aggregation markers held
  std::uint64_t dedup_entries = 0;      ///< flood-dedup entries held
};

/// Outcome of a quiesce-point check: human-readable violations, one line
/// per broken invariant per node. Empty = the run quiesced cleanly.
struct ChaosInvariantReport {
  std::vector<std::string> violations;
  [[nodiscard]] bool ok() const noexcept { return violations.empty(); }
};

/// Check the quiesce-point invariants over every node's probe (see file
/// header). Pure; safe to call on any probe set including hand-built
/// fixtures.
[[nodiscard]] ChaosInvariantReport check_quiesce_invariants(
    const std::vector<NodeStateProbe>& probes);

/// Order-sensitive FNV-1a fold over 64-bit words: the replay-determinism
/// digest. Two runs of the same seed must produce equal digests over their
/// observable outcomes (metrics, traffic, per-query records); a mismatch
/// means hidden nondeterminism.
class ReplayDigest {
 public:
  void fold(std::uint64_t v) noexcept {
    for (int i = 0; i < 8; ++i) {
      h_ ^= (v >> (8 * i)) & 0xffULL;
      h_ *= 1099511628211ULL;
    }
  }
  /// Fold a double by bit pattern (exact, not rounded).
  void fold(double v) noexcept {
    std::uint64_t bits = 0;
    static_assert(sizeof bits == sizeof v);
    __builtin_memcpy(&bits, &v, sizeof bits);
    fold(bits);
  }
  [[nodiscard]] std::uint64_t value() const noexcept { return h_; }

 private:
  std::uint64_t h_ = 14695981039346656037ULL;
};

}  // namespace dde::fault
