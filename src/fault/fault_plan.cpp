#include "fault/fault_plan.h"

namespace dde::fault {

void FaultPlan::add_link_outage(LinkId link, SimTime down_at, SimTime up_at) {
  events.push_back(
      FaultEvent{FaultEvent::Kind::kLinkDown, down_at, link.value()});
  if (up_at > SimTime::zero()) {
    events.push_back(
        FaultEvent{FaultEvent::Kind::kLinkUp, up_at, link.value()});
  }
}

void FaultPlan::add_node_crash(NodeId node, SimTime down_at, SimTime up_at) {
  events.push_back(
      FaultEvent{FaultEvent::Kind::kNodeDown, down_at, node.value()});
  if (up_at > SimTime::zero()) {
    events.push_back(
        FaultEvent{FaultEvent::Kind::kNodeUp, up_at, node.value()});
  }
}

FaultPlan FaultSpec::realize(const net::Topology& topo, Rng& rng) const {
  FaultPlan plan;
  plan.burst = burst;
  plan.events = events;

  if (link_outage_fraction > 0.0) {
    const SimTime up = outage_duration > SimTime::zero()
                           ? outage_at + outage_duration
                           : SimTime::zero();
    // Sample undirected pairs once (canonical direction from < to) and
    // down both directed halves together.
    for (const net::Link& l : topo.links()) {
      if (l.from.value() >= l.to.value()) continue;
      if (!rng.chance(link_outage_fraction)) continue;
      plan.add_link_outage(l.id, outage_at, up);
      if (const auto back = topo.link_between(l.to, l.from)) {
        plan.add_link_outage(*back, outage_at, up);
      }
    }
  }

  if (node_crash_fraction > 0.0) {
    const SimTime up = crash_duration > SimTime::zero()
                           ? crash_at + crash_duration
                           : SimTime::zero();
    for (std::size_t n = 1; n < topo.node_count(); ++n) {  // spare node 0
      if (!rng.chance(node_crash_fraction)) continue;
      plan.add_node_crash(NodeId{n}, crash_at, up);
    }
  }
  return plan;
}

}  // namespace dde::fault
