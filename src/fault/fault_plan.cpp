#include "fault/fault_plan.h"

#include <algorithm>

#include "common/contracts.h"

namespace dde::fault {

void FaultPlan::add_link_outage(LinkId link, SimTime down_at, SimTime up_at) {
  // An up event at or before the down event sorts first (or ties and ties
  // break FIFO), so the "repair" runs as a no-op and the link then stays
  // down forever — almost certainly not what a finite outage meant. Clamp
  // the whole outage to a no-op instead of silently downing the subject.
  DDE_CLAMP_OR(up_at == SimTime::zero() || up_at > down_at, return,
               "add_link_outage: up_at <= down_at would leave the link down "
               "forever; outage dropped");
  events.push_back(
      FaultEvent{FaultEvent::Kind::kLinkDown, down_at, link.value()});
  if (up_at > SimTime::zero()) {
    events.push_back(
        FaultEvent{FaultEvent::Kind::kLinkUp, up_at, link.value()});
  }
}

void FaultPlan::add_node_crash(NodeId node, SimTime down_at, SimTime up_at) {
  DDE_CLAMP_OR(up_at == SimTime::zero() || up_at > down_at, return,
               "add_node_crash: up_at <= down_at would leave the node down "
               "forever; crash dropped");
  events.push_back(
      FaultEvent{FaultEvent::Kind::kNodeDown, down_at, node.value()});
  if (up_at > SimTime::zero()) {
    events.push_back(
        FaultEvent{FaultEvent::Kind::kNodeUp, up_at, node.value()});
  }
}

FaultPlan FaultSpec::realize(const net::Topology& topo, Rng& rng) const {
  FaultPlan plan;
  plan.burst = burst;
  plan.restart_policy = restart_policy;
  plan.events = events;

  // Fractions are probabilities; out-of-range values would bias rng.chance
  // in surprising ways (or never fire). Clamp into [0, 1].
  double link_fraction = link_outage_fraction;
  DDE_CLAMP_OR(link_fraction >= 0.0 && link_fraction <= 1.0,
               link_fraction = std::clamp(link_fraction, 0.0, 1.0),
               "FaultSpec::realize: link_outage_fraction outside [0,1]; "
               "clamped");
  double crash_fraction = node_crash_fraction;
  DDE_CLAMP_OR(crash_fraction >= 0.0 && crash_fraction <= 1.0,
               crash_fraction = std::clamp(crash_fraction, 0.0, 1.0),
               "FaultSpec::realize: node_crash_fraction outside [0,1]; "
               "clamped");

  if (link_fraction > 0.0) {
    const SimTime up = outage_duration > SimTime::zero()
                           ? outage_at + outage_duration
                           : SimTime::zero();
    // Sample undirected pairs once (canonical direction from < to) and
    // down both directed halves together.
    for (const net::Link& l : topo.links()) {
      if (l.from.value() >= l.to.value()) continue;
      if (!rng.chance(link_fraction)) continue;
      plan.add_link_outage(l.id, outage_at, up);
      if (const auto back = topo.link_between(l.to, l.from)) {
        plan.add_link_outage(*back, outage_at, up);
      }
    }
  }

  if (crash_fraction > 0.0) {
    const SimTime up = crash_duration > SimTime::zero()
                           ? crash_at + crash_duration
                           : SimTime::zero();
    for (std::size_t n = 1; n < topo.node_count(); ++n) {  // spare node 0
      if (!rng.chance(crash_fraction)) continue;
      plan.add_node_crash(NodeId{n}, crash_at, up);
    }
  }
  return plan;
}

}  // namespace dde::fault
