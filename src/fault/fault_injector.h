// Applies a FaultPlan to a live run: schedules the plan's events on the
// DES kernel, drives the network's link/node state, recomputes routes on
// every topology change, and runs the per-link Gilbert–Elliott bursty-loss
// processes through Network's loss-model hook.
//
// The injector is the only component that mutates the topology after
// setup; protocol nodes keep reading next_hop() through the network and
// transparently follow the recomputed routes — the "reroute" half of the
// recovery story (the retry/failover half lives in athena::AthenaNode).
//
// Determinism: all randomness (the burst processes) comes from one Rng
// seeded at construction; event application order is fixed by the DES
// (time, insertion) order, so a given (plan, seed) pair replays the same
// failure trajectory bit-for-bit. An empty plan installs nothing at all.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "common/mutex.h"
#include "common/rng.h"
#include "common/thread_annotations.h"
#include "des/simulator.h"
#include "fault/fault_plan.h"
#include "fault/gilbert_elliott.h"
#include "net/network.h"
#include "net/topology.h"

namespace dde::fault {

/// What the injector actually did to the run.
struct FaultStats {
  std::uint64_t link_downs = 0;
  std::uint64_t link_ups = 0;
  std::uint64_t node_downs = 0;
  std::uint64_t node_ups = 0;
  /// Route-table recomputations triggered by topology-change events
  /// (consecutive same-time events are coalesced into one).
  std::uint64_t reroutes = 0;
  /// Packets dropped by the burst (Gilbert–Elliott) processes.
  std::uint64_t burst_drops = 0;
};

class FaultInjector {
 public:
  /// Schedules the whole plan immediately. `topo` must be the topology
  /// `net` was built over (the injector recomputes its routes) and both
  /// must outlive the injector. An empty plan is a no-op: no events, no
  /// loss model, no route recomputation.
  FaultInjector(des::Simulator& sim, net::Topology& topo, net::Network& net,
                FaultPlan plan, std::uint64_t seed);

  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;
  ~FaultInjector();

  [[nodiscard]] const FaultStats& stats() const noexcept { return stats_; }
  [[nodiscard]] const FaultPlan& plan() const noexcept { return plan_; }

  /// Crash/restart notification for the protocol layer: called with
  /// (node, up=false) when a node actually goes down and (node, up=true)
  /// when it actually comes back — never for redundant double-crash /
  /// double-restart events (those are idempotent no-ops). The hook runs at
  /// the event's DES instant, after the network's up flag has been
  /// flipped, so a restart hook may send packets immediately. Kept as a
  /// plain callback so dde_fault never links the protocol layer; the
  /// scenario wires it to AthenaNode::on_crash/on_restart with the plan's
  /// RestartPolicy.
  using NodeHook = std::function<void(NodeId node, bool up)>;
  void set_node_hook(NodeHook hook) {
    owner_.assert_held();
    node_hook_ = std::move(hook);
  }

 private:
  void apply(const FaultEvent& ev);
  /// Schedule one route recomputation at the current instant; multiple
  /// same-time topology changes coalesce into a single recompute.
  void mark_routes_dirty();
  /// Recompute routes from the current admin state (a link participates
  /// only if it and both endpoints are up).
  void recompute_routes();

  des::Simulator& sim_;
  net::Topology& topo_;
  net::Network& net_;
  FaultPlan plan_;
  Rng rng_;
  std::vector<char> link_admin_up_;
  std::vector<char> node_up_;
  std::vector<GilbertElliott> channels_;  ///< per directed link
  FaultStats stats_;
  /// The injector is confined to its run's (shard's) owning thread, like
  /// the obs sinks; the hook is the one member that re-enters the protocol
  /// layer, so it is capability-guarded to pin down every install/invoke
  /// site before PDES introduces real shard hand-off.
  common::SingleOwner owner_;
  NodeHook node_hook_ DDE_GUARDED_BY(owner_);
  bool reroute_pending_ = false;
  bool installed_loss_model_ = false;
};

}  // namespace dde::fault
