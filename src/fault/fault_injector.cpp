#include "fault/fault_injector.h"

#include "common/contracts.h"

namespace dde::fault {

FaultInjector::FaultInjector(des::Simulator& sim, net::Topology& topo,
                             net::Network& net, FaultPlan plan,
                             std::uint64_t seed)
    : sim_(sim),
      topo_(topo),
      net_(net),
      plan_(std::move(plan)),
      rng_(seed),
      link_admin_up_(topo.link_count(), 1),
      node_up_(topo.node_count(), 1) {
  if (plan_.burst.enabled()) {
    channels_.assign(topo_.link_count(), GilbertElliott(plan_.burst));
    net_.set_loss_model([this](LinkId link) {
      const bool drop = channels_[link.value()].step(rng_);
      if (drop) ++stats_.burst_drops;
      return drop;
    });
    installed_loss_model_ = true;
  }
  for (const FaultEvent& ev : plan_.events) {
    sim_.schedule_at(ev.at, [this, ev] { apply(ev); });
  }
}

FaultInjector::~FaultInjector() {
  // The loss model captures `this`; never leave it dangling.
  if (installed_loss_model_) net_.set_loss_model(nullptr);
}

void FaultInjector::apply(const FaultEvent& ev) {
  owner_.assert_held();
  switch (ev.kind) {
    case FaultEvent::Kind::kLinkDown:
      DDE_CLAMP_OR(ev.subject < link_admin_up_.size(), return,
                   "fault plan names an unknown link; event ignored");
      if (!link_admin_up_[ev.subject]) return;  // already down
      link_admin_up_[ev.subject] = 0;
      net_.set_link_up(LinkId{ev.subject}, false);
      ++stats_.link_downs;
      break;
    case FaultEvent::Kind::kLinkUp:
      DDE_CLAMP_OR(ev.subject < link_admin_up_.size(), return,
                   "fault plan names an unknown link; event ignored");
      if (link_admin_up_[ev.subject]) return;
      link_admin_up_[ev.subject] = 1;
      net_.set_link_up(LinkId{ev.subject}, true);
      ++stats_.link_ups;
      break;
    case FaultEvent::Kind::kNodeDown:
      DDE_CLAMP_OR(ev.subject < node_up_.size(), return,
                   "fault plan names an unknown node; event ignored");
      if (!node_up_[ev.subject]) return;
      node_up_[ev.subject] = 0;
      net_.set_node_up(NodeId{ev.subject}, false);
      ++stats_.node_downs;
      if (node_hook_) node_hook_(NodeId{ev.subject}, /*up=*/false);
      break;
    case FaultEvent::Kind::kNodeUp:
      DDE_CLAMP_OR(ev.subject < node_up_.size(), return,
                   "fault plan names an unknown node; event ignored");
      if (node_up_[ev.subject]) return;
      node_up_[ev.subject] = 1;
      net_.set_node_up(NodeId{ev.subject}, true);
      ++stats_.node_ups;
      if (node_hook_) node_hook_(NodeId{ev.subject}, /*up=*/true);
      break;
  }
  mark_routes_dirty();
}

void FaultInjector::mark_routes_dirty() {
  if (reroute_pending_) return;
  reroute_pending_ = true;
  // Runs after every other event scheduled at this same instant (FIFO tie
  // break), so a batch of simultaneous failures recomputes routes once.
  sim_.schedule_after(SimTime::zero(), [this] {
    reroute_pending_ = false;
    recompute_routes();
  });
}

void FaultInjector::recompute_routes() {
  std::vector<char> enabled(topo_.link_count(), 0);
  for (const net::Link& l : topo_.links()) {
    enabled[l.id.value()] = link_admin_up_[l.id.value()] &&
                            node_up_[l.from.value()] && node_up_[l.to.value()];
  }
  topo_.compute_routes(enabled);
  ++stats_.reroutes;
}

}  // namespace dde::fault
