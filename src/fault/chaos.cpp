#include "fault/chaos.h"

#include <algorithm>

#include "common/contracts.h"

namespace dde::fault {
namespace {

/// Append one subject's Poisson on/off process to `plan` over the spec
/// window: exponential up-times at `rate_per_min`, uniform down-times in
/// [min_down, max_down]. `add` schedules one outage (down_at, up_at).
template <typename AddFn>
void churn_process(const ChaosSpec& spec, double rate_per_min,
                   SimTime min_down, SimTime max_down, Rng& rng, AddFn add) {
  const double mean_up_s = 60.0 / rate_per_min;
  SimTime t = spec.window_start +
              SimTime::seconds(rng.exponential(mean_up_s));
  while (t < spec.window_end) {
    const SimTime down = SimTime::seconds(
        rng.uniform(min_down.to_seconds(), max_down.to_seconds()));
    const SimTime up_at = t + std::max(down, SimTime::millis(1));
    add(t, up_at);
    // Next failure begins an exponential up-time after the repair.
    t = up_at + SimTime::seconds(rng.exponential(mean_up_s));
  }
}

}  // namespace

FaultPlan realize_chaos(const ChaosSpec& spec, const net::Topology& topo,
                        Rng& rng) {
  FaultPlan plan;
  plan.burst = spec.burst;
  plan.restart_policy = spec.restart_policy;
  if (spec.empty() || spec.window_end <= spec.window_start) return plan;

  SimTime min_down = spec.min_downtime;
  SimTime max_down = spec.max_downtime;
  DDE_CLAMP_OR(min_down <= max_down, max_down = min_down,
               "realize_chaos: min_downtime > max_downtime; clamped");
  SimTime min_flap = spec.min_flap;
  SimTime max_flap = spec.max_flap;
  DDE_CLAMP_OR(min_flap <= max_flap, max_flap = min_flap,
               "realize_chaos: min_flap > max_flap; clamped");

  // Node churn, node-id order (deterministic given rng state).
  if (spec.crashes_per_node_min > 0.0) {
    const std::size_t first = spec.spare_node0 ? 1 : 0;
    for (std::size_t n = first; n < topo.node_count(); ++n) {
      churn_process(spec, spec.crashes_per_node_min, min_down, max_down, rng,
                    [&](SimTime at, SimTime up) {
                      plan.add_node_crash(NodeId{n}, at, up);
                    });
    }
  }

  // Link flaps over undirected pairs (canonical from < to), both directed
  // halves down/up together — same pairing convention as FaultSpec.
  if (spec.flaps_per_link_min > 0.0) {
    for (const net::Link& l : topo.links()) {
      if (l.from.value() >= l.to.value()) continue;
      const auto back = topo.link_between(l.to, l.from);
      churn_process(spec, spec.flaps_per_link_min, min_flap, max_flap, rng,
                    [&](SimTime at, SimTime up) {
                      plan.add_link_outage(l.id, at, up);
                      if (back) plan.add_link_outage(*back, at, up);
                    });
    }
  }
  return plan;
}

ChaosInvariantReport check_quiesce_invariants(
    const std::vector<NodeStateProbe>& probes) {
  ChaosInvariantReport report;
  auto flag = [&](const NodeStateProbe& p, const char* what,
                  std::uint64_t count) {
    if (count == 0) return;
    report.violations.push_back("node " + std::to_string(p.node) + ": " +
                                std::to_string(count) + " " + what +
                                " at quiescence");
  };
  for (const NodeStateProbe& p : probes) {
    flag(p, "non-terminal queries", p.active_queries);
    flag(p, "interest-table entries", p.interest_entries);
    flag(p, "forwarded (aggregation) markers", p.forwarded_entries);
    flag(p, "flood-dedup entries", p.dedup_entries);
  }
  return report;
}

}  // namespace dde::fault
