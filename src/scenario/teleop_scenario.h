// Vehicular teleoperation over lossy multi-homed cellular links
// (Sec. IV-A: "consider a teleoperated vehicle ... critical decisions must
// be made within tight deadlines from data streamed over unreliable
// links").
//
// Remote vehicles drive GPS-like waypoint trajectories on the city grid
// (world::GridMobility). Each vehicle is multi-homed: it holds parallel
// cellular uplinks to K carrier gateways, every one an independently
// bursty Gilbert–Elliott loss channel whose quality also depends on which
// grid cell the vehicle currently occupies (coverage map). A teleoperation
// center issues critical situation-assessment decisions with tight
// deadlines; the Athena nodes replicate the critical request/reply traffic
// across the parallel links (multipath_redundancy) and the receiver
// deduplicates replicas (net::DedupTable), so one clean copy suffices.
#pragma once

#include <cstdint>
#include <vector>

#include "athena/config.h"
#include "athena/metrics.h"
#include "common/sim_time.h"
#include "fault/chaos.h"
#include "fault/fault_injector.h"
#include "fault/fault_plan.h"

namespace dde::scenario {

struct TeleopScenarioConfig {
  // City grid the vehicles drive on.
  int grid_width = 8;
  int grid_height = 8;

  // Fleet and carriers.
  std::size_t vehicle_count = 6;
  std::size_t carrier_count = 3;   ///< cellular gateways (multi-homing degree)
  double vehicle_speed = 4.0;      ///< grid units per minute

  // Cellular links (vehicle ↔ gateway) and the wired core (gateway ↔ op).
  double cell_bandwidth_bps = 2e6;
  SimTime cell_latency = SimTime::millis(40);
  double core_bandwidth_bps = 5e7;
  SimTime core_latency = SimTime::millis(5);

  /// Average per-packet loss on a cellular link while in coverage, realized
  /// as a Gilbert–Elliott chain with `mean_burst_len` expected bad-state
  /// run length (1 ≈ independent loss; larger = burstier).
  double cell_loss = 0.05;
  double mean_burst_len = 8.0;
  /// Probability a carrier covers a given grid cell (static per run). Out
  /// of coverage, the link's loss is `gap_loss` instead of `cell_loss`.
  double coverage = 0.85;
  double gap_loss = 0.9;

  // Teleoperation workload: the operator assesses every vehicle each
  // period; the assessment is a critical decision over that vehicle's
  // current camera evidence with a tight deadline.
  SimTime decision_period = SimTime::seconds(15);
  SimTime query_deadline = SimTime::seconds(5);
  SimTime object_validity = SimTime::seconds(4);  ///< forces a fresh fetch
  std::uint64_t min_object_bytes = 20 * 1024;
  std::uint64_t max_object_bytes = 60 * 1024;
  int critical_priority = 1;

  /// How many parallel copies of critical traffic to send (1 = no
  /// redundancy; K > 1 fans out across K−1 alternate next hops).
  std::size_t multipath_redundancy = 2;

  /// Structured failure injection (src/fault): gateway/vehicle crashes and
  /// core-link outages composed with mobility + multipath redundancy. The
  /// burst channel is NOT honored here — this scenario owns the loss model
  /// (the per-carrier cellular Gilbert–Elliott chains above); a configured
  /// fault/chaos burst is clamped off with a log. Node 0 (the operator) is
  /// never crashed. Empty specs change nothing.
  fault::FaultSpec faults;
  /// Sustained seeded churn merged into the fault plan (see `faults`).
  /// When non-empty, its restart policy governs the whole merged plan.
  fault::ChaosSpec chaos;
  /// Run the crash-recovery protocol after non-ghost restarts.
  bool fault_crash_recovery = true;
  /// Cap on the interest-aggregation marker lease (zero = off).
  SimTime recovery_lease = SimTime::zero();

  SimTime horizon = SimTime::seconds(600);
  athena::Scheme scheme = athena::Scheme::kLvfl;
  std::uint64_t seed = 1;
};

struct TeleopScenarioResult {
  athena::AthenaMetrics metrics;
  /// What the fault injector did (all-zero when faults/chaos were empty).
  fault::FaultStats faults;
  std::uint64_t queries_issued = 0;   ///< operator decisions launched
  std::uint64_t deadline_hits = 0;    ///< resolved within the deadline
  std::uint64_t events = 0;           ///< simulator events executed
  std::uint64_t bytes_sent = 0;       ///< network bytes (incl. replicas)
  std::uint64_t replica_copies = 0;      ///< redundant copies transmitted
  std::uint64_t replica_duplicates = 0;  ///< copies suppressed by dedup
  /// Seconds from issue to decision, per deadline hit.
  std::vector<double> latency_s;

  [[nodiscard]] double deadline_hit_rate() const noexcept {
    return queries_issued == 0
               ? 0.0
               : static_cast<double>(deadline_hits) /
                     static_cast<double>(queries_issued);
  }
};

/// Run the teleoperation scenario to the horizon.
[[nodiscard]] TeleopScenarioResult run_teleop_scenario(
    const TeleopScenarioConfig& config);

/// Register the "teleop" plugin with the scenario registry (idempotent).
void register_teleop_scenario();

}  // namespace dde::scenario
