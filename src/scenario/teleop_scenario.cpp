#include "scenario/teleop_scenario.h"

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "athena/directory.h"
#include "athena/node.h"
#include "common/contracts.h"
#include "common/rng.h"
#include "des/periodic.h"
#include "des/simulator.h"
#include "fault/gilbert_elliott.h"
#include "naming/name.h"
#include "net/network.h"
#include "net/topology.h"
#include "scenario/runner.h"
#include "scenario/spec.h"
#include "world/dynamics.h"
#include "world/grid_map.h"
#include "world/mobility.h"
#include "world/sensor_field.h"

namespace dde::scenario {
namespace {

/// One in-flight teleoperation run.
///
/// Node layout: node 0 is the teleoperation center (operator); nodes
/// 1..carrier_count are carrier gateways on a lossless wired core; nodes
/// carrier_count+1.. are the vehicles, each multi-homed with a lossy
/// cellular link to every gateway. Vehicle v hosts sensor v (its camera),
/// whose evidence resolves label v (the vehicle's situation) — so every
/// operator decision about vehicle v pulls fresh evidence over the
/// cellular links, within a deadline shorter than the retry timeout:
/// single-path loss means a missed decision, which is exactly the regime
/// multipath redundancy targets.
class TeleopRun {
 public:
  explicit TeleopRun(const TeleopScenarioConfig& config);
  TeleopRun(const TeleopRun&) = delete;
  TeleopRun& operator=(const TeleopRun&) = delete;

  void advance(SimTime until) { sim_.run_until(until); }

  /// Assemble the result for the run advanced so far (idempotent).
  [[nodiscard]] TeleopScenarioResult collect();

 private:
  struct CellularLink {
    std::size_t vehicle = 0;  ///< fleet index (not node id)
    std::size_t carrier = 0;
    std::size_t channel = 0;  ///< index into channels_
  };

  [[nodiscard]] NodeId vehicle_node(std::size_t v) const {
    return NodeId{1 + cfg_.carrier_count + v};
  }
  [[nodiscard]] NodeId gateway_node(std::size_t c) const {
    return NodeId{1 + c};
  }

  TeleopScenarioConfig cfg_;
  Rng rng_;
  std::optional<world::GridMap> map_;
  std::optional<world::ViabilityProcess> truth_;
  std::optional<world::SensorField> field_;
  std::optional<world::GridMobility> mobility_;
  /// carrier_covers_[c][cell.y * width + cell.x]: static coverage map.
  std::vector<std::vector<char>> carrier_covers_;
  net::Topology topo_;
  /// Directed cellular link id → its loss-channel binding.
  std::map<std::uint64_t, CellularLink> cellular_;
  std::vector<fault::GilbertElliott> channels_;
  Rng loss_rng_;
  des::Simulator sim_;
  std::optional<net::Network> network_;
  std::optional<fault::FaultInjector> injector_;
  std::optional<athena::Directory> directory_;
  athena::AthenaMetrics metrics_;
  std::vector<std::unique_ptr<athena::AthenaNode>> nodes_;
  std::uint64_t issued_ = 0;
  std::optional<des::PeriodicTask> ticker_;
};

TeleopRun::TeleopRun(const TeleopScenarioConfig& config)
    : cfg_(config), rng_(cfg_.seed), loss_rng_(cfg_.seed * 104729 + 11) {
  const TeleopScenarioConfig& cfg = cfg_;
  Rng& rng = rng_;

  DDE_CHECK(cfg.vehicle_count > 0, "teleop scenario: vehicle_count == 0");
  DDE_CHECK(cfg.carrier_count > 0, "teleop scenario: carrier_count == 0");
  DDE_CHECK(cfg.decision_period > SimTime::zero(),
            "teleop scenario: decision_period must be > 0");
  DDE_CHECK(cfg.query_deadline > SimTime::zero(),
            "teleop scenario: query_deadline must be > 0");
  std::size_t redundancy = cfg.multipath_redundancy;
  DDE_CLAMP_OR(redundancy >= 1, redundancy = 1,
               "teleop scenario: multipath_redundancy must be >= 1; "
               "clamped to 1 (single path)");

  // --- world: city grid, ground truth, vehicle cameras, trajectories ------
  map_.emplace(cfg.grid_width, cfg.grid_height);
  world::GridMap& map = *map_;
  DDE_CHECK(cfg.vehicle_count <= map.segment_count(),
            "teleop scenario: more vehicles than situation segments");
  std::vector<world::SegmentDynamics> dyn(
      map.segment_count(),
      world::SegmentDynamics{0.5, SimTime::seconds(120)});
  truth_.emplace(std::move(dyn), rng.fork());
  world::ViabilityProcess& truth = *truth_;

  // Vehicle v's camera is sensor v: it evidences label v (the vehicle's
  // situation, modeled on grid segment v). Validity is shorter than the
  // decision period, so every assessment needs a fresh capture.
  std::vector<world::SensorInfo> sensors;
  sensors.reserve(cfg.vehicle_count);
  for (std::size_t v = 0; v < cfg.vehicle_count; ++v) {
    world::SensorInfo s;
    s.id = SourceId{v};
    s.name = naming::Name::parse("/teleop/cam" + std::to_string(v));
    s.covers = {SegmentId{v}};
    s.object_bytes = static_cast<std::uint64_t>(
        rng.between(static_cast<std::int64_t>(cfg.min_object_bytes),
                    static_cast<std::int64_t>(cfg.max_object_bytes)));
    s.validity = cfg.object_validity;
    s.rate = world::ChangeRate::kFast;
    sensors.push_back(std::move(s));
  }
  field_.emplace(map, truth, std::move(sensors));
  world::SensorField& field = *field_;

  mobility_.emplace(map, cfg.vehicle_count, cfg.vehicle_speed / 60.0, rng);

  // Static per-carrier cell coverage (who has signal where).
  carrier_covers_.resize(cfg.carrier_count);
  const std::size_t cell_count =
      static_cast<std::size_t>(map.width()) *
      static_cast<std::size_t>(map.height());
  for (std::size_t c = 0; c < cfg.carrier_count; ++c) {
    carrier_covers_[c].resize(cell_count);
    for (std::size_t i = 0; i < cell_count; ++i) {
      carrier_covers_[c][i] = rng.chance(cfg.coverage) ? 1 : 0;
    }
  }

  // --- network: wired core + multi-homed cellular links -------------------
  const NodeId op = topo_.add_node();  // node 0: the teleoperation center
  DDE_CHECK(op.value() == 0, "teleop scenario: operator must be node 0");
  for (std::size_t c = 0; c < cfg.carrier_count; ++c) {
    const NodeId gw = topo_.add_node();
    topo_.add_link(op, gw, cfg.core_bandwidth_bps, cfg.core_latency);
  }
  const auto ge =
      fault::GilbertElliottParams::for_average_loss(cfg.cell_loss,
                                                    cfg.mean_burst_len);
  for (std::size_t v = 0; v < cfg.vehicle_count; ++v) {
    const NodeId vn = topo_.add_node();
    DDE_CHECK(vn == vehicle_node(v), "teleop scenario: node layout broken");
    for (std::size_t c = 0; c < cfg.carrier_count; ++c) {
      const auto [up, down] = topo_.add_link(vn, gateway_node(c),
                                             cfg.cell_bandwidth_bps,
                                             cfg.cell_latency);
      // Each direction is its own independently-evolving channel.
      cellular_[up.value()] = CellularLink{v, c, channels_.size()};
      channels_.emplace_back(ge);
      cellular_[down.value()] = CellularLink{v, c, channels_.size()};
      channels_.emplace_back(ge);
    }
  }
  topo_.compute_routes();

  network_.emplace(sim_, topo_);
  net::Network& network = *network_;
  network.set_loss_model([this](LinkId link) {
    const auto it = cellular_.find(link.value());
    if (it == cellular_.end()) return false;  // wired core: lossless
    const CellularLink& cl = it->second;
    const world::GridCell cell = mobility_->cell_at(cl.vehicle, sim_.now());
    const std::size_t idx =
        static_cast<std::size_t>(cell.y) *
            static_cast<std::size_t>(map_->width()) +
        static_cast<std::size_t>(cell.x);
    if (carrier_covers_[cl.carrier][idx] == 0) {
      // Out of this carrier's coverage: the link is as good as dead.
      return loss_rng_.chance(cfg_.gap_loss);
    }
    return channels_[cl.channel].step(loss_rng_);
  });

  // --- structured fault injection ------------------------------------------
  // Gateway/vehicle crashes and link outages compose with mobility and
  // multipath redundancy. This scenario owns the network's loss model (the
  // cellular chains above), so a configured burst channel — which the
  // injector would install over it — is clamped off instead. RNG streams
  // mirror the route scenario's: enabling faults or chaos never perturbs
  // world/workload generation.
  if (!cfg.faults.empty() || !cfg.chaos.empty()) {
    Rng fault_rng(cfg.seed * 6271 + 17);
    fault::FaultPlan plan = cfg.faults.realize(topo_, fault_rng);
    if (!cfg.chaos.empty()) {
      Rng chaos_rng(cfg.seed * 15485863 + 19);
      fault::FaultPlan churn = fault::realize_chaos(cfg.chaos, topo_,
                                                    chaos_rng);
      plan.events.insert(plan.events.end(), churn.events.begin(),
                         churn.events.end());
      plan.restart_policy = churn.restart_policy;
    }
    DDE_CLAMP_OR(!plan.burst.enabled(),
                 plan.burst = fault::GilbertElliottParams{},
                 "teleop scenario owns the loss model; the fault burst "
                 "channel is disabled");
    injector_.emplace(sim_, topo_, *network_, std::move(plan),
                      cfg.seed * 104729 + 7);
  }

  // --- directory / nodes ---------------------------------------------------
  std::unordered_map<LabelId, double> p_true;
  std::vector<NodeId> host_of_sensor;
  for (std::size_t v = 0; v < cfg.vehicle_count; ++v) {
    p_true[LabelId{v}] = truth.params(SegmentId{v}).p_viable;
    host_of_sensor.push_back(vehicle_node(v));
  }
  directory_.emplace(topo_, field, std::move(host_of_sensor),
                     std::move(p_true));

  athena::AthenaConfig node_cfg = athena::config_for(cfg.scheme);
  node_cfg.multipath_redundancy = redundancy;
  node_cfg.crash_recovery = cfg.fault_crash_recovery;
  node_cfg.recovery_lease = cfg.recovery_lease;
  const std::size_t node_count = 1 + cfg.carrier_count + cfg.vehicle_count;
  nodes_.reserve(node_count);
  for (std::size_t i = 0; i < node_count; ++i) {
    nodes_.push_back(std::make_unique<athena::AthenaNode>(
        NodeId{i}, network, *directory_, field, node_cfg, metrics_));
  }

  // Crash-faithful restarts (no-op hooks under the default ghost policy).
  if (injector_) {
    const fault::RestartPolicy policy = injector_->plan().restart_policy;
    injector_->set_node_hook([this, policy](NodeId node, bool up) {
      if (node.value() >= nodes_.size()) return;
      if (up) {
        nodes_[node.value()]->on_restart(policy);
      } else {
        nodes_[node.value()]->on_crash(policy);
      }
    });
  }

  // --- workload: the operator assesses every vehicle each period ----------
  ticker_.emplace(sim_, cfg.decision_period, [this](std::uint64_t) {
    for (std::size_t v = 0; v < cfg_.vehicle_count; ++v) {
      decision::DnfExpr expr;
      decision::Conjunction c;
      c.terms.push_back(decision::Term{LabelId{v}, false});
      expr.add_disjunct(std::move(c));
      nodes_[0]->query_init(std::move(expr), cfg_.query_deadline,
                            cfg_.critical_priority);
      ++issued_;
    }
  });
  ticker_->start();
}

TeleopScenarioResult TeleopRun::collect() {
  ticker_->stop();

  TeleopScenarioResult result;
  result.metrics = metrics_;
  result.metrics.link_down_drops = network_->stats().link_down_drops;
  if (injector_) {
    result.faults = injector_->stats();
    result.metrics.reroutes = injector_->stats().reroutes;
  }
  result.queries_issued = issued_;
  result.deadline_hits = metrics_.queries_resolved;
  result.events = sim_.executed_events();
  result.bytes_sent = network_->stats().bytes;
  result.replica_copies = metrics_.replica_copies;
  result.replica_duplicates = metrics_.replica_duplicates;
  for (const auto& rec : nodes_[0]->records()) {
    if (rec.success) {
      result.latency_s.push_back(
          (rec.finished_at - rec.issued_at).to_seconds());
    }
  }
  return result;
}

// --- the "teleop" plugin ---------------------------------------------------

bool parse_scheme(const std::string& v, athena::Scheme* out) {
  if (v == "cmp") *out = athena::Scheme::kCmp;
  else if (v == "slt") *out = athena::Scheme::kSlt;
  else if (v == "lcf") *out = athena::Scheme::kLcf;
  else if (v == "lvf") *out = athena::Scheme::kLvf;
  else if (v == "lvfl") *out = athena::Scheme::kLvfl;
  else return false;
  return true;
}

/// The "teleop" plugin's spec schema over a config instance. The binder
/// holds pointers into `cfg`: it must not outlive it.
SpecBinder teleop_binder(TeleopScenarioConfig& cfg) {
  SpecBinder b;
  b.bind("grid_width", &cfg.grid_width);
  b.bind("grid_height", &cfg.grid_height);
  b.bind("vehicle_count", &cfg.vehicle_count);
  b.bind("carrier_count", &cfg.carrier_count);
  b.bind("vehicle_speed", &cfg.vehicle_speed);
  b.bind("cell_bandwidth_bps", &cfg.cell_bandwidth_bps);
  b.bind_seconds("cell_latency_s", &cfg.cell_latency);
  b.bind("core_bandwidth_bps", &cfg.core_bandwidth_bps);
  b.bind_seconds("core_latency_s", &cfg.core_latency);
  b.bind("cell_loss", &cfg.cell_loss);
  b.bind("mean_burst_len", &cfg.mean_burst_len);
  b.bind("coverage", &cfg.coverage);
  b.bind("gap_loss", &cfg.gap_loss);
  b.bind_seconds("decision_period_s", &cfg.decision_period);
  b.bind_seconds("query_deadline_s", &cfg.query_deadline);
  b.bind_seconds("object_validity_s", &cfg.object_validity);
  b.bind("min_object_bytes", &cfg.min_object_bytes);
  b.bind("max_object_bytes", &cfg.max_object_bytes);
  b.bind("critical_priority", &cfg.critical_priority);
  b.bind("multipath_redundancy", &cfg.multipath_redundancy);
  // Structured fault injection (the burst channel is not honored here; see
  // TeleopScenarioConfig::faults).
  b.bind("fault_link_outage_fraction", &cfg.faults.link_outage_fraction);
  b.bind_seconds("fault_outage_at_s", &cfg.faults.outage_at);
  b.bind_seconds("fault_outage_duration_s", &cfg.faults.outage_duration);
  b.bind("fault_crash_fraction", &cfg.faults.node_crash_fraction);
  b.bind_seconds("fault_crash_at_s", &cfg.faults.crash_at);
  b.bind_seconds("fault_crash_duration_s", &cfg.faults.crash_duration);
  b.bind_enum(
      "fault_restart_policy",
      [&cfg] { return std::string(fault::to_string(cfg.faults.restart_policy)); },
      [&cfg](const std::string& v) {
        return fault::parse_restart_policy(v, &cfg.faults.restart_policy);
      });
  b.bind("fault_crash_recovery", &cfg.fault_crash_recovery);
  b.bind_seconds("fault_recovery_lease_s", &cfg.recovery_lease);
  b.bind_seconds("chaos_window_start_s", &cfg.chaos.window_start);
  b.bind_seconds("chaos_window_end_s", &cfg.chaos.window_end);
  b.bind("chaos_crashes_per_node_min", &cfg.chaos.crashes_per_node_min);
  b.bind_seconds("chaos_min_downtime_s", &cfg.chaos.min_downtime);
  b.bind_seconds("chaos_max_downtime_s", &cfg.chaos.max_downtime);
  b.bind("chaos_flaps_per_link_min", &cfg.chaos.flaps_per_link_min);
  b.bind_seconds("chaos_min_flap_s", &cfg.chaos.min_flap);
  b.bind_seconds("chaos_max_flap_s", &cfg.chaos.max_flap);
  b.bind_enum(
      "chaos_restart_policy",
      [&cfg] { return std::string(fault::to_string(cfg.chaos.restart_policy)); },
      [&cfg](const std::string& v) {
        return fault::parse_restart_policy(v, &cfg.chaos.restart_policy);
      });
  b.bind_seconds("horizon_s", &cfg.horizon);
  b.bind_enum(
      "scheme", [&cfg] { return std::string(to_string(cfg.scheme)); },
      [&cfg](const std::string& v) { return parse_scheme(v, &cfg.scheme); });
  return b;
}

class TeleopScenarioRunner final : public ScenarioRunner {
 public:
  [[nodiscard]] const ScenarioMetadata& metadata() const override {
    static const ScenarioMetadata meta{
        "teleop",
        "Vehicular teleoperation over lossy multi-homed cellular links "
        "(paper Sec. IV-A)",
        "evaluation"};
    return meta;
  }

  [[nodiscard]] ScenarioSpec spec() const override {
    TeleopScenarioConfig copy = cfg_;
    return teleop_binder(copy).to_spec();
  }

  void configure(const ScenarioSpec& spec) override {
    DDE_CHECK(run_ == nullptr,
              "teleop scenario: configure() between setup() and reset()");
    teleop_binder(cfg_).apply(spec);
  }

  void setup(std::uint64_t seed) override {
    cfg_.seed = seed;
    run_ = std::make_unique<TeleopRun>(cfg_);
  }

  void tick(SimTime until) override {
    DDE_CHECK(run_ != nullptr, "teleop scenario: tick() before setup()");
    run_->advance(until);
  }

  [[nodiscard]] SimTime horizon() const override { return cfg_.horizon; }

  [[nodiscard]] ScenarioOutcome outcome() override {
    DDE_CHECK(run_ != nullptr, "teleop scenario: outcome() before setup()");
    const TeleopScenarioResult r = run_->collect();
    ScenarioOutcome out;
    out.metrics["queries"] = static_cast<double>(r.queries_issued);
    out.metrics["deadline_hits"] = static_cast<double>(r.deadline_hits);
    out.metrics["deadline_hit_rate"] = r.deadline_hit_rate();
    double latency = 0.0;
    for (double l : r.latency_s) latency += l;
    out.metrics["mean_latency_s"] =
        r.latency_s.empty()
            ? 0.0
            : latency / static_cast<double>(r.latency_s.size());
    out.metrics["total_megabytes"] =
        static_cast<double>(r.bytes_sent) / 1e6;
    out.metrics["replica_copies"] = static_cast<double>(r.replica_copies);
    out.metrics["replica_duplicates"] =
        static_cast<double>(r.replica_duplicates);
    out.metrics["events"] = static_cast<double>(r.events);
    out.metrics["crashed_queries"] =
        static_cast<double>(r.metrics.queries_failed_crash);
    out.metrics["node_restarts"] =
        static_cast<double>(r.metrics.node_restarts);
    out.metrics["recovery_time_s"] = r.metrics.mean_recovery_time_s();
    return out;
  }

  void reset() override { run_.reset(); }

 private:
  TeleopScenarioConfig cfg_;
  std::unique_ptr<TeleopRun> run_;
};

}  // namespace

TeleopScenarioResult run_teleop_scenario(const TeleopScenarioConfig& cfg) {
  TeleopRun run(cfg);
  run.advance(cfg.horizon);
  return run.collect();
}

void register_teleop_scenario() {
  static const bool once = [] {
    register_scenario("teleop", +[]() -> std::unique_ptr<ScenarioRunner> {
      return std::make_unique<TeleopScenarioRunner>();
    });
    return true;
  }();
  (void)once;
}

}  // namespace dde::scenario
