// The Sec. VII evaluation scenario: post-disaster route assessment on a
// Manhattan grid.
//
// Builds the full stack — grid world, viability dynamics, sensor field,
// network topology of Athena nodes co-located with the sensors, directory —
// generates the route-finding query workload (five candidate routes per
// query, three concurrent queries per node), runs the simulation, and
// reports resolution ratio and bandwidth consumption.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "athena/config.h"
#include "athena/metrics.h"
#include "athena/node.h"
#include "common/sim_time.h"
#include "fault/chaos.h"
#include "fault/fault_injector.h"
#include "fault/fault_plan.h"
#include "net/network.h"

namespace dde::scenario {

/// Everything configurable about one experiment run. Defaults reproduce the
/// paper's setup (8×8 grid, ~30 nodes, 1 Mbps links, 100 KB–1 MB objects,
/// 5 candidate routes per query, 3 queries per node).
struct ScenarioConfig {
  // World.
  int grid_width = 8;
  int grid_height = 8;
  double p_viable = 0.75;          ///< stationary segment viability
  SimTime mean_holding = SimTime::seconds(900);

  // Sensors / objects.
  std::size_t node_count = 30;
  double coverage_radius = 1.25;   ///< field-of-view (grid units)
  std::uint64_t min_object_bytes = 100 * 1024;
  std::uint64_t max_object_bytes = 1024 * 1024;
  double fast_ratio = 0.4;         ///< Fig. 2 sweep variable
  SimTime slow_validity = SimTime::seconds(600);
  SimTime fast_validity = SimTime::seconds(30);
  /// Per-reading sensor correctness (Sec. IV-B noisy data); 1 = noiseless.
  double sensor_reliability = 1.0;
  /// Node-side corroboration confidence threshold; 0 disables.
  double corroboration_confidence = 0.0;

  // Network.
  double link_bandwidth_bps = 1e6;  ///< 1 Mbps node-to-node
  SimTime link_latency = SimTime::millis(2);
  double link_radius = 2.2;        ///< connect nodes within this distance
  /// Failure injection: independent per-packet loss probability.
  double packet_loss = 0.0;

  /// Overload protection at the network layer: caps on each link's waiting
  /// queue (0 = unbounded, the default — bit-for-bit the seed behaviour).
  /// Overfull queues evict lowest-priority-newest packets; see
  /// net::QueueLimits. Node-side protection knobs (shedding, admission
  /// control, prefetch throttling) live in AthenaConfig and are reachable
  /// through `config_override`.
  std::size_t link_queue_max_packets = 0;
  std::uint64_t link_queue_max_bytes = 0;

  /// Structured failure injection (src/fault): link outages, node crashes,
  /// and bursty loss, realized against the built topology from a dedicated
  /// RNG stream derived from `seed`. An empty spec changes nothing — the
  /// run is bit-for-bit identical to one without a fault subsystem.
  fault::FaultSpec faults;
  /// Sustained seeded churn (crash/restart cycles, link flaps), realized
  /// from its own RNG stream and merged into the fault plan. When
  /// non-empty, its restart policy governs the whole merged plan. An empty
  /// spec changes nothing.
  fault::ChaosSpec chaos;
  /// Run the crash-recovery protocol (restart hellos + marker purge and
  /// re-issue) after non-ghost restarts. Applied to node configs unless
  /// `config_override` is set; inert under the default ghost policy.
  bool fault_crash_recovery = true;
  /// Cap on the interest-aggregation marker lease (AthenaConfig::
  /// recovery_lease); zero = off, the default. Applied unless
  /// `config_override` is set.
  SimTime recovery_lease = SimTime::zero();
  /// After the horizon, keep running until the DES drains completely (all
  /// leases expired, every pending event executed) — the chaos harness's
  /// quiesce point. Off by default: legacy runs stop at the horizon.
  bool run_to_quiescence = false;

  // Workload.
  std::size_t queries_per_node = 3;
  std::size_t routes_per_query = 5;
  int min_route_distance = 4;
  SimTime query_deadline = SimTime::seconds(240);

  /// How query issue times are generated.
  enum class Arrival {
    kConcurrent,  ///< all near t=0, spread over issue_jitter (paper setup)
    kPoisson,     ///< per node, exponential inter-arrivals
    kPeriodic,    ///< per node, fixed period with small jitter
  };
  Arrival arrival = Arrival::kConcurrent;
  SimTime issue_jitter = SimTime::seconds(1);  ///< kConcurrent spread
  /// kPoisson mean inter-arrival / kPeriodic period (per node).
  SimTime mean_interarrival = SimTime::seconds(60);

  SimTime horizon = SimTime::seconds(300);

  /// Fraction of queries marked critical (Sec. V-C): their traffic is
  /// assigned `critical_priority` at every link queue.
  double critical_fraction = 0.0;
  int critical_priority = 1;

  /// Mid-run disruption (Sec. II-A): at `disruption_at` an "aftershock"
  /// permanently blocks `disruption_fraction` of the covered segments.
  /// Zero disables. If `broadcast_invalidation` is set, node 0 floods an
  /// Invalidation notice for the affected labels at the same instant;
  /// otherwise stale caches keep answering until natural expiry.
  SimTime disruption_at = SimTime::zero();
  double disruption_fraction = 0.15;
  bool broadcast_invalidation = true;

  // Scheme under test.
  athena::Scheme scheme = athena::Scheme::kLvfl;
  /// If set, overrides the scheme preset entirely (for ablations).
  std::optional<athena::AthenaConfig> config_override;

  /// Optional structured trace sink (src/obs), attached to the network and
  /// every node for the whole run. Observation only: a run with a sink is
  /// bit-for-bit identical to one without. Must outlive the call.
  obs::TraceSink* trace_sink = nullptr;

  std::uint64_t seed = 1;
};

/// Outcome of one run.
struct ScenarioResult {
  athena::AthenaMetrics metrics;
  net::TrafficStats traffic;
  /// What the fault injector did (all-zero when `faults` was empty).
  fault::FaultStats faults;
  std::uint64_t events = 0;
  std::uint64_t queries = 0;
  /// Decision-quality audit over resolved queries that chose a route:
  /// `decisions_correct` counts those whose chosen route was genuinely
  /// fully viable at resolution time (ground truth).
  std::uint64_t decisions_audited = 0;
  std::uint64_t decisions_correct = 0;

  /// Per-query outcomes (priority class, success, resolution latency,
  /// issue/finish times, and — when the query chose a route — whether that
  /// route was genuinely viable at resolution time).
  struct QueryOutcome {
    int priority = 0;
    bool success = false;
    /// Deliberately dropped by overload protection (deadline-infeasible
    /// shed or admission rejection) rather than failing with work in
    /// flight.
    bool shed = false;
    /// Dropped to the terminal failed_crash outcome when its node crashed
    /// under a non-ghost restart policy.
    bool crashed = false;
    double latency_s = 0.0;
    double issued_s = 0.0;
    double finished_s = 0.0;
    bool audited = false;
    bool correct = false;
  };
  std::vector<QueryOutcome> outcomes;

  /// Residual protocol state per node at collection time. At a quiesce
  /// point (run_to_quiescence) a correct run drains every count to zero —
  /// feed these to fault::check_quiesce_invariants.
  std::vector<fault::NodeStateProbe> probes;

  [[nodiscard]] double decision_accuracy() const noexcept {
    return decisions_audited == 0
               ? 1.0
               : static_cast<double>(decisions_correct) /
                     static_cast<double>(decisions_audited);
  }

  [[nodiscard]] double resolution_ratio() const noexcept {
    return metrics.resolution_ratio();
  }
  [[nodiscard]] double total_megabytes() const noexcept {
    return static_cast<double>(traffic.bytes) / 1e6;
  }
};

/// Build and run one scenario to completion (or the horizon).
[[nodiscard]] ScenarioResult run_route_scenario(const ScenarioConfig& config);

class ScenarioSpec;

/// Build a ScenarioConfig from a declarative spec (the "route" plugin's
/// schema; see docs/SCENARIOS.md). Unknown keys abort via DDE_CHECK.
/// Typed-only knobs (the fault burst parameters, chaos.spare_node0 and
/// chaos.burst, config_override, trace_sink, seed) are not part of the
/// spec schema and keep their defaults; the scalar fault_*/chaos_* knobs
/// are spec-reachable.
[[nodiscard]] ScenarioConfig route_config_from_spec(const ScenarioSpec& spec);

/// Register the "route" plugin with the scenario registry (idempotent).
void register_route_scenario();

}  // namespace dde::scenario
