#include "scenario/runner.h"

#include <cstdio>

#include "common/contracts.h"
#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "scenario/route_scenario.h"
#include "scenario/teleop_scenario.h"
#include "scenario/trigger_scenario.h"

namespace dde::scenario {
namespace {

/// Sorted name → factory map plus the lock that owns it: the one registry
/// singleton is process-wide shared state, so the map is DDE_GUARDED_BY
/// its mutex and clang -Wthread-safety checks every access. Registration
/// and lookup are cold paths (startup wiring, once per run), so the lock
/// never sits on a hot path.
struct Registry {
  common::Mutex mu;
  std::map<std::string, ScenarioFactory> map DDE_GUARDED_BY(mu);
};

Registry& registry() {
  // lint: shared-state — the singleton's mutable map is guarded by its own
  // mutex (machine-checked via the DDE_GUARDED_BY annotation above);
  // function-local static so it needs no static-init ordering.
  static Registry reg;
  return reg;
}

/// Register the plugins shipped in this library. Explicit calls instead of
/// static self-registration objects: those get dropped when the scenario
/// library is linked statically and nothing references the plugin TU.
void ensure_builtins() {
  static const bool once = [] {
    register_route_scenario();
    register_trigger_scenario();
    register_teleop_scenario();
    return true;
  }();
  (void)once;
}

}  // namespace

double ScenarioOutcome::at(const std::string& key) const {
  const auto it = metrics.find(key);
  if (it == metrics.end()) {
    std::fprintf(stderr, "ScenarioOutcome: missing metric '%s'\n",
                 key.c_str());
  }
  DDE_CHECK(it != metrics.end(), "ScenarioOutcome: missing metric");
  return it->second;
}

ScenarioOutcome ScenarioRunner::run(std::uint64_t seed) {
  setup(seed);
  tick(horizon());
  return outcome();
}

void register_scenario(const std::string& name, ScenarioFactory factory) {
  DDE_CHECK(!name.empty(), "register_scenario: empty name");
  DDE_CHECK(factory != nullptr, "register_scenario: null factory");
  Registry& reg = registry();
  bool inserted = false;
  {
    const common::MutexLock lock(&reg.mu);
    inserted = reg.map.emplace(name, factory).second;
  }
  if (!inserted) {
    std::fprintf(stderr, "register_scenario: duplicate name '%s'\n",
                 name.c_str());
  }
  DDE_CHECK(inserted, "register_scenario: duplicate scenario name");
}

std::unique_ptr<ScenarioRunner> find_scenario(const std::string& name) {
  ensure_builtins();
  Registry& reg = registry();
  ScenarioFactory factory = nullptr;
  {
    const common::MutexLock lock(&reg.mu);
    const auto it = reg.map.find(name);
    if (it != reg.map.end()) factory = it->second;
  }
  if (factory == nullptr) return nullptr;
  return factory();
}

std::vector<std::string> scenario_names() {
  ensure_builtins();
  Registry& reg = registry();
  const common::MutexLock lock(&reg.mu);
  std::vector<std::string> names;
  names.reserve(reg.map.size());
  for (const auto& [name, factory] : reg.map) names.push_back(name);
  return names;
}

}  // namespace dde::scenario
