#include "scenario/runner.h"

#include <cstdio>

#include "common/contracts.h"
#include "scenario/route_scenario.h"
#include "scenario/teleop_scenario.h"
#include "scenario/trigger_scenario.h"

namespace dde::scenario {
namespace {

/// Sorted name → factory map. Function-local so the registry needs no
/// static-initialization ordering; guarded registration keeps it
/// idempotent.
std::map<std::string, ScenarioFactory>& registry() {
  static std::map<std::string, ScenarioFactory> map;
  return map;
}

/// Register the plugins shipped in this library. Explicit calls instead of
/// static self-registration objects: those get dropped when the scenario
/// library is linked statically and nothing references the plugin TU.
void ensure_builtins() {
  static const bool once = [] {
    register_route_scenario();
    register_trigger_scenario();
    register_teleop_scenario();
    return true;
  }();
  (void)once;
}

}  // namespace

double ScenarioOutcome::at(const std::string& key) const {
  const auto it = metrics.find(key);
  if (it == metrics.end()) {
    std::fprintf(stderr, "ScenarioOutcome: missing metric '%s'\n",
                 key.c_str());
  }
  DDE_CHECK(it != metrics.end(), "ScenarioOutcome: missing metric");
  return it->second;
}

ScenarioOutcome ScenarioRunner::run(std::uint64_t seed) {
  setup(seed);
  tick(horizon());
  return outcome();
}

void register_scenario(const std::string& name, ScenarioFactory factory) {
  DDE_CHECK(!name.empty(), "register_scenario: empty name");
  DDE_CHECK(factory != nullptr, "register_scenario: null factory");
  const bool inserted = registry().emplace(name, factory).second;
  if (!inserted) {
    std::fprintf(stderr, "register_scenario: duplicate name '%s'\n",
                 name.c_str());
  }
  DDE_CHECK(inserted, "register_scenario: duplicate scenario name");
}

std::unique_ptr<ScenarioRunner> find_scenario(const std::string& name) {
  ensure_builtins();
  const auto it = registry().find(name);
  if (it == registry().end()) return nullptr;
  return it->second();
}

std::vector<std::string> scenario_names() {
  ensure_builtins();
  std::vector<std::string> names;
  names.reserve(registry().size());
  for (const auto& [name, factory] : registry()) names.push_back(name);
  return names;
}

}  // namespace dde::scenario
