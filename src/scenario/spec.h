// Declarative scenario configuration: flat string key → value specs.
//
// A ScenarioSpec is the wire/CLI form of a scenario's knobs: what
// tools/run_scenario --set flags, bench sweep points, and tests exchange
// with a ScenarioRunner plugin. Specs are ordered (std::map) so dumping is
// deterministic, and parse(dump(s)) round-trips exactly — values are kept
// as the strings they were set with.
//
// SpecBinder maps spec keys onto the typed fields of a plugin's native
// config struct. Applying a spec with a key no plugin field is bound to is
// a contract violation (DDE_CHECK): a typo'd knob must never be silently
// ignored.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>

#include "common/sim_time.h"

namespace dde::scenario {

/// An ordered set of key = value pairs describing one scenario
/// configuration point. Values are strings; typed accessors parse on read
/// and abort (DDE_CHECK) on malformed input.
class ScenarioSpec {
 public:
  ScenarioSpec() = default;

  void set(const std::string& key, std::string value);
  void set(const std::string& key, const char* value);
  void set(const std::string& key, double value);
  void set(const std::string& key, bool value);
  void set(const std::string& key, std::int64_t value);
  void set(const std::string& key, std::uint64_t value);
  void set(const std::string& key, int value);

  [[nodiscard]] bool contains(const std::string& key) const;
  [[nodiscard]] std::size_t size() const noexcept { return entries_.size(); }
  [[nodiscard]] bool empty() const noexcept { return entries_.empty(); }

  /// Raw string value; DDE_CHECKs that the key exists.
  [[nodiscard]] const std::string& get_string(const std::string& key) const;
  [[nodiscard]] double get_double(const std::string& key) const;
  [[nodiscard]] std::int64_t get_int(const std::string& key) const;
  [[nodiscard]] std::uint64_t get_uint(const std::string& key) const;
  [[nodiscard]] bool get_bool(const std::string& key) const;

  /// Sorted key → value entries (deterministic iteration).
  [[nodiscard]] const std::map<std::string, std::string>& entries()
      const noexcept {
    return entries_;
  }

  /// Parse "key = value" lines ('#' starts a comment; blank lines and
  /// surrounding whitespace are ignored). Aborts on a line without '='.
  [[nodiscard]] static ScenarioSpec parse(const std::string& text);

  /// "key = value\n" per entry, sorted by key. parse(dump()) == *this.
  [[nodiscard]] std::string dump() const;

  friend bool operator==(const ScenarioSpec&, const ScenarioSpec&) = default;

 private:
  std::map<std::string, std::string> entries_;
};

/// Two-way binding between spec keys and a config struct's fields.
///
/// A plugin builds one binder over its config instance, binding each
/// exposed knob once; `apply` then writes a spec into the fields (rejecting
/// unknown keys via DDE_CHECK) and `to_spec` reads the fields back out.
class SpecBinder {
 public:
  void bind(const std::string& key, double* field);
  void bind(const std::string& key, int* field);
  void bind(const std::string& key, bool* field);
  /// std::size_t knobs bind through this on LP64 (size_t == uint64_t).
  void bind(const std::string& key, std::uint64_t* field);
  /// SimTime knobs are exposed in seconds (fractional allowed).
  void bind_seconds(const std::string& key, SimTime* field);
  /// Enumerated knob: `get` renders the current value, `set` parses one and
  /// returns false on an unrecognized token (which aborts apply()).
  void bind_enum(const std::string& key, std::function<std::string()> get,
                 std::function<bool(const std::string&)> set);

  /// Write every entry of `spec` into its bound field. A key with no
  /// binding, or an enum value `set` rejects, is a contract violation.
  void apply(const ScenarioSpec& spec) const;

  /// Read every bound field into a spec (the plugin's full schema, with
  /// current values).
  [[nodiscard]] ScenarioSpec to_spec() const;

 private:
  struct Entry {
    std::function<std::string()> get;
    std::function<void(const std::string& value, const std::string& key)> set;
  };
  void add(const std::string& key, Entry entry);

  std::map<std::string, Entry> entries_;
};

}  // namespace dde::scenario
