// Event-triggered decision-making (Sec. IV-B): "the firing of a motion
// sensor inside a warehouse after hours may trigger a decision task to
// determine the identity of the intruder."
//
// A watch node samples its local motion sensor periodically; when the
// sensor trips (the monitored segment's state flips), it issues an
// identification decision query over the cameras covering the surrounding
// area, with a tight deadline. The scenario measures the *reaction chain*:
// event → detection (bounded by the sampling period) → query resolution.
#pragma once

#include <cstdint>
#include <vector>

#include "athena/config.h"
#include "athena/metrics.h"
#include "common/sim_time.h"

namespace dde::scenario {

struct TriggerScenarioConfig {
  // World/network: a smaller site than the route scenario.
  int grid_width = 5;
  int grid_height = 5;
  std::size_t node_count = 14;
  double coverage_radius = 1.25;
  double link_radius = 2.4;
  double link_bandwidth_bps = 1e6;

  /// The monitored ("motion") segments flip fast; everything else is calm.
  double event_rate_per_hour = 12.0;   ///< mean trigger events per hour
  SimTime watch_period = SimTime::seconds(5);  ///< local sampling period
  SimTime query_deadline = SimTime::seconds(60);
  std::size_t cameras_per_query = 3;   ///< labels the identification needs

  SimTime horizon = SimTime::seconds(3600);
  athena::Scheme scheme = athena::Scheme::kLvfl;
  std::uint64_t seed = 1;
};

struct TriggerScenarioResult {
  athena::AthenaMetrics metrics;
  std::uint64_t events = 0;          ///< trigger events that fired
  std::uint64_t queries_issued = 0;  ///< identification queries launched
  /// Seconds from physical event to decision, per resolved query.
  std::vector<double> reaction_s;
  /// Seconds from physical event to query issue (detection delay).
  std::vector<double> detection_s;

  [[nodiscard]] double resolution_ratio() const noexcept {
    return queries_issued == 0
               ? 0.0
               : static_cast<double>(metrics.queries_resolved) /
                     static_cast<double>(queries_issued);
  }
};

/// Run the warehouse-watch scenario to the horizon.
[[nodiscard]] TriggerScenarioResult run_trigger_scenario(
    const TriggerScenarioConfig& config);

/// Register the "trigger" plugin with the scenario registry (idempotent).
void register_trigger_scenario();

}  // namespace dde::scenario
