#include "scenario/trigger_scenario.h"

#include <algorithm>
#include <cmath>
#include <memory>
#include <numeric>
#include <optional>

#include "athena/directory.h"
#include "athena/node.h"
#include "common/contracts.h"
#include "common/rng.h"
#include "des/periodic.h"
#include "des/simulator.h"
#include "net/network.h"
#include "net/topology.h"
#include "scenario/runner.h"
#include "scenario/spec.h"
#include "world/dynamics.h"
#include "world/grid_map.h"
#include "world/sensor_field.h"

namespace dde::scenario {
namespace {

/// Geometric links + connectivity repair (same policy as the route
/// scenario, duplicated to keep the scenarios independently readable).
void build_links(net::Topology& topo, const world::SensorField& field,
                 double radius, double bandwidth) {
  const auto& sensors = field.sensors();
  const std::size_t n = sensors.size();
  auto dist = [&](std::size_t a, std::size_t b) {
    const double dx = sensors[a].x - sensors[b].x;
    const double dy = sensors[a].y - sensors[b].y;
    return std::sqrt(dx * dx + dy * dy);
  };
  std::vector<std::size_t> parent(n);
  std::iota(parent.begin(), parent.end(), std::size_t{0});
  auto find = [&](std::size_t x) {
    while (parent[x] != x) {
      parent[x] = parent[parent[x]];
      x = parent[x];
    }
    return x;
  };
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      if (dist(i, j) <= radius) {
        topo.add_link(NodeId{i}, NodeId{j}, bandwidth);
        parent[find(i)] = find(j);
      }
    }
  }
  for (;;) {
    double best = 0.0;
    std::size_t bi = n;
    std::size_t bj = n;
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = i + 1; j < n; ++j) {
        if (find(i) == find(j)) continue;
        const double d = dist(i, j);
        if (bi == n || d < best) {
          best = d;
          bi = i;
          bj = j;
        }
      }
    }
    if (bi == n) break;
    topo.add_link(NodeId{bi}, NodeId{bj}, bandwidth);
    parent[find(bi)] = find(bj);
  }
}

/// One in-flight warehouse-watch run: the exact statement sequence of the
/// legacy monolithic run_trigger_scenario() split at the final run_until.
/// Member declaration order mirrors the legacy local-variable order, and
/// every RNG draw happens in the original sequence, so a whole run through
/// this class is bit-for-bit identical to the legacy function.
class TriggerRun {
 public:
  explicit TriggerRun(const TriggerScenarioConfig& config);
  TriggerRun(const TriggerRun&) = delete;
  TriggerRun& operator=(const TriggerRun&) = delete;

  void advance(SimTime until) { sim_.run_until(until); }

  /// Assemble the result for the run advanced so far (idempotent).
  [[nodiscard]] TriggerScenarioResult collect();

 private:
  TriggerScenarioConfig cfg_;
  /// Validated sampling period (cfg_.watch_period with contract clamping).
  SimTime watch_period_ = SimTime::zero();
  Rng rng_;
  std::optional<world::GridMap> map_;
  SegmentId watched_{0};
  std::optional<world::ViabilityProcess> truth_;
  std::optional<world::SensorField> field_;
  NodeId watch_node_{0};
  SourceId watch_sensor_{0};
  net::Topology topo_;
  std::vector<NodeId> hosts_;
  des::Simulator sim_;
  std::optional<net::Network> network_;
  std::optional<athena::Directory> directory_;
  athena::AthenaMetrics metrics_;
  std::vector<std::unique_ptr<athena::AthenaNode>> nodes_;
  std::vector<LabelId> id_labels_;
  TriggerScenarioResult result_;
  std::vector<SimTime> event_times_;  // aligned with issued queries
  bool prev_state_ = false;
  std::optional<des::PeriodicTask> watch_;
};

TriggerRun::TriggerRun(const TriggerScenarioConfig& config)
    : cfg_(config), rng_(cfg_.seed) {
  const TriggerScenarioConfig& cfg = cfg_;
  Rng& rng = rng_;

  // A non-positive event rate would put a zero (or negative) cycle length
  // into the dynamics below — division by zero, then a DDE_CHECK deep in
  // ViabilityProcess. Clamp to the documented default instead.
  double event_rate_per_hour = cfg.event_rate_per_hour;
  DDE_CLAMP_OR(event_rate_per_hour > 0.0, event_rate_per_hour = 12.0,
               "trigger scenario: event_rate_per_hour must be > 0; "
               "clamped to 12");
  // A non-positive sampling period would make the PeriodicTask respawn
  // forever at a single simulation instant (the run never advances). Clamp
  // to the documented default.
  watch_period_ = cfg.watch_period;
  DDE_CLAMP_OR(watch_period_ > SimTime::zero(),
               watch_period_ = SimTime::seconds(5),
               "trigger scenario: watch_period must be > 0; clamped to 5s");

  // --- world: one fast "motion" segment, calm everything else -------------
  map_.emplace(cfg.grid_width, cfg.grid_height);
  world::GridMap& map = *map_;
  watched_ = SegmentId{rng.below(map.segment_count())};
  const SegmentId watched = watched_;
  std::vector<world::SegmentDynamics> dyn(
      map.segment_count(),
      world::SegmentDynamics{0.8, SimTime::seconds(36000)});
  // Motion is on ~20% of the time; the on→off cycle length sets the event
  // rate: events/hour ≈ 3600 / (2 × mean_holding).
  dyn[watched.value()] = world::SegmentDynamics{
      0.2, SimTime::seconds(1800.0 / event_rate_per_hour)};
  truth_.emplace(std::move(dyn), rng.fork());
  world::ViabilityProcess& truth = *truth_;

  world::SensorFieldConfig field_cfg;
  field_cfg.sensor_count = cfg.node_count;
  field_cfg.coverage_radius = cfg.coverage_radius;
  field_cfg.fast_ratio = 0.0;
  field_cfg.slow_validity = SimTime::seconds(45);  // camera footage ages fast
  field_.emplace(map, truth, field_cfg, rng);
  world::SensorField& field = *field_;

  // The watch node hosts a sensor that covers the monitored segment; if
  // none does, fall back to node 0 (it can still query remote cameras).
  for (const auto& s : field.sensors()) {
    if (std::find(s.covers.begin(), s.covers.end(), watched) !=
        s.covers.end()) {
      watch_node_ = NodeId{s.id.value()};
      watch_sensor_ = s.id;
      break;
    }
  }

  // --- network / directory -------------------------------------------------
  for (std::size_t i = 0; i < cfg.node_count; ++i) {
    hosts_.push_back(topo_.add_node());
  }
  build_links(topo_, field, cfg.link_radius, cfg.link_bandwidth_bps);
  topo_.compute_routes();

  network_.emplace(sim_, topo_);
  net::Network& network = *network_;

  std::unordered_map<LabelId, double> p_true;
  for (const auto& seg : map.segments()) {
    p_true[LabelId{seg.id.value()}] = truth.params(seg.id).p_viable;
  }
  directory_.emplace(topo_, field, hosts_, std::move(p_true));

  const auto node_cfg = athena::config_for(cfg.scheme);
  nodes_.reserve(cfg.node_count);
  for (std::size_t i = 0; i < cfg.node_count; ++i) {
    nodes_.push_back(std::make_unique<athena::AthenaNode>(
        NodeId{i}, network, *directory_, field, node_cfg, metrics_));
  }

  // Identification query: evidence from cameras covering segments around
  // the watched one (excluding the watch sensor's own footprint, which the
  // watch node can already see locally).
  const auto& watched_seg = map.segment(watched);
  {
    auto nearby = map.segments_near(watched_seg.mid_x(), watched_seg.mid_y(),
                                    2.0);
    const auto& own = field.sensor(watch_sensor_).covers;
    for (SegmentId s : nearby) {
      if (id_labels_.size() >= cfg.cameras_per_query) break;
      if (std::find(own.begin(), own.end(), s) != own.end()) continue;
      if (field.sensors_covering(s).empty()) continue;
      id_labels_.push_back(LabelId{s.value()});
    }
    // Fall back to any covered labels if the neighbourhood was too bare.
    for (SegmentId s : field.covered_segments()) {
      if (id_labels_.size() >= cfg.cameras_per_query) break;
      const LabelId l{s.value()};
      if (std::find(id_labels_.begin(), id_labels_.end(), l) ==
          id_labels_.end()) {
        id_labels_.push_back(l);
      }
    }
  }

  // --- the watch loop -------------------------------------------------------
  prev_state_ = truth.viable_at(watched, SimTime::zero());
  if (prev_state_) {
    // Already in the "motion" state at start: treat its onset as t=0.
  }
  watch_.emplace(sim_, watch_period_, [this](std::uint64_t) {
    const SimTime now = sim_.now();
    const bool state = truth_->viable_at(watched_, now);
    if (state && !prev_state_) {
      // Event! Find the exact onset (the last flip at or before now).
      SimTime onset = now;
      SimTime probe = now - watch_period_;
      if (probe < SimTime::zero()) probe = SimTime::zero();
      onset = truth_->next_change_after(watched_, probe);
      if (onset > now) onset = probe;  // flipped exactly at the probe point
      ++result_.events;
      event_times_.push_back(onset);
      result_.detection_s.push_back((now - onset).to_seconds());
      decision::DnfExpr expr;
      decision::Conjunction c;
      for (LabelId l : id_labels_) {
        c.terms.push_back(decision::Term{l, false});
      }
      expr.add_disjunct(std::move(c));
      nodes_[watch_node_.value()]->query_init(std::move(expr),
                                              cfg_.query_deadline);
      ++result_.queries_issued;
    }
    prev_state_ = state;
  });
  watch_->start();
}

TriggerScenarioResult TriggerRun::collect() {
  watch_->stop();

  TriggerScenarioResult result = result_;
  result.metrics = metrics_;
  // Reaction times: records at the watch node align 1:1 with events.
  const auto& records = nodes_[watch_node_.value()]->records();
  for (std::size_t i = 0; i < records.size() && i < event_times_.size();
       ++i) {
    if (records[i].success) {
      result.reaction_s.push_back(
          (records[i].finished_at - event_times_[i]).to_seconds());
    }
  }
  return result;
}

// --- the "trigger" plugin --------------------------------------------------

bool parse_scheme(const std::string& v, athena::Scheme* out) {
  if (v == "cmp") *out = athena::Scheme::kCmp;
  else if (v == "slt") *out = athena::Scheme::kSlt;
  else if (v == "lcf") *out = athena::Scheme::kLcf;
  else if (v == "lvf") *out = athena::Scheme::kLvf;
  else if (v == "lvfl") *out = athena::Scheme::kLvfl;
  else return false;
  return true;
}

/// The "trigger" plugin's spec schema over a config instance. The binder
/// holds pointers into `cfg`: it must not outlive it.
SpecBinder trigger_binder(TriggerScenarioConfig& cfg) {
  SpecBinder b;
  b.bind("grid_width", &cfg.grid_width);
  b.bind("grid_height", &cfg.grid_height);
  b.bind("node_count", &cfg.node_count);
  b.bind("coverage_radius", &cfg.coverage_radius);
  b.bind("link_radius", &cfg.link_radius);
  b.bind("link_bandwidth_bps", &cfg.link_bandwidth_bps);
  b.bind("event_rate_per_hour", &cfg.event_rate_per_hour);
  b.bind_seconds("watch_period_s", &cfg.watch_period);
  b.bind_seconds("query_deadline_s", &cfg.query_deadline);
  b.bind("cameras_per_query", &cfg.cameras_per_query);
  b.bind_seconds("horizon_s", &cfg.horizon);
  b.bind_enum(
      "scheme", [&cfg] { return std::string(to_string(cfg.scheme)); },
      [&cfg](const std::string& v) { return parse_scheme(v, &cfg.scheme); });
  return b;
}

class TriggerScenarioRunner final : public ScenarioRunner {
 public:
  [[nodiscard]] const ScenarioMetadata& metadata() const override {
    static const ScenarioMetadata meta{
        "trigger",
        "Event-triggered intruder identification in a warehouse "
        "(paper Sec. IV-B)",
        "evaluation"};
    return meta;
  }

  [[nodiscard]] ScenarioSpec spec() const override {
    TriggerScenarioConfig copy = cfg_;
    return trigger_binder(copy).to_spec();
  }

  void configure(const ScenarioSpec& spec) override {
    DDE_CHECK(run_ == nullptr,
              "trigger scenario: configure() between setup() and reset()");
    trigger_binder(cfg_).apply(spec);
  }

  void setup(std::uint64_t seed) override {
    cfg_.seed = seed;
    run_ = std::make_unique<TriggerRun>(cfg_);
  }

  void tick(SimTime until) override {
    DDE_CHECK(run_ != nullptr, "trigger scenario: tick() before setup()");
    run_->advance(until);
  }

  [[nodiscard]] SimTime horizon() const override { return cfg_.horizon; }

  [[nodiscard]] ScenarioOutcome outcome() override {
    DDE_CHECK(run_ != nullptr, "trigger scenario: outcome() before setup()");
    const TriggerScenarioResult r = run_->collect();
    ScenarioOutcome out;
    out.metrics["events"] = static_cast<double>(r.events);
    out.metrics["queries_issued"] = static_cast<double>(r.queries_issued);
    out.metrics["queries_resolved"] =
        static_cast<double>(r.metrics.queries_resolved);
    out.metrics["resolution_ratio"] = r.resolution_ratio();
    double detection = 0.0;
    for (double d : r.detection_s) detection += d;
    out.metrics["mean_detection_s"] =
        r.detection_s.empty()
            ? 0.0
            : detection / static_cast<double>(r.detection_s.size());
    double reaction = 0.0;
    for (double d : r.reaction_s) reaction += d;
    out.metrics["mean_reaction_s"] =
        r.reaction_s.empty()
            ? 0.0
            : reaction / static_cast<double>(r.reaction_s.size());
    out.metrics["reactions"] = static_cast<double>(r.reaction_s.size());
    return out;
  }

  void reset() override { run_.reset(); }

 private:
  TriggerScenarioConfig cfg_;
  std::unique_ptr<TriggerRun> run_;
};

}  // namespace

TriggerScenarioResult run_trigger_scenario(const TriggerScenarioConfig& cfg) {
  TriggerRun run(cfg);
  run.advance(cfg.horizon);
  return run.collect();
}

void register_trigger_scenario() {
  static const bool once = [] {
    register_scenario("trigger", +[]() -> std::unique_ptr<ScenarioRunner> {
      return std::make_unique<TriggerScenarioRunner>();
    });
    return true;
  }();
  (void)once;
}

}  // namespace dde::scenario
