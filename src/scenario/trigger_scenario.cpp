#include "scenario/trigger_scenario.h"

#include <algorithm>
#include <cmath>
#include <memory>
#include <numeric>

#include "athena/directory.h"
#include "athena/node.h"
#include "common/rng.h"
#include "des/periodic.h"
#include "des/simulator.h"
#include "net/network.h"
#include "net/topology.h"
#include "world/dynamics.h"
#include "world/grid_map.h"
#include "world/sensor_field.h"

namespace dde::scenario {
namespace {

/// Geometric links + connectivity repair (same policy as the route
/// scenario, duplicated to keep the scenarios independently readable).
void build_links(net::Topology& topo, const world::SensorField& field,
                 double radius, double bandwidth) {
  const auto& sensors = field.sensors();
  const std::size_t n = sensors.size();
  auto dist = [&](std::size_t a, std::size_t b) {
    const double dx = sensors[a].x - sensors[b].x;
    const double dy = sensors[a].y - sensors[b].y;
    return std::sqrt(dx * dx + dy * dy);
  };
  std::vector<std::size_t> parent(n);
  std::iota(parent.begin(), parent.end(), std::size_t{0});
  auto find = [&](std::size_t x) {
    while (parent[x] != x) {
      parent[x] = parent[parent[x]];
      x = parent[x];
    }
    return x;
  };
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      if (dist(i, j) <= radius) {
        topo.add_link(NodeId{i}, NodeId{j}, bandwidth);
        parent[find(i)] = find(j);
      }
    }
  }
  for (;;) {
    double best = 0.0;
    std::size_t bi = n;
    std::size_t bj = n;
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = i + 1; j < n; ++j) {
        if (find(i) == find(j)) continue;
        const double d = dist(i, j);
        if (bi == n || d < best) {
          best = d;
          bi = i;
          bj = j;
        }
      }
    }
    if (bi == n) break;
    topo.add_link(NodeId{bi}, NodeId{bj}, bandwidth);
    parent[find(bi)] = find(bj);
  }
}

}  // namespace

TriggerScenarioResult run_trigger_scenario(const TriggerScenarioConfig& cfg) {
  Rng rng(cfg.seed);

  // --- world: one fast "motion" segment, calm everything else -------------
  world::GridMap map(cfg.grid_width, cfg.grid_height);
  const SegmentId watched{rng.below(map.segment_count())};
  std::vector<world::SegmentDynamics> dyn(
      map.segment_count(),
      world::SegmentDynamics{0.8, SimTime::seconds(36000)});
  // Motion is on ~20% of the time; the on→off cycle length sets the event
  // rate: events/hour ≈ 3600 / (2 × mean_holding).
  dyn[watched.value()] = world::SegmentDynamics{
      0.2, SimTime::seconds(1800.0 / cfg.event_rate_per_hour)};
  world::ViabilityProcess truth(std::move(dyn), rng.fork());

  world::SensorFieldConfig field_cfg;
  field_cfg.sensor_count = cfg.node_count;
  field_cfg.coverage_radius = cfg.coverage_radius;
  field_cfg.fast_ratio = 0.0;
  field_cfg.slow_validity = SimTime::seconds(45);  // camera footage ages fast
  world::SensorField field(map, truth, field_cfg, rng);

  // The watch node hosts a sensor that covers the monitored segment; if
  // none does, fall back to node 0 (it can still query remote cameras).
  NodeId watch_node{0};
  SourceId watch_sensor{0};
  for (const auto& s : field.sensors()) {
    if (std::find(s.covers.begin(), s.covers.end(), watched) !=
        s.covers.end()) {
      watch_node = NodeId{s.id.value()};
      watch_sensor = s.id;
      break;
    }
  }

  // --- network / directory -------------------------------------------------
  net::Topology topo;
  std::vector<NodeId> hosts;
  for (std::size_t i = 0; i < cfg.node_count; ++i) hosts.push_back(topo.add_node());
  build_links(topo, field, cfg.link_radius, cfg.link_bandwidth_bps);
  topo.compute_routes();

  des::Simulator sim;
  net::Network network(sim, topo);

  std::unordered_map<LabelId, double> p_true;
  for (const auto& seg : map.segments()) {
    p_true[LabelId{seg.id.value()}] = truth.params(seg.id).p_viable;
  }
  athena::Directory directory(topo, field, hosts, std::move(p_true));

  athena::AthenaMetrics metrics;
  const auto node_cfg = athena::config_for(cfg.scheme);
  std::vector<std::unique_ptr<athena::AthenaNode>> nodes;
  for (std::size_t i = 0; i < cfg.node_count; ++i) {
    nodes.push_back(std::make_unique<athena::AthenaNode>(
        NodeId{i}, network, directory, field, node_cfg, metrics));
  }

  // Identification query: evidence from cameras covering segments around
  // the watched one (excluding the watch sensor's own footprint, which the
  // watch node can already see locally).
  const auto& watched_seg = map.segment(watched);
  std::vector<LabelId> id_labels;
  {
    auto nearby = map.segments_near(watched_seg.mid_x(), watched_seg.mid_y(),
                                    2.0);
    const auto& own = field.sensor(watch_sensor).covers;
    for (SegmentId s : nearby) {
      if (id_labels.size() >= cfg.cameras_per_query) break;
      if (std::find(own.begin(), own.end(), s) != own.end()) continue;
      if (field.sensors_covering(s).empty()) continue;
      id_labels.push_back(LabelId{s.value()});
    }
    // Fall back to any covered labels if the neighbourhood was too bare.
    for (SegmentId s : field.covered_segments()) {
      if (id_labels.size() >= cfg.cameras_per_query) break;
      const LabelId l{s.value()};
      if (std::find(id_labels.begin(), id_labels.end(), l) == id_labels.end()) {
        id_labels.push_back(l);
      }
    }
  }

  // --- the watch loop -------------------------------------------------------
  TriggerScenarioResult result;
  std::vector<SimTime> event_times;  // aligned with issued queries
  bool prev_state = truth.viable_at(watched, SimTime::zero());
  if (prev_state) {
    // Already in the "motion" state at start: treat its onset as t=0.
  }
  des::PeriodicTask watch(sim, cfg.watch_period, [&](std::uint64_t) {
    const SimTime now = sim.now();
    const bool state = truth.viable_at(watched, now);
    if (state && !prev_state) {
      // Event! Find the exact onset (the last flip at or before now).
      SimTime onset = now;
      SimTime probe = now - cfg.watch_period;
      if (probe < SimTime::zero()) probe = SimTime::zero();
      onset = truth.next_change_after(watched, probe);
      if (onset > now) onset = probe;  // flipped exactly at the probe point
      ++result.events;
      event_times.push_back(onset);
      result.detection_s.push_back((now - onset).to_seconds());
      decision::DnfExpr expr;
      decision::Conjunction c;
      for (LabelId l : id_labels) c.terms.push_back(decision::Term{l, false});
      expr.add_disjunct(std::move(c));
      nodes[watch_node.value()]->query_init(std::move(expr),
                                            cfg.query_deadline);
      ++result.queries_issued;
    }
    prev_state = state;
  });
  watch.start();

  sim.run_until(cfg.horizon);
  watch.stop();

  result.metrics = metrics;
  // Reaction times: records at the watch node align 1:1 with events.
  const auto& records = nodes[watch_node.value()]->records();
  for (std::size_t i = 0; i < records.size() && i < event_times.size(); ++i) {
    if (records[i].success) {
      result.reaction_s.push_back(
          (records[i].finished_at - event_times[i]).to_seconds());
    }
  }
  return result;
}

}  // namespace dde::scenario
