#include "scenario/route_scenario.h"

#include <algorithm>
#include <cmath>
#include <memory>
#include <numeric>
#include <unordered_set>

#include "athena/directory.h"
#include "common/rng.h"
#include "des/simulator.h"
#include "net/topology.h"
#include "world/dynamics.h"
#include "world/grid_map.h"
#include "world/sensor_field.h"

namespace dde::scenario {
namespace {

/// Connect sensors' host nodes: geometric links within `radius`, then join
/// any remaining components by their closest node pair so the network is
/// always connected.
void build_links(net::Topology& topo, const world::SensorField& field,
                 const ScenarioConfig& cfg) {
  const auto& sensors = field.sensors();
  const std::size_t n = sensors.size();
  auto dist = [&](std::size_t a, std::size_t b) {
    const double dx = sensors[a].x - sensors[b].x;
    const double dy = sensors[a].y - sensors[b].y;
    return std::sqrt(dx * dx + dy * dy);
  };

  // Union-find for connectivity.
  std::vector<std::size_t> parent(n);
  std::iota(parent.begin(), parent.end(), std::size_t{0});
  auto find = [&](std::size_t x) {
    while (parent[x] != x) {
      parent[x] = parent[parent[x]];
      x = parent[x];
    }
    return x;
  };

  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      if (dist(i, j) <= cfg.link_radius) {
        topo.add_link(NodeId{i}, NodeId{j}, cfg.link_bandwidth_bps,
                      cfg.link_latency);
        parent[find(i)] = find(j);
      }
    }
  }
  // Join disconnected components by their closest cross pair.
  for (;;) {
    double best = 0.0;
    std::size_t bi = n;
    std::size_t bj = n;
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = i + 1; j < n; ++j) {
        if (find(i) == find(j)) continue;
        const double d = dist(i, j);
        if (bi == n || d < best) {
          best = d;
          bi = i;
          bj = j;
        }
      }
    }
    if (bi == n) break;  // connected
    topo.add_link(NodeId{bi}, NodeId{bj}, cfg.link_bandwidth_bps,
                  cfg.link_latency);
    parent[find(bi)] = find(bj);
  }
}

/// Build one route-finding decision expression: OR over candidate routes of
/// AND(viable(segment)). Prefers route sets whose segments are all covered
/// by some sensor (otherwise the query may be inherently unresolvable for
/// every scheme).
decision::DnfExpr make_route_query(const world::GridMap& map,
                                   const std::unordered_set<SegmentId>& covered,
                                   const ScenarioConfig& cfg, Rng& rng) {
  auto route_covered = [&](const world::Route& r) {
    return std::all_of(r.segments.begin(), r.segments.end(),
                       [&](SegmentId s) { return covered.contains(s); });
  };

  std::vector<world::Route> chosen;
  for (int attempt = 0; attempt < 40; ++attempt) {
    auto routes = map.random_route_choices(cfg.routes_per_query,
                                           cfg.min_route_distance, rng);
    std::erase_if(routes, [&](const world::Route& r) {
      return !route_covered(r);
    });
    if (routes.size() > chosen.size()) chosen = routes;
    if (chosen.size() >= cfg.routes_per_query) break;
  }
  // Fallback: accept partially covered routes rather than an empty query.
  if (chosen.empty()) {
    chosen = map.random_route_choices(cfg.routes_per_query,
                                      cfg.min_route_distance, rng);
  }

  decision::DnfExpr expr;
  for (const auto& route : chosen) {
    decision::Conjunction c;
    for (SegmentId seg : route.segments) {
      c.terms.push_back(decision::Term{LabelId{seg.value()}, false});
    }
    expr.add_disjunct(std::move(c));
  }
  return expr;
}

}  // namespace

ScenarioResult run_route_scenario(const ScenarioConfig& cfg) {
  Rng rng(cfg.seed);

  // --- world ---------------------------------------------------------------
  world::GridMap map(cfg.grid_width, cfg.grid_height);
  std::vector<world::SegmentDynamics> dyn(map.segment_count(),
                                          world::SegmentDynamics{
                                              cfg.p_viable, cfg.mean_holding});
  world::ViabilityProcess truth(std::move(dyn), rng.fork());

  world::SensorFieldConfig field_cfg;
  field_cfg.sensor_count = cfg.node_count;
  field_cfg.coverage_radius = cfg.coverage_radius;
  field_cfg.min_object_bytes = cfg.min_object_bytes;
  field_cfg.max_object_bytes = cfg.max_object_bytes;
  field_cfg.fast_ratio = cfg.fast_ratio;
  field_cfg.slow_validity = cfg.slow_validity;
  field_cfg.fast_validity = cfg.fast_validity;
  field_cfg.reliability = cfg.sensor_reliability;
  world::SensorField field(map, truth, field_cfg, rng);

  // --- network ---------------------------------------------------------------
  net::Topology topo;
  std::vector<NodeId> hosts;
  hosts.reserve(cfg.node_count);
  for (std::size_t i = 0; i < cfg.node_count; ++i) hosts.push_back(topo.add_node());
  build_links(topo, field, cfg);
  topo.compute_routes();

  des::Simulator sim;
  net::Network network(sim, topo);
  if (cfg.packet_loss > 0.0) {
    network.set_loss_rate(cfg.packet_loss, cfg.seed * 7919 + 13);
  }
  if (cfg.trace_sink != nullptr) network.set_trace_sink(cfg.trace_sink);
  if (cfg.link_queue_max_packets > 0 || cfg.link_queue_max_bytes > 0) {
    network.set_queue_limits(net::QueueLimits{cfg.link_queue_max_packets,
                                              cfg.link_queue_max_bytes});
  }

  // Structured fault injection. Realized from its own RNG stream so that
  // enabling faults never perturbs world/workload generation, and an empty
  // spec constructs nothing at all.
  std::optional<fault::FaultInjector> injector;
  if (!cfg.faults.empty()) {
    Rng fault_rng(cfg.seed * 6271 + 17);
    fault::FaultPlan plan = cfg.faults.realize(topo, fault_rng);
    injector.emplace(sim, topo, network, std::move(plan),
                     cfg.seed * 104729 + 7);
  }

  // --- directory -------------------------------------------------------------
  std::unordered_map<LabelId, double> p_true;
  for (const auto& seg : map.segments()) {
    p_true[LabelId{seg.id.value()}] = truth.params(seg.id).p_viable;
  }
  athena::Directory directory(topo, field, hosts, std::move(p_true));

  // --- nodes -----------------------------------------------------------------
  athena::AthenaConfig node_cfg =
      cfg.config_override.value_or(athena::config_for(cfg.scheme));
  if (!cfg.config_override) {
    node_cfg.corroboration_confidence = cfg.corroboration_confidence;
  }
  athena::AthenaMetrics metrics;
  std::vector<std::unique_ptr<athena::AthenaNode>> nodes;
  nodes.reserve(cfg.node_count);
  for (std::size_t i = 0; i < cfg.node_count; ++i) {
    nodes.push_back(std::make_unique<athena::AthenaNode>(
        NodeId{i}, network, directory, field, node_cfg, metrics));
    if (cfg.trace_sink != nullptr) {
      nodes.back()->set_trace_sink(cfg.trace_sink);
    }
  }

  // --- workload ----------------------------------------------------------------
  std::unordered_set<SegmentId> covered;
  for (SegmentId s : field.covered_segments()) covered.insert(s);

  std::uint64_t issued = 0;
  // Remember each issued expression (with its issue time) so chosen routes
  // can be audited against ground truth after the run. Per node, records()
  // is in query_init order = issue-time order (ties keep schedule order),
  // so sorting these stably by time aligns index k with records()[k].
  std::vector<std::vector<std::pair<SimTime, decision::DnfExpr>>> issued_exprs(
      cfg.node_count);
  for (std::size_t i = 0; i < cfg.node_count; ++i) {
    SimTime cursor = SimTime::zero();
    for (std::size_t k = 0; k < cfg.queries_per_node; ++k) {
      decision::DnfExpr expr = make_route_query(map, covered, cfg, rng);
      if (expr.empty()) continue;
      SimTime when;
      switch (cfg.arrival) {
        case ScenarioConfig::Arrival::kConcurrent:
          when = SimTime::micros(static_cast<SimTime::rep>(
              rng.uniform() * static_cast<double>(cfg.issue_jitter.count())));
          break;
        case ScenarioConfig::Arrival::kPoisson:
          cursor += SimTime::seconds(
              rng.exponential(cfg.mean_interarrival.to_seconds()));
          when = cursor;
          break;
        case ScenarioConfig::Arrival::kPeriodic:
          when = cfg.mean_interarrival * static_cast<SimTime::rep>(k) +
                 SimTime::micros(static_cast<SimTime::rep>(
                     rng.uniform() *
                     static_cast<double>(cfg.issue_jitter.count())));
          break;
      }
      athena::AthenaNode* node = nodes[i].get();
      const int priority = cfg.critical_fraction > 0.0 &&
                                   rng.chance(cfg.critical_fraction)
                               ? cfg.critical_priority
                               : 0;
      issued_exprs[i].emplace_back(when, expr);
      sim.schedule_at(when, [node, expr = std::move(expr), &cfg, priority] {
        node->query_init(expr, cfg.query_deadline, priority);
      });
      ++issued;
    }
  }
  for (auto& per_node : issued_exprs) {
    std::stable_sort(per_node.begin(), per_node.end(),
                     [](const auto& a, const auto& b) {
                       return a.first < b.first;
                     });
  }

  // --- disruption --------------------------------------------------------------
  if (cfg.disruption_at > SimTime::zero()) {
    // Choose the affected segments up front (deterministic), apply the
    // physical change and (optionally) the invalidation at the event time.
    std::vector<SegmentId> hit;
    for (SegmentId s : field.covered_segments()) {
      if (rng.chance(cfg.disruption_fraction)) hit.push_back(s);
    }
    athena::AthenaNode* herald = nodes[0].get();
    world::ViabilityProcess* world_truth = &truth;
    sim.schedule_at(cfg.disruption_at, [hit, herald, world_truth,
                                        broadcast = cfg.broadcast_invalidation,
                                        at = cfg.disruption_at] {
      std::vector<LabelId> labels;
      for (SegmentId s : hit) {
        world_truth->block_after(s, at);
        labels.push_back(LabelId{s.value()});
      }
      if (broadcast && !labels.empty()) {
        herald->broadcast_invalidation(labels);
      }
    });
  }

  // --- run ---------------------------------------------------------------------
  sim.run_until(cfg.horizon);

  ScenarioResult result;
  result.metrics = metrics;
  result.traffic = network.stats();
  result.metrics.link_down_drops = network.stats().link_down_drops;
  result.metrics.queue_drops = network.stats().queue_drops;
  if (injector) {
    result.faults = injector->stats();
    result.metrics.reroutes = injector->stats().reroutes;
  }
  result.events = sim.executed_events();
  result.queries = issued;

  // --- per-query outcomes + ground-truth audit ----------------------------------
  // For every resolved query that committed to a route, check that route
  // was genuinely viable (every segment, at resolution time).
  for (std::size_t i = 0; i < cfg.node_count; ++i) {
    const auto& records = nodes[i]->records();
    const bool mapped = records.size() == issued_exprs[i].size();
    for (std::size_t k = 0; k < records.size(); ++k) {
      const auto& rec = records[k];
      ScenarioResult::QueryOutcome out;
      out.priority = rec.priority;
      out.success = rec.success;
      out.shed = rec.shed;
      out.issued_s = rec.issued_at.to_seconds();
      out.finished_s = rec.success ? rec.finished_at.to_seconds() : 0.0;
      out.latency_s =
          rec.success ? (rec.finished_at - rec.issued_at).to_seconds() : 0.0;
      if (mapped && rec.issued_at == issued_exprs[i][k].first &&
          rec.success && rec.chosen_action) {
        const auto& expr = issued_exprs[i][k].second;
        if (*rec.chosen_action < expr.disjunct_count()) {
          out.audited = true;
          out.correct = true;
          for (const auto& term :
               expr.disjuncts()[*rec.chosen_action].terms) {
            const bool viable = truth.viable_at(
                SegmentId{term.label.value()}, rec.finished_at);
            if ((term.negated ? !viable : viable) == false) {
              out.correct = false;
              break;
            }
          }
          ++result.decisions_audited;
          result.decisions_correct += out.correct ? 1 : 0;
        }
      }
      result.outcomes.push_back(out);
    }
  }
  return result;
}

}  // namespace dde::scenario
