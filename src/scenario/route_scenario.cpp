#include "scenario/route_scenario.h"

#include <algorithm>
#include <cmath>
#include <memory>
#include <numeric>
#include <unordered_set>

#include "athena/directory.h"
#include "common/contracts.h"
#include "common/rng.h"
#include "des/simulator.h"
#include "net/topology.h"
#include "scenario/runner.h"
#include "scenario/spec.h"
#include "world/dynamics.h"
#include "world/grid_map.h"
#include "world/sensor_field.h"

namespace dde::scenario {
namespace {

/// Connect sensors' host nodes: geometric links within `radius`, then join
/// any remaining components by their closest node pair so the network is
/// always connected.
void build_links(net::Topology& topo, const world::SensorField& field,
                 const ScenarioConfig& cfg) {
  const auto& sensors = field.sensors();
  const std::size_t n = sensors.size();
  auto dist = [&](std::size_t a, std::size_t b) {
    const double dx = sensors[a].x - sensors[b].x;
    const double dy = sensors[a].y - sensors[b].y;
    return std::sqrt(dx * dx + dy * dy);
  };

  // Union-find for connectivity.
  std::vector<std::size_t> parent(n);
  std::iota(parent.begin(), parent.end(), std::size_t{0});
  auto find = [&](std::size_t x) {
    while (parent[x] != x) {
      parent[x] = parent[parent[x]];
      x = parent[x];
    }
    return x;
  };

  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      if (dist(i, j) <= cfg.link_radius) {
        topo.add_link(NodeId{i}, NodeId{j}, cfg.link_bandwidth_bps,
                      cfg.link_latency);
        parent[find(i)] = find(j);
      }
    }
  }
  // Join disconnected components by their closest cross pair.
  for (;;) {
    double best = 0.0;
    std::size_t bi = n;
    std::size_t bj = n;
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = i + 1; j < n; ++j) {
        if (find(i) == find(j)) continue;
        const double d = dist(i, j);
        if (bi == n || d < best) {
          best = d;
          bi = i;
          bj = j;
        }
      }
    }
    if (bi == n) break;  // connected
    topo.add_link(NodeId{bi}, NodeId{bj}, cfg.link_bandwidth_bps,
                  cfg.link_latency);
    parent[find(bi)] = find(bj);
  }
}

/// Build one route-finding decision expression: OR over candidate routes of
/// AND(viable(segment)). Prefers route sets whose segments are all covered
/// by some sensor (otherwise the query may be inherently unresolvable for
/// every scheme).
decision::DnfExpr make_route_query(const world::GridMap& map,
                                   const std::unordered_set<SegmentId>& covered,
                                   const ScenarioConfig& cfg, Rng& rng) {
  auto route_covered = [&](const world::Route& r) {
    return std::all_of(r.segments.begin(), r.segments.end(),
                       [&](SegmentId s) { return covered.contains(s); });
  };

  std::vector<world::Route> chosen;
  for (int attempt = 0; attempt < 40; ++attempt) {
    auto routes = map.random_route_choices(cfg.routes_per_query,
                                           cfg.min_route_distance, rng);
    std::erase_if(routes, [&](const world::Route& r) {
      return !route_covered(r);
    });
    if (routes.size() > chosen.size()) chosen = routes;
    if (chosen.size() >= cfg.routes_per_query) break;
  }
  // Fallback: accept partially covered routes rather than an empty query.
  if (chosen.empty()) {
    chosen = map.random_route_choices(cfg.routes_per_query,
                                      cfg.min_route_distance, rng);
  }

  decision::DnfExpr expr;
  for (const auto& route : chosen) {
    decision::Conjunction c;
    for (SegmentId seg : route.segments) {
      c.terms.push_back(decision::Term{LabelId{seg.value()}, false});
    }
    expr.add_disjunct(std::move(c));
  }
  return expr;
}

/// One in-flight route-scenario run.
///
/// The constructor executes the exact statement sequence of the legacy
/// monolithic run_route_scenario() up to (but excluding) the final
/// sim.run_until; advance()/collect() are the remaining two phases, split
/// out so the ScenarioRunner plugin can drive setup/tick/outcome
/// separately. Member declaration order mirrors the legacy local-variable
/// order (so destruction runs in the same relative order), and every RNG
/// draw happens in the original sequence — a whole run through this class
/// is bit-for-bit identical to the legacy function.
class RouteRun {
 public:
  explicit RouteRun(const ScenarioConfig& config);
  RouteRun(const RouteRun&) = delete;
  RouteRun& operator=(const RouteRun&) = delete;

  void advance(SimTime until) { sim_.run_until(until); }

  /// Assemble the result for the run advanced so far (idempotent).
  [[nodiscard]] ScenarioResult collect();

 private:
  ScenarioConfig cfg_;
  Rng rng_;
  std::optional<world::GridMap> map_;
  std::optional<world::ViabilityProcess> truth_;
  std::optional<world::SensorField> field_;
  net::Topology topo_;
  std::vector<NodeId> hosts_;
  des::Simulator sim_;
  std::optional<net::Network> network_;
  std::optional<fault::FaultInjector> injector_;
  std::optional<athena::Directory> directory_;
  athena::AthenaMetrics metrics_;
  std::vector<std::unique_ptr<athena::AthenaNode>> nodes_;
  std::uint64_t issued_ = 0;
  std::vector<std::vector<std::pair<SimTime, decision::DnfExpr>>>
      issued_exprs_;
};

RouteRun::RouteRun(const ScenarioConfig& config)
    : cfg_(config), rng_(cfg_.seed) {
  const ScenarioConfig& cfg = cfg_;
  Rng& rng = rng_;

  // --- world ---------------------------------------------------------------
  map_.emplace(cfg.grid_width, cfg.grid_height);
  world::GridMap& map = *map_;
  std::vector<world::SegmentDynamics> dyn(map.segment_count(),
                                          world::SegmentDynamics{
                                              cfg.p_viable, cfg.mean_holding});
  truth_.emplace(std::move(dyn), rng.fork());
  world::ViabilityProcess& truth = *truth_;

  world::SensorFieldConfig field_cfg;
  field_cfg.sensor_count = cfg.node_count;
  field_cfg.coverage_radius = cfg.coverage_radius;
  field_cfg.min_object_bytes = cfg.min_object_bytes;
  field_cfg.max_object_bytes = cfg.max_object_bytes;
  field_cfg.fast_ratio = cfg.fast_ratio;
  field_cfg.slow_validity = cfg.slow_validity;
  field_cfg.fast_validity = cfg.fast_validity;
  field_cfg.reliability = cfg.sensor_reliability;
  field_.emplace(map, truth, field_cfg, rng);
  world::SensorField& field = *field_;

  // --- network ---------------------------------------------------------------
  hosts_.reserve(cfg.node_count);
  for (std::size_t i = 0; i < cfg.node_count; ++i) {
    hosts_.push_back(topo_.add_node());
  }
  build_links(topo_, field, cfg);
  topo_.compute_routes();

  network_.emplace(sim_, topo_);
  net::Network& network = *network_;
  if (cfg.packet_loss > 0.0) {
    network.set_loss_rate(cfg.packet_loss, cfg.seed * 7919 + 13);
  }
  if (cfg.trace_sink != nullptr) network.set_trace_sink(cfg.trace_sink);
  if (cfg.link_queue_max_packets > 0 || cfg.link_queue_max_bytes > 0) {
    network.set_queue_limits(net::QueueLimits{cfg.link_queue_max_packets,
                                              cfg.link_queue_max_bytes});
  }

  // Structured fault injection. Realized from its own RNG streams so that
  // enabling faults or chaos never perturbs world/workload generation, and
  // empty specs construct nothing at all. Chaos churn draws from a third
  // stream: adding churn to a faulted run leaves the FaultSpec schedule
  // itself bit-for-bit unchanged.
  if (!cfg.faults.empty() || !cfg.chaos.empty()) {
    Rng fault_rng(cfg.seed * 6271 + 17);
    fault::FaultPlan plan = cfg.faults.realize(topo_, fault_rng);
    if (!cfg.chaos.empty()) {
      Rng chaos_rng(cfg.seed * 15485863 + 19);
      fault::FaultPlan churn = fault::realize_chaos(cfg.chaos, topo_,
                                                    chaos_rng);
      plan.events.insert(plan.events.end(), churn.events.begin(),
                         churn.events.end());
      if (churn.burst.enabled()) plan.burst = churn.burst;
      // One policy governs the merged plan; a non-empty chaos spec wins.
      plan.restart_policy = churn.restart_policy;
    }
    injector_.emplace(sim_, topo_, network, std::move(plan),
                      cfg.seed * 104729 + 7);
  }

  // --- directory -------------------------------------------------------------
  std::unordered_map<LabelId, double> p_true;
  for (const auto& seg : map.segments()) {
    p_true[LabelId{seg.id.value()}] = truth.params(seg.id).p_viable;
  }
  directory_.emplace(topo_, field, hosts_, std::move(p_true));

  // --- nodes -----------------------------------------------------------------
  athena::AthenaConfig node_cfg =
      cfg.config_override.value_or(athena::config_for(cfg.scheme));
  if (!cfg.config_override) {
    node_cfg.corroboration_confidence = cfg.corroboration_confidence;
    node_cfg.crash_recovery = cfg.fault_crash_recovery;
    node_cfg.recovery_lease = cfg.recovery_lease;
  }
  nodes_.reserve(cfg.node_count);
  for (std::size_t i = 0; i < cfg.node_count; ++i) {
    nodes_.push_back(std::make_unique<athena::AthenaNode>(
        NodeId{i}, network, *directory_, field, node_cfg, metrics_));
    if (cfg.trace_sink != nullptr) {
      nodes_.back()->set_trace_sink(cfg.trace_sink);
    }
  }

  // Crash-faithful restarts: route injector transitions into the protocol
  // layer. Under the default ghost policy the hooks return immediately, so
  // wiring them is free and legacy fault runs stay bit-for-bit identical.
  if (injector_) {
    const fault::RestartPolicy policy = injector_->plan().restart_policy;
    injector_->set_node_hook([this, policy](NodeId node, bool up) {
      if (node.value() >= nodes_.size()) return;
      if (up) {
        nodes_[node.value()]->on_restart(policy);
      } else {
        nodes_[node.value()]->on_crash(policy);
      }
    });
  }

  // --- workload ----------------------------------------------------------------
  std::unordered_set<SegmentId> covered;
  for (SegmentId s : field.covered_segments()) covered.insert(s);

  // Remember each issued expression (with its issue time) so chosen routes
  // can be audited against ground truth after the run. Per node, records()
  // is in query_init order = issue-time order (ties keep schedule order),
  // so sorting these stably by time aligns index k with records()[k].
  issued_exprs_.resize(cfg.node_count);
  for (std::size_t i = 0; i < cfg.node_count; ++i) {
    SimTime cursor = SimTime::zero();
    for (std::size_t k = 0; k < cfg.queries_per_node; ++k) {
      decision::DnfExpr expr = make_route_query(map, covered, cfg, rng);
      if (expr.empty()) continue;
      SimTime when;
      switch (cfg.arrival) {
        case ScenarioConfig::Arrival::kConcurrent:
          when = SimTime::micros(static_cast<SimTime::rep>(
              rng.uniform() * static_cast<double>(cfg.issue_jitter.count())));
          break;
        case ScenarioConfig::Arrival::kPoisson:
          cursor += SimTime::seconds(
              rng.exponential(cfg.mean_interarrival.to_seconds()));
          when = cursor;
          break;
        case ScenarioConfig::Arrival::kPeriodic:
          when = cfg.mean_interarrival * static_cast<SimTime::rep>(k) +
                 SimTime::micros(static_cast<SimTime::rep>(
                     rng.uniform() *
                     static_cast<double>(cfg.issue_jitter.count())));
          break;
      }
      athena::AthenaNode* node = nodes_[i].get();
      const int priority = cfg.critical_fraction > 0.0 &&
                                   rng.chance(cfg.critical_fraction)
                               ? cfg.critical_priority
                               : 0;
      issued_exprs_[i].emplace_back(when, expr);
      sim_.schedule_at(when, [this, node, expr = std::move(expr), priority] {
        node->query_init(expr, cfg_.query_deadline, priority);
      });
      ++issued_;
    }
  }
  for (auto& per_node : issued_exprs_) {
    std::stable_sort(per_node.begin(), per_node.end(),
                     [](const auto& a, const auto& b) {
                       return a.first < b.first;
                     });
  }

  // --- disruption --------------------------------------------------------------
  if (cfg.disruption_at > SimTime::zero()) {
    // Choose the affected segments up front (deterministic), apply the
    // physical change and (optionally) the invalidation at the event time.
    std::vector<SegmentId> hit;
    for (SegmentId s : field.covered_segments()) {
      if (rng.chance(cfg.disruption_fraction)) hit.push_back(s);
    }
    // An empty network has no herald node to broadcast the invalidation
    // from; the physical disruption still applies.
    bool broadcast = cfg.broadcast_invalidation;
    DDE_CLAMP_OR(!nodes_.empty() || !broadcast, broadcast = false,
                 "route scenario: broadcast_invalidation needs at least one "
                 "node; disruption applied without a broadcast");
    athena::AthenaNode* herald = nodes_.empty() ? nullptr : nodes_[0].get();
    world::ViabilityProcess* world_truth = &truth;
    sim_.schedule_at(cfg.disruption_at, [hit, herald, world_truth, broadcast,
                                         at = cfg.disruption_at] {
      std::vector<LabelId> labels;
      for (SegmentId s : hit) {
        world_truth->block_after(s, at);
        labels.push_back(LabelId{s.value()});
      }
      if (broadcast && !labels.empty()) {
        herald->broadcast_invalidation(labels);
      }
    });
  }
}

ScenarioResult RouteRun::collect() {
  const ScenarioConfig& cfg = cfg_;

  ScenarioResult result;
  result.metrics = metrics_;
  result.traffic = network_->stats();
  result.metrics.link_down_drops = network_->stats().link_down_drops;
  result.metrics.queue_drops = network_->stats().queue_drops;
  if (injector_) {
    result.faults = injector_->stats();
    result.metrics.reroutes = injector_->stats().reroutes;
  }
  result.events = sim_.executed_events();
  result.queries = issued_;

  // --- per-query outcomes + ground-truth audit ----------------------------------
  // For every resolved query that committed to a route, check that route
  // was genuinely viable (every segment, at resolution time).
  for (std::size_t i = 0; i < cfg.node_count; ++i) {
    const auto& records = nodes_[i]->records();
    const bool mapped = records.size() == issued_exprs_[i].size();
    for (std::size_t k = 0; k < records.size(); ++k) {
      const auto& rec = records[k];
      ScenarioResult::QueryOutcome out;
      out.priority = rec.priority;
      out.success = rec.success;
      out.shed = rec.shed;
      out.crashed = rec.crashed;
      out.issued_s = rec.issued_at.to_seconds();
      out.finished_s = rec.success ? rec.finished_at.to_seconds() : 0.0;
      out.latency_s =
          rec.success ? (rec.finished_at - rec.issued_at).to_seconds() : 0.0;
      if (mapped && rec.issued_at == issued_exprs_[i][k].first &&
          rec.success && rec.chosen_action) {
        const auto& expr = issued_exprs_[i][k].second;
        if (*rec.chosen_action < expr.disjunct_count()) {
          out.audited = true;
          out.correct = true;
          for (const auto& term :
               expr.disjuncts()[*rec.chosen_action].terms) {
            const bool viable = truth_->viable_at(
                SegmentId{term.label.value()}, rec.finished_at);
            if ((term.negated ? !viable : viable) == false) {
              out.correct = false;
              break;
            }
          }
          ++result.decisions_audited;
          result.decisions_correct += out.correct ? 1 : 0;
        }
      }
      result.outcomes.push_back(out);
    }
  }

  // Residual-state probes for the chaos harness's quiesce-point invariant
  // check (cheap counts; harmless to fill on every collect).
  result.probes.reserve(nodes_.size());
  for (const auto& node : nodes_) {
    fault::NodeStateProbe p;
    p.node = node->id().value();
    p.active_queries = node->active_queries();
    p.interest_entries = node->interest_entries();
    p.forwarded_entries = node->forwarded_entries();
    p.dedup_entries = node->dedup_entries();
    result.probes.push_back(p);
  }
  return result;
}

// --- the "route" plugin ----------------------------------------------------

bool parse_scheme(const std::string& v, athena::Scheme* out) {
  if (v == "cmp") *out = athena::Scheme::kCmp;
  else if (v == "slt") *out = athena::Scheme::kSlt;
  else if (v == "lcf") *out = athena::Scheme::kLcf;
  else if (v == "lvf") *out = athena::Scheme::kLvf;
  else if (v == "lvfl") *out = athena::Scheme::kLvfl;
  else return false;
  return true;
}

std::string arrival_name(ScenarioConfig::Arrival a) {
  switch (a) {
    case ScenarioConfig::Arrival::kConcurrent: return "concurrent";
    case ScenarioConfig::Arrival::kPoisson: return "poisson";
    case ScenarioConfig::Arrival::kPeriodic: return "periodic";
  }
  return "?";
}

/// The "route" plugin's spec schema over a config instance. The binder
/// holds pointers into `cfg`: it must not outlive it.
SpecBinder route_binder(ScenarioConfig& cfg) {
  SpecBinder b;
  b.bind("grid_width", &cfg.grid_width);
  b.bind("grid_height", &cfg.grid_height);
  b.bind("p_viable", &cfg.p_viable);
  b.bind_seconds("mean_holding_s", &cfg.mean_holding);
  b.bind("node_count", &cfg.node_count);
  b.bind("coverage_radius", &cfg.coverage_radius);
  b.bind("min_object_bytes", &cfg.min_object_bytes);
  b.bind("max_object_bytes", &cfg.max_object_bytes);
  b.bind("fast_ratio", &cfg.fast_ratio);
  b.bind_seconds("slow_validity_s", &cfg.slow_validity);
  b.bind_seconds("fast_validity_s", &cfg.fast_validity);
  b.bind("sensor_reliability", &cfg.sensor_reliability);
  b.bind("corroboration_confidence", &cfg.corroboration_confidence);
  b.bind("link_bandwidth_bps", &cfg.link_bandwidth_bps);
  b.bind_seconds("link_latency_s", &cfg.link_latency);
  b.bind("link_radius", &cfg.link_radius);
  b.bind("packet_loss", &cfg.packet_loss);
  b.bind("link_queue_max_packets", &cfg.link_queue_max_packets);
  b.bind("link_queue_max_bytes", &cfg.link_queue_max_bytes);
  b.bind("queries_per_node", &cfg.queries_per_node);
  b.bind("routes_per_query", &cfg.routes_per_query);
  b.bind("min_route_distance", &cfg.min_route_distance);
  b.bind_seconds("query_deadline_s", &cfg.query_deadline);
  b.bind_enum(
      "arrival", [&cfg] { return arrival_name(cfg.arrival); },
      [&cfg](const std::string& v) {
        if (v == "concurrent") cfg.arrival = ScenarioConfig::Arrival::kConcurrent;
        else if (v == "poisson") cfg.arrival = ScenarioConfig::Arrival::kPoisson;
        else if (v == "periodic") cfg.arrival = ScenarioConfig::Arrival::kPeriodic;
        else return false;
        return true;
      });
  b.bind_seconds("issue_jitter_s", &cfg.issue_jitter);
  b.bind_seconds("mean_interarrival_s", &cfg.mean_interarrival);
  b.bind_seconds("horizon_s", &cfg.horizon);
  b.bind("critical_fraction", &cfg.critical_fraction);
  b.bind("critical_priority", &cfg.critical_priority);
  b.bind_seconds("disruption_at_s", &cfg.disruption_at);
  b.bind("disruption_fraction", &cfg.disruption_fraction);
  b.bind("broadcast_invalidation", &cfg.broadcast_invalidation);
  // Structured fault injection (scalar knobs; the burst channel stays
  // typed-only).
  b.bind("fault_link_outage_fraction", &cfg.faults.link_outage_fraction);
  b.bind_seconds("fault_outage_at_s", &cfg.faults.outage_at);
  b.bind_seconds("fault_outage_duration_s", &cfg.faults.outage_duration);
  b.bind("fault_crash_fraction", &cfg.faults.node_crash_fraction);
  b.bind_seconds("fault_crash_at_s", &cfg.faults.crash_at);
  b.bind_seconds("fault_crash_duration_s", &cfg.faults.crash_duration);
  b.bind_enum(
      "fault_restart_policy",
      [&cfg] { return std::string(fault::to_string(cfg.faults.restart_policy)); },
      [&cfg](const std::string& v) {
        return fault::parse_restart_policy(v, &cfg.faults.restart_policy);
      });
  b.bind("fault_crash_recovery", &cfg.fault_crash_recovery);
  b.bind_seconds("fault_recovery_lease_s", &cfg.recovery_lease);
  // Seeded chaos churn (chaos.spare_node0 and chaos.burst stay typed-only).
  b.bind_seconds("chaos_window_start_s", &cfg.chaos.window_start);
  b.bind_seconds("chaos_window_end_s", &cfg.chaos.window_end);
  b.bind("chaos_crashes_per_node_min", &cfg.chaos.crashes_per_node_min);
  b.bind_seconds("chaos_min_downtime_s", &cfg.chaos.min_downtime);
  b.bind_seconds("chaos_max_downtime_s", &cfg.chaos.max_downtime);
  b.bind("chaos_flaps_per_link_min", &cfg.chaos.flaps_per_link_min);
  b.bind_seconds("chaos_min_flap_s", &cfg.chaos.min_flap);
  b.bind_seconds("chaos_max_flap_s", &cfg.chaos.max_flap);
  b.bind_enum(
      "chaos_restart_policy",
      [&cfg] { return std::string(fault::to_string(cfg.chaos.restart_policy)); },
      [&cfg](const std::string& v) {
        return fault::parse_restart_policy(v, &cfg.chaos.restart_policy);
      });
  b.bind("run_to_quiescence", &cfg.run_to_quiescence);
  b.bind_enum(
      "scheme", [&cfg] { return std::string(to_string(cfg.scheme)); },
      [&cfg](const std::string& v) { return parse_scheme(v, &cfg.scheme); });
  return b;
}

class RouteScenarioRunner final : public ScenarioRunner {
 public:
  [[nodiscard]] const ScenarioMetadata& metadata() const override {
    static const ScenarioMetadata meta{
        "route",
        "Post-disaster route assessment on a Manhattan grid (paper Sec. VII)",
        "evaluation"};
    return meta;
  }

  [[nodiscard]] ScenarioSpec spec() const override {
    ScenarioConfig copy = cfg_;
    return route_binder(copy).to_spec();
  }

  void configure(const ScenarioSpec& spec) override {
    DDE_CHECK(run_ == nullptr,
              "route scenario: configure() between setup() and reset()");
    route_binder(cfg_).apply(spec);
  }

  void setup(std::uint64_t seed) override {
    cfg_.seed = seed;
    run_ = std::make_unique<RouteRun>(cfg_);
  }

  void tick(SimTime until) override {
    DDE_CHECK(run_ != nullptr, "route scenario: tick() before setup()");
    run_->advance(until);
  }

  [[nodiscard]] SimTime horizon() const override { return cfg_.horizon; }

  [[nodiscard]] ScenarioOutcome outcome() override {
    DDE_CHECK(run_ != nullptr, "route scenario: outcome() before setup()");
    const ScenarioResult r = run_->collect();
    ScenarioOutcome out;
    out.metrics["queries"] = static_cast<double>(r.queries);
    out.metrics["queries_resolved"] =
        static_cast<double>(r.metrics.queries_resolved);
    out.metrics["queries_failed"] =
        static_cast<double>(r.metrics.queries_failed);
    out.metrics["resolution_ratio"] = r.resolution_ratio();
    out.metrics["mean_latency_s"] = r.metrics.mean_latency_s();
    out.metrics["total_megabytes"] = r.total_megabytes();
    out.metrics["decision_accuracy"] = r.decision_accuracy();
    out.metrics["decisions_audited"] =
        static_cast<double>(r.decisions_audited);
    out.metrics["events"] = static_cast<double>(r.events);
    out.metrics["refetches"] = static_cast<double>(r.metrics.refetches);
    out.metrics["retries"] = static_cast<double>(r.metrics.retries);
    out.metrics["failovers"] = static_cast<double>(r.metrics.failovers);
    out.metrics["crashed_queries"] =
        static_cast<double>(r.metrics.queries_failed_crash);
    out.metrics["node_restarts"] =
        static_cast<double>(r.metrics.node_restarts);
    out.metrics["recovery_time_s"] = r.metrics.mean_recovery_time_s();
    return out;
  }

  void reset() override { run_.reset(); }

 private:
  ScenarioConfig cfg_;
  std::unique_ptr<RouteRun> run_;
};

}  // namespace

ScenarioResult run_route_scenario(const ScenarioConfig& cfg) {
  RouteRun run(cfg);
  run.advance(cfg.horizon);
  // Quiesce point: the workload is finite and every recurring callback
  // (GC, pump, watchdogs) terminates once its state drains, so running to
  // SimTime::max() executes every pending event and then stops.
  if (cfg.run_to_quiescence) run.advance(SimTime::max());
  return run.collect();
}

ScenarioConfig route_config_from_spec(const ScenarioSpec& spec) {
  ScenarioConfig cfg;
  route_binder(cfg).apply(spec);
  return cfg;
}

void register_route_scenario() {
  static const bool once = [] {
    register_scenario("route", +[]() -> std::unique_ptr<ScenarioRunner> {
      return std::make_unique<RouteScenarioRunner>();
    });
    return true;
  }();
  (void)once;
}

}  // namespace dde::scenario
