#include "scenario/spec.h"

#include <cerrno>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>

#include "common/contracts.h"

namespace dde::scenario {
namespace {

std::string trim(const std::string& s) {
  const auto first = s.find_first_not_of(" \t\r\n");
  if (first == std::string::npos) return {};
  const auto last = s.find_last_not_of(" \t\r\n");
  return s.substr(first, last - first + 1);
}

/// Shortest %g rendering that round-trips the double exactly.
std::string format_double(double value) {
  char buf[64];
  for (int precision = 6; precision <= 17; ++precision) {
    std::snprintf(buf, sizeof(buf), "%.*g", precision, value);
    if (std::strtod(buf, nullptr) == value) break;
  }
  return buf;
}

void note_key(const char* what, const std::string& key) {
  std::fprintf(stderr, "ScenarioSpec: %s: '%s'\n", what, key.c_str());
}

}  // namespace

void ScenarioSpec::set(const std::string& key, std::string value) {
  DDE_CHECK(!key.empty(), "ScenarioSpec::set: empty key");
  entries_[key] = std::move(value);
}
void ScenarioSpec::set(const std::string& key, const char* value) {
  set(key, std::string(value));
}
void ScenarioSpec::set(const std::string& key, double value) {
  set(key, format_double(value));
}
void ScenarioSpec::set(const std::string& key, bool value) {
  set(key, std::string(value ? "true" : "false"));
}
void ScenarioSpec::set(const std::string& key, std::int64_t value) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%" PRId64, value);
  set(key, std::string(buf));
}
void ScenarioSpec::set(const std::string& key, std::uint64_t value) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%" PRIu64, value);
  set(key, std::string(buf));
}
void ScenarioSpec::set(const std::string& key, int value) {
  set(key, static_cast<std::int64_t>(value));
}

bool ScenarioSpec::contains(const std::string& key) const {
  return entries_.contains(key);
}

const std::string& ScenarioSpec::get_string(const std::string& key) const {
  const auto it = entries_.find(key);
  if (it == entries_.end()) note_key("missing key", key);
  DDE_CHECK(it != entries_.end(), "ScenarioSpec: missing key");
  return it->second;
}

double ScenarioSpec::get_double(const std::string& key) const {
  const std::string& v = get_string(key);
  char* end = nullptr;
  const double parsed = std::strtod(v.c_str(), &end);
  if (end == v.c_str() || *end != '\0') note_key("malformed number", key);
  DDE_CHECK(end != v.c_str() && *end == '\0',
            "ScenarioSpec: value is not a number");
  return parsed;
}

std::int64_t ScenarioSpec::get_int(const std::string& key) const {
  const std::string& v = get_string(key);
  char* end = nullptr;
  errno = 0;
  const long long parsed = std::strtoll(v.c_str(), &end, 10);
  if (end == v.c_str() || *end != '\0' || errno == ERANGE) {
    note_key("malformed integer", key);
  }
  DDE_CHECK(end != v.c_str() && *end == '\0' && errno != ERANGE,
            "ScenarioSpec: value is not an integer");
  return parsed;
}

std::uint64_t ScenarioSpec::get_uint(const std::string& key) const {
  const std::int64_t v = get_int(key);
  if (v < 0) note_key("negative value for unsigned knob", key);
  DDE_CHECK(v >= 0, "ScenarioSpec: unsigned knob set negative");
  return static_cast<std::uint64_t>(v);
}

bool ScenarioSpec::get_bool(const std::string& key) const {
  const std::string& v = get_string(key);
  if (v == "true" || v == "1") return true;
  if (v == "false" || v == "0") return false;
  note_key("malformed bool (use true/false/1/0)", key);
  DDE_CHECK(false, "ScenarioSpec: value is not a bool");
  return false;
}

ScenarioSpec ScenarioSpec::parse(const std::string& text) {
  ScenarioSpec spec;
  std::size_t pos = 0;
  while (pos <= text.size()) {
    std::size_t nl = text.find('\n', pos);
    if (nl == std::string::npos) nl = text.size();
    std::string line = text.substr(pos, nl - pos);
    pos = nl + 1;
    if (const auto hash = line.find('#'); hash != std::string::npos) {
      line = line.substr(0, hash);
    }
    line = trim(line);
    if (line.empty()) continue;
    const auto eq = line.find('=');
    if (eq == std::string::npos) note_key("line without '='", line);
    DDE_CHECK(eq != std::string::npos,
              "ScenarioSpec::parse: line without '='");
    const std::string key = trim(line.substr(0, eq));
    DDE_CHECK(!key.empty(), "ScenarioSpec::parse: empty key");
    spec.set(key, trim(line.substr(eq + 1)));
  }
  return spec;
}

std::string ScenarioSpec::dump() const {
  std::string out;
  for (const auto& [key, value] : entries_) {
    out += key;
    out += " = ";
    out += value;
    out += '\n';
  }
  return out;
}

// --- SpecBinder -----------------------------------------------------------

void SpecBinder::add(const std::string& key, Entry entry) {
  DDE_CHECK(!key.empty(), "SpecBinder: empty key");
  const bool inserted = entries_.emplace(key, std::move(entry)).second;
  if (!inserted) note_key("key bound twice", key);
  DDE_CHECK(inserted, "SpecBinder: key bound twice");
}

void SpecBinder::bind(const std::string& key, double* field) {
  add(key, Entry{[field] { return format_double(*field); },
                 [field](const std::string& v, const std::string& k) {
                   ScenarioSpec one;
                   one.set(k, v);
                   *field = one.get_double(k);
                 }});
}

void SpecBinder::bind(const std::string& key, int* field) {
  add(key, Entry{[field] {
                   char buf[32];
                   std::snprintf(buf, sizeof(buf), "%d", *field);
                   return std::string(buf);
                 },
                 [field](const std::string& v, const std::string& k) {
                   ScenarioSpec one;
                   one.set(k, v);
                   *field = static_cast<int>(one.get_int(k));
                 }});
}

void SpecBinder::bind(const std::string& key, bool* field) {
  add(key, Entry{[field] { return std::string(*field ? "true" : "false"); },
                 [field](const std::string& v, const std::string& k) {
                   ScenarioSpec one;
                   one.set(k, v);
                   *field = one.get_bool(k);
                 }});
}

void SpecBinder::bind(const std::string& key, std::uint64_t* field) {
  add(key, Entry{[field] {
                   char buf[32];
                   std::snprintf(buf, sizeof(buf), "%" PRIu64, *field);
                   return std::string(buf);
                 },
                 [field](const std::string& v, const std::string& k) {
                   ScenarioSpec one;
                   one.set(k, v);
                   *field = one.get_uint(k);
                 }});
}

void SpecBinder::bind_seconds(const std::string& key, SimTime* field) {
  add(key, Entry{[field] { return format_double(field->to_seconds()); },
                 [field](const std::string& v, const std::string& k) {
                   ScenarioSpec one;
                   one.set(k, v);
                   *field = SimTime::seconds(one.get_double(k));
                 }});
}

void SpecBinder::bind_enum(const std::string& key,
                           std::function<std::string()> get,
                           std::function<bool(const std::string&)> set) {
  add(key, Entry{std::move(get),
                 [set = std::move(set)](const std::string& v,
                                        const std::string& k) {
                   const bool ok = set(v);
                   if (!ok) note_key("unknown enum value for key", k);
                   DDE_CHECK(ok, "SpecBinder: unknown enum value");
                 }});
}

void SpecBinder::apply(const ScenarioSpec& spec) const {
  for (const auto& [key, value] : spec.entries()) {
    const auto it = entries_.find(key);
    if (it == entries_.end()) note_key("unknown key", key);
    DDE_CHECK(it != entries_.end(), "ScenarioSpec: unknown key for this "
                                    "scenario (typo'd knobs are never "
                                    "silently ignored)");
    it->second.set(value, key);
  }
}

ScenarioSpec SpecBinder::to_spec() const {
  ScenarioSpec spec;
  for (const auto& [key, entry] : entries_) spec.set(key, entry.get());
  return spec;
}

}  // namespace dde::scenario
