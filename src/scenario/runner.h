// The pluggable scenario framework: every experiment world (route
// assessment, warehouse trigger, vehicular teleoperation, ...) is a
// ScenarioRunner plugin behind a declarative ScenarioSpec, discoverable
// through a deterministic name registry.
//
// A plugin's lifecycle:
//
//   auto runner = scenario::find_scenario("route");   // registry lookup
//   runner->configure(spec);       // declarative knobs (DDE_CHECKs typos)
//   runner->setup(seed);           // build world + workload for one seed
//   runner->tick(runner->horizon());   // advance the simulation clock
//   ScenarioOutcome out = runner->outcome();   // named result metrics
//   runner->reset();               // drop run state; setup() again reuses it
//
// run(seed) bundles setup/tick/outcome for the common whole-run case.
// Registration is explicit and idempotent (register_route_scenario() etc.,
// invoked lazily by the registry) — no static-initialization order games —
// and the registry iterates in sorted name order, so listings and
// any-scenario sweeps are deterministic and lint-clean.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/sim_time.h"
#include "scenario/spec.h"

namespace dde::scenario {

/// Identity card of a scenario plugin, shown by tools/run_scenario --list.
struct ScenarioMetadata {
  std::string name;         ///< registry key (unique, stable)
  std::string description;  ///< one-line summary
  std::string category;     ///< coarse grouping, e.g. "evaluation"
};

/// Named result metrics of one run. A flat double map keeps outcomes
/// uniform across heterogeneous worlds; iteration is sorted (printable
/// deterministically).
struct ScenarioOutcome {
  std::map<std::string, double> metrics;

  [[nodiscard]] double at(const std::string& key) const;
};

/// One pluggable experiment world (see file comment for the lifecycle).
class ScenarioRunner {
 public:
  virtual ~ScenarioRunner() = default;

  [[nodiscard]] virtual const ScenarioMetadata& metadata() const = 0;

  /// The full knob schema with current values (defaults until configured).
  [[nodiscard]] virtual ScenarioSpec spec() const = 0;

  /// Apply declarative knobs. Unknown keys abort (DDE_CHECK) — a typo'd
  /// knob is never silently ignored. May be called repeatedly; later specs
  /// overlay earlier ones. Must not be called between setup() and reset().
  virtual void configure(const ScenarioSpec& spec) = 0;

  /// Build the world, workload, and protocol stack for `seed`, replacing
  /// any previous run state. Deterministic: equal (spec, seed) builds
  /// bit-for-bit equal runs.
  virtual void setup(std::uint64_t seed) = 0;

  /// Advance the simulation to absolute time `until` (monotone across
  /// calls; a whole run is tick(horizon())).
  virtual void tick(SimTime until) = 0;

  /// The configured end-of-run time.
  [[nodiscard]] virtual SimTime horizon() const = 0;

  /// Collect result metrics for the run advanced so far.
  [[nodiscard]] virtual ScenarioOutcome outcome() = 0;

  /// Drop run state built by setup(); configuration is kept.
  virtual void reset() = 0;

  /// setup + tick(horizon) + outcome, keeping the run state for
  /// inspection until reset() or the next setup().
  [[nodiscard]] ScenarioOutcome run(std::uint64_t seed);
};

using ScenarioFactory = std::unique_ptr<ScenarioRunner> (*)();

/// Register a scenario under `name` (DDE_CHECKs uniqueness). Plugins
/// shipped in this library self-register lazily; external plugins (tests,
/// tools) may call this directly.
void register_scenario(const std::string& name, ScenarioFactory factory);

/// Instantiate the named scenario, or nullptr if unknown.
[[nodiscard]] std::unique_ptr<ScenarioRunner> find_scenario(
    const std::string& name);

/// All registered names, sorted.
[[nodiscard]] std::vector<std::string> scenario_names();

}  // namespace dde::scenario
