// Prefix trie over hierarchical names ("hierarchical semantic indexing",
// Sec. V-A). Used for routing-table lookups (longest prefix match), source
// advertisement indexes, and approximate name substitution.
#pragma once

#include <cstddef>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "naming/name.h"

namespace dde::naming {

/// A trie mapping Names to values of type V.
///
/// Supports exact lookup, longest-prefix match, subtree enumeration, and
/// nearest-name (approximate) match by shared-prefix depth — the mechanism
/// the paper proposes for substituting /…/camera2 when /…/camera1 is
/// unavailable.
template <typename V>
class PrefixIndex {
 public:
  /// Insert or overwrite the value at `name`. Returns true if newly inserted.
  bool insert(const Name& name, V value) {
    Node* node = &root_;
    for (const auto& c : name.components()) {
      node = &node->children.try_emplace(c).first->second;
    }
    const bool fresh = !node->value.has_value();
    node->value = std::move(value);
    if (fresh) ++size_;
    return fresh;
  }

  /// Remove the value at `name`. Returns true if a value was removed.
  /// Empty branches are pruned.
  bool erase(const Name& name) { return erase_rec(root_, name, 0); }

  /// Exact-match lookup.
  [[nodiscard]] const V* find(const Name& name) const {
    const Node* node = walk(name, name.size());
    return node && node->value ? &*node->value : nullptr;
  }
  [[nodiscard]] V* find(const Name& name) {
    return const_cast<V*>(std::as_const(*this).find(name));
  }

  /// Longest-prefix match: the value stored at the deepest prefix of `name`
  /// that has a value. Returns {prefix, value*} or nullopt.
  struct PrefixMatch {
    Name prefix;
    const V* value;
  };
  [[nodiscard]] std::optional<PrefixMatch> longest_prefix(const Name& name) const {
    const Node* node = &root_;
    const Node* best = node->value ? node : nullptr;
    std::size_t best_depth = 0;
    std::size_t depth = 0;
    for (const auto& c : name.components()) {
      auto it = node->children.find(c);
      if (it == node->children.end()) break;
      node = &it->second;
      ++depth;
      if (node->value) {
        best = node;
        best_depth = depth;
      }
    }
    if (!best) return std::nullopt;
    return PrefixMatch{name.prefix(best_depth), &*best->value};
  }

  /// All entries whose name has `prefix` as a prefix, in lexicographic order.
  [[nodiscard]] std::vector<std::pair<Name, const V*>> subtree(const Name& prefix) const {
    std::vector<std::pair<Name, const V*>> out;
    const Node* node = walk(prefix, prefix.size());
    if (!node) return out;
    Name current = prefix;
    collect(*node, current, out);
    return out;
  }

  /// Nearest entry to `name` by shared-prefix depth (ties broken
  /// lexicographically), excluding `name` itself if `exclude_exact`.
  ///
  /// Returns nullopt if the index is empty (or holds only the excluded
  /// exact match). `min_shared` demands at least that many shared leading
  /// components — the "acceptable degree of approximation" knob the paper
  /// suggests for congestion control.
  [[nodiscard]] std::optional<std::pair<Name, const V*>> nearest(
      const Name& name, std::size_t min_shared = 0,
      bool exclude_exact = true) const {
    // Descend as deep as possible along `name`, remembering the deepest
    // node at each depth; then search the deepest subtree that contains a
    // candidate.
    std::vector<const Node*> path{&root_};
    for (const auto& c : name.components()) {
      auto it = path.back()->children.find(c);
      if (it == path.back()->children.end()) break;
      path.push_back(&it->second);
    }
    for (std::size_t depth = path.size(); depth-- > 0;) {
      if (depth < min_shared) break;
      Name base = name.prefix(depth);
      std::vector<std::pair<Name, const V*>> entries;
      Name current = base;
      collect(*path[depth], current, entries);
      for (const auto& entry : entries) {
        if (exclude_exact && entry.first == name) continue;
        return entry;
      }
    }
    return std::nullopt;
  }

  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }

  /// All entries in lexicographic order.
  [[nodiscard]] std::vector<std::pair<Name, const V*>> entries() const {
    return subtree(Name{});
  }

  void clear() {
    root_ = Node{};
    size_ = 0;
  }

 private:
  struct Node {
    std::optional<V> value;
    std::map<std::string, Node> children;  // ordered → deterministic iteration
  };

  [[nodiscard]] const Node* walk(const Name& name, std::size_t depth) const {
    const Node* node = &root_;
    for (std::size_t i = 0; i < depth; ++i) {
      auto it = node->children.find(name.component(i));
      if (it == node->children.end()) return nullptr;
      node = &it->second;
    }
    return node;
  }

  void collect(const Node& node, Name& current,
               std::vector<std::pair<Name, const V*>>& out) const {
    if (node.value) out.emplace_back(current, &*node.value);
    for (const auto& [comp, child] : node.children) {
      Name next = current.child(comp);
      collect(child, next, out);
    }
  }

  bool erase_rec(Node& node, const Name& name, std::size_t depth) {
    if (depth == name.size()) {
      if (!node.value) return false;
      node.value.reset();
      --size_;
      return true;
    }
    auto it = node.children.find(name.component(depth));
    if (it == node.children.end()) return false;
    const bool erased = erase_rec(it->second, name, depth + 1);
    if (erased && !it->second.value && it->second.children.empty()) {
      node.children.erase(it);
    }
    return erased;
  }

  Node root_;
  std::size_t size_ = 0;
};

}  // namespace dde::naming
