#include "naming/name.h"

#include <algorithm>

#include "common/contracts.h"

namespace dde::naming {

Name::Name(std::vector<std::string> components)
    : components_(std::move(components)) {
  // Empty components break prefix matching and the to_string/parse round
  // trip ("/a//b" re-parses as "/a/b"); drop them, as parse() does.
  DDE_CLAMP_OR(
      std::none_of(components_.begin(), components_.end(),
                   [](const std::string& c) { return c.empty(); }),
      components_.erase(std::remove_if(components_.begin(), components_.end(),
                                       [](const std::string& c) {
                                         return c.empty();
                                       }),
                        components_.end()),
      "Name: empty components dropped");
}

Name::Name(std::initializer_list<std::string_view> components) {
  components_.reserve(components.size());
  for (auto c : components) {
    // Same convention as the vector constructor: empties are dropped.
    bool keep = true;
    DDE_CLAMP_OR(!c.empty(), keep = false, "Name: empty component dropped");
    if (keep) components_.emplace_back(c);
  }
}

Name Name::parse(std::string_view path) {
  std::vector<std::string> parts;
  std::size_t pos = 0;
  while (pos < path.size()) {
    const std::size_t next = path.find('/', pos);
    const std::string_view part =
        next == std::string_view::npos ? path.substr(pos)
                                       : path.substr(pos, next - pos);
    if (!part.empty()) parts.emplace_back(part);
    if (next == std::string_view::npos) break;
    pos = next + 1;
  }
  return Name{std::move(parts)};
}

std::string Name::to_string() const {
  if (components_.empty()) return "/";
  std::string out;
  for (const auto& c : components_) {
    out += '/';
    out += c;
  }
  return out;
}

bool Name::is_prefix_of(const Name& other) const noexcept {
  if (size() > other.size()) return false;
  return std::equal(components_.begin(), components_.end(),
                    other.components_.begin());
}

std::size_t Name::shared_prefix_length(const Name& other) const noexcept {
  const std::size_t n = std::min(size(), other.size());
  std::size_t i = 0;
  while (i < n && components_[i] == other.components_[i]) ++i;
  return i;
}

double Name::similarity(const Name& other) const noexcept {
  const std::size_t longer = std::max(size(), other.size());
  if (longer == 0) return 0.0;
  return static_cast<double>(shared_prefix_length(other)) /
         static_cast<double>(longer);
}

Name Name::child(std::string_view component) const {
  DDE_CHECK(!component.empty(), "Name::child: component must be non-empty");
  std::vector<std::string> parts = components_;
  parts.emplace_back(component);
  return Name{std::move(parts)};
}

Name Name::parent() const {
  DDE_CHECK(!empty(), "Name::parent: the root name has no parent");
  std::vector<std::string> parts(components_.begin(),
                                 std::prev(components_.end()));
  return Name{std::move(parts)};
}

Name Name::prefix(std::size_t n) const {
  n = std::min(n, size());
  std::vector<std::string> parts(components_.begin(),
                                 components_.begin() + static_cast<std::ptrdiff_t>(n));
  return Name{std::move(parts)};
}

}  // namespace dde::naming
