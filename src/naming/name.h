// Hierarchical semantic names (Sec. V-A of the paper).
//
// Names are UNIX-path-like: /city/marketplace/south/noon/camera1. Objects,
// labels, and annotators all live in one name space. The key property the
// architecture exploits is that similar objects share long prefixes, so the
// shared-prefix length is a similarity measure usable for approximate
// substitution and sub-additive utility estimation.
#pragma once

#include <compare>
#include <cstddef>
#include <initializer_list>
#include <ostream>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace dde::naming {

/// An immutable hierarchical name: an ordered list of components.
class Name {
 public:
  Name() = default;

  /// Construct from components; empty components are not allowed.
  explicit Name(std::vector<std::string> components);
  Name(std::initializer_list<std::string_view> components);

  /// Parse a "/a/b/c" path. Leading slash optional; empty components
  /// (double slashes) are ignored. "/" parses to the root (empty) name.
  [[nodiscard]] static Name parse(std::string_view path);

  [[nodiscard]] std::size_t size() const noexcept { return components_.size(); }
  [[nodiscard]] bool empty() const noexcept { return components_.empty(); }
  [[nodiscard]] const std::string& component(std::size_t i) const {
    return components_.at(i);
  }
  [[nodiscard]] std::span<const std::string> components() const noexcept {
    return components_;
  }

  /// Render as "/a/b/c" ("/" for the root name).
  [[nodiscard]] std::string to_string() const;

  /// True if `this` is a (non-strict) prefix of `other`.
  [[nodiscard]] bool is_prefix_of(const Name& other) const noexcept;

  /// Number of leading components shared with `other`.
  [[nodiscard]] std::size_t shared_prefix_length(const Name& other) const noexcept;

  /// Similarity in [0,1]: shared prefix length over the longer length.
  /// Two equal names have similarity 1; disjoint roots have 0. The root
  /// name has similarity 0 with everything (including itself), since it
  /// carries no information.
  [[nodiscard]] double similarity(const Name& other) const noexcept;

  /// Name with one more trailing component.
  [[nodiscard]] Name child(std::string_view component) const;

  /// Name with the last component removed. Precondition: !empty().
  [[nodiscard]] Name parent() const;

  /// First `n` components (n clamped to size()).
  [[nodiscard]] Name prefix(std::size_t n) const;

  auto operator<=>(const Name&) const = default;

  friend std::ostream& operator<<(std::ostream& os, const Name& n) {
    return os << n.to_string();
  }

 private:
  std::vector<std::string> components_;
};

}  // namespace dde::naming

namespace std {
template <>
struct hash<dde::naming::Name> {
  size_t operator()(const dde::naming::Name& n) const noexcept {
    size_t h = 0xcbf29ce484222325ULL;
    for (const auto& c : n.components()) {
      h ^= std::hash<std::string>{}(c);
      h *= 0x100000001b3ULL;
    }
    return h;
  }
};
}  // namespace std
