// A registry of named counters, gauges, and histograms — the single place
// run telemetry is published to, instead of every subsystem inventing its
// own ad-hoc struct. The existing structs (athena::AthenaMetrics,
// net::TrafficStats, cache::CacheStats) remain the hot-path accumulators;
// obs/adapters.h publishes them into a registry under stable names at
// report time.
//
// Deterministic by construction: storage is std::map, so iteration and
// serialization order is the lexicographic metric-name order regardless of
// registration order.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <utility>

#include "obs/histogram.h"
#include "obs/json.h"

namespace dde::obs {

class MetricRegistry {
 public:
  /// Monotonic counter (created at zero on first use).
  std::uint64_t& counter(const std::string& name) { return counters_[name]; }

  /// Point-in-time value (created at zero on first use).
  double& gauge(const std::string& name) { return gauges_[name]; }

  /// Histogram; `bounds` applies on first creation only.
  Histogram& histogram(const std::string& name,
                       std::vector<double> bounds = {}) {
    auto it = histograms_.find(name);
    if (it == histograms_.end()) {
      it = histograms_.emplace(name, Histogram(std::move(bounds))).first;
    }
    return it->second;
  }

  [[nodiscard]] const std::map<std::string, std::uint64_t>& counters()
      const noexcept {
    return counters_;
  }
  [[nodiscard]] const std::map<std::string, double>& gauges() const noexcept {
    return gauges_;
  }
  [[nodiscard]] const std::map<std::string, Histogram>& histograms()
      const noexcept {
    return histograms_;
  }

  [[nodiscard]] std::size_t size() const noexcept {
    return counters_.size() + gauges_.size() + histograms_.size();
  }

  /// Serialize every metric, key-sorted:
  /// {"counters":{...},"gauges":{...},"histograms":{name:{bounds,counts,...}}}
  [[nodiscard]] json::Value to_json() const {
    json::Object counters;
    for (const auto& [name, v] : counters_) counters[name] = json::Value(v);
    json::Object gauges;
    for (const auto& [name, v] : gauges_) gauges[name] = json::Value(v);
    json::Object histograms;
    for (const auto& [name, h] : histograms_) {
      json::Array bounds;
      for (double b : h.bounds()) bounds.emplace_back(b);
      json::Array counts;
      for (std::uint64_t c : h.counts()) counts.emplace_back(c);
      json::Object entry;
      entry["count"] = json::Value(h.count());
      entry["sum"] = json::Value(h.sum());
      entry["mean"] = json::Value(h.mean());
      entry["min"] = json::Value(h.min());
      entry["max"] = json::Value(h.max());
      entry["bounds"] = json::Value(std::move(bounds));
      entry["counts"] = json::Value(std::move(counts));
      histograms[name] = json::Value(std::move(entry));
    }
    json::Object out;
    out["counters"] = json::Value(std::move(counters));
    out["gauges"] = json::Value(std::move(gauges));
    out["histograms"] = json::Value(std::move(histograms));
    return json::Value(std::move(out));
  }

 private:
  std::map<std::string, std::uint64_t> counters_;
  std::map<std::string, double> gauges_;
  std::map<std::string, Histogram> histograms_;
};

}  // namespace dde::obs
