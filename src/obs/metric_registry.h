// A registry of named counters, gauges, and histograms — the single place
// run telemetry is published to, instead of every subsystem inventing its
// own ad-hoc struct. The existing structs (athena::AthenaMetrics,
// net::TrafficStats, cache::CacheStats) remain the hot-path accumulators;
// athena/obs_adapters.h publishes them into a registry under stable names at
// report time.
//
// Deterministic by construction: storage is std::map, so iteration and
// serialization order is the lexicographic metric-name order regardless of
// registration order.
//
// Hot paths never pay the string-keyed lookup: intern_counter()/
// intern_gauge()/intern_histogram() resolve a name ONCE at wiring time and
// hand back an O(1) handle onto the metric's cell (std::map nodes are
// pointer-stable, so handles survive later registrations). Per-event code
// bumps handles; the name-keyed accessors are for wiring and report time.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <utility>

#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "obs/histogram.h"
#include "obs/json.h"

namespace dde::obs {

/// O(1) pre-interned handle to one counter cell. Cheap to copy; valid as
/// long as the registry it came from is alive.
class CounterHandle {
 public:
  CounterHandle() noexcept = default;
  void inc(std::uint64_t delta = 1) noexcept { *cell_ += delta; }
  void set(std::uint64_t value) noexcept { *cell_ = value; }
  [[nodiscard]] std::uint64_t value() const noexcept { return *cell_; }

 private:
  friend class MetricRegistry;
  explicit CounterHandle(std::uint64_t* cell) noexcept : cell_(cell) {}
  std::uint64_t* cell_ = nullptr;
};

/// O(1) pre-interned handle to one gauge cell.
class GaugeHandle {
 public:
  GaugeHandle() noexcept = default;
  void set(double value) noexcept { *cell_ = value; }
  void add(double delta) noexcept { *cell_ += delta; }
  [[nodiscard]] double value() const noexcept { return *cell_; }

 private:
  friend class MetricRegistry;
  explicit GaugeHandle(double* cell) noexcept : cell_(cell) {}
  double* cell_ = nullptr;
};

/// O(1) pre-interned handle to one histogram.
class HistogramHandle {
 public:
  HistogramHandle() noexcept = default;
  void observe(double value) noexcept { cell_->add(value); }
  [[nodiscard]] const Histogram& histogram() const noexcept { return *cell_; }

 private:
  friend class MetricRegistry;
  explicit HistogramHandle(Histogram* cell) noexcept : cell_(cell) {}
  Histogram* cell_ = nullptr;
};

/// Single-owner by design: each registry belongs to one run (and, under the
/// PDES plan, one shard) — it is never locked, only confined. The maps are
/// DDE_GUARDED_BY(owner_) and every method claims the capability with
/// owner_.assert_held(), so clang -Wthread-safety records exactly which
/// sites must acquire a real shard capability when cross-shard hand-off
/// arrives. Zero runtime cost; see common/mutex.h for the SingleOwner
/// story. (Handles write raw cell pointers, which carry the same
/// confinement contract as the registry they were interned from.)
class MetricRegistry {
 public:
  /// Monotonic counter (created at zero on first use).
  std::uint64_t& counter(const std::string& name) {
    owner_.assert_held();
    return counters_[name];
  }

  /// Point-in-time value (created at zero on first use).
  double& gauge(const std::string& name) {
    owner_.assert_held();
    return gauges_[name];
  }

  /// Resolve `name` once (creating the zeroed cell if needed) and return an
  /// O(1) handle for per-event use. Wiring-time only: the lookup cost lands
  /// here, never on the event path.
  [[nodiscard]] CounterHandle intern_counter(const std::string& name) {
    owner_.assert_held();
    return CounterHandle{&counters_[name]};
  }
  [[nodiscard]] GaugeHandle intern_gauge(const std::string& name) {
    owner_.assert_held();
    return GaugeHandle{&gauges_[name]};
  }
  [[nodiscard]] HistogramHandle intern_histogram(
      const std::string& name, std::vector<double> bounds = {}) {
    return HistogramHandle{&histogram(name, std::move(bounds))};
  }

  /// Histogram; `bounds` applies on first creation only.
  Histogram& histogram(const std::string& name,
                       std::vector<double> bounds = {}) {
    owner_.assert_held();
    auto it = histograms_.find(name);
    if (it == histograms_.end()) {
      it = histograms_.emplace(name, Histogram(std::move(bounds))).first;
    }
    return it->second;
  }

  [[nodiscard]] const std::map<std::string, std::uint64_t>& counters()
      const noexcept {
    owner_.assert_held();
    return counters_;
  }
  [[nodiscard]] const std::map<std::string, double>& gauges() const noexcept {
    owner_.assert_held();
    return gauges_;
  }
  [[nodiscard]] const std::map<std::string, Histogram>& histograms()
      const noexcept {
    owner_.assert_held();
    return histograms_;
  }

  [[nodiscard]] std::size_t size() const noexcept {
    owner_.assert_held();
    return counters_.size() + gauges_.size() + histograms_.size();
  }

  /// Serialize every metric, key-sorted:
  /// {"counters":{...},"gauges":{...},"histograms":{name:{bounds,counts,...}}}
  [[nodiscard]] json::Value to_json() const {
    owner_.assert_held();
    json::Object counters;
    for (const auto& [name, v] : counters_) counters[name] = json::Value(v);
    json::Object gauges;
    for (const auto& [name, v] : gauges_) gauges[name] = json::Value(v);
    json::Object histograms;
    for (const auto& [name, h] : histograms_) {
      json::Array bounds;
      for (double b : h.bounds()) bounds.emplace_back(b);
      json::Array counts;
      for (std::uint64_t c : h.counts()) counts.emplace_back(c);
      json::Object entry;
      entry["count"] = json::Value(h.count());
      entry["sum"] = json::Value(h.sum());
      entry["mean"] = json::Value(h.mean());
      entry["min"] = json::Value(h.min());
      entry["max"] = json::Value(h.max());
      entry["bounds"] = json::Value(std::move(bounds));
      entry["counts"] = json::Value(std::move(counts));
      histograms[name] = json::Value(std::move(entry));
    }
    json::Object out;
    out["counters"] = json::Value(std::move(counters));
    out["gauges"] = json::Value(std::move(gauges));
    out["histograms"] = json::Value(std::move(histograms));
    return json::Value(std::move(out));
  }

 private:
  common::SingleOwner owner_;
  std::map<std::string, std::uint64_t> counters_ DDE_GUARDED_BY(owner_);
  std::map<std::string, double> gauges_ DDE_GUARDED_BY(owner_);
  std::map<std::string, Histogram> histograms_ DDE_GUARDED_BY(owner_);
};

}  // namespace dde::obs
