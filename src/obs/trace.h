// Structured trace sink: one stream for every observability event in a run.
//
// Protocol and network layers emit flat, schema-stable events describing the
// query lifecycle (issue → plan → interest → fetch/retry/failover →
// decide/expire/shed) and per-hop packet movement (send/deliver, subsuming
// the raw net::TraceEvent hook). The sink fans each event out to up to
// three consumers:
//
//   1. an in-memory ring buffer (bounded; for tests and tools),
//   2. a JSONL writer (one event per line, stable field order),
//   3. the derived-telemetry engine, which computes per-decision
//      distributions — age-upon-decision, slack-at-decision,
//      bytes-per-decision — in the sink, not in the protocol.
//
// Emission is opt-in per node/network (a null sink pointer costs one branch)
// and the sink never schedules events or touches RNG streams, so attaching
// one is observation only: the simulated trajectory is bit-for-bit the same
// with and without it.
#pragma once

#include <cstdint>
#include <deque>
#include <iosfwd>
#include <unordered_map>
#include <vector>

#include "common/mutex.h"
#include "common/sim_time.h"
#include "common/thread_annotations.h"
#include "obs/histogram.h"

namespace dde::obs {

/// Every event kind the layer knows. Stable names (see to_string) form the
/// JSONL schema; append new kinds at the end, never reorder.
enum class EventKind : std::uint8_t {
  kQueryIssue,   ///< origin issued a query; subject = #labels mentioned,
                 ///< value = absolute deadline (s)
  kQueryReject,  ///< admission control rejected the query at issue
  kPlan,         ///< origin computed a retrieval order; subject = its length
  kInterest,     ///< a node bookmarked a forwarded interest; subject = source
  kFetch,        ///< origin issued an object request; subject = source,
                 ///< bytes = request size, value = attempt count
  kRetry,        ///< request watchdog fired, request re-eligible; subject = source
  kFailover,     ///< selection re-ran after retry exhaustion; subject = #labels moved
  kObjectRx,     ///< an object settled this query's outstanding request;
                 ///< subject = source, bytes = object size
  kLabelSettle,  ///< a label value entered the assignment; value = evaluated_at (s)
  kDecide,       ///< query resolved; subject = chosen action, value = latency (s)
  kExpire,       ///< deadline passed unresolved
  kShed,         ///< overload protection dropped the query deliberately
  kHopSend,      ///< packet enqueued on a link; subject = receiving node
  kHopDeliver,   ///< packet handed to the receiving node; subject = receiver
  kNodeCrash,    ///< node lost volatile state (cold/warm restart policy);
                 ///< subject = in-flight local queries dropped
  kNodeRestart,  ///< node came back and re-announced; subject = restart epoch
  kCrashDrop,    ///< in-flight local query dropped to failed_crash
  kRecoveryHello,///< neighbor processed a restart hello; subject = restarted
                 ///< node, value = restart→processing lag (s)
};

[[nodiscard]] const char* to_string(EventKind kind) noexcept;

/// One flat trace event. Field meaning is kind-specific (see EventKind);
/// unused fields stay zero. Flat on purpose: every event serializes to the
/// same JSONL columns, so consumers never need per-kind parsers.
struct Event {
  EventKind kind = EventKind::kQueryIssue;
  SimTime at;                 ///< simulated time of the event
  std::uint64_t node = 0;     ///< emitting node id
  std::uint64_t query = 0;    ///< query id (0 = not query-scoped)
  std::uint64_t subject = 0;  ///< kind-specific id (source, label, peer...)
  std::uint64_t bytes = 0;    ///< kind-specific byte volume
  double value = 0.0;         ///< kind-specific scalar (seconds, mostly)
};

/// Per-decision distributions derived from the event stream.
struct DecisionTelemetry {
  /// decide_time − oldest evaluated_at among the labels the origin settled
  /// for this query: how stale the weakest evidence backing the decision
  /// was at the moment it was made.
  Histogram age_upon_decision_s{time_buckets_s()};
  /// absolute deadline − decide_time: how close to the wire the decision
  /// landed.
  Histogram slack_at_decision_s{time_buckets_s()};
  /// Request + delivered-object bytes attributed to the query at its
  /// origin, counted once (not per hop).
  Histogram bytes_per_decision{byte_buckets()};

  void merge(const DecisionTelemetry& other) {
    age_upon_decision_s.merge(other.age_upon_decision_s);
    slack_at_decision_s.merge(other.slack_at_decision_s);
    bytes_per_decision.merge(other.bytes_per_decision);
  }
};

/// Single-owner by design: each sink is attached to one simulator run
/// (one shard under the PDES plan) and is confined, never locked. Mutable
/// state is DDE_GUARDED_BY(owner_); public accessors claim the capability
/// with owner_.assert_held() at zero cost, so -Wthread-safety tracks every
/// access that must acquire a real shard capability once cross-shard
/// merging lands. See common/mutex.h for the SingleOwner story.
class TraceSink {
 public:
  struct Options {
    /// Keep the most recent this-many events in memory (0 = no ring).
    std::size_t ring_capacity = 0;
    /// Write every event as a JSONL line here (nullptr = off). The stream
    /// must outlive the sink.
    std::ostream* jsonl = nullptr;
    /// Compute per-decision derived telemetry.
    bool derive = true;
  };

  TraceSink() : TraceSink(Options{}) {}
  explicit TraceSink(Options opts) : opts_(opts) {}

  TraceSink(const TraceSink&) = delete;
  TraceSink& operator=(const TraceSink&) = delete;

  /// Ingest one event (hot path; cheap unless JSONL is on).
  void emit(const Event& ev);

  /// Total events emitted into this sink.
  [[nodiscard]] std::uint64_t emitted() const noexcept {
    owner_.assert_held();
    return emitted_;
  }

  /// Events per kind (index by static_cast<size_t>(kind)).
  [[nodiscard]] const std::vector<std::uint64_t>& kind_counts() const noexcept {
    owner_.assert_held();
    return kind_counts_;
  }

  /// Snapshot of the ring, oldest first. Empty when ring_capacity == 0.
  [[nodiscard]] std::vector<Event> ring_snapshot() const {
    owner_.assert_held();
    return {ring_.begin(), ring_.end()};
  }

  [[nodiscard]] const DecisionTelemetry& decision_telemetry() const noexcept {
    owner_.assert_held();
    return telemetry_;
  }

  /// Serialize one event as a single JSONL line (no trailing newline).
  /// Field order and formatting are stable — this IS the wire schema:
  /// {"t":<s>,"kind":"<name>","node":N,"query":N,"subject":N,"bytes":N,"value":<num>}
  [[nodiscard]] static std::string to_jsonl(const Event& ev);

 private:
  void derive(const Event& ev) DDE_REQUIRES(owner_);

  /// Origin-side bookkeeping for one in-flight query.
  struct Track {
    double deadline_s = 0.0;
    std::uint64_t bytes = 0;
    /// label → latest evaluated_at (s); small, queries mention few labels.
    std::vector<std::pair<std::uint64_t, double>> evidence;
  };

  common::SingleOwner owner_;
  Options opts_;
  std::uint64_t emitted_ DDE_GUARDED_BY(owner_) = 0;
  std::vector<std::uint64_t> kind_counts_ DDE_GUARDED_BY(owner_) =
      std::vector<std::uint64_t>(24, 0);
  std::deque<Event> ring_ DDE_GUARDED_BY(owner_);
  DecisionTelemetry telemetry_ DDE_GUARDED_BY(owner_);
  std::unordered_map<std::uint64_t, Track> tracks_ DDE_GUARDED_BY(owner_);
};

}  // namespace dde::obs
