#include "obs/trace.h"

#include <algorithm>
#include <cstdio>
#include <ostream>

#include "obs/json.h"

namespace dde::obs {

const char* to_string(EventKind kind) noexcept {
  switch (kind) {
    case EventKind::kQueryIssue: return "query_issue";
    case EventKind::kQueryReject: return "query_reject";
    case EventKind::kPlan: return "plan";
    case EventKind::kInterest: return "interest";
    case EventKind::kFetch: return "fetch";
    case EventKind::kRetry: return "retry";
    case EventKind::kFailover: return "failover";
    case EventKind::kObjectRx: return "object_rx";
    case EventKind::kLabelSettle: return "label_settle";
    case EventKind::kDecide: return "decide";
    case EventKind::kExpire: return "expire";
    case EventKind::kShed: return "shed";
    case EventKind::kHopSend: return "hop_send";
    case EventKind::kHopDeliver: return "hop_deliver";
    case EventKind::kNodeCrash: return "node_crash";
    case EventKind::kNodeRestart: return "node_restart";
    case EventKind::kCrashDrop: return "crash_drop";
    case EventKind::kRecoveryHello: return "recovery_hello";
  }
  return "?";
}

std::string TraceSink::to_jsonl(const Event& ev) {
  // Hand-rolled for a stable schema AND deterministic formatting: "t" keeps
  // fixed 6-decimal (microsecond) precision, "value" uses the shortest
  // round-trip form shared with the JSON dumper.
  char head[64];
  std::snprintf(head, sizeof(head), "{\"t\":%.6f,\"kind\":\"",
                ev.at.to_seconds());
  std::string line(head);
  line += to_string(ev.kind);
  line += "\",\"node\":";
  line += std::to_string(ev.node);
  line += ",\"query\":";
  line += std::to_string(ev.query);
  line += ",\"subject\":";
  line += std::to_string(ev.subject);
  line += ",\"bytes\":";
  line += std::to_string(ev.bytes);
  line += ",\"value\":";
  line += json::number_to_string(ev.value);
  line += "}";
  return line;
}

void TraceSink::emit(const Event& ev) {
  owner_.assert_held();
  ++emitted_;
  const auto idx = static_cast<std::size_t>(ev.kind);
  if (idx < kind_counts_.size()) ++kind_counts_[idx];

  if (opts_.ring_capacity > 0) {
    if (ring_.size() == opts_.ring_capacity) ring_.pop_front();
    ring_.push_back(ev);
  }
  if (opts_.jsonl != nullptr) {
    *opts_.jsonl << to_jsonl(ev) << '\n';
  }
  if (opts_.derive) derive(ev);
}

void TraceSink::derive(const Event& ev) {
  switch (ev.kind) {
    case EventKind::kQueryIssue: {
      Track t;
      t.deadline_s = ev.value;
      tracks_[ev.query] = std::move(t);
      break;
    }
    case EventKind::kFetch:
    case EventKind::kObjectRx: {
      const auto it = tracks_.find(ev.query);
      if (it != tracks_.end()) it->second.bytes += ev.bytes;
      break;
    }
    case EventKind::kLabelSettle: {
      const auto it = tracks_.find(ev.query);
      if (it == tracks_.end()) break;
      auto& evidence = it->second.evidence;
      const auto pos = std::find_if(
          evidence.begin(), evidence.end(),
          [&](const auto& kv) { return kv.first == ev.subject; });
      if (pos == evidence.end()) {
        evidence.emplace_back(ev.subject, ev.value);
      } else {
        pos->second = std::max(pos->second, ev.value);
      }
      break;
    }
    case EventKind::kDecide: {
      const auto it = tracks_.find(ev.query);
      if (it == tracks_.end()) break;
      const Track& t = it->second;
      const double now_s = ev.at.to_seconds();
      if (!t.evidence.empty()) {
        double oldest = t.evidence.front().second;
        for (const auto& [label, at_s] : t.evidence) {
          oldest = std::min(oldest, at_s);
        }
        telemetry_.age_upon_decision_s.add(now_s - oldest);
      }
      telemetry_.slack_at_decision_s.add(t.deadline_s - now_s);
      telemetry_.bytes_per_decision.add(static_cast<double>(t.bytes));
      tracks_.erase(it);
      break;
    }
    case EventKind::kQueryReject:
    case EventKind::kExpire:
    case EventKind::kShed:
    case EventKind::kCrashDrop:
      tracks_.erase(ev.query);
      break;
    default:
      break;
  }
}

}  // namespace dde::obs
