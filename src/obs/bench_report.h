// Machine-readable bench reports: every experiment binary emits a
// BENCH_<name>.json next to its text output, giving the repo a perf/quality
// trajectory that tools (and CI) can diff across PRs.
//
// Schema (version 1), validated by validate_bench_report() and by
// tools/check_bench_report:
//
//   {
//     "bench": "<bench name>",
//     "schema_version": 1,
//     "schemes": {
//       "<scheme or config-point key>": {
//         "metrics": {
//           "<metric>": {"count":N,"mean":..,"stddev":..,
//                        "min":..,"max":..,"ci95":..}
//         },
//         "histograms": {                       // optional per scheme
//           "<name>": {"count":N,"sum":..,"mean":..,"min":..,"max":..,
//                      "bounds":[..],"counts":[..]}   // |counts|=|bounds|+1
//         }
//       }
//     }
//   }
//
// Report writing is on by default and silent on stdout (text output stays
// bit-identical to a build without reports). Environment knobs:
//   DDE_BENCH_REPORT=0       → skip writing entirely
//   DDE_BENCH_REPORT_DIR=<d> → write into <d> instead of the CWD
#pragma once

#include <string>

#include "common/stats.h"
#include "obs/histogram.h"
#include "obs/json.h"

namespace dde::obs {

class BenchReport {
 public:
  explicit BenchReport(std::string bench_name)
      : bench_name_(std::move(bench_name)) {}

  /// Record one metric summary under `scheme` (any config-point key).
  void add_metric(const std::string& scheme, const std::string& metric,
                  const RunningStats& stats);

  /// Record one histogram under `scheme`.
  void add_histogram(const std::string& scheme, const std::string& name,
                     const Histogram& histogram);

  [[nodiscard]] const std::string& name() const noexcept {
    return bench_name_;
  }

  [[nodiscard]] json::Value to_json() const { return root_view(); }

  /// Write BENCH_<name>.json (pretty-printed). Returns the path written, or
  /// an empty string when disabled via DDE_BENCH_REPORT=0 or on I/O failure.
  /// Never prints to stdout.
  std::string write() const;

 private:
  [[nodiscard]] json::Value root_view() const;

  std::string bench_name_;
  /// scheme → ("metrics" | "histograms") → name → serialized entry.
  json::Object schemes_;
};

/// Schema check for a parsed report; on failure returns false and, if
/// `error` is non-null, stores a one-line diagnostic.
[[nodiscard]] bool validate_bench_report(const json::Value& report,
                                         std::string* error = nullptr);

}  // namespace dde::obs
