// Deterministic fixed-bucket histogram for the observability layer.
//
// Bucket boundaries are chosen at construction and never change, so two
// runs that observe the same samples produce bit-identical bucket counts —
// the property the BENCH_*.json perf trajectory depends on. No dynamic
// rebinning, no sampling: every add() lands in exactly one bucket.
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

namespace dde::obs {

/// Fixed-bucket histogram. Bucket i counts samples x with
/// bounds[i-1] < x <= bounds[i]; one extra overflow bucket catches
/// x > bounds.back(). Exact count/sum/min/max are tracked alongside.
class Histogram {
 public:
  Histogram() = default;

  /// `upper_bounds` must be strictly increasing (checked in debug builds).
  explicit Histogram(std::vector<double> upper_bounds)
      : bounds_(std::move(upper_bounds)),
        counts_(bounds_.size() + 1, 0) {}

  void add(double x) noexcept {
    if (counts_.empty()) counts_.assign(1, 0);  // default: single bucket
    const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), x);
    ++counts_[static_cast<std::size_t>(it - bounds_.begin())];
    ++count_;
    sum_ += x;
    min_ = count_ == 1 ? x : std::min(min_, x);
    max_ = count_ == 1 ? x : std::max(max_, x);
  }

  /// Fold `other` into this histogram. Buckets must match (or this one must
  /// still be empty, in which case it adopts other's bounds).
  void merge(const Histogram& other) {
    if (counts_.empty() || count_ == 0) {
      if (bounds_.empty()) {
        bounds_ = other.bounds_;
        counts_ = other.counts_;
        count_ = other.count_;
        sum_ = other.sum_;
        min_ = other.min_;
        max_ = other.max_;
        return;
      }
    }
    if (other.count_ == 0) return;
    if (other.bounds_ == bounds_) {
      for (std::size_t i = 0; i < counts_.size() && i < other.counts_.size();
           ++i) {
        counts_[i] += other.counts_[i];
      }
      min_ = count_ == 0 ? other.min_ : std::min(min_, other.min_);
      max_ = count_ == 0 ? other.max_ : std::max(max_, other.max_);
      count_ += other.count_;
      sum_ += other.sum_;
    }
  }

  [[nodiscard]] const std::vector<double>& bounds() const noexcept {
    return bounds_;
  }
  /// Bucket counts; size() == bounds().size() + 1 (last = overflow).
  [[nodiscard]] const std::vector<std::uint64_t>& counts() const noexcept {
    return counts_;
  }
  [[nodiscard]] std::uint64_t count() const noexcept { return count_; }
  [[nodiscard]] double sum() const noexcept { return sum_; }
  [[nodiscard]] double mean() const noexcept {
    return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
  }
  [[nodiscard]] double min() const noexcept { return count_ ? min_ : 0.0; }
  [[nodiscard]] double max() const noexcept { return count_ ? max_ : 0.0; }

 private:
  std::vector<double> bounds_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Bucket ladder for latencies/ages/slacks in seconds (0.1 s … 500 s,
/// roughly geometric — covers everything a Sec. VII scenario produces).
[[nodiscard]] inline std::vector<double> time_buckets_s() {
  return {0.1, 0.2, 0.5, 1, 2, 5, 10, 20, 50, 100, 200, 500};
}

/// Bucket ladder for per-decision byte volumes (1 KB … 100 MB, geometric).
[[nodiscard]] inline std::vector<double> byte_buckets() {
  return {1e3, 3e3, 1e4, 3e4, 1e5, 3e5, 1e6, 3e6, 1e7, 3e7, 1e8};
}

}  // namespace dde::obs
