#include "obs/bench_report.h"

#include <cstdlib>
#include <fstream>

namespace dde::obs {
namespace {

json::Object& scheme_section(json::Object& schemes, const std::string& scheme,
                             const std::string& section) {
  json::Value& entry = schemes[scheme];
  if (!entry.is_object()) entry = json::Value(json::Object{});
  json::Value& sec = entry.as_object()[section];
  if (!sec.is_object()) sec = json::Value(json::Object{});
  return sec.as_object();
}

}  // namespace

void BenchReport::add_metric(const std::string& scheme,
                             const std::string& metric,
                             const RunningStats& stats) {
  json::Object entry;
  entry["count"] = json::Value(stats.count());
  entry["mean"] = json::Value(stats.mean());
  entry["stddev"] = json::Value(stats.stddev());
  entry["min"] = json::Value(stats.min());
  entry["max"] = json::Value(stats.max());
  entry["ci95"] = json::Value(stats.ci95());
  scheme_section(schemes_, scheme, "metrics")[metric] =
      json::Value(std::move(entry));
}

void BenchReport::add_histogram(const std::string& scheme,
                                const std::string& name,
                                const Histogram& histogram) {
  json::Array bounds;
  for (double b : histogram.bounds()) bounds.emplace_back(b);
  json::Array counts;
  for (std::uint64_t c : histogram.counts()) counts.emplace_back(c);
  json::Object entry;
  entry["count"] = json::Value(histogram.count());
  entry["sum"] = json::Value(histogram.sum());
  entry["mean"] = json::Value(histogram.mean());
  entry["min"] = json::Value(histogram.min());
  entry["max"] = json::Value(histogram.max());
  entry["bounds"] = json::Value(std::move(bounds));
  entry["counts"] = json::Value(std::move(counts));
  scheme_section(schemes_, scheme, "histograms")[name] =
      json::Value(std::move(entry));
}

json::Value BenchReport::root_view() const {
  json::Object root;
  root["bench"] = json::Value(bench_name_);
  root["schema_version"] = json::Value(1);
  root["schemes"] = json::Value(schemes_);
  return json::Value(std::move(root));
}

std::string BenchReport::write() const {
  if (const char* flag = std::getenv("DDE_BENCH_REPORT");
      flag != nullptr && std::string_view(flag) == "0") {
    return {};
  }
  std::string path = "BENCH_" + bench_name_ + ".json";
  if (const char* dir = std::getenv("DDE_BENCH_REPORT_DIR");
      dir != nullptr && *dir != '\0') {
    path = std::string(dir) + "/" + path;
  }
  std::ofstream out(path);
  if (!out) return {};
  out << root_view().dump(2) << '\n';
  return out ? path : std::string{};
}

namespace {

bool fail(std::string* error, const std::string& what) {
  if (error) *error = what;
  return false;
}

bool require_number(const json::Value& obj, const char* key,
                    const std::string& where, std::string* error) {
  const json::Value* v = obj.find(key);
  if (v == nullptr || !v->is_number()) {
    return fail(error, where + ": missing numeric field \"" + key + "\"");
  }
  return true;
}

bool validate_summary(const json::Value& summary, const std::string& where,
                      std::string* error) {
  if (!summary.is_object()) return fail(error, where + ": not an object");
  for (const char* key : {"count", "mean", "stddev", "min", "max", "ci95"}) {
    if (!require_number(summary, key, where, error)) return false;
  }
  return true;
}

bool validate_histogram(const json::Value& histogram, const std::string& where,
                        std::string* error) {
  if (!histogram.is_object()) return fail(error, where + ": not an object");
  for (const char* key : {"count", "sum", "mean", "min", "max"}) {
    if (!require_number(histogram, key, where, error)) return false;
  }
  const json::Value* bounds = histogram.find("bounds");
  const json::Value* counts = histogram.find("counts");
  if (bounds == nullptr || !bounds->is_array()) {
    return fail(error, where + ": missing \"bounds\" array");
  }
  if (counts == nullptr || !counts->is_array()) {
    return fail(error, where + ": missing \"counts\" array");
  }
  if (counts->as_array().size() != bounds->as_array().size() + 1) {
    return fail(error, where + ": |counts| must be |bounds|+1");
  }
  double prev = 0.0;
  bool first = true;
  for (const auto& b : bounds->as_array()) {
    if (!b.is_number()) return fail(error, where + ": non-numeric bound");
    if (!first && b.as_number() <= prev) {
      return fail(error, where + ": bounds not strictly increasing");
    }
    prev = b.as_number();
    first = false;
  }
  for (const auto& c : counts->as_array()) {
    if (!c.is_number()) return fail(error, where + ": non-numeric count");
  }
  return true;
}

}  // namespace

bool validate_bench_report(const json::Value& report, std::string* error) {
  if (!report.is_object()) return fail(error, "report: not a JSON object");
  const json::Value* bench = report.find("bench");
  if (bench == nullptr || !bench->is_string() || bench->as_string().empty()) {
    return fail(error, "report: missing non-empty \"bench\" string");
  }
  const json::Value* version = report.find("schema_version");
  if (version == nullptr || !version->is_number() ||
      version->as_number() != 1.0) {
    return fail(error, "report: \"schema_version\" must be 1");
  }
  const json::Value* schemes = report.find("schemes");
  if (schemes == nullptr || !schemes->is_object() ||
      schemes->as_object().empty()) {
    return fail(error, "report: missing non-empty \"schemes\" object");
  }
  for (const auto& [scheme, entry] : schemes->as_object()) {
    const std::string where = "schemes." + scheme;
    if (!entry.is_object()) return fail(error, where + ": not an object");
    const json::Value* metrics = entry.find("metrics");
    if (metrics == nullptr || !metrics->is_object()) {
      return fail(error, where + ": missing \"metrics\" object");
    }
    for (const auto& [metric, summary] : metrics->as_object()) {
      if (!validate_summary(summary, where + ".metrics." + metric, error)) {
        return false;
      }
    }
    if (const json::Value* histograms = entry.find("histograms")) {
      if (!histograms->is_object()) {
        return fail(error, where + ": \"histograms\" must be an object");
      }
      for (const auto& [name, histogram] : histograms->as_object()) {
        if (!validate_histogram(histogram, where + ".histograms." + name,
                                error)) {
          return false;
        }
      }
    }
  }
  if (error) error->clear();
  return true;
}

}  // namespace dde::obs
