// Minimal JSON value type for the observability layer: machine-readable
// bench reports (BENCH_*.json), report schema validation, and tests.
//
// Deliberately tiny and dependency-free: objects are std::map (so every
// serialization is deterministic, key-sorted), numbers are doubles, and the
// parser accepts exactly RFC-8259 JSON minus \u escapes beyond ASCII.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

namespace dde::obs::json {

class Value;
using Array = std::vector<Value>;
/// std::map, not unordered: dumps are deterministic and key-sorted.
using Object = std::map<std::string, Value>;

/// A JSON document node.
class Value {
 public:
  Value() : v_(nullptr) {}
  Value(std::nullptr_t) : v_(nullptr) {}
  Value(bool b) : v_(b) {}
  Value(double d) : v_(d) {}
  Value(int i) : v_(static_cast<double>(i)) {}
  Value(std::uint64_t u) : v_(static_cast<double>(u)) {}
  Value(const char* s) : v_(std::string(s)) {}
  Value(std::string s) : v_(std::move(s)) {}
  Value(Array a) : v_(std::move(a)) {}
  Value(Object o) : v_(std::move(o)) {}

  [[nodiscard]] bool is_null() const noexcept { return holds<std::nullptr_t>(); }
  [[nodiscard]] bool is_bool() const noexcept { return holds<bool>(); }
  [[nodiscard]] bool is_number() const noexcept { return holds<double>(); }
  [[nodiscard]] bool is_string() const noexcept { return holds<std::string>(); }
  [[nodiscard]] bool is_array() const noexcept { return holds<Array>(); }
  [[nodiscard]] bool is_object() const noexcept { return holds<Object>(); }

  [[nodiscard]] bool as_bool() const { return std::get<bool>(v_); }
  [[nodiscard]] double as_number() const { return std::get<double>(v_); }
  [[nodiscard]] const std::string& as_string() const {
    return std::get<std::string>(v_);
  }
  [[nodiscard]] const Array& as_array() const { return std::get<Array>(v_); }
  [[nodiscard]] const Object& as_object() const { return std::get<Object>(v_); }
  [[nodiscard]] Array& as_array() { return std::get<Array>(v_); }
  [[nodiscard]] Object& as_object() { return std::get<Object>(v_); }

  /// Object member lookup; nullptr if not an object or key absent.
  [[nodiscard]] const Value* find(const std::string& key) const;

  /// Serialize. indent < 0 → compact one-line form; indent >= 0 →
  /// pretty-printed with that many spaces per level. Number formatting is
  /// deterministic: integers (within 2^53) print without a decimal point,
  /// everything else with shortest round-trip precision.
  [[nodiscard]] std::string dump(int indent = -1) const;

  /// Parse `text`. On failure returns a null Value and, if `error` is
  /// non-null, stores a one-line diagnostic with the byte offset.
  static Value parse(std::string_view text, std::string* error = nullptr);

 private:
  template <typename T>
  [[nodiscard]] bool holds() const noexcept {
    return std::holds_alternative<T>(v_);
  }
  void dump_to(std::string& out, int indent, int depth) const;

  std::variant<std::nullptr_t, bool, double, std::string, Array, Object> v_;
};

/// Deterministic number → string used by dump() (and the JSONL trace
/// writer): integral values without a decimal point, otherwise %.17g
/// trimmed to shortest round-trip form.
[[nodiscard]] std::string number_to_string(double d);

}  // namespace dde::obs::json
