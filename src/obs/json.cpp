#include "obs/json.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace dde::obs::json {
namespace {

struct Parser {
  std::string_view text;
  std::size_t pos = 0;
  std::string error;
  bool failed = false;

  void fail(const std::string& what) {
    if (!failed) {
      failed = true;
      error = what + " at offset " + std::to_string(pos);
    }
  }

  void skip_ws() {
    while (pos < text.size()) {
      const char c = text[pos];
      if (c == ' ' || c == '\t' || c == '\n' || c == '\r') {
        ++pos;
      } else {
        break;
      }
    }
  }

  [[nodiscard]] bool eof() const { return pos >= text.size(); }
  [[nodiscard]] char peek() const { return text[pos]; }

  bool consume(char c) {
    if (eof() || text[pos] != c) return false;
    ++pos;
    return true;
  }

  bool expect(char c) {
    if (consume(c)) return true;
    fail(std::string("expected '") + c + "'");
    return false;
  }

  Value parse_value(int depth) {
    if (depth > 64) {
      fail("nesting too deep");
      return Value();
    }
    skip_ws();
    if (eof()) {
      fail("unexpected end of input");
      return Value();
    }
    const char c = peek();
    switch (c) {
      case '{': return parse_object(depth);
      case '[': return parse_array(depth);
      case '"': return Value(parse_string());
      case 't':
        return parse_literal("true") ? Value(true) : Value();
      case 'f':
        return parse_literal("false") ? Value(false) : Value();
      case 'n':
        return parse_literal("null") ? Value(nullptr) : Value();
      default: return parse_number();
    }
  }

  bool parse_literal(std::string_view lit) {
    if (text.substr(pos, lit.size()) != lit) {
      fail("invalid literal");
      return false;
    }
    pos += lit.size();
    return true;
  }

  Value parse_number() {
    const std::size_t start = pos;
    if (consume('-')) {
    }
    if (eof() || peek() < '0' || peek() > '9') {
      fail("invalid number");
      return Value();
    }
    if (peek() == '0') {
      ++pos;
      if (!eof() && peek() >= '0' && peek() <= '9') {
        fail("leading zero in number");
        return Value();
      }
    } else {
      while (!eof() && peek() >= '0' && peek() <= '9') ++pos;
    }
    if (!eof() && peek() == '.') {
      ++pos;
      if (eof() || peek() < '0' || peek() > '9') {
        fail("invalid number");
        return Value();
      }
      while (!eof() && peek() >= '0' && peek() <= '9') ++pos;
    }
    if (!eof() && (peek() == 'e' || peek() == 'E')) {
      ++pos;
      if (!eof() && (peek() == '+' || peek() == '-')) ++pos;
      if (eof() || peek() < '0' || peek() > '9') {
        fail("invalid number");
        return Value();
      }
      while (!eof() && peek() >= '0' && peek() <= '9') ++pos;
    }
    const std::string token(text.substr(start, pos - start));
    return Value(std::strtod(token.c_str(), nullptr));
  }

  std::string parse_string() {
    std::string out;
    if (!expect('"')) return out;
    while (!eof()) {
      const char c = text[pos++];
      if (c == '"') return out;
      if (c == '\\') {
        if (eof()) break;
        const char esc = text[pos++];
        switch (esc) {
          case '"': out.push_back('"'); break;
          case '\\': out.push_back('\\'); break;
          case '/': out.push_back('/'); break;
          case 'b': out.push_back('\b'); break;
          case 'f': out.push_back('\f'); break;
          case 'n': out.push_back('\n'); break;
          case 'r': out.push_back('\r'); break;
          case 't': out.push_back('\t'); break;
          case 'u': {
            if (pos + 4 > text.size()) {
              fail("truncated \\u escape");
              return out;
            }
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              const char h = text[pos++];
              code <<= 4;
              if (h >= '0' && h <= '9') {
                code |= static_cast<unsigned>(h - '0');
              } else if (h >= 'a' && h <= 'f') {
                code |= static_cast<unsigned>(h - 'a' + 10);
              } else if (h >= 'A' && h <= 'F') {
                code |= static_cast<unsigned>(h - 'A' + 10);
              } else {
                fail("invalid \\u escape");
                return out;
              }
            }
            if (code < 0x80) {
              out.push_back(static_cast<char>(code));
            } else {
              // Reports and traces only emit ASCII; non-ASCII escapes are
              // out of scope for this parser.
              fail("non-ASCII \\u escape unsupported");
              return out;
            }
            break;
          }
          default:
            fail("invalid escape");
            return out;
        }
      } else {
        out.push_back(c);
      }
    }
    fail("unterminated string");
    return out;
  }

  Value parse_array(int depth) {
    Array out;
    expect('[');
    skip_ws();
    if (consume(']')) return Value(std::move(out));
    for (;;) {
      out.push_back(parse_value(depth + 1));
      if (failed) return Value();
      skip_ws();
      if (consume(']')) return Value(std::move(out));
      if (!expect(',')) return Value();
    }
  }

  Value parse_object(int depth) {
    Object out;
    expect('{');
    skip_ws();
    if (consume('}')) return Value(std::move(out));
    for (;;) {
      skip_ws();
      if (eof() || peek() != '"') {
        fail("expected object key");
        return Value();
      }
      std::string key = parse_string();
      if (failed) return Value();
      skip_ws();
      if (!expect(':')) return Value();
      out[std::move(key)] = parse_value(depth + 1);
      if (failed) return Value();
      skip_ws();
      if (consume('}')) return Value(std::move(out));
      if (!expect(',')) return Value();
    }
  }
};

void escape_to(std::string& out, const std::string& s) {
  out.push_back('"');
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
}

}  // namespace

std::string number_to_string(double d) {
  if (!std::isfinite(d)) return "null";  // JSON has no inf/nan
  if (d == std::floor(d) && std::fabs(d) < 9.007199254740992e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(d));
    return buf;
  }
  // Shortest representation that round-trips: try increasing precision.
  char buf[40];
  for (int prec = 6; prec <= 17; ++prec) {
    std::snprintf(buf, sizeof(buf), "%.*g", prec, d);
    if (std::strtod(buf, nullptr) == d) break;
  }
  return buf;
}

const Value* Value::find(const std::string& key) const {
  if (!is_object()) return nullptr;
  const auto& obj = as_object();
  const auto it = obj.find(key);
  return it == obj.end() ? nullptr : &it->second;
}

void Value::dump_to(std::string& out, int indent, int depth) const {
  const auto pad = [&](int d) {
    if (indent >= 0) {
      out.push_back('\n');
      out.append(static_cast<std::size_t>(indent * d), ' ');
    }
  };
  if (is_null()) {
    out += "null";
  } else if (is_bool()) {
    out += as_bool() ? "true" : "false";
  } else if (is_number()) {
    out += number_to_string(as_number());
  } else if (is_string()) {
    escape_to(out, as_string());
  } else if (is_array()) {
    const auto& arr = as_array();
    if (arr.empty()) {
      out += "[]";
      return;
    }
    out.push_back('[');
    bool first = true;
    for (const auto& v : arr) {
      if (!first) out.push_back(',');
      first = false;
      pad(depth + 1);
      v.dump_to(out, indent, depth + 1);
    }
    pad(depth);
    out.push_back(']');
  } else {
    const auto& obj = as_object();
    if (obj.empty()) {
      out += "{}";
      return;
    }
    out.push_back('{');
    bool first = true;
    for (const auto& [key, v] : obj) {
      if (!first) out.push_back(',');
      first = false;
      pad(depth + 1);
      escape_to(out, key);
      out.push_back(':');
      if (indent >= 0) out.push_back(' ');
      v.dump_to(out, indent, depth + 1);
    }
    pad(depth);
    out.push_back('}');
  }
}

std::string Value::dump(int indent) const {
  std::string out;
  dump_to(out, indent, 0);
  return out;
}

Value Value::parse(std::string_view text, std::string* error) {
  Parser p;
  p.text = text;
  Value v = p.parse_value(0);
  p.skip_ws();
  if (!p.failed && !p.eof()) p.fail("trailing characters");
  if (p.failed) {
    if (error) *error = p.error;
    return Value();
  }
  if (error) error->clear();
  return v;
}

}  // namespace dde::obs::json
