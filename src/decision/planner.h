// Adaptive retrieval planner.
//
// At runtime, evidence arrives incrementally and each arrival can
// short-circuit part of the expression. The planner answers: given the
// current (freshness-aware) partial assignment, which labels should be
// resolved next, in what order? The policies mirror the retrieval schemes
// evaluated in Sec. VII.
#pragma once

#include <optional>
#include <vector>

#include "common/sim_time.h"
#include "decision/expression.h"
#include "decision/metadata.h"

namespace dde::decision {

/// Retrieval-ordering policy (maps to the paper's evaluated schemes).
enum class OrderPolicy {
  kDeclared,              ///< declaration order (cmp / slt baselines)
  kCheapestFirst,         ///< lowest retrieval cost first (lcf)
  kShortCircuit,          ///< (1−p)/C AND rule + s/E[cost] OR rule
  kLongestValidityFirst,  ///< pure LVF
  kVariationalLvf,        ///< LVF with cost-improving rearrangement (lvf/lvfl)
};

/// Ordered list of labels to resolve next for `expr` under `assignment` at
/// `now`. Labels already known (and fresh) or no longer able to influence
/// the outcome are excluded; the list is empty iff the query is resolved.
///
/// `deadline` bounds feasibility checks for validity-aware policies (pass
/// SimTime::max() when there is none).
[[nodiscard]] std::vector<LabelId> plan_retrieval_order(
    const DnfExpr& expr, const Assignment& assignment, SimTime now,
    const MetaFn& meta, OrderPolicy policy,
    SimTime deadline = SimTime::max());

/// First element of plan_retrieval_order, or nullopt if resolved.
[[nodiscard]] std::optional<LabelId> next_label(
    const DnfExpr& expr, const Assignment& assignment, SimTime now,
    const MetaFn& meta, OrderPolicy policy,
    SimTime deadline = SimTime::max());

}  // namespace dde::decision
