// Labels: named Boolean variables over world state (Sec. II-B).
//
// The system maintains (label, type, value) tuples; values are tri-state.
// A resolved label value carries provenance: when it was evaluated, how long
// it stays valid, which annotator signed it, and which evidence objects it
// was computed from — the trust metadata of Sec. III-B.
#pragma once

#include <string>
#include <unordered_map>
#include <vector>

#include "common/ids.h"
#include "common/sim_time.h"
#include "common/tristate.h"
#include "naming/name.h"

namespace dde::decision {

/// Static description of a label (the variable itself, not its value).
struct LabelInfo {
  LabelId id;
  naming::Name name;      ///< hierarchical semantic name, e.g. /label/viable/seg12
  std::string type;       ///< semantic type, e.g. "road condition"
};

/// A resolved label value with provenance (the paper's signed-label record).
struct LabelValue {
  LabelId label;
  Tristate value = Tristate::kUnknown;
  SimTime evaluated_at;               ///< when the annotation was made
  SimTime validity;                   ///< freshness interval of the value
  AnnotatorId annotator;              ///< who evaluated (signature)
  std::vector<ObjectId> evidence;     ///< objects used to decide the value

  [[nodiscard]] SimTime expires_at() const noexcept {
    return evaluated_at + validity;
  }
  [[nodiscard]] bool fresh_at(SimTime t) const noexcept {
    return value != Tristate::kUnknown && t < expires_at();
  }
};

/// A (partial) assignment of values to labels, with freshness handling.
///
/// Lookups are time-aware: a stored value that has expired reads back as
/// unknown, which is exactly how staleness re-opens a decision.
class Assignment {
 public:
  /// Record a label value (overwrites any previous value).
  void set(LabelValue v) { values_[v.label] = std::move(v); }

  /// The value of `label` if known and still fresh at `now`.
  [[nodiscard]] Tristate value_at(LabelId label, SimTime now) const {
    auto it = values_.find(label);
    if (it == values_.end() || !it->second.fresh_at(now)) {
      return Tristate::kUnknown;
    }
    return it->second.value;
  }

  /// The stored record for `label`, fresh or not (nullptr if never set).
  [[nodiscard]] const LabelValue* record(LabelId label) const {
    auto it = values_.find(label);
    return it == values_.end() ? nullptr : &it->second;
  }

  /// Earliest expiry among values that are fresh at `now`
  /// (SimTime::max() if none).
  [[nodiscard]] SimTime earliest_expiry(SimTime now) const {
    SimTime best = SimTime::max();
    // lint: ordered-fold — min-reduction, commutative and associative.
    for (const auto& [id, v] : values_) {
      if (v.fresh_at(now)) best = std::min(best, v.expires_at());
    }
    return best;
  }

  /// Discard any knowledge of `label` (Sec. II-A invalidation: an external
  /// event voided the observation). Subsequent lookups return unknown.
  void invalidate(LabelId label) { values_.erase(label); }

  [[nodiscard]] std::size_t size() const noexcept { return values_.size(); }
  void clear() { values_.clear(); }

 private:
  std::unordered_map<LabelId, LabelValue> values_;
};

}  // namespace dde::decision
