#include "decision/ordering.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <unordered_map>
#include <utility>
#include <unordered_set>

#include "common/contracts.h"

namespace dde::decision {

double term_p_true(const Term& t, const MetaFn& meta) {
  const double p = meta(t.label).p_true;
  return t.negated ? 1.0 - p : p;
}

double and_efficiency(const Term& t, const MetaFn& meta) {
  const double cost = std::max(meta(t.label).cost, 1e-12);
  return (1.0 - term_p_true(t, meta)) / cost;
}

std::vector<Term> order_conjunction(const Conjunction& c, const MetaFn& meta) {
  std::vector<Term> terms = c.terms;
  std::stable_sort(terms.begin(), terms.end(),
                   [&](const Term& a, const Term& b) {
                     return and_efficiency(a, meta) > and_efficiency(b, meta);
                   });
  return terms;
}

double expected_conjunction_cost(std::span<const Term> terms,
                                 const MetaFn& meta) {
  double cost = 0.0;
  double p_reach = 1.0;  // probability evaluation reaches this term
  // Labels retrieved by earlier terms, with the truth value implied by the
  // evaluation having moved past them (a passed term fixes its label to
  // !negated). A repeated label is paid for once — the convention of
  // exact_conjunction_cost_by_enumeration's `paid` set — and contributes a
  // deterministic, not independent, factor to the reach probability.
  std::vector<std::pair<LabelId, bool>> settled;
  for (const Term& t : terms) {
    const auto known =
        std::find_if(settled.begin(), settled.end(),
                     [&](const auto& kv) { return kv.first == t.label; });
    if (known == settled.end()) {
      cost += p_reach * meta(t.label).cost;
      p_reach *= term_p_true(t, meta);
      settled.emplace_back(t.label, !t.negated);
      continue;
    }
    // Already retrieved: no cost. The term's truth is determined; if it
    // contradicts the settled value, evaluation never proceeds past here.
    const bool term_true = t.negated ? !known->second : known->second;
    if (!term_true) break;  // p_reach for all later terms is 0
  }
  return cost;
}

double conjunction_success_prob(std::span<const Term> terms,
                                const MetaFn& meta) {
  double p = 1.0;
  for (const Term& t : terms) p *= term_p_true(t, meta);
  return p;
}

DnfPlan plan_dnf(const DnfExpr& expr, const MetaFn& meta) {
  struct Scored {
    std::size_t index;
    std::vector<Term> order;
    double success;
    double ecost;
  };
  std::vector<Scored> scored;
  scored.reserve(expr.disjunct_count());
  for (std::size_t i = 0; i < expr.disjunct_count(); ++i) {
    Scored s;
    s.index = i;
    s.order = order_conjunction(expr.disjuncts()[i], meta);
    s.success = conjunction_success_prob(s.order, meta);
    s.ecost = expected_conjunction_cost(s.order, meta);
    scored.push_back(std::move(s));
  }
  // OR rule: highest short-circuit (success) probability per unit expected
  // cost first.
  std::stable_sort(scored.begin(), scored.end(),
                   [](const Scored& a, const Scored& b) {
                     return a.success * std::max(b.ecost, 1e-12) >
                            b.success * std::max(a.ecost, 1e-12);
                   });
  DnfPlan plan;
  for (auto& s : scored) {
    plan.disjunct_order.push_back(s.index);
    plan.ordered_terms.push_back(std::move(s.order));
  }
  return plan;
}

double expected_dnf_cost(const DnfPlan& plan, const MetaFn& meta) {
  double cost = 0.0;
  double p_reach = 1.0;  // probability all previous disjuncts failed
  for (const auto& terms : plan.ordered_terms) {
    cost += p_reach * expected_conjunction_cost(terms, meta);
    p_reach *= 1.0 - conjunction_success_prob(terms, meta);
  }
  return cost;
}

double exact_conjunction_cost_by_enumeration(std::span<const Term> terms,
                                             const MetaFn& meta) {
  // Collect distinct labels.
  std::vector<LabelId> labels;
  for (const Term& t : terms) {
    if (std::find(labels.begin(), labels.end(), t.label) == labels.end()) {
      labels.push_back(t.label);
    }
  }
  DDE_CHECK(labels.size() <= 20,
            "exact_conjunction_cost_by_enumeration: >20 labels would "
            "enumerate >1M worlds");
  const std::size_t n = labels.size();
  double total = 0.0;
  for (std::uint64_t world = 0; world < (std::uint64_t{1} << n); ++world) {
    // Probability of this world and the truth of each label in it.
    double p_world = 1.0;
    std::unordered_map<LabelId, bool> truth;
    for (std::size_t i = 0; i < n; ++i) {
      const bool val = (world >> i) & 1;
      const double p = meta(labels[i]).p_true;
      p_world *= val ? p : 1.0 - p;
      truth[labels[i]] = val;
    }
    if (p_world == 0.0) continue;
    // Simulate sequential evaluation, paying each label's cost once.
    double cost = 0.0;
    std::unordered_set<LabelId> paid;
    for (const Term& t : terms) {
      if (paid.insert(t.label).second) cost += meta(t.label).cost;
      const bool term_true = t.negated ? !truth[t.label] : truth[t.label];
      if (!term_true) break;  // short-circuit
    }
    total += p_world * cost;
  }
  return total;
}

BestOrder optimal_conjunction_order(const Conjunction& c, const MetaFn& meta) {
  std::vector<Term> terms = c.terms;
  // Canonical starting permutation for std::next_permutation: order by an
  // arbitrary strict weak ordering over (label, negated).
  auto key_less = [](const Term& a, const Term& b) {
    if (a.label != b.label) return a.label < b.label;
    return a.negated < b.negated;
  };
  std::sort(terms.begin(), terms.end(), key_less);
  BestOrder best;
  best.cost = std::numeric_limits<double>::infinity();
  do {
    const double cost = expected_conjunction_cost(terms, meta);
    if (cost < best.cost) {
      best.cost = cost;
      best.order = terms;
    }
  } while (std::next_permutation(terms.begin(), terms.end(), key_less));
  return best;
}

bool order_feasible(std::span<const Term> terms, const MetaFn& meta,
                    SimTime start, SimTime deadline) {
  // Back-to-back retrievals; object k completes at start + sum latencies.
  // Compare against the remaining budget instead of summing into `finish`
  // first: an unreachable source reports latency = SimTime::max() (the
  // directory's sentinel), and adding that would overflow the signed tick
  // count. The budget form rejects it at the comparison, no arithmetic.
  if (start > deadline) return false;
  SimTime finish = start;
  for (const Term& t : terms) {
    const SimTime latency = meta(t.label).latency;
    if (latency > deadline - finish) return false;
    finish += latency;
  }
  SimTime done = start;
  for (const Term& t : terms) {
    const LabelMeta m = meta(t.label);
    done += m.latency;
    // Data freshness (Sec. IV-A): the object retrieved at `done` must still
    // be valid when the last retrieval finishes (same overflow-safe form:
    // done <= finish, so the gap is a small non-negative duration).
    if (m.validity < finish - done) return false;
  }
  return true;
}

std::vector<Term> variational_lvf_order(const Conjunction& c,
                                        const MetaFn& meta, SimTime start,
                                        SimTime deadline) {
  // Base: longest validity first maximizes every object's slack at finish.
  std::vector<Term> order = c.terms;
  std::stable_sort(order.begin(), order.end(),
                   [&](const Term& a, const Term& b) {
                     return meta(a.label).validity > meta(b.label).validity;
                   });
  // Greedy variational improvement: adjacent swaps that strictly reduce
  // expected cost while preserving feasibility. The expected cost of a
  // sequential AND evaluation improves under an adjacent swap iff the
  // (1−p)/C efficiency order improves, so comparing efficiencies suffices.
  const bool base_feasible = order_feasible(order, meta, start, deadline);
  if (!base_feasible) return order;  // caller detects infeasibility
  bool changed = true;
  while (changed) {
    changed = false;
    for (std::size_t i = 0; i + 1 < order.size(); ++i) {
      if (and_efficiency(order[i + 1], meta) <=
          and_efficiency(order[i], meta)) {
        continue;  // swap would not reduce expected cost
      }
      std::swap(order[i], order[i + 1]);
      if (order_feasible(order, meta, start, deadline)) {
        changed = true;
      } else {
        std::swap(order[i], order[i + 1]);  // revert
      }
    }
  }
  return order;
}

}  // namespace dde::decision
