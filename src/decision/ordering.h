// Retrieval-order optimization (Sec. III-A).
//
// Given a decision expression and per-label metadata (cost, success
// probability, latency, validity), compute evidence-retrieval orders that
// minimize expected cost via short-circuiting, subject to freshness
// feasibility. Includes:
//
//   * the (1−p)/C rule for ANDs and the s/E[cost] rule for ORs,
//   * expected-cost evaluation of a static plan (independence assumption),
//   * exact expected cost by world enumeration (reference for tests),
//   * brute-force optimal orders (reference for tests),
//   * the variational LVF order of [3]: validity-longest-first with
//     cost-improving rearrangements that preserve freshness feasibility.
#pragma once

#include <cstddef>
#include <optional>
#include <span>
#include <vector>

#include "common/sim_time.h"
#include "decision/expression.h"
#include "decision/metadata.h"

namespace dde::decision {

/// Probability that `t` evaluates to true (accounts for negation).
[[nodiscard]] double term_p_true(const Term& t, const MetaFn& meta);

/// Short-circuit efficiency of a term inside an AND: (1 − p_true) / cost.
/// Higher is better (more likely to kill the conjunction per unit cost).
[[nodiscard]] double and_efficiency(const Term& t, const MetaFn& meta);

/// Terms of `c` ordered by descending AND efficiency (stable).
[[nodiscard]] std::vector<Term> order_conjunction(const Conjunction& c,
                                                  const MetaFn& meta);

/// Expected retrieval cost of evaluating `terms` sequentially in the given
/// order, stopping at the first false term (independent labels assumed).
[[nodiscard]] double expected_conjunction_cost(std::span<const Term> terms,
                                               const MetaFn& meta);

/// Probability all terms evaluate true (independent labels assumed).
[[nodiscard]] double conjunction_success_prob(std::span<const Term> terms,
                                              const MetaFn& meta);

/// A static evaluation plan for a DNF: which disjunct to try in which
/// order, and the term order within each.
struct DnfPlan {
  /// Indexes into the expression's disjunct list, in evaluation order.
  std::vector<std::size_t> disjunct_order;
  /// ordered_terms[k] is the term order for disjunct disjunct_order[k].
  std::vector<std::vector<Term>> ordered_terms;
};

/// Plan a DNF: within each disjunct apply the AND rule; across disjuncts
/// try the one with the highest success probability per unit expected cost
/// first (the OR short-circuit rule).
[[nodiscard]] DnfPlan plan_dnf(const DnfExpr& expr, const MetaFn& meta);

/// Expected cost of executing `plan` sequentially with short-circuiting
/// (labels independent, no sharing across disjuncts assumed).
[[nodiscard]] double expected_dnf_cost(const DnfPlan& plan, const MetaFn& meta);

/// Exact expected retrieval cost of sequentially evaluating `terms` in
/// order with short-circuit on first false — by enumerating all 2^n label
/// worlds. Handles repeated labels correctly (a repeated label is only paid
/// for once). Reference implementation for tests; n ≤ ~20.
[[nodiscard]] double exact_conjunction_cost_by_enumeration(
    std::span<const Term> terms, const MetaFn& meta);

/// Minimum expected conjunction cost over all term permutations
/// (brute force, n ≤ ~9). Returns {best order, best cost}.
struct BestOrder {
  std::vector<Term> order;
  double cost = 0.0;
};
[[nodiscard]] BestOrder optimal_conjunction_order(const Conjunction& c,
                                                  const MetaFn& meta);

/// Freshness feasibility of retrieving `terms` back-to-back in order
/// starting at `start`: every retrieved object must still be valid when the
/// last retrieval finishes, and the finish must not exceed `deadline`.
[[nodiscard]] bool order_feasible(std::span<const Term> terms,
                                  const MetaFn& meta, SimTime start,
                                  SimTime deadline);

/// Variational LVF (paper [3]): base order = longest validity first (which
/// maximizes freshness slack), then greedily apply adjacent swaps that
/// strictly reduce expected cost while keeping the order feasible.
/// If even the base LVF order is infeasible, it is returned anyway (the
/// caller learns of infeasibility via order_feasible).
[[nodiscard]] std::vector<Term> variational_lvf_order(const Conjunction& c,
                                                      const MetaFn& meta,
                                                      SimTime start,
                                                      SimTime deadline);

}  // namespace dde::decision
