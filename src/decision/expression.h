// Decision expressions: disjunctive normal form over labels (Sec. III).
//
//   q = (b00 ∧ b01 ∧ …) ∨ (b10 ∧ b11 ∧ …) ∨ …
//
// Each disjunct is a candidate course of action; the query is resolved when
// one disjunct is known true (a viable course of action exists) or all are
// known false (none exists). Evaluation uses Kleene three-valued logic over
// a partial, freshness-aware assignment.
#pragma once

#include <cstddef>
#include <optional>
#include <vector>

#include "common/ids.h"
#include "common/sim_time.h"
#include "common/tristate.h"
#include "decision/label.h"

namespace dde::decision {

/// A literal: a label, possibly negated.
struct Term {
  LabelId label;
  bool negated = false;

  friend bool operator==(const Term&, const Term&) = default;
};

/// A conjunction of terms: one candidate course of action.
struct Conjunction {
  std::vector<Term> terms;

  friend bool operator==(const Conjunction&, const Conjunction&) = default;
};

/// A decision expression in DNF.
class DnfExpr {
 public:
  DnfExpr() = default;
  explicit DnfExpr(std::vector<Conjunction> disjuncts)
      : disjuncts_(std::move(disjuncts)) {}

  [[nodiscard]] const std::vector<Conjunction>& disjuncts() const noexcept {
    return disjuncts_;
  }
  [[nodiscard]] std::size_t disjunct_count() const noexcept {
    return disjuncts_.size();
  }
  [[nodiscard]] bool empty() const noexcept { return disjuncts_.empty(); }

  /// Add one course of action. Returns its index.
  std::size_t add_disjunct(Conjunction c) {
    disjuncts_.push_back(std::move(c));
    return disjuncts_.size() - 1;
  }

  /// Value of a single term under `a` at `now` (Kleene).
  [[nodiscard]] static Tristate eval_term(const Term& t, const Assignment& a,
                                          SimTime now) {
    const Tristate v = a.value_at(t.label, now);
    return t.negated ? !v : v;
  }

  /// Value of disjunct `i` under `a` at `now` (Kleene AND).
  [[nodiscard]] Tristate eval_disjunct(std::size_t i, const Assignment& a,
                                       SimTime now) const {
    Tristate acc = Tristate::kTrue;
    for (const Term& t : disjuncts_.at(i).terms) {
      acc = acc && eval_term(t, a, now);
      if (acc == Tristate::kFalse) return acc;  // short-circuit
    }
    return acc;
  }

  /// Value of the whole expression under `a` at `now` (Kleene OR of ANDs).
  [[nodiscard]] Tristate evaluate(const Assignment& a, SimTime now) const {
    Tristate acc = Tristate::kFalse;
    for (std::size_t i = 0; i < disjuncts_.size(); ++i) {
      acc = acc || eval_disjunct(i, a, now);
      if (acc == Tristate::kTrue) return acc;  // short-circuit
    }
    return acc;
  }

  /// True when the decision can be made: some course of action is known
  /// viable, or all are known non-viable.
  [[nodiscard]] bool resolved(const Assignment& a, SimTime now) const {
    return evaluate(a, now) != Tristate::kUnknown;
  }

  /// Index of the first disjunct known true (the chosen course of action).
  [[nodiscard]] std::optional<std::size_t> chosen_action(const Assignment& a,
                                                         SimTime now) const {
    for (std::size_t i = 0; i < disjuncts_.size(); ++i) {
      if (eval_disjunct(i, a, now) == Tristate::kTrue) return i;
    }
    return std::nullopt;
  }

  /// Labels that can still influence the outcome under `a` at `now`:
  /// unknown-valued terms of disjuncts that are not already false.
  /// Deduplicated, in first-appearance order. Empty iff resolved.
  [[nodiscard]] std::vector<LabelId> relevant_labels(const Assignment& a,
                                                     SimTime now) const;

  /// All distinct labels mentioned anywhere, in first-appearance order.
  [[nodiscard]] std::vector<LabelId> all_labels() const;

 private:
  std::vector<Conjunction> disjuncts_;
};

}  // namespace dde::decision
