#include "decision/algebra.h"

#include <algorithm>
#include <set>
#include <vector>

namespace dde::decision {
namespace {

bool term_less(const Term& a, const Term& b) {
  if (a.label != b.label) return a.label < b.label;
  return a.negated < b.negated;
}

/// Canonical form of one conjunction: sorted, deduplicated terms.
/// Returns nullopt if the conjunction is contradictory (contains l and ¬l).
std::optional<std::vector<Term>> canonical_terms(const Conjunction& c) {
  std::vector<Term> terms = c.terms;
  std::sort(terms.begin(), terms.end(), term_less);
  terms.erase(std::unique(terms.begin(), terms.end()), terms.end());
  for (std::size_t i = 0; i + 1 < terms.size(); ++i) {
    if (terms[i].label == terms[i + 1].label &&
        terms[i].negated != terms[i + 1].negated) {
      return std::nullopt;  // l ∧ ¬l
    }
  }
  return terms;
}

/// True if `sub` ⊆ `super` (both canonical/sorted).
bool subset_of(const std::vector<Term>& sub, const std::vector<Term>& super) {
  return std::includes(super.begin(), super.end(), sub.begin(), sub.end(),
                       term_less);
}

bool terms_less(const std::vector<Term>& a, const std::vector<Term>& b) {
  return std::lexicographical_compare(a.begin(), a.end(), b.begin(), b.end(),
                                      term_less);
}

}  // namespace

DnfExpr simplify(const DnfExpr& expr) {
  // Canonicalize, dropping contradictions and duplicates.
  std::vector<std::vector<Term>> conjs;
  for (const Conjunction& c : expr.disjuncts()) {
    if (auto terms = canonical_terms(c)) conjs.push_back(std::move(*terms));
  }
  std::sort(conjs.begin(), conjs.end(), terms_less);
  conjs.erase(std::unique(conjs.begin(), conjs.end()), conjs.end());

  // Absorption: drop any conjunction that is a superset of another.
  // (An empty conjunction is "true" and absorbs everything else.)
  std::vector<std::vector<Term>> kept;
  for (std::size_t i = 0; i < conjs.size(); ++i) {
    bool absorbed = false;
    for (std::size_t j = 0; j < conjs.size() && !absorbed; ++j) {
      if (i == j) continue;
      if (!subset_of(conjs[j], conjs[i])) continue;
      // conjs[j] ⊆ conjs[i] ⇒ conjs[i] redundant. Tie (equal sets) keeps
      // the lower index.
      absorbed = conjs[j].size() < conjs[i].size() || j < i;
    }
    if (!absorbed) kept.push_back(conjs[i]);
  }

  DnfExpr out;
  for (auto& terms : kept) out.add_disjunct(Conjunction{std::move(terms)});
  return out;
}

DnfExpr dnf_or(const DnfExpr& a, const DnfExpr& b) {
  DnfExpr merged;
  for (const auto& c : a.disjuncts()) merged.add_disjunct(c);
  for (const auto& c : b.disjuncts()) merged.add_disjunct(c);
  return simplify(merged);
}

DnfExpr dnf_and(const DnfExpr& a, const DnfExpr& b) {
  DnfExpr product;
  for (const auto& ca : a.disjuncts()) {
    for (const auto& cb : b.disjuncts()) {
      Conjunction merged;
      merged.terms = ca.terms;
      merged.terms.insert(merged.terms.end(), cb.terms.begin(),
                          cb.terms.end());
      product.add_disjunct(std::move(merged));
    }
  }
  return simplify(product);
}

DnfExpr dnf_not(const DnfExpr& a) {
  // ¬(C1 ∨ C2 ∨ …) = ¬C1 ∧ ¬C2 ∧ …, and ¬(t1 ∧ t2 ∧ …) = ¬t1 ∨ ¬t2 ∨ …
  // Start from "true" (one empty conjunction) and AND in each negated
  // conjunction, which is itself a DNF of single negated terms.
  DnfExpr result;
  result.add_disjunct(Conjunction{});  // true
  for (const Conjunction& c : a.disjuncts()) {
    DnfExpr negated_c;
    for (const Term& t : c.terms) {
      negated_c.add_disjunct(Conjunction{{Term{t.label, !t.negated}}});
    }
    // ¬(empty conjunction) = false: the whole expression contains "true",
    // so its negation is "false" (no disjuncts).
    result = dnf_and(result, negated_c);
  }
  return simplify(result);
}

DnfExpr with_guard(const DnfExpr& actions, const DnfExpr& guard) {
  return dnf_and(actions, guard);
}

bool structurally_equal(const DnfExpr& a, const DnfExpr& b) {
  const DnfExpr sa = simplify(a);
  const DnfExpr sb = simplify(b);
  return sa.disjuncts() == sb.disjuncts();
}

}  // namespace dde::decision
