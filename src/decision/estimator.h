// Learning label priors from observed outcomes (Sec. VIII: the system
// "can derive its own models … and probability distributions of particular
// observed quantities", which feed the short-circuit optimization).
//
// A PriorEstimator keeps a Beta posterior per label over P(label = true),
// updated every time a label value is actually resolved. Its estimates can
// be layered over any MetaFn, replacing the configured p_true with the
// learned one — so planners improve as the system observes the world.
#pragma once

#include <unordered_map>

#include "common/ids.h"
#include "decision/metadata.h"

namespace dde::decision {

/// Beta-posterior estimate of P(label = true) per label.
class PriorEstimator {
 public:
  /// Pseudo-counts of the uninformative prior for unseen labels; larger
  /// values make the estimator slower to move off 0.5.
  explicit PriorEstimator(double prior_strength = 1.0)
      : prior_(prior_strength) {}

  /// Record one resolved value of `label`.
  void observe(LabelId label, bool value) {
    auto& c = counts_[label];
    (value ? c.pos : c.neg) += 1.0;
  }

  /// Posterior-mean estimate of P(label = true).
  [[nodiscard]] double p_true(LabelId label) const {
    auto it = counts_.find(label);
    if (it == counts_.end()) return 0.5;
    return (it->second.pos + prior_) /
           (it->second.pos + it->second.neg + 2.0 * prior_);
  }

  /// Observations recorded for `label`.
  [[nodiscard]] double observations(LabelId label) const {
    auto it = counts_.find(label);
    return it == counts_.end() ? 0.0 : it->second.pos + it->second.neg;
  }

  /// A MetaFn that overrides `base`'s p_true with the learned estimate
  /// (cost/latency/validity pass through). The estimator must outlive the
  /// returned function.
  [[nodiscard]] MetaFn overlay(MetaFn base) const {
    return [this, base = std::move(base)](LabelId label) {
      LabelMeta m = base(label);
      m.p_true = p_true(label);
      return m;
    };
  }

  [[nodiscard]] std::size_t tracked_labels() const noexcept {
    return counts_.size();
  }

 private:
  struct Counts {
    double pos = 0.0;
    double neg = 0.0;
  };
  double prior_;
  std::unordered_map<LabelId, Counts> counts_;
};

}  // namespace dde::decision
