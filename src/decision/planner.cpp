#include "decision/planner.h"

#include <algorithm>
#include <unordered_set>

#include "decision/ordering.h"

namespace dde::decision {
namespace {

/// Unknown-valued terms of disjunct `i` (each label listed once).
std::vector<Term> unknown_terms(const DnfExpr& expr, std::size_t i,
                                const Assignment& a, SimTime now) {
  std::vector<Term> out;
  std::unordered_set<LabelId> seen;
  for (const Term& t : expr.disjuncts()[i].terms) {
    if (DnfExpr::eval_term(t, a, now) != Tristate::kUnknown) continue;
    if (seen.insert(t.label).second) out.push_back(t);
  }
  return out;
}

/// Disjunct indexes still unknown, ordered by the OR short-circuit rule
/// (success probability of remaining terms per unit remaining expected
/// cost, descending).
std::vector<std::size_t> order_open_disjuncts(const DnfExpr& expr,
                                              const Assignment& a,
                                              SimTime now, const MetaFn& meta,
                                              bool score) {
  struct Open {
    std::size_t index;
    double success;
    double ecost;
  };
  std::vector<Open> open;
  for (std::size_t i = 0; i < expr.disjunct_count(); ++i) {
    if (expr.eval_disjunct(i, a, now) != Tristate::kUnknown) continue;
    const auto terms = unknown_terms(expr, i, a, now);
    const auto ordered = score ? order_conjunction(Conjunction{terms}, meta)
                               : terms;
    open.push_back(Open{i, conjunction_success_prob(ordered, meta),
                        expected_conjunction_cost(ordered, meta)});
  }
  if (score) {
    std::stable_sort(open.begin(), open.end(), [](const Open& x, const Open& y) {
      return x.success * std::max(y.ecost, 1e-12) >
             y.success * std::max(x.ecost, 1e-12);
    });
  }
  std::vector<std::size_t> out;
  out.reserve(open.size());
  for (const auto& o : open) out.push_back(o.index);
  return out;
}

void append_unique(std::vector<LabelId>& order,
                   std::unordered_set<LabelId>& seen,
                   const std::vector<Term>& terms) {
  for (const Term& t : terms) {
    if (seen.insert(t.label).second) order.push_back(t.label);
  }
}

}  // namespace

std::vector<LabelId> plan_retrieval_order(const DnfExpr& expr,
                                          const Assignment& assignment,
                                          SimTime now, const MetaFn& meta,
                                          OrderPolicy policy,
                                          SimTime deadline) {
  if (expr.resolved(assignment, now)) return {};

  switch (policy) {
    case OrderPolicy::kDeclared:
      return expr.relevant_labels(assignment, now);

    case OrderPolicy::kCheapestFirst: {
      auto labels = expr.relevant_labels(assignment, now);
      std::stable_sort(labels.begin(), labels.end(),
                       [&](LabelId a, LabelId b) {
                         return meta(a).cost < meta(b).cost;
                       });
      return labels;
    }

    case OrderPolicy::kShortCircuit: {
      std::vector<LabelId> order;
      std::unordered_set<LabelId> seen;
      for (std::size_t i :
           order_open_disjuncts(expr, assignment, now, meta, /*score=*/true)) {
        const auto terms = unknown_terms(expr, i, assignment, now);
        append_unique(order, seen, order_conjunction(Conjunction{terms}, meta));
      }
      return order;
    }

    case OrderPolicy::kLongestValidityFirst: {
      auto labels = expr.relevant_labels(assignment, now);
      std::stable_sort(labels.begin(), labels.end(),
                       [&](LabelId a, LabelId b) {
                         return meta(a).validity > meta(b).validity;
                       });
      return labels;
    }

    case OrderPolicy::kVariationalLvf: {
      // Decision-driven: pick disjuncts by the OR rule, then order each
      // disjunct's remaining terms validity-first with cost-improving
      // rearrangements that stay freshness-feasible for the deadline.
      std::vector<LabelId> order;
      std::unordered_set<LabelId> seen;
      for (std::size_t i :
           order_open_disjuncts(expr, assignment, now, meta, /*score=*/true)) {
        const auto terms = unknown_terms(expr, i, assignment, now);
        append_unique(order, seen,
                      variational_lvf_order(Conjunction{terms}, meta, now,
                                            deadline));
      }
      return order;
    }
  }
  return {};
}

std::optional<LabelId> next_label(const DnfExpr& expr,
                                  const Assignment& assignment, SimTime now,
                                  const MetaFn& meta, OrderPolicy policy,
                                  SimTime deadline) {
  const auto order =
      plan_retrieval_order(expr, assignment, now, meta, policy, deadline);
  if (order.empty()) return std::nullopt;
  return order.front();
}

}  // namespace dde::decision
