#include "decision/expression.h"

#include <algorithm>
#include <unordered_set>

namespace dde::decision {

std::vector<LabelId> DnfExpr::relevant_labels(const Assignment& a,
                                              SimTime now) const {
  std::vector<LabelId> out;
  if (resolved(a, now)) return out;
  std::unordered_set<LabelId> seen;
  for (std::size_t i = 0; i < disjuncts_.size(); ++i) {
    if (eval_disjunct(i, a, now) != Tristate::kUnknown) continue;
    for (const Term& t : disjuncts_[i].terms) {
      if (eval_term(t, a, now) != Tristate::kUnknown) continue;
      if (seen.insert(t.label).second) out.push_back(t.label);
    }
  }
  return out;
}

std::vector<LabelId> DnfExpr::all_labels() const {
  std::vector<LabelId> out;
  std::unordered_set<LabelId> seen;
  for (const auto& c : disjuncts_) {
    for (const Term& t : c.terms) {
      if (seen.insert(t.label).second) out.push_back(t.label);
    }
  }
  return out;
}

}  // namespace dde::decision
