// Expression algebra over DNF decision expressions.
//
// Sec. III notes that a query may be "resolved when a viable course of
// action is found for which additional conditions apply that may be
// represented by another logical expression structure ANDed with the
// original graph". That requires combining DNF expressions: conjunction
// (with distribution), disjunction, negation (De Morgan), plus the
// simplifications that keep distributed expressions from exploding —
// duplicate-term removal, contradictory-conjunction elimination, and
// absorption (A subsumes A∧B).
#pragma once

#include "decision/expression.h"

namespace dde::decision {

/// Remove duplicate terms inside each conjunction, drop conjunctions that
/// contain a literal and its negation (always false), drop duplicate
/// conjunctions, and apply absorption: a conjunction that is a superset of
/// another is redundant. The result is logically equivalent.
[[nodiscard]] DnfExpr simplify(const DnfExpr& expr);

/// a ∨ b (concatenate disjuncts, then simplify).
[[nodiscard]] DnfExpr dnf_or(const DnfExpr& a, const DnfExpr& b);

/// a ∧ b by distribution: every pair of conjunctions merges. The result is
/// simplified. Worst case |a|·|b| disjuncts.
[[nodiscard]] DnfExpr dnf_and(const DnfExpr& a, const DnfExpr& b);

/// ¬a via De Morgan, re-normalized to DNF. Worst case exponential (product
/// over disjunct sizes) — intended for the small guard expressions of
/// decision queries.
[[nodiscard]] DnfExpr dnf_not(const DnfExpr& a);

/// The Sec. III "guarded resolution" construct: courses of action from
/// `actions`, each additionally required to satisfy `guard`.
/// Equivalent to dnf_and(actions, guard).
[[nodiscard]] DnfExpr with_guard(const DnfExpr& actions, const DnfExpr& guard);

/// Structural equality after simplification and canonical ordering.
/// (Logical equivalence up to the rewrites simplify() performs — not a
/// full tautology check.)
[[nodiscard]] bool structurally_equal(const DnfExpr& a, const DnfExpr& b);

}  // namespace dde::decision
