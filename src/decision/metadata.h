// Per-term metadata consumed by the retrieval-order optimization
// (Sec. III-A): retrieval cost, latency, success probability, and data
// validity interval.
#pragma once

#include <functional>
#include <unordered_map>

#include "common/ids.h"
#include "common/sim_time.h"

namespace dde::decision {

/// Metadata about resolving one label.
struct LabelMeta {
  /// Retrieval cost of the evidence needed (e.g. object bytes).
  double cost = 1.0;
  /// Estimated retrieval latency (activation to availability).
  SimTime latency = SimTime::millis(1);
  /// Probability the label evaluates to true.
  double p_true = 0.5;
  /// Validity interval of the evidence.
  SimTime validity = SimTime::seconds(60);
};

/// Metadata lookup: label → metadata. Implementations may be a map, a
/// model, or a live estimate.
using MetaFn = std::function<LabelMeta(LabelId)>;

/// Convenience map-backed MetaFn.
class MetaTable {
 public:
  void set(LabelId label, LabelMeta meta) { table_[label] = meta; }

  [[nodiscard]] LabelMeta get(LabelId label) const {
    auto it = table_.find(label);
    return it == table_.end() ? LabelMeta{} : it->second;
  }

  /// Bind as a MetaFn (copies the table's shared state by reference; keep
  /// the MetaTable alive while the MetaFn is in use).
  [[nodiscard]] MetaFn fn() const {
    return [this](LabelId label) { return get(label); };
  }

 private:
  std::unordered_map<LabelId, LabelMeta> table_;
};

}  // namespace dde::decision
