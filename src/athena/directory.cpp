#include "athena/directory.h"

#include <algorithm>
#include <stdexcept>

#include "common/contracts.h"

namespace dde::athena {

Directory::Directory(const net::Topology& topo,
                     const world::SensorField& field,
                     std::vector<NodeId> host_of_sensor,
                     std::unordered_map<LabelId, double> p_true)
    : topo_(topo),
      field_(field),
      host_of_sensor_(std::move(host_of_sensor)),
      p_true_(std::move(p_true)) {
  DDE_CHECK(host_of_sensor_.size() == field.sensors().size(),
            "Directory: host_of_sensor must map every sensor to a node");
  for (const auto& s : field.sensors()) {
    for (SegmentId seg : s.covers) {
      sources_for_label_[LabelId{seg.value()}].push_back(s.id);
    }
  }
}

const std::vector<SourceId>& Directory::sources_for(LabelId label) const {
  static const std::vector<SourceId> kEmpty;
  auto it = sources_for_label_.find(label);
  return it == sources_for_label_.end() ? kEmpty : it->second;
}

NodeId Directory::host(SourceId source) const {
  if (!source.valid() || source.value() >= host_of_sensor_.size()) {
    throw std::out_of_range("Directory::host: unknown source");
  }
  return host_of_sensor_[source.value()];
}

std::vector<LabelId> Directory::labels_of(SourceId source) const {
  std::vector<LabelId> out;
  for (SegmentId seg : field_.sensor(source).covers) {
    out.push_back(LabelId{seg.value()});
  }
  return out;
}

double Directory::retrieval_cost(SourceId source, NodeId origin) const {
  const auto hops = topo_.hop_distance(origin, host(source));
  const double h = hops ? static_cast<double>(std::max<std::size_t>(*hops, 1))
                        : 1e9;  // unreachable → effectively infinite cost
  return static_cast<double>(field_.sensor(source).object_bytes) * h;
}

SimTime Directory::retrieval_latency(SourceId source, NodeId origin) const {
  const auto hops = topo_.hop_distance(origin, host(source));
  if (!hops) return SimTime::max();
  const auto h = static_cast<double>(std::max<std::size_t>(*hops, 1));
  // Transfer dominates: object bytes over a nominal 1 Mbps per hop, plus a
  // small per-hop request overhead.
  const double bytes = static_cast<double>(field_.sensor(source).object_bytes);
  return SimTime::seconds(h * (bytes * 8.0 / 1e6 + 0.005));
}

decision::LabelMeta Directory::meta(LabelId label, SourceId source,
                                    NodeId origin) const {
  decision::LabelMeta m;
  m.cost = retrieval_cost(source, origin);
  m.latency = retrieval_latency(source, origin);
  m.validity = field_.sensor(source).validity;
  auto it = p_true_.find(label);
  m.p_true = it == p_true_.end() ? 0.5 : it->second;
  return m;
}

Directory::Selection Directory::select_sources(
    const std::vector<LabelId>& labels, NodeId origin, bool minimize,
    const std::unordered_set<SourceId>* exclude) const {
  Selection sel;

  // Per-label eligible sources, honoring the soft exclusion: excluded
  // sources drop out unless nothing else covers the label.
  auto available = [&](LabelId l) -> const std::vector<SourceId>& {
    const auto& srcs = sources_for(l);
    if (exclude == nullptr || exclude->empty()) return srcs;
    // lint: shared-state — thread_local scratch buffer: each thread owns
    // its own instance, so there is no cross-thread sharing; it only
    // amortizes the allocation across calls on one thread.
    static thread_local std::vector<SourceId> filtered;
    filtered.clear();
    for (SourceId s : srcs) {
      if (!exclude->contains(s)) filtered.push_back(s);
    }
    return filtered.empty() ? srcs : filtered;
  };

  // Candidate sources: anything covering at least one needed label.
  std::vector<SourceId> candidates;
  for (LabelId l : labels) {
    const auto& srcs = available(l);
    if (srcs.empty()) sel.uncovered.push_back(l);
    candidates.insert(candidates.end(), srcs.begin(), srcs.end());
  }
  std::sort(candidates.begin(), candidates.end());
  candidates.erase(std::unique(candidates.begin(), candidates.end()),
                   candidates.end());

  auto covered_needed = [&](SourceId s) {
    std::vector<LabelId> out;
    for (LabelId l : labels) {
      const auto& srcs = available(l);
      if (std::find(srcs.begin(), srcs.end(), s) != srcs.end()) {
        out.push_back(l);
      }
    }
    std::sort(out.begin(), out.end());
    out.erase(std::unique(out.begin(), out.end()), out.end());
    return out;
  };

  std::vector<SourceId> chosen;
  if (minimize) {
    // Weighted set cover over the needed labels.
    coverage::CoverInstance inst;
    for (LabelId l : labels) {
      if (!sources_for(l).empty()) {
        inst.universe.push_back(static_cast<std::uint32_t>(l.value()));
      }
    }
    std::sort(inst.universe.begin(), inst.universe.end());
    inst.universe.erase(
        std::unique(inst.universe.begin(), inst.universe.end()),
        inst.universe.end());
    for (SourceId s : candidates) {
      coverage::CoverSet set;
      set.cost = retrieval_cost(s, origin);
      for (LabelId l : covered_needed(s)) {
        set.elements.push_back(static_cast<std::uint32_t>(l.value()));
      }
      inst.sets.push_back(std::move(set));
    }
    const auto result = coverage::greedy_cover(inst);
    for (std::size_t idx : result.chosen) chosen.push_back(candidates[idx]);
  } else {
    chosen = candidates;
  }

  // Designate, for each label, the cheapest chosen source covering it.
  for (LabelId l : labels) {
    const auto& srcs = available(l);
    SourceId best;
    double best_cost = 0.0;
    for (SourceId s : srcs) {
      if (std::find(chosen.begin(), chosen.end(), s) == chosen.end()) continue;
      const double c = retrieval_cost(s, origin);
      if (!best.valid() || c < best_cost) {
        best = s;
        best_cost = c;
      }
    }
    if (best.valid()) sel.designated[l] = best;
  }

  // Request list: every chosen source with the needed labels it covers.
  for (SourceId s : chosen) {
    auto labs = covered_needed(s);
    if (!labs.empty()) sel.requests.emplace_back(s, std::move(labs));
  }
  return sel;
}

}  // namespace dde::athena
