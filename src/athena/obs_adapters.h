// Publishing adapters: one stable name per field of the subsystem metric
// structs. The structs (athena::AthenaMetrics, net::TrafficStats,
// cache::CacheStats) stay the zero-overhead hot-path accumulators; at
// report time these adapters copy them into a MetricRegistry under the
// canonical names documented in docs/OBSERVABILITY.md.
//
// Header-only, and it lives in athena/ (not obs/) on purpose: obs is a
// lower layer in tools/dde_layers and must not include protocol headers,
// while athena already sits above net, cache, and obs. The functions stay
// in namespace dde::obs — they extend the obs publishing surface, and call
// sites name them `obs::publish` regardless of which header provides them.
// Include this from harnesses (benches, tools, tests) that link the
// protocol libraries anyway.
#pragma once

#include <string>

#include "athena/metrics.h"
#include "cache/ttl_cache.h"
#include "net/network.h"
#include "obs/metric_registry.h"

namespace dde::obs {

/// athena.* — the per-run protocol counters (Fig. 2 / Fig. 3 material).
inline void publish(MetricRegistry& reg, const athena::AthenaMetrics& m,
                    const std::string& prefix = "athena.") {
  reg.counter(prefix + "queries_issued") = m.queries_issued;
  reg.counter(prefix + "queries_resolved") = m.queries_resolved;
  reg.counter(prefix + "queries_failed") = m.queries_failed;
  reg.counter(prefix + "queries_shed") = m.queries_shed;
  reg.counter(prefix + "queries_rejected") = m.queries_rejected;
  reg.counter(prefix + "object_bytes") = m.object_bytes;
  reg.counter(prefix + "push_bytes") = m.push_bytes;
  reg.counter(prefix + "request_bytes") = m.request_bytes;
  reg.counter(prefix + "announce_bytes") = m.announce_bytes;
  reg.counter(prefix + "label_bytes") = m.label_bytes;
  reg.counter(prefix + "total_bytes") = m.total_bytes();
  reg.counter(prefix + "object_requests") = m.object_requests;
  reg.counter(prefix + "object_reply_hops") = m.object_reply_hops;
  reg.counter(prefix + "sensor_samples") = m.sensor_samples;
  reg.counter(prefix + "object_cache_hits") = m.object_cache_hits;
  reg.counter(prefix + "label_cache_hits") = m.label_cache_hits;
  reg.counter(prefix + "stale_arrivals") = m.stale_arrivals;
  reg.counter(prefix + "refetches") = m.refetches;
  reg.counter(prefix + "prefetch_pushes") = m.prefetch_pushes;
  reg.counter(prefix + "interest_aggregations") = m.interest_aggregations;
  reg.counter(prefix + "substitutions") = m.substitutions;
  reg.counter(prefix + "prefetch_throttled") = m.prefetch_throttled;
  reg.counter(prefix + "queue_drops") = m.queue_drops;
  reg.counter(prefix + "retries") = m.retries;
  reg.counter(prefix + "failovers") = m.failovers;
  reg.counter(prefix + "link_down_drops") = m.link_down_drops;
  reg.counter(prefix + "reroutes") = m.reroutes;
  reg.gauge(prefix + "resolution_ratio") = m.resolution_ratio();
  reg.gauge(prefix + "mean_latency_s") = m.mean_latency_s();
}

/// net.* — aggregate link-layer traffic.
inline void publish(MetricRegistry& reg, const net::TrafficStats& s,
                    const std::string& prefix = "net.") {
  reg.counter(prefix + "packets") = s.packets;
  reg.counter(prefix + "bytes") = s.bytes;
  reg.counter(prefix + "dropped") = s.dropped;
  reg.counter(prefix + "link_down_drops") = s.link_down_drops;
  reg.counter(prefix + "queue_drops") = s.queue_drops;
}

/// cache.<name>.* — one TTL cache's counters (see CacheStats for the
/// corrected field semantics: evictions = capacity pressure only,
/// expired_drops = TTL expiry, refreshes = in-place overwrites).
inline void publish(MetricRegistry& reg, const cache::CacheStats& s,
                    const std::string& prefix) {
  reg.counter(prefix + "hits") = s.hits;
  reg.counter(prefix + "misses") = s.misses;
  reg.counter(prefix + "stale_rejects") = s.stale_rejects;
  reg.counter(prefix + "insertions") = s.insertions;
  reg.counter(prefix + "refreshes") = s.refreshes;
  reg.counter(prefix + "evictions") = s.evictions;
  reg.counter(prefix + "expired_drops") = s.expired_drops;
  reg.counter(prefix + "flushed") = s.flushed;
  reg.counter(prefix + "invalidated") = s.invalidated;
  reg.gauge(prefix + "hit_ratio") = s.hit_ratio();
}

}  // namespace dde::obs
