// An Athena node (Sec. VI): the decision-driven execution prototype.
//
// Each node can originate decision queries (Query_Init), reacts to queries
// propagated by neighbors by prefetching (Query_Recv), forwards object
// interests hop-by-hop while recording them in an interest table
// (Request_Send/Request_Recv), returns and caches evidence objects
// (Data_Send/Data_Recv), and — with label sharing enabled — propagates
// evaluated labels back toward sources, serving future interests from
// label caches (Sec. VI-D).
//
// Annotation is restricted to the query source node, as in the paper's
// implementation: evidence objects travel all the way to the originator,
// which evaluates the predicates (here, by reading the simulated object's
// ground-truth readings).
#pragma once

#include <deque>
#include <optional>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "athena/config.h"
#include "athena/directory.h"
#include "athena/messages.h"
#include "athena/metrics.h"
#include "cache/ttl_cache.h"
#include "common/arena.h"
#include "common/flat_hash.h"
#include "decision/expression.h"
#include "decision/planner.h"
#include "fault/restart_policy.h"
#include "fusion/belief.h"
#include "net/multipath.h"
#include "net/network.h"
#include "obs/trace.h"
#include "world/sensor_field.h"

namespace dde::athena {

/// Outcome record of one locally-originated query.
struct QueryRecord {
  QueryId id;
  int priority = 0;
  bool success = false;
  SimTime issued_at;
  SimTime finished_at;
  /// Index of the chosen course of action, if one was found viable.
  std::optional<std::size_t> chosen_action;
  /// Objects requested by this query (refetches included).
  std::uint64_t requests_sent = 0;
  /// The query was deliberately dropped by overload protection — shed as
  /// deadline-infeasible or rejected by admission control — rather than
  /// failing its deadline with work in flight.
  bool shed = false;
  /// The query died with its node: a non-ghost crash dropped it to the
  /// terminal failed_crash outcome (never counted as a deadline failure).
  bool crashed = false;
};

class AthenaNode {
 public:
  /// All nodes of a run share `field` (the deployed sensors), `directory`,
  /// and `metrics`. The node registers itself as `id`'s packet handler.
  AthenaNode(NodeId id, net::Network& net, const Directory& directory,
             world::SensorField& field, const AthenaConfig& config,
             AthenaMetrics& metrics);

  AthenaNode(const AthenaNode&) = delete;
  AthenaNode& operator=(const AthenaNode&) = delete;

  [[nodiscard]] NodeId id() const noexcept { return id_; }

  /// Issue a decision query at this node (Query_Init). Label metadata and
  /// candidate sources are resolved through the directory. The query fails
  /// automatically if unresolved at `relative_deadline` from now.
  /// `priority` > 0 marks a critical query (Sec. V-C): all its traffic
  /// preempts lower classes at every link queue.
  QueryId query_init(decision::DnfExpr expr, SimTime relative_deadline,
                     int priority = 0);

  /// Number of queries issued here that are still unresolved.
  [[nodiscard]] std::size_t active_queries() const noexcept {
    return queries_.size() - finished_count_;
  }

  /// Outcomes of locally-originated queries (completed and active).
  [[nodiscard]] const std::vector<QueryRecord>& records() const noexcept {
    return records_;
  }

  /// Flood an invalidation notice for `labels` (Sec. II-A: an external
  /// event voided prior observations). Every node purges the labels from
  /// its caches and re-opens affected decisions; this node purges
  /// immediately.
  void broadcast_invalidation(const std::vector<LabelId>& labels);

  /// Restrict which annotators' shared label values this node accepts
  /// (Sec. III-B trust): by default, any annotator is trusted when label
  /// sharing is on. The node's own annotations are always trusted.
  void set_trusted_annotators(std::unordered_set<AnnotatorId> trusted) {
    trusted_annotators_ = std::move(trusted);
  }

  /// Whether a label signed by `annotator` is acceptable to this node.
  [[nodiscard]] bool trusts(AnnotatorId annotator) const {
    if (annotator == AnnotatorId{id_.value()}) return true;  // own labels
    if (!config_.label_sharing) return false;
    if (!trusted_annotators_) return true;
    return trusted_annotators_->contains(annotator);
  }

  // --- crash/restart semantics (fault::FaultInjector node hook) ----------
  /// The node's process died. Under the default ghost policy this is a
  /// no-op (today's behaviour: protocol state survives outages intact).
  /// Otherwise every in-flight local query drops to the terminal
  /// failed_crash outcome and volatile tables are wiped — cold loses
  /// everything, warm keeps caches and corroboration beliefs. Monotonic id
  /// counters and finished outcome records always survive (measurement
  /// artifacts, not node state). Called with the node already marked down,
  /// so nothing here can transmit.
  void on_crash(fault::RestartPolicy policy);
  /// The node came back up. Non-ghost restarts count in
  /// AthenaMetrics::node_restarts and — when crash_recovery is on — send a
  /// one-hop RecoveryHello to each neighbor so the network re-learns what
  /// the crash forgot (see handle_recovery_hello).
  void on_restart(fault::RestartPolicy policy);
  /// Completed non-ghost restarts of this node (state generation).
  [[nodiscard]] std::uint64_t restart_epoch() const noexcept {
    return restart_epoch_;
  }

  /// Attach a structured trace sink (pass nullptr to detach). The node
  /// emits query-lifecycle events into it: issue → plan → interest →
  /// fetch/retry/failover → object_rx/label_settle → decide/expire/shed.
  /// Observation only — emission never schedules events, samples RNG, or
  /// alters protocol state, so the trajectory is bit-for-bit identical
  /// with and without a sink.
  void set_trace_sink(obs::TraceSink* sink) noexcept { trace_sink_ = sink; }

  [[nodiscard]] const cache::CacheStats& object_cache_stats() const noexcept {
    return object_cache_.stats();
  }
  [[nodiscard]] const cache::CacheStats& label_cache_stats() const noexcept {
    return label_cache_.stats();
  }

  // --- state residency (observability + leak tests) ----------------------
  /// Interest-table entries currently held (expired ones included until
  /// the next sweep or matching access).
  [[nodiscard]] std::size_t interest_entries() const {
    std::size_t n = 0;
    interest_table_.for_each(
        [&n](std::uint64_t, const auto& entries) { n += entries.size(); });
    return n;
  }
  /// Outstanding interest-aggregation markers.
  [[nodiscard]] std::size_t forwarded_entries() const noexcept {
    return forwarded_.size();
  }
  /// Flood-dedup entries (query announces + invalidations) currently held.
  [[nodiscard]] std::size_t dedup_entries() const noexcept {
    return announces_seen_.size() + invalidations_seen_.size();
  }

 private:
  // --- query state -------------------------------------------------------
  struct QueryState {
    QueryId id;
    decision::DnfExpr expr;
    SmallSet<LabelId, 8> label_set;  ///< labels the expr mentions
    SimTime issued_at;
    SimTime deadline_abs;
    decision::Assignment assignment;
    Directory::Selection selection;
    int priority = 0;
    /// source → expiry of the outstanding request to it.
    SmallMap<SourceId, SimTime, 4> outstanding;
    SmallMap<SourceId, std::uint32_t, 4> request_counts;
    /// Sources this query gave up on after max_source_attempts unanswered
    /// requests; selection avoids them unless nothing else covers a label.
    /// (Stays unordered_set: Directory::select_sources takes it by pointer.)
    std::unordered_set<SourceId> exhausted;
    /// source → time of the last request this query sent it (used to
    /// rotate across sources when corroborating noisy evidence).
    SmallMap<SourceId, SimTime, 4> last_request;
    std::size_t record_index = 0;
    bool finished = false;
  };

  /// One interest-table entry (Sec. VI-B).
  struct Interest {
    NodeId from;          ///< neighbor the request came from (invalid = local)
    QueryId query;
    NodeId origin;
    std::vector<LabelId> labels;
    bool prefetch = false;
    bool accept_labels = false;
    int priority = 0;
    SimTime expires;
  };

  /// One queued prefetch action (Sec. VI-A: background-only).
  struct PrefetchItem {
    bool push = false;  ///< push an object we have vs. request one hop out
    SourceId source;
    QueryId query;
    NodeId origin;
    SimTime deadline_abs;
  };

  enum class MsgKind { kRequest, kObject, kAnnounce, kLabel, kControl };

  // --- message handlers ---------------------------------------------------
  void on_packet(const net::Packet& pkt);
  void handle_announce(NodeId from, const QueryAnnounce& a);
  void handle_request(NodeId from, const ObjectRequest& r);
  void handle_reply(NodeId from, const ObjectReply& r);
  void handle_label_share(NodeId from, const LabelShare& s);
  void handle_label_reply(NodeId from, const LabelReply& r);
  void handle_invalidation(NodeId from, const Invalidation& inv);
  /// Recovery protocol, neighbor side: a restarted node announced that it
  /// lost its soft state. Purge aggregation markers whose upstream path
  /// runs through it (their interest-table copy died with the crash) and
  /// re-issue the first live downstream interest upstream, so waiting
  /// queries recover in one hop-trip instead of waiting out marker leases.
  void handle_recovery_hello(const RecoveryHello& hello);
  /// Local purge for an invalidation's labels (caches, beliefs, active
  /// assignments), then re-plan affected queries.
  void apply_invalidation(const std::vector<LabelId>& labels);

  // --- query engine (origin side) ----------------------------------------
  void advance(QueryState& q);
  /// Resolve `label` from local caches; true if new knowledge was applied.
  bool try_local(QueryState& q, LabelId label);
  void issue_request(QueryState& q, SourceId source,
                     std::vector<LabelId> labels);
  /// Retry exhaustion on one of q's sources: re-run source selection with
  /// the exhausted set excluded, counting each label whose designated
  /// source actually changed as a failover.
  void failover(QueryState& q);
  void apply_object_to_queries(const world::EvidenceObject& obj);
  /// Apply label values to every active query's assignment. Each value is
  /// accepted only if this node trusts its annotator and it is fresher
  /// than what the assignment already holds.
  void apply_labels_to_queries(const std::vector<decision::LabelValue>& values);
  void finish(QueryState& q, bool success, bool shed = false,
              bool crashed = false);
  /// True if even the quickest remaining retrieval for `order`'s labels
  /// provably misses q's deadline (lower-bound latency estimates, so a
  /// `true` is conservative). Locally-hosted evidence is always feasible.
  [[nodiscard]] bool deadline_infeasible(const QueryState& q,
                                         const std::vector<LabelId>& order,
                                         SimTime now) const;
  void share_labels(const std::vector<decision::LabelValue>& values,
                    SourceId produced_by);

  // --- forwarding / serving ----------------------------------------------
  /// Serve a request from local state if possible; returns true if fully
  /// served (no forwarding needed).
  bool serve_request_locally(const ObjectRequest& r, NodeId reply_to);
  void forward_request(const ObjectRequest& r);
  void reply_with_object(const world::EvidenceObject& obj, NodeId to,
                         QueryId query, NodeId origin, bool prefetch_push,
                         int priority = 0, std::uint64_t replica_group = 0);
  // --- multipath redundancy (Sec. V-C over lossy links) -------------------
  /// A fresh replica-group id, unique across this run's nodes.
  [[nodiscard]] std::uint64_t new_replica_group();
  /// Group for a reply answering `r`: the request's own group, or a fresh
  /// one when this node fans out a critical reply to an untagged request.
  /// 0 when multipath is off (no reply fan-out).
  [[nodiscard]] std::uint64_t reply_group_for(const ObjectRequest& r);
  /// First sight of a replica-group copy? (true when dedup is off or the
  /// message is untagged). `kind` disambiguates the request (0) and reply
  /// (1) legs of one group.
  [[nodiscard]] bool replica_first_copy(std::uint64_t group, int kind);
  /// Send replica copies of a group-tagged request via alternate downhill
  /// first hops toward `dest` (no-op when multipath is off or untagged).
  void replicate_request(const ObjectRequest& r, NodeId primary_next,
                         NodeId dest);
  /// Same for a reply fanned out toward the requester/origin.
  void replicate_reply(const ObjectReply& r, NodeId primary_next,
                       NodeId dest);
  void deliver_object(const world::EvidenceObject& obj);
  void pump_prefetch();
  /// Whether the link toward `item`'s next hop is congested past the
  /// configured prefetch watermark (false when throttling is off).
  [[nodiscard]] bool prefetch_congested(const PrefetchItem& item) const;
  void send_msg(NodeId next, std::uint64_t bytes, std::any payload,
                MsgKind kind, int priority = 0);

  // --- state garbage collection ------------------------------------------
  /// Arm the background sweep if droppable state exists and none is armed.
  void schedule_gc();
  /// Drop expired interest/aggregation/dedup entries, then re-arm.
  void run_gc();

  /// Fresh object for `source` from cache, or — if this node hosts the
  /// sensor — a fresh sample. nullopt otherwise.
  [[nodiscard]] std::optional<world::EvidenceObject> local_object(
      SourceId source);

  [[nodiscard]] bool hosts(SourceId source) const {
    return directory_.host(source) == id_;
  }

  /// Planner metadata bound to a query's designated sources.
  [[nodiscard]] decision::MetaFn make_meta(const QueryState& q) const;

  /// Live state for `qid`, or nullptr if unknown or already retired.
  [[nodiscard]] QueryState* lookup_query(QueryId qid);
  /// Destroy pooled state for queries finished since the last drain.
  /// Deferred (not done inside finish()) because deliver_object/advance
  /// recursion may still hold references to the finishing QueryState;
  /// entry points that are never reached mid-dispatch call this first.
  void drain_retired();
  /// Record (origin,source) in the bounded prefetch-dedup set; true if it
  /// was new. At capacity the oldest key is evicted first.
  bool prefetch_mark_seen(std::uint64_t key);

  /// Emit one lifecycle event into the attached sink (no-op when detached).
  void trace(obs::EventKind kind, QueryId query, std::uint64_t subject = 0,
             std::uint64_t bytes = 0, double value = 0.0);

  /// Annotate an object into label values (origin-side annotator).
  [[nodiscard]] std::vector<decision::LabelValue> annotate(
      const world::EvidenceObject& obj) const;

  /// Noisy-sensor path (Sec. IV-B): fold the object's readings into the
  /// per-label Bayesian beliefs and return values for labels whose
  /// confidence now meets config_.corroboration_confidence.
  [[nodiscard]] std::vector<decision::LabelValue> corroborate(
      const world::EvidenceObject& obj);

  /// Source to ask next for `label` under corroboration: the covering
  /// source least-recently asked by this query (and not asked within its
  /// own validity window, so a fresh capture exists). Invalid id if every
  /// source was asked too recently; in that case `earliest_retry` (if
  /// given) is lowered to the soonest time a source becomes eligible.
  [[nodiscard]] SourceId next_corroborating_source(
      const QueryState& q, LabelId label,
      SimTime* earliest_retry = nullptr) const;

  NodeId id_;
  net::Network& net_;
  const Directory& directory_;
  world::SensorField& field_;
  AthenaConfig config_;
  AthenaMetrics& metrics_;
  obs::TraceSink* trace_sink_ = nullptr;

  /// In-flight query state lives in a slot pool; `queries_` maps the id to
  /// its pool slot. Entries are never removed from `queries_` (the map's
  /// iteration order — order-pinned at several trajectory sites — depends
  /// only on key insertion history), but a finished query's slot is
  /// recycled: finish() defers the id to `retire_pending_`, and
  /// drain_retired() (called at every non-reentrant entry point, never
  /// mid-dispatch) destroys the pooled state and leaves the sentinel
  /// `kRetiredSlot` behind.
  std::unordered_map<QueryId, std::uint32_t> queries_;
  Pool<QueryState> query_pool_;
  std::vector<QueryId> retire_pending_;
  static constexpr std::uint32_t kRetiredSlot = Pool<QueryState>::kNullSlot;
  std::size_t finished_count_ = 0;
  std::vector<QueryRecord> records_;
  std::uint64_t next_query_ = 0;

  cache::TtlCache<SourceId, world::EvidenceObject> object_cache_;
  cache::TtlCache<LabelId, decision::LabelValue> label_cache_;

  /// source.value() → interests waiting on that source. Flat table; all
  /// hot lookups (request bookkeeping, reply fan-out, GC) probe it
  /// directly.
  FlatU64Map<SmallVec<Interest, 2>> interest_table_;
  /// Order facade for interest_table_: mirrors its key set through the
  /// same insert/erase history the table sees. The serve walk in
  /// handle_label_share is trajectory-pinned to the iteration order of
  /// the pre-flat std::unordered_map, and a std::unordered_set fed the
  /// identical key history reproduces that order exactly (same hashtable,
  /// same hash, same rehash schedule). Only key churn touches it; every
  /// per-entry operation stays on the flat table.
  std::unordered_set<SourceId> interest_order_;
  /// source.value() → expiry of the upstream forward we already sent
  /// (dedup).
  FlatU64Map<SimTime> forwarded_;

  std::optional<std::unordered_set<AnnotatorId>> trusted_annotators_;

  /// Per-label corroboration state (only used when the corroboration
  /// confidence is enabled). Observations expire with their objects: the
  /// window ends at the earliest expiry among counted observations.
  struct BeliefEntry {
    fusion::LabelBelief belief;
    SimTime window_expires = SimTime::max();
    std::unordered_set<ObjectId> observed;
  };
  std::unordered_map<LabelId, BeliefEntry> beliefs_;
  /// Object ids already annotated/corroborated at this node. Re-delivering
  /// an ingested object is a no-op for knowledge (it still settles
  /// outstanding requests) — this also bounds the try_local/deliver_object
  /// recursion when corroboration leaves labels undecided.
  std::unordered_set<ObjectId> ingested_;

  std::deque<PrefetchItem> prefetch_queue_;
  /// (origin,source) keys already pushed. Bounded at
  /// config_.prefetch_dedup_capacity by oldest-first eviction
  /// (`prefetch_seen_fifo_` records insertion order) — forgetting only the
  /// stalest keys, each of which risks no more than a redundant re-push.
  FlatU64Set prefetch_seen_;
  std::deque<std::uint64_t> prefetch_seen_fifo_;
  /// Announce flood dedup: query id → entry expiry (the query's deadline;
  /// post-deadline duplicates are discarded either way, so expiry changes
  /// nothing observable). Swept by the GC.
  FlatU64Map<SimTime> announces_seen_;
  /// Invalidation flood dedup: notice id → expiry (now + dedup_ttl at
  /// first sight). Swept by the GC.
  FlatU64Map<SimTime> invalidations_seen_;
  /// Locally-originated invalidation notices (keeps flood ids unique even
  /// as dedup entries expire).
  std::uint64_t next_invalidation_ = 0;
  /// Replica-group dedup (multipath redundancy). Constructed lazily on the
  /// first tagged message so single-path runs carry no extra state.
  std::optional<net::DedupTable> replica_dedup_;
  /// Locally-assigned replica groups (keeps group ids unique per node;
  /// combined with the node id for run-wide uniqueness).
  std::uint64_t next_replica_group_ = 0;
  /// Completed non-ghost restarts (bumped in on_restart). Carried in
  /// RecoveryHello as the state generation; survives crashes by design.
  std::uint64_t restart_epoch_ = 0;
  bool pump_scheduled_ = false;
  bool gc_scheduled_ = false;
};

}  // namespace dde::athena
