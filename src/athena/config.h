// Athena node configuration and the retrieval schemes of Sec. VII.
#pragma once

#include <cstdint>
#include <string_view>

#include "common/sim_time.h"
#include "decision/planner.h"

namespace dde::athena {

/// The five retrieval schemes evaluated in the paper (Sec. VII).
enum class Scheme {
  kCmp,   ///< comprehensive retrieval: all relevant objects, no ordering
  kSlt,   ///< + source selection (set cover over needed predicates)
  kLcf,   ///< + sequential lowest-cost-first retrieval
  kLvf,   ///< decision-driven: variational longest-validity-first
  kLvfl,  ///< lvf + label sharing
};

[[nodiscard]] constexpr std::string_view to_string(Scheme s) noexcept {
  switch (s) {
    case Scheme::kCmp: return "cmp";
    case Scheme::kSlt: return "slt";
    case Scheme::kLcf: return "lcf";
    case Scheme::kLvf: return "lvf";
    case Scheme::kLvfl: return "lvfl";
  }
  return "?";
}

/// Tunable knobs of an Athena node. Scheme presets set the first block;
/// the rest defaults to the Sec. VII experiment values.
struct AthenaConfig {
  // --- scheme-defining knobs -------------------------------------------
  /// Use set-cover source selection (vs. all covering sources).
  bool source_selection = true;
  /// Retrieve sequentially (one outstanding request per query, re-planned
  /// on every arrival) vs. batch (request everything up front).
  bool sequential = true;
  /// Ordering policy for the (sequential) retrieval plan.
  decision::OrderPolicy order = decision::OrderPolicy::kVariationalLvf;
  /// Share evaluated labels back into the network and accept cached labels.
  bool label_sharing = true;
  /// Serve a request for source S from a cached object of a different
  /// source that covers all the requested labels — semantic object
  /// substitution in the spirit of Sec. V-A's approximate matching.
  bool substitute_equivalent_objects = false;
  /// When > 0.5, sensors are treated as noisy (Sec. IV-B): a label value
  /// is only committed once Bayesian corroboration of the observations
  /// reaches this confidence; until then more evidence is retrieved,
  /// rotating across covering sources. 0 disables (single reading decides).
  double corroboration_confidence = 0.0;
  /// Purge caches/beliefs and re-open decisions when an Invalidation
  /// notice arrives (off = ignore notices; ablation knob).
  bool honor_invalidations = true;

  // --- protocol parameters ---------------------------------------------
  bool prefetch = true;               ///< process prefetch queues
  int announce_ttl = 1;               ///< query-announce flood radius
  /// Re-issue a request if unanswered for this long. Must exceed the
  /// worst-case multi-hop transfer time of a large object, or timeouts
  /// snowball into duplicate traffic. This also caps the backed-off
  /// per-attempt timeout below.
  SimTime request_timeout = SimTime::seconds(60);
  /// Exponential-backoff factor on the per-request retry timeout: attempt
  /// k to one source waits base·backoff^(k−1), capped at request_timeout.
  /// 1.0 (the default) keeps every attempt at the base timeout — the
  /// pre-fault-subsystem behaviour, preserved so fault-free runs reproduce
  /// seed results bit-for-bit. Fault experiments use 2.0.
  double retry_backoff = 1.0;
  /// After this many unanswered attempts to one source, the query fails
  /// over: the label is re-designated to the next-cheapest covering
  /// source (if any). 0 disables failover (retry the same source forever,
  /// the pre-fault-subsystem behaviour).
  std::uint32_t max_source_attempts = 0;
  SimTime prefetch_interval = SimTime::millis(200);  ///< background pump rate
  SimTime interest_ttl = SimTime::seconds(120);    ///< interest entry expiry
  std::size_t object_cache_capacity = 64;
  std::size_t label_cache_capacity = 512;

  // --- overload protection (Sec. V-C value under saturation) -----------
  // All knobs default to "off" so fault-free runs reproduce seed results
  // bit-for-bit; bench/overload_saturation enables them. Queue caps live
  // at the network layer (net::QueueLimits).
  /// Shed a query early — recorded in AthenaMetrics::queries_shed, not as
  /// a silent deadline failure — once even the quickest possible remaining
  /// retrieval (over every still-needed label and covering source, by the
  /// directory's queue-free latency estimate, a lower bound) can no longer
  /// return before the deadline. The shed query issues nothing further.
  bool shed_infeasible = false;
  /// Admission control: reject a new priority<=0 query outright (recorded
  /// in AthenaMetrics::queries_rejected) when this node already has this
  /// many unresolved local queries. Critical queries are always admitted.
  /// 0 disables.
  std::size_t admission_max_active = 0;
  /// Congestion-adaptive prefetch throttling: hold the prefetch pump while
  /// the next hop's link queue has more than this many waiting packets,
  /// re-checking every prefetch_throttle_interval. 0 disables.
  std::size_t prefetch_watermark = 0;
  SimTime prefetch_throttle_interval = SimTime::millis(800);

  // --- multipath redundancy (Sec. V-C criticality over lossy links) -----
  /// Number of parallel copies of critical (priority > 0) requests and the
  /// replies they pull back: the primary next hop plus up to
  /// multipath_redundancy − 1 alternate downhill neighbors, deduplicated
  /// at the receiver. 1 (the default) sends a single copy — bit-for-bit
  /// the pre-multipath behaviour.
  std::size_t multipath_redundancy = 1;
  /// Receiver-side replica dedup table bounds (per node).
  std::size_t replica_dedup_capacity = 4096;
  SimTime replica_dedup_ttl = SimTime::seconds(120);

  // --- crash recovery (src/fault restart semantics) ---------------------
  // Both knobs are inert under the default "ghost" restart policy, which
  // never invokes the crash/restart hooks — fault-free runs and legacy
  // fault runs reproduce seed results bit-for-bit.
  /// Run the recovery protocol after a non-ghost restart: the restarted
  /// node sends a one-hop RecoveryHello to each neighbor, and neighbors
  /// purge aggregation markers routed through it, re-issuing live
  /// downstream interests upstream instead of waiting out stale leases.
  bool crash_recovery = true;
  /// Cap on the forwarded (aggregation) marker lease. zero = off: markers
  /// live request_timeout, as always. Fault experiments set a shorter
  /// lease so a marker whose upstream copy died with a crashed hop expires
  /// early and the next downstream retry re-issues through this node even
  /// when the restart hello itself was lost.
  SimTime recovery_lease = SimTime::zero();

  // --- state hygiene (bounded memory on long runs) ----------------------
  /// Expiry of invalidation flood-dedup entries. Duplicates of a flood id
  /// can only arrive while copies are still in flight, so any value far
  /// above the network's drain time is safe; entries are then collected.
  SimTime dedup_ttl = SimTime::seconds(3600);
  /// Period of the background sweep that drops expired interest-table,
  /// aggregation-marker, and dedup entries (they are also purged
  /// opportunistically on access; the sweep bounds what access never
  /// touches). The sweep only runs while such state exists.
  SimTime state_gc_interval = SimTime::seconds(60);
  /// Bound on the prefetch push-dedup set ((origin,source) keys already
  /// pushed). Overflow evicts the oldest key first — forgetting a key only
  /// risks one redundant re-push, so a tight bound is safe on small nodes.
  std::size_t prefetch_dedup_capacity = 200000;

  // --- wire-size estimates (bytes) -------------------------------------
  std::uint64_t request_bytes = 150;
  std::uint64_t announce_bytes = 400;
  std::uint64_t label_bytes = 200;
  std::uint64_t hello_bytes = 120;  ///< restart RecoveryHello (control)
};

/// The preset for one of the paper's five schemes.
[[nodiscard]] constexpr AthenaConfig config_for(Scheme scheme) noexcept {
  AthenaConfig c;
  switch (scheme) {
    case Scheme::kCmp:
      c.source_selection = false;
      c.sequential = false;
      c.order = decision::OrderPolicy::kDeclared;
      c.label_sharing = false;
      break;
    case Scheme::kSlt:
      c.source_selection = true;
      c.sequential = false;
      c.order = decision::OrderPolicy::kDeclared;
      c.label_sharing = false;
      break;
    case Scheme::kLcf:
      c.source_selection = true;
      c.sequential = true;
      c.order = decision::OrderPolicy::kCheapestFirst;
      c.label_sharing = false;
      break;
    case Scheme::kLvf:
      c.source_selection = true;
      c.sequential = true;
      c.order = decision::OrderPolicy::kVariationalLvf;
      c.label_sharing = false;
      break;
    case Scheme::kLvfl:
      c.source_selection = true;
      c.sequential = true;
      c.order = decision::OrderPolicy::kVariationalLvf;
      c.label_sharing = true;
      break;
  }
  return c;
}

}  // namespace dde::athena
