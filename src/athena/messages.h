// Athena wire messages (Sec. VI).
//
// Four message kinds flow between nodes, always hop-by-hop:
//   * QueryAnnounce — the Boolean expression of a query, flooded to
//     neighbors so they can prefetch (Query_Recv step iv).
//   * ObjectRequest — an interest in a source's evidence object, recorded
//     in interest tables along the path (Request_Send / Request_Recv).
//   * ObjectReply — the evidence object travelling back, cached along the
//     way (Data_Send / Data_Recv). Also used for prefetch pushes.
//   * LabelShare / LabelReply — evaluated label values propagated into the
//     network (Sec. VI-D) and served in place of objects when trusted.
//
// Payload sizes on the wire are estimates configured in AthenaConfig;
// object replies are dominated by the object bytes.
#pragma once

#include <vector>

#include "common/ids.h"
#include "common/sim_time.h"
#include "decision/label.h"
#include "world/evidence.h"

namespace dde::athena {

/// A query's footprint announced to neighbors for prefetching.
struct QueryAnnounce {
  QueryId query;
  NodeId origin;
  SimTime deadline_abs;
  std::vector<LabelId> labels;  ///< all labels the decision may need
  int ttl = 0;                  ///< remaining flood hops
};

/// An interest in the evidence object of `source`, to resolve `labels`.
struct ObjectRequest {
  QueryId query;
  NodeId origin;                ///< query source node
  SourceId source;
  std::vector<LabelId> labels;  ///< labels this request should resolve
  bool prefetch = false;        ///< background request; never forwarded
  bool accept_labels = false;   ///< cached label values acceptable (lvfl)
  SimTime deadline_abs;         ///< requesting query's decision deadline
  /// Network priority of this request and of the data it pulls back
  /// (Sec. V-C criticality; background prefetch uses −1).
  int priority = 0;
  /// Multipath replica group: all parallel copies of one logical request
  /// carry the same nonzero group and receivers keep only the first copy.
  /// 0 = not replicated (the default single-path behaviour).
  std::uint64_t replica_group = 0;
};

/// An evidence object travelling back toward requesters.
struct ObjectReply {
  world::EvidenceObject object;
  QueryId query;       ///< query that triggered it (informational)
  NodeId origin;       ///< for prefetch pushes: node to push toward
  bool prefetch_push = false;
  /// Multipath replica group of the reply fan-out (see ObjectRequest);
  /// replies reuse the group of the request they answer, so copies born at
  /// different serving nodes still deduplicate.
  std::uint64_t replica_group = 0;
  /// Network priority (mirrors the pulling request's priority so replica
  /// copies keep their queue precedence on alternate paths).
  int priority = 0;
};

/// Evaluated label values shared back into the network toward the data
/// source (lvfl), cached at every hop.
struct LabelShare {
  std::vector<decision::LabelValue> values;
  NodeId toward;  ///< host node of the producing source
};

/// An invalidation notice (Sec. II-A): an external event voided prior
/// observations of these labels. Flooded network-wide; every node purges
/// the labels (and objects evidencing them) from caches and re-opens
/// affected decisions.
struct Invalidation {
  std::uint64_t id = 0;  ///< flood-dedup identifier
  std::vector<LabelId> labels;
  SimTime issued_at;
  int ttl = 0;
};

/// Label values served from a cache in place of an object.
struct LabelReply {
  std::vector<decision::LabelValue> values;
  QueryId query;
  NodeId origin;     ///< requester the reply travels to
  SourceId source;   ///< the source whose request this answers
};

/// Restart re-announcement (crash recovery): a node that lost its soft
/// state (cold/warm restart) tells each neighbor, so they purge
/// aggregation markers routed through it and re-issue live interests
/// upstream instead of waiting out stale leases. One hop, never flooded.
struct RecoveryHello {
  NodeId node;                 ///< the restarted node
  std::uint64_t epoch = 0;     ///< its restart count (state generation)
  SimTime restarted_at;        ///< when it came back up
};

}  // namespace dde::athena
